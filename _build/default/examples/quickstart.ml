(* Quickstart: schedule a small MatMul, lower it, run the automatic
   pipelining pass, and show the IR before and after — the workflow of
   paper Fig. 7. *)

let () =
  let spec =
    Alcop_sched.Op_spec.matmul ~name:"quickstart_matmul" ~m:128 ~n:128 ~k:256 ()
  in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let sched =
    Alcop_sched.Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 spec tiling
  in
  let lowered = Alcop_sched.Lower.run sched in
  print_endline "=== Input IR (lowered, unpipelined) ===";
  print_endline (Alcop_ir.Kernel.to_string lowered.Alcop_sched.Lower.kernel);
  print_newline ();
  let hw = Alcop_hw.Hw_config.default in
  match
    Alcop_pipeline.Pass.run ~hw ~hints:lowered.Alcop_sched.Lower.hints
      lowered.Alcop_sched.Lower.kernel
  with
  | Error r ->
    Format.printf "pipelining rejected: %a@." Alcop_pipeline.Analysis.pp_rejection r
  | Ok result ->
    print_endline "=== Transformed IR (multi-stage, multi-level pipelined) ===";
    print_endline (Alcop_ir.Kernel.to_string result.Alcop_pipeline.Pass.kernel);
    print_newline ();
    List.iter
      (fun (g : Alcop_pipeline.Analysis.group) ->
        Format.printf
          "pipeline group %s: scope=%s stages=%d loop=%s extent=%d fused=%b@."
          g.Alcop_pipeline.Analysis.id
          (Alcop_ir.Buffer.scope_to_string g.Alcop_pipeline.Analysis.scope)
          g.Alcop_pipeline.Analysis.stages g.Alcop_pipeline.Analysis.loop_var
          g.Alcop_pipeline.Analysis.loop_extent g.Alcop_pipeline.Analysis.fused)
      (Alcop_pipeline.Pass.groups result);
    (* Execute both versions on real data and compare with the host
       reference. *)
    let open Alcop_gpusim in
    let a, b = Reference.inputs_for spec in
    let expected = Reference.gemm spec ~a ~b in
    let inputs = [ ("A", a); ("B", b) ] in
    let run_and_check label ?groups kernel =
      let outputs = Interp.run ?groups kernel ~inputs in
      let c = List.assoc "C" outputs in
      Format.printf "%s: max |err| vs reference = %.3e (%s)@." label
        (Tensor.max_abs_diff c expected)
        (if Tensor.allclose ~atol:1e-9 ~rtol:1e-9 c expected then "OK"
         else "MISMATCH")
    in
    run_and_check "unpipelined kernel" lowered.Alcop_sched.Lower.kernel;
    run_and_check "pipelined kernel"
      ~groups:(Alcop_pipeline.Pass.groups result)
      result.Alcop_pipeline.Pass.kernel
