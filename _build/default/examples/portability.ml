(* Hardware portability of automatic pipelining.

   The same schedule request compiled for two machines:
   - sim-A100 (Ampere): asynchronous shared-memory copies exist, so both
     pipeline levels apply;
   - sim-V100 (pre-Ampere): no cp.async — legality rule 1 refuses
     shared-memory pipelining, and the automatic pass degrades to
     register-level software pipelining only.

   This is why the paper evaluates on Ampere: "prior generations lack the
   asynchronous memory-copy hardware feature" (Sec. V-A). *)

open Alcop_ir
open Alcop_sched

let spec = Op_spec.matmul ~name:"portability" ~m:512 ~n:512 ~k:1024 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let build hw =
  Format.printf "@.--- %s ---@." hw.Alcop_hw.Hw_config.name;
  let sched = Schedule.create spec in
  let sched, a_sh = Schedule.cache_read sched "A" Buffer.Shared in
  let sched, _ = Schedule.cache_read sched a_sh Buffer.Register in
  let sched, b_sh = Schedule.cache_read sched "B" Buffer.Shared in
  let sched, _ = Schedule.cache_read sched b_sh Buffer.Register in
  let sched = Schedule.tile sched tiling in
  let sched, report =
    Schedule.auto_pipeline ~hw ~smem_stages:3 ~reg_stages:2 sched
  in
  List.iter
    (fun (buffer, decision) ->
      match decision with
      | Schedule.Pipelined stages ->
        Format.printf "  %-8s pipelined with %d stages@." buffer stages
      | Schedule.Skipped reason ->
        Format.printf "  %-8s skipped: %s@." buffer reason)
    report;
  let lowered = Lower.run sched in
  match Alcop_pipeline.Pass.run ~hw ~hints:lowered.Lower.hints lowered.Lower.kernel with
  | Error r ->
    Format.printf "  pass rejection: %a@." Alcop_pipeline.Analysis.pp_rejection r
  | Ok result ->
    let groups = Alcop_pipeline.Pass.groups result in
    Format.printf "  pipeline groups after transformation: %d@."
      (List.length groups);
    List.iter
      (fun (g : Alcop_pipeline.Analysis.group) ->
        Format.printf "    %s (stages=%d, %s)@." g.Alcop_pipeline.Analysis.id
          g.Alcop_pipeline.Analysis.stages
          (if g.Alcop_pipeline.Analysis.synchronized then "barrier-guarded"
           else "scoreboard"))
      groups

let () =
  Format.printf "automatic pipelining of %a on two machines@." Op_spec.pp spec;
  build Alcop_hw.Hw_config.ampere_a100;
  build Alcop_hw.Hw_config.volta_v100
