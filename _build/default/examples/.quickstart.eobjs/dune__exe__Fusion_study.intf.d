examples/fusion_study.mli:
