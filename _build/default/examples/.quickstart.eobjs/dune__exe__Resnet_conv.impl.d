examples/resnet_conv.ml: Alcop Alcop_gpusim Alcop_hw Alcop_perfmodel Alcop_sched Compiler Format Interp List Op_spec Reference Tensor Tiling Variants
