examples/quickstart.mli:
