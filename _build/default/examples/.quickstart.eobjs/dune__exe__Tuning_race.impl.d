examples/tuning_race.ml: Alcop Alcop_hw Alcop_sched Alcop_tune Alcop_workloads Array Format List Option Variants
