examples/portability.ml: Alcop_hw Alcop_ir Alcop_pipeline Alcop_sched Buffer Format List Lower Op_spec Schedule Tiling
