examples/quickstart.ml: Alcop_gpusim Alcop_hw Alcop_ir Alcop_pipeline Alcop_sched Format Interp List Reference Tensor
