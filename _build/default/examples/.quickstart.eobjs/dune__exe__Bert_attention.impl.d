examples/bert_attention.ml: Alcop Alcop_hw Alcop_perfmodel Alcop_sched Alcop_workloads Compiler Format List Op_spec Option Tiling Variants
