examples/resnet_conv.mli:
