examples/portability.mli:
