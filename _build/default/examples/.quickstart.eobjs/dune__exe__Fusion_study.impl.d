examples/fusion_study.ml: Alcop Alcop_gpusim Alcop_hw Alcop_ir Alcop_perfmodel Alcop_pipeline Alcop_sched Buffer Compiler Format List Lower Op_spec Schedule String Tiling
