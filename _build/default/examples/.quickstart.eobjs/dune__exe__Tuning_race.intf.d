examples/tuning_race.mli:
