(** Cache-locality model for GEMM-shaped kernels.

    The LLC is shared by all SMs: co-resident threadblocks re-use each
    other's A and B tiles, so DRAM traffic is the unique working set of a
    threadblock batch rather than the sum of all loads (paper Sec. IV-B). *)

type t = {
  miss_rate : float;  (** fraction of global-load bytes paid in DRAM *)
  batch_workset_bytes : int;
  fits_llc : bool;
}

val compute :
  Alcop_hw.Hw_config.t ->
  grid_m:int -> grid_n:int -> grid_z:int ->
  tb_m:int -> tb_n:int -> tb_k:int ->
  elem_bytes:int -> resident_tbs:int ->
  t
(** Estimate the DRAM miss rate of shared-memory loads for a batch of
    [resident_tbs] threadblocks laid out row-major over the grid. *)
