(* Reference implementations computed directly on host tensors. The
   functional interpreter's results are checked against these. *)

open Alcop_sched

let apply_opt op t =
  match op with
  | None -> t
  | Some name -> Tensor.map (Elemwise_ops.find_exn name) t

(* C[b,i,j] = sum_k A[b,i,k] * B[b,j,k], with optional element-wise ops on
   the inputs and the output, matching Op_spec's semantics. *)
let gemm (spec : Op_spec.t) ~(a : Tensor.t) ~(b : Tensor.t) =
  let a = apply_opt spec.Op_spec.a_op a in
  let b = apply_opt spec.Op_spec.b_op b in
  let batch = spec.Op_spec.batch in
  let m = spec.Op_spec.m and n = spec.Op_spec.n and k = spec.Op_spec.k in
  let batched = batch > 1 in
  let c = Tensor.zeros ~dtype:spec.Op_spec.dtype (Op_spec.c_shape spec) in
  let idx3 z i j = if batched then [| z; i; j |] else [| i; j |] in
  for z = 0 to batch - 1 do
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0.0 in
        for kk = 0 to k - 1 do
          acc :=
            !acc +. (Tensor.get a (idx3 z i kk) *. Tensor.get b (idx3 z j kk))
        done;
        Tensor.set c (idx3 z i j) !acc
      done
    done
  done;
  apply_opt spec.Op_spec.epilogue c

(* --- Convolution through implicit GEMM --- *)

(* im2col: [n, ci, h, w] image -> [n*oh*ow, ci*kh*kw] matrix whose GEMM
   against the [co, ci*kh*kw] weight matrix equals the convolution. Padding
   reads as zero. Row index = ((n*oh)+oy)*ow+ox; column index =
   (c*kh+ky)*kw+kx — the weight flattening must match. *)
let im2col (c : Op_spec.conv_shape) (image : Tensor.t) =
  let oh = Op_spec.conv_out_dim ~dim:c.Op_spec.ch ~kdim:c.Op_spec.ckh
      ~stride:c.Op_spec.stride ~pad:c.Op_spec.pad in
  let ow = Op_spec.conv_out_dim ~dim:c.Op_spec.cw ~kdim:c.Op_spec.ckw
      ~stride:c.Op_spec.stride ~pad:c.Op_spec.pad in
  let m = c.Op_spec.cn * oh * ow in
  let k = c.Op_spec.ci * c.Op_spec.ckh * c.Op_spec.ckw in
  Tensor.init [ m; k ] (fun idx ->
      let row = idx.(0) and col = idx.(1) in
      let n = row / (oh * ow) in
      let oy = row mod (oh * ow) / ow in
      let ox = row mod ow in
      let ch = col / (c.Op_spec.ckh * c.Op_spec.ckw) in
      let ky = col mod (c.Op_spec.ckh * c.Op_spec.ckw) / c.Op_spec.ckw in
      let kx = col mod c.Op_spec.ckw in
      let y = (oy * c.Op_spec.stride) - c.Op_spec.pad + ky in
      let x = (ox * c.Op_spec.stride) - c.Op_spec.pad + kx in
      if y < 0 || y >= c.Op_spec.ch || x < 0 || x >= c.Op_spec.cw then 0.0
      else Tensor.get image [| n; ch; y; x |])

(* Weights [co, ci, kh, kw] flattened to the GEMM's B matrix [co, k]. *)
let flatten_weights (c : Op_spec.conv_shape) (w : Tensor.t) =
  let k = c.Op_spec.ci * c.Op_spec.ckh * c.Op_spec.ckw in
  Tensor.init [ c.Op_spec.co; k ] (fun idx ->
      let co = idx.(0) and col = idx.(1) in
      let ch = col / (c.Op_spec.ckh * c.Op_spec.ckw) in
      let ky = col mod (c.Op_spec.ckh * c.Op_spec.ckw) / c.Op_spec.ckw in
      let kx = col mod c.Op_spec.ckw in
      Tensor.get w [| co; ch; ky; kx |])

(* Direct convolution, producing the output in the GEMM layout
   [n*oh*ow, co] so it compares against the kernel's C tensor. *)
let conv2d_direct (c : Op_spec.conv_shape) ~(image : Tensor.t)
    ~(weights : Tensor.t) =
  let oh = Op_spec.conv_out_dim ~dim:c.Op_spec.ch ~kdim:c.Op_spec.ckh
      ~stride:c.Op_spec.stride ~pad:c.Op_spec.pad in
  let ow = Op_spec.conv_out_dim ~dim:c.Op_spec.cw ~kdim:c.Op_spec.ckw
      ~stride:c.Op_spec.stride ~pad:c.Op_spec.pad in
  let m = c.Op_spec.cn * oh * ow in
  Tensor.init [ m; c.Op_spec.co ] (fun idx ->
      let row = idx.(0) and co = idx.(1) in
      let n = row / (oh * ow) in
      let oy = row mod (oh * ow) / ow in
      let ox = row mod ow in
      let acc = ref 0.0 in
      for ch = 0 to c.Op_spec.ci - 1 do
        for ky = 0 to c.Op_spec.ckh - 1 do
          for kx = 0 to c.Op_spec.ckw - 1 do
            let y = (oy * c.Op_spec.stride) - c.Op_spec.pad + ky in
            let x = (ox * c.Op_spec.stride) - c.Op_spec.pad + kx in
            if y >= 0 && y < c.Op_spec.ch && x >= 0 && x < c.Op_spec.cw then
              acc :=
                !acc
                +. (Tensor.get image [| n; ch; y; x |]
                    *. Tensor.get weights [| co; ch; ky; kx |])
          done
        done
      done;
      !acc)

(* Deterministic input pair for an operator; seeds differ per tensor and per
   operator name so distinct experiments see distinct data. *)
let inputs_for (spec : Op_spec.t) =
  let seed_of tag = Hashtbl.hash (spec.Op_spec.name, tag) in
  let a =
    Tensor.random ~dtype:spec.Op_spec.dtype ~seed:(seed_of "A")
      (Op_spec.a_shape spec)
  in
  let b =
    Tensor.random ~dtype:spec.Op_spec.dtype ~seed:(seed_of "B")
      (Op_spec.b_shape spec)
  in
  (a, b)
