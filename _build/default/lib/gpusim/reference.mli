(** Host reference implementations the interpreter's results are checked
    against. *)

open Alcop_sched

val apply_opt : string option -> Tensor.t -> Tensor.t

val gemm : Op_spec.t -> a:Tensor.t -> b:Tensor.t -> Tensor.t
(** [C[b,i,j] = sum_k A[b,i,k] * B[b,j,k]], with the spec's optional
    element-wise ops applied to inputs and output. *)

val im2col : Op_spec.conv_shape -> Tensor.t -> Tensor.t
(** [im2col shape image] lowers an [n, ci, h, w] image to the
    [n*oh*ow, ci*kh*kw] matrix whose GEMM against the flattened weights
    equals the convolution; padding reads as zero. *)

val flatten_weights : Op_spec.conv_shape -> Tensor.t -> Tensor.t
(** [co, ci, kh, kw] weights flattened to the GEMM's [co, k] B matrix, in
    the column order {!im2col} uses. *)

val conv2d_direct :
  Op_spec.conv_shape -> image:Tensor.t -> weights:Tensor.t -> Tensor.t
(** Direct convolution, producing the output in the GEMM layout
    [n*oh*ow, co] so it compares against the kernel's C tensor. *)

val inputs_for : Op_spec.t -> Tensor.t * Tensor.t
(** Deterministic pseudo-random input pair for an operator. *)
