(** Per-threadblock event traces extracted from kernel IR.

    The timing simulator replays the sequence of loads, computes and
    synchronization points one threadblock executes. Grid loop variables are
    pinned to zero (every threadblock runs the same program) and
    warp-parallel loops are aggregated (event bytes/FLOPs are summed across
    the warps of a threadblock).

    Scope-synchronized pipelines take their commit/wait structure directly
    from the IR's primitives; register-level pipelines have no explicit
    primitives — the hardware scoreboard stalls the consumer — so the
    extractor synthesizes the equivalent batches: a compute event waits
    until all batches except the youngest [stages-1] have completed. *)

open Alcop_ir

type level =
  | From_global
  | From_shared

type event =
  | Load of { level : level; bytes : int; async : bool; group : string option }
  | Store of { bytes : int }
  | Commit of string
  | Wait_oldest of string
  | Acquire of { group : string; stages : int }
  | Release of string
  | Barrier
  | Compute of { flops : int }

val pp_event : Format.formatter -> event -> unit

val extract :
  groups:Alcop_pipeline.Analysis.group list -> Kernel.t -> event array
(** Extract the trace of one representative threadblock. [groups] must be
    the pipeline groups the pass reported for this kernel (empty for
    unpipelined kernels). *)

type stats = {
  global_load_bytes : int;
  shared_load_bytes : int;
  store_bytes : int;
  flops : int;
  n_events : int;
}

val stats_of : event array -> stats
