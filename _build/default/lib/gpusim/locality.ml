(* Cache-locality model for GEMM-shaped kernels.

   GPU LLC is shared by all SMs (paper Sec. IV-B): threadblocks resident at
   the same time re-use each other's A and B tiles, so DRAM traffic is the
   *unique* working set of a threadblock batch, not the sum of all loads.
   We estimate, for a batch of R co-resident threadblocks laid out
   row-major over the (batch, M-tiles, N-tiles) grid, how many distinct
   M-tiles and N-tiles they touch; the DRAM miss rate of shared-memory
   loads is unique-bytes / total-bytes, degraded to 1 when the batch's
   working set exceeds the LLC. *)

type t = {
  miss_rate : float;       (** fraction of global-load bytes paid in DRAM *)
  batch_workset_bytes : int;
  fits_llc : bool;
}

let compute (hw : Alcop_hw.Hw_config.t) ~grid_m ~grid_n ~grid_z ~tb_m ~tb_n
    ~tb_k ~elem_bytes ~resident_tbs =
  let total_tbs = grid_m * grid_n * grid_z in
  let r = min resident_tbs total_tbs in
  if r <= 0 then { miss_rate = 1.0; batch_workset_bytes = 0; fits_llc = true }
  else begin
    (* Distinct tiles touched by r consecutive row-major (z, i, j) indices;
       at most one partial row of the grid matters. *)
    let per_z = grid_m * grid_n in
    let distinct_z = min grid_z ((r + per_z - 1) / per_z) in
    let r_in_z = min r per_z in
    let distinct_j = min grid_n r_in_z in
    let distinct_i = min grid_m ((r_in_z + grid_n - 1) / grid_n) in
    (* Per K-iteration bytes: total issued vs unique. *)
    let total_bytes = r * (tb_m + tb_n) * tb_k * elem_bytes in
    let unique_bytes =
      distinct_z * ((distinct_i * tb_m) + (distinct_j * tb_n)) * tb_k * elem_bytes
    in
    (* Working set held across the K loop for reuse: unique A and B tile
       rows of the batch for one K-slice, times a small number of pipeline
       stages in flight. A coarse capacity check against the LLC. *)
    let batch_workset_bytes = unique_bytes * 4 in
    let fits_llc = batch_workset_bytes <= hw.Alcop_hw.Hw_config.llc_bytes in
    let miss_rate =
      if not fits_llc then 1.0
      else Float.min 1.0 (float_of_int unique_bytes /. float_of_int total_bytes)
    in
    { miss_rate; batch_workset_bytes; fits_llc }
  end
