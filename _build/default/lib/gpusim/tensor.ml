(* Dense row-major host tensors used by the functional interpreter and the
   reference implementations. Values are held as float64 regardless of the
   declared dtype; dtype drives byte accounting only. *)

open Alcop_ir

type t = {
  shape : int list;
  strides : int array;
  data : float array;
  dtype : Dtype.t;
}

let num_elements shape = List.fold_left ( * ) 1 shape

let strides_of shape =
  let dims = Array.of_list shape in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  strides

let create ?(dtype = Dtype.F16) shape value =
  if shape = [] || List.exists (fun d -> d <= 0) shape then
    invalid_arg "Tensor.create: bad shape";
  { shape; strides = strides_of shape;
    data = Array.make (num_elements shape) value; dtype }

let zeros ?dtype shape = create ?dtype shape 0.0

let init ?(dtype = Dtype.F16) shape f =
  let dims = Array.of_list shape in
  let strides = strides_of shape in
  let n = num_elements shape in
  let idx = Array.make (Array.length dims) 0 in
  let data =
    Array.init n (fun flat ->
        let rem = ref flat in
        Array.iteri
          (fun d s ->
            idx.(d) <- !rem / s;
            rem := !rem mod s)
          strides;
        f (Array.copy idx))
  in
  { shape; strides; data; dtype }

(* Deterministic pseudo-random tensor in [-1, 1), seeded per tensor so tests
   and benches are reproducible. *)
let random ?(dtype = Dtype.F16) ~seed shape =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    (* xorshift-ish LCG; quality is irrelevant, determinism is not *)
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. 536870912.0) -. 1.0
  in
  let n = num_elements shape in
  { shape; strides = strides_of shape; data = Array.init n (fun _ -> next ());
    dtype }

let get t idx =
  let flat = ref 0 in
  Array.iteri (fun d i -> flat := !flat + (i * t.strides.(d))) idx;
  t.data.(!flat)

let set t idx v =
  let flat = ref 0 in
  Array.iteri (fun d i -> flat := !flat + (i * t.strides.(d))) idx;
  t.data.(!flat) <- v

let of_buffer (b : Buffer.t) =
  zeros ~dtype:b.Buffer.dtype b.Buffer.shape

let map f t = { t with data = Array.map f t.data }

let max_abs_diff a b =
  if a.shape <> b.shape then invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i x -> worst := Float.max !worst (Float.abs (x -. b.data.(i))))
    a.data;
  !worst

let allclose ?(atol = 1e-6) ?(rtol = 1e-6) a b =
  if a.shape <> b.shape then false
  else
    let ok = ref true in
    Array.iteri
      (fun i x ->
        let y = b.data.(i) in
        if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false)
      a.data;
    !ok

let pp fmt t =
  Format.fprintf fmt "tensor[%s] %a (%d elements)"
    (String.concat "x" (List.map string_of_int t.shape))
    Dtype.pp t.dtype (Array.length t.data)
