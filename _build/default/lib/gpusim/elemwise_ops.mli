(** Registry of element-wise functions that can be fused into copies (paper
    Fig. 5's f) or materialized as separate stages. *)

val table : (string * (float -> float)) list
val find : string -> (float -> float) option

val find_exn : string -> float -> float
(** @raise Invalid_argument on unknown names. *)

val names : string list
val gelu : float -> float
