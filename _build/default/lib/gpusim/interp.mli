(** Functional interpreter for the statement IR: executes kernels on real
    data.

    In [Strict] mode, asynchronous copies into scope-synchronized pipeline
    groups follow the hardware commit/wait semantics: staged copies only
    become visible when a consumer_wait retires their commit group, and
    protocol violations (copies outside an acquire window, waits without a
    committed group, releases before waits, pipeline over-subscription)
    raise {!Runtime_error}. A transformed kernel with wrong or missing
    synchronization either raises or computes the wrong output. *)

open Alcop_ir

exception Runtime_error of string

type mode =
  | Eager   (** copies land immediately; for unpipelined reference runs *)
  | Strict  (** hardware asynchronous-copy semantics *)

val run :
  ?mode:mode ->
  ?check_races:bool ->
  ?groups:Alcop_pipeline.Analysis.group list ->
  Kernel.t ->
  inputs:(string * Tensor.t) list ->
  (string * Tensor.t) list
(** Execute a kernel. [groups] must be the pipeline groups of the
    pipelining pass when running transformed kernels in [Strict] mode.
    [check_races] (default true) detects two parallel-loop iterations
    writing the same cell — nondeterminism on real hardware that
    sequential interpretation would otherwise hide. Returns one tensor per
    kernel output.
    @raise Runtime_error on missing inputs, out-of-bounds accesses, data
    races or synchronization protocol violations. *)
