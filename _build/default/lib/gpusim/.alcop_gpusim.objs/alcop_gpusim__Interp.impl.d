lib/gpusim/interp.ml: Alcop_ir Alcop_pipeline Array Buffer Elemwise_ops Expr Format Hashtbl Kernel List Printf Queue Stmt String Tensor
