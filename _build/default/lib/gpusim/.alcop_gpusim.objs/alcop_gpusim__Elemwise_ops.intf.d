lib/gpusim/elemwise_ops.mli:
