lib/gpusim/trace.ml: Alcop_ir Alcop_pipeline Array Buffer Dtype Expr Format Hashtbl Kernel List Option Stmt String
