lib/gpusim/occupancy.ml: Alcop_hw Format
