lib/gpusim/occupancy.mli: Alcop_hw Format
