lib/gpusim/timing.mli: Alcop_hw Occupancy Trace
