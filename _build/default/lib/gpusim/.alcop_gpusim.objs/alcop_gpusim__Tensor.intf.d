lib/gpusim/tensor.mli: Alcop_ir Buffer Dtype Format
