lib/gpusim/elemwise_ops.ml: Alcop_ir Float Fun List
