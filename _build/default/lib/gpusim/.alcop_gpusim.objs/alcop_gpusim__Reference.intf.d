lib/gpusim/reference.mli: Alcop_sched Op_spec Tensor
