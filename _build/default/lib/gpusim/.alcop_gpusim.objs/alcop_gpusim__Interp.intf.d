lib/gpusim/interp.mli: Alcop_ir Alcop_pipeline Kernel Tensor
