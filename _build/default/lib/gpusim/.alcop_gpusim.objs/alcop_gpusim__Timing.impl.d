lib/gpusim/timing.ml: Alcop_hw Array Float Hashtbl List Locality Occupancy Queue Trace
