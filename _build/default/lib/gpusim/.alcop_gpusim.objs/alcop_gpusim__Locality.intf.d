lib/gpusim/locality.mli: Alcop_hw
