lib/gpusim/reference.ml: Alcop_sched Array Elemwise_ops Hashtbl Op_spec Tensor
