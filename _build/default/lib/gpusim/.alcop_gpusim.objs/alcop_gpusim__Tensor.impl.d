lib/gpusim/tensor.ml: Alcop_ir Array Buffer Dtype Float Format List String
