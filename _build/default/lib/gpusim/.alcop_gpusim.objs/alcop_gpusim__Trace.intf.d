lib/gpusim/trace.mli: Alcop_ir Alcop_pipeline Format Kernel
