lib/gpusim/locality.ml: Alcop_hw Float
