(** Dense row-major host tensors for the functional interpreter and
    reference implementations. Values are float64; dtype drives byte
    accounting only. *)

open Alcop_ir

type t = {
  shape : int list;
  strides : int array;
  data : float array;
  dtype : Dtype.t;
}

val num_elements : int list -> int
val strides_of : int list -> int array

val create : ?dtype:Dtype.t -> int list -> float -> t
val zeros : ?dtype:Dtype.t -> int list -> t
val init : ?dtype:Dtype.t -> int list -> (int array -> float) -> t

val random : ?dtype:Dtype.t -> seed:int -> int list -> t
(** Deterministic pseudo-random values in [-1, 1). *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val of_buffer : Buffer.t -> t
val map : (float -> float) -> t -> t

val max_abs_diff : t -> t -> float
val allclose : ?atol:float -> ?rtol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
