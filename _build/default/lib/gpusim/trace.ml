(* Per-threadblock event traces extracted from kernel IR.

   The timing simulator does not interpret data; it replays the sequence of
   loads, computes and synchronization points one threadblock executes.
   Because every threadblock runs the same program, the extractor walks the
   program of one representative threadblock (grid loop variables pinned to
   zero) and aggregates warp-parallel loops (the warps of a threadblock
   march in lockstep through the homogeneous GEMM body, so their per-event
   bytes/FLOPs are summed).

   Synchronization of scope-synchronized (shared-memory) pipelines comes
   directly from the IR's producer/consumer primitives. Register-level
   pipelines have no explicit primitives — the hardware scoreboard stalls
   the consumer instead — so the extractor synthesizes the equivalent
   commit/wait structure: loads issued in one iteration of the pipeline
   loop form a batch, and a compute event waits until all batches except
   the youngest [stages-1] have completed. *)

open Alcop_ir

type level =
  | From_global
  | From_shared

type event =
  | Load of { level : level; bytes : int; async : bool; group : string option }
  | Store of { bytes : int }
  | Commit of string
  | Wait_oldest of string
  | Acquire of { group : string; stages : int }
  | Release of string
  | Barrier
  | Compute of { flops : int }

let pp_event fmt = function
  | Load { level; bytes; async; group } ->
    Format.fprintf fmt "load[%s] %dB%s%s"
      (match level with From_global -> "global" | From_shared -> "shared")
      bytes
      (if async then " async" else "")
      (match group with None -> "" | Some g -> " @" ^ g)
  | Store { bytes } -> Format.fprintf fmt "store %dB" bytes
  | Commit g -> Format.fprintf fmt "commit @%s" g
  | Wait_oldest g -> Format.fprintf fmt "wait @%s" g
  | Acquire { group; stages } -> Format.fprintf fmt "acquire @%s (%d)" group stages
  | Release g -> Format.fprintf fmt "release @%s" g
  | Barrier -> Format.fprintf fmt "barrier"
  | Compute { flops } -> Format.fprintf fmt "compute %d flops" flops

(* Mutable bookkeeping of one unsynchronized (register) pipeline group
   during extraction. *)
type soft_pipe = {
  sp_group : Alcop_pipeline.Analysis.group;
  mutable open_loads : bool;
  mutable batches : int;
  mutable waits : int;
}

type ctx = {
  kernel : Kernel.t;
  env : (string, int) Hashtbl.t;
  buffers : (string * Buffer.t) list;
  group_of : string -> Alcop_pipeline.Analysis.group option;
  soft : (string, soft_pipe) Hashtbl.t;
  stages_of : string -> int;
  mutable warp_mult : int;
  mutable events : event list;  (** reversed *)
}

let emit ctx e = ctx.events <- e :: ctx.events

let buffer_of ctx name =
  match List.assoc_opt name ctx.buffers with
  | Some b -> b
  | None -> invalid_arg ("Trace: unknown buffer " ^ name)

let eval ctx e = Expr.eval (fun v -> Hashtbl.find_opt ctx.env v) e

let bytes_of_region ctx (r : Stmt.region) =
  let b = buffer_of ctx r.Stmt.buffer in
  Stmt.region_elems r * Dtype.size_bytes b.Buffer.dtype

(* Close the open batch of every register pipeline that accumulated loads. *)
let flush_soft_commits ctx =
  Hashtbl.iter
    (fun _ sp ->
      if sp.open_loads then begin
        emit ctx (Commit sp.sp_group.Alcop_pipeline.Analysis.id);
        sp.batches <- sp.batches + 1;
        sp.open_loads <- false
      end)
    ctx.soft

(* Before a compute event: retire register-pipeline batches down to the
   pipeline depth, mirroring the hardware scoreboard stall on the operands
   loaded [stages-1] iterations ago. *)
let soft_waits_before_compute ctx =
  flush_soft_commits ctx;
  Hashtbl.iter
    (fun _ sp ->
      let depth = sp.sp_group.Alcop_pipeline.Analysis.stages - 1 in
      while sp.waits < sp.batches - depth do
        emit ctx (Wait_oldest sp.sp_group.Alcop_pipeline.Analysis.id);
        sp.waits <- sp.waits + 1
      done)
    ctx.soft

let rec walk ctx stmt =
  match stmt with
  | Stmt.Seq ss -> List.iter (walk ctx) ss
  | Stmt.Alloc { body; _ } -> walk ctx body
  | Stmt.For { var; extent; kind; body } ->
    (match kind with
     | Stmt.Parallel (Stmt.Block_x | Stmt.Block_y | Stmt.Block_z) ->
       Hashtbl.replace ctx.env var 0;
       walk ctx body;
       Hashtbl.remove ctx.env var
     | Stmt.Parallel (Stmt.Warp_x | Stmt.Warp_y) ->
       let n = eval ctx extent in
       let saved = ctx.warp_mult in
       ctx.warp_mult <- ctx.warp_mult * n;
       Hashtbl.replace ctx.env var 0;
       walk ctx body;
       Hashtbl.remove ctx.env var;
       ctx.warp_mult <- saved
     | Stmt.Sequential | Stmt.Unrolled ->
       let n = eval ctx extent in
       for i = 0 to n - 1 do
         Hashtbl.replace ctx.env var i;
         walk ctx body;
         (* An iteration boundary closes open register-pipeline batches
            (e.g. each prologue-loop iteration loads one chunk). *)
         flush_soft_commits ctx
       done;
       Hashtbl.remove ctx.env var)
  | Stmt.If { cond; then_ } ->
    let l = eval ctx cond.Stmt.lhs and r = eval ctx cond.Stmt.rhs in
    let holds =
      match cond.Stmt.cmp with
      | Stmt.Eq -> l = r
      | Stmt.Ne -> l <> r
      | Stmt.Lt -> l < r
      | Stmt.Le -> l <= r
    in
    if holds then walk ctx then_
  | Stmt.Copy { kind; dst; src; _ } ->
    let dst_buf = buffer_of ctx dst.Stmt.buffer in
    let bytes = bytes_of_region ctx src * ctx.warp_mult in
    (match dst_buf.Buffer.scope with
     | Buffer.Global -> emit ctx (Store { bytes })
     | Buffer.Shared | Buffer.Register ->
       let src_buf = buffer_of ctx src.Stmt.buffer in
       let level =
         match src_buf.Buffer.scope with
         | Buffer.Global -> From_global
         | Buffer.Shared | Buffer.Register -> From_shared
       in
       let async = kind = Stmt.Async_copy in
       let group = ctx.group_of dst.Stmt.buffer in
       let gid =
         Option.map (fun g -> g.Alcop_pipeline.Analysis.id) group
       in
       emit ctx (Load { level; bytes; async; group = gid });
       (match group with
        | Some g when not g.Alcop_pipeline.Analysis.synchronized ->
          let sp = Hashtbl.find ctx.soft g.Alcop_pipeline.Analysis.id in
          sp.open_loads <- true
        | Some _ | None -> ()))
  | Stmt.Fill _ -> ()
  | Stmt.Mma { c; a; _ } ->
    soft_waits_before_compute ctx;
    (match Stmt.squeeze_lens c, Stmt.squeeze_lens a with
     | [ m; n ], [ _; k ] ->
       emit ctx (Compute { flops = 2 * m * n * k * ctx.warp_mult })
     | _ -> invalid_arg "Trace: malformed mma operands")
  | Stmt.Unop { dst; _ } ->
    (* Element-wise transforms ride along with copies in our kernels; a
       stand-alone unop is costed as CUDA-core work via its output size. *)
    let bytes = bytes_of_region ctx dst * ctx.warp_mult in
    emit ctx (Compute { flops = bytes })
  | Stmt.Accum { dst; src } ->
    (* read both operands, write the destination *)
    let dst_buf = buffer_of ctx dst.Stmt.buffer in
    let bytes = bytes_of_region ctx src * ctx.warp_mult in
    (match dst_buf.Buffer.scope with
     | Buffer.Global ->
       emit ctx (Load { level = From_global; bytes; async = false; group = None });
       emit ctx (Store { bytes })
     | Buffer.Shared | Buffer.Register ->
       emit ctx (Load { level = From_shared; bytes; async = false; group = None }))
  | Stmt.Sync s ->
    (match s with
     | Stmt.Barrier -> emit ctx Barrier
     | Stmt.Producer_acquire g ->
       emit ctx (Acquire { group = g; stages = ctx.stages_of g })
     | Stmt.Producer_commit g -> emit ctx (Commit g)
     | Stmt.Consumer_wait g -> emit ctx (Wait_oldest g)
     | Stmt.Consumer_release g -> emit ctx (Release g))

let extract ~(groups : Alcop_pipeline.Analysis.group list) (kernel : Kernel.t) =
  let buffers =
    List.map (fun (b : Buffer.t) -> (b.Buffer.name, b)) (Kernel.all_buffers kernel)
  in
  let by_buffer = Hashtbl.create 8 in
  List.iter
    (fun (g : Alcop_pipeline.Analysis.group) ->
      List.iter
        (fun n -> Hashtbl.replace by_buffer n g)
        (Alcop_pipeline.Analysis.member_names g))
    groups;
  let soft = Hashtbl.create 4 in
  List.iter
    (fun (g : Alcop_pipeline.Analysis.group) ->
      if not g.Alcop_pipeline.Analysis.synchronized then
        Hashtbl.replace soft g.Alcop_pipeline.Analysis.id
          { sp_group = g; open_loads = false; batches = 0; waits = 0 })
    groups;
  let stages_of gid =
    match
      List.find_opt
        (fun (g : Alcop_pipeline.Analysis.group) ->
          String.equal g.Alcop_pipeline.Analysis.id gid)
        groups
    with
    | Some g -> g.Alcop_pipeline.Analysis.stages
    | None -> 2
  in
  let ctx =
    { kernel; env = Hashtbl.create 16; buffers;
      group_of = Hashtbl.find_opt by_buffer; soft; stages_of; warp_mult = 1;
      events = [] }
  in
  walk ctx kernel.Kernel.body;
  Array.of_list (List.rev ctx.events)

(* Aggregate statistics of a trace; used by tests and reporting. *)
type stats = {
  global_load_bytes : int;
  shared_load_bytes : int;
  store_bytes : int;
  flops : int;
  n_events : int;
}

let stats_of trace =
  Array.fold_left
    (fun acc e ->
      match e with
      | Load { level = From_global; bytes; _ } ->
        { acc with global_load_bytes = acc.global_load_bytes + bytes }
      | Load { level = From_shared; bytes; _ } ->
        { acc with shared_load_bytes = acc.shared_load_bytes + bytes }
      | Store { bytes } -> { acc with store_bytes = acc.store_bytes + bytes }
      | Compute { flops } -> { acc with flops = acc.flops + flops }
      | Commit _ | Wait_oldest _ | Acquire _ | Release _ | Barrier -> acc)
    { global_load_bytes = 0; shared_load_bytes = 0; store_bytes = 0; flops = 0;
      n_events = Array.length trace }
    trace
