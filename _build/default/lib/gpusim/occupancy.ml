(* Threadblock residency: how many threadblocks one SM can host, limited by
   shared memory, register file, thread count and the hardware cap. This is
   the paper's "maximum number of threadblocks per SM is limited by the
   size of shared memory and register files" (Sec. IV-A); pipelining
   multiplies the shared-memory tile by the stage count, which is exactly
   the pipelining-versus-occupancy trade-off the performance model must
   capture. *)

type t = {
  tbs_per_sm : int;
  limiter : string;  (** which resource bounds residency *)
  threads_per_tb : int;
  smem_per_tb : int;
  regs_per_thread : int;
}

type failure = {
  resource : string;
  needed : int;
  available : int;
}

let pp_failure fmt f =
  Format.fprintf fmt "%s: threadblock needs %d, hardware provides %d"
    f.resource f.needed f.available

(* Kernels that exceed a per-threadblock resource bound do not compile /
   launch; the tuner treats these points as "compile fail" (paper Fig. 12). *)
let compute (hw : Alcop_hw.Hw_config.t) ~smem_per_tb ~warps_per_tb
    ~regs_per_thread =
  let threads_per_tb = warps_per_tb * hw.Alcop_hw.Hw_config.threads_per_warp in
  let fail resource needed available = Error { resource; needed; available } in
  if smem_per_tb > hw.Alcop_hw.Hw_config.smem_bytes_per_tb_max then
    fail "shared memory per threadblock" smem_per_tb
      hw.Alcop_hw.Hw_config.smem_bytes_per_tb_max
  else if regs_per_thread > hw.Alcop_hw.Hw_config.registers_per_thread_max then
    fail "registers per thread" regs_per_thread
      hw.Alcop_hw.Hw_config.registers_per_thread_max
  else if threads_per_tb > 1024 then fail "threads per threadblock" threads_per_tb 1024
  else begin
    let by_smem =
      if smem_per_tb = 0 then hw.Alcop_hw.Hw_config.max_tbs_per_sm
      else hw.Alcop_hw.Hw_config.smem_bytes_per_sm / smem_per_tb
    in
    let by_regs =
      hw.Alcop_hw.Hw_config.registers_per_sm / (regs_per_thread * threads_per_tb)
    in
    let by_threads = hw.Alcop_hw.Hw_config.max_threads_per_sm / threads_per_tb in
    let by_cap = hw.Alcop_hw.Hw_config.max_tbs_per_sm in
    let tbs_per_sm = min (min by_smem by_regs) (min by_threads by_cap) in
    if tbs_per_sm < 1 then
      fail "SM resources for one threadblock" 1 0
    else begin
      let limiter =
        if tbs_per_sm = by_smem then "shared memory"
        else if tbs_per_sm = by_regs then "registers"
        else if tbs_per_sm = by_threads then "threads"
        else "threadblock cap"
      in
      Ok { tbs_per_sm; limiter; threads_per_tb; smem_per_tb; regs_per_thread }
    end
  end
