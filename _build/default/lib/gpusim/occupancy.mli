(** Threadblock residency: how many threadblocks one SM can host, limited
    by shared memory, register file, thread count and the hardware cap.
    Pipelining multiplies the shared-memory tile by the stage count, which
    is the pipelining-versus-occupancy trade-off the performance model must
    capture (paper Sec. IV-A). *)

type t = {
  tbs_per_sm : int;
  limiter : string;
  threads_per_tb : int;
  smem_per_tb : int;
  regs_per_thread : int;
}

type failure = {
  resource : string;
  needed : int;
  available : int;
}

val pp_failure : Format.formatter -> failure -> unit

val compute :
  Alcop_hw.Hw_config.t ->
  smem_per_tb:int ->
  warps_per_tb:int ->
  regs_per_thread:int ->
  (t, failure) result
(** [Error] when one threadblock exceeds a per-threadblock hardware bound —
    such schedules do not launch (the tuner's "compile fail"). *)
