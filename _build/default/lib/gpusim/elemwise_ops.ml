(* Registry of element-wise functions that can be fused into copies (paper
   Fig. 5's f(.)) or materialized as separate stages. Unary only: the fusion
   study needs a lightweight op such as a datatype cast or an activation. *)

let gelu x =
  (* tanh approximation of GELU *)
  0.5 *. x *. (1.0 +. tanh (0.7978845608028654 *. (x +. (0.044715 *. x *. x *. x))))

let table : (string * (float -> float)) list = [
  ("id", Fun.id);
  ("cast_f16", Alcop_ir.Dtype.quantize Alcop_ir.Dtype.F16);
  ("relu", fun x -> Float.max 0.0 x);
  ("scale2", fun x -> 2.0 *. x);
  ("neg", fun x -> -.x);
  ("add1", fun x -> x +. 1.0);
  ("gelu", gelu);
  ("sigmoid", fun x -> 1.0 /. (1.0 +. exp (-.x)));
  ("square", fun x -> x *. x);
]

let find name = List.assoc_opt name table

let find_exn name =
  match find name with
  | Some f -> f
  | None -> invalid_arg ("Elemwise_ops: unknown op " ^ name)

let names = List.map fst table
