(* Tiling parameters: the threadblock tile and the warp tile (paper Fig. 7's
   TB_tile and Warp_tile parameters). Together with the pipeline stage counts these
   are the schedule parameters the auto-tuner searches. *)

type t = {
  tb_m : int;
  tb_n : int;
  tb_k : int;
  warp_m : int;
  warp_n : int;
  warp_k : int;
  split_k : int;
      (** reduction split: the K loop is partitioned across [split_k]
          threadblocks writing partial outputs, reduced by a second kernel;
          1 = off. Restores inter-threadblock parallelism on small-output
          long-reduction shapes. *)
}

let make ?(split_k = 1) ~tb_m ~tb_n ~tb_k ~warp_m ~warp_n ~warp_k () =
  { tb_m; tb_n; tb_k; warp_m; warp_n; warp_k; split_k }

(* Tensor-core fragment granularity: warp tiles are built from 16x16x16 MMA
   instructions. *)
let mma_granule = 16

let validate t (spec : Op_spec.t) =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let divides a b = b mod a = 0 in
  if not (divides t.tb_m spec.Op_spec.m) then
    err "tb_m=%d does not divide M=%d" t.tb_m spec.Op_spec.m
  else if not (divides t.tb_n spec.Op_spec.n) then
    err "tb_n=%d does not divide N=%d" t.tb_n spec.Op_spec.n
  else if not (divides t.tb_k spec.Op_spec.k) then
    err "tb_k=%d does not divide K=%d" t.tb_k spec.Op_spec.k
  else if not (divides t.warp_m t.tb_m) then
    err "warp_m=%d does not divide tb_m=%d" t.warp_m t.tb_m
  else if not (divides t.warp_n t.tb_n) then
    err "warp_n=%d does not divide tb_n=%d" t.warp_n t.tb_n
  else if not (divides t.warp_k t.tb_k) then
    err "warp_k=%d does not divide tb_k=%d" t.warp_k t.tb_k
  else if not (divides mma_granule t.warp_m) then
    err "warp_m=%d is not a multiple of the %dx%dx%d MMA granule" t.warp_m
      mma_granule mma_granule mma_granule
  else if not (divides mma_granule t.warp_n) then
    err "warp_n=%d is not a multiple of the MMA granule" t.warp_n
  else if not (divides mma_granule t.warp_k) then
    err "warp_k=%d is not a multiple of the MMA granule" t.warp_k
  else if t.split_k < 1 then err "split_k=%d must be at least 1" t.split_k
  else if not (divides t.split_k (spec.Op_spec.k / t.tb_k)) then
    err "split_k=%d does not divide the %d K iterations" t.split_k
      (spec.Op_spec.k / t.tb_k)
  else Ok ()

let warps_m t = t.tb_m / t.warp_m
let warps_n t = t.tb_n / t.warp_n
let warps t = warps_m t * warps_n t

let threadblocks t (spec : Op_spec.t) =
  spec.Op_spec.batch * (spec.Op_spec.m / t.tb_m) * (spec.Op_spec.n / t.tb_n)
  * t.split_k

(* Sequential K iterations of one threadblock: its share of the split. *)
let k_iters t (spec : Op_spec.t) = spec.Op_spec.k / t.tb_k / t.split_k
let ki_iters t = t.tb_k / t.warp_k

(* Shared-memory bytes for the A and B tiles of one pipeline stage. *)
let smem_tile_bytes t elem_bytes = (t.tb_m + t.tb_n) * t.tb_k * elem_bytes

(* Per-thread register estimate: the C accumulator dominates; A and B
   fragments (per register pipeline stage) add on top. fp32 accumulation,
   32 threads per warp, 4 bytes per register. *)
let registers_per_thread t ~reg_stages =
  let acc = t.warp_m * t.warp_n / 32 in
  let frags = reg_stages * (t.warp_m + t.warp_n) * t.warp_k / 32 / 2 in
  acc + frags + 24 (* index arithmetic, pointers, misc *)

let equal (a : t) (b : t) = a = b

let to_string t =
  Printf.sprintf "tb(%dx%dx%d)/warp(%dx%dx%d)%s" t.tb_m t.tb_n t.tb_k t.warp_m
    t.warp_n t.warp_k
    (if t.split_k > 1 then Printf.sprintf "/split%d" t.split_k else "")

let pp fmt t = Format.pp_print_string fmt (to_string t)
