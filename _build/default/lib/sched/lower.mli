(** Lowering: schedule -> input IR (paper Fig. 7, left): the canonical
    tensor-core GEMM loop nest with synchronous copies and plain barriers.
    Turning load-and-use loops into pipelines is the pipelining pass's job. *)

open Alcop_ir

exception Lowering_error of string

type lowered = {
  kernel : Kernel.t;
  hints : Alcop_pipeline.Hints.t;
  materialize : (string * string * string) list;
      (** (tensor, source, op): non-inlined element-wise producers that must
          be computed into global tensors before the kernel runs *)
  reduce : Kernel.t option;
      (** split-K epilogue kernel: sums the partial-output workspace into C
          and applies the epilogue op; [None] when [split_k = 1] *)
  schedule : Schedule.t;
}

val run : Schedule.t -> lowered
(** @raise Lowering_error when the schedule lacks tiling or the canonical
    two-level cache structure. *)
