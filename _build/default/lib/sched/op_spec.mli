(** Operator specifications.

    Every pipelining-applicable operator (MatMul, batched MatMul, Conv2D) is
    expressed as a (possibly batched) GEMM:
    [C[b,i,j] = sum_k A[b,i,k] * B[b,j,k]]. Conv2D goes through implicit
    GEMM (im2col). *)

open Alcop_ir

type conv_shape = {
  cn : int;
  ci : int;
  ch : int;
  cw : int;
  co : int;
  ckh : int;
  ckw : int;
  stride : int;
  pad : int;
}

type kind =
  | Matmul
  | Batched_matmul
  | Conv2d of conv_shape

type t = {
  name : string;
  kind : kind;
  batch : int;
  m : int;
  n : int;
  k : int;
  dtype : Dtype.t;
  a_op : string option;    (** element-wise producer on input A (Fig. 5) *)
  b_op : string option;
  epilogue : string option;
}

val matmul :
  ?dtype:Dtype.t -> ?a_op:string -> ?b_op:string -> ?epilogue:string ->
  name:string -> m:int -> n:int -> k:int -> unit -> t

val batched_matmul :
  ?dtype:Dtype.t -> ?a_op:string -> ?b_op:string -> ?epilogue:string ->
  name:string -> batch:int -> m:int -> n:int -> k:int -> unit -> t

val conv_out_dim : dim:int -> kdim:int -> stride:int -> pad:int -> int

val conv2d : ?dtype:Dtype.t -> ?epilogue:string -> name:string -> conv_shape -> t
(** Derives the implicit-GEMM dimensions M = N·OH·OW, N = OC, K = IC·KH·KW. *)

val flops : t -> int
val footprint_elements : t -> int
val footprint_bytes : t -> int
val arithmetic_intensity : t -> float

val a_shape : t -> int list
val b_shape : t -> int list
val c_shape : t -> int list

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
