(** The schedule: a dataflow graph plus transformation state (tiling,
    pipelining hints, inlining, swizzle), with the ordering rules of paper
    Sec. II-B enforced. *)

open Alcop_ir

type action =
  | Did_cache_read of string
  | Did_tile
  | Did_pipeline of string
  | Did_inline of string

type error = {
  primitive : string;
  reason : string;
}

exception Schedule_error of error

val pp_error : Format.formatter -> error -> unit

type t = {
  spec : Op_spec.t;
  graph : Dataflow.t;
  tiling : Tiling.t option;
  pipeline_hints : Alcop_pipeline.Hints.t;
  swizzle : bool;
  log : action list;  (** most recent first *)
}

val create : Op_spec.t -> t

val pipelined : t -> string -> bool

val cache_read : t -> string -> Buffer.scope -> t * string
(** Insert a cache-read stage. @raise Schedule_error if applied after
    pipelining (ordering rule). *)

val tile : t -> Tiling.t -> t
(** @raise Schedule_error if already tiled or tiling is invalid. *)

val set_swizzle : t -> bool -> t

val pipeline : ?inner_fuse:bool -> t -> string -> stages:int -> t
(** Attach the pipelining primitive to a buffer stage. Surface legality
    (rule 1, ordering against tiling) is checked here; rules 2 and 3 run on
    the lowered loop nest inside the pipelining pass.
    @raise Schedule_error on violation. *)

val inline : t -> string -> t
(** Inline an element-wise stage (paper Fig. 5). If its consumer buffer is
    pipelined, the op is fused into the downstream synchronous copy
    (case 2); otherwise it fuses into the consumer's own copy, making it
    synchronous (case 1 — a later [pipeline] of that buffer fails rule 1).
    @raise Schedule_error when no legal fusion point exists. *)

type auto_decision =
  | Pipelined of int
  | Skipped of string

val auto_pipeline :
  ?inner_fuse:bool ->
  hw:Alcop_hw.Hw_config.t ->
  smem_stages:int ->
  reg_stages:int ->
  t ->
  t * (string * auto_decision) list
(** Automatic pipelining (paper Sec. II): attach the pipelining primitive
    to every cache-read buffer the legality rules allow on the given
    hardware, with the per-level stage counts; returns the per-buffer
    decisions. Degrades gracefully on hardware without asynchronous copies
    (e.g. pre-Ampere: shared-memory buffers are skipped under rule 1 while
    register pipelining still applies). *)

val default_gemm :
  ?smem_stages:int -> ?reg_stages:int -> ?inner_fuse:bool ->
  ?inline_elemwise:bool -> Op_spec.t -> Tiling.t -> t
(** The canonical GPU GEMM schedule: two-level cache reads on both inputs,
    tiling, pipelining at the requested levels (a stage count of 1 disables
    that level), and inlining of element-wise input producers. *)
