(* Dataflow stage graph.

   The schedule transformation (paper Sec. II) operates on this graph: it is
   the equivalent of TVM's stage list after te.create_schedule. Stages are
   kept in topological order; [cache_read] and [inline] rewrite the graph
   before lowering turns it into a loop nest. *)

open Alcop_ir

type kind =
  | Placeholder
  | Elemwise of { src : string; op : string }
  | Cache_read of { src : string; scope : Buffer.scope; fused : string option }
  | Gemm of { a : string; b : string }

type stage = {
  name : string;
  kind : kind;
  shape : int list;
  dtype : Dtype.t;
}

type t = {
  stages : stage list;  (** topological order, producers first *)
  output : string;
}

let find t name = List.find_opt (fun s -> String.equal s.name name) t.stages

let find_exn t name =
  match find t name with
  | Some s -> s
  | None -> invalid_arg ("Dataflow: unknown stage " ^ name)

let mem t name = find t name <> None

let sources (s : stage) =
  match s.kind with
  | Placeholder -> []
  | Elemwise { src; _ } | Cache_read { src; _ } -> [ src ]
  | Gemm { a; b } -> [ a; b ]

let consumers t name =
  List.filter (fun s -> List.mem name (sources s)) t.stages

let producer t name =
  match (find_exn t name).kind with
  | Placeholder -> None
  | Elemwise { src; _ } | Cache_read { src; _ } -> Some src
  | Gemm _ -> None

(* Build the graph of an operator spec:
   A [-> A_f] -> gemm <- [B_f <-] B, output C. Element-wise producers are
   separate stages until the schedule inlines them. *)
let of_spec (spec : Op_spec.t) =
  let elem name op src shape =
    { name; kind = Elemwise { src; op }; shape; dtype = spec.Op_spec.dtype }
  in
  let a = { name = "A"; kind = Placeholder; shape = Op_spec.a_shape spec;
            dtype = spec.Op_spec.dtype } in
  let b = { name = "B"; kind = Placeholder; shape = Op_spec.b_shape spec;
            dtype = spec.Op_spec.dtype } in
  let a_stages, a_src =
    match spec.Op_spec.a_op with
    | None -> ([ a ], "A")
    | Some op -> ([ a; elem "A_f" op "A" a.shape ], "A_f")
  in
  let b_stages, b_src =
    match spec.Op_spec.b_op with
    | None -> ([ b ], "B")
    | Some op -> ([ b; elem "B_f" op "B" b.shape ], "B_f")
  in
  let c = { name = "C"; kind = Gemm { a = a_src; b = b_src };
            shape = Op_spec.c_shape spec; dtype = spec.Op_spec.dtype } in
  { stages = a_stages @ b_stages @ [ c ]; output = "C" }

(* Insert a cache-read stage of [src] in [scope]; consumers of [src] that
   read it through the new buffer are retargeted. Mirrors TVM's
   [cache_read(tensor, scope, readers)] with all downstream consumers as
   readers. *)
let cache_read t src_name scope =
  let src = find_exn t src_name in
  let suffix =
    match scope with
    | Buffer.Shared -> "_sh"
    | Buffer.Register -> "_reg"
    | Buffer.Global -> "_gbl"
  in
  (* Strip a previous level's suffix so chains read A -> A_sh -> A_reg. *)
  let base =
    List.fold_left
      (fun acc suf ->
        if String.length acc > String.length suf
           && String.equal (String.sub acc (String.length acc - String.length suf)
                              (String.length suf)) suf
        then String.sub acc 0 (String.length acc - String.length suf)
        else acc)
      src_name [ "_sh"; "_reg"; "_gbl" ]
  in
  let name = base ^ suffix in
  if mem t name then invalid_arg ("Dataflow.cache_read: stage exists: " ^ name);
  let cache =
    { name; kind = Cache_read { src = src_name; scope; fused = None };
      shape = src.shape; dtype = src.dtype }
  in
  let retarget (s : stage) =
    if String.equal s.name name then s
    else
      match s.kind with
      | Elemwise e when String.equal e.src src_name ->
        { s with kind = Elemwise { e with src = name } }
      | Cache_read c when String.equal c.src src_name ->
        { s with kind = Cache_read { c with src = name } }
      | Gemm g ->
        let swap x = if String.equal x src_name then name else x in
        { s with kind = Gemm { a = swap g.a; b = swap g.b } }
      | Placeholder | Elemwise _ | Cache_read _ -> s
  in
  let rec insert_after = function
    | [] -> [ cache ]
    | s :: rest ->
      if String.equal s.name src_name then s :: cache :: List.map retarget rest
      else retarget s :: insert_after rest
  in
  ({ t with stages = insert_after t.stages }, name)

let set_fused t name op =
  let stages =
    List.map
      (fun s ->
        if String.equal s.name name then
          match s.kind with
          | Cache_read c -> { s with kind = Cache_read { c with fused = Some op } }
          | Placeholder | Elemwise _ | Gemm _ ->
            invalid_arg ("Dataflow.set_fused: " ^ name ^ " is not a cache read")
        else s)
      t.stages
  in
  { t with stages }

(* Remove an element-wise stage, rewiring its consumers to its source. Used
   by inlining after the op itself has been pushed into a copy. *)
let remove_elemwise t name =
  let stage = find_exn t name in
  let src =
    match stage.kind with
    | Elemwise { src; _ } -> src
    | Placeholder | Cache_read _ | Gemm _ ->
      invalid_arg ("Dataflow.remove_elemwise: " ^ name ^ " is not element-wise")
  in
  let retarget (s : stage) =
    let swap x = if String.equal x name then src else x in
    match s.kind with
    | Elemwise e -> { s with kind = Elemwise { e with src = swap e.src } }
    | Cache_read c -> { s with kind = Cache_read { c with src = swap c.src } }
    | Gemm g -> { s with kind = Gemm { a = swap g.a; b = swap g.b } }
    | Placeholder -> s
  in
  { t with
    stages =
      List.map retarget
        (List.filter (fun s -> not (String.equal s.name name)) t.stages) }

let cache_stages t =
  List.filter (fun s -> match s.kind with Cache_read _ -> true | _ -> false)
    t.stages

let elemwise_stages t =
  List.filter (fun s -> match s.kind with Elemwise _ -> true | _ -> false)
    t.stages

(* The chain of cache reads feeding one GEMM operand, outermost (global
   side) first, e.g. ["A_sh"; "A_reg"]. *)
let cache_chain t operand =
  let rec chase acc name =
    match (find_exn t name).kind with
    | Cache_read { src; _ } -> chase (name :: acc) src
    | Placeholder | Elemwise _ | Gemm _ -> (acc, name)
  in
  chase [] operand

let kind_to_string = function
  | Placeholder -> "placeholder"
  | Elemwise { src; op } -> Printf.sprintf "elemwise(%s, %s)" op src
  | Cache_read { src; scope; fused } ->
    Printf.sprintf "cache_read(%s, %s%s)" src (Buffer.scope_to_string scope)
      (match fused with None -> "" | Some f -> ", fused " ^ f)
  | Gemm { a; b } -> Printf.sprintf "gemm(%s, %s)" a b

let pp fmt t =
  List.iter
    (fun s ->
      Format.fprintf fmt "%s = %s : [%s]@," s.name (kind_to_string s.kind)
        (String.concat ", " (List.map string_of_int s.shape)))
    t.stages
