(* The schedule: a dataflow graph plus the transformation state the paper's
   Sec. II manipulates: tiling, pipelining hints, inlining decisions and the
   shared-memory swizzle flag, together with a log of applied primitives
   used to enforce the ordering rules of Sec. II-B:

   - cache-read and tiling must precede pipelining;
   - inlining must follow pipelining (Fig. 5): inlining an element-wise
     stage into a not-yet-pipelined cache read makes that cache read's copy
     synchronous (rule 1 then refuses to pipeline it, case 1); inlining
     after pipelining instead retargets the cache read past the element-wise
     stage and fuses the op into the downstream synchronous copy (case 2). *)

open Alcop_ir

type action =
  | Did_cache_read of string
  | Did_tile
  | Did_pipeline of string
  | Did_inline of string

type error = {
  primitive : string;
  reason : string;
}

exception Schedule_error of error

let fail primitive fmt =
  Format.kasprintf (fun reason -> raise (Schedule_error { primitive; reason })) fmt

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.primitive e.reason

type t = {
  spec : Op_spec.t;
  graph : Dataflow.t;
  tiling : Tiling.t option;
  pipeline_hints : Alcop_pipeline.Hints.t;
  swizzle : bool;
  log : action list;  (** most recent first *)
}

let create spec =
  { spec; graph = Dataflow.of_spec spec; tiling = None;
    pipeline_hints = Alcop_pipeline.Hints.empty; swizzle = true; log = [] }

let log_action t a = { t with log = a :: t.log }

let pipelined t name = Alcop_pipeline.Hints.mem t.pipeline_hints name

let cache_read t stage scope =
  if
    List.exists
      (function Did_pipeline _ -> true | _ -> false)
      t.log
  then
    fail "cache_read"
      "cache-reading must be applied before pipelining (paper Sec. II-B)";
  let graph, name = Dataflow.cache_read t.graph stage scope in
  (log_action { t with graph } (Did_cache_read name), name)

let tile t tiling =
  if t.tiling <> None then fail "tile" "the schedule is already tiled";
  (match Tiling.validate tiling t.spec with
   | Ok () -> ()
   | Error reason -> fail "tile" "%s" reason);
  log_action { t with tiling = Some tiling } Did_tile

let set_swizzle t swizzle = { t with swizzle }

(* Surface legality of pipelining a buffer stage (full rules 2 and 3 run on
   the lowered loop nest inside the pipelining pass; what can be decided on
   the dataflow graph is decided here). *)
let pipeline ?(inner_fuse = true) t stage ~stages =
  if t.tiling = None then
    fail "pipeline"
      "pipelining must follow tiling: rule 2 inspects the for-loop sketch \
       after tiling (paper Sec. II-B)";
  let s =
    match Dataflow.find t.graph stage with
    | Some s -> s
    | None -> fail "pipeline" "unknown stage %s" stage
  in
  (match s.Dataflow.kind with
   | Dataflow.Cache_read { fused = None; _ } -> ()
   | Dataflow.Cache_read { fused = Some op; _ } ->
     fail "pipeline"
       "rule 1: %s is produced by a copy fused with %s, which is not an \
        asynchronous memory copy" stage op
   | Dataflow.Placeholder | Dataflow.Elemwise _ | Dataflow.Gemm _ ->
     fail "pipeline"
       "rule 1: %s is not produced by a memory copy (it is a %s stage)"
       stage
       (Dataflow.kind_to_string s.Dataflow.kind));
  let hint =
    Alcop_pipeline.Hints.make ~inner_fuse ~buffer:stage ~stages ()
  in
  let pipeline_hints =
    try Alcop_pipeline.Hints.add t.pipeline_hints hint with
    | Invalid_argument m -> fail "pipeline" "%s" m
  in
  log_action { t with pipeline_hints } (Did_pipeline stage)

(* Inlining of an element-wise stage (paper Fig. 5). *)
let inline t stage =
  let s =
    match Dataflow.find t.graph stage with
    | Some s -> s
    | None -> fail "inline" "unknown stage %s" stage
  in
  let op =
    match s.Dataflow.kind with
    | Dataflow.Elemwise { op; _ } -> op
    | Dataflow.Placeholder | Dataflow.Cache_read _ | Dataflow.Gemm _ ->
      fail "inline" "%s is not an element-wise stage" stage
  in
  let consumers = Dataflow.consumers t.graph stage in
  let cache_consumer =
    match consumers with
    | [ c ] ->
      (match c.Dataflow.kind with
       | Dataflow.Cache_read _ -> c
       | Dataflow.Placeholder | Dataflow.Elemwise _ | Dataflow.Gemm _ ->
         fail "inline" "consumer of %s is not a cache read" stage)
    | [] -> fail "inline" "%s has no consumer" stage
    | _ -> fail "inline" "%s has multiple consumers" stage
  in
  let graph =
    if pipelined t cache_consumer.Dataflow.name then begin
      (* Case 2: the consumer is pipelined; keep its copy asynchronous by
         fusing the op into the next (synchronous) copy down the chain. *)
      let downstream =
        List.find_opt
          (fun (c : Dataflow.stage) ->
            match c.Dataflow.kind with
            | Dataflow.Cache_read _ -> true
            | _ -> false)
          (Dataflow.consumers t.graph cache_consumer.Dataflow.name)
      in
      match downstream with
      | None ->
        fail "inline"
          "cannot inline %s: its consumer %s is pipelined and no downstream \
           synchronous copy exists to carry the fused op" stage
          cache_consumer.Dataflow.name
      | Some d ->
        if pipelined t d.Dataflow.name then
          fail "inline"
            "cannot inline %s: every copy downstream of pipelined %s is \
             itself pipelined" stage cache_consumer.Dataflow.name
        else
          Dataflow.remove_elemwise
            (Dataflow.set_fused t.graph d.Dataflow.name op)
            stage
    end
    else
      (* Case 1: fuse into the consumer's own copy, which makes that copy
         synchronous; a later pipeline() on it will fail rule 1. *)
      Dataflow.remove_elemwise
        (Dataflow.set_fused t.graph cache_consumer.Dataflow.name op)
        stage
  in
  log_action { t with graph } (Did_inline stage)

(* Automatic pipelining (paper Sec. II, "the pass marks the buffer
   variables within such load-and-use loops as pipelined buffers"): walk
   every cache-read stage, decide the stage count from its memory level,
   and attach the pipelining primitive wherever the legality rules allow —
   recording why the others were skipped. Rule 1's hardware side (does this
   scope have asynchronous copies on this machine?) is decided here, so the
   same schedule request degrades gracefully on pre-Ampere hardware. *)

type auto_decision =
  | Pipelined of int
  | Skipped of string

let auto_pipeline ?(inner_fuse = true) ~(hw : Alcop_hw.Hw_config.t)
    ~smem_stages ~reg_stages t =
  let decide (t, report) (s : Dataflow.stage) =
    let name = s.Dataflow.name in
    match s.Dataflow.kind with
    | Dataflow.Cache_read { scope; _ } ->
      let stages =
        match scope with
        | Buffer.Shared -> smem_stages
        | Buffer.Register -> reg_stages
        | Buffer.Global -> 1
      in
      if stages < 2 then
        (t, (name, Skipped "pipelining disabled at this level") :: report)
      else if not (Alcop_hw.Hw_config.scope_is_async hw scope) then
        ( t,
          (name,
           Skipped
             (Printf.sprintf
                "rule 1: no asynchronous copy into %s scope on %s"
                (Buffer.scope_to_string scope) hw.Alcop_hw.Hw_config.name))
          :: report )
      else begin
        match pipeline ~inner_fuse t name ~stages with
        | t -> (t, (name, Pipelined stages) :: report)
        | exception Schedule_error e ->
          (t, (name, Skipped e.reason) :: report)
      end
    | Dataflow.Placeholder | Dataflow.Elemwise _ | Dataflow.Gemm _ ->
      (t, report)
  in
  let t, report =
    List.fold_left decide (t, []) (Dataflow.cache_stages t.graph)
  in
  (t, List.rev report)

(* The canonical GPU GEMM schedule used throughout the evaluation: two-level
   cache reads on both inputs, tiling, and pipelining at the requested
   levels. [smem_stages = 1] or [reg_stages = 1] disables pipelining at that
   level (used by the ablation compilers). *)
let default_gemm ?(smem_stages = 3) ?(reg_stages = 2) ?(inner_fuse = true)
    ?(inline_elemwise = true) spec tiling =
  let t = create spec in
  let t, a_sh = cache_read t (match spec.Op_spec.a_op with
                              | Some _ -> "A_f" | None -> "A") Buffer.Shared in
  let t, a_reg = cache_read t a_sh Buffer.Register in
  let t, b_sh = cache_read t (match spec.Op_spec.b_op with
                              | Some _ -> "B_f" | None -> "B") Buffer.Shared in
  let t, b_reg = cache_read t b_sh Buffer.Register in
  let t = tile t tiling in
  let t =
    if smem_stages >= 2 then
      let t = pipeline t a_sh ~stages:smem_stages in
      pipeline t b_sh ~stages:smem_stages
    else t
  in
  let t =
    if reg_stages >= 2 then
      let t = pipeline ~inner_fuse t a_reg ~stages:reg_stages in
      pipeline ~inner_fuse t b_reg ~stages:reg_stages
    else t
  in
  let t =
    if inline_elemwise then begin
      (* Best effort: when every downstream copy is pipelined there is no
         synchronous fusion point (Fig. 5), so the producer stays
         materialized instead. *)
      let try_inline t stage =
        match inline t stage with
        | t -> t
        | exception Schedule_error _ -> t
      in
      let t = if spec.Op_spec.a_op <> None then try_inline t "A_f" else t in
      if spec.Op_spec.b_op <> None then try_inline t "B_f" else t
    end
    else t
  in
  t
