(** Dataflow stage graph: the structure the schedule transformation (paper
    Sec. II) rewrites, equivalent to TVM's stage list. *)

open Alcop_ir

type kind =
  | Placeholder
  | Elemwise of { src : string; op : string }
  | Cache_read of { src : string; scope : Buffer.scope; fused : string option }
  | Gemm of { a : string; b : string }

type stage = {
  name : string;
  kind : kind;
  shape : int list;
  dtype : Dtype.t;
}

type t = {
  stages : stage list;  (** topological order, producers first *)
  output : string;
}

val find : t -> string -> stage option
val find_exn : t -> string -> stage
val mem : t -> string -> bool
val sources : stage -> string list
val consumers : t -> string -> stage list
val producer : t -> string -> string option

val of_spec : Op_spec.t -> t

val cache_read : t -> string -> Buffer.scope -> t * string
(** Insert a cache-read stage of the named stage in the given scope,
    retargeting all consumers through it. Returns the new stage name. *)

val set_fused : t -> string -> string -> t
(** Attach a fused element-wise op to a cache-read stage's copy. *)

val remove_elemwise : t -> string -> t
(** Remove an element-wise stage, rewiring consumers to its source. *)

val cache_stages : t -> stage list
val elemwise_stages : t -> stage list

val cache_chain : t -> string -> string list * string
(** [cache_chain t operand] follows cache reads from a GEMM operand back to
    its non-cache root: returns the chain outermost-first (e.g.
    [\["A_sh"; "A_reg"\]]) and the root stage name. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
