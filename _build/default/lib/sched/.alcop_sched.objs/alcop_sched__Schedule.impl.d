lib/sched/schedule.ml: Alcop_hw Alcop_ir Alcop_pipeline Buffer Dataflow Format List Op_spec Printf Tiling
