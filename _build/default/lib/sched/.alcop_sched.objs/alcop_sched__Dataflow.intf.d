lib/sched/dataflow.mli: Alcop_ir Buffer Dtype Format Op_spec
