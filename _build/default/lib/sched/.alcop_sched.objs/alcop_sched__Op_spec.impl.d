lib/sched/op_spec.ml: Alcop_ir Dtype Format
