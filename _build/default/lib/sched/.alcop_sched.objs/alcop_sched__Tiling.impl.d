lib/sched/tiling.ml: Format Op_spec Printf
