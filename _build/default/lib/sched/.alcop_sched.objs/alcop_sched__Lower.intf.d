lib/sched/lower.mli: Alcop_ir Alcop_pipeline Kernel Schedule
