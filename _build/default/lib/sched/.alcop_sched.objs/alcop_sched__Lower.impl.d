lib/sched/lower.ml: Alcop_ir Alcop_pipeline Buffer Dataflow Expr Format Kernel List Op_spec Schedule Stmt String Tiling Validate
