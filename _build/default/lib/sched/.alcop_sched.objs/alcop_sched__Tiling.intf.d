lib/sched/tiling.mli: Format Op_spec
