lib/sched/schedule.mli: Alcop_hw Alcop_ir Alcop_pipeline Buffer Dataflow Format Op_spec Tiling
