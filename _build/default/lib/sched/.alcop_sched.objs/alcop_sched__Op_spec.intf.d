lib/sched/op_spec.mli: Alcop_ir Dtype Format
