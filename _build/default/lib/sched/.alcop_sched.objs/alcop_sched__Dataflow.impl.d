lib/sched/dataflow.ml: Alcop_ir Buffer Dtype Format List Op_spec Printf String
