(* Operator specifications.

   Every pipelining-applicable operator of the paper (MatMul, batched
   MatMul, Conv2D) is expressed as a (possibly batched) GEMM:
   C[b, i, j] = sum_k A[b, i, k] * B[b, j, k]. Conv2D is lowered through
   implicit GEMM (im2col): the workload layer materializes the im2col view
   so the kernel itself is a GEMM, which is also how the paper's tensor-core
   convolutions are scheduled.

   Optional element-wise producers on the inputs ([a_op] / [b_op], e.g. a
   datatype cast as in paper Fig. 5) and an epilogue op on the output allow
   exercising the inlining-versus-pipelining ordering study. *)

open Alcop_ir

type conv_shape = {
  cn : int;       (* batch of images *)
  ci : int;       (* input channels *)
  ch : int;       (* input height *)
  cw : int;       (* input width *)
  co : int;       (* output channels *)
  ckh : int;      (* kernel height *)
  ckw : int;      (* kernel width *)
  stride : int;
  pad : int;
}

type kind =
  | Matmul
  | Batched_matmul
  | Conv2d of conv_shape

type t = {
  name : string;
  kind : kind;
  batch : int;
  m : int;
  n : int;
  k : int;
  dtype : Dtype.t;
  a_op : string option;
  b_op : string option;
  epilogue : string option;
}

let check t =
  if t.batch < 1 || t.m < 1 || t.n < 1 || t.k < 1 then
    invalid_arg ("Op_spec: non-positive dimension in " ^ t.name);
  t

let matmul ?(dtype = Dtype.F16) ?a_op ?b_op ?epilogue ~name ~m ~n ~k () =
  check { name; kind = Matmul; batch = 1; m; n; k; dtype; a_op; b_op; epilogue }

let batched_matmul ?(dtype = Dtype.F16) ?a_op ?b_op ?epilogue ~name ~batch ~m
    ~n ~k () =
  check
    { name; kind = Batched_matmul; batch; m; n; k; dtype; a_op; b_op; epilogue }

let conv_out_dim ~dim ~kdim ~stride ~pad = ((dim + (2 * pad) - kdim) / stride) + 1

let conv2d ?(dtype = Dtype.F16) ?epilogue ~name (c : conv_shape) =
  let oh = conv_out_dim ~dim:c.ch ~kdim:c.ckh ~stride:c.stride ~pad:c.pad in
  let ow = conv_out_dim ~dim:c.cw ~kdim:c.ckw ~stride:c.stride ~pad:c.pad in
  (* Implicit GEMM: M = N*OH*OW (pixels), N = OC, K = IC*KH*KW. *)
  check
    { name; kind = Conv2d c; batch = 1;
      m = c.cn * oh * ow; n = c.co; k = c.ci * c.ckh * c.ckw;
      dtype; a_op = None; b_op = None; epilogue }

let flops t = 2 * t.batch * t.m * t.n * t.k

(* Global-memory footprint of inputs plus output, in elements. *)
let footprint_elements t = t.batch * ((t.m * t.k) + (t.n * t.k) + (t.m * t.n))

let footprint_bytes t = footprint_elements t * Dtype.size_bytes t.dtype

(* Arithmetic intensity in FLOPs per byte; low intensity means the operator
   is bandwidth-bound and pipelining has little to hide behind. *)
let arithmetic_intensity t = float_of_int (flops t) /. float_of_int (footprint_bytes t)

let a_shape t = if t.batch > 1 then [ t.batch; t.m; t.k ] else [ t.m; t.k ]
let b_shape t = if t.batch > 1 then [ t.batch; t.n; t.k ] else [ t.n; t.k ]
let c_shape t = if t.batch > 1 then [ t.batch; t.m; t.n ] else [ t.m; t.n ]

let kind_to_string = function
  | Matmul -> "matmul"
  | Batched_matmul -> "bmm"
  | Conv2d _ -> "conv2d"

let pp fmt t =
  Format.fprintf fmt "%s(%s: b=%d m=%d n=%d k=%d %a)" (kind_to_string t.kind)
    t.name t.batch t.m t.n t.k Dtype.pp t.dtype
