(* Lowering: schedule -> input IR (paper Fig. 7, left).

   The emitted loop nest is the canonical tensor-core GEMM structure:

     for bi @blockIdx.y, bj @blockIdx.x (and bz @blockIdx.z when batched):
       alloc A_sh, B_sh (shared), A_reg, B_reg, C_reg (register)
       for wi, wj @warp: fill C_reg = 0
       for ko:                         -- sequential K loop over TB tiles
         memcpy A_sh <- A tile; memcpy B_sh <- B tile; __syncthreads
         for ki:                       -- sequential K loop over warp tiles
           for wi, wj @warp:
             memcpy A_reg <- A_sh chunk; memcpy B_reg <- B_sh chunk
             mma C_reg += A_reg * B_reg
         __syncthreads
       for wi, wj @warp: memcpy C tile <- C_reg   -- epilogue

   All copies are synchronous and guarded by plain barriers; turning the
   load-and-use loops into pipelines is the job of the pipelining pass.

   Element-wise input producers that were not inlined remain materialized
   global tensors; [materialize] reports them so the runtime computes them
   before the kernel (a separate kernel launch, costed by the timing
   simulator). *)

open Alcop_ir

exception Lowering_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Lowering_error m)) fmt

type lowered = {
  kernel : Kernel.t;
  hints : Alcop_pipeline.Hints.t;
  materialize : (string * string * string) list;
      (** (tensor, source, op): global tensors to compute before launch *)
  reduce : Kernel.t option;
      (** split-K epilogue: sums the partial-output workspace into C and
          applies the epilogue op; [None] when split_k = 1 *)
  schedule : Schedule.t;
}

(* One GEMM operand's cache chain: shared stage then register stage. *)
type operand = {
  root : string;  (** global tensor feeding the chain *)
  sh_name : string;
  sh_fused : string option;
  reg_name : string;
  reg_fused : string option;
}

let analyze_operand graph operand_name =
  let chain, root = Dataflow.cache_chain graph operand_name in
  match chain with
  | [ sh; reg ] ->
    let get name =
      match (Dataflow.find_exn graph name).Dataflow.kind with
      | Dataflow.Cache_read { scope; fused; _ } -> (scope, fused)
      | _ -> fail "stage %s is not a cache read" name
    in
    let sh_scope, sh_fused = get sh in
    let reg_scope, reg_fused = get reg in
    if not (Buffer.scope_equal sh_scope Buffer.Shared) then
      fail "stage %s must be in shared scope" sh;
    if not (Buffer.scope_equal reg_scope Buffer.Register) then
      fail "stage %s must be in register scope" reg;
    { root; sh_name = sh; sh_fused; reg_name = reg; reg_fused }
  | _ ->
    fail
      "operand %s needs a two-level cache chain (shared then register); got \
       [%s]" operand_name (String.concat "; " chain)

let run (sched : Schedule.t) =
  let spec = sched.Schedule.spec in
  let tiling =
    match sched.Schedule.tiling with
    | Some t -> t
    | None -> fail "schedule for %s is not tiled" spec.Op_spec.name
  in
  let graph = sched.Schedule.graph in
  let gemm = Dataflow.find_exn graph graph.Dataflow.output in
  let a_op_name, b_op_name =
    match gemm.Dataflow.kind with
    | Dataflow.Gemm { a; b } -> (a, b)
    | _ -> fail "output stage %s is not a GEMM" gemm.Dataflow.name
  in
  let a = analyze_operand graph a_op_name in
  let b = analyze_operand graph b_op_name in
  let { Tiling.tb_m; tb_n; tb_k; warp_m; warp_n; warp_k; split_k } = tiling in
  let nwi = Tiling.warps_m tiling in
  let nwj = Tiling.warps_n tiling in
  let n_ko = Tiling.k_iters tiling spec in
  let n_ki = Tiling.ki_iters tiling in
  let batched = spec.Op_spec.batch > 1 in
  let dtype = spec.Op_spec.dtype in
  (* Buffers. *)
  let root_stage name = Dataflow.find_exn graph name in
  let input_buffer name =
    Buffer.make ~name ~scope:Buffer.Global ~dtype
      ~shape:(root_stage name).Dataflow.shape
  in
  let a_in = input_buffer a.root in
  let b_in = input_buffer b.root in
  let c_out =
    Buffer.make ~name:graph.Dataflow.output ~scope:Buffer.Global ~dtype
      ~shape:(Op_spec.c_shape spec)
  in
  let a_sh =
    Buffer.make ~name:a.sh_name ~scope:Buffer.Shared ~dtype
      ~shape:[ tb_m; tb_k ]
  in
  let b_sh =
    Buffer.make ~name:b.sh_name ~scope:Buffer.Shared ~dtype
      ~shape:[ tb_n; tb_k ]
  in
  let a_reg =
    Buffer.make ~name:a.reg_name ~scope:Buffer.Register ~dtype
      ~shape:[ nwi; nwj; warp_m; warp_k ]
  in
  let b_reg =
    Buffer.make ~name:b.reg_name ~scope:Buffer.Register ~dtype
      ~shape:[ nwi; nwj; warp_n; warp_k ]
  in
  let c_reg_name = graph.Dataflow.output ^ "_reg" in
  let c_reg =
    Buffer.make ~name:c_reg_name ~scope:Buffer.Register ~dtype
      ~shape:[ nwi; nwj; warp_m; warp_n ]
  in
  (* Index expressions. *)
  let bz = Expr.var "bz" in
  let bi = Expr.var "bi" in
  let bj = Expr.var "bj" in
  let wi = Expr.var "wi" in
  let wj = Expr.var "wj" in
  let ko = Expr.var "ko" in
  let ki = Expr.var "ki" in
  let sk = Expr.var "sk" in
  let sl off len = Stmt.slice off len in
  let scaled v c = Expr.mul v (Expr.const c) in
  let with_batch slices = if batched then Stmt.point_slice bz :: slices else slices in
  (* Global tile regions. With split-K, threadblock [sk] owns K iterations
     [sk*n_ko, (sk+1)*n_ko). *)
  let k_index =
    if split_k > 1 then Expr.add (Expr.mul sk (Expr.const n_ko)) ko else ko
  in
  let a_tile =
    Stmt.region a.root
      (with_batch [ sl (scaled bi tb_m) tb_m; sl (scaled k_index tb_k) tb_k ])
  in
  let b_tile =
    Stmt.region b.root
      (with_batch [ sl (scaled bj tb_n) tb_n; sl (scaled k_index tb_k) tb_k ])
  in
  let partial_name = graph.Dataflow.output ^ "_partial" in
  let c_target = if split_k > 1 then partial_name else graph.Dataflow.output in
  let with_split slices =
    if split_k > 1 then Stmt.point_slice sk :: slices else slices
  in
  let c_tile =
    Stmt.region c_target
      (with_split
         (with_batch
            [ sl (Expr.add (scaled bi tb_m) (scaled wi warp_m)) warp_m;
              sl (Expr.add (scaled bj tb_n) (scaled wj warp_n)) warp_n ]))
  in
  (* Per-warp fragment regions. *)
  let frag name rows cols =
    Stmt.region name
      [ Stmt.point_slice wi; Stmt.point_slice wj; sl Expr.zero rows;
        sl Expr.zero cols ]
  in
  let warp_loops body =
    Stmt.for_ ~kind:(Stmt.Parallel Stmt.Warp_y) "wi" (Expr.const nwi)
      (Stmt.for_ ~kind:(Stmt.Parallel Stmt.Warp_x) "wj" (Expr.const nwj) body)
  in
  let fill =
    warp_loops (Stmt.Fill { dst = frag c_reg_name warp_m warp_n; value = 0.0 })
  in
  let copy_a_sh =
    Stmt.copy ?fused:a.sh_fused
      ~dst:(Stmt.region a.sh_name [ sl Expr.zero tb_m; sl Expr.zero tb_k ])
      ~src:a_tile ()
  in
  let copy_b_sh =
    Stmt.copy ?fused:b.sh_fused
      ~dst:(Stmt.region b.sh_name [ sl Expr.zero tb_n; sl Expr.zero tb_k ])
      ~src:b_tile ()
  in
  let copy_a_reg =
    Stmt.copy ?fused:a.reg_fused
      ~dst:(frag a.reg_name warp_m warp_k)
      ~src:
        (Stmt.region a.sh_name
           [ sl (scaled wi warp_m) warp_m; sl (scaled ki warp_k) warp_k ])
      ()
  in
  let copy_b_reg =
    Stmt.copy ?fused:b.reg_fused
      ~dst:(frag b.reg_name warp_n warp_k)
      ~src:
        (Stmt.region b.sh_name
           [ sl (scaled wj warp_n) warp_n; sl (scaled ki warp_k) warp_k ])
      ()
  in
  let mma =
    Stmt.Mma
      { c = frag c_reg_name warp_m warp_n;
        a = frag a.reg_name warp_m warp_k;
        b = frag b.reg_name warp_n warp_k }
  in
  let ki_loop =
    Stmt.for_ "ki" (Expr.const n_ki)
      (warp_loops (Stmt.seq [ copy_a_reg; copy_b_reg; mma ]))
  in
  let ko_loop =
    Stmt.for_ "ko" (Expr.const n_ko)
      (Stmt.seq
         [ copy_a_sh; copy_b_sh; Stmt.Sync Stmt.Barrier; ki_loop;
           Stmt.Sync Stmt.Barrier ])
  in
  let epilogue_fused = if split_k > 1 then None else spec.Op_spec.epilogue in
  let epilogue =
    warp_loops
      (Stmt.copy ?fused:epilogue_fused ~dst:c_tile
         ~src:(frag c_reg_name warp_m warp_n) ())
  in
  let tb_body =
    List.fold_right Stmt.alloc
      [ a_sh; b_sh; a_reg; b_reg; c_reg ]
      (Stmt.seq [ fill; ko_loop; epilogue ])
  in
  let grid =
    let with_bz body =
      if batched then
        Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_z) "bz"
          (Expr.const spec.Op_spec.batch) body
      else body
    in
    let with_sk body =
      if split_k > 1 then
        Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_z) "sk"
          (Expr.const split_k) body
      else body
    in
    with_sk
      (with_bz
         (Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_y) "bi"
            (Expr.const (spec.Op_spec.m / tb_m))
            (Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_x) "bj"
               (Expr.const (spec.Op_spec.n / tb_n))
               tb_body)))
  in
  let c_partial =
    Buffer.make ~name:partial_name ~scope:Buffer.Global ~dtype
      ~shape:(split_k :: Op_spec.c_shape spec)
  in
  let main_outputs = if split_k > 1 then [ c_partial ] else [ c_out ] in
  let kernel =
    Kernel.make ~name:spec.Op_spec.name ~inputs:[ a_in; b_in ]
      ~outputs:main_outputs ~body:grid
  in
  (* The split-K reduction kernel: per output tile, initialize from the
     first partial, accumulate the rest, then apply the epilogue op. *)
  let reduce =
    if split_k = 1 then None
    else begin
      let s = Expr.var "s" in
      let tile_region name ~lead =
        Stmt.region name
          (lead
           @ with_batch
               [ sl (scaled bi tb_m) tb_m; sl (scaled bj tb_n) tb_n ])
      in
      let c_region = tile_region graph.Dataflow.output ~lead:[] in
      let partial_at idx = tile_region partial_name ~lead:[ Stmt.point_slice idx ] in
      let body =
        Stmt.seq
          ([ Stmt.copy ~dst:c_region ~src:(partial_at Expr.zero) ();
             Stmt.for_ "s"
               (Expr.const (split_k - 1))
               (Stmt.Accum
                  { dst = c_region;
                    src = partial_at (Expr.add s Expr.one) }) ]
           @
           match spec.Op_spec.epilogue with
           | Some op -> [ Stmt.Unop { dst = c_region; src = c_region; op } ]
           | None -> [])
      in
      let grid =
        let with_bz body =
          if batched then
            Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_z) "bz"
              (Expr.const spec.Op_spec.batch) body
          else body
        in
        with_bz
          (Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_y) "bi"
             (Expr.const (spec.Op_spec.m / tb_m))
             (Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_x) "bj"
                (Expr.const (spec.Op_spec.n / tb_n))
                body))
      in
      Some
        (Kernel.make
           ~name:(spec.Op_spec.name ^ "_reduce")
           ~inputs:[ c_partial ] ~outputs:[ c_out ] ~body:grid)
    end
  in
  (match Validate.check kernel with
   | Ok () -> ()
   | Error errs -> fail "lowered kernel is invalid:\n%s" (Validate.errors_to_string errs));
  (match reduce with
   | Some k ->
     (match Validate.check k with
      | Ok () -> ()
      | Error errs ->
        fail "reduce kernel is invalid:\n%s" (Validate.errors_to_string errs))
   | None -> ());
  let materialize =
    List.filter_map
      (fun (s : Dataflow.stage) ->
        match s.Dataflow.kind with
        | Dataflow.Elemwise { src; op } ->
          (* Only materialize stages that actually feed the kernel. *)
          if String.equal s.Dataflow.name a.root
             || String.equal s.Dataflow.name b.root
          then Some (s.Dataflow.name, src, op)
          else None
        | _ -> None)
      graph.Dataflow.stages
  in
  { kernel; hints = sched.Schedule.pipeline_hints; materialize; reduce;
    schedule = sched }
