(** Tiling parameters: the threadblock tile and the warp tile (paper
    Fig. 7's TB_tile and Warp_tile parameters). *)

type t = {
  tb_m : int;
  tb_n : int;
  tb_k : int;
  warp_m : int;
  warp_n : int;
  warp_k : int;
  split_k : int;
      (** reduction split: the K loop is partitioned across [split_k]
          threadblocks writing partial outputs, reduced by a second kernel;
          1 = off *)
}

val make :
  ?split_k:int ->
  tb_m:int -> tb_n:int -> tb_k:int -> warp_m:int -> warp_n:int -> warp_k:int ->
  unit -> t

val mma_granule : int
(** Tensor-core MMA fragment edge (16). *)

val validate : t -> Op_spec.t -> (unit, string) result
(** Divisibility of the problem by the threadblock tile, of the threadblock
    tile by the warp tile, and MMA-granule alignment of the warp tile. *)

val warps_m : t -> int
val warps_n : t -> int
val warps : t -> int
val threadblocks : t -> Op_spec.t -> int
val k_iters : t -> Op_spec.t -> int
(** Sequential K iterations of one threadblock (its share of the split). *)

val ki_iters : t -> int

val smem_tile_bytes : t -> int -> int
(** [smem_tile_bytes t elem_bytes]: A+B tile bytes of one pipeline stage. *)

val registers_per_thread : t -> reg_stages:int -> int

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
