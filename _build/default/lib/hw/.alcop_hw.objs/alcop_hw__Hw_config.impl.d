lib/hw/hw_config.ml: Alcop_ir List
