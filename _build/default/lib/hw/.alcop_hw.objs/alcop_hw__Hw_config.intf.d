lib/hw/hw_config.mli: Alcop_ir
