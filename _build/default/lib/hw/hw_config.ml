(* Machine description of the simulated AI-GPU.

   Numbers default to an NVIDIA A100-SXM4-40GB-like configuration (the
   paper's evaluation platform). All rates are expressed per SM clock cycle
   so the timing simulator and the analytical model (paper Table I) work in
   a single unit: cycles. *)

type t = {
  name : string;
  num_sms : int;
  clock_ghz : float;
  (* Compute *)
  tensor_core_flops_per_cycle : int;
      (** fp16 tensor-core FLOPs per SM per cycle (mul+add counted as 2). *)
  cuda_core_flops_per_cycle : int;
      (** fp32 CUDA-core FLOPs per SM per cycle; used for element-wise ops. *)
  (* Memory capacities *)
  smem_bytes_per_sm : int;
      (** shared memory an SM can allocate across resident threadblocks. *)
  smem_bytes_per_tb_max : int;
      (** largest shared-memory allocation a single threadblock may make. *)
  registers_per_sm : int;  (** 32-bit registers per SM. *)
  registers_per_thread_max : int;
  max_threads_per_sm : int;
  max_tbs_per_sm : int;
  threads_per_warp : int;
  llc_bytes : int;  (** L2 cache capacity, shared by all SMs. *)
  (* Memory bandwidths, bytes per cycle, aggregate over the device *)
  dram_bytes_per_cycle : float;
  llc_bytes_per_cycle : float;
  smem_bytes_per_cycle_per_sm : float;
  (* Round-trip latencies in cycles (paper Table I's LAT terms) *)
  dram_latency : float;
  llc_latency : float;
  smem_latency : float;
  dram_write_latency : float;
  (* Which buffer scopes support asynchronous production (paper Sec. II-A,
     rule 1). Ampere's cp.async covers shared memory; register buffers are
     produced by ordinary loads that software pipelining issues early. *)
  async_scopes : Alcop_ir.Buffer.scope list;
  scope_synchronized : Alcop_ir.Buffer.scope list;
      (** scopes whose pipeline barriers are scope-based (paper rule 3):
          all pipelined buffers in such a scope share one barrier object,
          so their synchronization positions must match. *)
}

let ampere_a100 = {
  name = "sim-A100-SXM4-40GB";
  num_sms = 108;
  clock_ghz = 1.41;
  (* 312 TFLOPS fp16 dense / 108 SMs / 1.41 GHz = 2048 FLOP/SM/cycle *)
  tensor_core_flops_per_cycle = 2048;
  cuda_core_flops_per_cycle = 128;
  smem_bytes_per_sm = 164 * 1024;
  smem_bytes_per_tb_max = 160 * 1024;
  registers_per_sm = 65536;
  registers_per_thread_max = 255;
  max_threads_per_sm = 2048;
  max_tbs_per_sm = 32;
  threads_per_warp = 32;
  llc_bytes = 40 * 1024 * 1024;
  (* 1555 GB/s HBM2e / 1.41 GHz = 1103 B/cycle aggregate *)
  dram_bytes_per_cycle = 1103.0;
  (* ~5 TB/s L2 *)
  llc_bytes_per_cycle = 3550.0;
  (* 128 B/cycle/SM shared-memory throughput *)
  smem_bytes_per_cycle_per_sm = 128.0;
  dram_latency = 380.0;
  llc_latency = 170.0;
  smem_latency = 27.0;
  dram_write_latency = 350.0;
  async_scopes = [ Alcop_ir.Buffer.Shared; Alcop_ir.Buffer.Register ];
  scope_synchronized = [ Alcop_ir.Buffer.Shared ];
}

(* A pre-Ampere (Volta-like) configuration: no asynchronous shared-memory
   copy. On this target the smem-level pipelining legality rule 1 fails,
   which is why the paper evaluates on Ampere only. Used in tests. *)
let volta_v100 = {
  ampere_a100 with
  name = "sim-V100";
  num_sms = 80;
  clock_ghz = 1.53;
  tensor_core_flops_per_cycle = 1024;
  smem_bytes_per_sm = 96 * 1024;
  smem_bytes_per_tb_max = 96 * 1024;
  llc_bytes = 6 * 1024 * 1024;
  dram_bytes_per_cycle = 588.0;
  llc_bytes_per_cycle = 1800.0;
  async_scopes = [ Alcop_ir.Buffer.Register ];
}

let default = ampere_a100

let scope_is_async t scope =
  List.exists (Alcop_ir.Buffer.scope_equal scope) t.async_scopes

let scope_needs_matching_sync t scope =
  List.exists (Alcop_ir.Buffer.scope_equal scope) t.scope_synchronized

let cycles_to_us t cycles = cycles /. (t.clock_ghz *. 1000.0)

let us_to_cycles t us = us *. t.clock_ghz *. 1000.0

let peak_tensor_tflops t =
  float_of_int (t.tensor_core_flops_per_cycle * t.num_sms) *. t.clock_ghz /. 1000.0

let dram_gbytes_per_s t = t.dram_bytes_per_cycle *. t.clock_ghz
