(** Machine description of the simulated AI-GPU.

    All rates are per SM clock cycle so the timing simulator and the
    analytical model (paper Table I) share a single unit: cycles. *)

type t = {
  name : string;
  num_sms : int;
  clock_ghz : float;
  tensor_core_flops_per_cycle : int;
  cuda_core_flops_per_cycle : int;
  smem_bytes_per_sm : int;
  smem_bytes_per_tb_max : int;
  registers_per_sm : int;
  registers_per_thread_max : int;
  max_threads_per_sm : int;
  max_tbs_per_sm : int;
  threads_per_warp : int;
  llc_bytes : int;
  dram_bytes_per_cycle : float;
  llc_bytes_per_cycle : float;
  smem_bytes_per_cycle_per_sm : float;
  dram_latency : float;
  llc_latency : float;
  smem_latency : float;
  dram_write_latency : float;
  async_scopes : Alcop_ir.Buffer.scope list;
  scope_synchronized : Alcop_ir.Buffer.scope list;
}

val ampere_a100 : t
(** The paper's evaluation platform (A100-SXM4-40GB)-like machine. *)

val volta_v100 : t
(** Pre-Ampere machine without asynchronous shared-memory copies; pipelining
    legality rule 1 fails for shared-memory buffers on this target. *)

val default : t

val scope_is_async : t -> Alcop_ir.Buffer.scope -> bool
(** Can buffers in this scope be produced by an asynchronous copy? *)

val scope_needs_matching_sync : t -> Alcop_ir.Buffer.scope -> bool
(** Does this scope use scope-based pipeline barriers (paper rule 3)? *)

val cycles_to_us : t -> float -> float
val us_to_cycles : t -> float -> float
val peak_tensor_tflops : t -> float
val dram_gbytes_per_s : t -> float
