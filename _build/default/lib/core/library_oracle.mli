(** Library-kernel stand-in (paper Sec. V-C, Fig. 11): a fixed CUTLASS-like
    template family compiled through the same pipeline with a hand-tuning
    efficiency factor on top. *)

open Alcop_sched

val expert_factor : float

val template_points : Op_spec.t -> Alcop_perfmodel.Params.t list
(** The templates whose tilings divide this operator's shape. *)

val best_latency : ?hw:Alcop_hw.Hw_config.t -> Op_spec.t -> float option
(** Best template latency times the expert factor; [None] when no template
    fits the shape. *)
