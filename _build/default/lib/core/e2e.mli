(** End-to-end model evaluation (paper Sec. V-B, Table III): the sum of
    tuned tensor-contraction latencies per compiler plus a fixed
    non-optimized remainder identical across compilers. *)

open Alcop_workloads

type report = {
  model : string;
  tvm_cycles : float;
  xla_cycles : float;
  alcop_cycles : float;
  speedup_over_tvm : float;
  speedup_over_xla : float;
}

val sum_ops :
  per_op:(Alcop_sched.Op_spec.t -> float option) -> Models.t -> float
(** @raise Invalid_argument when an operator has no compilable schedule. *)

val evaluate : ?hw:Alcop_hw.Hw_config.t -> Models.t -> report
