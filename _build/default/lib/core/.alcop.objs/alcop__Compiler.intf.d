lib/core/compiler.mli: Alcop_gpusim Alcop_hw Alcop_ir Alcop_perfmodel Alcop_pipeline Alcop_sched Kernel Lower Op_spec Schedule
