lib/core/xla_like.mli: Alcop_hw Alcop_perfmodel Alcop_sched Op_spec
