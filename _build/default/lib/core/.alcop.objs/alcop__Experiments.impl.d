lib/core/experiments.ml: Alcop_hw Alcop_perfmodel Alcop_sched Alcop_tune Alcop_workloads Array Compiler E2e Float Hashtbl Library_oracle List Models Op_spec Option Printf Suites Tiling Variants
