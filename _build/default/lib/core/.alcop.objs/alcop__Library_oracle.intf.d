lib/core/library_oracle.mli: Alcop_hw Alcop_perfmodel Alcop_sched Op_spec
