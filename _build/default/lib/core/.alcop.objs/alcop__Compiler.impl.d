lib/core/compiler.ml: Alcop_gpusim Alcop_hw Alcop_ir Alcop_perfmodel Alcop_pipeline Alcop_sched Buffer Dtype Format Hashtbl Kernel List Lower Op_spec Schedule Stmt String Tiling
