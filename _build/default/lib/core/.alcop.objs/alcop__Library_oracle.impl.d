lib/core/library_oracle.ml: Alcop_hw Alcop_perfmodel Alcop_sched Compiler List Op_spec Option Tiling
