lib/core/variants.mli: Alcop_hw Alcop_perfmodel Alcop_sched Alcop_tune Op_spec
