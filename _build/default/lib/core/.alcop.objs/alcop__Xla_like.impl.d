lib/core/xla_like.ml: Alcop_gpusim Alcop_hw Alcop_ir Alcop_perfmodel Alcop_sched Compiler Library_oracle List Op_spec Option Tiling
