lib/core/e2e.mli: Alcop_hw Alcop_sched Alcop_workloads Models
