lib/core/e2e.ml: Alcop_hw Alcop_sched Alcop_workloads List Models Printf Variants Xla_like
