lib/core/variants.ml: Alcop_hw Alcop_ir Alcop_perfmodel Alcop_sched Alcop_tune Array Compiler Op_spec Tiling
