lib/core/experiments.mli: Alcop_hw Alcop_sched E2e Op_spec Variants
