(** XLA-like baseline compiler (paper Sec. V-B): library dispatch for plain
    MatMul/Conv2D, own unpipelined heuristic codegen plus
    layout-normalization copies for batched matmuls. *)

open Alcop_sched

val codegen_factor : float
val dispatch_factor : float

val heuristic_point : Op_spec.t -> Alcop_perfmodel.Params.t option
(** The deterministic no-search tiling XLA's own codegen would pick. *)

val own_codegen_latency :
  ?hw:Alcop_hw.Hw_config.t -> Op_spec.t -> float option

val latency : ?hw:Alcop_hw.Hw_config.t -> Op_spec.t -> float option
