lib/workloads/models.ml: Alcop_sched List Op_spec String
