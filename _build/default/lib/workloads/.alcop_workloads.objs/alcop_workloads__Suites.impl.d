lib/workloads/suites.ml: Alcop_sched List Op_spec String
