(* The single-operator benchmark suite of paper Sec. V-A (Fig. 10):
   MatMuls, batched MatMuls and Conv2Ds extracted from real DNN workloads,
   all half precision on tensor cores.

   Shapes follow the paper where it states them (MM_RN50_FC has output
   1024x64 with a 2048 reduction) and the underlying models elsewhere
   (BERT-base: hidden 768, seq 384-512, 12 heads; GPT-2: hidden 768, seq
   1024; ResNet/VGG convolutions via implicit GEMM). *)

open Alcop_sched

let mm = Op_spec.matmul
let bmm = Op_spec.batched_matmul

let conv ~name ~cn ~ci ~chw ~co ~ck ~stride ~pad =
  Op_spec.conv2d ~name
    { Op_spec.cn; ci; ch = chw; cw = chw; co; ckh = ck; ckw = ck; stride; pad }

(* Transformer MatMuls. *)
let mm_bert_fc1 = mm ~name:"MM_BERT_FC1" ~m:512 ~n:3072 ~k:768 ()
let mm_bert_fc2 = mm ~name:"MM_BERT_FC2" ~m:512 ~n:768 ~k:3072 ()
let mm_rn50_fc = mm ~name:"MM_RN50_FC" ~m:1024 ~n:64 ~k:2048 ()
let mm_conv1x1_1 = mm ~name:"MM_Conv1x1_1" ~m:12544 ~n:256 ~k:64 ()
let mm_conv1x1_2 = mm ~name:"MM_Conv1x1_2" ~m:3136 ~n:512 ~k:1024 ()

(* Attention batched MatMuls at inference batch size 1: batch = the 12
   attention heads. Small batches are where pipelining matters — the grid is
   too small for inter-threadblock multiplexing to hide latency, which is
   the paper's point about BMM_BERT_SV versus BMM_BERT_QK. *)
let bmm_bert_qk = bmm ~name:"BMM_BERT_QK" ~batch:12 ~m:384 ~n:384 ~k:64 ()
let bmm_bert_sv = bmm ~name:"BMM_BERT_SV" ~batch:12 ~m:384 ~n:64 ~k:384 ()
let bmm_gpt2_qk = bmm ~name:"BMM_GPT2_QK" ~batch:12 ~m:1024 ~n:1024 ~k:64 ()
let bmm_gpt2_sv = bmm ~name:"BMM_GPT2_SV" ~batch:12 ~m:1024 ~n:64 ~k:1024 ()

(* Convolutions through implicit GEMM. *)
let conv_rn50_3x3 =
  conv ~name:"Conv_RN50_3x3" ~cn:8 ~ci:128 ~chw:28 ~co:128 ~ck:3 ~stride:1 ~pad:1

let conv_vgg_3x3 =
  conv ~name:"Conv_VGG_3x3" ~cn:4 ~ci:256 ~chw:28 ~co:512 ~ck:3 ~stride:1 ~pad:1

(* The Fig. 10 suite, in presentation order. *)
let fig10 = [
  mm_bert_fc1; mm_bert_fc2; mm_rn50_fc; mm_conv1x1_1; mm_conv1x1_2;
  bmm_bert_qk; bmm_bert_sv; bmm_gpt2_qk; bmm_gpt2_sv;
  conv_rn50_3x3; conv_vgg_3x3;
]

(* The motivating example of Fig. 1(b). *)
let motivating = mm ~name:"MM_2048_motivating" ~m:2048 ~n:2048 ~k:2048 ()

(* A reduced suite for fast tests. *)
let smoke = [ mm_rn50_fc; bmm_bert_qk ]

let find name = List.find_opt (fun s -> String.equal s.Op_spec.name name) fig10
