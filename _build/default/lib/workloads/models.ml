(* End-to-end model descriptions for the paper's Table III: each model is
   the multiset of its pipelining-applicable operators (MatMul / BMM /
   Conv2D, which dominate inference latency) plus a fixed non-optimized
   remainder covering everything pipelining does not touch (softmax,
   layer-norm, activations, batch-norm, pooling, data movement). The
   remainder is identical across compilers, matching the paper's setup in
   which ALCOP only changes the heavy tensor-contraction kernels.

   [overhead_fraction] is the share of a model's TVM-baseline latency spent
   in that remainder, set to typical inference profiler splits: small for
   the large transformers (their GEMMs dominate), large for small CNNs at
   inference batch sizes (memory-bound layers dominate). *)

open Alcop_sched

type t = {
  name : string;
  ops : (Op_spec.t * int) list;  (** operator, occurrence count *)
  overhead_fraction : float;
}

let mm = Op_spec.matmul
let bmm = Op_spec.batched_matmul

let conv ~name ~cn ~ci ~chw ~co ~ck ~stride ~pad =
  Op_spec.conv2d ~name
    { Op_spec.cn; ci; ch = chw; cw = chw; co; ckh = ck; ckw = ck; stride; pad }

(* BERT-base: 12 layers, hidden 768, 12 heads, sequence 512, batch 8. *)
let bert =
  let s = 512 and h = 768 and heads_batch = 96 in
  { name = "BERT";
    ops = [
      (mm ~name:"bert.qkv" ~m:s ~n:(3 * h) ~k:h (), 12);
      (bmm ~name:"bert.qk" ~batch:heads_batch ~m:s ~n:s ~k:64 (), 12);
      (bmm ~name:"bert.sv" ~batch:heads_batch ~m:s ~n:64 ~k:s (), 12);
      (mm ~name:"bert.attn_out" ~m:s ~n:h ~k:h (), 12);
      (mm ~name:"bert.fc1" ~m:s ~n:(4 * h) ~k:h (), 12);
      (mm ~name:"bert.fc2" ~m:s ~n:h ~k:(4 * h) (), 12);
    ];
    overhead_fraction = 0.13 }

(* BERT-large: 24 layers, hidden 1024, 16 heads, sequence 512, batch 8. *)
let bert_large =
  let s = 512 and h = 1024 and heads_batch = 128 in
  { name = "BERT-Large";
    ops = [
      (mm ~name:"bertL.qkv" ~m:s ~n:(3 * h) ~k:h (), 24);
      (bmm ~name:"bertL.qk" ~batch:heads_batch ~m:s ~n:s ~k:64 (), 24);
      (bmm ~name:"bertL.sv" ~batch:heads_batch ~m:s ~n:64 ~k:s (), 24);
      (mm ~name:"bertL.attn_out" ~m:s ~n:h ~k:h (), 24);
      (mm ~name:"bertL.fc1" ~m:s ~n:(4 * h) ~k:h (), 24);
      (mm ~name:"bertL.fc2" ~m:s ~n:h ~k:(4 * h) (), 24);
    ];
    overhead_fraction = 0.09 }

(* GPT-2 small: 12 layers, hidden 768, 12 heads, sequence 1024, batch 8. *)
let gpt2 =
  let s = 1024 and h = 768 and heads_batch = 96 in
  { name = "GPT-2";
    ops = [
      (mm ~name:"gpt2.qkv" ~m:s ~n:(3 * h) ~k:h (), 12);
      (bmm ~name:"gpt2.qk" ~batch:heads_batch ~m:s ~n:s ~k:64 (), 12);
      (bmm ~name:"gpt2.sv" ~batch:heads_batch ~m:s ~n:64 ~k:s (), 12);
      (mm ~name:"gpt2.attn_out" ~m:s ~n:h ~k:h (), 12);
      (mm ~name:"gpt2.fc1" ~m:s ~n:(4 * h) ~k:h (), 12);
      (mm ~name:"gpt2.fc2" ~m:s ~n:h ~k:(4 * h) (), 12);
    ];
    overhead_fraction = 0.13 }

(* CNNs at inference batch 16 (batch padded so spatial GEMM dimensions tile
   cleanly; see DESIGN.md). One representative convolution per stage. *)
let resnet18 =
  { name = "ResNet-18";
    ops = [
      (conv ~name:"rn18.c2" ~cn:16 ~ci:64 ~chw:56 ~co:64 ~ck:3 ~stride:1 ~pad:1, 4);
      (conv ~name:"rn18.c3" ~cn:16 ~ci:128 ~chw:28 ~co:128 ~ck:3 ~stride:1 ~pad:1, 4);
      (conv ~name:"rn18.c4" ~cn:16 ~ci:256 ~chw:14 ~co:256 ~ck:3 ~stride:1 ~pad:1, 4);
      (conv ~name:"rn18.c5" ~cn:16 ~ci:512 ~chw:7 ~co:512 ~ck:3 ~stride:1 ~pad:1, 4);
    ];
    overhead_fraction = 0.72 }

let resnet50 =
  { name = "ResNet-50";
    ops = [
      (conv ~name:"rn50.c2a" ~cn:16 ~ci:64 ~chw:56 ~co:64 ~ck:1 ~stride:1 ~pad:0, 3);
      (conv ~name:"rn50.c2b" ~cn:16 ~ci:64 ~chw:56 ~co:64 ~ck:3 ~stride:1 ~pad:1, 3);
      (conv ~name:"rn50.c2c" ~cn:16 ~ci:64 ~chw:56 ~co:256 ~ck:1 ~stride:1 ~pad:0, 3);
      (conv ~name:"rn50.c3b" ~cn:16 ~ci:128 ~chw:28 ~co:128 ~ck:3 ~stride:1 ~pad:1, 4);
      (conv ~name:"rn50.c3c" ~cn:16 ~ci:128 ~chw:28 ~co:512 ~ck:1 ~stride:1 ~pad:0, 4);
      (conv ~name:"rn50.c4b" ~cn:16 ~ci:256 ~chw:14 ~co:256 ~ck:3 ~stride:1 ~pad:1, 6);
      (conv ~name:"rn50.c4c" ~cn:16 ~ci:256 ~chw:14 ~co:1024 ~ck:1 ~stride:1 ~pad:0, 6);
      (conv ~name:"rn50.c5b" ~cn:16 ~ci:512 ~chw:7 ~co:512 ~ck:3 ~stride:1 ~pad:1, 3);
      (conv ~name:"rn50.c5c" ~cn:16 ~ci:512 ~chw:7 ~co:2048 ~ck:1 ~stride:1 ~pad:0, 3);
    ];
    overhead_fraction = 0.55 }

let vgg16 =
  { name = "VGG-16";
    ops = [
      (conv ~name:"vgg.c1" ~cn:4 ~ci:64 ~chw:224 ~co:64 ~ck:3 ~stride:1 ~pad:1, 1);
      (conv ~name:"vgg.c2" ~cn:4 ~ci:128 ~chw:112 ~co:128 ~ck:3 ~stride:1 ~pad:1, 1);
      (conv ~name:"vgg.c3" ~cn:4 ~ci:256 ~chw:56 ~co:256 ~ck:3 ~stride:1 ~pad:1, 2);
      (conv ~name:"vgg.c4" ~cn:4 ~ci:512 ~chw:28 ~co:512 ~ck:3 ~stride:1 ~pad:1, 2);
      (conv ~name:"vgg.c5" ~cn:4 ~ci:512 ~chw:14 ~co:512 ~ck:3 ~stride:1 ~pad:1, 3);
      (mm ~name:"vgg.fc1" ~m:16 ~n:4096 ~k:25088 (), 1);
      (mm ~name:"vgg.fc2" ~m:16 ~n:4096 ~k:4096 (), 1);
    ];
    overhead_fraction = 0.25 }

let all = [ bert; bert_large; gpt2; resnet18; resnet50; vgg16 ]

let find name = List.find_opt (fun m -> String.equal m.name name) all
