(** CART-style regression trees: the weak learners of the gradient-boosted
    cost model. *)

type t =
  | Leaf of float
  | Node of {
      feature : int;
      threshold : float;
      left : t;   (** feature value <= threshold *)
      right : t;
    }

type config = {
  max_depth : int;
  min_samples_leaf : int;
  max_thresholds : int;
}

val default_config : config

val fit : ?config:config -> float array array -> float array -> t
(** Variance-minimizing splits over subsampled midpoint thresholds. *)

val predict : t -> float array -> float
val depth : t -> int
val n_leaves : t -> int
