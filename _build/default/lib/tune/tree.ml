(* CART-style regression trees: the weak learners of the gradient-boosted
   cost model (our stand-in for XGBoost). Splits minimize weighted variance
   of the target; thresholds are subsampled midpoints of the sorted unique
   feature values. *)

type t =
  | Leaf of float
  | Node of {
      feature : int;
      threshold : float;
      left : t;   (** feature value <= threshold *)
      right : t;
    }

type config = {
  max_depth : int;
  min_samples_leaf : int;
  max_thresholds : int;  (** candidate split thresholds per feature *)
}

let default_config = { max_depth = 5; min_samples_leaf = 2; max_thresholds = 16 }

let mean values idxs =
  if idxs = [] then 0.0
  else begin
    let sum = List.fold_left (fun acc i -> acc +. values.(i)) 0.0 idxs in
    sum /. float_of_int (List.length idxs)
  end

let sse values idxs =
  let mu = mean values idxs in
  List.fold_left
    (fun acc i ->
      let d = values.(i) -. mu in
      acc +. (d *. d))
    0.0 idxs

let candidate_thresholds cfg column idxs =
  let values =
    List.sort_uniq compare (List.map (fun i -> column i) idxs)
  in
  match values with
  | [] | [ _ ] -> []
  | _ ->
    let midpoints =
      let rec mids = function
        | a :: (b :: _ as rest) -> ((a +. b) /. 2.0) :: mids rest
        | [ _ ] | [] -> []
      in
      mids values
    in
    let n = List.length midpoints in
    if n <= cfg.max_thresholds then midpoints
    else begin
      let arr = Array.of_list midpoints in
      List.init cfg.max_thresholds (fun i -> arr.(i * n / cfg.max_thresholds))
    end

let fit ?(config = default_config) (features : float array array)
    (targets : float array) =
  let n_features =
    if Array.length features = 0 then 0 else Array.length features.(0)
  in
  let rec grow idxs depth =
    let node_sse = sse targets idxs in
    if
      depth >= config.max_depth
      || List.length idxs < 2 * config.min_samples_leaf
      || node_sse < 1e-12
    then Leaf (mean targets idxs)
    else begin
      let best = ref None in
      for f = 0 to n_features - 1 do
        let column i = features.(i).(f) in
        List.iter
          (fun thr ->
            let l, r = List.partition (fun i -> column i <= thr) idxs in
            if
              List.length l >= config.min_samples_leaf
              && List.length r >= config.min_samples_leaf
            then begin
              let score = sse targets l +. sse targets r in
              match !best with
              | Some (s, _, _, _, _) when s <= score -> ()
              | _ -> best := Some (score, f, thr, l, r)
            end)
          (candidate_thresholds config column idxs)
      done;
      match !best with
      | Some (score, f, thr, l, r) when score < node_sse -. 1e-12 ->
        Node
          { feature = f; threshold = thr; left = grow l (depth + 1);
            right = grow r (depth + 1) }
      | Some _ | None -> Leaf (mean targets idxs)
    end
  in
  if Array.length features = 0 then Leaf 0.0
  else grow (List.init (Array.length features) Fun.id) 0

let rec predict t x =
  match t with
  | Leaf v -> v
  | Node { feature; threshold; left; right } ->
    if x.(feature) <= threshold then predict left x else predict right x

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + max (depth left) (depth right)

let rec n_leaves = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> n_leaves left + n_leaves right
