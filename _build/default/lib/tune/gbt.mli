(** Gradient-boosted regression trees with squared loss — the learned cost
    model (the paper's XGBoost role). [fit ~init:prior] continues boosting
    from a prior ensemble: a model pre-trained on analytical predictions is
    fine-tuned by fitting measured residuals (paper Sec. IV-C). *)

type t = {
  base : float;
  learning_rate : float;
  trees : Tree.t list;
}

type config = {
  n_rounds : int;
  learning_rate : float;
  tree : Tree.config;
}

val default_config : config
val constant : float -> t
val predict : t -> float array -> float
val fit : ?config:config -> ?init:t -> float array array -> float array -> t
val n_trees : t -> int
