(** Simulated-annealing candidate proposal over the schedule space, in the
    role of TVM's sampler (paper Table II). *)

type config = {
  n_chains : int;
  n_steps : int;
  t_start : float;
  t_end : float;
}

val default_config : config

val propose :
  ?config:config ->
  Random.State.t ->
  Space.indexed ->
  score:(int -> float) ->
  exclude:(int -> bool) ->
  batch:int ->
  int list
(** Run annealing chains maximizing [score]; return up to [batch] distinct
    non-excluded indices, best-scored first, topped up randomly if chains
    found too few. *)
