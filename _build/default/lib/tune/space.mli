(** The schedule search space: valid (tiling, stage-count) combinations for
    an operator, with divisor-based tile candidates (like TVM's
    split-factor enumeration). Resource-*tight* points stay in the space —
    they may fail to launch, producing the paper's "compile fail" trials. *)

open Alcop_sched

type restriction = {
  smem_stage_options : int list;
  reg_stage_options : int list;
}

val full : restriction

(** Ablation compilers of paper Sec. V-A. *)

val no_multilevel : restriction
val no_multilevel_no_multistage : restriction
val no_pipelining : restriction

val enumerate : ?restriction:restriction -> Op_spec.t -> Alcop_perfmodel.Params.t array

type indexed = {
  points : Alcop_perfmodel.Params.t array;
  index_of : (string, int) Hashtbl.t;
}

val index : Alcop_perfmodel.Params.t array -> indexed

val knob_values : Alcop_perfmodel.Params.t -> int array

val neighbour : indexed -> Random.State.t -> int -> int
(** A random knob-distance-one neighbour that exists in the space; falls
    back to a uniform random point when no neighbour move is found. *)
