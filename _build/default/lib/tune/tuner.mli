(** Schedule tuning methods — paper Table II and Sec. V-E.

    [evaluate] plays the role of hardware measurement (here: the timing
    simulator); [None] marks schedules that fail to compile or launch. *)

type method_ =
  | Grid             (** evenly strided sweep, no learning *)
  | Xgb              (** TVM default: boosted trees + simulated annealing *)
  | Analytical_only  (** rank the space by the Table I model *)
  | Analytical_xgb   (** ALCOP: analytical pre-training + the Xgb workflow *)

val method_to_string : method_ -> string

type trial = {
  index : int;
  params : Alcop_perfmodel.Params.t;
  cost : float option;  (** measured cycles; [None] = failed to compile *)
}

type result = {
  trials : trial array;  (** in measurement order *)
  space_size : int;
}

val best_within : result -> int -> float option
(** Best measured cost among the first k trials. *)

val best : result -> float option

val target_of_cost : float option -> float
(** Learning target: [-log cost], with a sentinel for failures. *)

val exhaustive :
  space:Alcop_perfmodel.Params.t array ->
  evaluate:(Alcop_perfmodel.Params.t -> float option) ->
  result

val run :
  hw:Alcop_hw.Hw_config.t ->
  spec:Alcop_sched.Op_spec.t ->
  space:Alcop_perfmodel.Params.t array ->
  evaluate:(Alcop_perfmodel.Params.t -> float option) ->
  budget:int ->
  seed:int ->
  method_ ->
  result
(** Deterministic for a given seed. Each space point is measured at most
    once; the run stops early if the space is exhausted. *)
