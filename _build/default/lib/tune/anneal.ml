(* Simulated-annealing candidate proposal over the schedule space, in the
   role of TVM's sampler (paper Table II, "Sampling: Simulated Annealing").
   Chains walk knob-distance-one neighbours; all visited points are scored
   by the cost model and the best unmeasured ones form the next trial
   batch. *)

type config = {
  n_chains : int;
  n_steps : int;
  t_start : float;
  t_end : float;
}

let default_config = { n_chains = 16; n_steps = 48; t_start = 1.0; t_end = 0.05 }

(* [score] is "higher is better" (e.g. -log predicted cycles). *)
let propose ?(config = default_config) rng (idx : Space.indexed)
    ~(score : int -> float) ~(exclude : int -> bool) ~batch =
  let n = Array.length idx.Space.points in
  if n = 0 then []
  else begin
    let visited = Hashtbl.create 256 in
    let note i = if not (Hashtbl.mem visited i) then Hashtbl.replace visited i (score i) in
    let cooling =
      exp (log (config.t_end /. config.t_start) /. float_of_int config.n_steps)
    in
    for _ = 1 to config.n_chains do
      let current = ref (Random.State.int rng n) in
      note !current;
      let temp = ref config.t_start in
      for _ = 1 to config.n_steps do
        let cand = Space.neighbour idx rng !current in
        note cand;
        let delta = score cand -. score !current in
        if delta >= 0.0 || Random.State.float rng 1.0 < exp (delta /. !temp)
        then current := cand;
        temp := !temp *. cooling
      done
    done;
    let scored =
      Hashtbl.fold
        (fun i s acc -> if exclude i then acc else (i, s) :: acc)
        visited []
    in
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
    let rec take k = function
      | [] -> []
      | (i, _) :: rest -> if k = 0 then [] else i :: take (k - 1) rest
    in
    let chosen = take batch sorted in
    (* Top up with random unmeasured points if annealing found too few. *)
    let rec top_up acc tries =
      if List.length acc >= batch || tries = 0 then acc
      else begin
        let i = Random.State.int rng n in
        if exclude i || List.mem i acc then top_up acc (tries - 1)
        else top_up (acc @ [ i ]) (tries - 1)
      end
    in
    top_up chosen (8 * batch)
  end
