(* Gradient-boosted regression trees with squared loss: the learned cost
   model of the ML-based tuner (the paper's XGBoost role). Boosting on
   squared loss fits each tree to the residuals of the current ensemble,
   which also gives the analytical pre-training of Sec. IV-C for free:
   [fit ~init:prior] continues boosting from a prior ensemble, so a model
   pre-trained on analytical predictions is fine-tuned by fitting measured
   residuals. *)

type t = {
  base : float;
  learning_rate : float;
  trees : Tree.t list;  (** in boosting order *)
}

type config = {
  n_rounds : int;
  learning_rate : float;
  tree : Tree.config;
}

let default_config =
  { n_rounds = 40; learning_rate = 0.3; tree = Tree.default_config }

let constant v = { base = v; learning_rate = 0.3; trees = [] }

let predict (t : t) x =
  List.fold_left
    (fun acc tree -> acc +. (t.learning_rate *. Tree.predict tree x))
    t.base t.trees

let fit ?(config = default_config) ?init (features : float array array)
    (targets : float array) =
  let n = Array.length features in
  if n = 0 then Option.value init ~default:(constant 0.0)
  else begin
    let start =
      match init with
      | Some m -> { m with learning_rate = m.learning_rate }
      | None ->
        let mu = Array.fold_left ( +. ) 0.0 targets /. float_of_int n in
        { base = mu; learning_rate = config.learning_rate; trees = [] }
    in
    (* Note: when continuing from a prior, the prior's learning rate is
       kept so its trees' contributions stay calibrated; new trees use the
       same rate. *)
    let current = Array.init n (fun i -> predict start features.(i)) in
    let rec boost (model : t) round =
      if round = config.n_rounds then model
      else begin
        let residuals = Array.init n (fun i -> targets.(i) -. current.(i)) in
        let max_abs =
          Array.fold_left (fun a r -> Float.max a (Float.abs r)) 0.0 residuals
        in
        if max_abs < 1e-9 then model
        else begin
          let tree = Tree.fit ~config:config.tree features residuals in
          Array.iteri
            (fun i x ->
              current.(i) <-
                current.(i) +. (model.learning_rate *. Tree.predict tree x))
            features;
          boost { model with trees = model.trees @ [ tree ] } (round + 1)
        end
      end
    in
    boost start 0
  end

let n_trees t = List.length t.trees
