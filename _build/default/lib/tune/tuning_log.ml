(* JSON tuning logs, in the spirit of AutoTVM's record files: one run
   object carrying the method, seed, space size and every trial with its
   schedule knobs and measured cost. Hand-rolled writer — the log grammar
   is flat and the repository carries no JSON dependency. *)

let escape s =
  let buf = Stdlib.Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Stdlib.Buffer.add_string buf "\\\""
      | '\\' -> Stdlib.Buffer.add_string buf "\\\\"
      | '\n' -> Stdlib.Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Stdlib.Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Stdlib.Buffer.add_char buf c)
    s;
  Stdlib.Buffer.contents buf

let json_of_params (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  Printf.sprintf
    {|{"tb_m":%d,"tb_n":%d,"tb_k":%d,"warp_m":%d,"warp_n":%d,"warp_k":%d,"split_k":%d,"smem_stages":%d,"reg_stages":%d,"swizzle":%b,"inner_fuse":%b}|}
    t.Alcop_sched.Tiling.tb_m t.Alcop_sched.Tiling.tb_n
    t.Alcop_sched.Tiling.tb_k t.Alcop_sched.Tiling.warp_m
    t.Alcop_sched.Tiling.warp_n t.Alcop_sched.Tiling.warp_k
    t.Alcop_sched.Tiling.split_k p.Alcop_perfmodel.Params.smem_stages
    p.Alcop_perfmodel.Params.reg_stages p.Alcop_perfmodel.Params.swizzle
    p.Alcop_perfmodel.Params.inner_fuse

let json_of_trial (t : Tuner.trial) =
  Printf.sprintf {|{"index":%d,"schedule":%s,"cost_cycles":%s}|}
    t.Tuner.index
    (json_of_params t.Tuner.params)
    (match t.Tuner.cost with
     | Some c -> Printf.sprintf "%.3f" c
     | None -> "null")

let to_json ~spec_name ~method_ ~seed (r : Tuner.result) =
  let trials =
    String.concat ","
      (Array.to_list (Array.map json_of_trial r.Tuner.trials))
  in
  let best =
    match Tuner.best r with
    | Some c -> Printf.sprintf "%.3f" c
    | None -> "null"
  in
  Printf.sprintf
    {|{"operator":"%s","method":"%s","seed":%d,"space_size":%d,"best_cycles":%s,"trials":[%s]}|}
    (escape spec_name)
    (escape (Tuner.method_to_string method_))
    seed r.Tuner.space_size best trials

let write_file ~path ~spec_name ~method_ ~seed r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ~spec_name ~method_ ~seed r);
      output_char oc '\n')
