lib/tune/anneal.mli: Random Space
