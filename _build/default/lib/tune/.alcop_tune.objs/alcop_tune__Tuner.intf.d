lib/tune/tuner.mli: Alcop_hw Alcop_perfmodel Alcop_sched
