lib/tune/tuner.ml: Alcop_perfmodel Anneal Array Float Fun Gbt Hashtbl List Option Random Space Tree
