lib/tune/tree.ml: Array Fun List
