lib/tune/gbt.mli: Tree
