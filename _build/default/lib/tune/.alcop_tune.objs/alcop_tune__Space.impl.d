lib/tune/space.ml: Alcop_perfmodel Alcop_sched Array Hashtbl List Op_spec Random Tiling
