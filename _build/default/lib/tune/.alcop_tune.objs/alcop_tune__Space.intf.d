lib/tune/space.mli: Alcop_perfmodel Alcop_sched Hashtbl Op_spec Random
