lib/tune/tuning_log.mli: Alcop_perfmodel Tuner
