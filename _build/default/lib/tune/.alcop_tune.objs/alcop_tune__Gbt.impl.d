lib/tune/gbt.ml: Array Float List Option Tree
