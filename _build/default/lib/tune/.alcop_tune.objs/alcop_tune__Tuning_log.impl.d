lib/tune/tuning_log.ml: Alcop_perfmodel Alcop_sched Array Char Fun Printf Stdlib String Tuner
