lib/tune/tree.mli:
