lib/tune/anneal.ml: Array Hashtbl List Random Space
