(* The schedule search space: valid (tiling, stage-count) combinations for
   an operator. Tile candidates are divisors of the problem dimensions
   (like TVM's split-factor enumeration), warp tiles are MMA-granule
   aligned, and resource-impossible points are kept out of the space while
   resource-*tight* points stay in (they may fail to launch — the paper's
   "compile fail" markers in Fig. 12 come from exactly those). *)

open Alcop_sched

type restriction = {
  smem_stage_options : int list;
  reg_stage_options : int list;
}

let full = { smem_stage_options = [ 1; 2; 3; 4 ]; reg_stage_options = [ 1; 2 ] }

(* Ablations of Sec. V-A. *)
let no_multilevel = { full with reg_stage_options = [ 1 ] }
let no_multilevel_no_multistage =
  { smem_stage_options = [ 1; 2 ]; reg_stage_options = [ 1 ] }
let no_pipelining = { smem_stage_options = [ 1 ]; reg_stage_options = [ 1 ] }

let divisors_in candidates n = List.filter (fun d -> n mod d = 0) candidates

let tb_candidates = [ 16; 32; 64; 128; 256 ]
let tbk_candidates = [ 16; 32; 64 ]
let warp_candidates = [ 16; 32; 64; 128 ]
let warpk_candidates = [ 16; 32 ]
let split_candidates = [ 1; 2; 4 ]

(* Split-K only makes sense when the plain grid is too small to occupy the
   device; enumerating it everywhere would bloat the space with pointless
   points. *)
let split_options (spec : Op_spec.t) ~tb_m ~tb_n ~tb_k =
  let grid = spec.Op_spec.batch * (spec.Op_spec.m / tb_m) * (spec.Op_spec.n / tb_n) in
  let k_iters = spec.Op_spec.k / tb_k in
  List.filter
    (fun s -> s = 1 || (grid < 216 && k_iters mod s = 0 && k_iters / s >= 2))
    split_candidates

let enumerate ?(restriction = full) (spec : Op_spec.t) =
  let tb_ms = divisors_in tb_candidates spec.Op_spec.m in
  let tb_ns = divisors_in tb_candidates spec.Op_spec.n in
  let tb_ks = divisors_in tbk_candidates spec.Op_spec.k in
  let points = ref [] in
  List.iter
    (fun tb_m ->
      List.iter
        (fun tb_n ->
          List.iter
            (fun tb_k ->
              let warp_ms = divisors_in warp_candidates tb_m in
              let warp_ns = divisors_in warp_candidates tb_n in
              let warp_ks = divisors_in warpk_candidates tb_k in
              List.iter
                (fun warp_m ->
                  List.iter
                    (fun warp_n ->
                      List.iter
                        (fun warp_k ->
                          List.iter
                            (fun split_k ->
                              let tiling =
                                Tiling.make ~split_k ~tb_m ~tb_n ~tb_k ~warp_m
                                  ~warp_n ~warp_k ()
                              in
                              let warps = Tiling.warps tiling in
                              if
                                warps >= 1 && warps <= 16
                                && Tiling.validate tiling spec = Ok ()
                              then
                                List.iter
                                  (fun smem_stages ->
                                    List.iter
                                      (fun reg_stages ->
                                        points :=
                                          Alcop_perfmodel.Params.make ~tiling
                                            ~smem_stages ~reg_stages ()
                                          :: !points)
                                      restriction.reg_stage_options)
                                  restriction.smem_stage_options)
                            (split_options spec ~tb_m ~tb_n ~tb_k))
                        warp_ks)
                    warp_ns)
                warp_ms)
            tb_ks)
        tb_ns)
    tb_ms;
  Array.of_list (List.rev !points)

(* Neighbour structure for simulated annealing: points at knob distance one.
   Precomputed lazily from the knob encoding. *)
type indexed = {
  points : Alcop_perfmodel.Params.t array;
  index_of : (string, int) Hashtbl.t;
}

let index points =
  let index_of = Hashtbl.create (Array.length points) in
  Array.iteri
    (fun i p -> Hashtbl.replace index_of (Alcop_perfmodel.Params.to_string p) i)
    points;
  { points; index_of }

let knob_values (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  [| t.Tiling.tb_m; t.Tiling.tb_n; t.Tiling.tb_k; t.Tiling.warp_m;
     t.Tiling.warp_n; t.Tiling.warp_k; p.Alcop_perfmodel.Params.smem_stages;
     p.Alcop_perfmodel.Params.reg_stages; t.Tiling.split_k |]

let of_knobs (p : Alcop_perfmodel.Params.t) knobs =
  let tiling =
    Tiling.make ~tb_m:knobs.(0) ~tb_n:knobs.(1) ~tb_k:knobs.(2)
      ~warp_m:knobs.(3) ~warp_n:knobs.(4) ~warp_k:knobs.(5)
      ~split_k:knobs.(8) ()
  in
  Alcop_perfmodel.Params.make ~swizzle:p.Alcop_perfmodel.Params.swizzle ~tiling
    ~smem_stages:knobs.(6) ~reg_stages:knobs.(7) ()

(* A random knob-neighbour of [i] that exists in the space; falls back to a
   uniformly random point when no neighbour move is found quickly. *)
let neighbour (idx : indexed) rng i =
  let p = idx.points.(i) in
  let knobs = knob_values p in
  let axis_options = [|
    [ 16; 32; 64; 128; 256 ]; [ 16; 32; 64; 128; 256 ]; [ 16; 32; 64 ];
    [ 16; 32; 64; 128 ]; [ 16; 32; 64; 128 ]; [ 16; 32 ];
    [ 1; 2; 3; 4 ]; [ 1; 2 ]; [ 1; 2; 4 ];
  |] in
  let rec attempt tries =
    if tries = 0 then Random.State.int rng (Array.length idx.points)
    else begin
      let axis = Random.State.int rng 9 in
      let options = axis_options.(axis) in
      let v = List.nth options (Random.State.int rng (List.length options)) in
      if v = knobs.(axis) then attempt (tries - 1)
      else begin
        let knobs' = Array.copy knobs in
        knobs'.(axis) <- v;
        match of_knobs p knobs' with
        | candidate ->
          (match
             Hashtbl.find_opt idx.index_of
               (Alcop_perfmodel.Params.to_string candidate)
           with
           | Some j -> j
           | None -> attempt (tries - 1))
        | exception Invalid_argument _ -> attempt (tries - 1)
      end
    end
  in
  attempt 12
