(* Feature extraction for the learned (gradient-boosted trees) cost model:
   raw schedule knobs plus cheap derived structure. Matches AutoTVM's
   knob-plus-context featurization in spirit. *)

open Alcop_sched

let log2f x = if x <= 0.0 then 0.0 else Float.log x /. Float.log 2.0

let names = [
  "log_tb_m"; "log_tb_n"; "log_tb_k";
  "log_warp_m"; "log_warp_n"; "log_warp_k";
  "smem_stages"; "reg_stages"; "swizzle";
  "warps"; "tbs_per_sm"; "log_total_tbs"; "waves"; "tail_frac";
  "log_smem_bytes"; "regs_per_thread";
  "k_iters"; "ki_iters"; "miss_rate"; "split_k";
  "log_m"; "log_n"; "log_k"; "log_batch";
]

let dim = List.length names

let extract (hw : Alcop_hw.Hw_config.t) (spec : Op_spec.t) (p : Params.t) =
  let elem_bytes = Alcop_ir.Dtype.size_bytes spec.Op_spec.dtype in
  let tiling = p.Params.tiling in
  let warps = Tiling.warps tiling in
  let smem_bytes = Params.smem_bytes_per_tb p elem_bytes in
  let regs = Params.regs_per_thread p in
  let occ =
    match
      Alcop_gpusim.Occupancy.compute hw ~smem_per_tb:smem_bytes
        ~warps_per_tb:warps ~regs_per_thread:regs
    with
    | Ok o -> o.Alcop_gpusim.Occupancy.tbs_per_sm
    | Error _ -> 0
  in
  let total_tbs = Tiling.threadblocks tiling spec in
  let slots = max 1 (occ * hw.Alcop_hw.Hw_config.num_sms) in
  let waves = (total_tbs + slots - 1) / slots in
  let tail =
    let r = total_tbs mod slots in
    if r = 0 then 1.0 else float_of_int r /. float_of_int slots
  in
  let loc =
    Alcop_gpusim.Locality.compute hw
      ~grid_m:(spec.Op_spec.m / tiling.Tiling.tb_m)
      ~grid_n:(spec.Op_spec.n / tiling.Tiling.tb_n)
      ~grid_z:(spec.Op_spec.batch * tiling.Tiling.split_k)
      ~tb_m:tiling.Tiling.tb_m
      ~tb_n:tiling.Tiling.tb_n ~tb_k:tiling.Tiling.tb_k ~elem_bytes
      ~resident_tbs:(min total_tbs slots)
  in
  [| log2f (float_of_int tiling.Tiling.tb_m);
     log2f (float_of_int tiling.Tiling.tb_n);
     log2f (float_of_int tiling.Tiling.tb_k);
     log2f (float_of_int tiling.Tiling.warp_m);
     log2f (float_of_int tiling.Tiling.warp_n);
     log2f (float_of_int tiling.Tiling.warp_k);
     float_of_int p.Params.smem_stages;
     float_of_int p.Params.reg_stages;
     (if p.Params.swizzle then 1.0 else 0.0);
     float_of_int warps;
     float_of_int occ;
     log2f (float_of_int total_tbs);
     float_of_int waves;
     tail;
     log2f (float_of_int smem_bytes);
     float_of_int regs;
     float_of_int (Tiling.k_iters tiling spec);
     float_of_int (Tiling.ki_iters tiling);
     loc.Alcop_gpusim.Locality.miss_rate;
     float_of_int tiling.Tiling.split_k;
     log2f (float_of_int spec.Op_spec.m);
     log2f (float_of_int spec.Op_spec.n);
     log2f (float_of_int spec.Op_spec.k);
     log2f (float_of_int spec.Op_spec.batch);
  |]
