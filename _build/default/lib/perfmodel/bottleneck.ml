(* The bottleneck-based baseline performance model the paper compares
   against in Sec. V-D: the maximum of computation time, shared-memory
   loading time and device-memory loading time, assuming full utilization
   of throughput and bandwidth. It aggregates all compute into one unit
   (so SM occupancy does not matter to it) and is agnostic to latency
   hiding (so pipeline stage counts do not matter to it) — the two
   oversimplifications the paper calls out. *)

open Alcop_sched

let predict_cycles (hw : Alcop_hw.Hw_config.t) (spec : Op_spec.t) (p : Params.t) =
  let elem_bytes = Alcop_ir.Dtype.size_bytes spec.Op_spec.dtype in
  let tiling = p.Params.tiling in
  (* Reject only what cannot exist at all: a threadblock exceeding
     per-threadblock hardware bounds. *)
  match
    Alcop_gpusim.Occupancy.compute hw
      ~smem_per_tb:(Params.smem_bytes_per_tb p elem_bytes)
      ~warps_per_tb:(Tiling.warps tiling)
      ~regs_per_thread:(Params.regs_per_thread p)
  with
  | Error _ -> None
  | Ok _ ->
    let total_tbs = Tiling.threadblocks tiling spec in
    let k_iters = Tiling.k_iters tiling spec in
    (* Full-utilization computation time. *)
    let flops = Op_spec.flops spec in
    let t_compute =
      float_of_int flops
      /. float_of_int
           (hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle
            * hw.Alcop_hw.Hw_config.num_sms)
    in
    (* Shared-memory traffic: every threadblock stages its A and B tiles
       through shared memory once per K iteration, then reads them into
       registers ki_iters times. *)
    let smem_bytes_per_tb =
      (tiling.Tiling.tb_m + tiling.Tiling.tb_n) * tiling.Tiling.tb_k
      * elem_bytes * k_iters * 2
    in
    let t_smem =
      float_of_int (smem_bytes_per_tb * total_tbs)
      /. (hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm
          *. float_of_int hw.Alcop_hw.Hw_config.num_sms)
    in
    (* Device-memory traffic: global loads of all threadblocks (agnostic to
       inter-threadblock reuse timing, but capped by compulsory traffic)
       plus the output write-back. *)
    let load_bytes_per_tb =
      (tiling.Tiling.tb_m + tiling.Tiling.tb_n) * tiling.Tiling.tb_k
      * elem_bytes * k_iters
    in
    let compulsory = Op_spec.footprint_bytes spec in
    let dram_bytes =
      max compulsory (load_bytes_per_tb * total_tbs / 4)
      + (spec.Op_spec.batch * spec.Op_spec.m * spec.Op_spec.n * elem_bytes)
    in
    let t_dram =
      float_of_int dram_bytes /. hw.Alcop_hw.Hw_config.dram_bytes_per_cycle
    in
    Some (Float.max t_compute (Float.max t_smem t_dram))
