(* The schedule parameters both analytical models consume: the tuner's
   search space is exactly the cross product of these. *)

type t = {
  tiling : Alcop_sched.Tiling.t;
  smem_stages : int;  (** 1 = no shared-memory pipelining *)
  reg_stages : int;   (** 1 = no register pipelining *)
  swizzle : bool;
  inner_fuse : bool;  (** inner-pipeline fusion (paper Fig. 3d vs 3c) *)
}

let make ?(swizzle = true) ?(inner_fuse = true) ~tiling ~smem_stages ~reg_stages
    () =
  if smem_stages < 1 || reg_stages < 1 then
    invalid_arg "Params.make: stage counts must be >= 1";
  { tiling; smem_stages; reg_stages; swizzle; inner_fuse }

let smem_bytes_per_tb t elem_bytes =
  Alcop_sched.Tiling.smem_tile_bytes t.tiling elem_bytes * max 1 t.smem_stages

let regs_per_thread t =
  Alcop_sched.Tiling.registers_per_thread t.tiling ~reg_stages:t.reg_stages

let to_string t =
  Printf.sprintf "%s smem_stages=%d reg_stages=%d%s%s"
    (Alcop_sched.Tiling.to_string t.tiling)
    t.smem_stages t.reg_stages
    (if t.swizzle then "" else " noswizzle")
    (if t.inner_fuse then "" else " nofuse")

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) =
  Alcop_sched.Tiling.equal a.tiling b.tiling
  && a.smem_stages = b.smem_stages
  && a.reg_stages = b.reg_stages
  && a.swizzle = b.swizzle
  && a.inner_fuse = b.inner_fuse

(* A stable integer key for hashing / deterministic perturbation. *)
let key spec_name t = Hashtbl.hash (spec_name, to_string t)
