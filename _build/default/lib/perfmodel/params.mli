(** The schedule parameters both analytical models consume; the tuner's
    search space is the cross product of these. *)

type t = {
  tiling : Alcop_sched.Tiling.t;
  smem_stages : int;  (** 1 = no shared-memory pipelining *)
  reg_stages : int;   (** 1 = no register pipelining *)
  swizzle : bool;
  inner_fuse : bool;  (** inner-pipeline fusion (paper Fig. 3d vs 3c) *)
}

val make :
  ?swizzle:bool -> ?inner_fuse:bool -> tiling:Alcop_sched.Tiling.t ->
  smem_stages:int -> reg_stages:int -> unit -> t
(** @raise Invalid_argument if a stage count is below 1. *)

val smem_bytes_per_tb : t -> int -> int
(** Shared memory one threadblock allocates: tile bytes times stages. *)

val regs_per_thread : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val key : string -> t -> int
(** Stable integer key for deterministic perturbation, per operator. *)
