(** Feature extraction for the learned cost model: raw schedule knobs plus
    cheap derived structure (occupancy, waves, locality), in the spirit of
    AutoTVM's featurization. *)

open Alcop_sched

val names : string list
val dim : int

val extract : Alcop_hw.Hw_config.t -> Op_spec.t -> Params.t -> float array
(** Always [dim]-long and finite; resource-infeasible schedules encode
    occupancy 0 rather than failing. *)
