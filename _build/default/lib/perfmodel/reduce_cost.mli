(** Cost of the split-K reduction kernel (a bandwidth-bound streaming pass
    over the partial outputs); shared by the analytical model and the
    compiler's timing path. *)

open Alcop_sched

val cycles : Alcop_hw.Hw_config.t -> Op_spec.t -> split_k:int -> float
(** 0 when [split_k <= 1]. *)
