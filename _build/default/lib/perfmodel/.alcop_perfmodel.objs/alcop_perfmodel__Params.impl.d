lib/perfmodel/params.ml: Alcop_sched Format Hashtbl Printf
