lib/perfmodel/reduce_cost.ml: Alcop_hw Alcop_ir Alcop_sched Op_spec
