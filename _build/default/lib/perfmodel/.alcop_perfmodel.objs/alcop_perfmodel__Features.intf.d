lib/perfmodel/features.mli: Alcop_hw Alcop_sched Op_spec Params
