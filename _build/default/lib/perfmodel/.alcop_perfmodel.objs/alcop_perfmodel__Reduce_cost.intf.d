lib/perfmodel/reduce_cost.mli: Alcop_hw Alcop_sched Op_spec
