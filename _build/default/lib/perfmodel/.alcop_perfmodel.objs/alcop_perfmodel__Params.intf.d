lib/perfmodel/params.mli: Alcop_sched Format
