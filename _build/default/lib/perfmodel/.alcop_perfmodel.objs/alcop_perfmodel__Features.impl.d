lib/perfmodel/features.ml: Alcop_gpusim Alcop_hw Alcop_ir Alcop_sched Float List Op_spec Params Tiling
