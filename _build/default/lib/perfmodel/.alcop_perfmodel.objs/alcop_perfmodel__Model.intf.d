lib/perfmodel/model.mli: Alcop_gpusim Alcop_hw Alcop_sched Op_spec Params
