lib/perfmodel/bottleneck.ml: Alcop_gpusim Alcop_hw Alcop_ir Alcop_sched Float Op_spec Params Tiling
