(** The bottleneck-based baseline performance model of paper Sec. V-D: the
    maximum of computation, shared-memory and device-memory time at full
    utilization. Aggregates compute into one unit (occupancy-blind) and
    ignores latency hiding (stage-count-blind) — the paper's two criticisms. *)

open Alcop_sched

val predict_cycles :
  Alcop_hw.Hw_config.t -> Op_spec.t -> Params.t -> float option
(** [None] only when a single threadblock exceeds hardware bounds. *)
