(* Cost of the split-K reduction kernel: a bandwidth-bound streaming pass
   that reads the [split_k] partial outputs, sums them, and writes C. Used
   by both the analytical model and the compiler's timing path so the two
   stay consistent. *)

open Alcop_sched

let launch_overhead_cycles = 2200.0

let cycles (hw : Alcop_hw.Hw_config.t) (spec : Op_spec.t) ~split_k =
  if split_k <= 1 then 0.0
  else begin
    let elem = Alcop_ir.Dtype.size_bytes spec.Op_spec.dtype in
    let output_bytes =
      spec.Op_spec.batch * spec.Op_spec.m * spec.Op_spec.n * elem
    in
    (* read split_k partials, write one output *)
    let traffic = float_of_int ((split_k + 1) * output_bytes) in
    launch_overhead_cycles
    +. (traffic /. hw.Alcop_hw.Hw_config.dram_bytes_per_cycle)
    +. hw.Alcop_hw.Hw_config.dram_latency
  end
