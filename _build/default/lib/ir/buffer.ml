(* Buffers: named, statically shaped storage at one level of the GPU memory
   hierarchy. The pipelining pass prepends a stage dimension to a pipelined
   buffer's shape (paper Sec. III-B step 1). *)

type scope =
  | Global
  | Shared
  | Register

let scope_to_string = function
  | Global -> "global"
  | Shared -> "shared"
  | Register -> "register"

let scope_equal (a : scope) (b : scope) = a = b

(* One level closer to the compute units. Asynchronous copies on Ampere only
   exist for global -> shared; shared -> register copies are ordinary loads
   that software pipelining issues early. *)
let inner_scope = function
  | Global -> Some Shared
  | Shared -> Some Register
  | Register -> None

type t = {
  name : string;
  scope : scope;
  dtype : Dtype.t;
  shape : int list;
}

let make ~name ~scope ~dtype ~shape =
  if shape = [] then invalid_arg "Buffer.make: empty shape";
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Buffer.make: non-positive dimension")
    shape;
  { name; scope; dtype; shape }

let num_elements b = List.fold_left ( * ) 1 b.shape

let size_bytes b = num_elements b * Dtype.size_bytes b.dtype

let rank b = List.length b.shape

let equal a b =
  String.equal a.name b.name
  && scope_equal a.scope b.scope
  && Dtype.equal a.dtype b.dtype
  && a.shape = b.shape

let with_stage_dim stages b =
  if stages < 2 then invalid_arg "Buffer.with_stage_dim: need at least 2 stages";
  { b with shape = stages :: b.shape }

let pp fmt b =
  Format.fprintf fmt "%s : %a[%s] @@%s" b.name Dtype.pp b.dtype
    (String.concat ", " (List.map string_of_int b.shape))
    (scope_to_string b.scope)
