(** Structural validation of kernels.

    Run on both the lowered input IR and the pipelined output IR; catches
    malformed programs (undeclared buffers, rank/shape mismatches, async
    copies with fused ops or non-shared destinations, variable scoping
    errors) before the interpreter runs. Dynamic properties are checked by
    the interpreter. *)

type error = {
  context : string;
  message : string;
}

val pp_error : Format.formatter -> error -> unit

exception Invalid of error list

val check : Kernel.t -> (unit, error list) result

val check_exn : Kernel.t -> unit
(** @raise Invalid with all collected errors. *)

val errors_to_string : error list -> string
