lib/ir/stmt.ml: Buffer Expr Format List Printf String
