lib/ir/dtype.ml: Float Format
