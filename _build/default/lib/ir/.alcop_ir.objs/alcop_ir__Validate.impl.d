lib/ir/validate.ml: Buffer Expr Format Kernel List Option Stmt String
