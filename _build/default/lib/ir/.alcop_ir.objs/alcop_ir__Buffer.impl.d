lib/ir/buffer.ml: Dtype Format List String
