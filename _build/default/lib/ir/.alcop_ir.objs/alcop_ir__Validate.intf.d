lib/ir/validate.mli: Format Kernel
