(* A kernel: the unit the compiler produces and the simulators consume.
   [inputs] and [outputs] are global-memory tensors; everything else is
   allocated inside [body]. *)

type t = {
  name : string;
  inputs : Buffer.t list;
  outputs : Buffer.t list;
  body : Stmt.t;
}

let make ~name ~inputs ~outputs ~body =
  List.iter
    (fun (b : Buffer.t) ->
      if not (Buffer.scope_equal b.Buffer.scope Buffer.Global) then
        invalid_arg
          (Printf.sprintf "Kernel.make: parameter %s is not in global scope"
             b.Buffer.name))
    (inputs @ outputs);
  { name; inputs; outputs; body }

let params k = k.inputs @ k.outputs

let find_param k name =
  List.find_opt (fun (b : Buffer.t) -> String.equal b.Buffer.name name) (params k)

(* Every buffer visible anywhere in the kernel: parameters plus allocs. *)
let all_buffers k = params k @ Stmt.allocs k.body

let find_buffer k name =
  List.find_opt
    (fun (b : Buffer.t) -> String.equal b.Buffer.name name)
    (all_buffers k)

let map_body f k = { k with body = f k.body }

let pp fmt k =
  let pp_param fmt (b : Buffer.t) = Buffer.pp fmt b in
  Format.fprintf fmt "@[<v>kernel %s@,inputs:  @[<v>%a@]@,outputs: @[<v>%a@]@,@[<v>%a@]@]"
    k.name
    (Format.pp_print_list pp_param) k.inputs
    (Format.pp_print_list pp_param) k.outputs
    Stmt.pp k.body

let to_string k = Format.asprintf "%a" pp k
