(** Integer index expressions used for loop extents and buffer offsets.

    Division and modulo follow the floor convention, matching CUDA index
    arithmetic on non-negative loop variables. *)

type t =
  | Const of int
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Min of t * t
  | Max of t * t

val equal : t -> t -> bool

val const : int -> t
val var : string -> t
val zero : t
val one : t

(** Smart constructors with light constant folding. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

val floordiv_int : int -> int -> int
val floormod_int : int -> int -> int

val eval : (string -> int option) -> t -> int
(** Evaluate under an environment. @raise Invalid_argument on unbound
    variables or division by zero. *)

val eval_const : t -> int option
(** [eval_const e] is the value of [e] if it mentions no variables. *)

val subst : string -> t -> t -> t
(** [subst x r e] replaces every free occurrence of [x] in [e] with [r],
    re-simplifying on the way up. *)

val free_vars : t -> string list
(** Free variables in first-occurrence order. *)

val mentions : string -> t -> bool

val simplify : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
