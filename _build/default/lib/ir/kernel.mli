(** A kernel: the unit the compiler produces and the simulators consume. *)

type t = {
  name : string;
  inputs : Buffer.t list;   (** global-memory input tensors *)
  outputs : Buffer.t list;  (** global-memory output tensors *)
  body : Stmt.t;
}

val make :
  name:string -> inputs:Buffer.t list -> outputs:Buffer.t list -> body:Stmt.t -> t
(** @raise Invalid_argument if a parameter is not in global scope. *)

val params : t -> Buffer.t list
val find_param : t -> string -> Buffer.t option

val all_buffers : t -> Buffer.t list
(** Parameters plus every buffer allocated in the body, program order. *)

val find_buffer : t -> string -> Buffer.t option

val map_body : (Stmt.t -> Stmt.t) -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
