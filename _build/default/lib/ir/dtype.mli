(** Element data types of tensors. *)

type t =
  | F16
  | F32
  | I32
  | I8

val size_bytes : t -> int
(** Storage size of one element in bytes. *)

val to_string : t -> string

val of_string : string -> t option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val quantize : t -> float -> float
(** Round a float to the representable grid of the data type. Used by the
    functional interpreter to emulate reduced-precision storage. *)
