(** Buffers: named, statically shaped storage at one level of the GPU
    memory hierarchy. *)

type scope =
  | Global    (** device memory *)
  | Shared    (** per-threadblock shared memory *)
  | Register  (** per-warp register file fragments *)

val scope_to_string : scope -> string
val scope_equal : scope -> scope -> bool

val inner_scope : scope -> scope option
(** The next memory level closer to the compute units, if any. *)

type t = private {
  name : string;
  scope : scope;
  dtype : Dtype.t;
  shape : int list;
}

val make : name:string -> scope:scope -> dtype:Dtype.t -> shape:int list -> t
(** @raise Invalid_argument on an empty shape or non-positive dimension. *)

val num_elements : t -> int
val size_bytes : t -> int
val rank : t -> int
val equal : t -> t -> bool

val with_stage_dim : int -> t -> t
(** [with_stage_dim n b] prepends a pipeline-stage dimension of extent [n];
    the pipelining pass's buffer-expansion step.
    @raise Invalid_argument if [n < 2]. *)

val pp : Format.formatter -> t -> unit
