(* Element data types of tensors. ALCOP's evaluation uses half precision on
   tensor cores; we carry the type mainly to compute byte volumes for the
   memory system and to document kernel signatures. *)

type t =
  | F16
  | F32
  | I32
  | I8

let size_bytes = function
  | F16 -> 2
  | F32 -> 4
  | I32 -> 4
  | I8 -> 1

let to_string = function
  | F16 -> "f16"
  | F32 -> "f32"
  | I32 -> "i32"
  | I8 -> "i8"

let of_string = function
  | "f16" -> Some F16
  | "f32" -> Some F32
  | "i32" -> Some I32
  | "i8" -> Some I8
  | _ -> None

let equal (a : t) (b : t) = a = b

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Quantization grid used by the functional interpreter to emulate reduced
   precision: f16 values are rounded to the nearest representable half float
   so that pipelined and non-pipelined executions agree bit-for-bit even when
   the accumulation order is preserved but storage precision matters. *)
let quantize t (x : float) =
  match t with
  | F32 -> x
  | F16 ->
    (* Round to 11 bits of mantissa (1 implicit + 10 stored). *)
    if x = 0.0 || not (Float.is_finite x) then x
    else
      let m, e = Float.frexp x in
      let scale = Float.ldexp 1.0 11 in
      Float.ldexp (Float.round (m *. scale) /. scale) e
  | I32 -> Float.round x
  | I8 ->
    let r = Float.round x in
    Float.max (-128.) (Float.min 127. r)
