(** Statement IR.

    A kernel is the program of one threadblock, wrapped in [For] loops bound
    to grid / warp dimensions. Data movement is expressed at chunk
    granularity: a {!Copy} moves a rectangular region between buffers, the
    granularity the pipelining pass reasons at (paper Fig. 7).

    Synchronization follows the CUDA pipeline API of Ampere GPUs: a
    pipelined buffer group is guarded by [producer_acquire] /
    [producer_commit] around its loading code and [consumer_wait] /
    [consumer_release] around its using code. [Barrier] is a plain
    block-wide [__syncthreads], which the unpipelined input IR uses. *)

type slice = {
  offset : Expr.t;
  len : int;
}

type region = {
  buffer : string;
  slices : slice list;
}

type loop_binding =
  | Block_x
  | Block_y
  | Block_z
  | Warp_x
  | Warp_y

type loop_kind =
  | Sequential
  | Parallel of loop_binding
  | Unrolled

type copy_kind =
  | Sync_copy
  | Async_copy

type sync =
  | Barrier
  | Producer_acquire of string
  | Producer_commit of string
  | Consumer_wait of string
  | Consumer_release of string

type cmp =
  | Eq
  | Ne
  | Lt
  | Le

type cond = {
  lhs : Expr.t;
  cmp : cmp;
  rhs : Expr.t;
}

type t =
  | Seq of t list
  | For of { var : string; extent : Expr.t; kind : loop_kind; body : t }
  | Alloc of { buffer : Buffer.t; body : t }
  | If of { cond : cond; then_ : t }
  | Copy of { kind : copy_kind; dst : region; src : region; fused : string option }
      (** [fused] names an element-wise function applied in flight; only
          legal on synchronous copies (paper Fig. 5). *)
  | Fill of { dst : region; value : float }
  | Mma of { c : region; a : region; b : region }
      (** Tensor-core matrix-multiply-accumulate on register fragments:
          [c(i,j) += sum_k a(i,k) * b(j,k)]. *)
  | Unop of { dst : region; src : region; op : string }
  | Accum of { dst : region; src : region }
      (** dst += src elementwise; the reduction step of split-K kernels *)
  | Sync of sync

(** {2 Construction} *)

val slice : Expr.t -> int -> slice
val point_slice : Expr.t -> slice
val region : string -> slice list -> region
val full_region : Buffer.t -> region

val seq : t list -> t
(** Flattens nested [Seq]s; a singleton list collapses to its element. *)

val for_ : ?kind:loop_kind -> string -> Expr.t -> t -> t
val copy : ?kind:copy_kind -> ?fused:string -> dst:region -> src:region -> unit -> t
val alloc : Buffer.t -> t -> t

(** {2 Region utilities} *)

val region_lens : region -> int list
val region_elems : region -> int
val squeeze_lens : region -> int list
val copy_shapes_compatible : dst:region -> src:region -> bool
val slice_equal : slice -> slice -> bool
val region_equal : region -> region -> bool

(** {2 Traversal} *)

val iter : (t -> unit) -> t -> unit
(** Pre-order traversal. *)

val map : (t -> t) -> t -> t
(** Bottom-up rewriting: children first, then the rewritten node. *)

val map_children : (t -> t) -> t -> t

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold. *)

val allocs : t -> Buffer.t list
(** All allocated buffers in program order. *)

val find_alloc : t -> string -> Buffer.t option

val loop_vars : t -> string list

val subst_var : string -> Expr.t -> t -> t
(** Substitute an index variable through every expression of the program. *)

(** {2 Statistics} *)

val count : (t -> bool) -> t -> int
val count_copies : ?kind:copy_kind -> t -> int
val count_syncs : t -> int
val count_mmas : t -> int

(** {2 Printing} *)

val binding_to_string : loop_binding -> string
val cmp_to_string : cmp -> string
val pp_slice : Format.formatter -> slice -> unit
val pp_region : Format.formatter -> region -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
