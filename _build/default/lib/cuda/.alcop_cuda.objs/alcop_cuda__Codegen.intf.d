lib/cuda/codegen.mli: Alcop_ir Alcop_pipeline Kernel
