lib/cuda/codegen.ml: Alcop_ir Alcop_pipeline Array Buffer Dtype Expr Format Kernel List Printf Stdlib Stmt String
