(* CUDA source backend.

   Renders a (pipelined) kernel as CUDA C++ built on the Ampere
   asynchronous-copy machinery — cp.async through cuda::memcpy_async and
   the cuda::pipeline producer/consumer API — plus mma.sync via the wmma
   fragment API. This is what ALCOP emits through TVM's CUDA backend; here
   it is the human-readable rendering of the transformed IR (this
   repository's execution substrate is the simulator; the emitted source is
   illustrative and not compiled — see DESIGN.md, section 2).

   Mapping:
   - grid-parallel loops   -> blockIdx bindings
   - warp-parallel loops   -> warp-index bindings derived from threadIdx
   - sequential loops      -> for loops; unrolled ones get #pragma unroll
   - chunk copies          -> tile_memcpy[_async] helper calls carrying the
                              flattened element offset of each region corner
   - pipeline primitives   -> cuda::pipeline calls on the shared-scope
                              pipeline object
   - mma                   -> wmma fragment ops *)

open Alcop_ir

let strides_of shape =
  let dims = Array.of_list shape in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  strides

type ctx = {
  buf : Stdlib.Buffer.t;
  mutable indent : int;
  buffers : (string * Buffer.t) list;
}

let line ctx fmt =
  Format.kasprintf
    (fun s ->
      Stdlib.Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Stdlib.Buffer.add_string ctx.buf s;
      Stdlib.Buffer.add_char ctx.buf '\n')
    fmt

let blank ctx = Stdlib.Buffer.add_char ctx.buf '\n'

let buffer_of ctx name =
  match List.assoc_opt name ctx.buffers with
  | Some b -> b
  | None -> invalid_arg ("Codegen: unknown buffer " ^ name)

let c_ident name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  if mapped = "" || (mapped.[0] >= '0' && mapped.[0] <= '9') then "k_" ^ mapped
  else mapped

let ctype = function
  | Dtype.F16 -> "half"
  | Dtype.F32 -> "float"
  | Dtype.I32 -> "int"
  | Dtype.I8 -> "int8_t"

(* Flattened element offset of a region's corner: sum of slice offsets times
   row-major strides. Expr's printed syntax is C-compatible for the
   non-negative operands our kernels use. *)
let corner_offset ctx (r : Stmt.region) =
  let b = buffer_of ctx r.Stmt.buffer in
  let strides = strides_of b.Buffer.shape in
  let terms =
    List.mapi
      (fun d (s : Stmt.slice) -> Expr.mul s.Stmt.offset (Expr.const strides.(d)))
      r.Stmt.slices
  in
  Expr.simplify (List.fold_left Expr.add Expr.zero terms)

(* Rows x cols of the (squeezed) 2D tail of a region, with the row stride
   ("leading dimension") of its buffer. *)
let tile_geometry ctx (r : Stmt.region) =
  let b = buffer_of ctx r.Stmt.buffer in
  let strides = strides_of b.Buffer.shape in
  let dims =
    List.filteri (fun i (s : Stmt.slice) -> ignore i; s.Stmt.len > 1) r.Stmt.slices
  in
  let lens = List.map (fun (s : Stmt.slice) -> s.Stmt.len) dims in
  (* leading dimension: stride of the second-to-last varying axis *)
  let rec last_two = function
    | [ _; _ ] as l -> l
    | _ :: tl -> last_two tl
    | [] -> []
  in
  match lens with
  | [] -> (1, 1, 1)
  | [ c ] -> (1, c, 1)
  | _ ->
    (match last_two lens with
     | [ rows; cols ] ->
       (* stride of the rows axis: the varying axis followed by exactly one
          more varying axis *)
       let idx_of_rows =
         let rec find i = function
           | (s : Stmt.slice) :: tl ->
             let rest_varying =
               List.length (List.filter (fun (x : Stmt.slice) -> x.Stmt.len > 1) tl)
             in
             if s.Stmt.len > 1 && rest_varying = 1 then i else find (i + 1) tl
           | [] -> 0
         in
         find 0 r.Stmt.slices
       in
       (rows, cols, strides.(idx_of_rows))
     | _ -> (1, 1, 1))

let ptr ctx (r : Stmt.region) =
  let off = corner_offset ctx r in
  if Expr.equal off Expr.zero then r.Stmt.buffer
  else Format.asprintf "%s + %a" r.Stmt.buffer Expr.pp off

let emit_copy ctx ~(kind : Stmt.copy_kind) ~dst ~src ~fused =
  let rows, cols, ld_src = tile_geometry ctx src in
  let _, _, ld_dst = tile_geometry ctx dst in
  let fn =
    match kind with
    | Stmt.Async_copy -> "tile_memcpy_async"
    | Stmt.Sync_copy -> "tile_memcpy"
  in
  let fuse_arg = match fused with None -> "" | Some op -> ", f_" ^ op in
  line ctx "%s(%s, %s, /*rows=*/%d, /*cols=*/%d, /*ld_dst=*/%d, /*ld_src=*/%d%s);"
    fn (ptr ctx dst) (ptr ctx src) rows cols ld_dst ld_src fuse_arg

let binding_expr = function
  | Stmt.Block_x -> "blockIdx.x"
  | Stmt.Block_y -> "blockIdx.y"
  | Stmt.Block_z -> "blockIdx.z"
  | Stmt.Warp_x -> "(threadIdx.x / 32)"
  | Stmt.Warp_y -> "threadIdx.y"

let rec emit ctx stmt =
  match stmt with
  | Stmt.Seq ss -> List.iter (emit ctx) ss
  | Stmt.Alloc { buffer; body } ->
    let dims =
      String.concat ""
        (List.map (fun d -> Printf.sprintf "[%d]" d) buffer.Buffer.shape)
    in
    (match buffer.Buffer.scope with
     | Buffer.Shared ->
       line ctx "__shared__ %s %s%s;" (ctype buffer.Buffer.dtype)
         buffer.Buffer.name dims
     | Buffer.Register ->
       (* per-warp fragments: the leading warp-grid dims are implicit in
          the warp's identity *)
       let local_dims =
         String.concat ""
           (List.map (fun d -> Printf.sprintf "[%d]" d) buffer.Buffer.shape)
       in
       line ctx "%s %s%s;  // register fragments" (ctype buffer.Buffer.dtype)
         buffer.Buffer.name local_dims
     | Buffer.Global ->
       line ctx "// global scratch %s%s (kernel parameter)" buffer.Buffer.name
         dims);
    emit ctx body
  | Stmt.For { var; extent; kind; body } ->
    (match kind with
     | Stmt.Parallel b ->
       line ctx "const int %s = %s;  // extent %s" var (binding_expr b)
         (Expr.to_string extent);
       line ctx "{";
       ctx.indent <- ctx.indent + 1;
       emit ctx body;
       ctx.indent <- ctx.indent - 1;
       line ctx "}"
     | Stmt.Sequential | Stmt.Unrolled ->
       if kind = Stmt.Unrolled then line ctx "#pragma unroll";
       line ctx "for (int %s = 0; %s < %s; ++%s) {" var var
         (Expr.to_string extent) var;
       ctx.indent <- ctx.indent + 1;
       emit ctx body;
       ctx.indent <- ctx.indent - 1;
       line ctx "}")
  | Stmt.If { cond; then_ } ->
    line ctx "if (%s %s %s) {" (Expr.to_string cond.Stmt.lhs)
      (Stmt.cmp_to_string cond.Stmt.cmp)
      (Expr.to_string cond.Stmt.rhs);
    ctx.indent <- ctx.indent + 1;
    emit ctx then_;
    ctx.indent <- ctx.indent - 1;
    line ctx "}"
  | Stmt.Copy { kind; dst; src; fused } -> emit_copy ctx ~kind ~dst ~src ~fused
  | Stmt.Fill { dst; value } ->
    line ctx "wmma_fill(%s, %g);" (ptr ctx dst) value
  | Stmt.Mma { c; a; b } ->
    let m, n, _ = tile_geometry ctx c in
    let _, k, _ = tile_geometry ctx a in
    line ctx "wmma_mma_sync<%d, %d, %d>(%s, %s, %s);" m n k (ptr ctx c)
      (ptr ctx a) (ptr ctx b)
  | Stmt.Unop { dst; src; op } ->
    line ctx "tile_apply(%s, %s, f_%s);" (ptr ctx dst) (ptr ctx src) op
  | Stmt.Accum { dst; src } ->
    line ctx "tile_accumulate(%s, %s);" (ptr ctx dst) (ptr ctx src)
  | Stmt.Sync s ->
    (match s with
     | Stmt.Barrier -> line ctx "__syncthreads();"
     | Stmt.Producer_acquire g -> line ctx "%s.producer_acquire();" (c_ident g)
     | Stmt.Producer_commit g -> line ctx "%s.producer_commit();" (c_ident g)
     | Stmt.Consumer_wait g ->
       line ctx "%s.consumer_wait();" (c_ident g);
       line ctx "__syncthreads();"
     | Stmt.Consumer_release g -> line ctx "%s.consumer_release();" (c_ident g))

let kernel ?(groups = []) (k : Kernel.t) =
  let buffers =
    List.map (fun (b : Buffer.t) -> (b.Buffer.name, b)) (Kernel.all_buffers k)
  in
  let ctx = { buf = Stdlib.Buffer.create 4096; indent = 0; buffers } in
  line ctx "// Generated by ALCOP (OCaml reproduction) — illustrative CUDA";
  line ctx "// rendering of the pipelined tensor IR; see DESIGN.md.";
  line ctx "#include <cuda/pipeline>";
  line ctx "#include <mma.h>";
  blank ctx;
  let param (b : Buffer.t) ~const =
    Printf.sprintf "%s%s* __restrict__ %s"
      (if const then "const " else "")
      (ctype b.Buffer.dtype) b.Buffer.name
  in
  let params =
    List.map (param ~const:true) k.Kernel.inputs
    @ List.map (param ~const:false) k.Kernel.outputs
  in
  line ctx "__global__ void %s(%s) {" (c_ident k.Kernel.name)
    (String.concat ", " params);
  ctx.indent <- 1;
  List.iter
    (fun (g : Alcop_pipeline.Analysis.group) ->
      if g.Alcop_pipeline.Analysis.synchronized then begin
        line ctx
          "__shared__ cuda::pipeline_shared_state<cuda::thread_scope_block, \
           %d> %s_state;"
          g.Alcop_pipeline.Analysis.stages
          (c_ident g.Alcop_pipeline.Analysis.id);
        line ctx
          "auto %s = cuda::make_pipeline(cooperative_groups::this_thread_block(), &%s_state);"
          (c_ident g.Alcop_pipeline.Analysis.id)
          (c_ident g.Alcop_pipeline.Analysis.id)
      end)
    groups;
  if groups <> [] then blank ctx;
  emit ctx k.Kernel.body;
  ctx.indent <- 0;
  line ctx "}";
  Stdlib.Buffer.contents ctx.buf
