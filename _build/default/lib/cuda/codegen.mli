(** CUDA source backend: renders a (pipelined) kernel as human-readable
    CUDA C++ over cp.async / cuda::pipeline / wmma — the form ALCOP emits
    through TVM's CUDA backend. Illustrative output; this repository's
    execution substrate is the simulator (DESIGN.md, section 2). *)

open Alcop_ir

val kernel : ?groups:Alcop_pipeline.Analysis.group list -> Kernel.t -> string
(** Render one kernel. Pass the pipelining pass's groups so shared-scope
    pipelines get their cuda::pipeline object declarations. *)
