(** Transformation phase of the pipelining pass (paper Sec. III-B): buffer
    expansion, index shifting, buffer rolling / out-of-bound wrapping,
    prologue injection and synchronization injection, with multi-level
    inner-pipeline fusion (paper Fig. 3d). *)

open Alcop_ir

val run : Analysis.t -> Kernel.t -> Kernel.t
(** Rewrite every load-and-use loop identified by the analysis into its
    pipelined form. The input kernel must be the one the analysis ran on. *)

(**/**)

(* Exposed for white-box unit tests. *)

val rewrite_loop_body : Analysis.t -> Analysis.group -> Stmt.t -> Stmt.t
val build_prologue : Analysis.t -> Analysis.group -> Stmt.t -> Stmt.t
val inject_sync : Analysis.group -> fused_inner:bool -> Stmt.t -> Stmt.t
val boundary_wait : Analysis.group -> Analysis.group -> Stmt.t
val expand_allocs : Analysis.t -> Stmt.t -> Stmt.t
val prologue_var_of : string -> string
