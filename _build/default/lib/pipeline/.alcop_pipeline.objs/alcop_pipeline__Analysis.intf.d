lib/pipeline/analysis.mli: Alcop_hw Alcop_ir Buffer Expr Format Hints Kernel Stmt
