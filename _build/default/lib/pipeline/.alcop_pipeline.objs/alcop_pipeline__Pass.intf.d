lib/pipeline/pass.mli: Alcop_hw Alcop_ir Analysis Hints Kernel Result
