lib/pipeline/transform.mli: Alcop_ir Analysis Kernel Stmt
