lib/pipeline/pass.ml: Alcop_ir Analysis Format Kernel Transform Validate
