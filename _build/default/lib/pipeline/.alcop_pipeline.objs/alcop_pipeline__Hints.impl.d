lib/pipeline/hints.ml: Format List String
