lib/pipeline/transform.ml: Alcop_ir Analysis Buffer Expr Kernel List Option Stmt String
