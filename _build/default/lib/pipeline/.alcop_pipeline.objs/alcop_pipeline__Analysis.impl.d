lib/pipeline/analysis.ml: Alcop_hw Alcop_ir Buffer Expr Format Hashtbl Hints Kernel List Printf Stmt String
