lib/pipeline/hints.mli: Format
