(* Pipelining hints: the product of the schedule transformation (paper
   Sec. II). Each hint marks one buffer as pipelined and records the number
   of stages; [inner_fuse] asks for inner-pipeline fusion (paper Fig. 3d)
   when this buffer's pipeline is nested inside another pipeline. *)

type hint = {
  buffer : string;
  stages : int;
  inner_fuse : bool;
}

type t = hint list

let make ?(inner_fuse = true) ~buffer ~stages () =
  if stages < 2 then invalid_arg "Hints.make: a pipeline needs at least 2 stages";
  { buffer; stages; inner_fuse }

let empty : t = []

let add t hint =
  if List.exists (fun h -> String.equal h.buffer hint.buffer) t then
    invalid_arg ("Hints.add: duplicate hint for buffer " ^ hint.buffer)
  else hint :: t

let find t buffer = List.find_opt (fun h -> String.equal h.buffer buffer) t

let mem t buffer = find t buffer <> None

let buffers t = List.map (fun h -> h.buffer) t

let pp fmt t =
  let pp_hint fmt h =
    Format.fprintf fmt "%s.pipeline(stage=%d%s)" h.buffer h.stages
      (if h.inner_fuse then "" else ", fuse=false")
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_hint fmt (List.rev t)
