(** The complete pipelining pass: analysis followed by transformation
    (paper Fig. 4, "pipelining program transformation"). *)

open Alcop_ir

type result = {
  kernel : Kernel.t;    (** the pipelined kernel, structurally validated *)
  analysis : Analysis.t;
}

val groups : result -> Analysis.group list

val run :
  hw:Alcop_hw.Hw_config.t ->
  hints:Hints.t ->
  Kernel.t ->
  (result, Analysis.rejection) Result.t
(** Apply multi-stage multi-level pipelining to every hinted buffer.
    Returns [Error] when a hinted buffer fails one of the legality rules of
    paper Sec. II-A. *)

val run_exn : hw:Alcop_hw.Hw_config.t -> hints:Hints.t -> Kernel.t -> result
