(** Pipelining hints: the product of the schedule transformation (paper
    Sec. II). Each hint marks one buffer as pipelined. *)

type hint = {
  buffer : string;
  stages : int;
  inner_fuse : bool;
      (** request inner-pipeline fusion (paper Fig. 3d) when this buffer's
          pipeline is nested inside another pipeline *)
}

type t = hint list

val make : ?inner_fuse:bool -> buffer:string -> stages:int -> unit -> hint
(** @raise Invalid_argument if [stages < 2]. *)

val empty : t

val add : t -> hint -> t
(** @raise Invalid_argument on a duplicate buffer. *)

val find : t -> string -> hint option
val mem : t -> string -> bool
val buffers : t -> string list
val pp : Format.formatter -> t -> unit
