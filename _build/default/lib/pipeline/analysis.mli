(** Analysis phase of the pipelining program transformation (paper
    Sec. III-A) plus re-verification of the legality rules of Sec. II-A. *)

open Alcop_ir

type rejection = {
  buffer : string;
  rule : int;  (** which of the paper's three rules failed; 0 = structural *)
  reason : string;
}

exception Rejected of rejection

val pp_rejection : Format.formatter -> rejection -> unit

type frame = {
  var : string;
  extent : Expr.t;
  kind : Stmt.loop_kind;
}

type copy_site = {
  dst : Stmt.region;
  src : Stmt.region;
  fused : string option;
  stack : frame list;  (** enclosing loops, innermost first *)
}

type buffer_info = {
  buffer : Buffer.t;
  hint : Hints.hint;
  site : copy_site;
  loop_var : string;   (** the sequential load-and-use loop (step 3) *)
  loop_extent : int;
  producer : string;   (** source buffer of the producing copy (step 2) *)
}

type group = {
  id : string;
  scope : Buffer.scope;
  loop_var : string;
  loop_extent : int;
  loop_depth : int;
  stages : int;
  members : buffer_info list;
  synchronized : bool;
      (** scope-based barriers: guarded by the four-primitive protocol *)
  outer : string option;
      (** id of the group whose buffers produce this group's data *)
  fused : bool;  (** inner-pipeline fusion with [outer] (paper Fig. 3d) *)
}

type t = { groups : group list (** outermost first *) }

val find_group : t -> string -> group option
val group_of_buffer : t -> string -> group option
val member_names : group -> string list
val is_pipelined : t -> string -> bool

val run : hw:Alcop_hw.Hw_config.t -> hints:Hints.t -> Kernel.t -> t
(** @raise Rejected when a hinted buffer fails one of the paper's three
    legality rules or a structural precondition. *)
