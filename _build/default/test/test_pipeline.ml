(* Tests for the pipelining pass: legality analysis (paper Sec. II-A rules
   1-3) and the five-step program transformation (Sec. III-B). *)

open Alcop_ir
open Alcop_sched

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"pipe_test" ~m:128 ~n:128 ~k:256 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let lowered ?(smem_stages = 3) ?(reg_stages = 2) ?(inner_fuse = true) () =
  Lower.run
    (Schedule.default_gemm ~smem_stages ~reg_stages ~inner_fuse spec tiling)

let transformed ?smem_stages ?reg_stages ?inner_fuse () =
  let l = lowered ?smem_stages ?reg_stages ?inner_fuse () in
  match Alcop_pipeline.Pass.run ~hw ~hints:l.Lower.hints l.Lower.kernel with
  | Ok r -> (l, r)
  | Error rej ->
    Alcotest.failf "unexpected rejection: %a" Alcop_pipeline.Analysis.pp_rejection rej

(* --- analysis --- *)

let test_groups_found () =
  let _, r = transformed () in
  let groups = Alcop_pipeline.Pass.groups r in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let smem =
    List.find
      (fun (g : Alcop_pipeline.Analysis.group) ->
        Buffer.scope_equal g.Alcop_pipeline.Analysis.scope Buffer.Shared)
      groups
  in
  let reg =
    List.find
      (fun (g : Alcop_pipeline.Analysis.group) ->
        Buffer.scope_equal g.Alcop_pipeline.Analysis.scope Buffer.Register)
      groups
  in
  Alcotest.(check string) "smem loop" "ko" smem.Alcop_pipeline.Analysis.loop_var;
  Alcotest.(check string) "reg loop" "ki" reg.Alcop_pipeline.Analysis.loop_var;
  Alcotest.(check int) "smem stages" 3 smem.Alcop_pipeline.Analysis.stages;
  Alcotest.(check int) "reg stages" 2 reg.Alcop_pipeline.Analysis.stages;
  Alcotest.(check bool) "smem synchronized" true
    smem.Alcop_pipeline.Analysis.synchronized;
  Alcotest.(check bool) "reg not synchronized" false
    reg.Alcop_pipeline.Analysis.synchronized;
  Alcotest.(check bool) "reg fused into smem" true
    reg.Alcop_pipeline.Analysis.fused;
  Alcotest.(check (option string)) "outer link"
    (Some smem.Alcop_pipeline.Analysis.id)
    reg.Alcop_pipeline.Analysis.outer;
  Alcotest.(check (list string)) "smem members" [ "A_sh"; "B_sh" ]
    (List.sort compare (Alcop_pipeline.Analysis.member_names smem))

let test_rule1_no_async_hardware () =
  (* Volta has no asynchronous shared-memory copy: rule 1 rejects. *)
  let l = lowered () in
  match
    Alcop_pipeline.Pass.run ~hw:Alcop_hw.Hw_config.volta_v100
      ~hints:l.Lower.hints l.Lower.kernel
  with
  | Error rej -> Alcotest.(check int) "rule" 1 rej.Alcop_pipeline.Analysis.rule
  | Ok _ -> Alcotest.fail "must reject shared-memory pipelining on Volta"

let test_rule1_fused_copy () =
  (* Hand-inject a fused op on the producing copy: the buffer is no longer
     produced by a pure asynchronous copy. *)
  let l = lowered () in
  let body =
    Stmt.map
      (function
        | Stmt.Copy ({ dst; _ } as c) when String.equal dst.Stmt.buffer "A_sh" ->
          Stmt.Copy { c with fused = Some "relu" }
        | s -> s)
      l.Lower.kernel.Kernel.body
  in
  let kernel = Kernel.map_body (fun _ -> body) l.Lower.kernel in
  match Alcop_pipeline.Pass.run ~hw ~hints:l.Lower.hints kernel with
  | Error rej ->
    Alcotest.(check int) "rule" 1 rej.Alcop_pipeline.Analysis.rule;
    Alcotest.(check string) "buffer" "A_sh" rej.Alcop_pipeline.Analysis.buffer
  | Ok _ -> Alcotest.fail "fused copy must violate rule 1"

(* A synthetic kernel whose buffer is filled once per *parallel* tile: the
   stencil-like case rule 2 rejects. *)
let test_rule2_no_sequential_loop () =
  let a = Buffer.make ~name:"A" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 64; 16 ] in
  let c = Buffer.make ~name:"C" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 64; 16 ] in
  let sh = Buffer.make ~name:"S" ~scope:Buffer.Shared ~dtype:Dtype.F16 ~shape:[ 16; 16 ] in
  let row i = Stmt.slice (Expr.mul (Expr.var i) (Expr.const 16)) 16 in
  let body =
    Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_x) "bx" (Expr.const 4)
      (Stmt.alloc sh
         (Stmt.seq
            [ Stmt.copy
                ~dst:(Stmt.full_region sh)
                ~src:(Stmt.region "A" [ row "bx"; Stmt.slice Expr.zero 16 ])
                ();
              Stmt.Sync Stmt.Barrier;
              Stmt.copy
                ~dst:(Stmt.region "C" [ row "bx"; Stmt.slice Expr.zero 16 ])
                ~src:(Stmt.full_region sh) () ]))
  in
  let kernel = Kernel.make ~name:"stencil" ~inputs:[ a ] ~outputs:[ c ] ~body in
  let hints = [ Alcop_pipeline.Hints.make ~buffer:"S" ~stages:2 () ] in
  match Alcop_pipeline.Pass.run ~hw ~hints kernel with
  | Error rej -> Alcotest.(check int) "rule" 2 rej.Alcop_pipeline.Analysis.rule
  | Ok _ -> Alcotest.fail "buffer without sequential load-and-use loop must fail"

(* Two shared-memory buffers pipelined on *different* loops: the scope has a
   single barrier object, so rule 3 rejects. *)
let test_rule3_mismatched_loops () =
  let g name = Buffer.make ~name ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 64; 16 ] in
  let s name = Buffer.make ~name ~scope:Buffer.Shared ~dtype:Dtype.F16 ~shape:[ 16 ] in
  let sa = s "SA" and sb = s "SB" in
  let chunk v = Stmt.region "A" [ Stmt.point_slice (Expr.var v); Stmt.slice Expr.zero 16 ] in
  let chunk_b v = Stmt.region "B" [ Stmt.point_slice (Expr.var v); Stmt.slice Expr.zero 16 ] in
  let out v u =
    Stmt.region "C"
      [ Stmt.point_slice (Expr.add (Expr.mul (Expr.var v) (Expr.const 8)) (Expr.var u));
        Stmt.slice Expr.zero 16 ]
  in
  let body =
    Stmt.alloc sa
      (Stmt.alloc sb
         (Stmt.for_ "i" (Expr.const 8)
            (Stmt.seq
               [ Stmt.copy ~dst:(Stmt.full_region sa) ~src:(chunk "i") ();
                 Stmt.for_ "j" (Expr.const 8)
                   (Stmt.seq
                      [ Stmt.copy ~dst:(Stmt.full_region sb) ~src:(chunk_b "j") ();
                        Stmt.Sync Stmt.Barrier;
                        Stmt.copy ~dst:(out "i" "j") ~src:(Stmt.full_region sb) ();
                        Stmt.Sync Stmt.Barrier ]) ])))
  in
  let kernel =
    Kernel.make ~name:"mismatch" ~inputs:[ g "A"; g "B" ]
      ~outputs:
        [ Buffer.make ~name:"C" ~scope:Buffer.Global ~dtype:Dtype.F16
            ~shape:[ 64; 16 ] ]
      ~body
  in
  let hints =
    [ Alcop_pipeline.Hints.make ~buffer:"SA" ~stages:2 ();
      Alcop_pipeline.Hints.make ~buffer:"SB" ~stages:2 () ]
  in
  match Alcop_pipeline.Pass.run ~hw ~hints kernel with
  | Error rej -> Alcotest.(check int) "rule" 3 rej.Alcop_pipeline.Analysis.rule
  | Ok _ -> Alcotest.fail "mismatched synchronization positions must fail"

let test_rule3_mismatched_stage_counts () =
  let l = lowered () in
  let hints =
    [ Alcop_pipeline.Hints.make ~buffer:"A_sh" ~stages:3 ();
      Alcop_pipeline.Hints.make ~buffer:"B_sh" ~stages:2 () ]
  in
  match Alcop_pipeline.Pass.run ~hw ~hints l.Lower.kernel with
  | Error rej -> Alcotest.(check int) "rule" 3 rej.Alcop_pipeline.Analysis.rule
  | Ok _ -> Alcotest.fail "mismatched stage counts in one scope must fail"

(* --- transformation --- *)

let test_output_validates () =
  let _, r = transformed () in
  match Validate.check r.Alcop_pipeline.Pass.kernel with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (Validate.errors_to_string errs)

let test_buffer_expansion () =
  let _, r = transformed () in
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  let shape name =
    match Stmt.find_alloc body name with
    | Some b -> b.Buffer.shape
    | None -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check (list int)) "A_sh expanded" [ 3; 64; 32 ] (shape "A_sh");
  Alcotest.(check (list int)) "B_sh expanded" [ 3; 64; 32 ] (shape "B_sh");
  Alcotest.(check (list int)) "A_reg expanded" [ 2; 2; 2; 32; 16 ] (shape "A_reg");
  Alcotest.(check (list int)) "C_reg untouched" [ 2; 2; 32; 32 ] (shape "C_reg")

let test_copies_become_async () =
  let _, r = transformed () in
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  (* Steady-state 4 + prologue 4; only the epilogue store stays sync. *)
  Alcotest.(check int) "async copies" 8
    (Stmt.count_copies ~kind:Stmt.Async_copy body);
  Alcotest.(check int) "sync copies" 1
    (Stmt.count_copies ~kind:Stmt.Sync_copy body)

let test_barriers_removed () =
  let _, r = transformed () in
  Alcotest.(check int) "no plain barriers" 0
    (Stmt.count
       (function Stmt.Sync Stmt.Barrier -> true | _ -> false)
       r.Alcop_pipeline.Pass.kernel.Kernel.body)

let count_sync body pred = Stmt.count pred body

let test_sync_primitive_counts () =
  let _, r = transformed () in
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  (* acquire/commit in prologue and steady loop = 2 each; waits: one before
     the hoisted register prologue + one boundary wait; one release. *)
  Alcotest.(check int) "acquires" 2
    (count_sync body (function Stmt.Sync (Stmt.Producer_acquire _) -> true | _ -> false));
  Alcotest.(check int) "commits" 2
    (count_sync body (function Stmt.Sync (Stmt.Producer_commit _) -> true | _ -> false));
  Alcotest.(check int) "waits" 2
    (count_sync body (function Stmt.Sync (Stmt.Consumer_wait _) -> true | _ -> false));
  Alcotest.(check int) "releases" 1
    (count_sync body (function Stmt.Sync (Stmt.Consumer_release _) -> true | _ -> false))

let test_boundary_wait_under_if () =
  let _, r = transformed () in
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  let found = ref false in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.If { cond; then_ = Stmt.Sync (Stmt.Consumer_wait _) } ->
        found := true;
        (* boundary = extent_ki - (stages-1) = 2 - 1 = 1 *)
        Alcotest.(check (option int)) "boundary value" (Some 1)
          (Expr.eval_const cond.Stmt.rhs)
      | _ -> ())
    body;
  Alcotest.(check bool) "boundary wait exists" true !found

let test_prologue_loops () =
  let _, r = transformed () in
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  let extents = ref [] in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.For { var; extent; _ }
        when String.length var > 4
             && String.equal (String.sub var (String.length var - 4) 4) "_pro" ->
        extents := (var, Expr.eval_const extent) :: !extents
      | _ -> ())
    body;
  Alcotest.(check int) "two prologue loops" 2 (List.length !extents);
  Alcotest.(check (option int)) "smem prologue extent" (Some 2)
    (List.assoc "ko_pro" !extents);
  Alcotest.(check (option int)) "reg prologue extent" (Some 1)
    (List.assoc "ki_pro" !extents)

(* The steady-state producer copy of A_sh must load (ko + 2) % 3 and read
   A at column block (ko + 2) % 8. *)
let test_index_shift_and_wrap () =
  let _, r = transformed () in
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  let checked = ref false in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Copy { dst; src; _ }
        when String.equal dst.Stmt.buffer "A_sh"
             && Expr.mentions "ko" (List.hd dst.Stmt.slices).Stmt.offset ->
        checked := true;
        let eval_at ko e =
          Expr.eval (fun v -> if String.equal v "ko" then Some ko
                              else if String.equal v "bi" then Some 0
                              else None) e
        in
        let stage = (List.hd dst.Stmt.slices).Stmt.offset in
        Alcotest.(check int) "stage at ko=0" 2 (eval_at 0 stage);
        Alcotest.(check int) "stage at ko=4" 0 (eval_at 4 stage);
        (* source column block wraps modulo the loop extent (8). *)
        let col = (List.nth src.Stmt.slices 1).Stmt.offset in
        Alcotest.(check int) "src col at ko=0" (2 * 32) (eval_at 0 col);
        Alcotest.(check int) "src col at ko=6 wraps" 0 (eval_at 6 col)
      | _ -> ())
    body;
  Alcotest.(check bool) "producer copy found" true !checked

(* The register pipeline's source indexes the outer stage with the carry
   term (ko + (ki+1)/extent_ki) % 3 — paper Fig. 7 line 26. *)
let test_multilevel_carry_index () =
  let _, r = transformed () in
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  let checked = ref false in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Copy { dst; src; _ }
        when String.equal dst.Stmt.buffer "A_reg"
             && String.equal src.Stmt.buffer "A_sh"
             && Expr.mentions "ki" (List.hd src.Stmt.slices).Stmt.offset ->
        checked := true;
        let stage = (List.hd src.Stmt.slices).Stmt.offset in
        let eval_at ko ki =
          Expr.eval
            (fun v ->
              if String.equal v "ko" then Some ko
              else if String.equal v "ki" then Some ki
              else if String.equal v "wi" then Some 0
              else None)
            stage
        in
        (* extent_ki = 2: at ki=0 stay in stage ko; at ki=1 carry to ko+1 *)
        Alcotest.(check int) "no carry" 0 (eval_at 0 0);
        Alcotest.(check int) "carry" 1 (eval_at 0 1);
        Alcotest.(check int) "carry wraps" 0 (eval_at 2 1)
      | _ -> ())
    body;
  Alcotest.(check bool) "register load found" true !checked

let test_mma_reads_rolling_stage () =
  let _, r = transformed () in
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  let ok = ref false in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Mma { a; _ } ->
        let stage = (List.hd a.Stmt.slices).Stmt.offset in
        let v ki =
          Expr.eval (fun x -> if String.equal x "ki" then Some ki else None) stage
        in
        if Expr.mentions "ki" stage then begin
          ok := true;
          Alcotest.(check int) "ki=0" 0 (v 0);
          Alcotest.(check int) "ki=1" 1 (v 1)
        end
      | _ -> ())
    body;
  Alcotest.(check bool) "mma stage roll" true !ok

(* Single-level pipelining (ALCOP w/o ML): only the shared level pipelined,
   one wait before the inner loop, no If-guarded waits. *)
let test_single_level () =
  let _, r = transformed ~reg_stages:1 () in
  let groups = Alcop_pipeline.Pass.groups r in
  Alcotest.(check int) "one group" 1 (List.length groups);
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  Alcotest.(check int) "waits" 1
    (count_sync body (function Stmt.Sync (Stmt.Consumer_wait _) -> true | _ -> false));
  Alcotest.(check int) "ifs" 0
    (Stmt.count (function Stmt.If _ -> true | _ -> false) body)

(* Register-only pipelining without fusion context: producer not pipelined,
   so the inner pipeline is recursive (prologue inside the outer loop). *)
let test_register_only_pipeline () =
  let _, r = transformed ~smem_stages:1 () in
  let groups = Alcop_pipeline.Pass.groups r in
  Alcotest.(check int) "one group" 1 (List.length groups);
  let g = List.hd groups in
  Alcotest.(check bool) "not fused" false g.Alcop_pipeline.Analysis.fused;
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  (* barriers of the unpipelined smem staging must survive *)
  Alcotest.(check int) "barriers kept" 2
    (count_sync body (function Stmt.Sync Stmt.Barrier -> true | _ -> false));
  (* the register prologue sits inside ko: its loop is still there *)
  Alcotest.(check bool) "prologue exists" true
    (List.mem "ki_pro" (Stmt.loop_vars body))

(* Multi-level without inner-pipeline fusion (paper Fig. 3c): the register
   prologue re-executes per outer iteration and no boundary wait exists. *)
let test_multilevel_unfused () =
  let _, r = transformed ~inner_fuse:false () in
  let reg =
    List.find
      (fun (g : Alcop_pipeline.Analysis.group) ->
        Buffer.scope_equal g.Alcop_pipeline.Analysis.scope Buffer.Register)
      (Alcop_pipeline.Pass.groups r)
  in
  Alcotest.(check bool) "not fused" false reg.Alcop_pipeline.Analysis.fused;
  let body = r.Alcop_pipeline.Pass.kernel.Kernel.body in
  Alcotest.(check int) "no boundary ifs" 0
    (Stmt.count (function Stmt.If _ -> true | _ -> false) body);
  (* one unconditional wait (before first smem reader) per the outer group *)
  Alcotest.(check int) "waits" 1
    (count_sync body (function Stmt.Sync (Stmt.Consumer_wait _) -> true | _ -> false))

let test_empty_hints_identity () =
  let l = lowered ~smem_stages:1 ~reg_stages:1 () in
  Alcotest.(check int) "no hints" 0 (List.length l.Lower.hints);
  match Alcop_pipeline.Pass.run ~hw ~hints:[] l.Lower.kernel with
  | Ok r ->
    Alcotest.(check string) "body unchanged"
      (Kernel.to_string l.Lower.kernel)
      (Kernel.to_string r.Alcop_pipeline.Pass.kernel)
  | Error _ -> Alcotest.fail "empty hints must succeed"

let suite =
  [ ( "pipeline.analysis",
      [ Alcotest.test_case "groups found" `Quick test_groups_found;
        Alcotest.test_case "rule 1: no async hardware" `Quick
          test_rule1_no_async_hardware;
        Alcotest.test_case "rule 1: fused copy" `Quick test_rule1_fused_copy;
        Alcotest.test_case "rule 2: no sequential loop" `Quick
          test_rule2_no_sequential_loop;
        Alcotest.test_case "rule 3: mismatched loops" `Quick
          test_rule3_mismatched_loops;
        Alcotest.test_case "rule 3: mismatched stages" `Quick
          test_rule3_mismatched_stage_counts ] );
    ( "pipeline.transform",
      [ Alcotest.test_case "output validates" `Quick test_output_validates;
        Alcotest.test_case "buffer expansion" `Quick test_buffer_expansion;
        Alcotest.test_case "copies become async" `Quick test_copies_become_async;
        Alcotest.test_case "barriers removed" `Quick test_barriers_removed;
        Alcotest.test_case "sync primitive counts" `Quick test_sync_primitive_counts;
        Alcotest.test_case "boundary wait under if" `Quick
          test_boundary_wait_under_if;
        Alcotest.test_case "prologue loops" `Quick test_prologue_loops;
        Alcotest.test_case "index shift and wrap" `Quick test_index_shift_and_wrap;
        Alcotest.test_case "multi-level carry index" `Quick
          test_multilevel_carry_index;
        Alcotest.test_case "mma reads rolling stage" `Quick
          test_mma_reads_rolling_stage;
        Alcotest.test_case "single level" `Quick test_single_level;
        Alcotest.test_case "register-only pipeline" `Quick
          test_register_only_pipeline;
        Alcotest.test_case "multi-level unfused" `Quick test_multilevel_unfused;
        Alcotest.test_case "empty hints identity" `Quick test_empty_hints_identity ] ) ]
