(* Tests for the schedule layer: dataflow graph rewriting, primitive
   ordering (paper Sec. II-B) and the inlining-versus-pipelining
   interaction of Fig. 5. *)

open Alcop_ir
open Alcop_sched

let spec = Op_spec.matmul ~name:"sched_test" ~m:128 ~n:128 ~k:128 ()

let spec_elem =
  Op_spec.matmul ~name:"sched_elem" ~m:128 ~n:128 ~k:128 ~a_op:"relu" ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let default_chain sched =
  let sched, a_sh = Schedule.cache_read sched "A" Buffer.Shared in
  let sched, a_reg = Schedule.cache_read sched a_sh Buffer.Register in
  (sched, a_sh, a_reg)

(* --- dataflow --- *)

let test_of_spec_stages () =
  let g = Dataflow.of_spec spec in
  Alcotest.(check int) "stages" 3 (List.length g.Dataflow.stages);
  Alcotest.(check bool) "output" true (Dataflow.mem g "C")

let test_of_spec_with_elemwise () =
  let g = Dataflow.of_spec spec_elem in
  Alcotest.(check int) "stages" 4 (List.length g.Dataflow.stages);
  match (Dataflow.find_exn g "C").Dataflow.kind with
  | Dataflow.Gemm { a; _ } -> Alcotest.(check string) "gemm reads A_f" "A_f" a
  | _ -> Alcotest.fail "C is not a gemm"

let test_cache_read_retargets () =
  let g = Dataflow.of_spec spec in
  let g, name = Dataflow.cache_read g "A" Buffer.Shared in
  Alcotest.(check string) "name" "A_sh" name;
  (match (Dataflow.find_exn g "C").Dataflow.kind with
   | Dataflow.Gemm { a; _ } -> Alcotest.(check string) "retargeted" "A_sh" a
   | _ -> Alcotest.fail "C is not a gemm");
  let g, name2 = Dataflow.cache_read g "A_sh" Buffer.Register in
  Alcotest.(check string) "second level strips suffix" "A_reg" name2;
  let chain, root =
    Dataflow.cache_chain g
      (match (Dataflow.find_exn g "C").Dataflow.kind with
       | Dataflow.Gemm { a; _ } -> a
       | _ -> assert false)
  in
  Alcotest.(check (list string)) "chain" [ "A_sh"; "A_reg" ] chain;
  Alcotest.(check string) "root" "A" root

let test_consumers_producer () =
  let g = Dataflow.of_spec spec in
  let g, _ = Dataflow.cache_read g "A" Buffer.Shared in
  Alcotest.(check (list string)) "consumers of A" [ "A_sh" ]
    (List.map (fun (s : Dataflow.stage) -> s.Dataflow.name) (Dataflow.consumers g "A"));
  Alcotest.(check (option string)) "producer" (Some "A") (Dataflow.producer g "A_sh")

let test_remove_elemwise_rewires () =
  let g = Dataflow.of_spec spec_elem in
  let g2 = Dataflow.remove_elemwise g "A_f" in
  Alcotest.(check bool) "stage gone" false (Dataflow.mem g2 "A_f");
  (match (Dataflow.find_exn g2 "C").Dataflow.kind with
   | Dataflow.Gemm { a; _ } -> Alcotest.(check string) "rewired to A" "A" a
   | _ -> Alcotest.fail "C is not a gemm");
  Alcotest.check_raises "not elemwise"
    (Invalid_argument "Dataflow.remove_elemwise: C is not element-wise")
    (fun () -> ignore (Dataflow.remove_elemwise g "C"))

let test_set_fused_guards () =
  let g = Dataflow.of_spec spec in
  Alcotest.check_raises "not a cache read"
    (Invalid_argument "Dataflow.set_fused: C is not a cache read")
    (fun () -> ignore (Dataflow.set_fused g "C" "relu"))

let test_hints_api () =
  let h = Alcop_pipeline.Hints.make ~buffer:"X" ~stages:3 () in
  let t = Alcop_pipeline.Hints.add Alcop_pipeline.Hints.empty h in
  Alcotest.(check bool) "mem" true (Alcop_pipeline.Hints.mem t "X");
  Alcotest.(check (list string)) "buffers" [ "X" ] (Alcop_pipeline.Hints.buffers t);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Hints.add: duplicate hint for buffer X")
    (fun () -> ignore (Alcop_pipeline.Hints.add t h));
  Alcotest.check_raises "stages >= 2"
    (Invalid_argument "Hints.make: a pipeline needs at least 2 stages")
    (fun () -> ignore (Alcop_pipeline.Hints.make ~buffer:"Y" ~stages:1 ()))

(* --- ordering rules --- *)

let test_tile_before_pipeline_required () =
  let sched = Schedule.create spec in
  let sched, a_sh, _ = default_chain sched in
  match Schedule.pipeline sched a_sh ~stages:3 with
  | exception Schedule.Schedule_error e ->
    Alcotest.(check string) "primitive" "pipeline" e.Schedule.primitive
  | _ -> Alcotest.fail "pipelining before tiling must fail"

let test_cache_read_after_pipeline_rejected () =
  let sched = Schedule.create spec in
  let sched, a_sh, _ = default_chain sched in
  let sched = Schedule.tile sched tiling in
  let sched = Schedule.pipeline sched a_sh ~stages:2 in
  match Schedule.cache_read sched "B" Buffer.Shared with
  | exception Schedule.Schedule_error e ->
    Alcotest.(check string) "primitive" "cache_read" e.Schedule.primitive
  | _ -> Alcotest.fail "cache_read after pipeline must fail"

let test_pipeline_non_cache_stage_rejected () =
  let sched = Schedule.create spec in
  let sched = Schedule.tile sched tiling in
  match Schedule.pipeline sched "C" ~stages:2 with
  | exception Schedule.Schedule_error e ->
    Alcotest.(check bool) "mentions rule 1" true
      (String.length e.Schedule.reason > 0)
  | _ -> Alcotest.fail "pipelining a gemm stage must fail"

let test_double_tile_rejected () =
  let sched = Schedule.tile (Schedule.create spec) tiling in
  match Schedule.tile sched tiling with
  | exception Schedule.Schedule_error _ -> ()
  | _ -> Alcotest.fail "double tiling must fail"

let test_invalid_tiling_rejected () =
  let bad = Tiling.make ~tb_m:48 ~tb_n:64 ~tb_k:32 ~warp_m:16 ~warp_n:32 ~warp_k:16 () in
  match Schedule.tile (Schedule.create spec) bad with
  | exception Schedule.Schedule_error _ -> ()
  | _ -> Alcotest.fail "48 does not divide 128"

(* --- Fig. 5: inline x pipeline ordering --- *)

(* Case 1: inlining first fuses f into the shared-memory copy; pipelining
   that buffer afterwards violates rule 1. *)
let test_inline_then_pipeline_fails () =
  let sched = Schedule.create spec_elem in
  let sched, a_sh = Schedule.cache_read sched "A_f" Buffer.Shared in
  let sched, _ = Schedule.cache_read sched a_sh Buffer.Register in
  let sched = Schedule.tile sched tiling in
  let sched = Schedule.inline sched "A_f" in
  (* the elemwise stage is gone and the smem copy is fused *)
  (match (Dataflow.find_exn sched.Schedule.graph a_sh).Dataflow.kind with
   | Dataflow.Cache_read { fused = Some "relu"; src = "A"; _ } -> ()
   | k -> Alcotest.failf "unexpected kind %s" (Dataflow.kind_to_string k));
  match Schedule.pipeline sched a_sh ~stages:3 with
  | exception Schedule.Schedule_error e ->
    Alcotest.(check bool) "rule 1 fires" true
      (String.length e.Schedule.reason > 0)
  | _ -> Alcotest.fail "case 1 must refuse pipelining"

(* Case 2: pipelining first; inlining then retargets the cache read past the
   element-wise stage and pushes f into the downstream synchronous copy. *)
let test_pipeline_then_inline_succeeds () =
  let sched = Schedule.create spec_elem in
  let sched, a_sh = Schedule.cache_read sched "A_f" Buffer.Shared in
  let sched, a_reg = Schedule.cache_read sched a_sh Buffer.Register in
  let sched = Schedule.tile sched tiling in
  let sched = Schedule.pipeline sched a_sh ~stages:3 in
  let sched = Schedule.inline sched "A_f" in
  (match (Dataflow.find_exn sched.Schedule.graph a_sh).Dataflow.kind with
   | Dataflow.Cache_read { fused = None; src = "A"; _ } -> ()
   | k -> Alcotest.failf "smem copy must stay async, got %s"
            (Dataflow.kind_to_string k));
  (match (Dataflow.find_exn sched.Schedule.graph a_reg).Dataflow.kind with
   | Dataflow.Cache_read { fused = Some "relu"; _ } -> ()
   | k -> Alcotest.failf "register copy must carry the op, got %s"
            (Dataflow.kind_to_string k));
  Alcotest.(check bool) "elemwise stage removed" true
    (not (Dataflow.mem sched.Schedule.graph "A_f"))

let test_inline_without_downstream_fails () =
  (* Pipelining both levels leaves no synchronous copy to carry the op. *)
  let sched = Schedule.create spec_elem in
  let sched, a_sh = Schedule.cache_read sched "A_f" Buffer.Shared in
  let sched, a_reg = Schedule.cache_read sched a_sh Buffer.Register in
  let sched = Schedule.tile sched tiling in
  let sched = Schedule.pipeline sched a_sh ~stages:3 in
  let sched = Schedule.pipeline sched a_reg ~stages:2 in
  match Schedule.inline sched "A_f" with
  | exception Schedule.Schedule_error _ -> ()
  | _ -> Alcotest.fail "inlining must fail when every downstream copy is pipelined"

let test_default_gemm_schedule () =
  let sched = Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 spec tiling in
  Alcotest.(check int) "pipeline hints" 4
    (List.length sched.Schedule.pipeline_hints);
  Alcotest.(check bool) "tiled" true (sched.Schedule.tiling <> None)

let test_default_gemm_disable_levels () =
  let sched = Schedule.default_gemm ~smem_stages:1 ~reg_stages:1 spec tiling in
  Alcotest.(check int) "no hints" 0 (List.length sched.Schedule.pipeline_hints)

(* --- tiling helper --- *)

let test_tiling_derived_quantities () =
  Alcotest.(check int) "warps" 4 (Tiling.warps tiling);
  Alcotest.(check int) "tbs" 4 (Tiling.threadblocks tiling spec);
  Alcotest.(check int) "k iters" 4 (Tiling.k_iters tiling spec);
  Alcotest.(check int) "ki iters" 2 (Tiling.ki_iters tiling);
  Alcotest.(check int) "smem bytes" ((64 + 64) * 32 * 2)
    (Tiling.smem_tile_bytes tiling 2)

let test_tiling_granule_check () =
  let bad = Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:8 ~warp_n:32 ~warp_k:16 () in
  match Tiling.validate bad spec with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "warp_m=8 must violate the MMA granule"

let suite =
  [ ( "schedule",
      [ Alcotest.test_case "dataflow of spec" `Quick test_of_spec_stages;
        Alcotest.test_case "dataflow with elemwise" `Quick test_of_spec_with_elemwise;
        Alcotest.test_case "cache_read retargets" `Quick test_cache_read_retargets;
        Alcotest.test_case "consumers/producer" `Quick test_consumers_producer;
        Alcotest.test_case "remove_elemwise rewires" `Quick
          test_remove_elemwise_rewires;
        Alcotest.test_case "set_fused guards" `Quick test_set_fused_guards;
        Alcotest.test_case "hints api" `Quick test_hints_api;
        Alcotest.test_case "tile before pipeline" `Quick
          test_tile_before_pipeline_required;
        Alcotest.test_case "cache_read after pipeline" `Quick
          test_cache_read_after_pipeline_rejected;
        Alcotest.test_case "pipeline non-cache stage" `Quick
          test_pipeline_non_cache_stage_rejected;
        Alcotest.test_case "double tile" `Quick test_double_tile_rejected;
        Alcotest.test_case "invalid tiling" `Quick test_invalid_tiling_rejected;
        Alcotest.test_case "Fig5 case 1: inline then pipeline" `Quick
          test_inline_then_pipeline_fails;
        Alcotest.test_case "Fig5 case 2: pipeline then inline" `Quick
          test_pipeline_then_inline_succeeds;
        Alcotest.test_case "inline without downstream" `Quick
          test_inline_without_downstream_fails;
        Alcotest.test_case "default gemm schedule" `Quick test_default_gemm_schedule;
        Alcotest.test_case "default gemm disable levels" `Quick
          test_default_gemm_disable_levels;
        Alcotest.test_case "tiling quantities" `Quick test_tiling_derived_quantities;
        Alcotest.test_case "tiling granule" `Quick test_tiling_granule_check ] ) ]
