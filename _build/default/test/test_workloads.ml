(* Tests for workload definitions, hardware configs, the convolution
   reference path (im2col vs direct convolution), and the automatic
   pipelining entry point. *)

open Alcop_ir
open Alcop_sched
open Alcop_gpusim

(* --- hardware configs --- *)

let test_hw_sanity () =
  List.iter
    (fun (hw : Alcop_hw.Hw_config.t) ->
      Alcotest.(check bool) (hw.Alcop_hw.Hw_config.name ^ " sms") true
        (hw.Alcop_hw.Hw_config.num_sms > 0);
      Alcotest.(check bool) "clock" true (hw.Alcop_hw.Hw_config.clock_ghz > 0.0);
      Alcotest.(check bool) "smem per tb <= per sm" true
        (hw.Alcop_hw.Hw_config.smem_bytes_per_tb_max
         <= hw.Alcop_hw.Hw_config.smem_bytes_per_sm);
      Alcotest.(check bool) "dram slower than llc" true
        (hw.Alcop_hw.Hw_config.dram_bytes_per_cycle
         < hw.Alcop_hw.Hw_config.llc_bytes_per_cycle);
      Alcotest.(check bool) "dram latency > llc latency" true
        (hw.Alcop_hw.Hw_config.dram_latency > hw.Alcop_hw.Hw_config.llc_latency))
    [ Alcop_hw.Hw_config.ampere_a100; Alcop_hw.Hw_config.volta_v100 ]

let test_hw_async_scopes () =
  let a100 = Alcop_hw.Hw_config.ampere_a100 in
  let v100 = Alcop_hw.Hw_config.volta_v100 in
  Alcotest.(check bool) "a100 smem async" true
    (Alcop_hw.Hw_config.scope_is_async a100 Buffer.Shared);
  Alcotest.(check bool) "v100 smem not async" false
    (Alcop_hw.Hw_config.scope_is_async v100 Buffer.Shared);
  Alcotest.(check bool) "v100 register async" true
    (Alcop_hw.Hw_config.scope_is_async v100 Buffer.Register);
  Alcotest.(check bool) "smem scope-synchronized" true
    (Alcop_hw.Hw_config.scope_needs_matching_sync a100 Buffer.Shared);
  Alcotest.(check bool) "register not scope-synchronized" false
    (Alcop_hw.Hw_config.scope_needs_matching_sync a100 Buffer.Register)

let test_hw_unit_conversions () =
  let hw = Alcop_hw.Hw_config.ampere_a100 in
  let us = Alcop_hw.Hw_config.cycles_to_us hw 1410.0 in
  Alcotest.(check (float 1e-9)) "1410 cycles at 1.41GHz = 1us" 1.0 us;
  Alcotest.(check (float 1e-6)) "roundtrip" 1410.0
    (Alcop_hw.Hw_config.us_to_cycles hw us);
  Alcotest.(check (float 1.0)) "peak tflops" 312.0
    (Alcop_hw.Hw_config.peak_tensor_tflops hw)

(* --- suite and model shapes --- *)

let test_suite_shapes_sane () =
  List.iter
    (fun (s : Op_spec.t) ->
      Alcotest.(check bool) (s.Op_spec.name ^ " flops") true (Op_spec.flops s > 0);
      Alcotest.(check bool) "intensity" true (Op_spec.arithmetic_intensity s > 0.0))
    Alcop_workloads.Suites.fig10

let test_suite_find () =
  Alcotest.(check bool) "find" true
    (Alcop_workloads.Suites.find "MM_RN50_FC" <> None);
  Alcotest.(check bool) "missing" true (Alcop_workloads.Suites.find "nope" = None)

let test_rn50_fc_matches_paper () =
  (* Paper: output 1024x64, reduction 2048. *)
  let s = Option.get (Alcop_workloads.Suites.find "MM_RN50_FC") in
  Alcotest.(check int) "m" 1024 s.Op_spec.m;
  Alcotest.(check int) "n" 64 s.Op_spec.n;
  Alcotest.(check int) "k" 2048 s.Op_spec.k

let test_models_overhead_fraction () =
  List.iter
    (fun (m : Alcop_workloads.Models.t) ->
      Alcotest.(check bool)
        (m.Alcop_workloads.Models.name ^ " fraction")
        true
        (m.Alcop_workloads.Models.overhead_fraction >= 0.0
         && m.Alcop_workloads.Models.overhead_fraction < 1.0))
    Alcop_workloads.Models.all

(* --- convolution reference path --- *)

let conv_shape =
  { Op_spec.cn = 2; ci = 4; ch = 6; cw = 5; co = 3; ckh = 3; ckw = 3;
    stride = 1; pad = 1 }

let test_im2col_matches_direct_conv () =
  let image =
    Tensor.random ~seed:5 [ conv_shape.Op_spec.cn; conv_shape.Op_spec.ci;
                            conv_shape.Op_spec.ch; conv_shape.Op_spec.cw ]
  in
  let weights =
    Tensor.random ~seed:6 [ conv_shape.Op_spec.co; conv_shape.Op_spec.ci;
                            conv_shape.Op_spec.ckh; conv_shape.Op_spec.ckw ]
  in
  let a = Reference.im2col conv_shape image in
  let b = Reference.flatten_weights conv_shape weights in
  (* gemm of the lowered operands == direct convolution *)
  let oh = 6 and ow = 5 in
  let m = 2 * oh * ow and k = 4 * 9 in
  let spec_gemm =
    Op_spec.matmul ~name:"conv_as_gemm" ~m ~n:3 ~k ()
  in
  let via_gemm = Reference.gemm spec_gemm ~a ~b in
  let direct = Reference.conv2d_direct conv_shape ~image ~weights in
  Alcotest.(check bool) "im2col+gemm == direct conv" true
    (Tensor.allclose ~atol:1e-9 via_gemm direct)

let test_im2col_padding_zero () =
  let image = Tensor.create [ 1; 1; 3; 3 ] 1.0 in
  let shape =
    { Op_spec.cn = 1; ci = 1; ch = 3; cw = 3; co = 1; ckh = 3; ckw = 3;
      stride = 1; pad = 1 }
  in
  let a = Reference.im2col shape image in
  (* corner output pixel (0,0): its 3x3 window has 5 zero-padded taps *)
  let row0_sum = ref 0.0 in
  for col = 0 to 8 do
    row0_sum := !row0_sum +. Tensor.get a [| 0; col |]
  done;
  Alcotest.(check (float 1e-9)) "corner sees 4 in-bounds taps" 4.0 !row0_sum

let test_conv_strided_dims () =
  let s =
    Op_spec.conv2d ~name:"strided"
      { Op_spec.cn = 1; ci = 8; ch = 16; cw = 16; co = 8; ckh = 3; ckw = 3;
        stride = 2; pad = 1 }
  in
  (* (16 + 2 - 3)/2 + 1 = 8 *)
  Alcotest.(check int) "m" (8 * 8) s.Op_spec.m

(* --- automatic pipelining --- *)

let auto_schedule hw =
  let spec = Op_spec.matmul ~name:"auto_test" ~m:128 ~n:128 ~k:128 () in
  let tiling =
    Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()
  in
  let sched = Schedule.create spec in
  let sched, a_sh = Schedule.cache_read sched "A" Buffer.Shared in
  let sched, _ = Schedule.cache_read sched a_sh Buffer.Register in
  let sched, b_sh = Schedule.cache_read sched "B" Buffer.Shared in
  let sched, _ = Schedule.cache_read sched b_sh Buffer.Register in
  let sched = Schedule.tile sched tiling in
  Schedule.auto_pipeline ~hw ~smem_stages:3 ~reg_stages:2 sched

let count_decisions report pred =
  List.length (List.filter (fun (_, d) -> pred d) report)

let test_auto_pipeline_ampere () =
  let sched, report = auto_schedule Alcop_hw.Hw_config.ampere_a100 in
  Alcotest.(check int) "all four pipelined" 4
    (count_decisions report (function Schedule.Pipelined _ -> true | _ -> false));
  Alcotest.(check int) "four hints" 4
    (List.length sched.Schedule.pipeline_hints)

let test_auto_pipeline_volta_degrades () =
  let sched, report = auto_schedule Alcop_hw.Hw_config.volta_v100 in
  Alcotest.(check int) "register levels pipelined" 2
    (count_decisions report (function Schedule.Pipelined _ -> true | _ -> false));
  Alcotest.(check int) "shared levels skipped" 2
    (count_decisions report (function Schedule.Skipped _ -> true | _ -> false));
  Alcotest.(check int) "two hints" 2 (List.length sched.Schedule.pipeline_hints);
  (* the degraded schedule still compiles and transforms *)
  let lowered = Lower.run sched in
  match
    Alcop_pipeline.Pass.run ~hw:Alcop_hw.Hw_config.volta_v100
      ~hints:lowered.Lower.hints lowered.Lower.kernel
  with
  | Ok r ->
    Alcotest.(check int) "one group" 1
      (List.length (Alcop_pipeline.Pass.groups r))
  | Error rej ->
    Alcotest.failf "unexpected rejection: %a" Alcop_pipeline.Analysis.pp_rejection rej

let test_auto_pipeline_disabled_levels () =
  let spec = Op_spec.matmul ~name:"auto_off" ~m:128 ~n:128 ~k:128 () in
  let tiling =
    Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()
  in
  let sched = Schedule.create spec in
  let sched, a_sh = Schedule.cache_read sched "A" Buffer.Shared in
  let sched, _ = Schedule.cache_read sched a_sh Buffer.Register in
  let sched = Schedule.tile sched tiling in
  let _, report =
    Schedule.auto_pipeline ~hw:Alcop_hw.Hw_config.ampere_a100 ~smem_stages:1
      ~reg_stages:1 sched
  in
  Alcotest.(check int) "nothing pipelined" 0
    (count_decisions report (function Schedule.Pipelined _ -> true | _ -> false))

let suite =
  [ ( "workloads",
      [ Alcotest.test_case "hw sanity" `Quick test_hw_sanity;
        Alcotest.test_case "hw async scopes" `Quick test_hw_async_scopes;
        Alcotest.test_case "hw unit conversions" `Quick test_hw_unit_conversions;
        Alcotest.test_case "suite shapes sane" `Quick test_suite_shapes_sane;
        Alcotest.test_case "suite find" `Quick test_suite_find;
        Alcotest.test_case "RN50 FC matches paper" `Quick
          test_rn50_fc_matches_paper;
        Alcotest.test_case "model overhead fractions" `Quick
          test_models_overhead_fraction;
        Alcotest.test_case "im2col matches direct conv" `Quick
          test_im2col_matches_direct_conv;
        Alcotest.test_case "im2col padding" `Quick test_im2col_padding_zero;
        Alcotest.test_case "strided conv dims" `Quick test_conv_strided_dims;
        Alcotest.test_case "auto-pipeline on Ampere" `Quick
          test_auto_pipeline_ampere;
        Alcotest.test_case "auto-pipeline degrades on Volta" `Quick
          test_auto_pipeline_volta_degrades;
        Alcotest.test_case "auto-pipeline disabled levels" `Quick
          test_auto_pipeline_disabled_levels ] ) ]
