(* Unit and property tests for the index expression language. *)

open Alcop_ir

let e = Alcotest.(check int)

let env_of bindings v = List.assoc_opt v bindings

(* --- generators --- *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun n -> Expr.Const n) (int_range 0 64);
        oneofl [ Expr.Var "x"; Expr.Var "y"; Expr.Var "z" ] ]
  in
  let rec expr n =
    if n = 0 then leaf
    else
      frequency
        [ (2, leaf);
          (1, map2 (fun a b -> Expr.Add (a, b)) (expr (n - 1)) (expr (n - 1)));
          (1, map2 (fun a b -> Expr.Sub (a, b)) (expr (n - 1)) (expr (n - 1)));
          (1, map2 (fun a b -> Expr.Mul (a, b)) (expr (n - 1)) (expr (n - 1)));
          (1,
           map2
             (fun a b -> Expr.Div (a, Expr.Const (1 + abs b)))
             (expr (n - 1)) (int_range 1 16));
          (1,
           map2
             (fun a b -> Expr.Mod (a, Expr.Const (1 + abs b)))
             (expr (n - 1)) (int_range 1 16));
          (1, map2 (fun a b -> Expr.Min (a, b)) (expr (n - 1)) (expr (n - 1)));
          (1, map2 (fun a b -> Expr.Max (a, b)) (expr (n - 1)) (expr (n - 1))) ]
  in
  expr 4

let arb_expr = QCheck.make ~print:Expr.to_string gen_expr

let test_env = [ ("x", 7); ("y", 12); ("z", 3) ]

(* --- unit tests --- *)

let test_constant_folding () =
  e "add" 5 (Expr.eval (env_of []) (Expr.add (Expr.const 2) (Expr.const 3)));
  Alcotest.(check bool)
    "add folds" true
    (Expr.equal (Expr.add (Expr.const 2) (Expr.const 3)) (Expr.const 5));
  Alcotest.(check bool)
    "mul by zero" true
    (Expr.equal (Expr.mul (Expr.var "k") Expr.zero) Expr.zero);
  Alcotest.(check bool)
    "mul by one" true
    (Expr.equal (Expr.mul (Expr.var "k") Expr.one) (Expr.var "k"));
  Alcotest.(check bool)
    "add zero" true
    (Expr.equal (Expr.add (Expr.var "k") Expr.zero) (Expr.var "k"));
  Alcotest.(check bool)
    "mod one" true
    (Expr.equal (Expr.modulo (Expr.var "k") Expr.one) Expr.zero);
  Alcotest.(check bool)
    "div one" true
    (Expr.equal (Expr.div (Expr.var "k") Expr.one) (Expr.var "k"))

let test_nested_constant_chains () =
  (* (k + 2) + 3 folds to k + 5 *)
  let x = Expr.add (Expr.add (Expr.var "k") (Expr.const 2)) (Expr.const 3) in
  Alcotest.(check string) "chain" "k + 5" (Expr.to_string x);
  (* mod of mod with equal modulus collapses *)
  let m =
    Expr.modulo (Expr.modulo (Expr.var "k") (Expr.const 3)) (Expr.const 3)
  in
  Alcotest.(check string) "modmod" "k % 3" (Expr.to_string m)

let test_floor_semantics () =
  e "floordiv pos" 2 (Expr.floordiv_int 7 3);
  e "floordiv neg" (-3) (Expr.floordiv_int (-7) 3);
  e "floormod pos" 1 (Expr.floormod_int 7 3);
  e "floormod neg" 2 (Expr.floormod_int (-7) 3)

let test_eval () =
  let expr =
    Expr.add
      (Expr.mul (Expr.var "x") (Expr.const 4))
      (Expr.modulo (Expr.var "y") (Expr.const 5))
  in
  e "eval" ((7 * 4) + (12 mod 5)) (Expr.eval (env_of test_env) expr)

let test_eval_unbound () =
  Alcotest.check_raises "unbound"
    (Invalid_argument "Expr.eval: unbound variable q")
    (fun () -> ignore (Expr.eval (env_of []) (Expr.var "q")))

let test_eval_const () =
  Alcotest.(check (option int))
    "const" (Some 42)
    (Expr.eval_const (Expr.mul (Expr.const 6) (Expr.const 7)));
  Alcotest.(check (option int))
    "nonconst" None
    (Expr.eval_const (Expr.add (Expr.var "x") (Expr.const 1)))

let test_subst () =
  (* (ko + 2) mod 8 with ko := 6 evaluates to 0 *)
  let expr = Expr.modulo (Expr.add (Expr.var "ko") (Expr.const 2)) (Expr.const 8) in
  let substituted = Expr.subst "ko" (Expr.const 6) expr in
  Alcotest.(check (option int)) "subst folds" (Some 0) (Expr.eval_const substituted)

let test_free_vars () =
  let expr =
    Expr.add (Expr.var "a") (Expr.mul (Expr.var "b") (Expr.var "a"))
  in
  Alcotest.(check (list string)) "vars" [ "a"; "b" ] (Expr.free_vars expr);
  Alcotest.(check bool) "mentions" true (Expr.mentions "b" expr);
  Alcotest.(check bool) "not mentions" false (Expr.mentions "c" expr)

let test_mod_drops_multiples () =
  (* (ko * 2 + ki + 1) mod 2 = (ki + 1) mod 2 -- paper Fig. 7's concise
     rolling index is recovered when the extent is a multiple of the stage
     count *)
  let e =
    Expr.modulo
      (Expr.add
         (Expr.add (Expr.mul (Expr.var "ko") (Expr.const 2)) (Expr.var "ki"))
         Expr.one)
      (Expr.const 2)
  in
  Alcotest.(check string) "dropped" "(ki + 1) % 2" (Expr.to_string e);
  (* but NOT when the multiplier is not a multiple of the modulus *)
  let e2 =
    Expr.modulo
      (Expr.add (Expr.mul (Expr.var "ko") (Expr.const 3)) (Expr.var "ki"))
      (Expr.const 2)
  in
  Alcotest.(check bool) "kept" true
    (Expr.mentions "ko" e2);
  (* semantic equivalence under random assignments *)
  for ko = 0 to 5 do
    for ki = 0 to 5 do
      let env v =
        if String.equal v "ko" then Some ko
        else if String.equal v "ki" then Some ki
        else None
      in
      Alcotest.(check int) "equivalent"
        (((ko * 2) + ki + 1) mod 2)
        (Expr.eval env e)
    done
  done

let test_min_max () =
  let e = Expr.min_ (Expr.var "x") (Expr.max_ (Expr.var "y") (Expr.const 3)) in
  Alcotest.(check int) "eval" 7 (Expr.eval (env_of test_env) e);
  Alcotest.(check string) "pp" "min(x, max(y, 3))" (Expr.to_string e);
  Alcotest.(check bool) "min self" true
    (Expr.equal (Expr.min_ (Expr.var "x") (Expr.var "x")) (Expr.var "x"))

let test_pp_precedence () =
  let s x = Expr.to_string x in
  Alcotest.(check string)
    "mul of add" "(a + b) * 2"
    (s (Expr.Mul (Expr.Add (Expr.var "a", Expr.var "b"), Expr.const 2)));
  Alcotest.(check string)
    "mul of mod parenthesized" "(a % 3) * 2"
    (s (Expr.Mul (Expr.Mod (Expr.var "a", Expr.const 3), Expr.const 2)));
  Alcotest.(check string)
    "add of mul" "a * 2 + b"
    (s (Expr.Add (Expr.Mul (Expr.var "a", Expr.const 2), Expr.var "b")));
  Alcotest.(check string)
    "sub rhs" "a - (b + c)"
    (s (Expr.Sub (Expr.var "a", Expr.Add (Expr.var "b", Expr.var "c"))))

(* --- properties --- *)

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:500 arb_expr
    (fun expr ->
      let env = env_of test_env in
      match Expr.eval env expr with
      | v -> Expr.eval env (Expr.simplify expr) = v
      | exception Invalid_argument _ -> QCheck.assume_fail ())

let prop_subst_matches_env =
  QCheck.Test.make ~name:"subst x:=c equals eval with x=c" ~count:500 arb_expr
    (fun expr ->
      let env = env_of test_env in
      match Expr.eval env expr with
      | v ->
        let substituted =
          List.fold_left
            (fun acc (name, value) -> Expr.subst name (Expr.const value) acc)
            expr test_env
        in
        Expr.eval_const substituted = Some v
      | exception Invalid_argument _ -> QCheck.assume_fail ())

let prop_free_vars_after_subst =
  QCheck.Test.make ~name:"subst removes the variable" ~count:500 arb_expr
    (fun expr ->
      let substituted = Expr.subst "x" (Expr.const 3) expr in
      not (Expr.mentions "x" substituted))

let prop_floormod_range =
  QCheck.Test.make ~name:"floormod lands in [0, b)" ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 64))
    (fun (a, b) ->
      let m = Expr.floormod_int a b in
      m >= 0 && m < b)

let prop_floor_div_mod_identity =
  QCheck.Test.make ~name:"a = b * (a/b) + (a mod b)" ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 64))
    (fun (a, b) -> (b * Expr.floordiv_int a b) + Expr.floormod_int a b = a)

let prop_pp_roundtrip_eval =
  (* Printing then reading back is not implemented, but printing must at
     least be total and stable under simplification idempotence. *)
  QCheck.Test.make ~name:"simplify is idempotent" ~count:500 arb_expr
    (fun expr ->
      let once = Expr.simplify expr in
      Expr.equal once (Expr.simplify once))

let suite =
  [ ( "expr",
      [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
        Alcotest.test_case "nested constant chains" `Quick
          test_nested_constant_chains;
        Alcotest.test_case "floor division semantics" `Quick test_floor_semantics;
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "eval unbound" `Quick test_eval_unbound;
        Alcotest.test_case "eval_const" `Quick test_eval_const;
        Alcotest.test_case "subst" `Quick test_subst;
        Alcotest.test_case "free vars" `Quick test_free_vars;
        Alcotest.test_case "mod drops multiples" `Quick test_mod_drops_multiples;
        Alcotest.test_case "min/max" `Quick test_min_max;
        Alcotest.test_case "printing precedence" `Quick test_pp_precedence;
        QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
        QCheck_alcotest.to_alcotest prop_subst_matches_env;
        QCheck_alcotest.to_alcotest prop_free_vars_after_subst;
        QCheck_alcotest.to_alcotest prop_floormod_range;
        QCheck_alcotest.to_alcotest prop_floor_div_mod_identity;
        QCheck_alcotest.to_alcotest prop_pp_roundtrip_eval ] ) ]
