(* Randomized end-to-end properties: for random operator shapes, tilings
   and pipeline configurations, the pipelined kernel must
   (a) pass structural validation,
   (b) compute bit-identical results to the unpipelined reference under the
       strict asynchronous-copy semantics, and
   (c) perform exactly the same FLOPs and output stores in its trace.

   This is the repository's strongest evidence that the program
   transformation of paper Sec. III is correct across its whole parameter
   space, not just on the hand-picked unit-test cases. *)

open Alcop_ir
open Alcop_sched
open Alcop_gpusim

let hw = Alcop_hw.Hw_config.ampere_a100

type case = {
  batch : int;
  split_k : int;
  m : int;
  n : int;
  k : int;
  tiling : Tiling.t;
  smem_stages : int;
  reg_stages : int;
  inner_fuse : bool;
  a_op : string option;
  epilogue : string option;
}

let case_to_string c =
  Printf.sprintf "b%d %dx%dx%d %s smem=%d reg=%d fuse=%b a_op=%s ep=%s" c.batch
    c.m c.n c.k (Tiling.to_string c.tiling) c.smem_stages c.reg_stages
    c.inner_fuse
    (Option.value c.a_op ~default:"-")
    (Option.value c.epilogue ~default:"-")

let gen_case =
  let open QCheck.Gen in
  let* m = oneofl [ 32; 64; 96; 128 ] in
  let* n = oneofl [ 32; 64; 96 ] in
  let* k = oneofl [ 32; 64; 128; 192 ] in
  let* batch = oneofl [ 1; 2; 3 ] in
  let divisors_of x cands = List.filter (fun d -> x mod d = 0) cands in
  let* tb_m = oneofl (divisors_of m [ 16; 32; 64 ]) in
  let* tb_n = oneofl (divisors_of n [ 16; 32 ]) in
  let* tb_k = oneofl (divisors_of k [ 16; 32 ]) in
  let* warp_m = oneofl (divisors_of tb_m [ 16; 32 ]) in
  let* warp_n = oneofl (divisors_of tb_n [ 16; 32 ]) in
  let* warp_k = oneofl (divisors_of tb_k [ 16; 32 ]) in
  let* split_k = oneofl (divisors_of (k / tb_k) [ 1; 2 ]) in
  let* smem_stages = int_range 1 4 in
  let* reg_stages = int_range 1 2 in
  let* inner_fuse = bool in
  let* a_op = oneofl [ None; Some "relu"; Some "scale2" ] in
  let* epilogue = oneofl [ None; Some "relu" ] in
  return
    { batch; split_k; m; n; k;
      tiling = Tiling.make ~split_k ~tb_m ~tb_n ~tb_k ~warp_m ~warp_n ~warp_k ();
      smem_stages; reg_stages; inner_fuse; a_op; epilogue }

let arb_case = QCheck.make ~print:case_to_string gen_case

let spec_of c =
  if c.batch > 1 then
    Op_spec.batched_matmul ~name:(case_to_string c) ?a_op:c.a_op
      ?epilogue:c.epilogue ~batch:c.batch ~m:c.m ~n:c.n ~k:c.k ()
  else
    Op_spec.matmul ~name:(case_to_string c) ?a_op:c.a_op ?epilogue:c.epilogue
      ~m:c.m ~n:c.n ~k:c.k ()

let compile_case c =
  let spec = spec_of c in
  match Tiling.validate c.tiling spec with
  | Error _ -> None
  | Ok () ->
    let sched =
      Schedule.default_gemm ~smem_stages:c.smem_stages ~reg_stages:c.reg_stages
        ~inner_fuse:c.inner_fuse spec c.tiling
    in
    let lowered = Lower.run sched in
    (match
       Alcop_pipeline.Pass.run ~hw ~hints:lowered.Lower.hints
         lowered.Lower.kernel
     with
     | Ok r ->
       Some (spec, lowered, r.Alcop_pipeline.Pass.kernel,
             Alcop_pipeline.Pass.groups r)
     | Error _ -> None)

let inputs_of spec (lowered : Lower.lowered) =
  let a, b = Reference.inputs_for spec in
  List.map
    (fun (bf : Buffer.t) ->
      let name = bf.Buffer.name in
      match
        List.find_opt (fun (n, _, _) -> String.equal n name)
          lowered.Lower.materialize
      with
      | Some (_, src, op) ->
        let base = if String.equal src "A" then a else b in
        (name, Tensor.map (Elemwise_ops.find_exn op) base)
      | None -> (name, if String.equal name "A" then a else b))
    lowered.Lower.kernel.Kernel.inputs

let prop_pipelined_equals_reference =
  QCheck.Test.make ~name:"pipelined kernel == host reference (random configs)"
    ~count:30 arb_case (fun c ->
      match compile_case c with
      | None -> QCheck.assume_fail ()
      | Some (spec, lowered, kernel, groups) ->
        let expected =
          let a, b = Reference.inputs_for spec in
          Reference.gemm spec ~a ~b
        in
        let outputs =
          Interp.run ~groups kernel ~inputs:(inputs_of spec lowered)
        in
        (* split-K kernels produce a partial workspace; chain the reduce. *)
        let outputs =
          match lowered.Lower.reduce with
          | None -> outputs
          | Some reduce -> Interp.run reduce ~inputs:outputs
        in
        let actual = snd (List.hd outputs) in
        (* accumulation order differs under split-K: allow float64 noise *)
        Tensor.max_abs_diff actual expected <= 1e-9)

let prop_transformed_validates =
  QCheck.Test.make ~name:"pipelined kernel passes validation (random configs)"
    ~count:60 arb_case (fun c ->
      match compile_case c with
      | None -> QCheck.assume_fail ()
      | Some (_, _, kernel, _) -> Validate.check kernel = Ok ())

let prop_trace_flops_invariant =
  QCheck.Test.make
    ~name:"trace FLOPs and store bytes are pipelining-invariant" ~count:30
    arb_case (fun c ->
      let base = { c with smem_stages = 1; reg_stages = 1 } in
      match compile_case base, compile_case c with
      | Some (_, _, k0, g0), Some (_, _, k1, g1) ->
        let s0 = Trace.stats_of (Trace.extract ~groups:g0 k0) in
        let s1 = Trace.stats_of (Trace.extract ~groups:g1 k1) in
        s0.Trace.flops = s1.Trace.flops
        && s0.Trace.store_bytes = s1.Trace.store_bytes
        (* pipelining may add wrapped prefetches, never remove loads *)
        && s1.Trace.global_load_bytes >= s0.Trace.global_load_bytes
      | _ -> QCheck.assume_fail ())

let prop_sync_counts_balanced =
  QCheck.Test.make ~name:"acquire/commit and wait/release balance" ~count:40
    arb_case (fun c ->
      match compile_case c with
      | None -> QCheck.assume_fail ()
      | Some (_, _, kernel, groups) ->
        let body = kernel.Kernel.body in
        let count pred = Stmt.count pred body in
        let acquires =
          count (function Stmt.Sync (Stmt.Producer_acquire _) -> true | _ -> false)
        in
        let commits =
          count (function Stmt.Sync (Stmt.Producer_commit _) -> true | _ -> false)
        in
        let has_sync_group =
          List.exists
            (fun (g : Alcop_pipeline.Analysis.group) ->
              g.Alcop_pipeline.Analysis.synchronized)
            groups
        in
        acquires = commits && (acquires > 0) = has_sync_group)

let suite =
  [ ( "property",
      [ QCheck_alcotest.to_alcotest prop_transformed_validates;
        QCheck_alcotest.to_alcotest prop_pipelined_equals_reference;
        QCheck_alcotest.to_alcotest prop_trace_flops_invariant;
        QCheck_alcotest.to_alcotest prop_sync_counts_balanced ] ) ]
