(* Tests for lowering schedules to the input IR. *)

open Alcop_ir
open Alcop_sched

let spec = Op_spec.matmul ~name:"lower_test" ~m:128 ~n:64 ~k:256 ()

let bmm_spec =
  Op_spec.batched_matmul ~name:"lower_bmm" ~batch:4 ~m:64 ~n:64 ~k:128 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:32 ~tb_k:32 ~warp_m:32 ~warp_n:16 ~warp_k:16 ()

let lower ?(smem_stages = 3) ?(reg_stages = 2) spec =
  Lower.run (Schedule.default_gemm ~smem_stages ~reg_stages spec tiling)

let test_validates () =
  let l = lower spec in
  match Validate.check l.Lower.kernel with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (Validate.errors_to_string errs)

let test_structure () =
  let l = lower spec in
  let k = l.Lower.kernel in
  Alcotest.(check int) "inputs" 2 (List.length k.Kernel.inputs);
  Alcotest.(check int) "outputs" 1 (List.length k.Kernel.outputs);
  (* 2 smem copies + 2 reg copies + 1 epilogue = 5 *)
  Alcotest.(check int) "copies" 5 (Stmt.count_copies k.Kernel.body);
  Alcotest.(check int) "barriers" 2 (Stmt.count_syncs k.Kernel.body);
  Alcotest.(check int) "mmas" 1 (Stmt.count_mmas k.Kernel.body);
  Alcotest.(check int) "allocs" 5 (List.length (Stmt.allocs k.Kernel.body));
  (* All copies in the input IR are synchronous. *)
  Alcotest.(check int) "no async yet" 0
    (Stmt.count_copies ~kind:Stmt.Async_copy k.Kernel.body)

let test_loop_nest () =
  let l = lower spec in
  let vars = Stmt.loop_vars l.Lower.kernel.Kernel.body in
  Alcotest.(check bool) "has ko" true (List.mem "ko" vars);
  Alcotest.(check bool) "has ki" true (List.mem "ki" vars);
  Alcotest.(check bool) "no batch loop" true (not (List.mem "bz" vars))

let test_buffer_shapes () =
  let l = lower spec in
  let body = l.Lower.kernel.Kernel.body in
  let shape name =
    match Stmt.find_alloc body name with
    | Some b -> b.Buffer.shape
    | None -> Alcotest.failf "missing alloc %s" name
  in
  Alcotest.(check (list int)) "A_sh" [ 64; 32 ] (shape "A_sh");
  Alcotest.(check (list int)) "B_sh" [ 32; 32 ] (shape "B_sh");
  (* warp grid is 2x2; fragments carry warp dims *)
  Alcotest.(check (list int)) "A_reg" [ 2; 2; 32; 16 ] (shape "A_reg");
  Alcotest.(check (list int)) "B_reg" [ 2; 2; 16; 16 ] (shape "B_reg");
  Alcotest.(check (list int)) "C_reg" [ 2; 2; 32; 16 ] (shape "C_reg")

let test_hints_forwarded () =
  let l = lower spec in
  Alcotest.(check int) "hints" 4 (List.length l.Lower.hints);
  Alcotest.(check bool) "A_sh hinted" true
    (Alcop_pipeline.Hints.mem l.Lower.hints "A_sh")

let test_batched_adds_block_z () =
  let l = lower bmm_spec in
  let vars = Stmt.loop_vars l.Lower.kernel.Kernel.body in
  Alcotest.(check bool) "bz present" true (List.mem "bz" vars);
  match Validate.check l.Lower.kernel with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (Validate.errors_to_string errs)

let test_untiled_rejected () =
  let sched = Schedule.create spec in
  match Lower.run sched with
  | exception Lower.Lowering_error _ -> ()
  | _ -> Alcotest.fail "lowering an untiled schedule must fail"

let test_materialize_when_not_inlined () =
  let spec_elem =
    Op_spec.matmul ~name:"lower_elem" ~m:128 ~n:64 ~k:256 ~a_op:"relu" ()
  in
  let sched =
    Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 ~inline_elemwise:false
      spec_elem tiling
  in
  let l = Lower.run sched in
  Alcotest.(check int) "one materialization" 1 (List.length l.Lower.materialize);
  let name, src, op = List.hd l.Lower.materialize in
  Alcotest.(check string) "tensor" "A_f" name;
  Alcotest.(check string) "source" "A" src;
  Alcotest.(check string) "op" "relu" op;
  (* the kernel consumes the materialized tensor *)
  Alcotest.(check bool) "kernel input" true
    (Kernel.find_param l.Lower.kernel "A_f" <> None)

let test_inlined_no_materialize () =
  let spec_elem =
    Op_spec.matmul ~name:"lower_elem2" ~m:128 ~n:64 ~k:256 ~a_op:"relu" ()
  in
  let sched =
    Schedule.default_gemm ~smem_stages:3 ~reg_stages:1 spec_elem tiling
  in
  let l = Lower.run sched in
  Alcotest.(check int) "no materialization" 0 (List.length l.Lower.materialize);
  (* the op rides on the register-level copy *)
  let fused_count =
    Stmt.count
      (function Stmt.Copy { fused = Some "relu"; _ } -> true | _ -> false)
      l.Lower.kernel.Kernel.body
  in
  Alcotest.(check int) "fused copy present" 1 fused_count

let test_epilogue_fused () =
  let spec_ep =
    Op_spec.matmul ~name:"lower_ep" ~m:128 ~n:64 ~k:256 ~epilogue:"gelu" ()
  in
  let sched = Schedule.default_gemm spec_ep tiling in
  let l = Lower.run sched in
  let has_fused_store =
    Stmt.count
      (function
        | Stmt.Copy { fused = Some "gelu"; dst; _ } ->
          String.equal dst.Stmt.buffer "C"
        | _ -> false)
      l.Lower.kernel.Kernel.body
  in
  Alcotest.(check int) "epilogue carries op" 1 has_fused_store

let suite =
  [ ( "lower",
      [ Alcotest.test_case "validates" `Quick test_validates;
        Alcotest.test_case "structure" `Quick test_structure;
        Alcotest.test_case "loop nest" `Quick test_loop_nest;
        Alcotest.test_case "buffer shapes" `Quick test_buffer_shapes;
        Alcotest.test_case "hints forwarded" `Quick test_hints_forwarded;
        Alcotest.test_case "batched adds blockIdx.z" `Quick
          test_batched_adds_block_z;
        Alcotest.test_case "untiled rejected" `Quick test_untiled_rejected;
        Alcotest.test_case "materialize when not inlined" `Quick
          test_materialize_when_not_inlined;
        Alcotest.test_case "inlined carries fused op" `Quick
          test_inlined_no_materialize;
        Alcotest.test_case "epilogue fused" `Quick test_epilogue_fused ] ) ]
