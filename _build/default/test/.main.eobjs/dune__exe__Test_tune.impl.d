test/test_tune.ml: Alcop_hw Alcop_perfmodel Alcop_sched Alcop_tune Alcotest Array Float Gbt Lazy List Op_spec Option Printf Random Space Tiling Tree Tuner
