test/test_lower.ml: Alcop_ir Alcop_pipeline Alcop_sched Alcotest Buffer Kernel List Lower Op_spec Schedule Stmt String Tiling Validate
