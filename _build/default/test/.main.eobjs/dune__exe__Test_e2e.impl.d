test/test_e2e.ml: Alcop Alcop_hw Alcop_sched Alcop_workloads Alcotest E2e Experiments List Op_spec Option Printf
