test/test_des.ml: Alcop_gpusim Alcop_hw Alcotest Array Float List Printf Timing Trace
