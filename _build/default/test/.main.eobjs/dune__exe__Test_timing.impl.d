test/test_timing.ml: Alcop Alcop_gpusim Alcop_hw Alcop_perfmodel Alcop_sched Alcotest Locality Occupancy Op_spec Printf Tiling
