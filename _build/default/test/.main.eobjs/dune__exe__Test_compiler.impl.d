test/test_compiler.ml: Alcop Alcop_hw Alcop_perfmodel Alcop_sched Alcop_workloads Alcotest Array Compiler Library_oracle List Lower Op_spec Option Printf Tiling Variants Xla_like
