test/test_interp.ml: Alcop_gpusim Alcop_hw Alcop_ir Alcop_pipeline Alcop_sched Alcotest Array Buffer Dtype Expr Interp Kernel List Lower Op_spec Reference Schedule Stmt String Tensor Tiling
