test/test_stmt.ml: Alcop_ir Alcotest Buffer Dtype Expr Kernel List Option Stmt String
