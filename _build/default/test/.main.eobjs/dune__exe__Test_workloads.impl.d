test/test_workloads.ml: Alcop_gpusim Alcop_hw Alcop_ir Alcop_pipeline Alcop_sched Alcop_workloads Alcotest Buffer List Lower Op_spec Option Reference Schedule Tensor Tiling
