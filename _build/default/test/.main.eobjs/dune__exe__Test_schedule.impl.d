test/test_schedule.ml: Alcop_ir Alcop_pipeline Alcop_sched Alcotest Buffer Dataflow List Op_spec Schedule String Tiling
