test/test_splitk.ml: Alcop Alcop_hw Alcop_ir Alcop_perfmodel Alcop_sched Alcop_workloads Alcotest Array Buffer Compiler Kernel List Lower Op_spec Printf Schedule Stmt String Tiling Variants
