test/test_validate.ml: Alcop_ir Alcotest Buffer Dtype Expr Kernel List Stmt String Validate
