test/test_pipeline.ml: Alcop_hw Alcop_ir Alcop_pipeline Alcop_sched Alcotest Buffer Dtype Expr Kernel List Lower Op_spec Schedule Stmt String Tiling Validate
