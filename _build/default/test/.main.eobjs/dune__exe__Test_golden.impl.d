test/test_golden.ml: Alcop Alcop_hw Alcop_ir Alcop_perfmodel Alcop_sched Alcop_tune Alcotest Array Op_spec String Tiling
