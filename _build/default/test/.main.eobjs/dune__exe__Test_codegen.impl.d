test/test_codegen.ml: Alcop Alcop_cuda Alcop_hw Alcop_perfmodel Alcop_sched Alcotest Compiler List Lower Op_spec Option String Tiling
