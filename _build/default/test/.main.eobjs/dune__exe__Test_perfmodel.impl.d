test/test_perfmodel.ml: Alcop Alcop_gpusim Alcop_hw Alcop_perfmodel Alcop_sched Alcop_tune Alcotest Array Bottleneck Features Float List Model Op_spec Option Params Printf Tiling
