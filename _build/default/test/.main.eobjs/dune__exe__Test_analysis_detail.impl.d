test/test_analysis_detail.ml: Alcop_gpusim Alcop_hw Alcop_ir Alcop_pipeline Alcop_sched Alcotest Buffer Dtype Expr Kernel List Lower Op_spec Schedule Stmt String Tiling
