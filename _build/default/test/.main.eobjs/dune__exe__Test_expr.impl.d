test/test_expr.ml: Alcop_ir Alcotest Expr List QCheck QCheck_alcotest String
