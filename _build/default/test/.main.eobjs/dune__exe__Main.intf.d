test/main.mli:
