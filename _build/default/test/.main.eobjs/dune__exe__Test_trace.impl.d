test/test_trace.ml: Alcop_gpusim Alcop_hw Alcop_pipeline Alcop_sched Alcotest Array List Lower Op_spec Schedule String Tiling Trace
