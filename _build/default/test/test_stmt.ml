(* Tests for statements, buffers, dtypes and kernels. *)

open Alcop_ir

let buf ?(scope = Buffer.Shared) ?(shape = [ 4; 8 ]) name =
  Buffer.make ~name ~scope ~dtype:Dtype.F16 ~shape

let region_of (b : Buffer.t) = Stmt.full_region b

let test_dtype_sizes () =
  Alcotest.(check int) "f16" 2 (Dtype.size_bytes Dtype.F16);
  Alcotest.(check int) "f32" 4 (Dtype.size_bytes Dtype.F32);
  Alcotest.(check int) "i8" 1 (Dtype.size_bytes Dtype.I8);
  Alcotest.(check (option string))
    "roundtrip" (Some "f16")
    (Option.map Dtype.to_string (Dtype.of_string "f16"))

let test_dtype_quantize () =
  let q = Dtype.quantize Dtype.F16 in
  Alcotest.(check (float 0.0)) "exact small" 0.5 (q 0.5);
  Alcotest.(check (float 0.0)) "zero" 0.0 (q 0.0);
  (* 1 + 2^-12 is not representable in f16; it rounds to 1. *)
  Alcotest.(check (float 0.0)) "rounds" 1.0 (q (1.0 +. (2.0 ** -12.0)));
  Alcotest.(check bool) "idempotent" true (q (q 1.2345) = q 1.2345)

let test_buffer_basics () =
  let b = buf "A_sh" in
  Alcotest.(check int) "elements" 32 (Buffer.num_elements b);
  Alcotest.(check int) "bytes" 64 (Buffer.size_bytes b);
  Alcotest.(check int) "rank" 2 (Buffer.rank b)

let test_buffer_stage_dim () =
  let b = buf "A_sh" in
  let b3 = Buffer.with_stage_dim 3 b in
  Alcotest.(check (list int)) "shape" [ 3; 4; 8 ] b3.Buffer.shape;
  Alcotest.check_raises "stage >= 2"
    (Invalid_argument "Buffer.with_stage_dim: need at least 2 stages")
    (fun () -> ignore (Buffer.with_stage_dim 1 b))

let test_buffer_validation () =
  Alcotest.check_raises "empty shape"
    (Invalid_argument "Buffer.make: empty shape") (fun () ->
      ignore (Buffer.make ~name:"x" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[]));
  Alcotest.check_raises "bad dim"
    (Invalid_argument "Buffer.make: non-positive dimension") (fun () ->
      ignore
        (Buffer.make ~name:"x" ~scope:Buffer.Global ~dtype:Dtype.F16
           ~shape:[ 4; 0 ]))

let test_inner_scope () =
  Alcotest.(check bool) "global->shared" true
    (Buffer.inner_scope Buffer.Global = Some Buffer.Shared);
  Alcotest.(check bool) "shared->register" true
    (Buffer.inner_scope Buffer.Shared = Some Buffer.Register);
  Alcotest.(check bool) "register->none" true
    (Buffer.inner_scope Buffer.Register = None)

let test_seq_flattening () =
  let c =
    Stmt.copy ~dst:(region_of (buf "a")) ~src:(region_of (buf "b")) ()
  in
  let nested = Stmt.seq [ Stmt.seq [ c; c ]; c; Stmt.seq [ Stmt.seq [ c ] ] ] in
  match nested with
  | Stmt.Seq children -> Alcotest.(check int) "flattened" 4 (List.length children)
  | _ -> Alcotest.fail "expected Seq"

let test_seq_singleton () =
  let c =
    Stmt.copy ~dst:(region_of (buf "a")) ~src:(region_of (buf "b")) ()
  in
  match Stmt.seq [ c ] with
  | Stmt.Copy _ -> ()
  | _ -> Alcotest.fail "singleton seq should collapse"

let test_region_utilities () =
  let r =
    Stmt.region "x"
      [ Stmt.point_slice (Expr.var "s"); Stmt.slice Expr.zero 4;
        Stmt.slice Expr.zero 8 ]
  in
  Alcotest.(check int) "elems" 32 (Stmt.region_elems r);
  Alcotest.(check (list int)) "squeeze" [ 4; 8 ] (Stmt.squeeze_lens r);
  let plain = Stmt.region "y" [ Stmt.slice Expr.zero 4; Stmt.slice Expr.zero 8 ] in
  Alcotest.(check bool) "compatible with stage dim" true
    (Stmt.copy_shapes_compatible ~dst:r ~src:plain);
  let wrong = Stmt.region "y" [ Stmt.slice Expr.zero 8; Stmt.slice Expr.zero 4 ] in
  Alcotest.(check bool) "shape order matters" false
    (Stmt.copy_shapes_compatible ~dst:r ~src:wrong)

let sample_program () =
  let a = buf ~scope:Buffer.Shared "a" in
  let b = buf ~scope:Buffer.Register "b" in
  Stmt.alloc a
    (Stmt.alloc b
       (Stmt.for_ "i" (Expr.const 4)
          (Stmt.seq
             [ Stmt.copy ~dst:(region_of b) ~src:(region_of a) ();
               Stmt.Sync Stmt.Barrier;
               Stmt.for_ "j" (Expr.const 2)
                 (Stmt.copy ~dst:(region_of b) ~src:(region_of a) ()) ])))

let test_traversals () =
  let p = sample_program () in
  Alcotest.(check int) "copies" 2 (Stmt.count_copies p);
  Alcotest.(check int) "syncs" 1 (Stmt.count_syncs p);
  Alcotest.(check int) "mmas" 0 (Stmt.count_mmas p);
  Alcotest.(check (list string)) "loop vars" [ "i"; "j" ] (Stmt.loop_vars p);
  Alcotest.(check int) "allocs" 2 (List.length (Stmt.allocs p));
  Alcotest.(check bool) "find alloc" true (Stmt.find_alloc p "b" <> None);
  Alcotest.(check bool) "find missing" true (Stmt.find_alloc p "zz" = None)

let test_subst_var () =
  let r = Stmt.region "x" [ Stmt.point_slice (Expr.var "i") ] in
  let p =
    Stmt.for_ "j" (Expr.var "i")
      (Stmt.copy ~dst:r ~src:(Stmt.region "y" [ Stmt.point_slice (Expr.var "i") ]) ())
  in
  let p' = Stmt.subst_var "i" (Expr.const 5) p in
  match p' with
  | Stmt.For { extent; body = Stmt.Copy { dst; src; _ }; _ } ->
    Alcotest.(check (option int)) "extent" (Some 5) (Expr.eval_const extent);
    let off r = Expr.eval_const (List.hd r.Stmt.slices).Stmt.offset in
    Alcotest.(check (option int)) "dst" (Some 5) (off dst);
    Alcotest.(check (option int)) "src" (Some 5) (off src)
  | _ -> Alcotest.fail "unexpected shape"

let test_map_rewrites_bottom_up () =
  let p = sample_program () in
  (* Replace every barrier with a producer_acquire. *)
  let p' =
    Stmt.map
      (function
        | Stmt.Sync Stmt.Barrier -> Stmt.Sync (Stmt.Producer_acquire "g")
        | s -> s)
      p
  in
  Alcotest.(check int) "barriers gone" 0
    (Stmt.count (function Stmt.Sync Stmt.Barrier -> true | _ -> false) p');
  Alcotest.(check int) "acquires added" 1
    (Stmt.count
       (function Stmt.Sync (Stmt.Producer_acquire _) -> true | _ -> false)
       p')

let test_kernel_params () =
  let a = buf ~scope:Buffer.Global ~shape:[ 8; 8 ] "A" in
  let c = buf ~scope:Buffer.Global ~shape:[ 8; 8 ] "C" in
  let k =
    Kernel.make ~name:"k" ~inputs:[ a ] ~outputs:[ c ]
      ~body:(Stmt.copy ~dst:(region_of c) ~src:(region_of a) ())
  in
  Alcotest.(check int) "params" 2 (List.length (Kernel.params k));
  Alcotest.(check bool) "find" true (Kernel.find_param k "A" <> None);
  Alcotest.check_raises "non-global param rejected"
    (Invalid_argument "Kernel.make: parameter s is not in global scope")
    (fun () ->
      ignore
        (Kernel.make ~name:"k" ~inputs:[ buf ~scope:Buffer.Shared "s" ]
           ~outputs:[ c ] ~body:(Stmt.seq [])))

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.equal (String.sub haystack i m) needle || go (i + 1)) in
  go 0

let test_printing_shapes () =
  let p = sample_program () in
  let s = Stmt.to_string p in
  Alcotest.(check bool) "mentions loop" true (contains s "for i in 0 .. 4");
  Alcotest.(check bool) "mentions barrier" true (contains s "__syncthreads()")

let suite =
  [ ( "stmt",
      [ Alcotest.test_case "dtype sizes" `Quick test_dtype_sizes;
        Alcotest.test_case "dtype quantize" `Quick test_dtype_quantize;
        Alcotest.test_case "buffer basics" `Quick test_buffer_basics;
        Alcotest.test_case "buffer stage dim" `Quick test_buffer_stage_dim;
        Alcotest.test_case "buffer validation" `Quick test_buffer_validation;
        Alcotest.test_case "inner scope" `Quick test_inner_scope;
        Alcotest.test_case "seq flattening" `Quick test_seq_flattening;
        Alcotest.test_case "seq singleton" `Quick test_seq_singleton;
        Alcotest.test_case "region utilities" `Quick test_region_utilities;
        Alcotest.test_case "traversals" `Quick test_traversals;
        Alcotest.test_case "subst var" `Quick test_subst_var;
        Alcotest.test_case "map rewrite" `Quick test_map_rewrites_bottom_up;
        Alcotest.test_case "kernel params" `Quick test_kernel_params;
        Alcotest.test_case "printing" `Quick test_printing_shapes ] ) ]
