(* Tests for structural kernel validation. *)

open Alcop_ir

let gbuf name shape = Buffer.make ~name ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape
let sbuf name shape = Buffer.make ~name ~scope:Buffer.Shared ~dtype:Dtype.F16 ~shape
let rbuf name shape = Buffer.make ~name ~scope:Buffer.Register ~dtype:Dtype.F16 ~shape

let kernel body =
  Kernel.make ~name:"t" ~inputs:[ gbuf "A" [ 16; 16 ] ]
    ~outputs:[ gbuf "C" [ 16; 16 ] ] ~body

let region name lens = Stmt.region name (List.map (fun l -> Stmt.slice Expr.zero l) lens)

let expect_error body fragment =
  match Validate.check (kernel body) with
  | Ok () -> Alcotest.failf "expected error mentioning %S" fragment
  | Error errs ->
    let text = Validate.errors_to_string errs in
    if
      not
        (let n = String.length text and m = String.length fragment in
         let rec go i =
           i + m <= n && (String.equal (String.sub text i m) fragment || go (i + 1))
         in
         go 0)
    then Alcotest.failf "error %S does not mention %S" text fragment

let expect_ok body =
  match Validate.check (kernel body) with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (Validate.errors_to_string errs)

let test_undeclared_buffer () =
  expect_error
    (Stmt.copy ~dst:(region "nowhere" [ 16; 16 ]) ~src:(region "A" [ 16; 16 ]) ())
    "undeclared buffer nowhere"

let test_rank_mismatch () =
  expect_error
    (Stmt.copy ~dst:(region "C" [ 16 ]) ~src:(region "A" [ 16; 16 ]) ())
    "rank 1 but buffer has rank 2"

let test_oversized_slice () =
  expect_error
    (Stmt.copy ~dst:(region "C" [ 16; 32 ]) ~src:(region "A" [ 16; 32 ]) ())
    "slice length 32 > dimension 16"

let test_shape_mismatch () =
  expect_error
    (Stmt.copy ~dst:(region "C" [ 16; 16 ]) ~src:(region "A" [ 8; 16 ]) ())
    "incompatible shapes"

let test_async_to_global_rejected () =
  expect_error
    (Stmt.copy ~kind:Stmt.Async_copy ~dst:(region "C" [ 16; 16 ])
       ~src:(region "A" [ 16; 16 ]) ())
    "global scope"

let test_async_with_fused_rejected () =
  let sh = sbuf "S" [ 16; 16 ] in
  expect_error
    (Stmt.alloc sh
       (Stmt.copy ~kind:Stmt.Async_copy ~fused:"relu"
          ~dst:(region "S" [ 16; 16 ]) ~src:(region "A" [ 16; 16 ]) ()))
    "cannot carry fused op relu"

let test_async_to_shared_ok () =
  let sh = sbuf "S" [ 16; 16 ] in
  expect_ok
    (Stmt.alloc sh
       (Stmt.seq
          [ Stmt.copy ~kind:Stmt.Async_copy ~dst:(region "S" [ 16; 16 ])
              ~src:(region "A" [ 16; 16 ]) ();
            Stmt.copy ~dst:(region "C" [ 16; 16 ]) ~src:(region "S" [ 16; 16 ]) () ]))

let test_unbound_variable () =
  expect_error
    (Stmt.copy
       ~dst:(Stmt.region "C" [ Stmt.slice (Expr.var "q") 16; Stmt.slice Expr.zero 16 ])
       ~src:(region "A" [ 16; 16 ]) ())
    "unbound variable q"

let test_loop_shadowing () =
  expect_error
    (Stmt.for_ "i" (Expr.const 2)
       (Stmt.for_ "i" (Expr.const 2)
          (Stmt.copy ~dst:(region "C" [ 16; 16 ]) ~src:(region "A" [ 16; 16 ]) ())))
    "shadows an enclosing binding"

let test_duplicate_alloc () =
  let sh = sbuf "S" [ 4; 4 ] in
  expect_error
    (Stmt.alloc sh (Stmt.alloc sh (Stmt.seq [])))
    "declared twice"

let test_mma_scope_check () =
  let s = sbuf "S" [ 16; 16 ] in
  let r1 = rbuf "R1" [ 16; 16 ] in
  let r2 = rbuf "R2" [ 16; 16 ] in
  expect_error
    (Stmt.alloc s
       (Stmt.alloc r1
          (Stmt.alloc r2
             (Stmt.Mma
                { c = region "R1" [ 16; 16 ]; a = region "S" [ 16; 16 ];
                  b = region "R2" [ 16; 16 ] }))))
    "must live in register scope"

let test_mma_shape_check () =
  let c = rbuf "Rc" [ 16; 8 ] in
  let a = rbuf "Ra" [ 16; 4 ] in
  let b = rbuf "Rb" [ 8; 2 ] in
  expect_error
    (Stmt.alloc c
       (Stmt.alloc a
          (Stmt.alloc b
             (Stmt.Mma
                { c = region "Rc" [ 16; 8 ]; a = region "Ra" [ 16; 4 ];
                  b = region "Rb" [ 8; 2 ] }))))
    "shape mismatch"

let test_valid_mma () =
  let c = rbuf "Rc" [ 16; 8 ] in
  let a = rbuf "Ra" [ 16; 4 ] in
  let b = rbuf "Rb" [ 8; 4 ] in
  expect_ok
    (Stmt.alloc c
       (Stmt.alloc a
          (Stmt.alloc b
             (Stmt.Mma
                { c = region "Rc" [ 16; 8 ]; a = region "Ra" [ 16; 4 ];
                  b = region "Rb" [ 8; 4 ] }))))

let test_multiple_errors_collected () =
  let body =
    Stmt.seq
      [ Stmt.copy ~dst:(region "x" [ 4 ]) ~src:(region "y" [ 4 ]) ();
        Stmt.copy ~dst:(region "z" [ 4 ]) ~src:(region "w" [ 4 ]) () ]
  in
  match Validate.check (kernel body) with
  | Ok () -> Alcotest.fail "expected errors"
  | Error errs -> Alcotest.(check bool) ">= 4 errors" true (List.length errs >= 4)

let suite =
  [ ( "validate",
      [ Alcotest.test_case "undeclared buffer" `Quick test_undeclared_buffer;
        Alcotest.test_case "rank mismatch" `Quick test_rank_mismatch;
        Alcotest.test_case "oversized slice" `Quick test_oversized_slice;
        Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
        Alcotest.test_case "async to global" `Quick test_async_to_global_rejected;
        Alcotest.test_case "async with fused op" `Quick test_async_with_fused_rejected;
        Alcotest.test_case "async to shared" `Quick test_async_to_shared_ok;
        Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
        Alcotest.test_case "loop shadowing" `Quick test_loop_shadowing;
        Alcotest.test_case "duplicate alloc" `Quick test_duplicate_alloc;
        Alcotest.test_case "mma scope" `Quick test_mma_scope_check;
        Alcotest.test_case "mma shape" `Quick test_mma_shape_check;
        Alcotest.test_case "valid mma" `Quick test_valid_mma;
        Alcotest.test_case "multiple errors" `Quick test_multiple_errors_collected ] ) ]
