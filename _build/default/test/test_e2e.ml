(* End-to-end evaluation and experiment-driver tests, on deliberately tiny
   workloads so they stay fast. *)

open Alcop_sched
open Alcop

let hw = Alcop_hw.Hw_config.ampere_a100

let tiny_op = Op_spec.matmul ~name:"e2e_tiny" ~m:256 ~n:64 ~k:512 ()

let tiny_model overhead_fraction : Alcop_workloads.Models.t =
  { Alcop_workloads.Models.name = "tiny"; ops = [ (tiny_op, 3) ];
    overhead_fraction }

let test_e2e_report_consistency () =
  let r = E2e.evaluate ~hw (tiny_model 0.25) in
  Alcotest.(check (float 1e-9)) "tvm speedup is the ratio"
    (r.E2e.tvm_cycles /. r.E2e.alcop_cycles)
    r.E2e.speedup_over_tvm;
  Alcotest.(check (float 1e-9)) "xla speedup is the ratio"
    (r.E2e.xla_cycles /. r.E2e.alcop_cycles)
    r.E2e.speedup_over_xla;
  Alcotest.(check bool) "alcop not slower than tvm" true
    (r.E2e.speedup_over_tvm >= 1.0)

let test_overhead_dilutes_speedup () =
  let lean = E2e.evaluate ~hw (tiny_model 0.05) in
  let heavy = E2e.evaluate ~hw (tiny_model 0.75) in
  Alcotest.(check bool)
    (Printf.sprintf "dilution: %.3f (75%% overhead) < %.3f (5%%)"
       heavy.E2e.speedup_over_tvm lean.E2e.speedup_over_tvm)
    true
    (heavy.E2e.speedup_over_tvm < lean.E2e.speedup_over_tvm);
  (* with overhead -> 1, speedup -> 1 *)
  Alcotest.(check bool) "heavy overhead near 1" true
    (heavy.E2e.speedup_over_tvm < 1.1)

let test_op_counts_scale_linearly () =
  let once = E2e.evaluate ~hw (tiny_model 0.0) in
  let model10 : Alcop_workloads.Models.t =
    { Alcop_workloads.Models.name = "tiny10"; ops = [ (tiny_op, 30) ];
      overhead_fraction = 0.0 }
  in
  let ten = E2e.evaluate ~hw model10 in
  Alcotest.(check (float 1e-6)) "10x ops, same speedup"
    once.E2e.speedup_over_tvm ten.E2e.speedup_over_tvm;
  Alcotest.(check (float 1.0)) "10x cycles"
    (10.0 *. once.E2e.alcop_cycles)
    ten.E2e.alcop_cycles

(* --- experiment drivers on tiny inputs --- *)

let smoke = [ tiny_op ]

let test_fig10_driver () =
  let r = Experiments.fig10 ~hw ~suite:smoke () in
  Alcotest.(check int) "one row" 1 (List.length r.Experiments.rows);
  let row = List.hd r.Experiments.rows in
  Alcotest.(check (float 1e-9)) "tvm normalized to 1" 1.0
    (List.assoc "TVM" row.Experiments.speedups);
  List.iter
    (fun (_, s) -> Alcotest.(check bool) "speedup >= 1" true (s >= 0.999))
    row.Experiments.speedups

let test_fig12_driver () =
  let rows = Experiments.fig12 ~hw ~suite:smoke ~ks:[ 5; 25 ] () in
  let row = List.hd rows in
  let v k l = Option.get (Option.join (List.assoc_opt k l)) in
  Alcotest.(check bool) "normalized <= 1" true
    (v 5 row.Experiments.ours_top <= 1.0 +. 1e-9);
  Alcotest.(check bool) "monotone in k" true
    (v 25 row.Experiments.ours_top >= v 5 row.Experiments.ours_top -. 1e-9)

let test_fig13_driver () =
  let rows = Experiments.fig13 ~hw ~suite:smoke ~budgets:[ 5 ] ~seed:3 () in
  let row = List.hd rows in
  Alcotest.(check int) "four methods" 4 (List.length row.Experiments.per_method);
  List.iter
    (fun (_, budgets) ->
      match List.assoc_opt 5 budgets with
      | Some (Some v) ->
        Alcotest.(check bool) "in (0, 1]" true (v > 0.0 && v <= 1.0 +. 1e-9)
      | _ -> Alcotest.fail "missing budget entry")
    row.Experiments.per_method

let test_scaling_driver () =
  let rows = Experiments.scaling ~hw ~subset:smoke ~scales:[ 1.0; 4.0 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Experiments.scaling_row) ->
      Alcotest.(check bool) "speedup >= 1" true
        (r.Experiments.mean_speedup >= 0.999))
    rows;
  let s1 = (List.nth rows 0).Experiments.mean_speedup in
  let s4 = (List.nth rows 1).Experiments.mean_speedup in
  Alcotest.(check bool)
    (Printf.sprintf "more compute, more pipelining benefit (%.3f -> %.3f)" s1 s4)
    true (s4 >= s1 -. 0.02)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0
    (Experiments.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 3.0 (Experiments.geomean [ 3.0 ])

let suite =
  [ ( "e2e",
      [ Alcotest.test_case "report consistency" `Slow test_e2e_report_consistency;
        Alcotest.test_case "overhead dilutes speedup" `Slow
          test_overhead_dilutes_speedup;
        Alcotest.test_case "op counts scale linearly" `Slow
          test_op_counts_scale_linearly;
        Alcotest.test_case "fig10 driver" `Slow test_fig10_driver;
        Alcotest.test_case "fig12 driver" `Slow test_fig12_driver;
        Alcotest.test_case "fig13 driver" `Slow test_fig13_driver;
        Alcotest.test_case "scaling driver" `Slow test_scaling_driver;
        Alcotest.test_case "geomean" `Quick test_geomean ] ) ]
