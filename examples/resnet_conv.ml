(* Convolution through implicit GEMM, pipelined.

   The paper applies pipelining to Conv2D by scheduling it as an implicit
   GEMM (im2col). This example builds a small ResNet-style 3x3 convolution,
   verifies the pipelined kernel end-to-end against a direct convolution
   (padding and all), and then times a ResNet-50 stage convolution under the
   TVM baseline and ALCOP. *)

open Alcop
open Alcop_sched
open Alcop_gpusim

let hw = Alcop_hw.Hw_config.default

let () =
  (* --- correctness: small conv, direct reference --- *)
  let shape =
    { Op_spec.cn = 2; ci = 16; ch = 8; cw = 8; co = 32; ckh = 3; ckw = 3;
      stride = 1; pad = 1 }
  in
  let spec = Op_spec.conv2d ~name:"example_conv" shape in
  Format.printf "small conv as implicit GEMM: %a@." Op_spec.pp spec;
  let tiling =
    Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()
  in
  let compiled =
    match Session.compile (Session.for_hw hw) params spec with
    | Ok c -> c
    | Error e -> failwith (Compiler.error_to_string e)
  in
  let image = Tensor.random ~seed:11 [ shape.Op_spec.cn; shape.Op_spec.ci;
                                       shape.Op_spec.ch; shape.Op_spec.cw ] in
  let weights = Tensor.random ~seed:12 [ shape.Op_spec.co; shape.Op_spec.ci;
                                         shape.Op_spec.ckh; shape.Op_spec.ckw ] in
  let a = Reference.im2col shape image in
  let b = Reference.flatten_weights shape weights in
  let outputs =
    Interp.run ~groups:compiled.Compiler.groups compiled.Compiler.kernel
      ~inputs:[ ("A", a); ("B", b) ]
  in
  let got = snd (List.hd outputs) in
  let expected = Reference.conv2d_direct shape ~image ~weights in
  Format.printf "pipelined conv vs direct conv: max |err| = %.3e (%s)@."
    (Tensor.max_abs_diff got expected)
    (if Tensor.allclose ~atol:1e-9 got expected then "OK" else "MISMATCH");

  (* --- performance: a ResNet-50 stage conv, TVM vs ALCOP --- *)
  let big =
    Op_spec.conv2d ~name:"rn50_stage3"
      { Op_spec.cn = 16; ci = 128; ch = 28; cw = 28; co = 128; ckh = 3;
        ckw = 3; stride = 1; pad = 1 }
  in
  Format.printf "@.timing %a@." Op_spec.pp big;
  let report v =
    match Variants.best_latency ~hw v big with
    | Some c ->
      Format.printf "  %-16s %10.0f cycles (%.1f us)@." v.Variants.name c
        (Alcop_hw.Hw_config.cycles_to_us hw c)
    | None -> Format.printf "  %-16s no viable schedule@." v.Variants.name
  in
  report Variants.tvm;
  report Variants.alcop_no_ml;
  report Variants.alcop
