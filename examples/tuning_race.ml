(* The four schedule-tuning methods of paper Table II racing on one
   operator: grid search, XGB (TVM's default), analytical-model ranking,
   and ALCOP's analytical-pretrained XGB. Prints the best-so-far latency
   after every trial so the search dynamics are visible. *)

open Alcop

let hw = Alcop_hw.Hw_config.default

let () =
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let budget = 24 in
  let space = Variants.space Variants.alcop spec in
  let evaluate = Variants.evaluator ~hw Variants.alcop spec in
  Format.printf "operator: %a@." Alcop_sched.Op_spec.pp spec;
  Format.printf "schedule space: %d points; budget: %d trials@."
    (Array.length space) budget;
  let exhaustive = Alcop_tune.Tuner.exhaustive ~space ~evaluate () in
  let best = Option.get (Alcop_tune.Tuner.best exhaustive) in
  Format.printf "exhaustive best: %.0f cycles@.@." best;
  let methods =
    [ Alcop_tune.Tuner.Grid; Alcop_tune.Tuner.Xgb;
      Alcop_tune.Tuner.Analytical_only; Alcop_tune.Tuner.Analytical_xgb ]
  in
  Format.printf "%5s" "trial";
  List.iter
    (fun m -> Format.printf "%18s" (Alcop_tune.Tuner.method_to_string m))
    methods;
  Format.printf "@.";
  let results =
    List.map
      (fun m ->
        Alcop_tune.Tuner.run ~hw ~spec ~space ~evaluate ~budget ~seed:7 m)
      methods
  in
  for k = 1 to budget do
    Format.printf "%5d" k;
    List.iter
      (fun r ->
        match Alcop_tune.Tuner.best_within r k with
        | Some c -> Format.printf "%17.0f%%" (100.0 *. best /. c)
        | None -> Format.printf "%18s" "-")
      results;
    Format.printf "@."
  done;
  Format.printf "@.(values: best-in-k-trials as %% of the exhaustive best)@."
