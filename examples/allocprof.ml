(* Per-pass minor-word allocation of one cold compile, each pass measured
   in isolation after two warmup runs. The numbers printed here are what
   the per-pass ceilings in test/test_packed.ml were calibrated against
   (set at roughly 2x the measured cost); rerun this after changing a
   front-half pass to recalibrate. See doc/hostprof.md, "Per-pass
   allocation budgets". *)

let hw = Alcop_hw.Hw_config.ampere_a100

let () =
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()
  in
  let measure name f =
    ignore (f ());
    ignore (f ());
    let w0 = Gc.minor_words () in
    let r = f () in
    let dw = Gc.minor_words () -. w0 in
    Printf.printf "%-24s %10.0f minor words\n%!" name dw;
    r
  in
  let sched =
    measure "schedule" (fun () ->
        Alcop_sched.Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 spec
          tiling)
  in
  let lowered = measure "lower" (fun () -> Alcop_sched.Lower.run sched) in
  let result =
    measure "pipeline" (fun () ->
        match
          Alcop_pipeline.Pass.run ~hw ~hints:lowered.Alcop_sched.Lower.hints
            lowered.Alcop_sched.Lower.kernel
        with
        | Ok r -> r
        | Error _ -> failwith "pipeline failed")
  in
  let analysis =
    measure "pipeline-analysis" (fun () ->
        match
          Alcop_pipeline.Analysis.run ~hw ~hints:lowered.Alcop_sched.Lower.hints
            lowered.Alcop_sched.Lower.kernel
        with
        | Ok a -> a
        | Error _ -> failwith "analysis failed")
  in
  ignore
    (measure "pipeline-transform" (fun () ->
         Alcop_pipeline.Transform.run analysis lowered.Alcop_sched.Lower.kernel));
  ignore
    (measure "pipeline-validate" (fun () ->
         Alcop_ir.Validate.check_exn
           result.Alcop_pipeline.Pass.kernel));
  let groups = Alcop_pipeline.Pass.groups result in
  let kernel = result.Alcop_pipeline.Pass.kernel in
  let program =
    measure "trace-extract" (fun () ->
        Alcop_gpusim.Trace.extract_program ~groups kernel)
  in
  Printf.printf "program events: %d\n" (Alcop_gpusim.Trace.length program);
  let session = Alcop.Session.create ~hw ~cache:false () in
  ignore
    (measure "full-compile" (fun () -> Alcop.Session.compile session params spec));
  ignore
    (measure "fingerprint" (fun () ->
         Alcop.Fingerprint.compile_key ~hw ~extra_regs_per_thread:0 params spec));
  (* simulate alone, via the compiled request *)
  (match Alcop.Session.compile session params spec with
   | Ok c ->
     ignore
       (measure "timing-run" (fun () ->
            Alcop_gpusim.Timing.run c.Alcop.Compiler.timing_request));
     ignore
       (measure "timing-run-reuse" (fun () ->
            Alcop_gpusim.Timing.with_wave_reuse @@ fun () ->
            Alcop_gpusim.Timing.run c.Alcop.Compiler.timing_request))
   | Error _ -> ())
