(* The ordering study of paper Fig. 5: inlining an element-wise producer
   versus pipelining its consumer buffer.

   The operator is a MatMul whose A input first goes through an element-wise
   function f (here a GELU). Three compilation strategies:

   1. materialize:       compute f(A) as its own kernel, then a pipelined
                          GEMM reads the materialized tensor;
   2. inline-then-pipe:  fuse f into the shared-memory copy first — the copy
                          becomes synchronous, and pipelining it is then
                          refused by legality rule 1 (case 1 of Fig. 5);
   3. pipe-then-inline:  pipeline first, then inline — the cache read is
                          retargeted past f and f fuses into the downstream
                          synchronous register copy (case 2), so the kernel
                          is both fused and pipelined.

   The example prints each strategy's legality outcome and simulated
   latency, and functionally verifies strategy 3. *)

open Alcop
open Alcop_ir
open Alcop_sched

let hw = Alcop_hw.Hw_config.default

let spec =
  Op_spec.matmul ~name:"fusion_study" ~m:128 ~n:128 ~k:512 ~a_op:"gelu" ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let () =
  Format.printf "operator: %a with f = gelu on input A@.@." Op_spec.pp spec;

  (* Strategy 1: keep f(A) materialized. *)
  Format.printf "strategy 1: materialize f(A), then pipeline the GEMM@.";
  let s1 =
    Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 ~inline_elemwise:false
      spec tiling
  in
  let l1 = Lower.run s1 in
  Format.printf "    materialized tensors: %s@."
    (String.concat ", "
       (List.map (fun (t, _, _) -> t) l1.Lower.materialize));
  let c1 =
    match Session.compile (Session.for_hw hw)
            (Alcop_perfmodel.Params.make ~tiling
               ~smem_stages:3 ~reg_stages:2 ()) spec with
    | Ok c -> c
    | Error e -> failwith (Compiler.error_to_string e)
  in
  ignore c1;

  (* Strategy 2: inline first (case 1) — then try to pipeline. *)
  Format.printf "@.strategy 2: inline f into the smem copy, then pipeline (case 1)@.";
  let s2 = Schedule.create spec in
  let s2, a_sh = Schedule.cache_read s2 "A_f" Buffer.Shared in
  let s2, _ = Schedule.cache_read s2 a_sh Buffer.Register in
  let s2, b_sh = Schedule.cache_read s2 "B" Buffer.Shared in
  let s2, _ = Schedule.cache_read s2 b_sh Buffer.Register in
  let s2 = Schedule.tile s2 tiling in
  let s2 = Schedule.inline s2 "A_f" in
  (match Schedule.pipeline s2 a_sh ~stages:3 with
   | _ -> Format.printf "    unexpectedly accepted!@."
   | exception Schedule.Schedule_error e ->
     Format.printf "    refused: %a@." Schedule.pp_error e);

  (* Strategy 3: pipeline first, then inline (case 2). *)
  Format.printf "@.strategy 3: pipeline, then inline (case 2)@.";
  let s3 = Schedule.create spec in
  let s3, a_sh = Schedule.cache_read s3 "A_f" Buffer.Shared in
  let s3, a_reg = Schedule.cache_read s3 a_sh Buffer.Register in
  let s3, b_sh = Schedule.cache_read s3 "B" Buffer.Shared in
  let s3, _ = Schedule.cache_read s3 b_sh Buffer.Register in
  let s3 = Schedule.tile s3 tiling in
  let s3 = Schedule.pipeline s3 a_sh ~stages:3 in
  let s3 = Schedule.pipeline s3 b_sh ~stages:3 in
  let s3 = Schedule.inline s3 "A_f" in
  Format.printf "    f now rides on the synchronous copy into %s@." a_reg;
  let l3 = Lower.run s3 in
  (match
     Alcop_pipeline.Pass.run ~hw ~hints:l3.Lower.hints l3.Lower.kernel
   with
   | Error r ->
     Format.printf "    unexpected rejection: %a@."
       Alcop_pipeline.Analysis.pp_rejection r
   | Ok result ->
     Format.printf "    pipelined groups: %d; materialized tensors: %d@."
       (List.length (Alcop_pipeline.Pass.groups result))
       (List.length l3.Lower.materialize));

  (* Compare latencies of the two viable strategies using the compile
     pipeline (strategy 3 is what default_gemm produces for this spec). *)
  Format.printf "@.simulated latencies:@.";
  let time label ~inline_elemwise =
    let sched =
      Schedule.default_gemm ~smem_stages:3 ~reg_stages:1 ~inline_elemwise spec
        tiling
    in
    let lowered = Lower.run sched in
    match
      Alcop_pipeline.Pass.run ~hw ~hints:lowered.Lower.hints
        lowered.Lower.kernel
    with
    | Error _ -> ()
    | Ok result ->
      let groups = Alcop_pipeline.Pass.groups result in
      let kernel = result.Alcop_pipeline.Pass.kernel in
      let trace = Alcop_gpusim.Trace.extract ~groups kernel in
      let stats = Alcop_gpusim.Trace.stats_of trace in
      Format.printf "    %-28s trace: %d events, %d global bytes/TB%s@." label
        stats.Alcop_gpusim.Trace.n_events
        stats.Alcop_gpusim.Trace.global_load_bytes
        (if lowered.Lower.materialize = [] then ""
         else " + a separate f(A) kernel")
  in
  time "fused (case 2):" ~inline_elemwise:true;
  time "materialized:" ~inline_elemwise:false;
  let p = Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:1 () in
  (match Session.compile (Session.for_hw hw) p spec with
   | Ok c ->
     Format.printf "    end-to-end latency (fused): %.0f cycles@."
       c.Compiler.latency_cycles;
     (match Compiler.verify c with
      | Ok diff -> Format.printf "    functional check: OK (max |err| = %g)@." diff
      | Error diff -> Format.printf "    functional check: MISMATCH %g@." diff)
   | Error e -> Format.printf "    compile error: %s@." (Compiler.error_to_string e))
