(* BERT attention under pipelining.

   The paper's insight (Sec. V-A): the QK^T matmul has a short reduction
   axis (the head dimension, 64) and a big output, so pipelining cannot
   amortize its prologue and the abundant inter-tile parallelism already
   hides latency. The score-value matmul SV is the opposite: a long
   reduction over the sequence with a small output. This example compiles
   both with every pipeline depth and shows exactly that asymmetry. *)

open Alcop
open Alcop_sched

let hw = Alcop_hw.Hw_config.default

let qk = Alcop_workloads.Suites.bmm_bert_qk
let sv = Alcop_workloads.Suites.bmm_bert_sv

let sweep spec =
  Format.printf "@.%a  (reduction axis K = %d)@." Op_spec.pp spec
    spec.Op_spec.k;
  let tiling =
    (* a tiling valid for both: n = 384 or 64, so tb_n = 32 works *)
    Tiling.make ~tb_m:64 ~tb_n:32 ~tb_k:32 ~warp_m:32 ~warp_n:16 ~warp_k:16 ()
  in
  let evaluate = Session.evaluator (Session.for_hw hw) spec in
  let base =
    Option.get
      (evaluate
         (Alcop_perfmodel.Params.make ~tiling ~smem_stages:1 ~reg_stages:1 ()))
  in
  List.iter
    (fun (smem_stages, reg_stages) ->
      match
        evaluate
          (Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ())
      with
      | Some c ->
        Format.printf "  smem=%d reg=%d: %9.0f cycles  (%.2fx)@." smem_stages
          reg_stages c (base /. c)
      | None -> Format.printf "  smem=%d reg=%d: fail@." smem_stages reg_stages)
    [ (1, 1); (2, 1); (3, 1); (4, 1); (3, 2); (4, 2) ]

let () =
  Format.printf "BERT attention (batch x heads = %d, seq = %d, head dim = 64)@."
    qk.Op_spec.batch qk.Op_spec.m;
  sweep qk;
  sweep sv;
  (* Tuned head-to-head, the way an end-to-end run would compile them. *)
  Format.printf "@.tuned (exhaustive) latencies:@.";
  List.iter
    (fun spec ->
      let tvm = Option.get (Variants.best_latency ~hw Variants.tvm spec) in
      let alcop = Option.get (Variants.best_latency ~hw Variants.alcop spec) in
      Format.printf "  %-14s TVM %9.0f -> ALCOP %9.0f cycles (%.2fx)@."
        spec.Op_spec.name tvm alcop (tvm /. alcop))
    [ qk; sv ]
