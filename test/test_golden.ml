(* Golden-output test: the full pipelined IR of the paper's Fig. 7
   configuration (3-stage shared pipeline, 2-stage fused register pipeline)
   is pinned verbatim. Any unintended change to the transformation's
   emitted structure — index arithmetic, prologue shape, synchronization
   placement — fails here with a readable diff. Update deliberately. *)

open Alcop_sched

let hw = Alcop_hw.Hw_config.ampere_a100

let golden =
  "kernel fig7\n\
   inputs:  A : f16[128, 256] @global\n\
  \         B : f16[128, 256] @global\n\
   outputs: C : f16[128, 128] @global\n\
   for @blockIdx.y bi in 0 .. 2:\n\
  \  for @blockIdx.x bj in 0 .. 2:\n\
  \    alloc A_sh : f16[3, 64, 32] @shared\n\
  \    alloc B_sh : f16[3, 64, 32] @shared\n\
  \    alloc A_reg : f16[2, 2, 2, 32, 16] @register\n\
  \    alloc B_reg : f16[2, 2, 2, 32, 16] @register\n\
  \    alloc C_reg : f16[2, 2, 32, 32] @register\n\
  \    for @warpIdx.y wi in 0 .. 2:\n\
  \      for @warpIdx.x wj in 0 .. 2:\n\
  \        fill(C_reg[wi, wj, 0:32, 0:32], 0)\n\
  \    for ko_pro in 0 .. 2:\n\
  \      pipe.shared.ko.producer_acquire()\n\
  \      async_memcpy(A_sh[ko_pro % 3, 0:64, 0:32], A[bi * 64:+64, (ko_pro % 8) * 32:+32])\n\
  \      async_memcpy(B_sh[ko_pro % 3, 0:64, 0:32], B[bj * 64:+64, (ko_pro % 8) * 32:+32])\n\
  \      pipe.shared.ko.producer_commit()\n\
  \    pipe.shared.ko.consumer_wait()\n\
  \    for ki_pro in 0 .. 1:\n\
  \      for @warpIdx.y wi in 0 .. 2:\n\
  \        for @warpIdx.x wj in 0 .. 2:\n\
  \          async_memcpy(A_reg[ki_pro % 2, wi, wj, 0:32, 0:16], A_sh[(ki_pro / 2) % 3, wi * 32:+32, (ki_pro % 2) * 16:+16])\n\
  \          async_memcpy(B_reg[ki_pro % 2, wi, wj, 0:32, 0:16], B_sh[(ki_pro / 2) % 3, wj * 32:+32, (ki_pro % 2) * 16:+16])\n\
  \    for ko in 0 .. 8:\n\
  \      pipe.shared.ko.producer_acquire()\n\
  \      async_memcpy(A_sh[(ko + 2) % 3, 0:64, 0:32], A[bi * 64:+64, ((ko + 2) % 8) * 32:+32])\n\
  \      async_memcpy(B_sh[(ko + 2) % 3, 0:64, 0:32], B[bj * 64:+64, ((ko + 2) % 8) * 32:+32])\n\
  \      pipe.shared.ko.producer_commit()\n\
  \      for ki in 0 .. 2:\n\
  \        if ki == 1:\n\
  \          pipe.shared.ko.consumer_wait()\n\
  \        for @warpIdx.y wi in 0 .. 2:\n\
  \          for @warpIdx.x wj in 0 .. 2:\n\
  \            async_memcpy(A_reg[(ki + 1) % 2, wi, wj, 0:32, 0:16], A_sh[(ko + (ki + 1) / 2) % 3, wi * 32:+32, ((ki + 1) % 2) * 16:+16])\n\
  \            async_memcpy(B_reg[(ki + 1) % 2, wi, wj, 0:32, 0:16], B_sh[(ko + (ki + 1) / 2) % 3, wj * 32:+32, ((ki + 1) % 2) * 16:+16])\n\
  \            mma(C_reg[wi, wj, 0:32, 0:32] += A_reg[ki % 2, wi, wj, 0:32, 0:16] * B_reg[ki % 2, wi, wj, 0:32, 0:16])\n\
  \      pipe.shared.ko.consumer_release()\n\
  \    for @warpIdx.y wi in 0 .. 2:\n\
  \      for @warpIdx.x wj in 0 .. 2:\n\
  \        memcpy(C[bi * 64 + wi * 32:+32, bj * 64 + wj * 32:+32], C_reg[wi, wj, 0:32, 0:32])"

let test_fig7_golden () =
  let spec = Op_spec.matmul ~name:"fig7" ~m:128 ~n:128 ~k:256 () in
  let tiling =
    Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()
  in
  let p = Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 () in
  match Alcop.Compiler.compile ~hw p spec with
  | Error e -> Alcotest.fail (Alcop.Compiler.error_to_string e)
  | Ok c ->
    Alcotest.(check string) "pipelined IR matches the pinned Fig. 7 form"
      golden
      (Alcop_ir.Kernel.to_string c.Alcop.Compiler.kernel)

(* --- tuning log --- *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    i + m <= n && (String.equal (String.sub haystack i m) needle || go (i + 1))
  in
  go 0

let test_tuning_log_json () =
  let spec = Op_spec.matmul ~name:"log_test" ~m:128 ~n:64 ~k:256 () in
  let space = Alcop.Variants.space Alcop.Variants.alcop spec in
  let evaluate = Alcop.Variants.evaluator ~hw Alcop.Variants.alcop spec in
  let result =
    Alcop_tune.Tuner.run ~hw ~spec ~space ~evaluate ~budget:5 ~seed:1
      Alcop_tune.Tuner.Grid
  in
  let json =
    Alcop_tune.Tuning_log.to_json ~spec_name:"log_test"
      ~method_:Alcop_tune.Tuner.Grid ~seed:1 result
  in
  Alcotest.(check bool) "operator" true (contains json "\"operator\":\"log_test\"");
  Alcotest.(check bool) "method" true (contains json "\"method\":\"grid-search\"");
  Alcotest.(check bool) "five trials" true
    (Array.length result.Alcop_tune.Tuner.trials = 5);
  Alcotest.(check bool) "has knobs" true (contains json "\"smem_stages\":");
  (* every trial object appears *)
  Alcotest.(check int) "trial objects" 5
    (let count = ref 0 and i = ref 0 in
     let m = String.length "\"index\":" in
     while !i + m <= String.length json do
       if String.equal (String.sub json !i m) "\"index\":" then incr count;
       incr i
     done;
     !count);
  (* escaping: quotes and newlines in names stay valid *)
  let weird =
    Alcop_tune.Tuning_log.to_json ~spec_name:"a\"b\nc"
      ~method_:Alcop_tune.Tuner.Grid ~seed:1 result
  in
  Alcotest.(check bool) "escaped quote" true (contains weird "a\\\"b\\nc")

let suite =
  [ ( "golden",
      [ Alcotest.test_case "Fig. 7 pipelined IR pinned" `Quick test_fig7_golden;
        Alcotest.test_case "tuning log JSON" `Quick test_tuning_log_json ] ) ]
