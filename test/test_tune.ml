(* Tests for the tuning stack: space enumeration, regression trees,
   gradient boosting, simulated annealing and the four tuning methods. *)

open Alcop_sched
open Alcop_tune

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"tune_test" ~m:512 ~n:128 ~k:1024 ()

(* --- space --- *)

let test_space_nonempty_and_valid () =
  let space = Space.enumerate spec in
  Alcotest.(check bool) "non-empty" true (Array.length space > 100);
  Array.iter
    (fun (p : Alcop_perfmodel.Params.t) ->
      match Tiling.validate p.Alcop_perfmodel.Params.tiling spec with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    space

let test_space_restrictions () =
  let full = Space.enumerate spec in
  let no_pipe = Space.enumerate ~restriction:Space.no_pipelining spec in
  let no_ml = Space.enumerate ~restriction:Space.no_multilevel spec in
  Alcotest.(check bool) "no_pipe smaller" true
    (Array.length no_pipe < Array.length full);
  Array.iter
    (fun (p : Alcop_perfmodel.Params.t) ->
      Alcotest.(check int) "stages 1" 1 p.Alcop_perfmodel.Params.smem_stages;
      Alcotest.(check int) "reg 1" 1 p.Alcop_perfmodel.Params.reg_stages)
    no_pipe;
  Array.iter
    (fun (p : Alcop_perfmodel.Params.t) ->
      Alcotest.(check int) "reg 1" 1 p.Alcop_perfmodel.Params.reg_stages)
    no_ml

let test_space_no_duplicates () =
  let space = Space.enumerate spec in
  let keys =
    Array.to_list (Array.map Alcop_perfmodel.Params.to_string space)
  in
  Alcotest.(check int) "unique" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_neighbour_stays_in_space () =
  let space = Space.enumerate spec in
  let idx = Space.index space in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 200 do
    let i = Random.State.int rng (Array.length space) in
    let j = Space.neighbour idx rng i in
    Alcotest.(check bool) "in range" true (j >= 0 && j < Array.length space)
  done

(* --- regression trees --- *)

let test_tree_fits_step_function () =
  let xs = Array.init 64 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun x -> if x.(0) < 32.0 then 1.0 else 5.0) xs in
  let tree = Tree.fit xs ys in
  Alcotest.(check (float 0.01)) "left" 1.0 (Tree.predict tree [| 10.0 |]);
  Alcotest.(check (float 0.01)) "right" 5.0 (Tree.predict tree [| 50.0 |])

let test_tree_constant_target () =
  let xs = Array.init 16 (fun i -> [| float_of_int i |]) in
  let ys = Array.make 16 3.0 in
  let tree = Tree.fit xs ys in
  Alcotest.(check int) "single leaf" 1 (Tree.n_leaves tree);
  Alcotest.(check (float 1e-9)) "value" 3.0 (Tree.predict tree [| 8.0 |])

let test_tree_respects_depth () =
  let rng = Random.State.make [| 3 |] in
  let xs = Array.init 256 (fun _ -> [| Random.State.float rng 1.0; Random.State.float rng 1.0 |]) in
  let ys = Array.map (fun x -> x.(0) *. x.(1)) xs in
  let tree = Tree.fit ~config:{ Tree.default_config with max_depth = 3 } xs ys in
  Alcotest.(check bool) "depth <= 3" true (Tree.depth tree <= 3)

let test_tree_multifeature_split () =
  (* Target depends only on feature 1; the tree must find it. *)
  let xs = Array.init 64 (fun i -> [| float_of_int (i mod 8); float_of_int (i / 8) |]) in
  let ys = Array.map (fun x -> if x.(1) < 4.0 then 0.0 else 10.0) xs in
  let tree = Tree.fit xs ys in
  Alcotest.(check (float 0.01)) "split on f1" 10.0 (Tree.predict tree [| 0.0; 7.0 |])

(* --- gradient boosting --- *)

let test_gbt_reduces_error () =
  let rng = Random.State.make [| 11 |] in
  let xs = Array.init 200 (fun _ -> [| Random.State.float rng 4.0; Random.State.float rng 4.0 |]) in
  let ys = Array.map (fun x -> sin x.(0) +. (0.5 *. x.(1))) xs in
  let mse model =
    let s = ref 0.0 in
    Array.iteri
      (fun i x ->
        let d = Gbt.predict model x -. ys.(i) in
        s := !s +. (d *. d))
      xs;
    !s /. 200.0
  in
  let weak = Gbt.fit ~config:{ Gbt.default_config with n_rounds = 2 } xs ys in
  let strong = Gbt.fit ~config:{ Gbt.default_config with n_rounds = 40 } xs ys in
  Alcotest.(check bool) "boosting reduces error" true (mse strong < mse weak /. 2.0)

let test_gbt_continues_from_prior () =
  let xs = Array.init 64 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun x -> x.(0) *. 2.0) xs in
  let prior = Gbt.fit ~config:{ Gbt.default_config with n_rounds = 10 } xs ys in
  let n_prior = Gbt.n_trees prior in
  (* new data shifted by +5: fine-tuning adds trees on residuals *)
  let ys2 = Array.map (fun y -> y +. 5.0) ys in
  let tuned = Gbt.fit ~config:{ Gbt.default_config with n_rounds = 10 } ~init:prior xs ys2 in
  Alcotest.(check bool) "more trees" true (Gbt.n_trees tuned > n_prior);
  let err =
    Float.abs (Gbt.predict tuned [| 30.0 |] -. 65.0)
  in
  Alcotest.(check bool) (Printf.sprintf "fine-tuned err %.2f < 4" err) true (err < 4.0)

let test_gbt_empty_data () =
  let m = Gbt.fit [||] [||] in
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Gbt.predict m [| 1.0 |])

(* --- tuners --- *)

(* A synthetic, fast objective: analytical model as ground truth, so the
   tuner tests don't need the simulator. *)
let synthetic_evaluate p = Alcop_perfmodel.Model.predict_cycles hw spec p

let space = lazy (Space.enumerate spec)

let test_exhaustive_finds_min () =
  let space = Lazy.force space in
  let r = Tuner.exhaustive ~space ~evaluate:synthetic_evaluate () in
  let best = Option.get (Tuner.best r) in
  Array.iter
    (fun (t : Tuner.trial) ->
      match t.Tuner.cost with
      | Some c -> Alcotest.(check bool) "best is min" true (best <= c)
      | None -> ())
    r.Tuner.trials

let test_budget_respected () =
  let space = Lazy.force space in
  List.iter
    (fun m ->
      let r =
        Tuner.run ~hw ~spec ~space ~evaluate:synthetic_evaluate ~budget:10
          ~seed:1 m
      in
      Alcotest.(check bool)
        (Tuner.method_to_string m ^ " respects budget")
        true
        (Array.length r.Tuner.trials <= 10))
    [ Tuner.Grid; Tuner.Xgb; Tuner.Analytical_only; Tuner.Analytical_xgb ]

let test_tuners_deterministic () =
  let space = Lazy.force space in
  let run () =
    Tuner.run ~hw ~spec ~space ~evaluate:synthetic_evaluate ~budget:12 ~seed:5
      Tuner.Xgb
  in
  let a = run () and b = run () in
  Alcotest.(check (array int)) "same trial sequence"
    (Array.map (fun (t : Tuner.trial) -> t.Tuner.index) a.Tuner.trials)
    (Array.map (fun (t : Tuner.trial) -> t.Tuner.index) b.Tuner.trials)

let test_analytical_only_hits_optimum_on_own_objective () =
  (* When the measurement IS the analytical model, ranking by it and taking
     the first trial must be optimal. *)
  let space = Lazy.force space in
  let exh = Tuner.exhaustive ~space ~evaluate:synthetic_evaluate () in
  let best = Option.get (Tuner.best exh) in
  let r =
    Tuner.run ~hw ~spec ~space ~evaluate:synthetic_evaluate ~budget:1 ~seed:1
      Tuner.Analytical_only
  in
  Alcotest.(check (float 1e-6)) "first trial optimal" best
    (Option.get (Tuner.best_within r 1))

let test_best_within_monotone () =
  let space = Lazy.force space in
  let r =
    Tuner.run ~hw ~spec ~space ~evaluate:synthetic_evaluate ~budget:30 ~seed:2
      Tuner.Xgb
  in
  let b10 = Tuner.best_within r 10 in
  let b30 = Tuner.best_within r 30 in
  match b10, b30 with
  | Some a, Some b -> Alcotest.(check bool) "monotone improvement" true (b <= a)
  | _ -> Alcotest.fail "expected costs"

(* --- tuning log round-trip (read side goes through the shared
   Trace_reader file/JSON plumbing) --- *)

let test_tuning_log_roundtrip () =
  let space = Lazy.force space in
  let result =
    Tuner.run ~hw ~spec ~space ~evaluate:synthetic_evaluate ~budget:8 ~seed:3
      Tuner.Grid
  in
  let path = Filename.temp_file "alcop_tune" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Tuning_log.write_file ~path ~spec_name:spec.Op_spec.name ~method_:Tuner.Grid
    ~seed:3 result;
  match Tuning_log.read_file path with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check string) "operator" spec.Op_spec.name r.Tuning_log.r_operator;
    Alcotest.(check string) "method"
      (Tuner.method_to_string Tuner.Grid)
      r.Tuning_log.r_method;
    Alcotest.(check int) "seed" 3 r.Tuning_log.r_seed;
    Alcotest.(check int) "space size" result.Tuner.space_size
      r.Tuning_log.r_space_size;
    Alcotest.(check int) "trial count"
      (Array.length result.Tuner.trials)
      (List.length r.Tuning_log.r_trials);
    List.iteri
      (fun i rt ->
        let t = result.Tuner.trials.(i) in
        Alcotest.(check int) "trial index" t.Tuner.index
          rt.Tuning_log.rt_index;
        Alcotest.(check string) "trial params"
          (Alcop_perfmodel.Params.to_string t.Tuner.params)
          (Alcop_perfmodel.Params.to_string rt.Tuning_log.rt_params);
        match t.Tuner.cost, rt.Tuning_log.rt_cost with
        | None, None -> ()
        | Some a, Some b -> Alcotest.(check (float 1e-9)) "trial cost" a b
        | _ -> Alcotest.fail "trial cost presence mismatch")
      r.Tuning_log.r_trials;
    (match Tuner.best result, r.Tuning_log.r_best_cycles with
     | None, None -> ()
     | Some a, Some b -> Alcotest.(check (float 1e-9)) "best cycles" a b
     | _ -> Alcotest.fail "best cycles presence mismatch")

let suite =
  [ ( "tune",
      [ Alcotest.test_case "space non-empty and valid" `Quick
          test_space_nonempty_and_valid;
        Alcotest.test_case "space restrictions" `Quick test_space_restrictions;
        Alcotest.test_case "space no duplicates" `Quick test_space_no_duplicates;
        Alcotest.test_case "neighbour stays in space" `Quick
          test_neighbour_stays_in_space;
        Alcotest.test_case "tree fits step function" `Quick
          test_tree_fits_step_function;
        Alcotest.test_case "tree constant target" `Quick test_tree_constant_target;
        Alcotest.test_case "tree respects depth" `Quick test_tree_respects_depth;
        Alcotest.test_case "tree multifeature split" `Quick
          test_tree_multifeature_split;
        Alcotest.test_case "gbt reduces error" `Quick test_gbt_reduces_error;
        Alcotest.test_case "gbt continues from prior" `Quick
          test_gbt_continues_from_prior;
        Alcotest.test_case "gbt empty data" `Quick test_gbt_empty_data;
        Alcotest.test_case "exhaustive finds min" `Slow test_exhaustive_finds_min;
        Alcotest.test_case "budget respected" `Slow test_budget_respected;
        Alcotest.test_case "tuners deterministic" `Slow test_tuners_deterministic;
        Alcotest.test_case "analytical-only optimal on own objective" `Slow
          test_analytical_only_hits_optimum_on_own_objective;
        Alcotest.test_case "best-within monotone" `Slow test_best_within_monotone;
        Alcotest.test_case "tuning log round-trip" `Slow
          test_tuning_log_roundtrip ] ) ]
