(* Tests for the domain pool (Alcop_par): result order and identity vs
   sequential for jobs in {1,2,4}, chunked parallel_for reduction,
   lowest-index exception propagation, a QCheck property that Tuner.run
   through a pool is bit-identical to the sequential run, exact telemetry
   merge (identical event stream and counter totals under a deterministic
   clock), a concurrent-compile hammer on a Session (in-flight dedup must
   reproduce sequential hit/miss totals), the for_hw registry under
   concurrency, and the timing simulator's parallel-wave mode. *)

open Alcop_sched
open Alcop_par

let hw = Alcop_hw.Hw_config.default

(* --- map: order, identity with sequential, callback order --- *)

let test_map_matches_sequential () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 7 in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      let got = Pool.with_pool ~jobs (fun p -> Pool.map p f xs) in
      Alcotest.(check (list int))
        (Printf.sprintf "map at jobs=%d" jobs)
        expected got)
    [ 1; 2; 4 ]

let test_map_each_in_index_order () =
  let xs = Array.init 50 (fun i -> i) in
  let seen = ref [] in
  let got =
    Pool.with_pool ~jobs:4 (fun p ->
        Pool.map_array p
          ~each:(fun i r -> seen := (i, r) :: !seen)
          (fun x -> x * 2) xs)
  in
  Alcotest.(check (array int)) "results" (Array.map (fun x -> x * 2) xs) got;
  Alcotest.(check (list (pair int int)))
    "each called in index order"
    (List.init 50 (fun i -> (i, i * 2)))
    (List.rev !seen)

(* --- parallel_for: chunked fold with merge --- *)

let test_parallel_for_sum () =
  let n = 1000 in
  let expected = n * (n - 1) / 2 in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          let got =
            Pool.with_pool ~jobs (fun p ->
                Pool.parallel_for ?chunk p ~n
                  ~init:(fun () -> 0)
                  ~body:(fun acc i -> acc + i)
                  ~merge:( + ) ~neutral:0)
          in
          Alcotest.(check int)
            (Printf.sprintf "sum at jobs=%d chunk=%s" jobs
               (match chunk with Some c -> string_of_int c | None -> "auto"))
            expected got)
        [ None; Some 1; Some 7; Some 1000 ])
    [ 1; 2; 4 ]

(* Chunk states must merge in chunk order (left-to-right), not completion
   order: build the index list and check it comes back sorted. *)
let test_parallel_for_merge_order () =
  let got =
    Pool.with_pool ~jobs:4 (fun p ->
        Pool.parallel_for ~chunk:3 p ~n:20
          ~init:(fun () -> [])
          ~body:(fun acc i -> i :: acc)
          ~merge:(fun a b -> a @ List.rev b)
          ~neutral:[])
  in
  Alcotest.(check (list int)) "indices in order" (List.init 20 Fun.id) got

(* --- exception propagation: the lowest-indexed failure wins --- *)

exception Boom of int

let test_lowest_index_exception () =
  List.iter
    (fun jobs ->
      match
        Pool.with_pool ~jobs (fun p ->
            Pool.map_array p
              (fun i -> if i >= 3 then raise (Boom i) else i)
              (Array.init 8 Fun.id))
      with
      | (_ : int array) -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failing index at jobs=%d" jobs)
          3 i)
    [ 1; 2; 4 ]

(* --- QCheck: Tuner.run through a pool is bit-identical to sequential --- *)

let synth_space =
  let mk tb_m tb_n smem_stages =
    Alcop_perfmodel.Params.make
      ~tiling:
        (Tiling.make ~tb_m ~tb_n ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 ())
      ~smem_stages ~reg_stages:1 ()
  in
  Array.of_list
    (List.concat_map
       (fun tb_m ->
         List.concat_map
           (fun tb_n -> List.map (mk tb_m tb_n) [ 2; 3 ])
           [ 16; 32 ])
       [ 16; 32; 64 ])

(* Pure, deterministic stand-in for the simulator; some points "fail". *)
let synth_cost (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  let v =
    (t.Tiling.tb_m * 7) + (t.Tiling.tb_n * 13)
    + (p.Alcop_perfmodel.Params.smem_stages * 31)
  in
  if v mod 5 = 0 then None else Some (float_of_int (1000 + (v mod 97)))

let prop_tuner_pool_bit_identical =
  QCheck.Test.make ~name:"Tuner.run pool-invariant (jobs 1/2/4)" ~count:8
    QCheck.(pair small_nat (int_bound 1000))
    (fun (budget_raw, seed) ->
      let budget = 1 + (budget_raw mod 15) in
      let spec = Op_spec.matmul ~name:"par_prop" ~m:64 ~n:64 ~k:128 () in
      let run pool =
        Alcop_tune.Tuner.run ?pool ~hw ~spec ~space:synth_space
          ~evaluate:synth_cost ~budget ~seed Alcop_tune.Tuner.Analytical_xgb
      in
      let run_grid pool =
        Alcop_tune.Tuner.run ?pool ~hw ~spec ~space:synth_space
          ~evaluate:synth_cost ~budget ~seed Alcop_tune.Tuner.Grid
      in
      let base = run None and base_grid = run_grid None in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p ->
              run (Some p) = base && run_grid (Some p) = base_grid))
        [ 1; 2; 4 ])

(* --- exact telemetry merge --- *)

let install_fake_clock () =
  let t = ref 0.0 in
  Alcop_obs.Obs.set_clock (fun () ->
      t := !t +. 0.001;
      !t)

(* The same workload, run sequentially and through a 4-worker pool, must
   produce the identical event stream — timestamps included, because the
   replayed op sequence reads the (deterministic) clock exactly as the
   sequential run does — and identical counter/gauge tables. *)
let obs_workload i =
  Alcop_obs.Obs.with_span "par.task" (fun () ->
      Alcop_obs.Obs.count ~n:(i + 1) "par.items";
      Alcop_obs.Obs.gauge "par.last" (float_of_int i);
      Alcop_obs.Obs.observe "par.hist" (float_of_int (i mod 4)));
  i * 3

let run_obs_workload pool =
  Alcop_obs.Obs.reset ();
  install_fake_clock ();
  let sink, events = Alcop_obs.Obs.memory_sink () in
  Alcop_obs.Obs.add_sink sink;
  let xs = List.init 24 Fun.id in
  let results =
    match pool with
    | None -> List.map obs_workload xs
    | Some p -> Pool.map p obs_workload xs
  in
  let evs = events () in
  let counters = Alcop_obs.Obs.counters () in
  let gauges = Alcop_obs.Obs.gauges () in
  Alcop_obs.Obs.reset ();
  (results, evs, counters, gauges)

let test_obs_exact_merge () =
  let seq = run_obs_workload None in
  let par = Pool.with_pool ~jobs:4 (fun p -> run_obs_workload (Some p)) in
  let rs, es, cs, gs = seq and rp, ep, cp, gp = par in
  Alcotest.(check (list int)) "results" rs rp;
  Alcotest.(check int) "event count" (List.length es) (List.length ep);
  Alcotest.(check bool) "event streams identical (timestamps included)" true
    (es = ep);
  Alcotest.(check (list (pair string int))) "counter totals exact" cs cp;
  Alcotest.(check bool) "gauge tables identical" true (gs = gp)

(* --- Session under concurrency --- *)

let hammer_params =
  Alcop_perfmodel.Params.make
    ~tiling:
      (Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16
         ~warp_k:16 ())
    ~smem_stages:2 ~reg_stages:1 ()

(* 32 concurrent compiles of the same key: the in-flight dedup must admit
   exactly one miss — every other caller blocks and lands a hit, exactly
   the totals of the sequential call sequence. *)
let test_session_inflight_dedup () =
  let spec = Op_spec.matmul ~name:"par_hammer" ~m:64 ~n:64 ~k:128 () in
  let session = Alcop.Session.create ~hw () in
  let results =
    Pool.with_pool ~jobs:4 (fun p ->
        Pool.map p
          (fun () -> Alcop.Session.evaluate session hammer_params spec)
          (List.init 32 (fun _ -> ())))
  in
  (match results with
   | r0 :: rest ->
     Alcotest.(check bool) "all evaluations agree" true
       (List.for_all (fun r -> r = r0) rest);
     Alcotest.(check bool) "evaluation succeeded" true (r0 <> None)
   | [] -> Alcotest.fail "no results");
  let s = Alcop.Session.stats session in
  Alcotest.(check int) "exactly one miss" 1 s.Alcop.Session.misses;
  Alcotest.(check int) "all others hit" 31 s.Alcop.Session.hits

let test_for_hw_concurrent_is_one_session () =
  let sessions =
    Pool.with_pool ~jobs:4 (fun p ->
        Pool.map p (fun () -> Alcop.Session.for_hw hw)
          (List.init 16 (fun _ -> ())))
  in
  match sessions with
  | s0 :: rest ->
    Alcotest.(check bool) "one physical session for the config" true
      (List.for_all (fun s -> s == s0) rest)
  | [] -> Alcotest.fail "no sessions"

(* --- timing: parallel-wave mode equals the sequential simulation --- *)

let test_timing_parallel_wave_matches () =
  let spec = Op_spec.matmul ~name:"par_timing" ~m:512 ~n:512 ~k:256 () in
  let tiling =
    Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()
  in
  match Alcop.Compiler.compile ~hw params spec with
  | Error e ->
    Alcotest.failf "compile failed: %s" (Alcop.Compiler.error_to_string e)
  | Ok c ->
    let req = c.Alcop.Compiler.timing_request in
    let seq = Alcop_gpusim.Timing.run req in
    let par =
      Pool.with_pool ~jobs:2 (fun p -> Alcop_gpusim.Timing.run ~pool:p req)
    in
    (match seq, par with
     | Ok a, Ok b ->
       Alcotest.(check bool) "kernel timings identical" true (a = b)
     | Error _, _ | _, Error _ -> Alcotest.fail "timing run failed")

(* --- pool hygiene --- *)

let test_create_rejects_zero_jobs () =
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Pool.create: jobs = 0 (must be >= 1)") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_shutdown_idempotent () =
  let p = Pool.create ~jobs:2 () in
  Alcotest.(check int) "jobs" 2 (Pool.jobs p);
  Pool.shutdown p;
  Pool.shutdown p

let suite =
  [ ( "par",
      [ Alcotest.test_case "map matches sequential (jobs 1/2/4)" `Quick
          test_map_matches_sequential;
        Alcotest.test_case "each runs in index order" `Quick
          test_map_each_in_index_order;
        Alcotest.test_case "parallel_for sum" `Quick test_parallel_for_sum;
        Alcotest.test_case "parallel_for merges in chunk order" `Quick
          test_parallel_for_merge_order;
        Alcotest.test_case "lowest-index exception wins" `Quick
          test_lowest_index_exception;
        QCheck_alcotest.to_alcotest prop_tuner_pool_bit_identical;
        Alcotest.test_case "exact telemetry merge" `Quick test_obs_exact_merge;
        Alcotest.test_case "session in-flight dedup under hammer" `Quick
          test_session_inflight_dedup;
        Alcotest.test_case "for_hw concurrent returns one session" `Quick
          test_for_hw_concurrent_is_one_session;
        Alcotest.test_case "parallel-wave timing identical" `Quick
          test_timing_parallel_wave_matches;
        Alcotest.test_case "create rejects jobs < 1" `Quick
          test_create_rejects_zero_jobs;
        Alcotest.test_case "shutdown is idempotent" `Quick
          test_shutdown_idempotent ] ) ]
