(* Tests for the performance observatory (Alcop_obs.Benchdb): robust
   statistics, fingerprint identity, the v2 schema round-trip and v1
   compatibility, the append-only history store (including corruption
   tolerance, fuzzed), the change-point detector goldens (an injected
   1.3x step is flagged with the right first-bad index; identical
   distributions produce zero false positives across 100 seeds), the
   compare semantics on disjoint ids / missing host objects, and the
   trend chart rendering (noise band + change-point markers). *)

open Alcop_obs

(* --- robust statistics --- *)

let test_median_mad_percentile () =
  Alcotest.(check (float 1e-12)) "median empty" 0.0 (Benchdb.median []);
  Alcotest.(check (float 1e-12)) "median odd" 3.0 (Benchdb.median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-12)) "median even interpolates" 2.5
    (Benchdb.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-12)) "mad" 1.0
    (Benchdb.mad [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  Alcotest.(check (float 1e-12)) "p90 interpolates" 4.6
    (Benchdb.percentile 0.9 [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  Alcotest.(check (float 1e-12)) "p0 is min" 1.0
    (Benchdb.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-12)) "p100 is max" 3.0
    (Benchdb.percentile 1.0 [ 3.0; 1.0; 2.0 ])

let test_summarize () =
  let st = Benchdb.summarize [ 100.0; 110.0; 90.0; 105.0; 95.0 ] in
  Alcotest.(check int) "runs" 5 st.Benchdb.s_runs;
  Alcotest.(check (float 1e-9)) "median" 100.0 st.Benchdb.s_median_ns;
  Alcotest.(check (float 1e-9)) "mad" 5.0 st.Benchdb.s_mad_ns;
  Alcotest.(check (float 1e-9)) "min" 90.0 st.Benchdb.s_min_ns;
  Alcotest.(check (float 1e-9)) "mean" 100.0 st.Benchdb.s_mean_ns;
  Alcotest.(check (float 1e-9)) "noise" 0.05 (Benchdb.noise st);
  Alcotest.(check (float 1e-3)) "ops/sec" 1e7 (Benchdb.ops_per_sec st)

(* --- fingerprint identity --- *)

let fp ?(git_rev = "abc1234") ?(hostname = "box-a") ?(jobs = "2") ?(cores = 4)
    () =
  Benchdb.collect_fingerprint ~hostname ~git_rev ~jobs ~cores ()

let test_fingerprint_id_exclusions () =
  let a = fp () in
  (* the stream key must survive a new commit and a renamed CI runner *)
  Alcotest.(check string) "git rev excluded from id"
    (Benchdb.fingerprint_id a)
    (Benchdb.fingerprint_id (fp ~git_rev:"fffffff" ()));
  Alcotest.(check string) "hostname excluded from id"
    (Benchdb.fingerprint_id a)
    (Benchdb.fingerprint_id (fp ~hostname:"runner-9912" ()));
  (* but both are recorded in the fingerprint itself *)
  Alcotest.(check string) "git rev recorded" "abc1234" a.Benchdb.f_git_rev;
  Alcotest.(check bool) "host hash is 8 hex chars" true
    (String.length a.Benchdb.f_host_hash = 8);
  Alcotest.(check bool) "hostname changes the hash" true
    (a.Benchdb.f_host_hash <> (fp ~hostname:"box-b" ()).Benchdb.f_host_hash);
  (* a genuinely different machine shape is a different stream *)
  Alcotest.(check bool) "core count changes the id" true
    (Benchdb.fingerprint_id a <> Benchdb.fingerprint_id (fp ~cores:8 ()));
  Alcotest.(check bool) "jobs changes the id" true
    (Benchdb.fingerprint_id a <> Benchdb.fingerprint_id (fp ~jobs:"8" ()));
  (* file-name safety: exotic characters degrade to '_' *)
  let weird = fp ~jobs:"2;rm -rf /" () in
  Alcotest.(check bool) "id is file-name safe" true
    (String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> true
         | _ -> false)
       (Benchdb.fingerprint_id weird))

(* --- schema v2 round-trip and v1 compatibility --- *)

let bench ?host ?(runs = 5) ?(mad = 0.0) id median =
  { Benchdb.b_id = id;
    b_stats =
      { Benchdb.s_runs = runs; s_median_ns = median; s_mad_ns = mad;
        s_min_ns = median -. mad; s_p90_ns = median +. mad;
        s_mean_ns = median };
    b_host = host }

let record ?(ts = 1000.0) benches =
  Benchdb.make_record ~ts ~generated_by:"test" ~machine:"sim-a100"
    ~fingerprint:(fp ()) benches

let test_v2_roundtrip () =
  let host = Json.Obj [ ("serial_fraction", Json.Float 0.25) ] in
  let r = record [ bench ~mad:3.0 "alcop/lower" 120.0; bench ~host "sweep" 5e9 ] in
  match Benchdb.record_of_json (Benchdb.record_to_json r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check string) "schema" Benchdb.schema_v2 r'.Benchdb.r_schema;
    Alcotest.(check string) "machine" "sim-a100" r'.Benchdb.r_machine;
    Alcotest.(check (option (float 1e-9))) "ts" (Some 1000.0) r'.Benchdb.r_ts;
    (match r'.Benchdb.r_fingerprint with
     | None -> Alcotest.fail "fingerprint lost"
     | Some f ->
       Alcotest.(check string) "fingerprint id survives"
         (Benchdb.fingerprint_id (fp ()))
         (Benchdb.fingerprint_id f));
    (match r'.Benchdb.r_benches with
     | [ a; b ] ->
       Alcotest.(check string) "id" "alcop/lower" a.Benchdb.b_id;
       Alcotest.(check (float 1e-9)) "median" 120.0
         a.Benchdb.b_stats.Benchdb.s_median_ns;
       Alcotest.(check (float 1e-9)) "mad" 3.0
         a.Benchdb.b_stats.Benchdb.s_mad_ns;
       Alcotest.(check int) "runs" 5 a.Benchdb.b_stats.Benchdb.s_runs;
       Alcotest.(check bool) "host object survives" true
         (b.Benchdb.b_host <> None)
     | bs -> Alcotest.failf "expected 2 benches, got %d" (List.length bs))

let test_v1_compat () =
  let v1 =
    {|{"schema":"alcop-selfbench-v1","machine":"sim-a100","unit":"ops_per_sec",
      "benchmarks":[{"id":"alcop/lower","ns_per_run":200.0,"ops_per_sec":5000000.0},
                    {"id":"rate-only","ops_per_sec":1000.0},
                    {"id":"useless"}]}|}
  in
  match Result.bind (Json.of_string v1) Benchdb.record_of_json with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check string) "schema kept" Benchdb.schema_v1 r.Benchdb.r_schema;
    Alcotest.(check bool) "no fingerprint in v1" true
      (r.Benchdb.r_fingerprint = None);
    (match r.Benchdb.r_benches with
     | [ a; b ] ->
       (* v1 entries become single-run stats with zero MAD *)
       Alcotest.(check int) "single run" 1 a.Benchdb.b_stats.Benchdb.s_runs;
       Alcotest.(check (float 1e-9)) "ns kept" 200.0
         a.Benchdb.b_stats.Benchdb.s_median_ns;
       Alcotest.(check (float 1e-9)) "zero mad" 0.0
         a.Benchdb.b_stats.Benchdb.s_mad_ns;
       (* an entry with only a rate derives its time *)
       Alcotest.(check (float 1e-3)) "ns from ops" 1e6
         b.Benchdb.b_stats.Benchdb.s_median_ns
     | bs ->
       Alcotest.failf "expected 2 usable benches, got %d" (List.length bs));
    (* unknown schema is an error, not a silent empty record *)
    (match
       Result.bind
         (Json.of_string {|{"schema":"alcop-selfbench-v99","benchmarks":[]}|})
         Benchdb.record_of_json
     with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "v99 schema should be rejected")

(* --- history store --- *)

let with_tmpdir f =
  let dir = Filename.temp_file "alcop_hist" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let test_history_append_read () =
  with_tmpdir @@ fun dir ->
  let dir = Filename.concat dir "nested" in
  (* append creates the directory, one record per line, in order *)
  let r1 = record ~ts:1.0 [ bench "b" 100.0 ] in
  let r2 = record ~ts:2.0 [ bench "b" 101.0 ] in
  let path =
    match Benchdb.append ~dir r1 with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (match Benchdb.append ~dir r2 with
   | Ok p -> Alcotest.(check string) "same stream file" path p
   | Error e -> Alcotest.fail e);
  Alcotest.(check string) "stream named by fingerprint id"
    (Benchdb.history_file ~dir (Benchdb.fingerprint_id (fp ())))
    path;
  (match Benchdb.read_history path with
   | Error e -> Alcotest.fail e
   | Ok (records, skipped) ->
     Alcotest.(check int) "two records" 2 (List.length records);
     Alcotest.(check int) "nothing skipped" 0 skipped;
     Alcotest.(check (list (option (float 1e-9)))) "append order kept"
       [ Some 1.0; Some 2.0 ]
       (List.map (fun r -> r.Benchdb.r_ts) records));
  (match Benchdb.machines ~dir with
   | [ (id, p) ] ->
     Alcotest.(check string) "machine id" (Benchdb.fingerprint_id (fp ())) id;
     Alcotest.(check string) "machine path" path p
   | ms -> Alcotest.failf "expected 1 stream, got %d" (List.length ms));
  Alcotest.(check (list (pair string string))) "missing dir is empty" []
    (Benchdb.machines ~dir:(Filename.concat dir "absent"))

let test_history_corruption_tolerated () =
  with_tmpdir @@ fun dir ->
  (match Benchdb.append ~dir (record ~ts:1.0 [ bench "b" 100.0 ]) with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  let path = Benchdb.history_file ~dir (Benchdb.fingerprint_id (fp ())) in
  (* simulate a torn write and an alien line between two good records *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"schema\":\"alcop-selfbench-v2\",\"trunc\n";
  output_string oc "{\"schema\":\"not-a-selfbench\"}\n";
  close_out oc;
  (match Benchdb.append ~dir (record ~ts:2.0 [ bench "b" 99.0 ]) with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  match Benchdb.read_history path with
  | Error e -> Alcotest.fail e
  | Ok (records, skipped) ->
    Alcotest.(check int) "both good records read" 2 (List.length records);
    Alcotest.(check int) "both bad lines counted" 2 skipped

(* Fuzz: random byte corruption of a stream file; reads must stay Ok and
   never surface more records than were written. *)
let prop_history_corruption =
  QCheck.Test.make ~count:50 ~name:"corrupted history reads never raise"
    QCheck.(small_list (pair small_nat printable_char))
    (fun edits ->
      with_tmpdir @@ fun dir ->
      List.iter
        (fun i ->
          match
            Benchdb.append ~dir
              (record ~ts:(float_of_int i) [ bench "b" (100.0 +. float_of_int i) ])
          with
          | Ok _ -> ()
          | Error e -> failwith e)
        [ 0; 1; 2 ];
      let path = Benchdb.history_file ~dir (Benchdb.fingerprint_id (fp ())) in
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))
      in
      List.iter
        (fun (pos, c) ->
          if Bytes.length text > 0 then
            Bytes.set text (pos mod Bytes.length text) c)
        edits;
      let oc = open_out_bin path in
      output_bytes oc text;
      close_out oc;
      match Benchdb.read_history path with
      | Error e -> QCheck.Test.fail_report e
      | Ok (records, _skipped) -> List.length records <= 3)

(* --- change-point detector goldens --- *)

let flat_then_step ~n_before ~n_after ~before ~after ~noise =
  Array.init (n_before + n_after) (fun i ->
      ((if i < n_before then before else after), noise))

let test_change_point_step_flagged () =
  (* a 1.3x slowdown: ops drop from 100 to 100/1.3 at index 10 *)
  let pts =
    flat_then_step ~n_before:10 ~n_after:10 ~before:100.0 ~after:(100.0 /. 1.3)
      ~noise:1.0
  in
  match Benchdb.change_points pts with
  | [ cp ] ->
    Alcotest.(check int) "first-bad index" 10 cp.Benchdb.cp_index;
    Alcotest.(check (float 1e-6)) "before level" 100.0 cp.Benchdb.cp_before;
    Alcotest.(check (float 1e-6)) "after level" (100.0 /. 1.3)
      cp.Benchdb.cp_after;
    Alcotest.(check (float 1e-6)) "ratio" (1.0 /. 1.3) cp.Benchdb.cp_ratio;
    Alcotest.(check bool) "is a regression" true (cp.Benchdb.cp_ratio < 1.0)
  | cps -> Alcotest.failf "expected exactly 1 change point, got %d"
             (List.length cps)

let test_change_point_improvement_not_regression () =
  let pts =
    flat_then_step ~n_before:8 ~n_after:8 ~before:100.0 ~after:150.0 ~noise:1.0
  in
  match Benchdb.change_points pts with
  | [ cp ] ->
    Alcotest.(check bool) "ratio above 1" true (cp.Benchdb.cp_ratio > 1.0);
    (* regressions must not report an improvement *)
    let t = { Benchdb.t_bench = "b"; t_points = []; t_changes = [ cp ] } in
    Alcotest.(check int) "not a regression" 0
      (List.length (Benchdb.regressions [ t ]))
  | cps -> Alcotest.failf "expected 1 change point, got %d" (List.length cps)

let test_change_point_two_record_history () =
  (* the CI shape on a fresh cache: exactly two records *)
  let drop = [| (100.0, 0.0); (100.0 /. 1.3, 0.0) |] in
  (match Benchdb.change_points drop with
   | [ cp ] -> Alcotest.(check int) "index 1" 1 cp.Benchdb.cp_index
   | cps -> Alcotest.failf "expected 1, got %d" (List.length cps));
  let same = [| (100.0, 0.0); (100.0, 0.0) |] in
  Alcotest.(check int) "identical pair silent" 0
    (List.length (Benchdb.change_points same))

(* Identical-distribution reruns: +/-2% deterministic pseudo-noise around
   a flat level must never fire, for every one of 100 seeds. The min_rel
   floor guarantees it: any shift under sensitivity*min_rel*level (8%)
   cannot fire, and two window medians of the same +/-2% distribution
   can differ by at most 4%. *)
let test_change_point_zero_false_positives_100_seeds () =
  let series_of_seed seed =
    let state = ref (seed * 2654435761) in
    Array.init 20 (fun _ ->
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        let u = (float_of_int (!state mod 2001) /. 1000.0) -. 1.0 in
        (100.0 *. (1.0 +. (0.02 *. u)), 0.5))
  in
  let fired = ref 0 in
  for seed = 1 to 100 do
    if Benchdb.change_points (series_of_seed seed) <> [] then incr fired
  done;
  Alcotest.(check int) "zero false positives across 100 seeds" 0 !fired

let test_trends_and_first_bad () =
  (* records -> per-bench trend; the slowdown lands in record #3 *)
  let ops_to_ns ops = 1e9 /. ops in
  let records =
    List.mapi
      (fun i ops -> record ~ts:(float_of_int i) [ bench "hot" (ops_to_ns ops) ])
      [ 100.0; 100.0; 100.0; 70.0; 70.0; 70.0 ]
  in
  match Benchdb.trends records with
  | [ t ] ->
    Alcotest.(check string) "bench id" "hot" t.Benchdb.t_bench;
    Alcotest.(check int) "six points" 6 (List.length t.Benchdb.t_points);
    (match t.Benchdb.t_changes with
     | [ cp ] ->
       Alcotest.(check int) "first-bad series index" 3 cp.Benchdb.cp_index;
       let desc = Benchdb.first_bad records cp t in
       Alcotest.(check bool) "first-bad names record #3" true
         (String.length desc >= 9 && String.sub desc 0 9 = "record #3");
       Alcotest.(check bool) "first-bad carries the git rev" true
         (let re = "abc1234" in
          let rec contains i =
            i + String.length re <= String.length desc
            && (String.sub desc i (String.length re) = re || contains (i + 1))
          in
          contains 0);
       let lines =
         Benchdb.trend_lines ~machine:"m" ~skipped:0 records [ t ]
       in
       Alcotest.(check bool) "report names a regression" true
         (List.exists
            (fun l ->
              let re = "::error::" in
              String.length l >= String.length re
              && String.sub l 0 (String.length re) = re)
            lines)
     | cps -> Alcotest.failf "expected 1 change, got %d" (List.length cps))
  | ts -> Alcotest.failf "expected 1 trend, got %d" (List.length ts)

(* --- compare semantics --- *)

let test_compare_disjoint_and_missing_host () =
  let host = Json.Obj [ ("serial_fraction", Json.Float 0.5) ] in
  (* OLD has a host object and a benchmark NEW lacks; NEW has a new one.
     Pre-PR-7 this crashed or silently dropped the disjoint ids. *)
  let old_r = record [ bench ~host "shared" 100.0; bench "vanished" 50.0 ] in
  let new_r = record [ bench "shared" 100.0; bench "fresh" 10.0 ] in
  let r = Benchdb.compare_records ~old_r ~new_r () in
  Alcotest.(check (list string)) "only old" [ "vanished" ] r.Benchdb.cmp_only_old;
  Alcotest.(check (list string)) "only new" [ "fresh" ] r.Benchdb.cmp_only_new;
  (* a disappeared benchmark is a failure; a new one is not *)
  Alcotest.(check int) "one failure" 1 r.Benchdb.cmp_failures;
  let contains needle l =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length l && (String.sub l i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "explicit only-in-OLD row" true
    (List.exists (contains "(only in OLD)") r.Benchdb.cmp_lines);
  Alcotest.(check bool) "explicit only-in-NEW row" true
    (List.exists (contains "(only in NEW)") r.Benchdb.cmp_lines);
  Alcotest.(check bool) "one-sided host noted, no crash" true
    (List.exists (contains "OLD carries host data") r.Benchdb.cmp_lines)

let test_compare_regression_and_tolerance () =
  let old_r = record [ bench "hot" 100.0 ] in
  (* 100 -> 150 ns is a 0.67x throughput ratio: beyond 20% tolerance *)
  let slow_r = record [ bench "hot" 150.0 ] in
  let r = Benchdb.compare_records ~old_r ~new_r:slow_r () in
  Alcotest.(check int) "regression counted" 1 r.Benchdb.cmp_failures;
  (* within a generous tolerance the same diff passes *)
  let r = Benchdb.compare_records ~tolerance:0.5 ~old_r ~new_r:slow_r () in
  Alcotest.(check int) "inside tolerance" 0 r.Benchdb.cmp_failures;
  (* identical files never fail, strict or not *)
  let r = Benchdb.compare_records ~strict:true ~old_r ~new_r:old_r () in
  Alcotest.(check int) "self-compare clean" 0 r.Benchdb.cmp_failures

(* --- trend charts --- *)

let test_trend_sections_render_band_and_marker () =
  let ops_to_ns ops = 1e9 /. ops in
  let records =
    List.mapi
      (fun i ops ->
        record ~ts:(float_of_int i)
          [ bench ~mad:(ops_to_ns ops *. 0.02) "hot" (ops_to_ns ops) ])
      [ 100.0; 100.0; 100.0; 70.0; 70.0; 70.0 ]
  in
  let html =
    String.concat "\n"
      (Benchdb.trend_sections ~machine:"m" records (Benchdb.trends records))
  in
  let contains needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length html
      && (String.sub html i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "noise band rendered" true (contains "noise-band");
  Alcotest.(check bool) "change-point marker rendered" true
    (contains "change-point");
  Alcotest.(check bool) "benchmark titled" true (contains "<h3>hot</h3>");
  (* and the full standalone page wraps it *)
  let page = Benchdb.trend_page [ ("m", records, Benchdb.trends records) ] in
  Alcotest.(check bool) "page is a document" true
    (String.length page > 15 && String.sub page 0 15 = "<!DOCTYPE html>")

let suite =
  [ ( "benchdb",
      [ Alcotest.test_case "median/mad/percentile" `Quick
          test_median_mad_percentile;
        Alcotest.test_case "summarize" `Quick test_summarize;
        Alcotest.test_case "fingerprint id exclusions" `Quick
          test_fingerprint_id_exclusions;
        Alcotest.test_case "v2 round-trip" `Quick test_v2_roundtrip;
        Alcotest.test_case "v1 compatibility" `Quick test_v1_compat;
        Alcotest.test_case "history append/read" `Quick
          test_history_append_read;
        Alcotest.test_case "history corruption tolerated" `Quick
          test_history_corruption_tolerated;
        QCheck_alcotest.to_alcotest prop_history_corruption;
        Alcotest.test_case "change point: 1.3x step flagged" `Quick
          test_change_point_step_flagged;
        Alcotest.test_case "change point: improvement not regression" `Quick
          test_change_point_improvement_not_regression;
        Alcotest.test_case "change point: two-record history" `Quick
          test_change_point_two_record_history;
        Alcotest.test_case "change point: zero false positives (100 seeds)"
          `Quick test_change_point_zero_false_positives_100_seeds;
        Alcotest.test_case "trends and first-bad attribution" `Quick
          test_trends_and_first_bad;
        Alcotest.test_case "compare: disjoint ids and missing host" `Quick
          test_compare_disjoint_and_missing_host;
        Alcotest.test_case "compare: regression and tolerance" `Quick
          test_compare_regression_and_tolerance;
        Alcotest.test_case "trend sections render band and marker" `Quick
          test_trend_sections_render_band_and_marker ] ) ]
