(* Trace extraction tests: byte/FLOP accounting and synthesized
   register-pipeline commit/wait structure. *)

open Alcop_sched
open Alcop_gpusim

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"trace_test" ~m:128 ~n:128 ~k:256 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let build ?(smem_stages = 3) ?(reg_stages = 2) () =
  let sched = Schedule.default_gemm ~smem_stages ~reg_stages spec tiling in
  let l = Lower.run sched in
  match Alcop_pipeline.Pass.run ~hw ~hints:l.Lower.hints l.Lower.kernel with
  | Ok r ->
    let groups = Alcop_pipeline.Pass.groups r in
    (Trace.extract ~groups r.Alcop_pipeline.Pass.kernel, groups)
  | Error rej ->
    Alcotest.failf "rejection: %a" Alcop_pipeline.Analysis.pp_rejection rej

(* One threadblock computes tb_m x tb_n x K. *)
let expected_flops = 2 * 64 * 64 * 256

(* Global bytes: (tb_m + tb_n) * tb_k * 2B per ko iteration, 8 iterations,
   plus pipelining prologue/wrap extras. *)
let steady_global_bytes = (64 + 64) * 32 * 2 * 8

let test_flops_exact () =
  let trace, _ = build () in
  let stats = Trace.stats_of trace in
  Alcotest.(check int) "flops" expected_flops stats.Trace.flops

let test_global_bytes () =
  let trace, _ = build () in
  let stats = Trace.stats_of trace in
  (* steady loads + 2 extra prologue-equivalent iterations (stages-1) *)
  let expected = steady_global_bytes * (8 + 2) / 8 in
  Alcotest.(check int) "global bytes" expected stats.Trace.global_load_bytes

let test_store_bytes () =
  let trace, _ = build () in
  let stats = Trace.stats_of trace in
  Alcotest.(check int) "output tile" (64 * 64 * 2) stats.Trace.store_bytes

let test_unpipelined_trace_shape () =
  let trace, _ = build ~smem_stages:1 ~reg_stages:1 () in
  let stats = Trace.stats_of trace in
  Alcotest.(check int) "flops" expected_flops stats.Trace.flops;
  Alcotest.(check int) "global bytes" steady_global_bytes
    stats.Trace.global_load_bytes;
  (* barriers survive: 2 per ko iteration *)
  let barriers =
    Array.fold_left
      (fun n e -> match e with Trace.Barrier -> n + 1 | _ -> n)
      0 trace
  in
  Alcotest.(check int) "barriers" 16 barriers

let count trace pred = Array.fold_left (fun n e -> if pred e then n + 1 else n) 0 trace

let test_smem_pipeline_sync_events () =
  let trace, _ = build ~reg_stages:1 () in
  (* acquires: 2 prologue iterations + 8 steady = 10; waits = 8 steady
     (wait sits before the inner loop each iteration); commits = 10. *)
  Alcotest.(check int) "acquires" 10
    (count trace (function Trace.Acquire _ -> true | _ -> false));
  Alcotest.(check int) "commits" 10
    (count trace (function Trace.Commit _ -> true | _ -> false));
  Alcotest.(check int) "waits" 8
    (count trace (function Trace.Wait_oldest _ -> true | _ -> false))

(* Register pipeline synthesis: per ki iteration one commit and one wait on
   the register group, plus one commit per prologue chunk. *)
let test_register_pipeline_synthesis () =
  let trace, groups = build () in
  let reg_gid =
    (List.find
       (fun (g : Alcop_pipeline.Analysis.group) ->
         not g.Alcop_pipeline.Analysis.synchronized)
       groups)
      .Alcop_pipeline.Analysis.id
  in
  let commits =
    count trace (function Trace.Commit { group = g; _ } -> String.equal g reg_gid | _ -> false)
  in
  let waits =
    count trace
      (function Trace.Wait_oldest { group = g; _ } -> String.equal g reg_gid | _ -> false)
  in
  (* hoisted prologue: 1 chunk; steady: 8 ko x 2 ki = 16 -> 17 commits.
     waits: one per compute = 16. *)
  Alcotest.(check int) "reg commits" 17 commits;
  Alcotest.(check int) "reg waits" 16 waits;
  (* every wait retires a batch that was committed at least one iteration
     earlier: check by replay that the queue never underflows. *)
  let depth = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Trace.Commit { group = g; _ } when String.equal g reg_gid -> incr depth
      | Trace.Wait_oldest { group = g; _ } when String.equal g reg_gid ->
        decr depth;
        if !depth < 0 then Alcotest.fail "register wait underflow"
      | _ -> ())
    trace

let test_wait_follows_commit_order () =
  (* For the shared group the same no-underflow property must hold. *)
  let trace, groups = build () in
  let gid =
    (List.find
       (fun (g : Alcop_pipeline.Analysis.group) ->
         g.Alcop_pipeline.Analysis.synchronized)
       groups)
      .Alcop_pipeline.Analysis.id
  in
  let depth = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Trace.Commit { group = g; _ } when String.equal g gid -> incr depth
      | Trace.Wait_oldest { group = g; _ } when String.equal g gid ->
        decr depth;
        if !depth < 0 then Alcotest.fail "shared wait underflow"
      | _ -> ())
    trace

let test_warp_aggregation () =
  (* Register loads are per warp; with 4 warps the trace bytes must scale. *)
  let trace, _ = build ~smem_stages:1 ~reg_stages:1 () in
  let stats = Trace.stats_of trace in
  (* per ki: (warp_m + warp_n) * warp_k * 2B * 4 warps; 2 ki x 8 ko *)
  let expected = (32 + 32) * 16 * 2 * 4 * 2 * 8 in
  Alcotest.(check int) "shared bytes" expected stats.Trace.shared_load_bytes

let suite =
  [ ( "trace",
      [ Alcotest.test_case "flops exact" `Quick test_flops_exact;
        Alcotest.test_case "global bytes" `Quick test_global_bytes;
        Alcotest.test_case "store bytes" `Quick test_store_bytes;
        Alcotest.test_case "unpipelined trace" `Quick test_unpipelined_trace_shape;
        Alcotest.test_case "smem sync events" `Quick test_smem_pipeline_sync_events;
        Alcotest.test_case "register pipeline synthesis" `Quick
          test_register_pipeline_synthesis;
        Alcotest.test_case "wait follows commit" `Quick test_wait_follows_commit_order;
        Alcotest.test_case "warp aggregation" `Quick test_warp_aggregation ] ) ]
