(* Timing simulator tests: occupancy, locality, and directional sanity of
   the event-driven engine (pipelining helps where it should). *)

open Alcop_sched
open Alcop_gpusim

let hw = Alcop_hw.Hw_config.ampere_a100

(* --- occupancy --- *)

let test_occupancy_basic () =
  match Occupancy.compute hw ~smem_per_tb:(32 * 1024) ~warps_per_tb:4 ~regs_per_thread:64 with
  | Error f -> Alcotest.failf "unexpected failure: %a" Occupancy.pp_failure f
  | Ok o ->
    (* smem: 164KB/32KB = 5; regs: 65536/(64*128) = 8; threads: 2048/128=16 *)
    Alcotest.(check int) "tbs" 5 o.Occupancy.tbs_per_sm;
    Alcotest.(check string) "limiter" "shared memory" o.Occupancy.limiter

let test_occupancy_register_limited () =
  match Occupancy.compute hw ~smem_per_tb:1024 ~warps_per_tb:8 ~regs_per_thread:128 with
  | Error f -> Alcotest.failf "unexpected failure: %a" Occupancy.pp_failure f
  | Ok o ->
    (* regs: 65536 / (128 * 256) = 2 *)
    Alcotest.(check int) "tbs" 2 o.Occupancy.tbs_per_sm;
    Alcotest.(check string) "limiter" "registers" o.Occupancy.limiter

let test_occupancy_too_much_smem () =
  match Occupancy.compute hw ~smem_per_tb:(200 * 1024) ~warps_per_tb:4 ~regs_per_thread:64 with
  | Error f ->
    Alcotest.(check string) "resource" "shared memory per threadblock"
      f.Occupancy.resource
  | Ok _ -> Alcotest.fail "200KB per threadblock must fail"

let test_occupancy_too_many_regs () =
  match Occupancy.compute hw ~smem_per_tb:1024 ~warps_per_tb:4 ~regs_per_thread:300 with
  | Error f -> Alcotest.(check string) "resource" "registers per thread" f.Occupancy.resource
  | Ok _ -> Alcotest.fail "300 regs per thread must fail"

(* --- locality --- *)

let test_locality_single_tb () =
  let l =
    Locality.compute hw ~grid_m:8 ~grid_n:8 ~grid_z:1 ~tb_m:64 ~tb_n:64
      ~tb_k:32 ~elem_bytes:2 ~resident_tbs:1
  in
  (* a single resident threadblock shares nothing *)
  Alcotest.(check (float 1e-9)) "no sharing" 1.0 l.Locality.miss_rate

let test_locality_row_sharing () =
  let l =
    Locality.compute hw ~grid_m:8 ~grid_n:8 ~grid_z:1 ~tb_m:64 ~tb_n:64
      ~tb_k:32 ~elem_bytes:2 ~resident_tbs:8
  in
  (* 8 TBs in one grid row share the same A tile: unique = 1*A + 8*B of 16
     total halves -> miss = (64 + 8*64) / (8 * 128) *)
  Alcotest.(check (float 1e-6)) "row sharing"
    (float_of_int ((1 * 64) + (8 * 64)) /. float_of_int (8 * 128))
    l.Locality.miss_rate

let test_locality_monotone_in_residents () =
  let miss r =
    (Locality.compute hw ~grid_m:16 ~grid_n:16 ~grid_z:1 ~tb_m:64 ~tb_n:64
       ~tb_k:32 ~elem_bytes:2 ~resident_tbs:r)
      .Locality.miss_rate
  in
  Alcotest.(check bool) "more residents share more" true (miss 64 <= miss 4)

(* --- end-to-end timing directionality --- *)

let spec_longk = Op_spec.matmul ~name:"timing_longk" ~m:1024 ~n:64 ~k:2048 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let cycles_of ?(spec = spec_longk) ?(smem_stages = 1) ?(reg_stages = 1) () =
  let p =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ()
  in
  match Alcop.Compiler.compile ~hw p spec with
  | Ok c -> c.Alcop.Compiler.latency_cycles
  | Error e -> Alcotest.failf "compile failed: %s" (Alcop.Compiler.error_to_string e)

let test_pipelining_speeds_up_long_reduction () =
  let base = cycles_of () in
  let pipelined = cycles_of ~smem_stages:3 ~reg_stages:2 () in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined (%.0f) < base (%.0f)" pipelined base)
    true (pipelined < base)

let test_multistage_beats_double_buffer () =
  let db = cycles_of ~smem_stages:2 () in
  let ms = cycles_of ~smem_stages:4 () in
  Alcotest.(check bool)
    (Printf.sprintf "4-stage (%.0f) <= 2-stage (%.0f)" ms db)
    true (ms <= db)

let test_determinism () =
  let a = cycles_of ~smem_stages:3 ~reg_stages:2 () in
  let b = cycles_of ~smem_stages:3 ~reg_stages:2 () in
  Alcotest.(check (float 0.0)) "deterministic" a b

let test_more_work_takes_longer () =
  let small = Op_spec.matmul ~name:"timing_small" ~m:256 ~n:64 ~k:512 () in
  let s = cycles_of ~spec:small ~smem_stages:3 ~reg_stages:2 () in
  let l = cycles_of ~smem_stages:3 ~reg_stages:2 () in
  Alcotest.(check bool) "8x flops is slower" true (l > s *. 2.0)

let test_oversized_schedule_fails () =
  (* 8 pipeline stages of a 256x128x64 tile exceed shared memory. *)
  let big =
    Tiling.make ~tb_m:256 ~tb_n:128 ~tb_k:64 ~warp_m:64 ~warp_n:64 ~warp_k:32 ()
  in
  let spec = Op_spec.matmul ~name:"timing_big" ~m:1024 ~n:1024 ~k:1024 () in
  let p = Alcop_perfmodel.Params.make ~tiling:big ~smem_stages:4 ~reg_stages:2 () in
  match Alcop.Compiler.compile ~hw p spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "4-stage 256x128x64 tiles must exceed shared memory"

let test_wave_quantization_visible () =
  (* Doubling the grid with identical per-TB work roughly doubles waves. *)
  let one = cycles_of ~spec:(Op_spec.matmul ~name:"w1" ~m:2048 ~n:512 ~k:512 ())
      ~smem_stages:3 ~reg_stages:2 () in
  let two = cycles_of ~spec:(Op_spec.matmul ~name:"w2" ~m:4096 ~n:512 ~k:512 ())
      ~smem_stages:3 ~reg_stages:2 () in
  Alcotest.(check bool) "double grid slower" true (two > one *. 1.5)

let test_bank_conflicts_hurt () =
  let swz =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()
  in
  let noswz =
    Alcop_perfmodel.Params.make ~swizzle:false ~tiling ~smem_stages:3
      ~reg_stages:2 ()
  in
  let c p =
    match Alcop.Compiler.compile ~hw p spec_longk with
    | Ok c -> c.Alcop.Compiler.latency_cycles
    | Error e -> Alcotest.failf "compile failed: %s" (Alcop.Compiler.error_to_string e)
  in
  Alcotest.(check bool) "no swizzle slower" true (c noswz > c swz)

let suite =
  [ ( "timing",
      [ Alcotest.test_case "occupancy basic" `Quick test_occupancy_basic;
        Alcotest.test_case "occupancy register limited" `Quick
          test_occupancy_register_limited;
        Alcotest.test_case "occupancy smem overflow" `Quick
          test_occupancy_too_much_smem;
        Alcotest.test_case "occupancy regs overflow" `Quick
          test_occupancy_too_many_regs;
        Alcotest.test_case "locality single tb" `Quick test_locality_single_tb;
        Alcotest.test_case "locality row sharing" `Quick test_locality_row_sharing;
        Alcotest.test_case "locality monotone" `Quick
          test_locality_monotone_in_residents;
        Alcotest.test_case "pipelining speeds up long reduction" `Quick
          test_pipelining_speeds_up_long_reduction;
        Alcotest.test_case "multi-stage beats double buffer" `Quick
          test_multistage_beats_double_buffer;
        Alcotest.test_case "deterministic" `Quick test_determinism;
        Alcotest.test_case "more work takes longer" `Quick test_more_work_takes_longer;
        Alcotest.test_case "oversized schedule fails" `Quick
          test_oversized_schedule_fails;
        Alcotest.test_case "wave quantization" `Quick test_wave_quantization_visible;
        Alcotest.test_case "bank conflicts hurt" `Quick test_bank_conflicts_hurt ] ) ]
