(* Split-K reduction parallelism: lowering structure, functional
   correctness through the two-kernel chain, schedule-space integration and
   its performance role (restoring parallelism on small-output
   long-reduction shapes — the job pipelining competes with). *)

open Alcop_ir
open Alcop_sched
open Alcop

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"splitk" ~m:64 ~n:64 ~k:256 ()

let tiling ?(split_k = 4) () =
  Tiling.make ~split_k ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16
    ~warp_k:16 ()

let test_tiling_validation () =
  (match Tiling.validate (tiling ()) spec with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (* 256/16 = 16 K iterations; split 5 does not divide *)
  match Tiling.validate (tiling ~split_k:5 ()) spec with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "split 5 of 16 iterations must be invalid"

let test_derived_quantities () =
  let t = tiling () in
  Alcotest.(check int) "threadblocks x split" (2 * 2 * 4)
    (Tiling.threadblocks t spec);
  Alcotest.(check int) "per-TB k iterations" 4 (Tiling.k_iters t spec);
  Alcotest.(check bool) "to_string mentions split" true
    (String.length (Tiling.to_string t) > 0
     && Tiling.to_string t <> Tiling.to_string (tiling ~split_k:1 ()))

let lowered ?split_k () =
  Lower.run
    (Schedule.default_gemm ~smem_stages:2 ~reg_stages:1 spec
       (tiling ?split_k ()))

let test_lowering_structure () =
  let l = lowered () in
  (* main kernel writes a workspace with a leading split dimension *)
  (match l.Lower.kernel.Kernel.outputs with
   | [ b ] ->
     Alcotest.(check string) "workspace name" "C_partial" b.Buffer.name;
     Alcotest.(check (list int)) "workspace shape" [ 4; 64; 64 ] b.Buffer.shape
   | _ -> Alcotest.fail "expected one output");
  Alcotest.(check bool) "sk loop present" true
    (List.mem "sk" (Stmt.loop_vars l.Lower.kernel.Kernel.body));
  (* a reduce kernel exists, reading the workspace and writing C *)
  match l.Lower.reduce with
  | None -> Alcotest.fail "expected a reduce kernel"
  | Some r ->
    Alcotest.(check string) "reduce input" "C_partial"
      (List.hd r.Kernel.inputs).Buffer.name;
    Alcotest.(check string) "reduce output" "C"
      (List.hd r.Kernel.outputs).Buffer.name;
    Alcotest.(check int) "accumulations" 1
      (Stmt.count (function Stmt.Accum _ -> true | _ -> false) r.Kernel.body)

let test_no_split_no_reduce () =
  let l = lowered ~split_k:1 () in
  Alcotest.(check bool) "no reduce kernel" true (l.Lower.reduce = None);
  match l.Lower.kernel.Kernel.outputs with
  | [ b ] -> Alcotest.(check string) "direct output" "C" b.Buffer.name
  | _ -> Alcotest.fail "expected one output"

let test_epilogue_moves_to_reduce () =
  let s = Op_spec.matmul ~name:"splitk_ep" ~m:64 ~n:64 ~k:256 ~epilogue:"relu" () in
  let l = Lower.run (Schedule.default_gemm ~smem_stages:1 ~reg_stages:1 s (tiling ())) in
  (* the main kernel's writeback must NOT apply the op (partials are summed
     first), the reduce kernel must. *)
  Alcotest.(check int) "no fused epilogue in main" 0
    (Stmt.count
       (function Stmt.Copy { fused = Some _; _ } -> true | _ -> false)
       l.Lower.kernel.Kernel.body);
  match l.Lower.reduce with
  | Some r ->
    Alcotest.(check int) "unop in reduce" 1
      (Stmt.count
         (function Stmt.Unop { op = "relu"; _ } -> true | _ -> false)
         r.Kernel.body)
  | None -> Alcotest.fail "expected reduce kernel"

let test_functional_correctness () =
  List.iter
    (fun (split_k, smem_stages, reg_stages, epilogue) ->
      let s =
        Op_spec.matmul ~name:(Printf.sprintf "splitk_f%d" split_k) ?epilogue
          ~m:64 ~n:64 ~k:256 ()
      in
      let p =
        Alcop_perfmodel.Params.make ~tiling:(tiling ~split_k ()) ~smem_stages
          ~reg_stages ()
      in
      match Compiler.compile ~hw p s with
      | Error e -> Alcotest.fail (Compiler.error_to_string e)
      | Ok c ->
        (match Compiler.verify ~atol:1e-9 c with
         | Ok _ -> ()
         | Error d ->
           Alcotest.failf "split=%d stages=%d/%d: mismatch %g" split_k
             smem_stages reg_stages d))
    [ (2, 1, 1, None); (2, 3, 2, None); (4, 3, 2, None); (4, 2, 1, Some "relu");
      (8, 4, 2, None) ]

let test_split_in_space_for_small_grids () =
  let small = Alcop_workloads.Suites.mm_rn50_fc in
  let space = Variants.space Variants.alcop small in
  let has_split =
    Array.exists
      (fun (p : Alcop_perfmodel.Params.t) ->
        p.Alcop_perfmodel.Params.tiling.Tiling.split_k > 1)
      space
  in
  Alcotest.(check bool) "small-output shape gets split-K points" true has_split;
  (* a huge grid should not *)
  let big = Op_spec.matmul ~name:"splitk_big" ~m:4096 ~n:4096 ~k:64 () in
  let space_big = Variants.space Variants.alcop big in
  let has_split_big =
    Array.exists
      (fun (p : Alcop_perfmodel.Params.t) ->
        p.Alcop_perfmodel.Params.tiling.Tiling.split_k > 1)
      space_big
  in
  Alcotest.(check bool) "huge grid gets none" false has_split_big

let test_split_helps_low_parallelism_baseline () =
  (* On the paper's most parallelism-starved shape, the unpipelined
     baseline must prefer a split-K schedule over no split. *)
  let s = Alcop_workloads.Suites.mm_rn50_fc in
  match Variants.best_point ~hw Variants.tvm s with
  | Some (p, _) ->
    Alcotest.(check bool) "TVM best uses split-K" true
      (p.Alcop_perfmodel.Params.tiling.Tiling.split_k > 1)
  | None -> Alcotest.fail "no TVM schedule"

let test_reduce_cost_positive_and_monotone () =
  let c2 = Alcop_perfmodel.Reduce_cost.cycles hw spec ~split_k:2 in
  let c8 = Alcop_perfmodel.Reduce_cost.cycles hw spec ~split_k:8 in
  Alcotest.(check (float 1e-9)) "off" 0.0
    (Alcop_perfmodel.Reduce_cost.cycles hw spec ~split_k:1);
  Alcotest.(check bool) "positive" true (c2 > 0.0);
  Alcotest.(check bool) "monotone in split" true (c8 > c2)

let test_model_accounts_for_reduce () =
  let p1 =
    Alcop_perfmodel.Params.make ~tiling:(tiling ~split_k:1 ()) ~smem_stages:1
      ~reg_stages:1 ()
  in
  let p4 =
    Alcop_perfmodel.Params.make ~tiling:(tiling ~split_k:4 ()) ~smem_stages:1
      ~reg_stages:1 ()
  in
  match
    ( Alcop_perfmodel.Model.predict_cycles hw spec p1,
      Alcop_perfmodel.Model.predict_cycles hw spec p4 )
  with
  | Some _, Some c4 ->
    Alcotest.(check bool) "split prediction includes reduce cost" true
      (c4 > Alcop_perfmodel.Reduce_cost.cycles hw spec ~split_k:4)
  | _ -> Alcotest.fail "model must predict both"

let suite =
  [ ( "splitk",
      [ Alcotest.test_case "tiling validation" `Quick test_tiling_validation;
        Alcotest.test_case "derived quantities" `Quick test_derived_quantities;
        Alcotest.test_case "lowering structure" `Quick test_lowering_structure;
        Alcotest.test_case "no split, no reduce" `Quick test_no_split_no_reduce;
        Alcotest.test_case "epilogue moves to reduce" `Quick
          test_epilogue_moves_to_reduce;
        Alcotest.test_case "functional correctness" `Quick
          test_functional_correctness;
        Alcotest.test_case "split in space for small grids" `Quick
          test_split_in_space_for_small_grids;
        Alcotest.test_case "split helps starved baseline" `Slow
          test_split_helps_low_parallelism_baseline;
        Alcotest.test_case "reduce cost" `Quick
          test_reduce_cost_positive_and_monotone;
        Alcotest.test_case "model accounts for reduce" `Quick
          test_model_accounts_for_reduce ] ) ]
