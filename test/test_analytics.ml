(* Tests for the trace analytics layer: histogram bucket math and
   percentiles, the live-session -> JSONL -> Trace_reader round-trip (a
   QCheck property over random instrumentation scripts), span-tree
   reconstruction and critical-path extraction, trace diffs, the golden
   text of `alcop trace summary`, and the stall-diff invariant on two real
   fig 2/3 pipeline variants: per-class cycle deltas sum exactly to the
   critical threadblock's cycle delta. *)

open Alcop_obs

(* A deterministic clock: strictly increasing 1 ms per read. *)
let install_fake_clock () =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      t := !t +. 0.001;
      !t)

let with_fresh f =
  Obs.reset ();
  install_fake_clock ();
  Fun.protect ~finally:Obs.reset f

(* --- histograms --- *)

let test_hist_empty_and_single () =
  let h = Obs.hist_empty () in
  Alcotest.(check bool) "empty p50 is nan" true
    (Float.is_nan (Obs.hist_percentile h 0.5));
  let h = Obs.hist_observe h 42.0 in
  Alcotest.(check int) "count" 1 h.Obs.h_count;
  (* single observation: every quantile is clamped to the exact value *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%.0f exact" (100.0 *. q))
        42.0
        (Obs.hist_percentile h q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_hist_percentile_accuracy () =
  (* 1..1000: the q-quantile is ~1000q; log buckets bound relative error
     at 10^(1/8)-1 ~ 33% *)
  let values = List.init 1000 (fun i -> float_of_int (i + 1)) in
  let h = Obs.hist_of_values values in
  Alcotest.(check int) "count" 1000 h.Obs.h_count;
  List.iter
    (fun q ->
      let exact = 1000.0 *. q in
      let est = Obs.hist_percentile h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within bucket resolution" (100.0 *. q))
        true
        (Float.abs (est -. exact) /. exact < 0.34))
    [ 0.5; 0.9; 0.99 ]

let test_hist_merge_equals_combined () =
  let a = [ 1e-3; 4.0; 17.0; 2.5e6 ] and b = [ 0.0; 9.9; 1e-12 ] in
  let merged = Obs.hist_merge (Obs.hist_of_values a) (Obs.hist_of_values b) in
  let combined = Obs.hist_of_values (a @ b) in
  Alcotest.(check int) "count" combined.Obs.h_count merged.Obs.h_count;
  Alcotest.(check (float 1e-12)) "sum" combined.Obs.h_sum merged.Obs.h_sum;
  Alcotest.(check (float 1e-12)) "min" combined.Obs.h_min merged.Obs.h_min;
  Alcotest.(check (float 1e-12)) "max" combined.Obs.h_max merged.Obs.h_max;
  Alcotest.(check (array int)) "buckets" combined.Obs.h_buckets
    merged.Obs.h_buckets

let test_hist_bucket_edges () =
  (* each value lands in a bucket whose [lo, hi) range contains it — up to
     one ulp of slack at exact decade boundaries, where log10/pow rounding
     can push a value one bucket either way *)
  List.iter
    (fun v ->
      let i = Obs.hist_bucket_index v in
      Alcotest.(check bool)
        (Printf.sprintf "%g >= lo" v)
        true
        (v >= Obs.hist_bucket_lo i *. (1.0 -. 1e-9) || i = 0);
      Alcotest.(check bool) (Printf.sprintf "%g < hi" v) true
        (v < Obs.hist_bucket_hi i *. (1.0 +. 1e-9)))
    [ 0.0; 1e-10; 1e-9; 1.0; 3.7; 1e3; 9.99e8; 1e20 ]

(* --- live session -> JSONL -> Trace_reader round-trip --- *)

type op =
  | Count of string * int
  | Gauge of string * float
  | Observe of string * float
  | Point of string
  | Span of string * op list

let rec exec = function
  | Count (n, k) -> Obs.count ~n:k n
  | Gauge (n, v) -> Obs.gauge n v
  | Observe (n, v) -> Obs.observe n v
  | Point n -> Obs.point n []
  | Span (n, ops) -> Obs.with_span n (fun () -> List.iter exec ops)

(* Expected span forest of a script: name + children, in order. *)
type shape = Shape of string * shape list

let rec expected_spans op =
  match op with
  | Span (n, ops) -> [ Shape (n, List.concat_map expected_spans ops) ]
  | _ -> []

let rec actual_spans (s : Trace_reader.span) =
  Shape
    (s.Trace_reader.sp_name,
     List.map actual_spans s.Trace_reader.sp_children)

let shape_testable : shape list Alcotest.testable =
  let rec pp fmt l =
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list (fun fmt (Shape (n, cs)) ->
           Format.fprintf fmt "%s%a" n pp cs))
      l
  in
  Alcotest.testable pp ( = )

let op_gen =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "load.g0" ] in
  sized_size (int_bound 12) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [ map2 (fun s k -> Count (s, k)) name (int_range 1 5);
            map2 (fun s v -> Gauge (s, v)) name (float_bound_exclusive 1e6);
            map2 (fun s v -> Observe (s, v)) name (float_bound_exclusive 1e4);
            map (fun s -> Point s) name ]
      else
        map2 (fun s ops -> Span (s, ops)) name
          (list_size (int_bound 3) (self (n / 2))))

let hist_equal (a : Obs.histogram) (b : Obs.histogram) =
  a.Obs.h_count = b.Obs.h_count
  && a.Obs.h_sum = b.Obs.h_sum
  && a.Obs.h_min = b.Obs.h_min
  && a.Obs.h_max = b.Obs.h_max
  && a.Obs.h_buckets = b.Obs.h_buckets

let prop_jsonl_roundtrip =
  QCheck.Test.make ~count:100 ~name:"jsonl -> trace_reader round-trip"
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 6) op_gen))
    (fun script ->
      Obs.reset ();
      install_fake_clock ();
      let buf = Buffer.create 1024 in
      Obs.add_sink (Sinks.jsonl (Buffer.add_string buf));
      List.iter exec script;
      let live_counters = Obs.counters () in
      let live_gauges = Obs.gauges () in
      let live_hists = Obs.histograms () in
      Obs.reset ();
      match Trace_reader.trace_of_jsonl (Buffer.contents buf) with
      | Error e -> QCheck.Test.fail_report e
      | Ok trace ->
        trace.Trace_reader.tr_counters = live_counters
        && trace.Trace_reader.tr_gauges = live_gauges
        && List.length trace.Trace_reader.tr_hists = List.length live_hists
        && List.for_all2
             (fun (n1, h1) (n2, h2) -> n1 = n2 && hist_equal h1 h2)
             trace.Trace_reader.tr_hists live_hists
        && List.map actual_spans trace.Trace_reader.tr_spans
           = List.concat_map expected_spans script)

let test_span_tree_reconstruction () =
  with_fresh @@ fun () ->
  let buf = Buffer.create 256 in
  Obs.add_sink (Sinks.jsonl (Buffer.add_string buf));
  Obs.with_span "compile" (fun () ->
      Obs.with_span "lower" (fun () -> ());
      Obs.with_span "pipeline" (fun () ->
          Obs.with_span "analysis" (fun () -> ())));
  Obs.with_span "simulate" (fun () -> ());
  Obs.reset ();
  match Trace_reader.trace_of_jsonl (Buffer.contents buf) with
  | Error e -> Alcotest.fail e
  | Ok trace ->
    Alcotest.check shape_testable "forest shape"
      [ Shape
          ("compile",
           [ Shape ("lower", []); Shape ("pipeline", [ Shape ("analysis", []) ]) ]);
        Shape ("simulate", []) ]
      (List.map actual_spans trace.Trace_reader.tr_spans);
    Alcotest.(check int) "span count" 5 (Trace_reader.span_count trace)

(* --- corruption tolerance: skip and count, never raise --- *)

let test_corrupt_jsonl_skipped_and_counted () =
  with_fresh @@ fun () ->
  let buf = Buffer.create 256 in
  Obs.add_sink (Sinks.jsonl (Buffer.add_string buf));
  Obs.with_span "compile" (fun () -> Obs.count "cache.miss");
  Obs.with_span "simulate" (fun () -> ());
  Obs.reset ();
  (* splice garbage between the real lines: truncated JSON, non-JSON, and
     JSON that is not an event — all three must be skipped and counted *)
  let good = String.split_on_char '\n' (Buffer.contents buf) in
  let corrupted =
    String.concat "\n"
      (List.concat_map
         (fun l -> [ l; {|{"type":"span","name":"torn|}; "!!garbage!!" ])
         (List.filter (fun l -> String.trim l <> "") good)
      @ [ {|{"no":"type field"}|} ])
  in
  (match Trace_reader.trace_of_jsonl corrupted with
   | Error e -> Alcotest.fail e
   | Ok trace ->
     Alcotest.(check int) "all real spans survive" 2
       (Trace_reader.span_count trace);
     Alcotest.(check int) "counter survives" 1
       (Trace_reader.counter trace "cache.miss");
     (* 2 garbage lines per good line + the typeless object *)
     Alcotest.(check int) "skips counted"
       ((2 * List.length (List.filter (fun l -> String.trim l <> "") good)) + 1)
       trace.Trace_reader.tr_skipped;
     let summary = Analytics.summary_lines trace in
     Alcotest.(check bool) "summary warns about skips" true
       (List.exists
          (fun l ->
            String.length l >= 8 && String.sub l 0 8 = "warning:")
          summary));
  (* the same stream through a file and [load], with on_skip observation *)
  let path = Filename.temp_file "alcop_corrupt" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc corrupted;
  close_out oc;
  match Trace_reader.load path with
  | Error e -> Alcotest.fail e
  | Ok trace ->
    Alcotest.(check int) "file path counts too"
      ((2 * List.length (List.filter (fun l -> String.trim l <> "") good)) + 1)
      trace.Trace_reader.tr_skipped

(* Fuzz: corrupt random bytes of a valid JSONL stream; the reader must
   never raise, and parsed events + skipped lines must account for every
   non-blank line. *)
let prop_corruption_never_raises =
  let count_nonblank text =
    List.length
      (List.filter
         (fun l -> String.trim l <> "")
         (String.split_on_char '\n' text))
  in
  QCheck.Test.make ~count:100 ~name:"random byte corruption never raises"
    QCheck.(
      pair
        (make (Gen.list_size (Gen.int_bound 4) op_gen))
        (small_list (pair small_nat printable_char)))
    (fun (script, edits) ->
      Obs.reset ();
      install_fake_clock ();
      let buf = Buffer.create 512 in
      Obs.add_sink (Sinks.jsonl (Buffer.add_string buf));
      List.iter exec script;
      Obs.reset ();
      let text = Bytes.of_string (Buffer.contents buf) in
      List.iter
        (fun (pos, c) ->
          if Bytes.length text > 0 then
            Bytes.set text (pos mod Bytes.length text) c)
        edits;
      let corrupted = Bytes.to_string text in
      match Trace_reader.trace_of_jsonl corrupted with
      | Error e -> QCheck.Test.fail_report e
      | Ok trace ->
        trace.Trace_reader.tr_events + trace.Trace_reader.tr_skipped
        = count_nonblank corrupted)

(* --- critical path --- *)

let test_critical_path () =
  with_fresh @@ fun () ->
  let buf = Buffer.create 256 in
  Obs.add_sink (Sinks.jsonl (Buffer.add_string buf));
  (* clock ticks once per now(): with_span costs 2 ticks + body. "slow"
     encloses more ticks than "fast", so the path must descend into it. *)
  Obs.with_span "root" (fun () ->
      Obs.with_span "fast" (fun () -> ());
      Obs.with_span "slow" (fun () ->
          Obs.with_span "inner" (fun () -> ());
          Obs.with_span "inner2" (fun () -> ignore (Obs.now ()))));
  Obs.reset ();
  match Trace_reader.trace_of_jsonl (Buffer.contents buf) with
  | Error e -> Alcotest.fail e
  | Ok trace ->
    let path = Analytics.critical_path_of_trace trace in
    Alcotest.(check (list string)) "path names"
      [ "root"; "slow"; "inner2" ]
      (List.map (fun n -> n.Analytics.cn_name) path);
    (* self + chosen child telescopes down the path *)
    (match path with
     | r :: s :: _ ->
       Alcotest.(check bool) "root self < root dur" true
         (r.Analytics.cn_self < r.Analytics.cn_dur);
       Alcotest.(check (float 1e-9)) "telescoping" r.Analytics.cn_dur
         (r.Analytics.cn_self +. s.Analytics.cn_dur)
     | _ -> Alcotest.fail "path too short")

(* --- span diff --- *)

let trace_of_script script =
  Obs.reset ();
  install_fake_clock ();
  let buf = Buffer.create 256 in
  Obs.add_sink (Sinks.jsonl (Buffer.add_string buf));
  List.iter exec script;
  Obs.reset ();
  match Trace_reader.trace_of_jsonl (Buffer.contents buf) with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_diff_spans () =
  let old_trace =
    trace_of_script [ Span ("stable", []); Span ("gone", [ Point "x" ]) ]
  in
  let new_trace =
    trace_of_script [ Span ("stable", []); Span ("added", []) ]
  in
  let deltas = Analytics.diff_spans ~old_trace ~new_trace in
  let find n = List.find (fun d -> d.Analytics.sd_name = n) deltas in
  Alcotest.(check int) "three names" 3 (List.length deltas);
  Alcotest.(check bool) "gone has no new side" true
    ((find "gone").Analytics.sd_new_total = None);
  Alcotest.(check bool) "added has no old side" true
    ((find "added").Analytics.sd_old_total = None);
  Alcotest.(check bool) "added delta positive" true
    ((find "added").Analytics.sd_delta > 0.0);
  Alcotest.(check bool) "gone delta negative" true
    ((find "gone").Analytics.sd_delta < 0.0)

(* --- stall diff: synthetic --- *)

let test_stall_diff_sums_synthetic () =
  let old_stalls = [ ("compute", 60.0); ("dram_bw", 40.0) ] in
  let new_stalls = [ ("compute", 50.0); ("sync_wait", 10.0) ] in
  let deltas = Analytics.diff_stalls ~old_stalls ~new_stalls in
  Alcotest.(check int) "union of classes" 3 (List.length deltas);
  let to_, tn, td = Analytics.stall_total deltas in
  Alcotest.(check (float 1e-12)) "old total" 100.0 to_;
  Alcotest.(check (float 1e-12)) "new total" 60.0 tn;
  Alcotest.(check (float 1e-12)) "deltas sum to total delta" (tn -. to_) td

(* --- stall diff: two real fig 2/3 variants through the JSONL path --- *)

let profile_jsonl_trace ~smem_stages ~reg_stages =
  let spec =
    match Alcop_workloads.Suites.find "MM_RN50_FC" with
    | Some s -> s
    | None -> Alcotest.fail "MM_RN50_FC missing from the suite"
  in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ()
  in
  let hw = Alcop_hw.Hw_config.default in
  match Alcop.Compiler.compile ~hw params spec with
  | Error e ->
    Alcotest.failf "compile failed: %s" (Alcop.Compiler.error_to_string e)
  | Ok c ->
    (match
       Alcop_gpusim.Profile.run ~op:"MM_RN50_FC"
         ~groups:c.Alcop.Compiler.groups c.Alcop.Compiler.timing_request
     with
     | Error f ->
       Alcotest.failf "profile failed: %a" Alcop_gpusim.Occupancy.pp_failure f
     | Ok p ->
       let path = Filename.temp_file "alcop_profile" ".jsonl" in
       Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
       Alcop_gpusim.Profile.write_jsonl path p;
       (match Trace_reader.load path with
        | Error e -> Alcotest.fail e
        | Ok trace -> (p, trace)))

let test_fig23_stall_diff_accounts_for_cycle_delta () =
  let old_p, old_trace = profile_jsonl_trace ~smem_stages:1 ~reg_stages:1 in
  let new_p, new_trace = profile_jsonl_trace ~smem_stages:3 ~reg_stages:2 in
  (* the JSONL gauges reproduce Profile.stall_breakdown exactly *)
  let from_trace = Analytics.stall_breakdown_of_trace old_trace in
  let direct = Alcop_gpusim.Profile.stall_breakdown old_p in
  List.iter
    (fun (cls, cyc) ->
      match List.assoc_opt cls from_trace with
      | None -> Alcotest.failf "class %s missing from trace" cls
      | Some v -> Alcotest.(check (float 1e-6)) ("class " ^ cls) cyc v)
    direct;
  (* per-class deltas sum exactly to the critical threadblock cycle delta *)
  let critical_cycles (p : Alcop_gpusim.Profile.t) =
    match Alcop_gpusim.Profile.representative p with
    | None -> Alcotest.fail "no wave"
    | Some w ->
      w.Alcop_gpusim.Profile.w_tbs.(w.Alcop_gpusim.Profile.w_critical)
        .Alcop_gpusim.Profile.tb_cycles
  in
  let deltas =
    Analytics.diff_stalls
      ~old_stalls:(Analytics.stall_breakdown_of_trace old_trace)
      ~new_stalls:(Analytics.stall_breakdown_of_trace new_trace)
  in
  let to_, tn, td = Analytics.stall_total deltas in
  let tol = 1e-6 *. Float.max 1.0 (critical_cycles old_p) in
  Alcotest.(check (float tol)) "old side telescopes" (critical_cycles old_p) to_;
  Alcotest.(check (float tol)) "new side telescopes" (critical_cycles new_p) tn;
  Alcotest.(check (float tol)) "deltas sum to cycle delta"
    (critical_cycles new_p -. critical_cycles old_p)
    td;
  (* and pipelining did speed the kernel up *)
  Alcotest.(check bool) "pipelined faster" true (td < 0.0);
  (* the rendered diff table carries a total row *)
  let lines = Analytics.diff_lines ~old_trace ~new_trace in
  Alcotest.(check bool) "diff prints stall table" true
    (List.exists
       (fun l ->
         String.length l >= 5 && String.sub l 0 5 = "total")
       lines)

(* --- golden trace summary --- *)

let test_trace_summary_golden () =
  let trace =
    trace_of_script
      [ Span ("compile", [ Span ("lower", []); Count ("cache.miss", 1) ]);
        Gauge ("pass.lower.ms", 2.5);
        Observe ("timing.kernel.cycles", 1000.0) ]
  in
  let lines = Analytics.summary_lines trace in
  let expect =
    [ "trace: 7 events, 2 spans, 1 roots";
      "-- spans by total time --";
      "name                                      count        total         self        p50        p90        p99";
      "compile                                       1        0.004        0.003      0.004      0.004      0.004";
      "lower                                         1        0.001        0.001      0.001      0.001      0.001";
      "-- critical path --";
      "compile                                         0.004 (self 0.003)";
      "  lower                                         0.001 (self 0.001)";
      "-- counters --";
      "cache.miss                                          1";
      "-- gauges --";
      "pass.lower.ms                                     2.5";
      "-- histograms --";
      "name                                      count          sum        p50        p90        p99";
      "timing.kernel.cycles                          1         1000       1000       1000       1000" ]
  in
  Alcotest.(check (list string)) "summary text" expect lines

let suite =
  [ ( "analytics",
      [ Alcotest.test_case "hist empty and single" `Quick
          test_hist_empty_and_single;
        Alcotest.test_case "hist percentile accuracy" `Quick
          test_hist_percentile_accuracy;
        Alcotest.test_case "hist merge" `Quick test_hist_merge_equals_combined;
        Alcotest.test_case "hist bucket edges" `Quick test_hist_bucket_edges;
        QCheck_alcotest.to_alcotest prop_jsonl_roundtrip;
        Alcotest.test_case "corrupt jsonl skipped and counted" `Quick
          test_corrupt_jsonl_skipped_and_counted;
        QCheck_alcotest.to_alcotest prop_corruption_never_raises;
        Alcotest.test_case "span tree reconstruction" `Quick
          test_span_tree_reconstruction;
        Alcotest.test_case "critical path" `Quick test_critical_path;
        Alcotest.test_case "span diff" `Quick test_diff_spans;
        Alcotest.test_case "stall diff sums (synthetic)" `Quick
          test_stall_diff_sums_synthetic;
        Alcotest.test_case "fig23 stall diff accounts for cycle delta" `Slow
          test_fig23_stall_diff_accounts_for_cycle_delta;
        Alcotest.test_case "trace summary golden" `Quick
          test_trace_summary_golden ] ) ]
