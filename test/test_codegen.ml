(* CUDA backend tests: the rendered source must reflect the pipelined
   structure — pipeline object declarations with the right depth, async
   copies, shifted indices, boundary waits — and be shaped like valid
   CUDA (balanced braces, C identifiers). *)

open Alcop_sched
open Alcop

let hw = Alcop_hw.Hw_config.ampere_a100

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    i + m <= n && (String.equal (String.sub haystack i m) needle || go (i + 1))
  in
  go 0

let count_substring haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i acc =
    if i + m > n then acc
    else if String.equal (String.sub haystack i m) needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let render ?(smem_stages = 3) ?(reg_stages = 2) ?(split_k = 1) () =
  let spec = Op_spec.matmul ~name:"cg_test" ~m:128 ~n:128 ~k:256 () in
  let tiling =
    Tiling.make ~split_k ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let p = Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages () in
  match Compiler.compile ~hw p spec with
  | Ok c ->
    ( Alcop_cuda.Codegen.kernel ~groups:c.Compiler.groups c.Compiler.kernel,
      Option.map Alcop_cuda.Codegen.kernel c.Compiler.lowered.Lower.reduce )
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let test_pipeline_object () =
  let src, _ = render () in
  Alcotest.(check bool) "pipeline state with depth 3" true
    (contains src "cuda::pipeline_shared_state<cuda::thread_scope_block, 3>");
  Alcotest.(check bool) "make_pipeline" true (contains src "cuda::make_pipeline");
  Alcotest.(check bool) "producer_acquire" true
    (contains src "pipe_shared_ko.producer_acquire();");
  Alcotest.(check bool) "consumer_wait" true
    (contains src "pipe_shared_ko.consumer_wait();")

let test_async_copies_and_indices () =
  let src, _ = render () in
  Alcotest.(check bool) "async copies" true (contains src "tile_memcpy_async(");
  Alcotest.(check bool) "shifted stage index" true
    (contains src "(ko + 2) % 3");
  Alcotest.(check bool) "boundary wait" true (contains src "if (ki == 1)");
  Alcotest.(check bool) "shared decl with stage dim" true
    (contains src "__shared__ half A_sh[3][64][32];")

let test_unpipelined_uses_barriers () =
  let src, _ = render ~smem_stages:1 ~reg_stages:1 () in
  Alcotest.(check bool) "no pipeline object" false
    (contains src "cuda::make_pipeline");
  Alcotest.(check bool) "syncthreads" true (contains src "__syncthreads();");
  Alcotest.(check bool) "no async copies" false
    (contains src "tile_memcpy_async(")

let test_braces_balanced () =
  List.iter
    (fun (src, reduce) ->
      let check s =
        Alcotest.(check int) "braces balance" (count_substring s "{")
          (count_substring s "}")
      in
      check src;
      Option.iter check reduce)
    [ render (); render ~smem_stages:1 ~reg_stages:1 (); render ~split_k:2 () ]

let test_split_k_reduce_kernel () =
  let _, reduce = render ~split_k:2 () in
  match reduce with
  | None -> Alcotest.fail "expected reduce kernel source"
  | Some src ->
    Alcotest.(check bool) "named _reduce" true (contains src "cg_test_reduce");
    Alcotest.(check bool) "accumulates" true (contains src "tile_accumulate(");
    Alcotest.(check bool) "reads workspace" true (contains src "C_partial")

let test_identifier_sanitization () =
  let spec = Op_spec.matmul ~name:"64x64-odd.name" ~m:64 ~n:64 ~k:64 () in
  let tiling =
    Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 ()
  in
  let p = Alcop_perfmodel.Params.make ~tiling ~smem_stages:2 ~reg_stages:1 () in
  match Compiler.compile ~hw p spec with
  | Ok c ->
    let src = Alcop_cuda.Codegen.kernel ~groups:c.Compiler.groups c.Compiler.kernel in
    Alcotest.(check bool) "sanitized name" true
      (contains src "__global__ void k_64x64_odd_name(")
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let test_fused_op_argument () =
  let spec = Op_spec.matmul ~name:"cg_fused" ~m:64 ~n:64 ~k:64 ~a_op:"relu" () in
  let tiling =
    Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 ()
  in
  let p = Alcop_perfmodel.Params.make ~tiling ~smem_stages:2 ~reg_stages:1 () in
  match Compiler.compile ~hw p spec with
  | Ok c ->
    let src = Alcop_cuda.Codegen.kernel ~groups:c.Compiler.groups c.Compiler.kernel in
    Alcotest.(check bool) "fused functor argument" true (contains src ", f_relu)")
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let suite =
  [ ( "codegen",
      [ Alcotest.test_case "pipeline object" `Quick test_pipeline_object;
        Alcotest.test_case "async copies and indices" `Quick
          test_async_copies_and_indices;
        Alcotest.test_case "unpipelined uses barriers" `Quick
          test_unpipelined_uses_barriers;
        Alcotest.test_case "braces balanced" `Quick test_braces_balanced;
        Alcotest.test_case "split-K reduce kernel" `Quick
          test_split_k_reduce_kernel;
        Alcotest.test_case "identifier sanitization" `Quick
          test_identifier_sanitization;
        Alcotest.test_case "fused op argument" `Quick test_fused_op_argument ] ) ]
