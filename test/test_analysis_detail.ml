(* White-box tests of the pipelining pass's analysis internals and of the
   transformation helpers exposed for testing: group ordering, producer
   reconstruction, prologue naming, and behaviour on synthetic loop nests
   outside the canonical GEMM shape. *)

open Alcop_ir
open Alcop_sched

let hw = Alcop_hw.Hw_config.ampere_a100

let canonical () =
  let spec = Op_spec.matmul ~name:"adetail" ~m:128 ~n:128 ~k:256 () in
  let tiling =
    Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()
  in
  let l =
    Lower.run (Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 spec tiling)
  in
  (l, Alcop_pipeline.Analysis.run_exn ~hw ~hints:l.Lower.hints l.Lower.kernel)

let test_group_ordering_outermost_first () =
  let _, a = canonical () in
  match a.Alcop_pipeline.Analysis.groups with
  | [ outer; inner ] ->
    Alcotest.(check bool) "outer shallower" true
      (outer.Alcop_pipeline.Analysis.loop_depth
       < inner.Alcop_pipeline.Analysis.loop_depth);
    Alcotest.(check string) "outer is ko" "ko"
      outer.Alcop_pipeline.Analysis.loop_var
  | gs -> Alcotest.failf "expected 2 groups, got %d" (List.length gs)

let test_producer_reconstruction () =
  let _, a = canonical () in
  let inner =
    List.find
      (fun (g : Alcop_pipeline.Analysis.group) ->
        Buffer.scope_equal g.Alcop_pipeline.Analysis.scope Buffer.Register)
      a.Alcop_pipeline.Analysis.groups
  in
  List.iter
    (fun (m : Alcop_pipeline.Analysis.buffer_info) ->
      (* step 2: A_reg's producer is A_sh, B_reg's is B_sh *)
      let expected =
        if String.equal m.Alcop_pipeline.Analysis.buffer.Buffer.name "A_reg"
        then "A_sh"
        else "B_sh"
      in
      Alcotest.(check string) "producer" expected
        m.Alcop_pipeline.Analysis.producer)
    inner.Alcop_pipeline.Analysis.members

let test_group_lookup_helpers () =
  let _, a = canonical () in
  Alcotest.(check bool) "A_sh pipelined" true
    (Alcop_pipeline.Analysis.is_pipelined a "A_sh");
  Alcotest.(check bool) "C_reg not pipelined" false
    (Alcop_pipeline.Analysis.is_pipelined a "C_reg");
  (match Alcop_pipeline.Analysis.group_of_buffer a "B_reg" with
   | Some g ->
     Alcotest.(check string) "group id" "pipe.register.ki"
       g.Alcop_pipeline.Analysis.id
   | None -> Alcotest.fail "B_reg must belong to a group");
  Alcotest.(check bool) "find_group" true
    (Alcop_pipeline.Analysis.find_group a "pipe.shared.ko" <> None)

let test_prologue_var_naming () =
  Alcotest.(check string) "derived" "ko_pro"
    (Alcop_pipeline.Transform.prologue_var_of "ko")

(* A deeper nest: the pipeline loop is found across an intermediate
   buffer-indexing loop (the paper's step 3 skips loops whose variable
   indexes into the buffer). *)
let test_pipeline_loop_skips_indexing_loops () =
  let a = Buffer.make ~name:"A" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 8; 4; 16 ] in
  let c = Buffer.make ~name:"C" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 8; 4; 16 ] in
  let sh = Buffer.make ~name:"S" ~scope:Buffer.Shared ~dtype:Dtype.F16 ~shape:[ 4; 16 ] in
  (* S is partitioned along p (indexes S) inside the reuse loop t *)
  let body =
    Stmt.alloc sh
      (Stmt.for_ "t" (Expr.const 8)
         (Stmt.seq
            [ Stmt.for_ "p" (Expr.const 4)
                (Stmt.copy
                   ~dst:(Stmt.region "S" [ Stmt.point_slice (Expr.var "p");
                                           Stmt.slice Expr.zero 16 ])
                   ~src:(Stmt.region "A" [ Stmt.point_slice (Expr.var "t");
                                           Stmt.point_slice (Expr.var "p");
                                           Stmt.slice Expr.zero 16 ])
                   ());
              Stmt.Sync Stmt.Barrier;
              Stmt.copy
                ~dst:(Stmt.region "C" [ Stmt.point_slice (Expr.var "t");
                                        Stmt.slice Expr.zero 4;
                                        Stmt.slice Expr.zero 16 ])
                ~src:(Stmt.full_region sh) ();
              Stmt.Sync Stmt.Barrier ]))
  in
  let kernel = Kernel.make ~name:"nest" ~inputs:[ a ] ~outputs:[ c ] ~body in
  let hints = [ Alcop_pipeline.Hints.make ~buffer:"S" ~stages:2 () ] in
  match Alcop_pipeline.Analysis.run ~hw ~hints kernel with
  | Ok analysis ->
    (match analysis.Alcop_pipeline.Analysis.groups with
     | [ g ] ->
       Alcotest.(check string) "pipeline loop is t, not p" "t"
         g.Alcop_pipeline.Analysis.loop_var
     | _ -> Alcotest.fail "expected one group")
  | Error r ->
    Alcotest.failf "unexpected rejection: %a" Alcop_pipeline.Analysis.pp_rejection r

(* ... and the transformed version of that nest still runs correctly. *)
let test_partitioned_buffer_pipeline_executes () =
  let a = Buffer.make ~name:"A" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 8; 4; 16 ] in
  let c = Buffer.make ~name:"C" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 8; 4; 16 ] in
  let sh = Buffer.make ~name:"S" ~scope:Buffer.Shared ~dtype:Dtype.F16 ~shape:[ 4; 16 ] in
  let body =
    Stmt.alloc sh
      (Stmt.for_ "t" (Expr.const 8)
         (Stmt.seq
            [ Stmt.copy
                ~dst:(Stmt.full_region sh)
                ~src:(Stmt.region "A" [ Stmt.point_slice (Expr.var "t");
                                        Stmt.slice Expr.zero 4;
                                        Stmt.slice Expr.zero 16 ])
                ();
              Stmt.Sync Stmt.Barrier;
              Stmt.copy
                ~dst:(Stmt.region "C" [ Stmt.point_slice (Expr.var "t");
                                        Stmt.slice Expr.zero 4;
                                        Stmt.slice Expr.zero 16 ])
                ~src:(Stmt.full_region sh) ();
              Stmt.Sync Stmt.Barrier ]))
  in
  let kernel = Kernel.make ~name:"copy_through" ~inputs:[ a ] ~outputs:[ c ] ~body in
  let hints = [ Alcop_pipeline.Hints.make ~buffer:"S" ~stages:3 () ] in
  match Alcop_pipeline.Pass.run ~hw ~hints kernel with
  | Error r ->
    Alcotest.failf "rejected: %a" Alcop_pipeline.Analysis.pp_rejection r
  | Ok result ->
    let t = Alcop_gpusim.Tensor.random ~seed:3 [ 8; 4; 16 ] in
    let out =
      Alcop_gpusim.Interp.run
        ~groups:(Alcop_pipeline.Pass.groups result)
        result.Alcop_pipeline.Pass.kernel
        ~inputs:[ ("A", t) ]
    in
    let got = snd (List.hd out) in
    Alcotest.(check bool) "copy-through pipeline is the identity" true
      (Alcop_gpusim.Tensor.allclose got t)

let suite =
  [ ( "analysis-detail",
      [ Alcotest.test_case "group ordering" `Quick
          test_group_ordering_outermost_first;
        Alcotest.test_case "producer reconstruction" `Quick
          test_producer_reconstruction;
        Alcotest.test_case "group lookup helpers" `Quick
          test_group_lookup_helpers;
        Alcotest.test_case "prologue naming" `Quick test_prologue_var_naming;
        Alcotest.test_case "pipeline loop skips indexing loops" `Quick
          test_pipeline_loop_skips_indexing_loops;
        Alcotest.test_case "partitioned-buffer pipeline executes" `Quick
          test_partitioned_buffer_pipeline_executes ] ) ]
