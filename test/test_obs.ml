(* Tests for the observability layer: span nesting and ordering, counter
   arithmetic, the JSONL and Chrome-trace sinks (round-tripped through the
   in-repo JSON parser), the zero-cost disabled state, the evaluator's
   cache counters, the structured compile error, and a golden test that
   the per-buffer legality verdicts for a suite operator are stable. *)

open Alcop_sched
open Alcop_obs

let hw = Alcop_hw.Hw_config.default

(* A deterministic clock: strictly increasing 1 ms per read. *)
let install_fake_clock () =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      t := !t +. 0.001;
      !t)

let with_fresh f =
  Obs.reset ();
  install_fake_clock ();
  Fun.protect ~finally:Obs.reset f

(* --- spans --- *)

let test_span_nesting_and_ordering () =
  with_fresh @@ fun () ->
  let sink, events = Obs.memory_sink () in
  Obs.add_sink sink;
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span "inner.a" (fun () -> ());
        Obs.with_span "inner.b" (fun () -> ());
        17)
  in
  Alcotest.(check int) "value returned through span" 17 r;
  match events () with
  | [ Obs.Span_begin { name = bn0; depth = bd0; _ };
      Obs.Span_begin { name = bn1; depth = bd1; _ };
      Obs.Span_end { name = en1; dur = edur1; _ };
      Obs.Span_begin { name = bn2; depth = bd2; _ };
      Obs.Span_end { name = en2; _ };
      Obs.Span_end { name = en0; dur = edur0; _ } ] ->
    Alcotest.(check string) "outer first" "outer" bn0;
    Alcotest.(check int) "outer depth" 0 bd0;
    Alcotest.(check string) "inner.a second" "inner.a" bn1;
    Alcotest.(check int) "inner depth" 1 bd1;
    Alcotest.(check string) "inner.b third" "inner.b" bn2;
    Alcotest.(check int) "inner depth" 1 bd2;
    Alcotest.(check string) "inner.a ends first" "inner.a" en1;
    Alcotest.(check string) "then inner.b" "inner.b" en2;
    Alcotest.(check string) "outer ends last" "outer" en0;
    Alcotest.(check bool) "positive duration" true (edur1 > 0.0);
    Alcotest.(check bool) "outer covers inner" true (edur0 > edur1)
  | evs -> Alcotest.failf "unexpected event shape (%d events)" (List.length evs)

let test_span_survives_exception () =
  with_fresh @@ fun () ->
  let sink, events = Obs.memory_sink () in
  Obs.add_sink sink;
  (try Obs.with_span "boom" (fun () -> failwith "expected") with
   | Failure _ -> ());
  let ends =
    List.filter_map
      (function
        | Obs.Span_end { name; fields; _ } -> Some (name, fields)
        | _ -> None)
      (events ())
  in
  match ends with
  | [ ("boom", fields) ] ->
    Alcotest.(check bool) "raised field present" true
      (List.mem_assoc "raised" fields)
  | _ -> Alcotest.fail "expected exactly one ended span"

(* --- counters and gauges --- *)

let test_counter_arithmetic () =
  with_fresh @@ fun () ->
  Obs.record ();
  Obs.count "a";
  Obs.count ~n:5 "a";
  Obs.count "b";
  Alcotest.(check int) "a total" 6 (Obs.counter_value "a");
  Alcotest.(check int) "b total" 1 (Obs.counter_value "b");
  Alcotest.(check int) "unknown is 0" 0 (Obs.counter_value "zzz");
  Alcotest.(check (list (pair string int)))
    "sorted by name"
    [ ("a", 6); ("b", 1) ]
    (Obs.counters ());
  Obs.gauge "g" 1.0;
  Obs.gauge "g" 0.25;
  (match Obs.gauge_value "g" with
   | Some v -> Alcotest.(check (float 1e-9)) "gauge keeps latest" 0.25 v
   | None -> Alcotest.fail "gauge missing")

let test_disabled_is_noop () =
  Obs.reset ();
  Alcotest.(check bool) "disabled after reset" false (Obs.enabled ());
  let r = Obs.with_span "ignored" (fun () -> 42) in
  Alcotest.(check int) "span is transparent" 42 r;
  Obs.count "ignored";
  Obs.gauge "ignored" 1.0;
  Alcotest.(check int) "counter not recorded" 0 (Obs.counter_value "ignored");
  Alcotest.(check bool) "gauge not recorded" true
    (Obs.gauge_value "ignored" = None)

(* --- JSON emitter / parser --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\nd\te"); ("i", Json.Int (-3));
        ("f", Json.Float 1.5); ("n", Json.Null); ("b", Json.Bool true);
        ("l", Json.List [ Json.Int 1; Json.Str "x" ]) ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_nonfinite_is_null () =
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "null"
    (Json.to_string (Json.Float Float.infinity))

(* Serialize-then-parse must return the bit-identical double — "%.12g"
   alone silently loses the low bits of e.g. 0.1 +. 0.2 on the way through
   Tuning_log. The emitter falls back to "%.17g" when the short form
   doesn't round-trip. *)
let float_roundtrips f =
  match Json.of_string (Json.to_string (Json.Float f)) with
  | Ok (Json.Float f') -> Int64.bits_of_float f' = Int64.bits_of_float f
  | Ok _ | Error _ -> false

let test_json_float_shortest_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "%h round-trips" f)
        true (float_roundtrips f))
    [ 0.1 +. 0.2; 1.0 /. 3.0; Float.max_float; Float.min_float; epsilon_float;
      1e22; 4. *. atan 1.; 1.5; 0.0; -0.0; 123456789.123456789 ]

let prop_json_float_roundtrip =
  QCheck.Test.make ~name:"json float round-trip (random doubles)" ~count:1000
    (* exponents span the full double range; pfloat alone rarely leaves
       [0, 1e308] mantissa-dense regions where %.12g suffices *)
    QCheck.(
      map
        (fun (m, e, neg) ->
          let f = Float.ldexp m (e mod 2047 - 1023) in
          if neg then -.f else f)
        (triple (float_bound_exclusive 1.0) int bool))
    (fun f -> if Float.is_finite f then float_roundtrips f else true)

(* --- JSONL round-trip of tuner trial events --- *)

let tiny_space () =
  let mk tb_m =
    Alcop_perfmodel.Params.make
      ~tiling:
        (Tiling.make ~tb_m ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16
           ~warp_k:16 ())
      ~smem_stages:2 ~reg_stages:1 ()
  in
  [| mk 32; mk 64; mk 128 |]

let test_jsonl_tuner_trial_roundtrip () =
  with_fresh @@ fun () ->
  let buf = Buffer.create 256 in
  Obs.add_sink (Sinks.jsonl (Buffer.add_string buf));
  let costs = [| Some 300.0; None; Some 100.0 |] in
  let result =
    Alcop_tune.Tuner.exhaustive ~space:(tiny_space ())
      ~evaluate:(fun p ->
        costs.(if p.Alcop_perfmodel.Params.tiling.Tiling.tb_m = 32 then 0
               else if p.Alcop_perfmodel.Params.tiling.Tiling.tb_m = 64 then 1
               else 2)) ()
  in
  Alcotest.(check int) "three trials" 3 (Array.length result.Alcop_tune.Tuner.trials);
  let lines =
    List.filter (fun l -> String.length l > 0)
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  let trials =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | Ok j
          when Json.member "type" j = Some (Json.Str "point")
               && Json.member "name" j = Some (Json.Str "tuner.trial") ->
          Json.member "fields" j
        | Ok _ -> None
        | Error e -> Alcotest.fail e)
      lines
  in
  Alcotest.(check int) "one record per trial" 3 (List.length trials);
  let best_curve =
    List.map
      (fun f ->
        Option.bind (Json.member "best_so_far" f) Json.number)
      trials
  in
  Alcotest.(check bool) "best-so-far curve"
    true
    (best_curve = [ Some 300.0; Some 300.0; Some 100.0 ]);
  let failed =
    List.filter (fun f -> Json.member "cost_cycles" f = Some Json.Null) trials
  in
  Alcotest.(check int) "failed trial logged as null" 1 (List.length failed)

(* --- Chrome trace export --- *)

let test_chrome_trace_parseable_and_monotonic () =
  with_fresh @@ fun () ->
  let buf = Buffer.create 256 in
  Obs.add_sink (Sinks.chrome_trace (Buffer.add_string buf));
  Obs.with_span "phase.one" (fun () -> Obs.gauge "g" 0.5);
  Obs.with_span "phase.two" (fun () -> ());
  Obs.reset ();
  match Json.of_string (String.trim (Buffer.contents buf)) with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match Json.member "traceEvents" doc with
     | Some (Json.List events) ->
       Alcotest.(check bool) "has events" true (List.length events >= 3);
       let ts =
         List.map
           (fun e ->
             match Option.bind (Json.member "ts" e) Json.number with
             | Some t -> t
             | None -> Alcotest.fail "event without ts")
           events
       in
       List.iteri
         (fun i t ->
           if i > 0 then
             Alcotest.(check bool) "timestamps monotonic" true
               (t >= List.nth ts (i - 1));
           Alcotest.(check bool) "timestamps non-negative" true (t >= 0.0))
         ts;
       let complete_spans =
         List.filter
           (fun e -> Json.member "ph" e = Some (Json.Str "X"))
           events
       in
       Alcotest.(check int) "one complete event per span" 2
         (List.length complete_spans)
     | _ -> Alcotest.fail "no traceEvents array")

(* Regression for the time-origin bug fixed in PR 1: the origin anchors at
   the first event *seen* (a Span_begin anchors at the span's start), so a
   trace whose first recorded item is a counter event — before any span —
   must still come out with every timestamp non-negative. *)
let test_chrome_origin_counter_first () =
  with_fresh @@ fun () ->
  let buf = Buffer.create 256 in
  Obs.add_sink (Sinks.chrome_trace (Buffer.add_string buf));
  Obs.count "warmup";  (* first recorded item: a counter, no open span *)
  Obs.count "warmup";
  Obs.with_span "later.work" (fun () -> Obs.gauge "g" 1.0);
  Obs.reset ();
  match Json.of_string (String.trim (Buffer.contents buf)) with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match Json.member "traceEvents" doc with
     | Some (Json.List events) ->
       Alcotest.(check bool) "has events" true (List.length events >= 4);
       List.iter
         (fun e ->
           match Option.bind (Json.member "ts" e) Json.number with
           | Some t ->
             Alcotest.(check bool) "no negative timestamps" true (t >= 0.0)
           | None -> Alcotest.fail "event without ts")
         events
     | _ -> Alcotest.fail "no traceEvents array")

(* --- session cache counters --- *)

let test_evaluator_cache_counters () =
  with_fresh @@ fun () ->
  Obs.record ();
  let spec = Op_spec.matmul ~name:"obs_eval" ~m:64 ~n:64 ~k:128 () in
  let p =
    Alcop_perfmodel.Params.make
      ~tiling:
        (Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16
           ~warp_k:16 ())
      ~smem_stages:2 ~reg_stages:1 ()
  in
  let session = Alcop.Session.create ~hw () in
  let evaluate = Alcop.Session.evaluator session spec in
  let a = evaluate p in
  let b = evaluate p in
  Alcotest.(check bool) "memoized" true (a = b);
  Alcotest.(check int) "one miss" 1 (Obs.counter_value "session.cache.miss");
  Alcotest.(check int) "one hit" 1 (Obs.counter_value "session.cache.hit");
  Alcotest.(check int) "one compile" 1 (Obs.counter_value "compile.ok")

(* --- structured compile errors --- *)

let test_structured_launch_failure () =
  Obs.reset ();
  let spec = Op_spec.matmul ~name:"obs_launch" ~m:256 ~n:256 ~k:512 () in
  let p =
    Alcop_perfmodel.Params.make
      ~tiling:
        (Tiling.make ~tb_m:128 ~tb_n:128 ~tb_k:64 ~warp_m:32 ~warp_n:32
           ~warp_k:16 ())
      ~smem_stages:8 ~reg_stages:2 ()
  in
  match Alcop.Compiler.compile ~hw p spec with
  | Ok _ -> Alcotest.fail "8-stage 128x128x64 tile must exhaust shared memory"
  | Error (Alcop.Compiler.Launch_failed f) ->
    Alcotest.(check string) "kind" "launch"
      (Alcop.Compiler.error_kind (Alcop.Compiler.Launch_failed f));
    Alcotest.(check bool) "needed exceeds available" true
      (f.Alcop_gpusim.Occupancy.needed > f.Alcop_gpusim.Occupancy.available)
  | Error e ->
    Alcotest.failf "expected Launch_failed, got %s"
      (Alcop.Compiler.error_to_string e)

(* --- golden: legality verdicts for a suite operator are stable --- *)

let golden_verdicts =
  String.concat "\n"
    [ "buffer A_sh (scope shared): PIPELINED in pipe.shared.ko";
      "  rule 1 (asynchronous copy): PASS - produced by one asynchronous memory copy (scope shared on sim-A100-SXM4-40GB)";
      "  rule 2 (sequential load-and-use loop): PASS - sequential load-and-use loop ko (extent 64)";
      "  rule 3 (synchronization scope): PASS - group pipe.shared.ko: 3 stages on loop ko, synchronized";
      "buffer B_sh (scope shared): PIPELINED in pipe.shared.ko";
      "  rule 1 (asynchronous copy): PASS - produced by one asynchronous memory copy (scope shared on sim-A100-SXM4-40GB)";
      "  rule 2 (sequential load-and-use loop): PASS - sequential load-and-use loop ko (extent 64)";
      "  rule 3 (synchronization scope): PASS - group pipe.shared.ko: 3 stages on loop ko, synchronized";
      "buffer A_reg (scope register): PIPELINED in pipe.register.ki";
      "  rule 1 (asynchronous copy): PASS - produced by one asynchronous memory copy (scope register on sim-A100-SXM4-40GB)";
      "  rule 2 (sequential load-and-use loop): PASS - sequential load-and-use loop ki (extent 2)";
      "  rule 3 (synchronization scope): PASS - group pipe.register.ki: 2 stages on loop ki";
      "buffer B_reg (scope register): PIPELINED in pipe.register.ki";
      "  rule 1 (asynchronous copy): PASS - produced by one asynchronous memory copy (scope register on sim-A100-SXM4-40GB)";
      "  rule 2 (sequential load-and-use loop): PASS - sequential load-and-use loop ki (extent 2)";
      "  rule 3 (synchronization scope): PASS - group pipe.register.ki: 2 stages on loop ki" ]

let test_golden_verdicts_stable () =
  let spec =
    match Alcop_workloads.Suites.find "MM_RN50_FC" with
    | Some s -> s
    | None -> Alcotest.fail "MM_RN50_FC missing from the suite"
  in
  let tiling =
    Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()
  in
  let lowered =
    Lower.run (Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 spec tiling)
  in
  let vs =
    Alcop_pipeline.Analysis.verdicts ~hw ~hints:lowered.Lower.hints
      lowered.Lower.kernel
  in
  Alcotest.(check int) "four hinted buffers" 4 (List.length vs);
  List.iter
    (fun (v : Alcop_pipeline.Analysis.buffer_verdict) ->
      Alcotest.(check int) "three rule checks" 3
        (List.length v.Alcop_pipeline.Analysis.checks))
    vs;
  Alcotest.(check string) "verdict report golden" golden_verdicts
    (Format.asprintf "%a" Alcop_pipeline.Analysis.pp_verdicts vs)

(* On hardware without asynchronous copies (Volta), shared-memory buffers
   must get a failing rule-1 verdict while the report still covers every
   hinted buffer. *)
let test_verdict_reports_failure () =
  let spec = Op_spec.matmul ~name:"obs_volta" ~m:64 ~n:64 ~k:128 () in
  let tiling =
    Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 ()
  in
  let lowered =
    Lower.run (Schedule.default_gemm ~smem_stages:2 ~reg_stages:2 spec tiling)
  in
  let vs =
    Alcop_pipeline.Analysis.verdicts ~hw:Alcop_hw.Hw_config.volta_v100
      ~hints:lowered.Lower.hints lowered.Lower.kernel
  in
  match
    List.find_opt
      (fun (v : Alcop_pipeline.Analysis.buffer_verdict) ->
        v.Alcop_pipeline.Analysis.verdict_buffer = "A_sh")
      vs
  with
  | Some v ->
    Alcotest.(check bool) "A_sh not pipelined" false
      v.Alcop_pipeline.Analysis.pipelined;
    let c1 = List.hd v.Alcop_pipeline.Analysis.checks in
    Alcotest.(check int) "first check is rule 1" 1
      c1.Alcop_pipeline.Analysis.rule;
    Alcotest.(check bool) "rule 1 failed" false
      c1.Alcop_pipeline.Analysis.passed;
    Alcotest.(check bool) "detail names the cause" true
      (String.length c1.Alcop_pipeline.Analysis.detail > 0)
  | None -> Alcotest.fail "A_sh verdict missing"

(* Regression for the CLI error path: a file-backed sink must be flushed
   even when the process exits early (the CLI's [exit 1] after a failed
   compile used to leave a truncated JSONL / empty Chrome trace).
   Reproduced with a forked child that installs a jsonl file sink,
   registers [reset_at_exit] the way [install_file_sink] does, emits one
   event and exits nonzero without an explicit reset. *)
let test_file_sink_flushed_on_early_exit () =
  let path = Filename.temp_file "alcop_obs" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.dup2 devnull Unix.stderr;
    Obs.reset ();
    Obs.add_sink (Sinks.jsonl_file path);
    Obs.reset_at_exit ();
    Obs.count "child.events";
    Stdlib.exit 1
  | pid ->
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "child exited 1" true (status = Unix.WEXITED 1);
    (match Trace_reader.events_of_file path with
     | Error e -> Alcotest.fail e
     | Ok ([ Obs.Counter { name; _ } ], 0) ->
       Alcotest.(check string) "event survived the early exit" "child.events"
         name
     | Ok (evs, skipped) ->
       Alcotest.failf
         "expected exactly the child's counter, got %d events (%d skipped)"
         (List.length evs) skipped)

let suite =
  [ ( "obs",
      [ Alcotest.test_case "span nesting and ordering" `Quick
          test_span_nesting_and_ordering;
        Alcotest.test_case "span survives exception" `Quick
          test_span_survives_exception;
        Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
        Alcotest.test_case "disabled state is a no-op" `Quick
          test_disabled_is_noop;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "non-finite floats are null" `Quick
          test_json_nonfinite_is_null;
        Alcotest.test_case "float shortest round-trip" `Quick
          test_json_float_shortest_roundtrip;
        QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
        Alcotest.test_case "jsonl tuner trial round-trip" `Quick
          test_jsonl_tuner_trial_roundtrip;
        Alcotest.test_case "chrome trace parseable + monotonic" `Quick
          test_chrome_trace_parseable_and_monotonic;
        Alcotest.test_case "chrome origin with counter first" `Quick
          test_chrome_origin_counter_first;
        Alcotest.test_case "evaluator cache counters" `Quick
          test_evaluator_cache_counters;
        Alcotest.test_case "structured launch failure" `Quick
          test_structured_launch_failure;
        Alcotest.test_case "golden legality verdicts" `Quick
          test_golden_verdicts_stable;
        Alcotest.test_case "verdict reports failures" `Quick
          test_verdict_reports_failure;
        Alcotest.test_case "file sink flushed on early exit" `Quick
          test_file_sink_flushed_on_early_exit ] ) ]
