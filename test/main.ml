(* Test runner: aggregates all per-module alcotest suites. *)

let () =
  Alcotest.run "alcop"
    (Test_expr.suite
     @ Test_stmt.suite
     @ Test_validate.suite
     @ Test_schedule.suite
     @ Test_lower.suite
     @ Test_pipeline.suite
     @ Test_interp.suite
     @ Test_trace.suite
     @ Test_timing.suite
     @ Test_perfmodel.suite
     @ Test_tune.suite
     @ Test_compiler.suite
     @ Test_fingerprint.suite
     @ Test_passman.suite
     @ Test_session.suite
     @ Test_workloads.suite
     @ Test_splitk.suite
     @ Test_codegen.suite
     @ Test_e2e.suite
     @ Test_golden.suite
     @ Test_des.suite
     @ Test_analysis_detail.suite
     @ Test_obs.suite
     @ Test_par.suite
     @ Test_hostprof.suite
     @ Test_analytics.suite
     @ Test_benchdb.suite
     @ Test_profile.suite
     @ Test_property.suite
     @ Test_packed.suite
     @ Test_pipeview.suite
     (* last: the store hammer test spawns domains, and Test_obs's
        fork-based test must run before any domain exists *)
     @ Test_store.suite)
