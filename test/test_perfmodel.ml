(* Analytical performance model tests (paper Table I) and the bottleneck
   baseline. *)

open Alcop_sched
open Alcop_perfmodel

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"pm_test" ~m:1024 ~n:64 ~k:2048 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let params ?(smem_stages = 3) ?(reg_stages = 2) () =
  Params.make ~tiling ~smem_stages ~reg_stages ()

(* --- the pipeline latency rule of Fig. 9 --- *)

let test_pipeline_latency_compute_bound () =
  (* T_load well hidden: loop latency is just use time. *)
  let t, load_bound =
    Model.pipeline_latency ~t_load:10.0 ~t_use:100.0 ~n_loop:8 ~n_pipe:2 ~n_mplx:1
  in
  Alcotest.(check (float 1e-9)) "compute bound" 800.0 t;
  Alcotest.(check bool) "not load bound" false load_bound

let test_pipeline_latency_load_bound () =
  let t, load_bound =
    Model.pipeline_latency ~t_load:1000.0 ~t_use:10.0 ~n_loop:8 ~n_pipe:2 ~n_mplx:1
  in
  Alcotest.(check (float 1e-9)) "load bound" (1010.0 *. 8.0 /. 2.0) t;
  Alcotest.(check bool) "load bound flag" true load_bound

let test_pipeline_latency_boundary () =
  (* exactly at the criterion: T_load = (pipe*mplx - 1) * T_use *)
  let t, load_bound =
    Model.pipeline_latency ~t_load:30.0 ~t_use:10.0 ~n_loop:4 ~n_pipe:2 ~n_mplx:2
  in
  Alcotest.(check (float 1e-9)) "boundary is compute bound" 40.0 t;
  Alcotest.(check bool) "flag" false load_bound

let test_more_stages_help_when_load_bound () =
  let latency n_pipe =
    fst
      (Model.pipeline_latency ~t_load:1000.0 ~t_use:10.0 ~n_loop:8 ~n_pipe
         ~n_mplx:1)
  in
  Alcotest.(check bool) "4 stages < 2 stages" true (latency 4 < latency 2);
  Alcotest.(check bool) "monotone" true (latency 3 < latency 2)

let test_multiplexing_substitutes_stages () =
  (* With enough parallel workers, even 1-stage loops reach compute bound. *)
  let t, _ =
    Model.pipeline_latency ~t_load:50.0 ~t_use:10.0 ~n_loop:8 ~n_pipe:1 ~n_mplx:8
  in
  Alcotest.(check (float 1e-9)) "hidden by multiplexing" 80.0 t

(* --- full model --- *)

let test_predict_structure () =
  match Model.predict hw spec (params ()) with
  | Error f -> Alcotest.failf "unexpected failure: %a" Alcop_gpusim.Occupancy.pp_failure f
  | Ok p ->
    Alcotest.(check bool) "positive" true (p.Model.cycles > 0.0);
    Alcotest.(check bool) "components sum" true
      (Float.abs
         (p.Model.t_threadblk
          -. (p.Model.t_init +. p.Model.t_main_loop +. p.Model.t_epilogue))
       < 1e-6);
    Alcotest.(check bool) "batches >= 1" true (p.Model.n_batches >= 1)

let test_model_prefers_pipelining_on_long_k () =
  let c stages =
    Option.get (Model.predict_cycles hw spec (params ~smem_stages:stages ()))
  in
  Alcotest.(check bool) "3 stages <= 1 stage" true (c 3 <= c 1)

let test_model_rejects_oversized () =
  let big =
    Tiling.make ~tb_m:256 ~tb_n:128 ~tb_k:64 ~warp_m:64 ~warp_n:64 ~warp_k:32 ()
  in
  let p = Params.make ~tiling:big ~smem_stages:4 ~reg_stages:2 () in
  Alcotest.(check bool) "rejected" true (Model.predict_cycles hw spec p = None)

(* The analytical model should correlate with the simulator: over a sample
   of schedules, ranking agreement (Spearman-ish sign test) must be well
   above chance. *)
let test_model_correlates_with_simulator () =
  let space =
    Alcop_tune.Space.enumerate ~restriction:Alcop_tune.Space.full spec
  in
  let sample =
    List.filteri (fun i _ -> i mod 17 = 0) (Array.to_list space)
  in
  let evaluate = Alcop.Session.evaluator (Alcop.Session.create ~hw ()) spec in
  let pairs =
    List.filter_map
      (fun p ->
        match Model.predict_cycles hw spec p, evaluate p with
        | Some pred, Some meas -> Some (pred, meas)
        | _ -> None)
      sample
  in
  Alcotest.(check bool) "enough pairs" true (List.length pairs > 20);
  let agree = ref 0 and total = ref 0 in
  let arr = Array.of_list pairs in
  Array.iteri
    (fun i (p1, m1) ->
      Array.iteri
        (fun j (p2, m2) ->
          if i < j && p1 <> p2 && m1 <> m2 then begin
            incr total;
            if (p1 < p2) = (m1 < m2) then incr agree
          end)
        arr)
    arr;
  let rate = float_of_int !agree /. float_of_int (max 1 !total) in
  Alcotest.(check bool)
    (Printf.sprintf "pairwise ranking agreement %.2f > 0.65" rate)
    true (rate > 0.65)

(* --- bottleneck baseline --- *)

let test_bottleneck_stage_agnostic () =
  (* The paper's criticism: the bottleneck model cannot see stage counts. *)
  let c stages =
    Option.get (Bottleneck.predict_cycles hw spec (params ~smem_stages:stages ()))
  in
  Alcotest.(check (float 1e-9)) "same for 1 and 4 stages" (c 1) (c 4)

let test_bottleneck_positive_and_below_peak () =
  match Bottleneck.predict_cycles hw spec (params ()) with
  | None -> Alcotest.fail "bottleneck model must predict"
  | Some c ->
    let ideal_compute =
      float_of_int (Op_spec.flops spec)
      /. float_of_int (hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle
                       * hw.Alcop_hw.Hw_config.num_sms)
    in
    Alcotest.(check bool) "at least compute time" true (c >= ideal_compute -. 1e-6)

(* --- features --- *)

let test_features_shape () =
  let f = Features.extract hw spec (params ()) in
  Alcotest.(check int) "dimension" Features.dim (Array.length f);
  Array.iter
    (fun x ->
      Alcotest.(check bool) "finite" true (Float.is_finite x))
    f

let test_features_distinguish_stages () =
  let f1 = Features.extract hw spec (params ~smem_stages:2 ()) in
  let f2 = Features.extract hw spec (params ~smem_stages:4 ()) in
  Alcotest.(check bool) "different" true (f1 <> f2)

let suite =
  [ ( "perfmodel",
      [ Alcotest.test_case "pipeline latency compute bound" `Quick
          test_pipeline_latency_compute_bound;
        Alcotest.test_case "pipeline latency load bound" `Quick
          test_pipeline_latency_load_bound;
        Alcotest.test_case "pipeline latency boundary" `Quick
          test_pipeline_latency_boundary;
        Alcotest.test_case "more stages help" `Quick
          test_more_stages_help_when_load_bound;
        Alcotest.test_case "multiplexing substitutes stages" `Quick
          test_multiplexing_substitutes_stages;
        Alcotest.test_case "predict structure" `Quick test_predict_structure;
        Alcotest.test_case "model prefers pipelining on long K" `Quick
          test_model_prefers_pipelining_on_long_k;
        Alcotest.test_case "model rejects oversized" `Quick
          test_model_rejects_oversized;
        Alcotest.test_case "model correlates with simulator" `Slow
          test_model_correlates_with_simulator;
        Alcotest.test_case "bottleneck stage agnostic" `Quick
          test_bottleneck_stage_agnostic;
        Alcotest.test_case "bottleneck lower bound" `Quick
          test_bottleneck_positive_and_below_peak;
        Alcotest.test_case "features shape" `Quick test_features_shape;
        Alcotest.test_case "features distinguish stages" `Quick
          test_features_distinguish_stages ] ) ]
