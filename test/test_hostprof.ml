(* Tests for the host-side runtime profiler (Alcop_obs.Hostprof): the
   exact five-bucket telescoping invariant on real pool workloads at
   jobs 1 and 4, a QCheck property that opening a profiling window
   leaves pooled-tuner telemetry byte-identical (the determinism
   contract), lock-probe accounting under forced contention, a golden
   text report from a hand-built profile, profile exports, and the
   restored session.cache.entries gauge hammered against its FIFO
   capacity bound. *)

open Alcop_sched
open Alcop_par
module Obs = Alcop_obs.Obs
module Hostprof = Alcop_obs.Hostprof
module Json = Alcop_obs.Json

let hw = Alcop_hw.Hw_config.default

(* --- telescoping: busy + queue + lock + gc + idle = wall, exactly --- *)

let sum_buckets w =
  Hostprof.(
    w.w_busy_ns + w.w_queue_ns + w.w_lock_ns + w.w_gc_ns + w.w_idle_ns)

let check_telescopes name (p : Hostprof.profile) =
  (match Hostprof.check p with
   | Ok () -> ()
   | Error e -> Alcotest.failf "%s: check failed: %s" name e);
  Alcotest.(check bool) (name ^ ": has workers") true (p.p_workers <> []);
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Printf.sprintf "%s: %s buckets sum to wall" name w.Hostprof.w_role)
        w.Hostprof.w_wall_ns (sum_buckets w);
      List.iter
        (fun (b, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s %s >= 0" name w.Hostprof.w_role b)
            true (v >= 0))
        Hostprof.
          [ ("busy", w.w_busy_ns); ("queue", w.w_queue_ns);
            ("lock", w.w_lock_ns); ("gc", w.w_gc_ns); ("idle", w.w_idle_ns) ])
    p.p_workers

(* A real workload: concurrent Session compiles (contended per-session
   mutex + in-flight waits) plus plain pool tasks. *)
let profiled_workload jobs =
  let spec = Op_spec.matmul ~name:"hostprof_tel" ~m:64 ~n:64 ~k:128 () in
  let session = Alcop.Session.create ~hw () in
  let params i =
    Alcop_perfmodel.Params.make
      ~tiling:
        (Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16
           ~warp_k:16 ())
      ~smem_stages:(2 + (i mod 2)) ~reg_stages:1 ()
  in
  Hostprof.start ();
  let results =
    Pool.with_pool ~jobs (fun p ->
        Pool.map p
          (fun i -> Alcop.Session.evaluate session (params i) spec)
          (List.init 16 Fun.id))
  in
  let prof = Hostprof.stop () in
  Alcotest.(check int) "all tasks evaluated" 16 (List.length results);
  prof

let test_telescoping_exact () =
  List.iter
    (fun jobs ->
      let p = profiled_workload jobs in
      check_telescopes (Printf.sprintf "jobs=%d" jobs) p;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d observed worker domains" jobs)
        (if jobs = 1 then 0 else jobs)
        p.Hostprof.p_jobs;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d wall positive" jobs)
        true
        (p.Hostprof.p_wall_ns > 0))
    [ 1; 4 ]

(* Inline window with no pool at all: the coordinator alone telescopes. *)
let test_inline_window () =
  Hostprof.start ();
  let r =
    Hostprof.task ~label:"inline" (fun () ->
        Array.fold_left ( + ) 0 (Array.init 1000 Fun.id))
  in
  let p = Hostprof.stop () in
  Alcotest.(check int) "task ran" 499500 r;
  check_telescopes "inline" p;
  Alcotest.(check int) "no worker domains" 0 p.Hostprof.p_jobs;
  match p.Hostprof.p_workers with
  | [ w ] ->
    Alcotest.(check string) "role" "coordinator" w.Hostprof.w_role;
    Alcotest.(check int) "one task" 1 w.Hostprof.w_tasks
  | ws -> Alcotest.failf "expected one track, got %d" (List.length ws)

let test_check_rejects_violation () =
  Hostprof.start ();
  ignore (Hostprof.task ~label:"t" (fun () -> 1 + 1));
  let p = Hostprof.stop () in
  let broken =
    Hostprof.
      { p with
        p_workers =
          List.map (fun w -> { w with w_busy_ns = w.w_busy_ns + 1 }) p.p_workers
      }
  in
  Alcotest.(check bool) "tampered profile rejected" true
    (Result.is_error (Hostprof.check broken))

(* --- determinism contract: profiling leaves telemetry byte-identical --- *)

let synth_space =
  let mk tb_m tb_n smem_stages =
    Alcop_perfmodel.Params.make
      ~tiling:
        (Tiling.make ~tb_m ~tb_n ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 ())
      ~smem_stages ~reg_stages:1 ()
  in
  Array.of_list
    (List.concat_map
       (fun tb_m ->
         List.concat_map
           (fun tb_n -> List.map (mk tb_m tb_n) [ 2; 3 ])
           [ 16; 32 ])
       [ 16; 32; 64 ])

(* Allocates and emits telemetry like a real evaluator, deterministically. *)
let synth_cost (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  let v =
    (t.Tiling.tb_m * 7) + (t.Tiling.tb_n * 13)
    + (p.Alcop_perfmodel.Params.smem_stages * 31)
  in
  Obs.count "hostprof.prop.evals";
  Obs.observe "hostprof.prop.cost" (float_of_int (v mod 97));
  if v mod 5 = 0 then None else Some (float_of_int (1000 + (v mod 97)))

let install_fake_clock () =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      t := !t +. 0.001;
      !t)

(* Run the tuner through a jobs=4 pool with full telemetry capture, with
   or without a host-profiling window open around it. *)
let tuned_telemetry ~profiled ~budget ~seed =
  Obs.reset ();
  install_fake_clock ();
  let sink, events = Obs.memory_sink () in
  Obs.add_sink sink;
  let spec = Op_spec.matmul ~name:"hostprof_prop" ~m:64 ~n:64 ~k:128 () in
  if profiled then Hostprof.start ();
  let result =
    Pool.with_pool ~jobs:4 (fun p ->
        Alcop_tune.Tuner.run ~pool:p ~hw ~spec ~space:synth_space
          ~evaluate:synth_cost ~budget ~seed Alcop_tune.Tuner.Grid)
  in
  if profiled then begin
    let prof = Hostprof.stop () in
    match Hostprof.check prof with
    | Ok () -> ()
    | Error e -> Alcotest.failf "telescoping violated under property: %s" e
  end;
  let evs = events () in
  let counters = Obs.counters () in
  let gauges = Obs.gauges () in
  let hists = Obs.histograms () in
  Obs.reset ();
  (result, evs, counters, gauges, hists)

let prop_profiling_leaves_telemetry_identical =
  QCheck.Test.make
    ~name:"host profiling leaves pooled tuning telemetry byte-identical"
    ~count:6
    QCheck.(pair small_nat (int_bound 1000))
    (fun (budget_raw, seed) ->
      let budget = 1 + (budget_raw mod 12) in
      let off = tuned_telemetry ~profiled:false ~budget ~seed in
      let on = tuned_telemetry ~profiled:true ~budget ~seed in
      let r0, e0, c0, g0, h0 = off and r1, e1, c1, g1, h1 = on in
      r0 = r1 && e0 = e1 && c0 = c1 && g0 = g1 && h0 = h1)

(* --- lock probes --- *)

let test_lock_probe_uncontended () =
  let probe = Hostprof.make_lock "test.free" in
  let m = Mutex.create () in
  Hostprof.start ();
  for _ = 1 to 5 do
    Hostprof.locked probe m (fun () -> ())
  done;
  let p = Hostprof.stop () in
  match
    List.find_opt
      (fun l -> l.Hostprof.l_name = "test.free")
      p.Hostprof.p_locks
  with
  | None -> Alcotest.fail "probe not reported"
  | Some l ->
    Alcotest.(check int) "acquisitions" 5 l.Hostprof.l_acquisitions;
    Alcotest.(check int) "never contended" 0 l.Hostprof.l_contended;
    Alcotest.(check int) "no wait" 0 l.Hostprof.l_wait_ns

let test_lock_probe_contended () =
  let probe = Hostprof.make_lock "test.contended" in
  let m = Mutex.create () in
  Hostprof.start ();
  Mutex.lock m;
  let d =
    Domain.spawn (fun () ->
        Hostprof.set_role "fighter";
        Hostprof.lock_acquire probe m;
        Mutex.unlock m)
  in
  Unix.sleepf 0.02;
  Mutex.unlock m;
  Domain.join d;
  let p = Hostprof.stop () in
  (match
     List.find_opt
       (fun l -> l.Hostprof.l_name = "test.contended")
       p.Hostprof.p_locks
   with
   | None -> Alcotest.fail "probe not reported"
   | Some l ->
     Alcotest.(check int) "one acquisition" 1 l.Hostprof.l_acquisitions;
     Alcotest.(check int) "contended" 1 l.Hostprof.l_contended;
     Alcotest.(check bool) "waited >= 10ms" true
       (l.Hostprof.l_wait_ns >= 10_000_000);
     Alcotest.(check int) "histogram observed once" 1
       l.Hostprof.l_hist.Obs.h_count);
  (* The fighter's wait must show up in its own wall decomposition. *)
  match
    List.find_opt
      (fun w -> w.Hostprof.w_role = "fighter")
      p.Hostprof.p_workers
  with
  | None -> Alcotest.fail "fighter track missing"
  | Some w ->
    Alcotest.(check bool) "lock bucket charged" true
      (w.Hostprof.w_lock_ns >= 10_000_000);
    Alcotest.(check int) "fighter telescopes" w.Hostprof.w_wall_ns
      (sum_buckets w)

(* --- probes are inert when no window is open --- *)

let test_probes_off_are_noops () =
  Alcotest.(check bool) "off" false (Hostprof.on ());
  Alcotest.(check int) "enqueue token" min_int (Hostprof.task_enqueued ());
  let r = Hostprof.task ~label:"off" (fun () -> 42) in
  Alcotest.(check int) "task passthrough" 42 r;
  let probe = Hostprof.make_lock "test.off" in
  let m = Mutex.create () in
  Hostprof.locked probe m (fun () -> ());
  Alcotest.(check int) "idle passthrough" 7 (Hostprof.idle (fun () -> 7));
  Alcotest.(check int) "pass passthrough" 9
    (Hostprof.pass_sample "off" (fun () -> 9))

(* --- golden report --- *)

let golden_profile : Hostprof.profile =
  let worker role busy_ queue_ lock_ gc_ idle_ tasks_ =
    Hostprof.
      { w_role = role; w_wall_ns = 200_000_000; w_busy_ns = busy_;
        w_queue_ns = queue_; w_lock_ns = lock_; w_gc_ns = gc_;
        w_idle_ns = idle_; w_tasks = tasks_; w_minor_words = 1.0e6;
        w_promoted_words = 1.0e4; w_minor_collections = 12;
        w_major_collections = 1 }
  in
  Hostprof.
    { p_wall_ns = 200_000_000;
      p_jobs = 2;
      p_workers =
        [ worker "coordinator" 30_000_000 0 0 0 170_000_000 0;
          worker "worker-0" 150_000_000 10_000_000 20_000_000 5_000_000
            15_000_000 40;
          worker "worker-1" 140_000_000 12_000_000 8_000_000 10_000_000
            30_000_000 38 ];
      p_locks =
        [ { l_name = "session.lock"; l_acquisitions = 120; l_contended = 6;
            l_wait_ns = 28_000_000;
            l_hist =
              Obs.hist_of_values [ 0.001; 0.002; 0.004; 0.005; 0.006; 0.01 ]
          };
          { l_name = "pool.queue"; l_acquisitions = 80; l_contended = 0;
            l_wait_ns = 0; l_hist = Obs.hist_empty () } ];
      p_passes =
        [ { p_pass = "trace"; p_runs = 78; pa_minor_words = 2_496_000.0;
            pa_promoted_words = 312_000.0 };
          { p_pass = "lower"; p_runs = 78; pa_minor_words = 21_216.0;
            pa_promoted_words = 0.0 } ];
      p_queue_hist = Obs.hist_of_values [ 1e-4; 2e-4; 2e-4; 5e-4; 1e-3 ];
      p_spans =
        [ { sp_track = "worker-0"; sp_label = "pool.task";
            sp_start_ns = 1_000_000; sp_end_ns = 5_000_000;
            sp_queue_ns = 200_000; sp_lock_ns = 50_000;
            sp_minor_words = 32_000.0 };
          { sp_track = "worker-1"; sp_label = "pool.task";
            sp_start_ns = 1_500_000; sp_end_ns = 6_000_000;
            sp_queue_ns = 300_000; sp_lock_ns = 0;
            sp_minor_words = 30_000.0 } ] }

(* Pinned output of {!Hostprof.report} on the profile above: the format
   is part of the CLI surface ([alcop perf], [bench perf]). *)
let golden_report =
  {|== host profile: wall 200.0 ms, 2 worker domains ==
track              wall(ms)    busy   queue    lock      gc    idle   tasks
coordinator           200.0   15.0%    0.0%    0.0%    0.0%   85.0%       0
worker-0              200.0   75.0%    5.0%   10.0%    2.5%    7.5%      40
worker-1              200.0   70.0%    6.0%    4.0%    5.0%   15.0%      38
serial (coordinator busy): 15.0% of wall
effective parallelism:     1.60 domains busy on average (nominal 2)
Amdahl: expected speedup <= 1.74x at j=2 (ideal 2.0x)
speedup loss (worker-equivalents): idle 0.23, lock 0.14, queue 0.11, gc 0.07
top contended locks (by total wait):
  session.lock             120 acq,     6 contended,    28.000 ms waited (p50 4.22ms p99 10.00ms)
  pool.queue                80 acq,     0 contended,     0.000 ms waited (p50 - p99 -)
allocation-heaviest passes (minor words/run):
  trace                    78 runs,    3.2e+04 minor w/run,      4e+03 promoted w/run
  lower                    78 runs,        272 minor w/run,          0 promoted w/run
task queue latency: 5 tasks, p50 220.7us p90 1.00ms p99 1.00ms
|}

let test_report_golden () =
  Alcotest.(check string) "report golden" golden_report
    (Hostprof.report golden_profile)

let test_report_analysis_numbers () =
  let p = golden_profile in
  Alcotest.(check (float 1e-9)) "serial fraction" 0.15
    (Hostprof.serial_fraction p);
  Alcotest.(check (float 1e-9)) "effective parallelism" 1.6
    (Hostprof.effective_parallelism p);
  Alcotest.(check (float 1e-6)) "Amdahl at j=2"
    (1.0 /. (0.15 +. (0.85 /. 2.0)))
    (Hostprof.expected_speedup p ~jobs:2)

(* --- exports --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_exports () =
  let p = golden_profile in
  let dir = Filename.temp_file "hostprof" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let trace = Filename.concat dir "host.trace.json" in
  let jsonl = Filename.concat dir "host.jsonl" in
  Hostprof.write_chrome_trace trace p;
  Hostprof.write_jsonl jsonl p;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let t = read_file trace in
  Alcotest.(check bool) "trace names the host process" true
    (contains t "alcop host");
  Alcotest.(check bool) "jsonl non-empty" true
    (String.length (read_file jsonl) > 0);
  (match Hostprof.json_of_profile p with
   | Json.Obj fields ->
     (match List.assoc_opt "schema" fields with
      | Some (Json.Str s) -> Alcotest.(check string) "schema" "alcop-hostprof-v1" s
      | _ -> Alcotest.fail "schema field missing");
     (match List.assoc_opt "workers" fields with
      | Some (Json.List ws) -> Alcotest.(check int) "worker rows" 3 (List.length ws)
      | _ -> Alcotest.fail "workers field missing")
   | _ -> Alcotest.fail "profile json is not an object");
  Sys.remove trace;
  Sys.remove jsonl;
  Unix.rmdir dir

(* --- session.cache.entries gauge: FIFO bound under a jobs=4 hammer --- *)

let test_entries_gauge_capacity_hammer () =
  Obs.reset ();
  Obs.record ();
  let capacity = 4 in
  let session = Alcop.Session.create ~hw ~capacity () in
  let spec = Op_spec.matmul ~name:"hostprof_gauge" ~m:64 ~n:64 ~k:128 () in
  (* 32 distinct keys: every (tb_m, tb_n, smem, reg) combination below. *)
  let params =
    List.concat_map
      (fun tb_m ->
        List.concat_map
          (fun tb_n ->
            List.concat_map
              (fun smem ->
                List.map
                  (fun reg ->
                    Alcop_perfmodel.Params.make
                      ~tiling:
                        (Tiling.make ~tb_m ~tb_n ~tb_k:16 ~warp_m:16
                           ~warp_n:16 ~warp_k:16 ())
                      ~smem_stages:smem ~reg_stages:reg ())
                  [ 1; 2 ])
              [ 2; 3 ])
          [ 16; 32 ])
      [ 16; 32; 64; 128 ]
  in
  Alcotest.(check int) "32 distinct keys" 32 (List.length params);
  Pool.with_pool ~jobs:4 (fun p ->
      (* several waves so evictions interleave with concurrent compiles *)
      List.iter
        (fun _ ->
          ignore
            (Pool.map p
               (fun prm -> Alcop.Session.evaluate session prm spec)
               params);
          let s = Alcop.Session.stats session in
          Alcotest.(check bool) "entries never exceed capacity" true
            (s.Alcop.Session.entries <= capacity))
        [ 0; 1; 2 ]);
  let s = Alcop.Session.stats session in
  Alcotest.(check int) "FIFO bound holds at rest" capacity
    s.Alcop.Session.entries;
  Alcotest.(check bool) "evictions happened" true
    (s.Alcop.Session.evictions > 0);
  Alcop.Session.publish_entries_gauge session;
  (match List.assoc_opt "session.cache.entries" (Obs.gauges ()) with
   | None -> Alcotest.fail "gauge not published"
   | Some v ->
     Alcotest.(check (float 0.0)) "gauge equals resident entries"
       (float_of_int capacity) v;
     Alcotest.(check bool) "gauge within FIFO bound" true
       (v <= float_of_int capacity));
  Obs.reset ()

(* The gauge value is -j independent: the coordinator-side read sees
   min(distinct inserts, capacity) whatever the interleaving was. *)
let test_entries_gauge_jobs_invariant () =
  let run jobs =
    Obs.reset ();
    Obs.record ();
    let session = Alcop.Session.create ~hw ~capacity:8 () in
    let spec = Op_spec.matmul ~name:"hostprof_gauge_j" ~m:64 ~n:64 ~k:128 () in
    let params i =
      Alcop_perfmodel.Params.make
        ~tiling:
          (Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16
             ~warp_k:16 ())
        ~smem_stages:(2 + (i mod 2)) ~reg_stages:(1 + (i mod 2)) ()
    in
    ignore
      (Pool.with_pool ~jobs (fun p ->
           Pool.map p
             (fun i -> Alcop.Session.evaluate session (params i) spec)
             (List.init 12 Fun.id)));
    Alcop.Session.publish_entries_gauge session;
    let v = List.assoc_opt "session.cache.entries" (Obs.gauges ()) in
    Obs.reset ();
    v
  in
  let v1 = run 1 and v4 = run 4 in
  Alcotest.(check bool) "published at j=1" true (v1 <> None);
  Alcotest.(check bool) "gauge value independent of -j" true (v1 = v4)

let suite =
  [ ( "hostprof",
      [ Alcotest.test_case "telescoping exact at jobs 1/4" `Quick
          test_telescoping_exact;
        Alcotest.test_case "inline window telescopes" `Quick
          test_inline_window;
        Alcotest.test_case "check rejects tampered profile" `Quick
          test_check_rejects_violation;
        QCheck_alcotest.to_alcotest prop_profiling_leaves_telemetry_identical;
        Alcotest.test_case "lock probe: uncontended fast path" `Quick
          test_lock_probe_uncontended;
        Alcotest.test_case "lock probe: contended wait measured" `Quick
          test_lock_probe_contended;
        Alcotest.test_case "probes are no-ops when off" `Quick
          test_probes_off_are_noops;
        Alcotest.test_case "report golden" `Quick test_report_golden;
        Alcotest.test_case "analysis numbers" `Quick
          test_report_analysis_numbers;
        Alcotest.test_case "exports" `Quick test_exports;
        Alcotest.test_case "entries gauge: capacity hammer at jobs=4" `Quick
          test_entries_gauge_capacity_hammer;
        Alcotest.test_case "entries gauge: -j invariant" `Quick
          test_entries_gauge_jobs_invariant ] ) ]
