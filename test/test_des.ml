(* Unit tests of the discrete-event timing engine on hand-constructed
   traces: closed-form latencies for pure compute, bandwidth-bound loads,
   barrier semantics, pipelined overlap, multi-threadblock contention and
   the scoreboard lookahead. These pin the engine's semantics independently
   of the compiler above it. *)

open Alcop_gpusim

let hw = Alcop_hw.Hw_config.ampere_a100

let cfg ?(residents = 1) ?(active_sms = 108) ?(miss_rate = 1.0)
    ?(warps_per_tb = 4) ?(barrier_groups = []) () =
  { Timing.hw; residents; active_sms; warps_per_tb; miss_rate;
    smem_penalty = 1.0; issue_overhead = 0.0; barrier_groups }

let run ?residents ?active_sms ?miss_rate ?warps_per_tb ?barrier_groups events =
  Timing.simulate_wave
    (cfg ?residents ?active_sms ?miss_rate ?warps_per_tb ?barrier_groups ())
    (Array.of_list events)

let compute flops = Trace.Compute { flops }
let gload bytes = Trace.Load { level = Trace.From_global; bytes; async = false; group = None }
let aload bytes g =
  Trace.Load { level = Trace.From_global; bytes; async = true; group = Some g }

let check_cycles name expected actual =
  Alcotest.(check (float 1.0)) name expected actual

let test_pure_compute () =
  (* 4 warps: util = 1; 2048 flops/cycle. *)
  let r = run [ compute 204800; compute 204800 ] in
  check_cycles "two back-to-back computes" 200.0 r.Timing.cycles

let test_compute_underutilized () =
  (* 1 warp: util = 1/4 -> rate 512 flops/cycle. *)
  let r = run ~warps_per_tb:1 [ compute 51200 ] in
  check_cycles "quarter rate" 100.0 r.Timing.cycles

let test_sync_load_blocks_next_compute () =
  (* scoreboard lookahead: the FIRST compute does not wait for the load
     issued just before it; the SECOND does. *)
  let bytes = 110300 in
  (* service = bytes / (1103/108 per-SM share) ~ 10800 cyc; plus latency *)
  let r = run [ gload bytes; compute 2048; compute 2048 ] in
  let service = float_of_int bytes /. (1103.0 /. 108.0) in
  let expected = service +. hw.Alcop_hw.Hw_config.dram_latency +. 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "second compute waits the load (%.0f ~ %.0f)" r.Timing.cycles expected)
    true
    (Float.abs (r.Timing.cycles -. expected) < 5.0)

let test_barrier_waits_all_loads () =
  let bytes = 11030 in
  let r = run [ gload bytes; Trace.Barrier; compute 2048 ] in
  let service = float_of_int bytes /. (1103.0 /. 108.0) in
  let expected = service +. hw.Alcop_hw.Hw_config.dram_latency +. 1.0 in
  Alcotest.(check bool) "barrier exposes the load" true
    (Float.abs (r.Timing.cycles -. expected) < 5.0)

let test_async_pipeline_overlap () =
  (* Two-stage pipeline, load far smaller than compute: the steady state is
     compute-bound and loads vanish behind it. *)
  let g = "p" in
  let iter i =
    [ aload 128 g; Trace.Commit { group = g; sync = true }; Trace.Wait_oldest { group = g; sync = true }; compute 2048000 ]
    |> fun l -> if i = 0 then (aload 128 g :: Trace.Commit { group = g; sync = true } :: l) else l
  in
  let events = List.concat (List.init 4 iter) in
  let r = run events in
  (* 4 computes of 1000 cycles each dominate *)
  Alcotest.(check bool)
    (Printf.sprintf "compute-bound (%.0f in [4000, 4400])" r.Timing.cycles)
    true
    (r.Timing.cycles >= 4000.0 && r.Timing.cycles < 4400.0)

let test_wait_blocks_until_oldest () =
  let g = "p" in
  let bytes = 110300 in
  let service = float_of_int bytes /. (1103.0 /. 108.0) in
  let r =
    run [ aload bytes g; Trace.Commit { group = g; sync = true }; Trace.Wait_oldest { group = g; sync = true }; compute 2048 ]
  in
  let expected = service +. hw.Alcop_hw.Hw_config.dram_latency +. 1.0 in
  Alcotest.(check bool) "wait exposes the async load" true
    (Float.abs (r.Timing.cycles -. expected) < 5.0)

let test_bandwidth_contention_across_tbs () =
  (* Two resident threadblocks sharing the DRAM server take twice as long
     as one for bandwidth-bound work. *)
  let events = [ gload 1103000; Trace.Barrier ] in
  let one = run ~residents:1 events in
  let two = run ~residents:2 events in
  Alcotest.(check bool)
    (Printf.sprintf "2 TBs ~ 2x (%.0f vs %.0f)" two.Timing.cycles one.Timing.cycles)
    true
    (two.Timing.cycles > one.Timing.cycles *. 1.8)

let test_compute_multiplexing_hides_loads () =
  (* One TB alternating load/compute is latency-bound; four TBs fill the
     gaps and push tensor-core utilization up. *)
  let g = "p" in
  let iter _ =
    [ aload 1024 g; Trace.Commit { group = g; sync = true }; Trace.Wait_oldest { group = g; sync = true }; compute 204800 ]
  in
  let events = List.concat (List.init 8 iter) in
  let one = run ~residents:1 events in
  let four = run ~residents:4 events in
  (* four TBs do 4x the work; if multiplexing hides latency the wave takes
     well under 4x the single-TB time *)
  Alcotest.(check bool)
    (Printf.sprintf "multiplexing helps (%.0f < 2.5 * %.0f)" four.Timing.cycles
       one.Timing.cycles)
    true
    (four.Timing.cycles < 2.5 *. one.Timing.cycles);
  Alcotest.(check bool) "utilization grows" true
    (four.Timing.compute_busy /. four.Timing.cycles
     > one.Timing.compute_busy /. one.Timing.cycles *. 1.5)

let test_boundary_flushes_lookahead () =
  (* A synchronized-group wait acts as a hoisting boundary: the first
     compute after it must wait for its own (post-boundary) loads, so the
     second compute serializes after the load while without the boundary it
     overlaps. The kernel end waits for all loads in both cases; only the
     compute tail differs. *)
  let g = "p" in
  let bytes = 110300 in
  let tail = 204800 (* 100 cycles at full rate *) in
  let events =
    [ aload 16 g; Trace.Commit { group = g; sync = true }; Trace.Wait_oldest { group = g; sync = true }; gload bytes;
      compute tail; compute tail ]
  in
  let with_boundary = run ~barrier_groups:[ g ] events in
  let without_boundary = run events in
  let delta = with_boundary.Timing.cycles -. without_boundary.Timing.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "boundary serializes one compute tail (delta %.0f ~ 100)"
       delta)
    true
    (delta > 80.0 && delta < 120.0)

let test_empty_trace () =
  let r = run [] in
  check_cycles "empty" 0.0 r.Timing.cycles

let test_store_counted_at_kernel_end () =
  let r = run [ Trace.Store { bytes = 110300 } ] in
  Alcotest.(check bool) "store drains before the kernel ends" true
    (r.Timing.cycles > 100.0)

let test_deterministic_jitter_bounds () =
  for key = 0 to 200 do
    let j = Timing.jitter key in
    Alcotest.(check bool) "within 3%" true (j >= 0.97 && j <= 1.03);
    Alcotest.(check (float 0.0)) "stable" j (Timing.jitter key)
  done

let test_bank_conflict_penalty () =
  Alcotest.(check (float 1e-9)) "swizzled" 1.0
    (Timing.bank_conflict_penalty ~swizzle:true ~tb_k:64 ~elem_bytes:2);
  Alcotest.(check bool) "unswizzled power-of-two worst" true
    (Timing.bank_conflict_penalty ~swizzle:false ~tb_k:64 ~elem_bytes:2
     > Timing.bank_conflict_penalty ~swizzle:false ~tb_k:24 ~elem_bytes:2)

let suite =
  [ ( "des",
      [ Alcotest.test_case "pure compute" `Quick test_pure_compute;
        Alcotest.test_case "compute underutilized" `Quick
          test_compute_underutilized;
        Alcotest.test_case "scoreboard lookahead" `Quick
          test_sync_load_blocks_next_compute;
        Alcotest.test_case "barrier waits all loads" `Quick
          test_barrier_waits_all_loads;
        Alcotest.test_case "async pipeline overlap" `Quick
          test_async_pipeline_overlap;
        Alcotest.test_case "wait blocks until oldest" `Quick
          test_wait_blocks_until_oldest;
        Alcotest.test_case "bandwidth contention" `Quick
          test_bandwidth_contention_across_tbs;
        Alcotest.test_case "multiplexing hides loads" `Quick
          test_compute_multiplexing_hides_loads;
        Alcotest.test_case "boundary flushes lookahead" `Quick
          test_boundary_flushes_lookahead;
        Alcotest.test_case "empty trace" `Quick test_empty_trace;
        Alcotest.test_case "store drains" `Quick test_store_counted_at_kernel_end;
        Alcotest.test_case "jitter bounds" `Quick test_deterministic_jitter_bounds;
        Alcotest.test_case "bank conflict penalty" `Quick
          test_bank_conflict_penalty ] ) ]
