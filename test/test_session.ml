(* Tests for the compilation session (the content-addressed artifact cache):
   bit-identical results vs. cold compiles, counter telescoping, eviction,
   pass-through mode and the shared per-hardware registry. *)

open Alcop_sched
open Alcop

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"sess_test" ~m:128 ~n:64 ~k:256 ()

let space =
  Alcop_tune.Space.enumerate ~restriction:Alcop_tune.Space.full spec

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let params = Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()

let test_hit_returns_identical_artifact () =
  let session = Session.create ~hw () in
  match Session.compile session params spec, Session.compile session params spec with
  | Ok cold, Ok hit ->
    Alcotest.(check bool) "latency bit-identical" true
      (cold.Compiler.latency_cycles = hit.Compiler.latency_cycles);
    Alcotest.(check bool) "timing bit-identical" true
      (cold.Compiler.timing = hit.Compiler.timing);
    Alcotest.(check bool) "same artifact, not a re-compile" true
      (cold == hit);
    let s = Session.stats session in
    Alcotest.(check int) "one hit" 1 s.Session.hits;
    Alcotest.(check int) "one miss" 1 s.Session.misses
  | _ -> Alcotest.fail "compile failed"

let test_errors_are_memoized () =
  let session = Session.create ~hw () in
  let big =
    Alcop_perfmodel.Params.make
      ~tiling:(Tiling.make ~tb_m:256 ~tb_n:128 ~tb_k:64 ~warp_m:64 ~warp_n:64
                 ~warp_k:32 ())
      ~smem_stages:4 ~reg_stages:2 ()
  in
  Alcotest.(check bool) "fails" true (Session.evaluate session big spec = None);
  Alcotest.(check bool) "fails again" true (Session.evaluate session big spec = None);
  let s = Session.stats session in
  Alcotest.(check int) "failure hit from cache" 1 s.Session.hits

let test_eviction_fifo () =
  let session = Session.create ~hw ~capacity:2 () in
  let p i =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:(1 + i) ~reg_stages:1 ()
  in
  ignore (Session.evaluate session (p 0) spec);
  ignore (Session.evaluate session (p 1) spec);
  ignore (Session.evaluate session (p 2) spec);  (* evicts p0 *)
  let s = Session.stats session in
  Alcotest.(check int) "capacity bound" 2 s.Session.entries;
  Alcotest.(check int) "one eviction" 1 s.Session.evictions;
  ignore (Session.evaluate session (p 0) spec);  (* p0 is gone: a miss *)
  let s = Session.stats session in
  Alcotest.(check int) "evicted entry misses" 4 s.Session.misses;
  Alcotest.(check int) "no hits" 0 s.Session.hits

let test_no_cache_pass_through () =
  let session = Session.create ~hw ~cache:false () in
  let a = Session.evaluate session params spec in
  let b = Session.evaluate session params spec in
  Alcotest.(check bool) "same result" true (a = b);
  let s = Session.stats session in
  Alcotest.(check int) "no entries" 0 s.Session.entries;
  Alcotest.(check int) "no hits" 0 s.Session.hits;
  Alcotest.(check int) "no misses" 0 s.Session.misses

let test_registry_shared_per_hw () =
  let a = Session.for_hw hw and b = Session.for_hw hw in
  Alcotest.(check bool) "same session object" true (a == b);
  let v100 = Session.for_hw Alcop_hw.Hw_config.volta_v100 in
  Alcotest.(check bool) "different hw, different session" true (not (a == v100))

let test_clear () =
  let session = Session.create ~hw () in
  ignore (Session.evaluate session params spec);
  ignore (Session.evaluate session params spec);
  Session.clear session;
  let s = Session.stats session in
  Alcotest.(check int) "entries dropped" 0 s.Session.entries;
  Alcotest.(check int) "counters zeroed" 0 (s.Session.hits + s.Session.misses)

(* --- the satellite qcheck property: cached evaluation is bit-identical to
   a cold [Compiler.compile], and hit/miss counters telescope to the total
   number of evaluations. --- *)

let prop_cached_equals_cold =
  QCheck.Test.make
    ~name:"session evaluation == cold compile; counters telescope"
    ~count:60
    QCheck.(int_bound (Array.length space - 1))
    (fun i ->
      let p = space.(i) in
      let session = Session.create ~hw () in
      let cold =
        match Compiler.compile ~hw p spec with
        | Ok c -> Some (c.Compiler.latency_cycles, c.Compiler.timing)
        | Error _ -> None
      in
      let view = function
        | Ok (c : Compiler.compiled) ->
          Some (c.Compiler.latency_cycles, c.Compiler.timing)
        | Error _ -> None
      in
      let first = view (Session.compile session p spec) in
      let second = view (Session.compile session p spec) in
      let s = Session.stats session in
      first = cold && second = cold
      && s.Session.hits + s.Session.misses = 2
      && s.Session.hits = 1)

let suite =
  [ ( "session",
      [ Alcotest.test_case "hit returns the identical artifact" `Quick
          test_hit_returns_identical_artifact;
        Alcotest.test_case "errors are memoized" `Quick
          test_errors_are_memoized;
        Alcotest.test_case "FIFO eviction at capacity" `Quick
          test_eviction_fifo;
        Alcotest.test_case "cache:false is a pass-through" `Quick
          test_no_cache_pass_through;
        Alcotest.test_case "registry shares sessions per hardware" `Quick
          test_registry_shared_per_hw;
        Alcotest.test_case "clear" `Quick test_clear;
        QCheck_alcotest.to_alcotest prop_cached_equals_cold ] ) ]
