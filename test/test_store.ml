(* Tests for the persistent on-disk artifact store: cross-"process"
   serving (a fresh session over a shared directory), corruption
   tolerance, size-capped eviction, concurrent same-key hammering, and
   wave-result persistence with config verification. *)

open Alcop
module Timing = Alcop_gpusim.Timing

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Alcop_workloads.Suites.mm_rn50_fc

let tiling =
  Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
    ~warp_k:16 ()

let params = Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()

let bad_params =
  (* smem stages beyond what shared memory fits: a memoized failure *)
  Alcop_perfmodel.Params.make ~tiling ~smem_stages:64 ~reg_stages:2 ()

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "alcop-store-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Sys.remove d with Sys_error _ -> ());
  d

(* --- cross-process serving: fresh session, shared directory --- *)

let test_warm_across_sessions () =
  let dir = fresh_dir () in
  let st1 = Store.create ~root:dir () in
  let s1 = Session.create ~hw ~store:st1 () in
  let cold =
    match Session.timing s1 params spec with
    | Ok r -> r
    | Error msg -> Alcotest.failf "cold compile failed: %s" msg
  in
  Alcotest.(check int) "cold run wrote one entry" 1 (Store.stats st1).Store.writes;
  (* A fresh session + store handle over the same directory is what a new
     process sees: the timing query must be served from disk, without
     compiling, and bit-identically. *)
  let st2 = Store.create ~root:dir () in
  let s2 = Session.create ~hw ~store:st2 () in
  (match Session.timing s2 params spec with
   | Ok warm ->
     Alcotest.(check bool) "latency bit-identical" true
       (warm.Session.latency_cycles = cold.Session.latency_cycles);
     Alcotest.(check bool) "kernel timing identical" true
       (warm.Session.timing = cold.Session.timing)
   | Error msg -> Alcotest.failf "warm timing failed: %s" msg);
  let s = Store.stats st2 in
  Alcotest.(check int) "served from disk" 1 s.Store.hits;
  Alcotest.(check int) "nothing recompiled, nothing written" 0 s.Store.writes;
  (* Third tier: the record is now memory-resident in s2 — the next call
     must not touch the disk again. *)
  ignore (Session.timing s2 params spec);
  Alcotest.(check int) "second lookup is a memory hit" 1
    (Store.stats st2).Store.hits;
  Alcotest.(check int) "session counted both" 1 (Session.stats s2).Session.hits

let test_failures_persist () =
  let dir = fresh_dir () in
  let s1 =
    Session.create ~hw ~store:(Store.create ~root:dir ()) ()
  in
  Alcotest.(check bool) "bad point fails cold" true
    (Session.evaluate s1 bad_params spec = None);
  let st2 = Store.create ~root:dir () in
  let s2 = Session.create ~hw ~store:st2 () in
  Alcotest.(check bool) "bad point fails warm" true
    (Session.evaluate s2 bad_params spec = None);
  Alcotest.(check int) "failure served from disk" 1 (Store.stats st2).Store.hits

let test_compile_never_reads_records () =
  (* [compile] needs the full artifact; a disk record must not satisfy
     it, and the full compile must upgrade the entry in place. *)
  let dir = fresh_dir () in
  ignore
    (Session.timing
       (Session.create ~hw ~store:(Store.create ~root:dir ()) ())
       params spec);
  let st = Store.create ~root:dir () in
  let s = Session.create ~hw ~store:st () in
  (match Session.timing s params spec with
   | Ok _ -> ()
   | Error msg -> Alcotest.failf "warm timing failed: %s" msg);
  (match Session.compile s params spec with
   | Ok c ->
     Alcotest.(check bool) "full artifact has a program" true
       (c.Compiler.latency_cycles > 0.0)
   | Error e -> Alcotest.failf "compile failed: %s" (Compiler.error_to_string e));
  (* After the upgrade, compile is a pure memory hit. *)
  let misses_before = (Session.stats s).Session.misses in
  ignore (Session.compile s params spec);
  Alcotest.(check int) "upgraded entry serves compile" misses_before
    (Session.stats s).Session.misses

(* --- corruption tolerance --- *)

let corrupt_then_serve payload =
  let dir = fresh_dir () in
  let st1 = Store.create ~root:dir () in
  let s1 = Session.create ~hw ~store:st1 () in
  let cold =
    match Session.timing s1 params spec with
    | Ok r -> r.Session.latency_cycles
    | Error msg -> Alcotest.failf "cold compile failed: %s" msg
  in
  let key =
    Fingerprint.to_hex
      (Fingerprint.compile_key ~hw ~extra_regs_per_thread:0 params spec)
  in
  let path = Store.entry_path st1 ~ns:"compile" key in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc payload);
  let st2 = Store.create ~root:dir () in
  let s2 = Session.create ~hw ~store:st2 () in
  let warm =
    match Session.timing s2 params spec with
    | Ok r -> r.Session.latency_cycles
    | Error msg -> Alcotest.failf "recovery compile failed: %s" msg
  in
  Alcotest.(check bool) "recomputed value matches" true (warm = cold);
  let s = Store.stats st2 in
  Alcotest.(check int) "corrupt entry counted" 1 s.Store.corrupt;
  Alcotest.(check int) "corrupt entry is not a hit" 0 s.Store.hits;
  Alcotest.(check int) "bad entry rewritten" 1 s.Store.writes;
  (* The bad file was deleted and replaced; a third process hits again. *)
  let st3 = Store.create ~root:dir () in
  let s3 = Session.create ~hw ~store:st3 () in
  ignore (Session.timing s3 params spec);
  Alcotest.(check int) "replaced entry serves again" 1 (Store.stats st3).Store.hits

let test_corrupt_entries () =
  corrupt_then_serve "";                                  (* truncated to nothing *)
  corrupt_then_serve "{\"v\":1,\"ok\":true";              (* cut mid-document *)
  corrupt_then_serve "not json at all \x00\xff";          (* garbage bytes *)
  corrupt_then_serve "{\"v\":999,\"ok\":true}"            (* future schema *)

let prop_corruption_fuzz =
  (* Any byte string in an entry file either parses to a record or reads
     as [None] — [Artifact.of_string] never raises. *)
  QCheck.Test.make ~name:"artifact parser never raises on garbage" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.char)
    (fun garbage ->
      match Artifact.of_string garbage with
      | Some _ | None -> true)

(* --- serialization round-trip --- *)

let test_artifact_roundtrip () =
  let c =
    match
      Compiler.compile ~hw ~extra_regs_per_thread:0 params spec
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile failed: %s" (Compiler.error_to_string e)
  in
  let record =
    Artifact.Success
      { Artifact.latency_cycles = c.Compiler.latency_cycles;
        timing = c.Compiler.timing;
        gauges = [ ("timing.n_waves", 7.0); ("timing.miss_rate", 0.125) ] }
  in
  (match Artifact.of_string (Artifact.to_string record) with
   | Some (Artifact.Success r) ->
     Alcotest.(check bool) "latency round-trips bit-identically" true
       (r.Artifact.latency_cycles = c.Compiler.latency_cycles);
     Alcotest.(check bool) "kernel timing round-trips" true
       (r.Artifact.timing = c.Compiler.timing);
     Alcotest.(check bool) "gauges round-trip" true
       (r.Artifact.gauges
        = [ ("timing.n_waves", 7.0); ("timing.miss_rate", 0.125) ])
   | Some (Artifact.Failure _) | None -> Alcotest.fail "round-trip lost record");
  let failure = Artifact.Failure { kind = "launch"; message = "too big" } in
  match Artifact.of_string (Artifact.to_string failure) with
  | Some (Artifact.Failure { kind; message }) ->
    Alcotest.(check string) "kind" "launch" kind;
    Alcotest.(check string) "message" "too big" message
  | Some (Artifact.Success _) | None -> Alcotest.fail "round-trip lost failure"

(* --- eviction under a size cap --- *)

let test_gc_eviction () =
  let dir = fresh_dir () in
  let st = Store.create ~root:dir ~max_bytes:4096 () in
  let payload = String.make 512 'x' in
  for i = 0 to 19 do
    let key = Digest.to_hex (Digest.string (string_of_int i)) in
    Store.write st ~ns:"compile" key payload;
    (* widen the mtime spacing so LRU order is unambiguous *)
    let mt = 1e9 +. (float_of_int i *. 10.0) in
    Unix.utimes (Store.entry_path st ~ns:"compile" key) mt mt
  done;
  let _, bytes_before = Store.usage st in
  Alcotest.(check bool) "over cap before gc" true (bytes_before > 4096);
  let removed = Store.gc st () in
  let entries, bytes = Store.usage st in
  Alcotest.(check bool) "under cap after gc" true (bytes <= 4096);
  Alcotest.(check int) "entries + removed = 20" 20 (entries + removed);
  (* LRU: the newest entries survive. *)
  for i = 13 to 19 do
    let key = Digest.to_hex (Digest.string (string_of_int i)) in
    Alcotest.(check bool)
      (Printf.sprintf "entry %d (recent) survives" i)
      true
      (Sys.file_exists (Store.entry_path st ~ns:"compile" key))
  done;
  Alcotest.(check int) "gc below cap is a no-op" 0 (Store.gc st ())

(* --- unwritable root degrades cleanly --- *)

let test_unwritable_root () =
  let file = Filename.temp_file "alcop-store" ".blocker" in
  (* the root's parent is a regular file: mkdir must fail *)
  let st = Store.create ~root:(Filename.concat file "store") () in
  Alcotest.(check bool) "store disabled" false (Store.enabled st);
  Store.write st ~ns:"compile" "deadbeef" "data";
  Alcotest.(check bool) "write is a no-op" true
    (Store.read st ~ns:"compile" "deadbeef" = None);
  (* Sessions keep working without it. *)
  let s = Session.create ~hw ~store:st () in
  Alcotest.(check bool) "evaluate still works" true
    (Session.evaluate s params spec <> None);
  Sys.remove file

let test_default_root_env () =
  let saved_store = Sys.getenv_opt "ALCOP_STORE" in
  let saved_xdg = Sys.getenv_opt "XDG_CACHE_HOME" in
  let restore () =
    let put name v =
      match v with Some v -> Unix.putenv name v | None -> Unix.putenv name ""
    in
    put "ALCOP_STORE" saved_store;
    put "XDG_CACHE_HOME" saved_xdg
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "ALCOP_STORE" "";
      Unix.putenv "XDG_CACHE_HOME" "/some/cache";
      Alcotest.(check string) "XDG_CACHE_HOME honored" "/some/cache/alcop"
        (Store.default_root ());
      Unix.putenv "ALCOP_STORE" "/explicit/store";
      Alcotest.(check string) "ALCOP_STORE wins" "/explicit/store"
        (Store.default_root ()))

(* --- concurrent same-key hammer --- *)

let test_same_key_hammer () =
  (* Writers and readers race on one key through independent store
     handles over the same directory (the same file-level interleavings
     two OS processes produce). Every read must observe a complete
     payload — atomic rename means torn entries are impossible. *)
  let dir = fresh_dir () in
  let key = Digest.to_hex (Digest.string "hammer") in
  let payload tag = Printf.sprintf "{\"tag\":%d,\"fill\":\"%s\"}" tag (String.make 256 'p') in
  let iters = 200 in
  let bad = Atomic.make 0 in
  let worker tag () =
    let st = Store.create ~root:dir () in
    for _ = 1 to iters do
      Store.write st ~ns:"compile" key (payload tag);
      match Store.read st ~ns:"compile" key with
      | None -> Atomic.incr bad
      | Some data ->
        let ok =
          (* must be exactly one writer's complete payload *)
          List.exists (fun t -> String.equal data (payload t)) [ 0; 1; 2; 3 ]
        in
        if not ok then Atomic.incr bad
    done
  in
  let domains = List.init 4 (fun tag -> Domain.spawn (worker tag)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get bad);
  (* the surviving entry is one of the writers', intact *)
  let st = Store.create ~root:dir () in
  (match Store.read st ~ns:"compile" key with
   | Some data ->
     Alcotest.(check bool) "final entry intact" true
       (List.exists (fun t -> String.equal data (payload t)) [ 0; 1; 2; 3 ])
   | None -> Alcotest.fail "entry vanished");
  (* no leftover temp files *)
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> String.length f >= 4 && String.sub f 0 4 = ".tmp")
  in
  Alcotest.(check (list string)) "no stale temp files" [] leftovers

(* --- wave-result persistence --- *)

let timing_request () =
  match Compiler.compile ~hw ~extra_regs_per_thread:0 params spec with
  | Ok c -> c.Compiler.timing_request
  | Error e -> Alcotest.failf "compile failed: %s" (Compiler.error_to_string e)

let test_wave_persistence () =
  let req = timing_request () in
  let dir = fresh_dir () in
  let st = Store.create ~root:dir () in
  Store.install_wave_persist st;
  Fun.protect ~finally:Store.uninstall_wave_persist (fun () ->
      Timing.wave_cache_clear ();
      let dh0, _ = Timing.wave_persist_stats () in
      let cold =
        Timing.with_wave_reuse (fun () -> Timing.run req)
      in
      Alcotest.(check bool) "wave entries written" true
        (let _, b = Store.usage st in b > 0);
      (* A "fresh process": drop the in-memory wave cache, keep the disk. *)
      Timing.wave_cache_clear ();
      let warm = Timing.with_wave_reuse (fun () -> Timing.run req) in
      let dh1, _ = Timing.wave_persist_stats () in
      Alcotest.(check bool) "disk tier hit" true (dh1 > dh0);
      (match cold, warm with
       | Ok a, Ok b ->
         Alcotest.(check bool) "timing bit-identical through disk" true (a = b)
       | _ -> Alcotest.fail "timing run failed");
      (* Config drift must be a miss, not a wrong answer: same program,
         different machine (different bandwidth -> different miss cost). *)
      let hw' =
        { hw with Alcop_hw.Hw_config.dram_bytes_per_cycle =
            hw.Alcop_hw.Hw_config.dram_bytes_per_cycle /. 2.0 }
      in
      let req' = { req with Timing.hw = hw' } in
      Timing.wave_cache_clear ();
      let other = Timing.with_wave_reuse (fun () -> Timing.run req') in
      (match other, cold with
       | Ok o, Ok c ->
         Alcotest.(check bool) "different config, different result" true
           (o.Timing.total_cycles <> c.Timing.total_cycles)
       | _ -> Alcotest.fail "drifted run failed");
      (* Corrupt every wave entry: next run recomputes correctly. *)
      Timing.wave_cache_clear ();
      let ns_dir = Filename.concat dir "wave" in
      Array.iter
        (fun sh ->
          let shd = Filename.concat ns_dir sh in
          if Sys.is_directory shd then
            Array.iter
              (fun f ->
                Out_channel.with_open_bin (Filename.concat shd f) (fun oc ->
                    Out_channel.output_string oc "{broken"))
              (Sys.readdir shd))
        (Sys.readdir ns_dir);
      let recovered = Timing.with_wave_reuse (fun () -> Timing.run req) in
      match recovered, cold with
      | Ok r, Ok c ->
        Alcotest.(check bool) "recovered bit-identically" true (r = c);
        Alcotest.(check bool) "corruption counted" true
          ((Store.stats st).Store.corrupt > 0)
      | _ -> Alcotest.fail "recovery run failed")

let suite =
  [ ( "store",
      [ Alcotest.test_case "warm across sessions (fresh process)" `Quick
          test_warm_across_sessions;
        Alcotest.test_case "failures persist" `Quick test_failures_persist;
        Alcotest.test_case "compile never served by records" `Quick
          test_compile_never_reads_records;
        Alcotest.test_case "corrupt entries are misses" `Quick
          test_corrupt_entries;
        Alcotest.test_case "artifact record round-trip" `Quick
          test_artifact_roundtrip;
        Alcotest.test_case "gc evicts LRU under cap" `Quick test_gc_eviction;
        Alcotest.test_case "unwritable root degrades cleanly" `Quick
          test_unwritable_root;
        Alcotest.test_case "default root honors env" `Quick
          test_default_root_env;
        Alcotest.test_case "concurrent same-key hammer" `Quick
          test_same_key_hammer;
        Alcotest.test_case "wave results persist with config check" `Quick
          test_wave_persistence;
        QCheck_alcotest.to_alcotest prop_corruption_fuzz ] ) ]
