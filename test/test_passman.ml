(* Tests for the pass manager: the pass registry, per-pass observability
   (spans, wall-time gauges, run counters), the --dump-ir-after hook and
   opt-in post-pass IR validation. *)

open Alcop_sched
open Alcop
module Obs = Alcop_obs.Obs

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"pm_test" ~m:128 ~n:64 ~k:256 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:32 ~tb_k:32 ~warp_m:32 ~warp_n:16 ~warp_k:16 ()

let params = Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()

let with_clean_slate f =
  Obs.reset ();
  Passman.clear_dump ();
  Passman.set_validate_ir false;
  Fun.protect f ~finally:(fun () ->
      Obs.reset ();
      Passman.clear_dump ();
      Passman.set_validate_ir false)

let test_registry () =
  Alcotest.(check (list string)) "pipeline order"
    [ "schedule"; "lower"; "pipeline"; "trace"; "timing" ]
    Passman.names;
  Alcotest.(check (list string)) "IR-producing passes"
    [ "lower"; "pipeline" ] Passman.ir_pass_names;
  (match Passman.find "lower" with
   | Some info ->
     Alcotest.(check bool) "lower produces IR" true info.Passman.produces_ir
   | None -> Alcotest.fail "lower not registered");
  Alcotest.(check bool) "unknown pass" true (Passman.find "nope" = None)

let test_dump_hook_fires_for_ir_passes () =
  with_clean_slate @@ fun () ->
  List.iter
    (fun pass ->
      let dumped = ref [] in
      (match
         Passman.set_dump ~after:pass (fun name kernel ->
             dumped := (name, Alcop_ir.Kernel.to_string kernel) :: !dumped)
       with
       | Ok () -> ()
       | Error m -> Alcotest.fail m);
      (match Compiler.compile ~hw params spec with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Compiler.error_to_string e));
      (match !dumped with
       | [ (name, text) ] ->
         Alcotest.(check string) "hook got its own pass" pass name;
         Alcotest.(check bool) "non-empty kernel text" true
           (String.length text > 0)
       | l ->
         Alcotest.failf "expected exactly one dump for %s, got %d" pass
           (List.length l));
      Passman.clear_dump ())
    Passman.ir_pass_names

let test_dump_hook_rejections () =
  with_clean_slate @@ fun () ->
  (match Passman.set_dump ~after:"timing" (fun _ _ -> ()) with
   | Error msg ->
     Alcotest.(check bool) "names the IR passes" true
       (String.length msg > 0)
   | Ok () -> Alcotest.fail "timing must not accept an IR dump");
  match Passman.set_dump ~after:"bogus" (fun _ _ -> ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown pass accepted"

let test_spans_and_gauges () =
  with_clean_slate @@ fun () ->
  Obs.record ();
  let sink, events = Obs.memory_sink () in
  Obs.add_sink sink;
  (match Compiler.compile ~hw params spec with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Compiler.error_to_string e));
  let gauges = Obs.gauges () in
  List.iter
    (fun pass ->
      Alcotest.(check bool)
        (Printf.sprintf "gauge pass.%s.ms published" pass)
        true
        (List.mem_assoc ("pass." ^ pass ^ ".ms") gauges);
      Alcotest.(check int)
        (Printf.sprintf "counter pass.%s.runs" pass)
        1
        (Obs.counter_value ("pass." ^ pass ^ ".runs")))
    Passman.names;
  let span_names =
    List.filter_map
      (function Obs.Span_end { name; _ } -> Some name | _ -> None)
      (events ())
  in
  List.iter
    (fun pass ->
      Alcotest.(check bool)
        (Printf.sprintf "span compile.%s emitted" pass)
        true
        (List.mem ("compile." ^ pass) span_names))
    Passman.names

let test_validation_accepts_compiler_output () =
  with_clean_slate @@ fun () ->
  Passman.set_validate_ir true;
  Alcotest.(check bool) "flag readable" true (Passman.validate_ir ());
  match Compiler.compile ~hw params spec with
  | Ok _ -> ()  (* both IR-producing passes validated en route *)
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let suite =
  [ ( "passman",
      [ Alcotest.test_case "pass registry" `Quick test_registry;
        Alcotest.test_case "dump hook fires for every IR pass" `Quick
          test_dump_hook_fires_for_ir_passes;
        Alcotest.test_case "dump hook rejects non-IR and unknown passes"
          `Quick test_dump_hook_rejections;
        Alcotest.test_case "per-pass spans, gauges and run counters" `Quick
          test_spans_and_gauges;
        Alcotest.test_case "post-pass validation accepts compiler output"
          `Quick test_validation_accepts_compiler_output ] ) ]
