(* Tests for the content-addressed compilation fingerprints: determinism,
   sensitivity to every key component, and the canonical float rendering
   the digests depend on. *)

open Alcop_sched
open Alcop

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"fp_test" ~m:256 ~n:128 ~k:512 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let params = Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()

let key ?(hw = hw) ?(extra = 0) p s =
  Fingerprint.compile_key ~hw ~extra_regs_per_thread:extra p s

let test_deterministic () =
  let a = key params spec and b = key params spec in
  Alcotest.(check bool) "equal inputs, equal fingerprint" true
    (Fingerprint.equal a b);
  Alcotest.(check string) "hex stable" (Fingerprint.to_hex a)
    (Fingerprint.to_hex b);
  Alcotest.(check int) "hex length" 32 (String.length (Fingerprint.to_hex a))

let test_sensitive_to_each_component () =
  let base = key params spec in
  let p' = Alcop_perfmodel.Params.make ~tiling ~smem_stages:2 ~reg_stages:2 () in
  Alcotest.(check bool) "schedule point changes the key" false
    (Fingerprint.equal base (key p' spec));
  let s' = Op_spec.matmul ~name:"fp_test" ~m:256 ~n:128 ~k:1024 () in
  Alcotest.(check bool) "operator shape changes the key" false
    (Fingerprint.equal base (key params s'));
  Alcotest.(check bool) "hardware changes the key" false
    (Fingerprint.equal base (key ~hw:Alcop_hw.Hw_config.volta_v100 params spec));
  Alcotest.(check bool) "extra register pressure changes the key" false
    (Fingerprint.equal base (key ~extra:8 params spec))

let test_name_does_not_matter_but_shape_does () =
  (* The operator *name* is presentation, but it names the same
     computation only when the shape matches — it IS part of the key
     (suite operators are keyed by their identity). Pin that choice. *)
  let renamed = Op_spec.matmul ~name:"fp_other" ~m:256 ~n:128 ~k:512 () in
  Alcotest.(check bool) "renamed operator re-keys" false
    (Fingerprint.equal (key params spec) (key params renamed))

let test_schema_bump () =
  (* The packed-program datapath changed what a compiled artifact *is*,
     so the key schema was bumped: a v2 key can never collide with a v1
     key for the same inputs — cached replay across the representation
     change is impossible by construction. *)
  Alcotest.(check int) "schema version is 2" 2 Fingerprint.schema_version;
  let v_key v =
    Fingerprint.compile_key_v ~version:v ~hw ~extra_regs_per_thread:0 params
      spec
  in
  Alcotest.(check bool) "v1 and v2 keys differ" false
    (Fingerprint.equal (v_key 1) (v_key 2));
  Alcotest.(check bool) "compile_key is the v2 key" true
    (Fingerprint.equal (key params spec) (v_key Fingerprint.schema_version))

let test_direct_emission_matches_tree () =
  (* [compile_key_v] emits the canonical JSON bytes directly into a scratch
     buffer; the tree built by [compile_key_doc] is the specification. The
     digests must agree — on several spec shapes so the conv2d / epilogue /
     split-k branches of the direct emitter are all exercised. *)
  let check_spec name params spec =
    Alcotest.(check bool) name true
      (Fingerprint.equal
         (Fingerprint.compile_key_v ~version:Fingerprint.schema_version ~hw
            ~extra_regs_per_thread:3 params spec)
         (Fingerprint.of_json
            (Fingerprint.compile_key_doc ~version:Fingerprint.schema_version
               ~hw ~extra_regs_per_thread:3 params spec)))
  in
  check_spec "matmul" params spec;
  let conv =
    Op_spec.conv2d ~name:"fp_conv"
      { Op_spec.cn = 8; ci = 64; ch = 28; cw = 28; co = 128; ckh = 3; ckw = 3;
        stride = 1; pad = 1 }
  in
  check_spec "conv2d" params conv;
  let epi = Op_spec.matmul ~name:"fp_epi" ~m:256 ~n:128 ~k:512 ~epilogue:"relu" () in
  check_spec "epilogue" params epi;
  let splitk =
    Alcop_perfmodel.Params.make
      ~tiling:
        (Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
           ~warp_k:16 ~split_k:4 ())
      ~smem_stages:2 ~reg_stages:1 ~swizzle:false ()
  in
  check_spec "split-k params" splitk spec

(* --- canonical float rendering (satellite: float-keyed stability) --- *)

let test_float_repr_examples () =
  let repr = Alcop_obs.Json.float_repr in
  Alcotest.(check string) "short decimal stays short" "0.1" (repr 0.1);
  Alcotest.(check string) "integral float keeps its marker" "1.0" (repr 1.0);
  Alcotest.(check bool) "tenth-of-three round-trips" true
    (float_of_string (repr (0.3 /. 3.0)) = 0.3 /. 3.0);
  (* Two ways of computing the same double must render identically. *)
  let a = 0.1 +. 0.2 and b = 0.3000000000000000444089209850062616169452667236328125 in
  Alcotest.(check bool) "same double" true (a = b);
  Alcotest.(check string) "same rendering" (repr a) (repr b)

let prop_float_repr_roundtrip =
  QCheck.Test.make ~name:"float_repr round-trips every finite double"
    ~count:1000
    QCheck.(float_bound_exclusive 1e12)
    (fun f ->
      let f = if Float.is_nan f || Float.is_integer f then Float.abs f +. 0.5 else f in
      float_of_string (Alcop_obs.Json.float_repr f) = f)

let prop_hw_json_float_stability =
  (* Scaling a hardware rate by x then dividing by x again must produce a
     fingerprint equal to the original whenever the float round-trips —
     i.e. the digest depends only on the double's value. *)
  QCheck.Test.make ~name:"hw fingerprint depends only on float values"
    ~count:200
    QCheck.(float_range 0.125 8.0)
    (fun x ->
      let open Alcop_hw in
      let hw1 = { hw with Hw_config.clock_ghz = hw.Hw_config.clock_ghz } in
      let scaled = hw.Hw_config.clock_ghz *. x /. x in
      let hw2 = { hw with Hw_config.clock_ghz = scaled } in
      if scaled = hw.Hw_config.clock_ghz then
        Fingerprint.equal
          (Fingerprint.of_json (Fingerprint.json_of_hw hw1))
          (Fingerprint.of_json (Fingerprint.json_of_hw hw2))
      else true)

let suite =
  [ ( "fingerprint",
      [ Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "sensitive to every component" `Quick
          test_sensitive_to_each_component;
        Alcotest.test_case "operator identity is part of the key" `Quick
          test_name_does_not_matter_but_shape_does;
        Alcotest.test_case "packed-datapath schema bump re-keys" `Quick
          test_schema_bump;
        Alcotest.test_case "direct emission == tree rendering" `Quick
          test_direct_emission_matches_tree;
        Alcotest.test_case "float_repr examples" `Quick
          test_float_repr_examples;
        QCheck_alcotest.to_alcotest prop_float_repr_roundtrip;
        QCheck_alcotest.to_alcotest prop_hw_json_float_stability ] ) ]
