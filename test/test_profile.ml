(* Simulated-time profiler tests: the telescoping stall-attribution
   invariant (per-threadblock class cycles sum exactly to the
   threadblock's wave cycles), the Fig. 1b direction (more pipeline
   stages hide more wait stall), the per-stage bucket bounds, and the
   validity of the exported simulated-time Chrome trace under the
   in-repo JSON parser. *)

open Alcop_sched
open Alcop_gpusim

let hw = Alcop_hw.Hw_config.default

let profile_of ?(smem_stages = 3) ?(reg_stages = 2) () =
  let spec =
    match Alcop_workloads.Suites.find "MM_RN50_FC" with
    | Some s -> s
    | None -> Alcotest.fail "MM_RN50_FC missing from the suite"
  in
  let tiling =
    Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ()
  in
  match Alcop.Compiler.compile ~hw params spec with
  | Error e -> Alcotest.failf "compile failed: %s" (Alcop.Compiler.error_to_string e)
  | Ok c ->
    (match
       Profile.run ~op:"MM_RN50_FC" ~groups:c.Alcop.Compiler.groups
         c.Alcop.Compiler.timing_request
     with
     | Error f -> Alcotest.failf "profile failed: %a" Occupancy.pp_failure f
     | Ok p -> p)

(* Every simulated cycle of every threadblock is attributed to exactly one
   stall class: the recorded segments are contiguous from 0 to the
   threadblock's finish time, so the per-class sums telescope to
   [tb_cycles] (up to float addition noise), in every wave. *)
let test_stall_cycles_sum_to_wave_cycles () =
  let p = profile_of () in
  Alcotest.(check bool) "at least one wave" true (p.Profile.p_waves <> []);
  List.iter
    (fun (w : Profile.wave_profile) ->
      Array.iter
        (fun (tb : Profile.tb_profile) ->
          (* contiguity: each segment starts where the previous stopped *)
          let _ =
            Array.fold_left
              (fun prev (s : Profile.segment) ->
                Alcotest.(check (float 1e-6))
                  "segments contiguous" prev s.Profile.sg_start;
                s.Profile.sg_stop)
              0.0 tb.Profile.tb_segments
          in
          let class_sum =
            List.fold_left
              (fun acc cls -> acc +. Profile.class_cycles tb cls)
              0.0 Timing.all_stall_classes
          in
          let tol = 1e-9 *. Float.max 1.0 tb.Profile.tb_cycles in
          Alcotest.(check bool)
            (Printf.sprintf "wave %s tb %d: classes sum to tb_cycles"
               w.Profile.w_label tb.Profile.tb_index)
            true
            (Float.abs (class_sum -. tb.Profile.tb_cycles) <= tol);
          (* the slowest threadblock defines the wave *)
          Alcotest.(check bool) "tb within wave" true
            (tb.Profile.tb_cycles <= w.Profile.w_result.Timing.cycles +. tol))
        w.Profile.w_tbs;
      let crit = w.Profile.w_tbs.(w.Profile.w_critical) in
      Alcotest.(check (float 1e-6)) "critical tb defines wave cycles"
        w.Profile.w_result.Timing.cycles crit.Profile.tb_cycles)
    p.Profile.p_waves

(* Per-stage buckets: stage slots of wait stalls lie in [0, stages) of
   their group, and sum to at most the group's total wait stall. *)
let test_per_stage_buckets_bounded () =
  let p = profile_of () in
  match Profile.representative p with
  | None -> Alcotest.fail "no wave"
  | Some w ->
    let tb = w.Profile.w_tbs.(w.Profile.w_critical) in
    let per_stage = Profile.stage_stalls tb in
    Alcotest.(check bool) "has per-stage buckets" true (per_stage <> []);
    List.iter
      (fun ((gid, stage), cyc) ->
        let stages =
          match List.assoc_opt gid p.Profile.p_stages with
          | Some s -> s
          | None -> Alcotest.failf "unknown group %s" gid
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s stage %d within [0,%d)" gid stage stages)
          true
          (stage >= 0 && stage < stages);
        Alcotest.(check bool) "bucket non-negative" true (cyc >= 0.0))
      per_stage

(* The Fig. 1b story, now measurable: a 4-stage pipeline hides strictly
   more load latency than the unpipelined (1-stage) schedule, i.e. its
   Sync_wait + Dram_bw stall total is strictly smaller on MM_RN50_FC. *)
let test_more_stages_less_stall () =
  let stall_of p =
    match Profile.representative p with
    | None -> Alcotest.fail "no wave"
    | Some w ->
      let tb = w.Profile.w_tbs.(w.Profile.w_critical) in
      Profile.class_cycles tb Timing.Sync_wait
      +. Profile.class_cycles tb Timing.Dram_bw
  in
  let unpipelined = stall_of (profile_of ~smem_stages:1 ~reg_stages:1 ()) in
  let pipelined = stall_of (profile_of ~smem_stages:4 ~reg_stages:2 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "4-stage stall (%.0f) < 1-stage stall (%.0f)" pipelined
       unpipelined)
    true
    (pipelined < unpipelined)

(* The report's stall table covers 100% of the critical threadblock. *)
let test_report_sums_to_100_percent () =
  let p = profile_of () in
  let report = Profile.report p in
  let has_total =
    let needle = "total      100.0%" in
    let n = String.length needle and m = String.length report in
    let rec scan i =
      if i + n > m then false
      else if String.sub report i n = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  Alcotest.(check bool) "report prints a 100.0% total row" true has_total

(* The exported Chrome trace parses under the in-repo JSON parser, has no
   negative timestamps, routes onto per-threadblock tracks, and labels at
   least one per-stage copy track. *)
let test_chrome_trace_valid () =
  let p = profile_of () in
  let buf = Buffer.create 4096 in
  let sink =
    Alcop_obs.Sinks.chrome_trace ~ts_to_us:Fun.id (Buffer.add_string buf)
  in
  List.iter sink.Alcop_obs.Obs.emit (Profile.chrome_events p);
  sink.Alcop_obs.Obs.close ();
  let open Alcop_obs in
  match Json.of_string (String.trim (Buffer.contents buf)) with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match Json.member "traceEvents" doc with
     | Some (Json.List events) ->
       Alcotest.(check bool) "has events" true (List.length events > 10);
       let stage_tracks = ref 0 in
       List.iter
         (fun e ->
           (match Option.bind (Json.member "ts" e) Json.number with
            | Some t ->
              Alcotest.(check bool) "ts non-negative" true (t >= 0.0)
            | None ->
              (* metadata events carry no ts *)
              Alcotest.(check bool) "only metadata lacks ts" true
                (Json.member "ph" e = Some (Json.Str "M")));
           if Json.member "name" e = Some (Json.Str "thread_name") then
             match Json.member "args" e with
             | Some args ->
               (match Json.member "name" args with
                | Some (Json.Str label) ->
                  (* per-stage copy tracks are named "tb<i> <group> s<stage>" *)
                  if String.length label > 2
                     && String.sub label (String.length label - 2) 2 = "s0"
                  then incr stage_tracks
                | _ -> ())
             | None -> ())
         events;
       Alcotest.(check bool) "has per-stage copy tracks" true
         (!stage_tracks > 0);
       let reserved_leaks =
         List.filter
           (fun e ->
             match Json.member "args" e with
             | Some (Json.Obj fields) ->
               List.exists
                 (fun (k, _) -> String.length k > 0 && k.[0] = '#')
                 fields
             | _ -> false)
           events
       in
       Alcotest.(check int) "reserved fields stripped from args" 0
         (List.length reserved_leaks)
     | _ -> Alcotest.fail "no traceEvents array")

(* [timing.stall.*] gauges ride along with a plain [Timing.run] when
   observability is on, and cover the critical threadblock exactly. *)
let test_run_publishes_stall_gauges () =
  Alcop_obs.Obs.reset ();
  Alcop_obs.Obs.record ();
  Fun.protect ~finally:Alcop_obs.Obs.reset @@ fun () ->
  let p = profile_of () in
  ignore p;
  let gauges = Alcop_obs.Obs.gauges () in
  let stall_sum =
    List.fold_left
      (fun acc (name, v) ->
        if String.length name > 13 && String.sub name 0 13 = "timing.stall." then
          acc +. v
        else acc)
      0.0 gauges
  in
  Alcotest.(check bool)
    (Printf.sprintf "stall gauge fractions sum to 1 (got %f)" stall_sum)
    true
    (Float.abs (stall_sum -. 1.0) < 1e-6)

let suite =
  [ ( "profile",
      [ Alcotest.test_case "stall classes sum to wave cycles" `Quick
          test_stall_cycles_sum_to_wave_cycles;
        Alcotest.test_case "per-stage buckets bounded" `Quick
          test_per_stage_buckets_bounded;
        Alcotest.test_case "more stages, less stall (Fig. 1b)" `Quick
          test_more_stages_less_stall;
        Alcotest.test_case "report sums to 100%" `Quick
          test_report_sums_to_100_percent;
        Alcotest.test_case "chrome trace valid + routed" `Quick
          test_chrome_trace_valid;
        Alcotest.test_case "Timing.run publishes stall gauges" `Quick
          test_run_publishes_stall_gauges ] ) ]
