(* Equivalence gate of the packed-program replay datapath.

   [Legacy_sim] is a frozen copy of the boxed-event wave simulator as it
   stood before the packed refactor. These properties drive both engines
   over random schedules — unstructured event soups and structured
   multi-stage pipelines, scope-synchronized and not — and demand exact
   equality: wave latencies, busy counters, the full advance/flight
   probe streams (hence per-class stall breakdowns), at -j 1 and -j 4.
   They are what allowed the legacy replay path to be deleted from the
   library.

   Also here: incremental wave-reuse soundness and the allocation budget
   of a cold compile+simulate. *)

open Alcop_gpusim

let hw = Alcop_hw.Hw_config.ampere_a100
let gshared = "pipe.shared.ko"
let greg = "pipe.register.ki"

type sched = { events : Trace.event array; cfg : Timing.config }

let sched_to_string s =
  Format.asprintf "tbs=%d sms=%d warps=%d miss=%.1f pen=%.1f io=%.1f bar=[%s]@ %a"
    s.cfg.Timing.residents s.cfg.Timing.active_sms s.cfg.Timing.warps_per_tb
    s.cfg.Timing.miss_rate s.cfg.Timing.smem_penalty
    s.cfg.Timing.issue_overhead
    (String.concat "," s.cfg.Timing.barrier_groups)
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
       Trace.pp_event)
    (Array.to_list s.events)

(* Unstructured schedules: arbitrary event orders exercise every edge of
   the batch-ordinal precomputation — waits before commits, unbalanced
   commits, group-less async loads, back-to-back barriers. *)
let gen_event =
  let open QCheck.Gen in
  let any_group = oneofl [ None; Some gshared; Some greg ] in
  let some_group = oneofl [ gshared; greg ] in
  let bytes = oneofl [ 128; 512; 2048; 16384; 131072 ] in
  frequency
    [ ( 4,
        let* level = oneofl [ Trace.From_global; Trace.From_shared ] in
        let* bytes = bytes in
        let* async = bool in
        let* group = any_group in
        return (Trace.Load { level; bytes; async; group }) );
      ( 2,
        let* flops = oneofl [ 2048; 65536; 409600 ] in
        return (Trace.Compute { flops }) );
      (1, let* b = bytes in return (Trace.Store { bytes = b }));
      ( 2,
        let* g = some_group in
        let* sync = bool in
        return (Trace.Commit { group = g; sync }) );
      ( 2,
        let* g = some_group in
        let* sync = bool in
        return (Trace.Wait_oldest { group = g; sync }) );
      ( 1,
        let* g = some_group in
        let* stages = int_range 2 4 in
        return (Trace.Acquire { group = g; stages }) );
      (1, let* g = some_group in return (Trace.Release g));
      (1, return Trace.Barrier) ]

(* Structured schedules: the shape the pipelining pass actually emits —
   a [stages - 1]-deep prologue then a steady-state loop, optionally with
   a register-level (non-synchronized) inner pipeline. *)
let structured ~stages ~iters ~bytes ~flops ~reg =
  let acq = Trace.Acquire { group = gshared; stages } in
  let aload b =
    Trace.Load
      { level = Trace.From_global; bytes = b; async = true;
        group = Some gshared }
  in
  let sload b =
    Trace.Load
      { level = Trace.From_shared; bytes = b; async = reg;
        group = (if reg then Some greg else None) }
  in
  let commit_sh = Trace.Commit { group = gshared; sync = true } in
  let wait_sh = Trace.Wait_oldest { group = gshared; sync = true } in
  let prologue =
    List.concat
      (List.init (stages - 1) (fun _ -> [ acq; aload bytes; commit_sh ]))
  in
  let iter _ =
    [ acq; aload bytes; commit_sh; wait_sh ]
    @ (if reg then
         [ sload (bytes / 4);
           Trace.Commit { group = greg; sync = false };
           Trace.Wait_oldest { group = greg; sync = false } ]
       else [ sload (bytes / 4) ])
    @ [ Trace.Compute { flops }; Trace.Release gshared ]
  in
  prologue
  @ List.concat (List.init iters iter)
  @ [ Trace.Barrier; Trace.Store { bytes } ]

let gen_sched =
  let open QCheck.Gen in
  let* events =
    oneof
      [ (let* n = int_range 8 60 in
         list_repeat n gen_event >|= Array.of_list);
        (let* stages = int_range 2 4 in
         let* iters = int_range 3 10 in
         let* bytes = oneofl [ 2048; 16384; 131072 ] in
         let* flops = oneofl [ 65536; 409600 ] in
         let* reg = bool in
         return (Array.of_list (structured ~stages ~iters ~bytes ~flops ~reg)))
      ]
  in
  let* residents = int_range 1 4 in
  let* active_sms = oneofl [ 1; 2; 8; 108 ] in
  let* warps_per_tb = int_range 1 8 in
  let* miss_rate = oneofl [ 0.0; 0.3; 1.0 ] in
  let* smem_penalty = oneofl [ 1.0; 2.0; 3.0 ] in
  let* issue_overhead = oneofl [ 0.0; 4.0 ] in
  let* barrier_groups = oneofl [ []; [ gshared ]; [ gshared; greg ] ] in
  return
    { events;
      cfg =
        { Timing.hw; residents; active_sms; warps_per_tb; miss_rate;
          smem_penalty; issue_overhead; barrier_groups } }

let arb_sched = QCheck.make ~print:sched_to_string gen_sched

let collecting () =
  let advs : Timing.advance list ref = ref [] in
  let fls : Timing.flight list ref = ref [] in
  ( { Timing.on_advance = (fun a -> advs := a :: !advs);
      on_flight = (fun f -> fls := f :: !fls) },
    advs, fls )

(* Latency + busy equivalence, no probe: the tuner-facing fast path. *)
let prop_results_equal =
  QCheck.Test.make ~name:"packed replay == legacy (latencies, busy)"
    ~count:150 arb_sched (fun s ->
      let legacy = Legacy_sim.simulate_wave s.cfg s.events in
      let packed = Timing.simulate_wave s.cfg s.events in
      legacy = packed)

(* Probe equivalence: the complete advance and flight streams — classes,
   groups, batch ordinals, interval endpoints, order — must be
   bit-identical, which subsumes every per-class stall breakdown. *)
let prop_probe_streams_equal =
  QCheck.Test.make ~name:"packed replay == legacy (probe streams)"
    ~count:120 arb_sched (fun s ->
      let lp, ladv, lfl = collecting () in
      let pp, padv, pfl = collecting () in
      let lr = Legacy_sim.simulate_wave ~probe:lp s.cfg s.events in
      let pr = Timing.simulate_wave ~probe:pp s.cfg s.events in
      lr = pr && !ladv = !padv && !lfl = !pfl)

(* Same, over real compiler output: traces extracted from random
   pipelined kernels (reusing the property-test generator), with the
   packed side fed by [extract_program] directly — covering the
   extraction rewrite, not just [pack]. *)
let prop_compiled_equal =
  QCheck.Test.make ~name:"packed replay == legacy (compiled kernels)"
    ~count:25 Test_property.arb_case (fun c ->
      match Test_property.compile_case c with
      | None -> QCheck.assume_fail ()
      | Some (_, _, kernel, groups) ->
        let events = Trace.extract ~groups kernel in
        let program = Trace.extract_program ~groups kernel in
        let barrier_groups =
          List.filter_map
            (fun (g : Alcop_pipeline.Analysis.group) ->
              if g.Alcop_pipeline.Analysis.synchronized then
                Some g.Alcop_pipeline.Analysis.id
              else None)
            groups
        in
        let cfg =
          { Timing.hw; residents = 2; active_sms = 8; warps_per_tb = 4;
            miss_rate = 0.5; smem_penalty = 1.0; issue_overhead = 4.0;
            barrier_groups }
        in
        let lp, ladv, lfl = collecting () in
        let pp, padv, pfl = collecting () in
        let lr = Legacy_sim.simulate_wave ~probe:lp cfg events in
        let pr = Timing.simulate_program ~probe:pp cfg program in
        lr = pr && !ladv = !padv && !lfl = !pfl)

(* The packed form is lossless: decoding every index of [pack events]
   returns the original boxed event — including the new sync bit on
   commits and waits ([flag_sync_group]), which distinguishes
   scope-synchronized pipeline protocols from scoreboard-only register
   pipelines in the flags column. *)
let prop_pack_decode_roundtrip =
  QCheck.Test.make ~name:"decode (pack events) == events (incl. sync flag)"
    ~count:200 arb_sched (fun s ->
      let p = Trace.pack s.events in
      Trace.decode p = s.events
      && (let ok = ref true in
          Array.iteri
            (fun i ev ->
              let synced =
                Bigarray.Array1.get p.Trace.flags i
                land Trace.flag_sync_group <> 0
              in
              match ev with
              (* acquire/release are scope-protocol by definition *)
              | Trace.Acquire _ | Trace.Release _ ->
                if not synced then ok := false
              | Trace.Commit { sync; _ } | Trace.Wait_oldest { sync; _ } ->
                if synced <> sync then ok := false
              | _ -> ())
            s.events;
          !ok))

let request_of_sched s total_tbs =
  { Timing.hw; program = Trace.pack s.events; total_tbs; warps_per_tb = 4;
    smem_per_tb = 49152; regs_per_thread = 64; grid_m = 8; grid_n = 8;
    grid_z = 4; tb_m = 64; tb_n = 64; tb_k = 32; elem_bytes = 2;
    swizzle = true; jitter_key = 17;
    barrier_groups = s.cfg.Timing.barrier_groups }

(* Whole-kernel runs must be bit-identical between -j 1 (inline) and
   -j 4 (full and tail wave on separate domains). *)
let test_parallel_waves_identical () =
  let rand = Random.State.make [| 0xA1C0; 42 |] in
  let scheds = QCheck.Gen.generate ~n:100 ~rand gen_sched in
  Alcop_par.Pool.with_pool ~jobs:4 (fun pool ->
      List.iteri
        (fun i s ->
          let total_tbs =
            match i mod 4 with 0 -> 1 | 1 -> 200 | 2 -> 500 | _ -> 5000
          in
          let req = request_of_sched s total_tbs in
          let seq = Timing.run req in
          let par = Timing.run ~pool req in
          if seq <> par then
            Alcotest.failf "-j1 / -j4 timing mismatch on schedule %d" i)
        scheds)

let test_empty_trace () =
  let cfg =
    { Timing.hw; residents = 3; active_sms = 8; warps_per_tb = 4;
      miss_rate = 1.0; smem_penalty = 1.0; issue_overhead = 4.0;
      barrier_groups = [] }
  in
  Alcotest.(check bool) "empty trace identical" true
    (Legacy_sim.simulate_wave cfg [||] = Timing.simulate_wave cfg [||])

(* Wave reuse returns exactly what a fresh simulation returns, and the
   cache actually hits. Hits are asserted in aggregate because the cache
   keeps the first entry on a key collision (same program hash and
   occupancy, different rates), so an individual schedule may legally
   never hit — but the repeated runs must. *)
let test_wave_reuse_identical () =
  let rand = Random.State.make [| 0xA1C0; 7 |] in
  let scheds = QCheck.Gen.generate ~n:30 ~rand gen_sched in
  let h0, _ = Timing.wave_reuse_stats () in
  List.iter
    (fun s ->
      let req = request_of_sched s 500 in
      let plain = Timing.run req in
      let reused =
        Timing.with_wave_reuse (fun () ->
            ignore (Timing.run req);
            (* second run reuses the cached wave results *)
            Timing.run req)
      in
      Alcotest.(check bool) "reused run identical" true (plain = reused))
    scheds;
  let h1, _ = Timing.wave_reuse_stats () in
  Alcotest.(check bool) "cache hits advanced" true (h1 > h0)

(* Allocation budget of one cold compile+simulate (ROADMAP item 5): the
   packed datapath landed at roughly 1.85e4 minor words; the ceiling is
   ~2x that so creep is caught by `dune runtest` without flaking on
   compiler-version noise. *)
(* Per-pass minor-word ceilings, roughly 2x the measured value of each pass
   on the fig10 workload below, so a regression names the guilty pass
   instead of drowning in a whole-compile number. Measured (2026-08):
   lower 1.6e3, pipeline 5.4e3, trace-extract 1.1e3, simulate 1.6e2,
   fingerprint 0.9e3, full compile+simulate 9.4e3 — down from the 1.85e4
   the old single 3.7e4 budget guarded. *)
let alloc_budget_full = 13_000.0
let alloc_budget_lower = 3_500.0
let alloc_budget_pipeline = 9_000.0
let alloc_budget_trace_extract = 2_500.0
let alloc_budget_simulate = 1_000.0
let alloc_budget_fingerprint = 2_000.0

let budget_spec () =
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()
  in
  (spec, tiling, params)

(* Warm twice (one-time lazies, domain-local scratch growth), then measure
   the third run. *)
let measured_minor_words f =
  ignore (f ());
  ignore (f ());
  let w0 = Gc.minor_words () in
  ignore (f ());
  Gc.minor_words () -. w0

let check_budget name budget f =
  let dw = measured_minor_words f in
  Alcotest.(check bool)
    (Printf.sprintf "%s allocates %.0f minor words (budget %.0f)" name dw
       budget)
    true (dw < budget)

let test_allocation_budget () =
  let spec, _tiling, params = budget_spec () in
  let session = Alcop.Session.create ~hw ~cache:false () in
  check_budget "cold compile+simulate" alloc_budget_full (fun () ->
      Alcop.Session.compile session params spec)

let test_per_pass_budgets () =
  let spec, tiling, params = budget_spec () in
  let sched =
    Alcop_sched.Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 spec tiling
  in
  check_budget "lower" alloc_budget_lower (fun () ->
      Alcop_sched.Lower.run sched);
  let lowered = Alcop_sched.Lower.run sched in
  let run_pipeline () =
    match
      Alcop_pipeline.Pass.run ~hw ~hints:lowered.Alcop_sched.Lower.hints
        lowered.Alcop_sched.Lower.kernel
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "pipeline pass rejected the budget kernel"
  in
  check_budget "pipeline" alloc_budget_pipeline run_pipeline;
  let piped = run_pipeline () in
  let groups = Alcop_pipeline.Pass.groups piped in
  let kernel = piped.Alcop_pipeline.Pass.kernel in
  check_budget "trace-extract" alloc_budget_trace_extract (fun () ->
      Alcop_gpusim.Trace.extract_program ~groups kernel);
  let session = Alcop.Session.create ~hw ~cache:false () in
  (match Alcop.Session.compile session params spec with
   | Ok c ->
     check_budget "simulate" alloc_budget_simulate (fun () ->
         Alcop_gpusim.Timing.run c.Alcop.Compiler.timing_request)
   | Error _ -> Alcotest.fail "budget compile failed");
  check_budget "fingerprint" alloc_budget_fingerprint (fun () ->
      Alcop.Fingerprint.compile_key ~hw ~extra_regs_per_thread:0 params spec)

let suite =
  [ ( "packed",
      [ QCheck_alcotest.to_alcotest prop_pack_decode_roundtrip;
        QCheck_alcotest.to_alcotest prop_results_equal;
        QCheck_alcotest.to_alcotest prop_probe_streams_equal;
        QCheck_alcotest.to_alcotest prop_compiled_equal;
        Alcotest.test_case "-j1 == -j4 over 100 random schedules" `Quick
          test_parallel_waves_identical;
        Alcotest.test_case "empty trace" `Quick test_empty_trace;
        Alcotest.test_case "wave reuse: identical results, real hits" `Quick
          test_wave_reuse_identical;
        Alcotest.test_case "allocation budget per cold compile" `Quick
          test_allocation_budget;
        Alcotest.test_case "allocation budgets per pass" `Quick
          test_per_pass_budgets ] ) ]
