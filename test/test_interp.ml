(* Functional interpreter tests: numerical equivalence of pipelined and
   unpipelined kernels against the host reference, and failure injection —
   deleting or misplacing synchronization primitives must make the strict
   interpreter raise or produce wrong results. This suite is the
   repository's equivalent of running generated kernels on hardware. *)

open Alcop_ir
open Alcop_sched
open Alcop_gpusim

let hw = Alcop_hw.Hw_config.ampere_a100

let tiling64 =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let tiling32 =
  Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 ()

let compile_pipelined ?(smem_stages = 3) ?(reg_stages = 2) ?(inner_fuse = true)
    ?(tiling = tiling64) spec =
  let sched =
    Schedule.default_gemm ~smem_stages ~reg_stages ~inner_fuse spec tiling
  in
  let l = Lower.run sched in
  match Alcop_pipeline.Pass.run ~hw ~hints:l.Lower.hints l.Lower.kernel with
  | Ok r -> (l, r.Alcop_pipeline.Pass.kernel, Alcop_pipeline.Pass.groups r)
  | Error rej ->
    Alcotest.failf "rejection: %a" Alcop_pipeline.Analysis.pp_rejection rej

let run_kernel ?groups kernel spec =
  let a, b = Reference.inputs_for spec in
  let outputs = Interp.run ?groups kernel ~inputs:[ ("A", a); ("B", b) ] in
  snd (List.hd outputs)

let check_matches_reference ?groups kernel spec =
  let a, b = Reference.inputs_for spec in
  let expected = Reference.gemm spec ~a ~b in
  let actual = run_kernel ?groups kernel spec in
  let diff = Tensor.max_abs_diff actual expected in
  if diff > 1e-9 then
    Alcotest.failf "kernel output differs from reference by %g" diff

let test_unpipelined_matches () =
  let spec = Op_spec.matmul ~name:"interp_plain" ~m:128 ~n:64 ~k:128 () in
  let sched = Schedule.default_gemm ~smem_stages:1 ~reg_stages:1 spec tiling32 in
  let l = Lower.run sched in
  check_matches_reference l.Lower.kernel spec

let test_pipelined_matches_full () =
  let spec = Op_spec.matmul ~name:"interp_full" ~m:128 ~n:64 ~k:256 () in
  let _, kernel, groups = compile_pipelined spec in
  check_matches_reference ~groups kernel spec

(* Sweep the pipelining configuration space on a small problem: every
   combination must be numerically exact. *)
let test_stage_sweep () =
  let spec = Op_spec.matmul ~name:"interp_sweep" ~m:64 ~n:64 ~k:128 () in
  List.iter
    (fun (smem_stages, reg_stages, inner_fuse) ->
      let _, kernel, groups =
        compile_pipelined ~smem_stages ~reg_stages ~inner_fuse ~tiling:tiling32
          spec
      in
      check_matches_reference ~groups kernel spec)
    [ (1, 1, true); (2, 1, true); (3, 1, true); (4, 1, true); (1, 2, true);
      (2, 2, true); (3, 2, true); (4, 2, true); (3, 2, false); (4, 2, false);
      (2, 2, false) ]

let test_batched_pipelined () =
  let spec = Op_spec.batched_matmul ~name:"interp_bmm" ~batch:3 ~m:64 ~n:32 ~k:64 () in
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 spec in
  check_matches_reference ~groups kernel spec

(* Stage count exceeding the K loop extent: prologue wraps; still exact. *)
let test_stages_exceed_loop () =
  let spec = Op_spec.matmul ~name:"interp_short" ~m:32 ~n:32 ~k:32 () in
  let _, kernel, groups =
    compile_pipelined ~smem_stages:4 ~reg_stages:1 ~tiling:tiling32 spec
  in
  (* K/tb_k = 2 < stages-1 = 3 *)
  check_matches_reference ~groups kernel spec

let test_epilogue_fused_op () =
  let spec =
    Op_spec.matmul ~name:"interp_ep" ~m:64 ~n:64 ~k:64 ~epilogue:"relu" ()
  in
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 spec in
  check_matches_reference ~groups kernel spec

let test_inlined_elemwise_case2 () =
  let spec =
    Op_spec.matmul ~name:"interp_inline" ~m:64 ~n:64 ~k:64 ~a_op:"scale2" ()
  in
  (* reg level unpipelined so the fused op has a synchronous carrier *)
  let _, kernel, groups =
    compile_pipelined ~reg_stages:1 ~tiling:tiling32 spec
  in
  check_matches_reference ~groups kernel spec

(* --- strict-mode protocol enforcement --- *)

let drop_sync pred kernel =
  Kernel.map_body
    (Stmt.map (fun s ->
         match s with
         | Stmt.Sync sy when pred sy -> Stmt.seq []
         | _ -> s))
    kernel

let expect_strict_failure kernel groups spec what =
  let a, b = Reference.inputs_for spec in
  match Interp.run ~groups kernel ~inputs:[ ("A", a); ("B", b) ] with
  | outputs ->
    (* No protocol error raised: the result must then be wrong. *)
    let expected = Reference.gemm spec ~a ~b in
    let actual = snd (List.hd outputs) in
    if Tensor.max_abs_diff actual expected <= 1e-9 then
      Alcotest.failf "%s: kernel still correct after sabotage" what
  | exception Interp.Runtime_error _ -> ()

let sabotage_spec = Op_spec.matmul ~name:"interp_sabotage" ~m:64 ~n:64 ~k:128 ()

let test_missing_consumer_wait_detected () =
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 sabotage_spec in
  let bad =
    drop_sync (function Stmt.Consumer_wait _ -> true | _ -> false) kernel
  in
  expect_strict_failure bad groups sabotage_spec "dropping consumer_wait"

let test_missing_commit_detected () =
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 sabotage_spec in
  let bad =
    drop_sync (function Stmt.Producer_commit _ -> true | _ -> false) kernel
  in
  expect_strict_failure bad groups sabotage_spec "dropping producer_commit"

let test_missing_acquire_detected () =
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 sabotage_spec in
  let bad =
    drop_sync (function Stmt.Producer_acquire _ -> true | _ -> false) kernel
  in
  expect_strict_failure bad groups sabotage_spec "dropping producer_acquire"

let test_release_before_wait_detected () =
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 sabotage_spec in
  (* Turn every wait into a release: releases overtake waits. *)
  let bad =
    Kernel.map_body
      (Stmt.map (fun s ->
           match s with
           | Stmt.Sync (Stmt.Consumer_wait g) -> Stmt.Sync (Stmt.Consumer_release g)
           | _ -> s))
      kernel
  in
  expect_strict_failure bad groups sabotage_spec "release instead of wait"

(* Wrong modulo in the rolling index: shifts the stage ring and corrupts
   data. The structural validators cannot see this; only execution can. *)
let test_wrong_stage_modulo_detected () =
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 sabotage_spec in
  let bad =
    Kernel.map_body
      (Stmt.map (fun s ->
           match s with
           | Stmt.Copy ({ dst; kind = Stmt.Async_copy; _ } as c)
             when String.equal dst.Stmt.buffer "A_sh" ->
             (match dst.Stmt.slices with
              | stage :: rest ->
                let shifted =
                  { stage with
                    Stmt.offset =
                      Expr.simplify
                        (Expr.modulo
                           (Expr.add stage.Stmt.offset Expr.one)
                           (Expr.const 3)) }
                in
                Stmt.Copy { c with dst = { dst with Stmt.slices = shifted :: rest } }
              | [] -> s)
           | _ -> s))
      kernel
  in
  expect_strict_failure bad groups sabotage_spec "corrupting the stage index"

let test_out_of_bounds_detected () =
  let a = Buffer.make ~name:"A" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 8 ] in
  let c = Buffer.make ~name:"C" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 8 ] in
  let body =
    Stmt.for_ "i" (Expr.const 3)
      (Stmt.copy
         ~dst:(Stmt.region "C" [ Stmt.slice (Expr.mul (Expr.var "i") (Expr.const 4)) 4 ])
         ~src:(Stmt.region "A" [ Stmt.slice (Expr.mul (Expr.var "i") (Expr.const 4)) 4 ])
         ())
  in
  let kernel = Kernel.make ~name:"oob" ~inputs:[ a ] ~outputs:[ c ] ~body in
  let t = Tensor.zeros [ 8 ] in
  match Interp.run kernel ~inputs:[ ("A", t) ] with
  | _ -> Alcotest.fail "out-of-bounds access must raise"
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "mentions bounds" true
      (String.length msg > 0)

let test_missing_input_detected () =
  let spec = Op_spec.matmul ~name:"interp_missing" ~m:32 ~n:32 ~k:32 () in
  let sched = Schedule.default_gemm ~smem_stages:1 ~reg_stages:1 spec tiling32 in
  let l = Lower.run sched in
  let a, _ = Reference.inputs_for spec in
  match Interp.run l.Lower.kernel ~inputs:[ ("A", a) ] with
  | _ -> Alcotest.fail "missing input must raise"
  | exception Interp.Runtime_error _ -> ()

(* Eager mode ignores the async protocol entirely: a sabotaged kernel that
   raises under strict mode still runs under eager mode (indices are the
   same), demonstrating what the mode switch controls. *)
let test_eager_mode_permissive () =
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 sabotage_spec in
  let bad =
    drop_sync (function Stmt.Producer_acquire _ -> true | _ -> false) kernel
  in
  let a, b = Reference.inputs_for sabotage_spec in
  let expected = Reference.gemm sabotage_spec ~a ~b in
  let outputs =
    Interp.run ~mode:Interp.Eager ~groups bad ~inputs:[ ("A", a); ("B", b) ]
  in
  let actual = snd (List.hd outputs) in
  Alcotest.(check bool) "eager result exact" true
    (Tensor.max_abs_diff actual expected <= 1e-9)

(* --- data-race detection on parallel loops --- *)

let race_kernel overlapping =
  (* Two blockIdx.x iterations write row tiles of C; with [overlapping] the
     second tile starts one row early and collides with the first. *)
  let a = Buffer.make ~name:"A" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 8; 4 ] in
  let c = Buffer.make ~name:"C" ~scope:Buffer.Global ~dtype:Dtype.F16 ~shape:[ 8; 4 ] in
  let row_off =
    if overlapping then
      Expr.max_ Expr.zero
        (Expr.sub (Expr.mul (Expr.var "bx") (Expr.const 4)) Expr.one)
    else Expr.mul (Expr.var "bx") (Expr.const 4)
  in
  let body =
    Stmt.for_ ~kind:(Stmt.Parallel Stmt.Block_x) "bx" (Expr.const 2)
      (Stmt.copy
         ~dst:(Stmt.region "C" [ Stmt.slice row_off 4; Stmt.slice Expr.zero 4 ])
         ~src:(Stmt.region "A" [ Stmt.slice row_off 4; Stmt.slice Expr.zero 4 ])
         ())
  in
  Kernel.make ~name:"race" ~inputs:[ a ] ~outputs:[ c ] ~body

let test_race_detected () =
  let t = Tensor.random ~seed:1 [ 8; 4 ] in
  (match Interp.run (race_kernel false) ~inputs:[ ("A", t) ] with
   | _ -> ()
   | exception Interp.Runtime_error m ->
     Alcotest.failf "disjoint tiles must not race: %s" m);
  match Interp.run (race_kernel true) ~inputs:[ ("A", t) ] with
  | _ -> Alcotest.fail "overlapping parallel writes must raise"
  | exception Interp.Runtime_error m ->
    Alcotest.(check bool) "mentions race" true
      (let needle = "data race" in
       let n = String.length m and k = String.length needle in
       let rec go i = i + k <= n && (String.equal (String.sub m i k) needle || go (i + 1)) in
       go 0)

let test_race_check_can_be_disabled () =
  let t = Tensor.random ~seed:1 [ 8; 4 ] in
  match Interp.run ~check_races:false (race_kernel true) ~inputs:[ ("A", t) ] with
  | _ -> ()
  | exception Interp.Runtime_error m -> Alcotest.failf "disabled check raised: %s" m

let test_sequential_rewrites_not_a_race () =
  (* The K loop restaging shared memory under the same parallel coordinates
     must not trip the detector — this is every GEMM's structure. *)
  let spec = Op_spec.matmul ~name:"interp_norace" ~m:64 ~n:64 ~k:128 () in
  let _, kernel, groups = compile_pipelined ~tiling:tiling32 spec in
  check_matches_reference ~groups kernel spec

(* --- tensors --- *)

let test_tensor_roundtrip () =
  let t = Tensor.init [ 3; 4 ] (fun idx -> float_of_int ((10 * idx.(0)) + idx.(1))) in
  Alcotest.(check (float 0.0)) "get" 23.0 (Tensor.get t [| 2; 3 |]);
  Tensor.set t [| 2; 3 |] 99.0;
  Alcotest.(check (float 0.0)) "set" 99.0 (Tensor.get t [| 2; 3 |])

let test_tensor_random_deterministic () =
  let a = Tensor.random ~seed:42 [ 16 ] in
  let b = Tensor.random ~seed:42 [ 16 ] in
  let c = Tensor.random ~seed:43 [ 16 ] in
  Alcotest.(check bool) "same seed same data" true (Tensor.allclose a b);
  Alcotest.(check bool) "different seed differs" false (Tensor.allclose a c);
  for i = 0 to Bigarray.Array1.dim a.Tensor.data - 1 do
    let x = a.Tensor.data.{i} in
    Alcotest.(check bool) "in range" true (x >= -1.0 && x < 1.0)
  done

let test_reference_gemm_tiny () =
  (* 1x1x2 GEMM by hand: C = A.B^T with B stored [n, k]. *)
  let spec = Op_spec.matmul ~name:"tiny" ~m:16 ~n:16 ~k:16 () in
  let a = Tensor.create [ 16; 16 ] 1.0 in
  let b = Tensor.create [ 16; 16 ] 2.0 in
  let c = Reference.gemm spec ~a ~b in
  Alcotest.(check (float 1e-9)) "all 32" 32.0 (Tensor.get c [| 0; 0 |])

let suite =
  [ ( "interp",
      [ Alcotest.test_case "unpipelined matches reference" `Quick
          test_unpipelined_matches;
        Alcotest.test_case "pipelined matches reference" `Quick
          test_pipelined_matches_full;
        Alcotest.test_case "stage sweep all exact" `Slow test_stage_sweep;
        Alcotest.test_case "batched pipelined" `Quick test_batched_pipelined;
        Alcotest.test_case "stages exceed loop extent" `Quick
          test_stages_exceed_loop;
        Alcotest.test_case "epilogue fused op" `Quick test_epilogue_fused_op;
        Alcotest.test_case "inlined elemwise (Fig5 case 2)" `Quick
          test_inlined_elemwise_case2;
        Alcotest.test_case "missing consumer_wait detected" `Quick
          test_missing_consumer_wait_detected;
        Alcotest.test_case "missing commit detected" `Quick
          test_missing_commit_detected;
        Alcotest.test_case "missing acquire detected" `Quick
          test_missing_acquire_detected;
        Alcotest.test_case "release before wait detected" `Quick
          test_release_before_wait_detected;
        Alcotest.test_case "wrong stage modulo detected" `Quick
          test_wrong_stage_modulo_detected;
        Alcotest.test_case "out of bounds detected" `Quick
          test_out_of_bounds_detected;
        Alcotest.test_case "missing input detected" `Quick
          test_missing_input_detected;
        Alcotest.test_case "eager mode permissive" `Quick test_eager_mode_permissive;
        Alcotest.test_case "parallel race detected" `Quick test_race_detected;
        Alcotest.test_case "race check can be disabled" `Quick
          test_race_check_can_be_disabled;
        Alcotest.test_case "sequential rewrites not a race" `Quick
          test_sequential_rewrites_not_a_race;
        Alcotest.test_case "tensor roundtrip" `Quick test_tensor_roundtrip;
        Alcotest.test_case "tensor random deterministic" `Quick
          test_tensor_random_deterministic;
        Alcotest.test_case "reference gemm tiny" `Quick test_reference_gemm_tiny ] ) ]
