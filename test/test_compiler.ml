(* Tests for the top-level compile pipeline, compiler variants, library
   oracle, XLA-like baseline and end-to-end evaluation. *)

open Alcop_sched
open Alcop

let hw = Alcop_hw.Hw_config.ampere_a100

let spec = Op_spec.matmul ~name:"comp_test" ~m:256 ~n:128 ~k:512 ()

let tiling =
  Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()

let params = Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()

let test_compile_ok () =
  match Compiler.compile ~hw params spec with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok c ->
    Alcotest.(check bool) "positive latency" true (c.Compiler.latency_cycles > 0.0);
    Alcotest.(check int) "two pipeline groups" 2 (List.length c.Compiler.groups);
    Alcotest.(check bool) "trace non-empty" true
      (Alcop_gpusim.Trace.length c.Compiler.program > 0)

let test_compile_verifies_numerically () =
  let small = Op_spec.matmul ~name:"comp_verify" ~m:64 ~n:64 ~k:128 () in
  let t32 = Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 () in
  let p = Alcop_perfmodel.Params.make ~tiling:t32 ~smem_stages:3 ~reg_stages:2 () in
  match Compiler.compile ~hw p small with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok c ->
    (match Compiler.verify c with
     | Ok _ -> ()
     | Error diff -> Alcotest.failf "numerical mismatch: %g" diff)

let test_compile_materialized_elemwise () =
  let s = Op_spec.matmul ~name:"comp_mat" ~m:64 ~n:64 ~k:128 ~a_op:"relu" () in
  let t32 = Tiling.make ~tb_m:32 ~tb_n:32 ~tb_k:16 ~warp_m:16 ~warp_n:16 ~warp_k:16 () in
  let p = Alcop_perfmodel.Params.make ~tiling:t32 ~smem_stages:3 ~reg_stages:1 () in
  match Compiler.compile ~hw p s with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok c ->
    (* default schedule inlines, so nothing to materialize, and the result
       must still match the reference (relu applied). *)
    Alcotest.(check int) "inlined" 0 (List.length c.Compiler.lowered.Lower.materialize);
    (match Compiler.verify c with
     | Ok _ -> ()
     | Error diff -> Alcotest.failf "mismatch %g" diff)

let test_evaluator_caches_and_fails () =
  let evaluate = Session.evaluator (Session.create ~hw ()) spec in
  let ok = evaluate params in
  Alcotest.(check bool) "compiles" true (ok <> None);
  let big =
    Alcop_perfmodel.Params.make
      ~tiling:(Tiling.make ~tb_m:256 ~tb_n:128 ~tb_k:64 ~warp_m:64 ~warp_n:64 ~warp_k:32 ())
      ~smem_stages:4 ~reg_stages:2 ()
  in
  Alcotest.(check bool) "oversized fails" true (evaluate big = None);
  Alcotest.(check bool) "cache stable" true (evaluate params = ok)

(* --- variants --- *)

let small_spec = Op_spec.matmul ~name:"comp_var" ~m:512 ~n:64 ~k:1024 ()

let test_variant_ordering () =
  (* On a long-reduction small-output shape, the paper's ordering must
     hold: ALCOP <= ALCOP w/o ML <= TVM, and TVM DB ~ TVM. *)
  let best v = Option.get (Variants.best_latency ~hw v small_spec) in
  let tvm = best Variants.tvm in
  let alcop = best Variants.alcop in
  let no_ml = best Variants.alcop_no_ml in
  let no_ml_ms = best Variants.alcop_no_ml_ms in
  Alcotest.(check bool)
    (Printf.sprintf "ALCOP (%.0f) < TVM (%.0f)" alcop tvm)
    true (alcop < tvm);
  Alcotest.(check bool)
    (Printf.sprintf "ALCOP (%.0f) <= no-ML (%.0f)" alcop no_ml)
    true (alcop <= no_ml);
  Alcotest.(check bool)
    (Printf.sprintf "no-ML (%.0f) <= no-ML-MS (%.0f)" no_ml no_ml_ms)
    true (no_ml <= no_ml_ms);
  Alcotest.(check bool)
    (Printf.sprintf "no-ML-MS (%.0f) <= TVM (%.0f)" no_ml_ms tvm)
    true (no_ml_ms <= tvm)

let test_variant_spaces_nested () =
  let n v = Array.length (Variants.space v small_spec) in
  Alcotest.(check bool) "tvm smallest" true (n Variants.tvm < n Variants.alcop);
  Alcotest.(check bool) "no_ml between" true
    (n Variants.alcop_no_ml < n Variants.alcop)

let test_tvm_db_register_cost () =
  let p2 =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:2 ~reg_stages:1 ()
  in
  Alcotest.(check bool) "db costs registers" true
    (Variants.extra_regs Variants.tvm_db small_spec p2 > 0);
  Alcotest.(check int) "cp.async costs none" 0
    (Variants.extra_regs Variants.alcop_no_ml_ms small_spec p2)

(* --- library oracle and XLA --- *)

let test_library_close_to_alcop () =
  let lib = Option.get (Library_oracle.best_latency ~hw small_spec) in
  let alcop = Option.get (Variants.best_latency ~hw Variants.alcop small_spec) in
  let ratio = lib /. alcop in
  Alcotest.(check bool)
    (Printf.sprintf "library/alcop ratio %.2f in [0.6, 1.3]" ratio)
    true
    (ratio > 0.6 && ratio < 1.3)

let test_xla_on_matmul_is_library_backed () =
  (* XLA dispatches plain MatMuls to the library: it may beat ALCOP there
     (as cuBLAS does), but only within the dispatch overhead of the library
     oracle itself. *)
  let xla = Option.get (Xla_like.latency ~hw small_spec) in
  let lib = Option.get (Library_oracle.best_latency ~hw small_spec) in
  Alcotest.(check bool)
    (Printf.sprintf "xla (%.0f) ~ library (%.0f)" xla lib)
    true
    (xla >= lib && xla <= lib *. 1.1)

let test_xla_loses_on_batched_matmul () =
  (* Batched matmuls go through XLA's own unpipelined codegen plus layout
     copies: ALCOP must win. *)
  let spec =
    Op_spec.batched_matmul ~name:"comp_xla_bmm" ~batch:16 ~m:256 ~n:64 ~k:256 ()
  in
  let xla = Option.get (Xla_like.latency ~hw spec) in
  let alcop = Option.get (Variants.best_latency ~hw Variants.alcop spec) in
  Alcotest.(check bool)
    (Printf.sprintf "alcop (%.0f) < xla (%.0f)" alcop xla)
    true (alcop < xla)

(* --- workloads --- *)

let test_suite_shapes_have_spaces () =
  List.iter
    (fun s ->
      let space = Variants.space Variants.alcop s in
      Alcotest.(check bool)
        (s.Op_spec.name ^ " has schedules")
        true
        (Array.length space > 0))
    Alcop_workloads.Suites.fig10

let test_model_ops_have_spaces () =
  List.iter
    (fun (m : Alcop_workloads.Models.t) ->
      List.iter
        (fun (s, count) ->
          Alcotest.(check bool) (s.Op_spec.name ^ " count") true (count > 0);
          let space = Variants.space Variants.alcop s in
          Alcotest.(check bool)
            (s.Op_spec.name ^ " has schedules")
            true
            (Array.length space > 0))
        m.Alcop_workloads.Models.ops)
    Alcop_workloads.Models.all

let test_conv_implicit_gemm_dims () =
  let c =
    Op_spec.conv2d ~name:"conv_dims"
      { Op_spec.cn = 2; ci = 16; ch = 8; cw = 8; co = 32; ckh = 3; ckw = 3;
        stride = 1; pad = 1 }
  in
  Alcotest.(check int) "M = n*oh*ow" (2 * 8 * 8) c.Op_spec.m;
  Alcotest.(check int) "N = oc" 32 c.Op_spec.n;
  Alcotest.(check int) "K = ic*kh*kw" (16 * 9) c.Op_spec.k

let test_arithmetic_intensity () =
  let balanced = Op_spec.matmul ~name:"ai" ~m:1024 ~n:1024 ~k:1024 () in
  let skinny = Op_spec.matmul ~name:"ai2" ~m:1024 ~n:16 ~k:1024 () in
  Alcotest.(check bool) "square has higher intensity" true
    (Op_spec.arithmetic_intensity balanced > Op_spec.arithmetic_intensity skinny)

let suite =
  [ ( "compiler",
      [ Alcotest.test_case "compile ok" `Quick test_compile_ok;
        Alcotest.test_case "compile verifies numerically" `Quick
          test_compile_verifies_numerically;
        Alcotest.test_case "inlined elemwise compiles" `Quick
          test_compile_materialized_elemwise;
        Alcotest.test_case "evaluator cache and failure" `Quick
          test_evaluator_caches_and_fails;
        Alcotest.test_case "variant ordering" `Slow test_variant_ordering;
        Alcotest.test_case "variant spaces nested" `Quick test_variant_spaces_nested;
        Alcotest.test_case "tvm db register cost" `Quick test_tvm_db_register_cost;
        Alcotest.test_case "library close to alcop" `Slow test_library_close_to_alcop;
        Alcotest.test_case "xla library-backed on matmul" `Slow
          test_xla_on_matmul_is_library_backed;
        Alcotest.test_case "xla loses on batched matmul" `Slow
          test_xla_loses_on_batched_matmul;
        Alcotest.test_case "suite shapes have spaces" `Quick
          test_suite_shapes_have_spaces;
        Alcotest.test_case "model ops have spaces" `Quick test_model_ops_have_spaces;
        Alcotest.test_case "conv implicit gemm dims" `Quick
          test_conv_implicit_gemm_dims;
        Alcotest.test_case "arithmetic intensity" `Quick test_arithmetic_intensity ] ) ]
