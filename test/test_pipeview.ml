(* The pipeline observatory (Pipeview): the five-term cycle partition
   telescopes to the critical threadblock's wave cycles on real compiled
   schedules, prefetch-slack signs come out right on hand-built
   exposed-latency and fully-hidden schedules, schedule comparison is an
   exact integer telescoping, and the feature record is bit-identical
   between -j 1 and -j 4 compiles. *)

open Alcop_gpusim

let hw = Alcop_hw.Hw_config.ampere_a100
let gshared = "pipe.shared.ko"

let request_of_events ?(barrier_groups = [ gshared ]) events =
  { Timing.hw; program = Trace.pack events; total_tbs = 32; warps_per_tb = 4;
    smem_per_tb = 49152; regs_per_thread = 64; grid_m = 8; grid_n = 4;
    grid_z = 1; tb_m = 64; tb_n = 64; tb_k = 32; elem_bytes = 2;
    swizzle = true; jitter_key = 17; barrier_groups }

(* A [stages]-deep scope-synchronized pipeline: prologue then steady
   state, with load size and compute cost as the slack dials. *)
let pipeline_events ~stages ~iters ~bytes ~flops =
  let acq = Trace.Acquire { group = gshared; stages } in
  let aload =
    Trace.Load
      { level = Trace.From_global; bytes; async = true; group = Some gshared }
  in
  let commit = Trace.Commit { group = gshared; sync = true } in
  let wait = Trace.Wait_oldest { group = gshared; sync = true } in
  let prologue =
    List.concat (List.init (stages - 1) (fun _ -> [ acq; aload; commit ]))
  in
  let iter _ =
    [ acq; aload; commit; wait; Trace.Compute { flops };
      Trace.Release gshared ]
  in
  Array.of_list
    (prologue @ List.concat (List.init iters iter) @ [ Trace.Barrier ])

let view_of_events events =
  match Pipeview.run (request_of_events events) with
  | Ok v -> v
  | Error f ->
    Alcotest.failf "pipeview failed: %s"
      (Format.asprintf "%a" Occupancy.pp_failure f)

let check_telescopes v =
  let sum = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 v.Pipeview.pv_terms in
  let tol = 1e-6 *. Float.max 1.0 v.Pipeview.pv_wave_cycles in
  if Float.abs (sum -. v.Pipeview.pv_wave_cycles) > tol then
    Alcotest.failf "partition does not telescope: sum %.6f vs wave %.6f" sum
      v.Pipeview.pv_wave_cycles

(* Telescoping on real compiler output, across pipelined and unpipelined
   schedules: the five terms partition the critical TB's cycles. *)
let compiled_view ?pool ~smem_stages ~reg_stages () =
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ()
  in
  let session = Alcop.Session.create ~hw ~cache:false () in
  match Alcop.Session.compile session ?pool params spec with
  | Error _ -> Alcotest.fail "compile failed"
  | Ok c ->
    (match Pipeview.run c.Alcop.Compiler.timing_request with
     | Ok v -> v
     | Error _ -> Alcotest.fail "pipeview failed on compiled kernel")

let test_partition_telescopes () =
  List.iter
    (fun (s, r) -> check_telescopes (compiled_view ~smem_stages:s ~reg_stages:r ()))
    [ (1, 1); (2, 1); (3, 2); (4, 2) ];
  (* and on hand-built pipelines at both extremes *)
  check_telescopes
    (view_of_events
       (pipeline_events ~stages:2 ~iters:6 ~bytes:131072 ~flops:2048));
  check_telescopes
    (view_of_events (pipeline_events ~stages:3 ~iters:6 ~bytes:128 ~flops:409600))

(* Huge loads, negligible compute: the pipeline cannot hide the copy
   latency, so waits start before their batch lands — negative slack,
   nonzero exposed cycles, and a nonzero "exposed" partition term. *)
let test_slack_negative_when_exposed () =
  let v =
    view_of_events
      (pipeline_events ~stages:2 ~iters:6 ~bytes:131072 ~flops:2048)
  in
  let g =
    match v.Pipeview.pv_groups with
    | [ g ] -> g
    | gs -> Alcotest.failf "expected one group, got %d" (List.length gs)
  in
  Alcotest.(check bool) "min slack negative" true
    (g.Pipeview.gv_min_slack < 0.0);
  Alcotest.(check bool) "exposed cycles positive" true
    (g.Pipeview.gv_exposed_cycles > 0.0);
  Alcotest.(check bool) "exposed term positive" true
    (List.assoc "exposed" v.Pipeview.pv_terms > 0.0)

(* Tiny loads, huge compute: every steady-state batch lands long before
   its consumer waits — positive slack, and essentially no exposure. *)
let test_slack_positive_when_hidden () =
  let v =
    view_of_events
      (pipeline_events ~stages:3 ~iters:6 ~bytes:128 ~flops:409600)
  in
  let g =
    match v.Pipeview.pv_groups with
    | [ g ] -> g
    | gs -> Alcotest.failf "expected one group, got %d" (List.length gs)
  in
  Alcotest.(check bool) "mean slack positive" true
    (g.Pipeview.gv_mean_slack > 0.0);
  Alcotest.(check bool) "some wait has positive slack" true
    (List.exists (fun s -> s.Pipeview.sl_slack > 0.0) v.Pipeview.pv_slacks);
  (* the exposed share is dwarfed by compute *)
  Alcotest.(check bool) "exposure below compute" true
    (List.assoc "exposed" v.Pipeview.pv_terms
     < List.assoc "compute" v.Pipeview.pv_terms)

(* Schedule comparison is an exact integer telescoping by construction;
   assert the contract anyway, against a real pipelining delta. *)
let test_compare_exact () =
  let a = compiled_view ~smem_stages:1 ~reg_stages:1 () in
  let b = compiled_view ~smem_stages:3 ~reg_stages:2 () in
  let cmp = Pipeview.compare_views a b in
  let sum_d =
    List.fold_left (fun acc t -> acc + t.Pipeview.dt_delta) 0 cmp.Pipeview.cmp_terms
  in
  Alcotest.(check int) "term deltas sum to total delta"
    cmp.Pipeview.cmp_total_delta sum_d;
  Alcotest.(check int) "totals subtract" cmp.Pipeview.cmp_total_delta
    (cmp.Pipeview.cmp_total_b - cmp.Pipeview.cmp_total_a);
  Alcotest.(check int) "side A totals its terms" cmp.Pipeview.cmp_total_a
    (List.fold_left (fun acc t -> acc + t.Pipeview.dt_a) 0 cmp.Pipeview.cmp_terms)

(* The feature record is a pure function of the compiled program: -j 1
   and -j 4 compiles must produce bit-identical features. *)
let test_features_parallel_identical () =
  let seq = Pipeview.features (compiled_view ~smem_stages:3 ~reg_stages:2 ()) in
  let par =
    Alcop_par.Pool.with_pool ~jobs:4 (fun pool ->
        Pipeview.features (compiled_view ~pool ~smem_stages:3 ~reg_stages:2 ()))
  in
  Alcotest.(check int) "same arity" (List.length seq) (List.length par);
  List.iter2
    (fun (ka, va) (kb, vb) ->
      Alcotest.(check string) "feature name" ka kb;
      if not (Float.equal va vb) then
        Alcotest.failf "feature %s differs: %.17g vs %.17g" ka va vb)
    seq par

let suite =
  [ ( "pipeview",
      [ Alcotest.test_case "five-term partition telescopes" `Quick
          test_partition_telescopes;
        Alcotest.test_case "negative slack on exposed latency" `Quick
          test_slack_negative_when_exposed;
        Alcotest.test_case "positive slack when hidden" `Quick
          test_slack_positive_when_hidden;
        Alcotest.test_case "compare telescopes exactly (integer cycles)"
          `Quick test_compare_exact;
        Alcotest.test_case "-j1 == -j4 feature record" `Quick
          test_features_parallel_identical ] ) ]
