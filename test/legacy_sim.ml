(* Frozen copy of the pre-packed-program wave simulator.

   This is the boxed-event replay engine exactly as it stood before the
   packed-trace datapath landed: it walks a [Trace.event array] with
   per-threadblock records, string-keyed pipe hashtables and a batch
   [Queue] per group. It exists only as the reference side of the QCheck
   equivalence properties in [Test_packed] — packed replay must produce
   identical wave latencies, busy counters and per-class stall breakdowns.
   Do not "improve" it; its value is that it does not change. *)

open Alcop_gpusim

type server = { mutable next_free : float; mutable busy : float }

let server () = { next_free = 0.0; busy = 0.0 }

let serve_ex srv ~now ~cost =
  let start = Float.max now srv.next_free in
  let finish = start +. cost in
  srv.next_free <- finish;
  srv.busy <- srv.busy +. cost;
  (start, finish)

let serve srv ~now ~cost = snd (serve_ex srv ~now ~cost)

type mix = {
  mutable mx_dram : float;
  mutable mx_llc : float;
  mutable mx_smem : float;
  mutable mx_lat : float;
}

let mix () = { mx_dram = 0.0; mx_llc = 0.0; mx_smem = 0.0; mx_lat = 0.0 }

let mix_reset m =
  m.mx_dram <- 0.0;
  m.mx_llc <- 0.0;
  m.mx_smem <- 0.0;
  m.mx_lat <- 0.0

let mix_copy m =
  { mx_dram = m.mx_dram; mx_llc = m.mx_llc; mx_smem = m.mx_smem;
    mx_lat = m.mx_lat }

let mix_add dst src =
  dst.mx_dram <- dst.mx_dram +. src.mx_dram;
  dst.mx_llc <- dst.mx_llc +. src.mx_llc;
  dst.mx_smem <- dst.mx_smem +. src.mx_smem;
  dst.mx_lat <- dst.mx_lat +. src.mx_lat

let dominant m =
  if m.mx_dram > 0.0 && m.mx_dram >= m.mx_llc && m.mx_dram >= m.mx_smem
     && m.mx_dram >= m.mx_lat
  then Timing.Dram_bw
  else if m.mx_llc > 0.0 && m.mx_llc >= m.mx_smem && m.mx_llc >= m.mx_lat then
    Timing.Llc_bw
  else if m.mx_smem > 0.0 && m.mx_smem >= m.mx_lat then Timing.Smem_port
  else Timing.Sync_wait

type pipe_acct = {
  mutable open_batch : float;
  mutable committed : int;
  mutable taken : int;
  open_mix : mix;
  batches : (float * mix) Queue.t;
}

type tb = {
  mutable time : float;
  mutable cursor : int;
  mutable sync_recent : float;
  mutable sync_due : float;
  mutable all_outstanding : float;
  mutable at_boundary : bool;
  sync_mix : mix;
  due_mix : mix;
  pipes : (string, pipe_acct) Hashtbl.t;
}

let pipe_of tb gid =
  match Hashtbl.find_opt tb.pipes gid with
  | Some p -> p
  | None ->
    let p =
      { open_batch = 0.0; committed = 0; taken = 0; open_mix = mix ();
        batches = Queue.create () }
    in
    Hashtbl.replace tb.pipes gid p;
    p

let simulate_wave ?probe (cfg : Timing.config) (trace : Trace.event array) =
  let hw = cfg.Timing.hw in
  let active = float_of_int (max 1 cfg.Timing.active_sms) in
  let dram = server () and llc = server () and smem = server ()
  and compute = server () in
  let dram_rate = hw.Alcop_hw.Hw_config.dram_bytes_per_cycle /. active in
  let llc_rate = hw.Alcop_hw.Hw_config.llc_bytes_per_cycle /. active in
  let smem_rate = hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm in
  let total_warps = cfg.Timing.residents * cfg.Timing.warps_per_tb in
  let util = Float.min 1.0 (float_of_int total_warps /. 4.0) in
  let compute_rate =
    float_of_int hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle *. util
  in
  let load_latency =
    hw.Alcop_hw.Hw_config.llc_latency
    +. (cfg.Timing.miss_rate
        *. (hw.Alcop_hw.Hw_config.dram_latency
            -. hw.Alcop_hw.Hw_config.llc_latency))
  in
  let tracking = Option.is_some probe in
  let att i cls group ordinal start stop =
    match probe with
    | Some p when stop > start ->
      p.Timing.on_advance
        { Timing.adv_tb = i; adv_class = cls; adv_group = group;
          adv_ordinal = ordinal; adv_start = start; adv_stop = stop }
    | _ -> ()
  in
  let tbs =
    Array.init cfg.Timing.residents (fun _ ->
        { time = 0.0; cursor = 0; sync_recent = 0.0; sync_due = 0.0;
          all_outstanding = 0.0; at_boundary = false; sync_mix = mix ();
          due_mix = mix (); pipes = Hashtbl.create 4 })
  in
  let n = Array.length trace in
  let step i tb =
    let t0 = tb.time in
    let now = t0 +. cfg.Timing.issue_overhead in
    att i Timing.Issue None (-1) t0 now;
    (match trace.(tb.cursor) with
     | Trace.Load { level; bytes; async; group } ->
       let b = float_of_int bytes in
       let lmix = if tracking then Some (mix ()) else None in
       let completion =
         match level with
         | Trace.From_global ->
           let lf = serve llc ~now ~cost:(b /. llc_rate) in
           let df =
             serve dram ~now ~cost:(b *. cfg.Timing.miss_rate /. dram_rate)
           in
           (match lmix with
            | Some m ->
              m.mx_llc <- Float.max 0.0 (lf -. now);
              m.mx_dram <- Float.max 0.0 (df -. now);
              m.mx_lat <- load_latency
            | None -> ());
           Float.max lf df +. load_latency
         | Trace.From_shared ->
           let sf =
             serve smem ~now ~cost:(b *. cfg.Timing.smem_penalty /. smem_rate)
           in
           (match lmix with
            | Some m ->
              m.mx_smem <- Float.max 0.0 (sf -. now);
              m.mx_lat <- hw.Alcop_hw.Hw_config.smem_latency
            | None -> ());
           sf +. hw.Alcop_hw.Hw_config.smem_latency
       in
       tb.all_outstanding <- Float.max tb.all_outstanding completion;
       let batch_ord = ref (-1) in
       (if async then begin
          match group with
          | Some gid ->
            let p = pipe_of tb gid in
            p.open_batch <- Float.max p.open_batch completion;
            batch_ord := p.committed;
            (match lmix with Some m -> mix_add p.open_mix m | None -> ())
          | None ->
            tb.sync_recent <- Float.max tb.sync_recent completion;
            (match lmix with Some m -> mix_add tb.sync_mix m | None -> ())
        end
        else begin
          tb.sync_recent <- Float.max tb.sync_recent completion;
          (match lmix with Some m -> mix_add tb.sync_mix m | None -> ())
        end);
       (match probe with
        | Some p ->
          p.Timing.on_flight
            { Timing.fl_tb = i; fl_group = group; fl_batch = !batch_ord;
              fl_async = async; fl_level = level; fl_bytes = bytes;
              fl_issue = now; fl_land = completion }
        | None -> ());
       tb.time <- now
     | Trace.Store { bytes } ->
       let completion =
         serve dram ~now ~cost:(float_of_int bytes /. dram_rate)
         +. hw.Alcop_hw.Hw_config.dram_write_latency
       in
       tb.all_outstanding <- Float.max tb.all_outstanding completion;
       tb.time <- now
     | Trace.Commit { group = gid; _ } ->
       let p = pipe_of tb gid in
       Queue.push
         (p.open_batch, if tracking then mix_copy p.open_mix else p.open_mix)
         p.batches;
       p.open_batch <- 0.0;
       p.committed <- p.committed + 1;
       if tracking then mix_reset p.open_mix;
       tb.time <- now
     | Trace.Wait_oldest { group = gid; _ } ->
       let p = pipe_of tb gid in
       let ready, rmix =
         match Queue.take_opt p.batches with
         | Some (c, m) -> (c, m)
         | None -> (0.0, tb.due_mix)
       in
       let ordinal = p.taken in
       p.taken <- p.taken + 1;
       if List.mem gid cfg.Timing.barrier_groups then tb.at_boundary <- true;
       let t = Float.max now ready in
       att i (dominant rmix) (Some gid) ordinal now t;
       tb.time <- t
     | Trace.Acquire _ | Trace.Release _ -> tb.time <- now
     | Trace.Barrier ->
       tb.at_boundary <- true;
       let t = Float.max now tb.all_outstanding in
       att i Timing.Sync_wait None (-1) now t;
       tb.time <- t
     | Trace.Compute { flops } ->
       if tb.at_boundary then begin
         tb.sync_due <- Float.max tb.sync_due tb.sync_recent;
         tb.sync_recent <- 0.0;
         if tracking then begin
           mix_add tb.due_mix tb.sync_mix;
           mix_reset tb.sync_mix
         end;
         tb.at_boundary <- false
       end;
       let start = Float.max now tb.sync_due in
       att i (dominant tb.due_mix) None (-1) now start;
       tb.sync_due <- Float.max tb.sync_due tb.sync_recent;
       tb.sync_recent <- 0.0;
       if tracking then begin
         mix_add tb.due_mix tb.sync_mix;
         mix_reset tb.sync_mix
       end;
       let finish =
         serve compute ~now:start ~cost:(float_of_int flops /. compute_rate)
       in
       att i Timing.Compute None (-1) start finish;
       tb.time <- finish);
    tb.cursor <- tb.cursor + 1;
    if tb.cursor >= n then begin
      let t = Float.max tb.time tb.all_outstanding in
      att i Timing.Sync_wait None (-1) tb.time t;
      tb.time <- t
    end
  in
  let rec drive () =
    let best = ref (-1) in
    Array.iteri
      (fun i tb ->
        if tb.cursor < n && (!best < 0 || tb.time < tbs.(!best).time) then
          best := i)
      tbs;
    if !best >= 0 then begin
      step !best tbs.(!best);
      drive ()
    end
  in
  if n > 0 then drive ();
  let cycles = Array.fold_left (fun acc tb -> Float.max acc tb.time) 0.0 tbs in
  { Timing.cycles; compute_busy = compute.busy; dram_busy = dram.busy;
    llc_busy = llc.busy; smem_busy = smem.busy }
