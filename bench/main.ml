(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the simulated A100.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig10   -- run one experiment
     dune exec bench/main.exe -- list    -- list experiment ids

   Experiment ids: fig1b fig10 table3 fig11 fig12 fig13 table1 fig23 scaling
   selfbench perf report.

   The performance observatory (doc/benchmarking.md):
   [selfbench [--runs N]] uses Bechamel to measure the compiler's own
   throughput (lowering, the pipelining pass, trace extraction, timing
   simulation, a compile-cache hit) and the fig10 sweep at j=1/2/max with
   a host utilization summary per row; with --runs N the whole
   measurement repeats N times after a discarded warmup pass and each
   benchmark reports median/MAD/min/p90 plus a noise estimate
   (schema alcop-selfbench-v2, written to BENCH_gpusim.json).
   [record [--runs N] [--history DIR]] measures and appends the record to
   the per-machine-fingerprint history stream (--inject-regression F
   instead appends the stream's last record with times scaled by F, a
   deterministic regression for gate self-tests).
   [history [ID]] lists the streams, or one stream's records.
   [trend [--strict] [--sensitivity S] [--window W] [--min-rel F]
   [--machine ID] [--html FILE]] runs change-point detection over the
   history and (with --strict) exits nonzero on any detected regression.
   [compare OLD.json NEW.json [--strict] [--tolerance FRAC]] diffs two
   selfbench files (either schema) with explicit only-in-OLD/NEW rows and
   host-profile deltas when both sides carry them.
   [perf] profiles the host runtime of the fig10 sweep and prints the
   Amdahl/speedup-loss diagnosis (doc/hostprof.md); [report] writes the
   self-contained HTML experiment report (including history trend
   charts). *)

open Alcop

let hw = Alcop_hw.Hw_config.default

(* -j / --jobs N (0 = ALCOP_JOBS or the domain count): worker pool shared
   by every experiment runner in this invocation. Results are bit-identical
   to -j 1 — the pool only changes wall-clock time (doc/parallelism.md). *)
let requested_jobs = ref 0
let the_pool = ref None

let resolved_jobs () =
  if !requested_jobs <= 0 then Alcop_par.Pool.default_jobs ()
  else !requested_jobs

(* Created lazily on first use so `bench compare` and -j 1 runs spawn no
   domains; shut down by the main dispatcher. *)
let pool () =
  match !the_pool with
  | Some _ as p -> p
  | None ->
    let jobs = resolved_jobs () in
    if jobs <= 1 then None
    else begin
      let p = Alcop_par.Pool.create ~jobs () in
      the_pool := Some p;
      Some p
    end

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let opt_str = function
  | Some x -> Printf.sprintf "%8.2f" x
  | None -> Printf.sprintf "%8s" "fail"

(* --- E1: Fig. 1(b) --- *)

let run_fig1b () =
  header "Fig. 1(b) - motivating example: 2048x2048x2048 MatMul on sim-A100";
  Printf.printf "%-14s %6s %18s %18s %10s\n" "TB tile" "#TBs" "tiling-only TFLOPS"
    "pipelined TFLOPS" "gain";
  List.iter
    (fun (r : Experiments.fig1b_row) ->
      let gain =
        match r.Experiments.tflops_tiling_only, r.Experiments.tflops_pipelined with
        | Some a, Some b -> Printf.sprintf "%.2fx" (b /. a)
        | _ -> "-"
      in
      Printf.printf "%-14s %6d %18s %18s %10s\n" r.Experiments.tile
        r.Experiments.tb_count
        (opt_str r.Experiments.tflops_tiling_only)
        (opt_str r.Experiments.tflops_pipelined)
        gain)
    (Experiments.fig1b ~hw ());
  print_string
    "expected shape: tiling-only peaks at mid-size tiles (inter-TB parallelism\n\
     dies at large tiles); pipelining keeps large tiles fast.\n"

(* --- E2: Fig. 10 --- *)

let run_fig10 () =
  header "Fig. 10 - single-operator speedup over TVM (exhaustive search)";
  (* The five variants sweep nested schedule spaces, so most points after
     the first variant come out of the shared compile cache; report the
     hit rate this experiment achieved. *)
  let session = Session.for_hw hw in
  let before = Session.stats session in
  let result = Experiments.fig10 ~hw ?pool:(pool ()) () in
  let after = Session.stats session in
  let d = { after with
            Session.hits = after.Session.hits - before.Session.hits;
            misses = after.Session.misses - before.Session.misses;
            evictions = after.Session.evictions - before.Session.evictions }
  in
  Printf.printf "%-16s" "operator";
  List.iter (fun v -> Printf.printf "%17s" v.Variants.name) Variants.all;
  print_newline ();
  List.iter
    (fun (r : Experiments.fig10_row) ->
      Printf.printf "%-16s" r.Experiments.op;
      List.iter
        (fun (_, s) -> Printf.printf "%17.3f" s)
        r.Experiments.speedups;
      print_newline ())
    result.Experiments.rows;
  Printf.printf "%-16s" "geomean";
  List.iter (fun (_, g) -> Printf.printf "%17.3f" g) result.Experiments.geomeans;
  print_newline ();
  Printf.printf
    "compile cache: %d entries, %d hits / %d misses (%.1f%% hit rate), %d evicted\n"
    d.Session.entries d.Session.hits d.Session.misses
    (100.0 *. Session.hit_rate d) d.Session.evictions;
  print_string
    "paper: ALCOP 1.23x mean / 1.73x max over TVM; TVM DB ~ ALCOP w/o ML&MS\n\
     << ALCOP w/o ML < ALCOP; no gain on short-reduction or huge-output ops.\n"

(* --- E3: Table III --- *)

let run_table3 () =
  header "Table III - end-to-end model speedup";
  Printf.printf "%-12s %18s %18s\n" "model" "speedup over TVM" "speedup over XLA";
  List.iter
    (fun (r : E2e.report) ->
      Printf.printf "%-12s %18.2f %18.2f\n" r.E2e.model r.E2e.speedup_over_tvm
        r.E2e.speedup_over_xla)
    (Experiments.table3 ~hw ());
  print_string "paper: 1.02-1.18x over TVM, 1.01-1.64x over XLA.\n"

(* --- E4: Fig. 11 --- *)

let run_fig11 () =
  header "Fig. 11 - ALCOP normalized to library (cuBLAS/cuDNN oracle)";
  Printf.printf "%-16s %26s\n" "operator" "ALCOP perf / library perf";
  let rows = Experiments.fig11 ~hw () in
  let values = ref [] in
  List.iter
    (fun (r : Experiments.fig11_row) ->
      (match r.Experiments.normalized_to_library with
       | Some v -> values := v :: !values
       | None -> ());
      Printf.printf "%-16s %26s\n" r.Experiments.op11
        (opt_str r.Experiments.normalized_to_library))
    rows;
  Printf.printf "%-16s %26.3f\n" "mean" (Experiments.geomean !values);
  print_string
    "paper: on-par, ~93% of libraries on average; occasional wins on shapes\n\
     outside the library template sweet spot.\n"

(* --- E5: Fig. 12 --- *)

let run_fig12 () =
  header "Fig. 12 - best-in-top-k of performance models (normalized to exhaustive)";
  Printf.printf "%-16s %12s %12s %14s %14s\n" "operator" "ours@10" "ours@50"
    "bottleneck@10" "bottleneck@50";
  let rows = Experiments.fig12 ~hw ?pool:(pool ()) () in
  let avg sel k =
    let vs =
      List.filter_map (fun r -> Option.join (List.assoc_opt k (sel r))) rows
    in
    Experiments.geomean vs
  in
  List.iter
    (fun (r : Experiments.fig12_row) ->
      let cell l k = opt_str (Option.join (List.assoc_opt k l)) in
      Printf.printf "%-16s %12s %12s %14s %14s\n" r.Experiments.op12
        (cell r.Experiments.ours_top 10)
        (cell r.Experiments.ours_top 50)
        (cell r.Experiments.bottleneck_top 10)
        (cell r.Experiments.bottleneck_top 50))
    rows;
  Printf.printf "%-16s %12.2f %12.2f %14.2f %14.2f\n" "average"
    (avg (fun r -> r.Experiments.ours_top) 10)
    (avg (fun r -> r.Experiments.ours_top) 50)
    (avg (fun r -> r.Experiments.bottleneck_top) 10)
    (avg (fun r -> r.Experiments.bottleneck_top) 50);
  print_string
    "paper: ours 79%@10 / 92%@50; bottleneck 75%@10 / 88%@50; 'fail' marks\n\
     operators whose top-k predicted schedules all fail to compile.\n"

(* --- E6: Fig. 13 --- *)

let run_fig13 () =
  header "Fig. 13 - search efficiency (best-in-k-trials vs exhaustive)";
  let rows = Experiments.fig13 ~hw ?pool:(pool ()) () in
  let methods =
    match rows with
    | r :: _ -> List.map fst r.Experiments.per_method
    | [] -> []
  in
  Printf.printf "%-16s" "operator";
  List.iter (fun m -> Printf.printf " %18s@10 %15s@50" m m) methods;
  print_newline ();
  List.iter
    (fun (r : Experiments.fig13_row) ->
      Printf.printf "%-16s" r.Experiments.op13;
      List.iter
        (fun (_, budgets) ->
          Printf.printf " %21s %18s"
            (opt_str (Option.join (List.assoc_opt 10 budgets)))
            (opt_str (Option.join (List.assoc_opt 50 budgets))))
        r.Experiments.per_method;
      print_newline ())
    rows;
  let avg m k =
    Experiments.geomean
      (List.filter_map
         (fun (r : Experiments.fig13_row) ->
           Option.join
             (Option.bind
                (List.assoc_opt m r.Experiments.per_method)
                (List.assoc_opt k)))
         rows)
  in
  Printf.printf "%-16s" "average";
  List.iter
    (fun m -> Printf.printf " %21.2f %18.2f" (avg m 10) (avg m 50))
    methods;
  print_newline ();
  print_string
    "paper: analytical+XGB 95%@10 / 99%@50 beats analytical-only (79/92)\n\
     and plain XGB (70/86); grid search trails.\n"

(* --- E7: Table I agreement --- *)

let run_table1 () =
  header "Table I - analytical model vs simulator on each operator's best schedule";
  Printf.printf "%-16s %14s %14s %10s %12s\n" "operator" "predicted" "simulated"
    "rel.err" "bound-by";
  let rows = Experiments.table1 ~hw () in
  List.iter
    (fun (r : Experiments.table1_row) ->
      Printf.printf "%-16s %14.0f %14.0f %9.1f%% %12s\n" r.Experiments.op1
        r.Experiments.predicted_cycles r.Experiments.simulated_cycles
        (100.0 *. r.Experiments.rel_error)
        (if r.Experiments.smem_bound then "loading" else "compute"))
    rows;
  let mean_err =
    List.fold_left (fun a r -> a +. r.Experiments.rel_error) 0.0 rows
    /. float_of_int (max 1 (List.length rows))
  in
  Printf.printf "mean relative error: %.1f%%\n" (100.0 *. mean_err)

(* --- E8: Figs. 2-3 ablation --- *)

let run_fig23 () =
  header "Figs. 2-3 - stage-count and multi-level/fusion ablation (MM_RN50_FC)";
  Printf.printf "%-44s %12s %10s\n" "configuration" "cycles" "speedup";
  List.iter
    (fun (r : Experiments.fig23_row) ->
      Printf.printf "%-44s %12s %10s\n" r.Experiments.label
        (match r.Experiments.cycles with
         | Some c -> Printf.sprintf "%.0f" c
         | None -> "fail")
        (match r.Experiments.speedup_over_unpipelined with
         | Some s -> Printf.sprintf "%.2fx" s
         | None -> "-"))
    (Experiments.fig23 ~hw ());
  print_string
    "expected shape: 2-stage < multi-stage (Fig 2); single-level < multi-level;\n\
     inner-pipeline fusion (Fig 3d) beats the recursive pipeline (Fig 3c).\n"

(* --- E9 (extension): hardware scaling --- *)

let run_scaling () =
  header "Extension - pipelining advantage vs compute:bandwidth ratio";
  Printf.printf "%14s %14s %24s\n" "compute scale" "peak TFLOPS"
    "ALCOP/TVM geomean speedup";
  List.iter
    (fun (r : Experiments.scaling_row) ->
      Printf.printf "%14.1f %14.0f %24.3f\n" r.Experiments.compute_scale
        r.Experiments.peak_tflops r.Experiments.mean_speedup)
    (Experiments.scaling ~hw ());
  print_string
    "expected shape: the faster the tensor cores relative to memory, the\n\
     more latency there is to hide and the bigger pipelining's advantage --\n\
     the paper's motivation for studying pipelining on current/future GPUs.\n";
  Printf.printf "\nacross GPU generations (rule 1's hardware side):\n";
  Printf.printf "%-24s %24s\n" "machine" "ALCOP/TVM geomean";
  List.iter
    (fun (r : Experiments.generation_row) ->
      Printf.printf "%-24s %24.3f\n" r.Experiments.machine
        r.Experiments.gen_speedup)
    (Experiments.generations ());
  print_string
    "pre-Ampere machines lack cp.async: shared-memory pipelining is refused\n\
     and only register-level software pipelining remains (paper Sec. V-A).\n"

(* --- CSV export of the main figures' data --- *)

let write_csv path header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "," row);
          output_char oc '\n')
        rows);
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows)

let opt_csv = function Some v -> Printf.sprintf "%.6f" v | None -> ""

let run_csv () =
  header "CSV export (results/)";
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let fig10_header, fig10_rows =
    Experiments.fig10_csv (Experiments.fig10 ~hw ?pool:(pool ()) ())
  in
  write_csv "results/fig10.csv" fig10_header fig10_rows;
  write_csv "results/table3.csv"
    [ "model"; "speedup_over_tvm"; "speedup_over_xla" ]
    (List.map
       (fun (r : E2e.report) ->
         [ r.E2e.model;
           Printf.sprintf "%.6f" r.E2e.speedup_over_tvm;
           Printf.sprintf "%.6f" r.E2e.speedup_over_xla ])
       (Experiments.table3 ~hw ()));
  write_csv "results/fig11.csv"
    [ "operator"; "alcop_over_library" ]
    (List.map
       (fun (r : Experiments.fig11_row) ->
         [ r.Experiments.op11; opt_csv r.Experiments.normalized_to_library ])
       (Experiments.fig11 ~hw ()));
  let fig12_header, fig12_rows =
    Experiments.fig12_csv (Experiments.fig12 ~hw ?pool:(pool ()) ())
  in
  write_csv "results/fig12.csv" fig12_header fig12_rows;
  let fig13_header, fig13_rows =
    Experiments.fig13_csv (Experiments.fig13 ~hw ?pool:(pool ()) ())
  in
  write_csv "results/fig13.csv" fig13_header fig13_rows

(* --- host-profile helpers (selfbench rows + the perf experiment) --- *)

module Hostprof = Alcop_obs.Hostprof

(* Aggregate the five wall buckets over the tracks that ran tasks: the
   worker domains, or the coordinator itself at j=1 (inline). *)
let host_fracs (p : Hostprof.profile) =
  let workers =
    match
      List.filter
        (fun w -> not (String.equal w.Hostprof.w_role "coordinator"))
        p.Hostprof.p_workers
    with
    | [] -> p.Hostprof.p_workers
    | ws -> ws
  in
  let sum sel = List.fold_left (fun a w -> a + sel w) 0 workers in
  let wall = float_of_int (max 1 (sum (fun w -> w.Hostprof.w_wall_ns))) in
  let f sel = float_of_int (sum sel) /. wall in
  ( f (fun w -> w.Hostprof.w_busy_ns),
    f (fun w -> w.Hostprof.w_queue_ns),
    f (fun w -> w.Hostprof.w_lock_ns),
    f (fun w -> w.Hostprof.w_gc_ns),
    f (fun w -> w.Hostprof.w_idle_ns) )

let host_lock_wait_ms (p : Hostprof.profile) =
  List.fold_left
    (fun a l -> a +. (float_of_int l.Hostprof.l_wait_ns /. 1e6))
    0.0 p.Hostprof.p_locks

(* The "host" sub-object attached to sweep rows in BENCH_gpusim.json.
   `compare` readers that only know id + ops_per_sec ignore it (schema
   alcop-selfbench-v1 is unchanged); host-aware compares print deltas.
   [jobs] is the *resolved* worker count the sweep actually ran at —
   [Hostprof.p_jobs] is 0 for an inline (pool-less) run, which used to
   mislabel the j1 row (and the jmax alias of it on a 1-core box). *)
let host_json ~jobs (p : Hostprof.profile) =
  let busy, queue, lock, gc, idle = host_fracs p in
  let open Alcop_obs.Json in
  Obj
    ([ ("jobs", Int jobs);
       ("serial_fraction", Float (Hostprof.serial_fraction p));
       ("effective_parallelism", Float (Hostprof.effective_parallelism p));
       ("expected_speedup", Float (Hostprof.expected_speedup p ~jobs));
       ("busy_frac", Float busy); ("queue_frac", Float queue);
       ("lock_frac", Float lock); ("gc_frac", Float gc);
       ("idle_frac", Float idle);
       ("lock_wait_ms", Float (host_lock_wait_ms p)) ]
     @
     match p.Hostprof.p_locks with
     | [] -> []
     | top :: _ ->
       [ ("top_lock", Str top.Hostprof.l_name);
         ("top_lock_wait_ms",
          Float (float_of_int top.Hostprof.l_wait_ns /. 1e6)) ])

let print_host_summary (p : Hostprof.profile) =
  let busy, queue, lock, gc, idle = host_fracs p in
  Printf.printf
    "  host: busy %.0f%% idle %.0f%% lock %.0f%% queue %.0f%% gc %.0f%% | \
     serial %.1f%% | eff-par %.2f | lock-wait %.1f ms\n"
    (100.0 *. busy) (100.0 *. idle) (100.0 *. lock) (100.0 *. queue)
    (100.0 *. gc)
    (100.0 *. Hostprof.serial_fraction p)
    (Hostprof.effective_parallelism p)
    (host_lock_wait_ms p)

(* One exhaustive ALCOP sweep of MM_RN50_FC through a fresh pass-through
   session (the fig10-sweep workload), timed by wall clock; with
   [~profiled:true] the host profiler covers the whole run, pool spawn to
   join, and the telescoping contract is enforced. *)
let sweep_once ~profiled jobs =
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let session = Session.create ~hw ~cache:false () in
  let evaluate = Variants.evaluator ~hw ~session Variants.alcop spec in
  let space = Variants.space Variants.alcop spec in
  let run pool =
    ignore (Alcop_tune.Tuner.exhaustive ?pool ~space ~evaluate ())
  in
  if profiled then Hostprof.start ();
  let t0 = Unix.gettimeofday () in
  (if jobs <= 1 then run None
   else Alcop_par.Pool.with_pool ~jobs (fun p -> run (Some p)));
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  if not profiled then (ns, None)
  else begin
    let profile = Hostprof.stop () in
    (match Hostprof.check profile with
     | Ok () -> ()
     | Error msg ->
       Printf.eprintf "hostprof telescoping violation: %s\n" msg;
       exit 1);
    (ns, Some profile)
  end

(* --- Bechamel self-benchmarks of the compiler itself --- *)

module Benchdb = Alcop_obs.Benchdb

(* One measurement pass: the six bechamel micro-benchmarks (each already
   an OLS estimate over its own repetitions within the quota) plus the
   wall-clock fig10 sweeps at j = 1 / 2 / max under the host profiler.
   Returns (id, ns, host sub-object) rows sorted by id. [quiet]
   suppresses the per-row prints — with --runs N the repeated passes
   would otherwise drown the stats table that summarizes them. *)
let measure_pass ~quiet () =
  let open Bechamel in
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()
  in
  let sched =
    Alcop_sched.Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 spec tiling
  in
  let lowered = Alcop_sched.Lower.run sched in
  let pass_result =
    match
      Alcop_pipeline.Pass.run ~hw ~hints:lowered.Alcop_sched.Lower.hints
        lowered.Alcop_sched.Lower.kernel
    with
    | Ok r -> r
    | Error _ -> failwith "selfbench: pass failed"
  in
  let groups = Alcop_pipeline.Pass.groups pass_result in
  let kernel = pass_result.Alcop_pipeline.Pass.kernel in
  (* Cold compiles go through a pass-through session; the -hit benchmark
     measures a fingerprint + cache lookup on a pre-warmed caching session,
     i.e. what a repeated schedule point costs a tuner or variant sweep. *)
  let cold = Session.create ~hw ~cache:false () in
  let warm = Session.create ~hw () in
  ignore (Session.compile warm params spec);
  (* Persistent-store rows, against a throwaway store under the temp dir:
     store-cold re-colds the key each run (compile + record write);
     store-warm-disk answers from the on-disk record through a fresh
     session, i.e. what a brand-new process pays; store-warm-mem answers
     from the record already resident in a warmed session. *)
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "alcop-selfbench-store-%d" (Unix.getpid ()))
  in
  let store = Store.create ~root:store_dir () in
  let store_key =
    Fingerprint.to_hex
      (Fingerprint.compile_key ~hw ~extra_regs_per_thread:0 params spec)
  in
  let warm_store = Session.create ~hw ~store () in
  ignore (Session.timing warm_store params spec);
  let tests =
    Test.make_grouped ~name:"alcop"
      [ Test.make ~name:"lower" (Staged.stage (fun () ->
            ignore (Alcop_sched.Lower.run sched)));
        Test.make ~name:"pipeline-pass" (Staged.stage (fun () ->
            ignore
              (Alcop_pipeline.Pass.run ~hw
                 ~hints:lowered.Alcop_sched.Lower.hints
                 lowered.Alcop_sched.Lower.kernel)));
        Test.make ~name:"trace-extract" (Staged.stage (fun () ->
            ignore (Alcop_gpusim.Trace.extract_program ~groups kernel)));
        Test.make ~name:"compile+simulate" (Staged.stage (fun () ->
            ignore (Session.compile cold params spec)));
        Test.make ~name:"session-evaluate-hit" (Staged.stage (fun () ->
            ignore (Session.compile warm params spec)));
        Test.make ~name:"store-cold" (Staged.stage (fun () ->
            Store.remove store ~ns:"compile" store_key;
            let s = Session.create ~hw ~store () in
            ignore (Session.timing s params spec)));
        Test.make ~name:"store-warm-disk" (Staged.stage (fun () ->
            let s = Session.create ~hw ~store () in
            ignore (Session.timing s params spec)));
        Test.make ~name:"store-warm-mem" (Staged.stage (fun () ->
            ignore (Session.timing warm_store params spec)));
        (* Probe-on variant of compile+simulate: the same cold compile plus
           the pipeline observatory's probed wave replay and reduction.
           The delta against the compile+simulate row is the cost of
           turning the pipeview probe on. *)
        Test.make ~name:"pipeview-probe-overhead" (Staged.stage (fun () ->
            match Session.compile cold params spec with
            | Ok c ->
              ignore
                (Alcop_gpusim.Pipeview.run c.Compiler.timing_request)
            | Error _ -> ()));
        Test.make ~name:"analytical-model" (Staged.stage (fun () ->
            ignore (Alcop_perfmodel.Model.predict hw spec params))) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  let sorted = List.sort compare !rows in
  if not quiet then
    List.iter
      (fun (name, est) ->
        Printf.printf "%-40s %14.1f ns/run (%.1f us)\n" name est (est /. 1000.0))
      sorted;
  (* Parallel-speedup record: the exhaustive ALCOP sweep of the same
     operator through a fresh pass-through session, timed by wall clock
     (the sweep runs for seconds and every -j does identical work by
     construction) under the host profiler, at j = 1 / 2 / max. Each row
     carries its utilization + lock-wait summary into the record so
     `bench compare` trajectories show *why* a speedup moved. *)
  let jmax = max 1 (resolved_jobs ()) in
  let sweep_row label jobs =
    let ns, profile = sweep_once ~profiled:true jobs in
    (* an inline run (jobs <= 1) has no pool: it resolved to one worker *)
    let resolved = max 1 jobs in
    if not quiet then
      Printf.printf "%-40s %14.1f ns/run (%.1f ms)\n" label ns (ns /. 1e6);
    (match profile with
     | Some p when not quiet -> print_host_summary p
     | _ -> ());
    (label, ns, Option.map (host_json ~jobs:resolved) profile)
  in
  let row1 = sweep_row "alcop/fig10-sweep-j1" 1 in
  let row2 = sweep_row "alcop/fig10-sweep-j2" 2 in
  let rowj =
    if jmax = 1 then
      (let _, ns, host = row1 in ("alcop/fig10-sweep-jmax", ns, host))
    else if jmax = 2 then
      (let _, ns, host = row2 in ("alcop/fig10-sweep-jmax", ns, host))
    else sweep_row "alcop/fig10-sweep-jmax" jmax
  in
  let ns_of (_, ns, _) = ns in
  if not quiet then
    Printf.printf "parallel sweep speedup at -j %d: %.2fx\n" jmax
      (if ns_of rowj > 0.0 then ns_of row1 /. ns_of rowj else 1.0);
  List.sort compare
    (row1 :: row2 :: rowj
     :: List.map (fun (id, ns) -> (id, ns, None)) sorted)

(* Repeat the pass [runs] times (plus a discarded warmup pass when
   runs > 1: the first pass pays page-cache and JIT-less but very real
   allocator warmup) and fold the per-id samples into robust statistics.
   The host sub-object is taken from the last pass. *)
let measure ~runs () =
  let runs = max 1 runs in
  if runs > 1 then begin
    Printf.printf "warmup pass (discarded)...\n%!";
    ignore (measure_pass ~quiet:true ())
  end;
  let passes =
    List.init runs (fun i ->
        if runs > 1 then Printf.printf "measurement run %d/%d...\n%!" (i + 1) runs;
        measure_pass ~quiet:(runs > 1) ())
  in
  let ids =
    match passes with
    | first :: _ -> List.map (fun (id, _, _) -> id) first
    | [] -> []
  in
  let benches =
    List.map
      (fun id ->
        let samples =
          List.filter_map
            (fun rows ->
              List.find_map
                (fun (i, ns, _) -> if i = id then Some ns else None)
                rows)
            passes
        in
        let host =
          List.fold_left
            (fun acc rows ->
              match
                List.find_map
                  (fun (i, _, h) -> if i = id then h else None)
                  rows
              with
              | Some h -> Some h
              | None -> acc)
            None passes
        in
        { Benchdb.b_id = id; b_stats = Benchdb.summarize samples; b_host = host })
      ids
  in
  let fp = Benchdb.collect_fingerprint () in
  Printf.printf "fingerprint: %s (git %s, host %s)\n" (Benchdb.fingerprint_id fp)
    fp.Benchdb.f_git_rev fp.Benchdb.f_host_hash;
  Benchdb.make_record ~ts:(Unix.time ())
    ~generated_by:
      (Printf.sprintf "dune exec bench/main.exe -- selfbench --runs %d" runs)
    ~machine:hw.Alcop_hw.Hw_config.name ~fingerprint:fp benches

let print_stats_table (record : Benchdb.record) =
  Printf.printf "%-40s %5s %14s %11s %14s %14s %7s\n" "benchmark" "runs"
    "median ns" "mad ns" "min ns" "p90 ns" "noise";
  List.iter
    (fun (b : Benchdb.bench) ->
      let st = b.Benchdb.b_stats in
      Printf.printf "%-40s %5d %14.1f %11.1f %14.1f %14.1f %6.1f%%\n"
        b.Benchdb.b_id st.Benchdb.s_runs st.Benchdb.s_median_ns
        st.Benchdb.s_mad_ns st.Benchdb.s_min_ns st.Benchdb.s_p90_ns
        (100.0 *. Benchdb.noise st))
    record.Benchdb.r_benches

let run_selfbench ?(runs = 1) () =
  header "Compiler throughput (Bechamel, monotonic clock)";
  let record = measure ~runs () in
  if runs > 1 then print_stats_table record;
  Benchdb.write_file "BENCH_gpusim.json" record;
  Printf.printf "wrote BENCH_gpusim.json (%d benchmarks, schema %s)\n%!"
    (List.length record.Benchdb.r_benches) record.Benchdb.r_schema

(* --- bench record / history / trend: the on-disk observatory --- *)

let scale_stats factor (st : Benchdb.stats) =
  { st with
    Benchdb.s_median_ns = st.Benchdb.s_median_ns *. factor;
    s_mad_ns = st.Benchdb.s_mad_ns *. factor;
    s_min_ns = st.Benchdb.s_min_ns *. factor;
    s_p90_ns = st.Benchdb.s_p90_ns *. factor;
    s_mean_ns = st.Benchdb.s_mean_ns *. factor }

let run_record ?(runs = 1) ?(dir = Benchdb.default_history_dir) ?inject () =
  match inject with
  | Some factor ->
    (* Deterministic gate self-test: append the stream's last record with
       all times scaled by [factor] (1.0 = exact duplicate) instead of
       measuring — so CI can prove the trend gate trips and un-trips
       without depending on real timing noise. *)
    let fp = Benchdb.collect_fingerprint () in
    let path = Benchdb.history_file ~dir (Benchdb.fingerprint_id fp) in
    (match Benchdb.read_history path with
     | Error msg ->
       Printf.eprintf "record --inject-regression: %s: %s\n" path msg;
       exit 1
     | Ok ([], _) ->
       Printf.eprintf
         "record --inject-regression: %s has no records to scale yet\n" path;
       exit 1
     | Ok (records, _) ->
       let last = List.nth records (List.length records - 1) in
       let scaled =
         { last with
           Benchdb.r_ts = Some (Unix.time ());
           r_generated_by =
             Printf.sprintf "bench record --inject-regression %g" factor;
           r_benches =
             List.map
               (fun (b : Benchdb.bench) ->
                 { b with Benchdb.b_stats = scale_stats factor b.Benchdb.b_stats })
               last.Benchdb.r_benches }
       in
       (match Benchdb.append ~dir scaled with
        | Ok path ->
          Printf.printf "appended injected x%g record to %s\n%!" factor path
        | Error msg ->
          Printf.eprintf "record: %s\n" msg;
          exit 1))
  | None ->
    header "Record selfbench into the benchmark history";
    let record = measure ~runs () in
    print_stats_table record;
    (match Benchdb.append ~dir record with
     | Ok path ->
       Printf.printf "appended record (%d benchmarks, schema %s) to %s\n%!"
         (List.length record.Benchdb.r_benches) record.Benchdb.r_schema path
     | Error msg ->
       Printf.eprintf "record: %s\n" msg;
       exit 1)

let fmt_ts = function
  | None -> "-"
  | Some ts ->
    let tm = Unix.gmtime ts in
    Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec

let run_history ?id ?(dir = Benchdb.default_history_dir) () =
  match id with
  | None ->
    (match Benchdb.machines ~dir with
     | [] ->
       Printf.printf
         "no history under %s — run `dune exec bench/main.exe -- record` \
          to start one\n"
         dir
     | streams ->
       List.iter
         (fun (machine, path) ->
           match Benchdb.read_history path with
           | Ok (records, skipped) ->
             Printf.printf "%-40s %4d records%s\n" machine
               (List.length records)
               (if skipped > 0 then
                  Printf.sprintf " (%d corrupt line%s skipped)" skipped
                    (if skipped = 1 then "" else "s")
                else "")
           | Error msg -> Printf.printf "%-40s unreadable: %s\n" machine msg)
         streams)
  | Some id ->
    let path = Benchdb.history_file ~dir id in
    (match Benchdb.read_history path with
     | Error msg ->
       Printf.eprintf "history: %s: %s\n" path msg;
       exit 1
     | Ok (records, skipped) ->
       if skipped > 0 then
         Printf.printf "::warning::%s: skipped %d corrupt line%s\n" path
           skipped
           (if skipped = 1 then "" else "s");
       List.iteri
         (fun i (r : Benchdb.record) ->
           let rev =
             match r.Benchdb.r_fingerprint with
             | Some fp -> fp.Benchdb.f_git_rev
             | None -> "-"
           in
           Printf.printf "#%-3d %-20s git %-10s %2d benchmarks  %s\n" i
             (fmt_ts r.Benchdb.r_ts) rev
             (List.length r.Benchdb.r_benches)
             r.Benchdb.r_generated_by)
         records)

let run_trend ?(strict = false) ?window ?sensitivity ?min_rel ?machine ?html
    ?(dir = Benchdb.default_history_dir) () =
  let streams =
    match machine with
    | Some id -> [ (id, Benchdb.history_file ~dir id) ]
    | None -> Benchdb.machines ~dir
  in
  match streams with
  | [] ->
    (* an empty observatory is not a regression — the gate stays green
       until there is history to judge *)
    Printf.printf
      "no history under %s — run `dune exec bench/main.exe -- record` to \
       start one\n"
      dir
  | streams ->
    let loaded =
      List.filter_map
        (fun (m, path) ->
          match Benchdb.read_history path with
          | Error msg ->
            if machine <> None then begin
              Printf.eprintf "trend: %s: %s\n" path msg;
              exit 1
            end;
            Printf.printf "::warning::%s: unreadable stream: %s\n" path msg;
            None
          | Ok (records, skipped) ->
            Some
              ( m, records, skipped,
                Benchdb.trends ?window ?sensitivity ?min_rel records ))
        streams
    in
    List.iter
      (fun (m, records, skipped, trends) ->
        List.iter print_endline
          (Benchdb.trend_lines ~machine:m ~skipped records trends);
        print_newline ())
      loaded;
    (match html with
     | None -> ()
     | Some file ->
       let page =
         Benchdb.trend_page
           (List.map (fun (m, records, _, trends) -> (m, records, trends)) loaded)
       in
       let oc = open_out file in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc page);
       Printf.printf "wrote %s\n%!" file);
    let regression_count =
      List.fold_left
        (fun acc (_, _, _, trends) ->
          acc + List.length (Benchdb.regressions trends))
        0 loaded
    in
    if strict && regression_count > 0 then begin
      Printf.printf "strict trend gate: %d regression%s\n" regression_count
        (if regression_count = 1 then "" else "s");
      exit 1
    end

(* --- selfbench comparison (CI perf tripwire) --- *)

(* Diff two selfbench files (either schema). Warn-only by default —
   simulated-hardware throughput on shared CI runners is too noisy to
   gate on pairwise; the history trend gate above is the strict one.
   With [~strict:true] every regression beyond tolerance — and every
   disappeared benchmark — makes the process exit nonzero. *)
let run_compare ?(strict = false) ?(tolerance = 0.20) old_path new_path =
  let read label path =
    match Benchdb.read_file path with
    | Ok r -> r
    | Error msg ->
      Printf.eprintf "compare: %s (%s): %s\n" path label msg;
      exit 1
  in
  let old_r = read "OLD" old_path in
  let new_r = read "NEW" new_path in
  let result = Benchdb.compare_records ~strict ~tolerance ~old_r ~new_r () in
  List.iter print_endline result.Benchdb.cmp_lines;
  if strict && result.Benchdb.cmp_failures > 0 then begin
    Printf.printf "strict compare: %d failure%s\n" result.Benchdb.cmp_failures
      (if result.Benchdb.cmp_failures = 1 then "" else "s");
    exit 1
  end

(* --- bench perf: host-runtime diagnosis of the fig10 sweep --- *)

(* Why is fig10-sweep-jmax not faster than fig10-sweep-j1 (ROADMAP open
   item 5)? Run the sweep unprofiled (overhead baseline), then profiled
   at j=1 and at j=max, print both Amdahl reports and the diagnosis. *)
let run_perf () =
  header "Host runtime profile of the fig10 sweep";
  let jmax = max 2 (resolved_jobs ()) in
  let ns_off, _ = sweep_once ~profiled:false 1 in
  let ns1, p1 = sweep_once ~profiled:true 1 in
  let nsj, pj = sweep_once ~profiled:true jmax in
  Printf.printf "sweep wall: %.1f ms unprofiled, %.1f ms profiled at -j 1 \
                 (overhead %+.1f%%), %.1f ms at -j %d\n\n"
    (ns_off /. 1e6) (ns1 /. 1e6)
    (if ns_off > 0.0 then 100.0 *. (ns1 -. ns_off) /. ns_off else 0.0)
    (nsj /. 1e6) jmax;
  (match p1 with
   | Some p ->
     Printf.printf "-- j=1 --\n%s\n" (Hostprof.report p)
   | None -> ());
  match pj with
  | None -> ()
  | Some p ->
    Printf.printf "-- j=%d --\n%s\n" jmax (Hostprof.report p);
    let achieved = if nsj > 0.0 then ns1 /. nsj else 1.0 in
    let expected = Hostprof.expected_speedup p ~jobs:jmax in
    Printf.printf
      "speedup at -j %d: achieved %.2fx, Amdahl-expected <= %.2fx (serial \
       %.1f%%)\n"
      jmax achieved expected
      (100.0 *. Hostprof.serial_fraction p);
    let busy, queue, lock, gc, idle = host_fracs p in
    ignore busy;
    let name, frac =
      List.fold_left
        (fun (bn, bf) (n, f) -> if f > bf then (n, f) else (bn, bf))
        ("idle", idle)
        [ ("lock-wait", lock); ("queue-wait", queue); ("gc", gc) ]
    in
    Printf.printf
      "dominant worker-side loss: %s (%.0f%% of worker wall)\n" name
      (100.0 *. frac)

(* --- HTML experiment report --- *)

let run_report () =
  header "HTML experiment report";
  Exp_report.write ~hw ?pool:(pool ()) "report.html";
  Printf.printf "wrote report.html\n%!"

let experiments =
  [ ("fig1b", run_fig1b); ("fig10", run_fig10); ("table3", run_table3);
    ("fig11", run_fig11); ("fig12", run_fig12); ("fig13", run_fig13);
    ("table1", run_table1); ("fig23", run_fig23); ("scaling", run_scaling);
    ("csv", run_csv); ("selfbench", fun () -> run_selfbench ());
    ("perf", run_perf); ("report", run_report) ]

(* Shared option plumbing for the observatory subcommands. Each [want_*]
   helper validates one flag value or exits 2 with the offending text. *)
let bad_value cmd flag v =
  Printf.eprintf "%s: bad %s %s\n" cmd flag v;
  exit 2

let want_int cmd flag v ~min =
  match int_of_string_opt v with
  | Some n when n >= min -> n
  | _ -> bad_value cmd flag v

let want_float cmd flag v ~min =
  match float_of_string_opt v with
  | Some f when f >= min -> f
  | _ -> bad_value cmd flag v

(* compare OLD NEW [--strict] [--tolerance FRAC] *)
let parse_compare rest =
  let strict = ref false and tolerance = ref 0.20 and paths = ref [] in
  let rec go = function
    | [] -> ()
    | "--strict" :: rest -> strict := true; go rest
    | "--tolerance" :: v :: rest ->
      tolerance := want_float "compare" "--tolerance" v ~min:0.0;
      go rest
    | p :: rest -> paths := p :: !paths; go rest
  in
  go rest;
  match List.rev !paths with
  | [ old_path; new_path ] ->
    run_compare ~strict:!strict ~tolerance:!tolerance old_path new_path
  | _ ->
    Printf.eprintf
      "usage: compare OLD.json NEW.json [--strict] [--tolerance FRAC]\n";
    exit 2

(* selfbench [--runs N] *)
let parse_selfbench rest =
  let runs = ref 1 in
  let rec go = function
    | [] -> ()
    | "--runs" :: v :: rest ->
      runs := want_int "selfbench" "--runs" v ~min:1;
      go rest
    | a :: _ ->
      Printf.eprintf "usage: selfbench [--runs N] (got %s)\n" a;
      exit 2
  in
  go rest;
  run_selfbench ~runs:!runs ()

(* record [--runs N] [--history DIR] [--inject-regression FACTOR] *)
let parse_record rest =
  let runs = ref 1
  and dir = ref Benchdb.default_history_dir
  and inject = ref None in
  let rec go = function
    | [] -> ()
    | "--runs" :: v :: rest ->
      runs := want_int "record" "--runs" v ~min:1;
      go rest
    | "--history" :: v :: rest -> dir := v; go rest
    | "--inject-regression" :: v :: rest ->
      inject := Some (want_float "record" "--inject-regression" v ~min:0.0);
      go rest
    | a :: _ ->
      Printf.eprintf
        "usage: record [--runs N] [--history DIR] [--inject-regression \
         FACTOR] (got %s)\n"
        a;
      exit 2
  in
  go rest;
  run_record ~runs:!runs ~dir:!dir ?inject:!inject ()

(* history [ID] [--history DIR] *)
let parse_history rest =
  let dir = ref Benchdb.default_history_dir and id = ref None in
  let rec go = function
    | [] -> ()
    | "--history" :: v :: rest -> dir := v; go rest
    | a :: rest when !id = None -> id := Some a; go rest
    | a :: _ ->
      Printf.eprintf "usage: history [ID] [--history DIR] (got %s)\n" a;
      exit 2
  in
  go rest;
  run_history ?id:!id ~dir:!dir ()

(* trend [--strict] [--sensitivity S] [--window W] [--min-rel F]
   [--machine ID] [--html FILE] [--history DIR] *)
let parse_trend rest =
  let strict = ref false
  and window = ref None
  and sensitivity = ref None
  and min_rel = ref None
  and machine = ref None
  and html = ref None
  and dir = ref Benchdb.default_history_dir in
  let rec go = function
    | [] -> ()
    | "--strict" :: rest -> strict := true; go rest
    | "--sensitivity" :: v :: rest ->
      sensitivity := Some (want_float "trend" "--sensitivity" v ~min:0.0);
      go rest
    | "--window" :: v :: rest ->
      window := Some (want_int "trend" "--window" v ~min:1);
      go rest
    | "--min-rel" :: v :: rest ->
      min_rel := Some (want_float "trend" "--min-rel" v ~min:0.0);
      go rest
    | "--machine" :: v :: rest -> machine := Some v; go rest
    | "--html" :: v :: rest -> html := Some v; go rest
    | "--history" :: v :: rest -> dir := v; go rest
    | a :: _ ->
      Printf.eprintf
        "usage: trend [--strict] [--sensitivity S] [--window W] [--min-rel \
         F] [--machine ID] [--html FILE] [--history DIR] (got %s)\n"
        a;
      exit 2
  in
  go rest;
  run_trend ~strict:!strict ?window:!window ?sensitivity:!sensitivity
    ?min_rel:!min_rel ?machine:!machine ?html:!html ~dir:!dir ()

let () =
  (* Strip -j / --jobs N anywhere on the command line; the rest are
     experiment ids (or the compare subcommand) as before. *)
  let rec strip_jobs acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n >= 0 -> requested_jobs := n; strip_jobs acc rest
       | _ ->
         Printf.eprintf "bad -j/--jobs count %s\n" v;
         exit 2)
    | [ ("-j" | "--jobs") ] ->
      Printf.eprintf "-j/--jobs needs a count\n";
      exit 2
    | a :: rest -> strip_jobs (a :: acc) rest
  in
  let args = strip_jobs [] (List.tl (Array.to_list Sys.argv)) in
  let dispatch () =
    match args with
    | [ "list" ] -> List.iter (fun (n, _) -> print_endline n) experiments
    | "compare" :: rest -> parse_compare rest
    | "record" :: rest -> parse_record rest
    | "history" :: rest -> parse_history rest
    | "trend" :: rest -> parse_trend rest
    | "selfbench" :: (_ :: _ as rest) -> parse_selfbench rest
    | [] | [ "all" ] ->
      Printf.printf "ALCOP reproduction - all experiments on %s\n"
        hw.Alcop_hw.Hw_config.name;
      List.iter
        (fun (name, f) ->
          if name <> "csv" && name <> "report" && name <> "perf" then f ())
        experiments
    | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> f ()
          | None ->
            Printf.eprintf "unknown experiment %s (try: list)\n" n;
            exit 1)
        names
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Alcop_par.Pool.shutdown !the_pool)
    dispatch
