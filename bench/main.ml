(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the simulated A100.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig10   -- run one experiment
     dune exec bench/main.exe -- list    -- list experiment ids

   Experiment ids: fig1b fig10 table3 fig11 fig12 fig13 table1 fig23 scaling
   selfbench perf report.
   [selfbench] uses Bechamel to measure the compiler's own throughput
   (lowering, the pipelining pass, trace extraction, timing simulation,
   and a compile-cache hit) and records the fig10 sweep at j=1/2/max with
   a host utilization summary per row; `bench compare OLD.json NEW.json`
   diffs two selfbench outputs and prints warn-only regression
   annotations for CI, plus host-profile deltas when both sides carry
   them (add `--strict [--tolerance FRAC]` to exit nonzero on
   regressions); [perf] profiles the host runtime of the fig10 sweep and
   prints the Amdahl/speedup-loss diagnosis (doc/hostprof.md); [report]
   writes the self-contained HTML experiment report. *)

open Alcop

let hw = Alcop_hw.Hw_config.default

(* -j / --jobs N (0 = ALCOP_JOBS or the domain count): worker pool shared
   by every experiment runner in this invocation. Results are bit-identical
   to -j 1 — the pool only changes wall-clock time (doc/parallelism.md). *)
let requested_jobs = ref 0
let the_pool = ref None

let resolved_jobs () =
  if !requested_jobs <= 0 then Alcop_par.Pool.default_jobs ()
  else !requested_jobs

(* Created lazily on first use so `bench compare` and -j 1 runs spawn no
   domains; shut down by the main dispatcher. *)
let pool () =
  match !the_pool with
  | Some _ as p -> p
  | None ->
    let jobs = resolved_jobs () in
    if jobs <= 1 then None
    else begin
      let p = Alcop_par.Pool.create ~jobs () in
      the_pool := Some p;
      Some p
    end

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let opt_str = function
  | Some x -> Printf.sprintf "%8.2f" x
  | None -> Printf.sprintf "%8s" "fail"

(* --- E1: Fig. 1(b) --- *)

let run_fig1b () =
  header "Fig. 1(b) - motivating example: 2048x2048x2048 MatMul on sim-A100";
  Printf.printf "%-14s %6s %18s %18s %10s\n" "TB tile" "#TBs" "tiling-only TFLOPS"
    "pipelined TFLOPS" "gain";
  List.iter
    (fun (r : Experiments.fig1b_row) ->
      let gain =
        match r.Experiments.tflops_tiling_only, r.Experiments.tflops_pipelined with
        | Some a, Some b -> Printf.sprintf "%.2fx" (b /. a)
        | _ -> "-"
      in
      Printf.printf "%-14s %6d %18s %18s %10s\n" r.Experiments.tile
        r.Experiments.tb_count
        (opt_str r.Experiments.tflops_tiling_only)
        (opt_str r.Experiments.tflops_pipelined)
        gain)
    (Experiments.fig1b ~hw ());
  print_string
    "expected shape: tiling-only peaks at mid-size tiles (inter-TB parallelism\n\
     dies at large tiles); pipelining keeps large tiles fast.\n"

(* --- E2: Fig. 10 --- *)

let run_fig10 () =
  header "Fig. 10 - single-operator speedup over TVM (exhaustive search)";
  (* The five variants sweep nested schedule spaces, so most points after
     the first variant come out of the shared compile cache; report the
     hit rate this experiment achieved. *)
  let session = Session.for_hw hw in
  let before = Session.stats session in
  let result = Experiments.fig10 ~hw ?pool:(pool ()) () in
  let after = Session.stats session in
  let d = { after with
            Session.hits = after.Session.hits - before.Session.hits;
            misses = after.Session.misses - before.Session.misses;
            evictions = after.Session.evictions - before.Session.evictions }
  in
  Printf.printf "%-16s" "operator";
  List.iter (fun v -> Printf.printf "%17s" v.Variants.name) Variants.all;
  print_newline ();
  List.iter
    (fun (r : Experiments.fig10_row) ->
      Printf.printf "%-16s" r.Experiments.op;
      List.iter
        (fun (_, s) -> Printf.printf "%17.3f" s)
        r.Experiments.speedups;
      print_newline ())
    result.Experiments.rows;
  Printf.printf "%-16s" "geomean";
  List.iter (fun (_, g) -> Printf.printf "%17.3f" g) result.Experiments.geomeans;
  print_newline ();
  Printf.printf
    "compile cache: %d entries, %d hits / %d misses (%.1f%% hit rate), %d evicted\n"
    d.Session.entries d.Session.hits d.Session.misses
    (100.0 *. Session.hit_rate d) d.Session.evictions;
  print_string
    "paper: ALCOP 1.23x mean / 1.73x max over TVM; TVM DB ~ ALCOP w/o ML&MS\n\
     << ALCOP w/o ML < ALCOP; no gain on short-reduction or huge-output ops.\n"

(* --- E3: Table III --- *)

let run_table3 () =
  header "Table III - end-to-end model speedup";
  Printf.printf "%-12s %18s %18s\n" "model" "speedup over TVM" "speedup over XLA";
  List.iter
    (fun (r : E2e.report) ->
      Printf.printf "%-12s %18.2f %18.2f\n" r.E2e.model r.E2e.speedup_over_tvm
        r.E2e.speedup_over_xla)
    (Experiments.table3 ~hw ());
  print_string "paper: 1.02-1.18x over TVM, 1.01-1.64x over XLA.\n"

(* --- E4: Fig. 11 --- *)

let run_fig11 () =
  header "Fig. 11 - ALCOP normalized to library (cuBLAS/cuDNN oracle)";
  Printf.printf "%-16s %26s\n" "operator" "ALCOP perf / library perf";
  let rows = Experiments.fig11 ~hw () in
  let values = ref [] in
  List.iter
    (fun (r : Experiments.fig11_row) ->
      (match r.Experiments.normalized_to_library with
       | Some v -> values := v :: !values
       | None -> ());
      Printf.printf "%-16s %26s\n" r.Experiments.op11
        (opt_str r.Experiments.normalized_to_library))
    rows;
  Printf.printf "%-16s %26.3f\n" "mean" (Experiments.geomean !values);
  print_string
    "paper: on-par, ~93% of libraries on average; occasional wins on shapes\n\
     outside the library template sweet spot.\n"

(* --- E5: Fig. 12 --- *)

let run_fig12 () =
  header "Fig. 12 - best-in-top-k of performance models (normalized to exhaustive)";
  Printf.printf "%-16s %12s %12s %14s %14s\n" "operator" "ours@10" "ours@50"
    "bottleneck@10" "bottleneck@50";
  let rows = Experiments.fig12 ~hw ?pool:(pool ()) () in
  let avg sel k =
    let vs =
      List.filter_map (fun r -> Option.join (List.assoc_opt k (sel r))) rows
    in
    Experiments.geomean vs
  in
  List.iter
    (fun (r : Experiments.fig12_row) ->
      let cell l k = opt_str (Option.join (List.assoc_opt k l)) in
      Printf.printf "%-16s %12s %12s %14s %14s\n" r.Experiments.op12
        (cell r.Experiments.ours_top 10)
        (cell r.Experiments.ours_top 50)
        (cell r.Experiments.bottleneck_top 10)
        (cell r.Experiments.bottleneck_top 50))
    rows;
  Printf.printf "%-16s %12.2f %12.2f %14.2f %14.2f\n" "average"
    (avg (fun r -> r.Experiments.ours_top) 10)
    (avg (fun r -> r.Experiments.ours_top) 50)
    (avg (fun r -> r.Experiments.bottleneck_top) 10)
    (avg (fun r -> r.Experiments.bottleneck_top) 50);
  print_string
    "paper: ours 79%@10 / 92%@50; bottleneck 75%@10 / 88%@50; 'fail' marks\n\
     operators whose top-k predicted schedules all fail to compile.\n"

(* --- E6: Fig. 13 --- *)

let run_fig13 () =
  header "Fig. 13 - search efficiency (best-in-k-trials vs exhaustive)";
  let rows = Experiments.fig13 ~hw ?pool:(pool ()) () in
  let methods =
    match rows with
    | r :: _ -> List.map fst r.Experiments.per_method
    | [] -> []
  in
  Printf.printf "%-16s" "operator";
  List.iter (fun m -> Printf.printf " %18s@10 %15s@50" m m) methods;
  print_newline ();
  List.iter
    (fun (r : Experiments.fig13_row) ->
      Printf.printf "%-16s" r.Experiments.op13;
      List.iter
        (fun (_, budgets) ->
          Printf.printf " %21s %18s"
            (opt_str (Option.join (List.assoc_opt 10 budgets)))
            (opt_str (Option.join (List.assoc_opt 50 budgets))))
        r.Experiments.per_method;
      print_newline ())
    rows;
  let avg m k =
    Experiments.geomean
      (List.filter_map
         (fun (r : Experiments.fig13_row) ->
           Option.join
             (Option.bind
                (List.assoc_opt m r.Experiments.per_method)
                (List.assoc_opt k)))
         rows)
  in
  Printf.printf "%-16s" "average";
  List.iter
    (fun m -> Printf.printf " %21.2f %18.2f" (avg m 10) (avg m 50))
    methods;
  print_newline ();
  print_string
    "paper: analytical+XGB 95%@10 / 99%@50 beats analytical-only (79/92)\n\
     and plain XGB (70/86); grid search trails.\n"

(* --- E7: Table I agreement --- *)

let run_table1 () =
  header "Table I - analytical model vs simulator on each operator's best schedule";
  Printf.printf "%-16s %14s %14s %10s %12s\n" "operator" "predicted" "simulated"
    "rel.err" "bound-by";
  let rows = Experiments.table1 ~hw () in
  List.iter
    (fun (r : Experiments.table1_row) ->
      Printf.printf "%-16s %14.0f %14.0f %9.1f%% %12s\n" r.Experiments.op1
        r.Experiments.predicted_cycles r.Experiments.simulated_cycles
        (100.0 *. r.Experiments.rel_error)
        (if r.Experiments.smem_bound then "loading" else "compute"))
    rows;
  let mean_err =
    List.fold_left (fun a r -> a +. r.Experiments.rel_error) 0.0 rows
    /. float_of_int (max 1 (List.length rows))
  in
  Printf.printf "mean relative error: %.1f%%\n" (100.0 *. mean_err)

(* --- E8: Figs. 2-3 ablation --- *)

let run_fig23 () =
  header "Figs. 2-3 - stage-count and multi-level/fusion ablation (MM_RN50_FC)";
  Printf.printf "%-44s %12s %10s\n" "configuration" "cycles" "speedup";
  List.iter
    (fun (r : Experiments.fig23_row) ->
      Printf.printf "%-44s %12s %10s\n" r.Experiments.label
        (match r.Experiments.cycles with
         | Some c -> Printf.sprintf "%.0f" c
         | None -> "fail")
        (match r.Experiments.speedup_over_unpipelined with
         | Some s -> Printf.sprintf "%.2fx" s
         | None -> "-"))
    (Experiments.fig23 ~hw ());
  print_string
    "expected shape: 2-stage < multi-stage (Fig 2); single-level < multi-level;\n\
     inner-pipeline fusion (Fig 3d) beats the recursive pipeline (Fig 3c).\n"

(* --- E9 (extension): hardware scaling --- *)

let run_scaling () =
  header "Extension - pipelining advantage vs compute:bandwidth ratio";
  Printf.printf "%14s %14s %24s\n" "compute scale" "peak TFLOPS"
    "ALCOP/TVM geomean speedup";
  List.iter
    (fun (r : Experiments.scaling_row) ->
      Printf.printf "%14.1f %14.0f %24.3f\n" r.Experiments.compute_scale
        r.Experiments.peak_tflops r.Experiments.mean_speedup)
    (Experiments.scaling ~hw ());
  print_string
    "expected shape: the faster the tensor cores relative to memory, the\n\
     more latency there is to hide and the bigger pipelining's advantage --\n\
     the paper's motivation for studying pipelining on current/future GPUs.\n";
  Printf.printf "\nacross GPU generations (rule 1's hardware side):\n";
  Printf.printf "%-24s %24s\n" "machine" "ALCOP/TVM geomean";
  List.iter
    (fun (r : Experiments.generation_row) ->
      Printf.printf "%-24s %24.3f\n" r.Experiments.machine
        r.Experiments.gen_speedup)
    (Experiments.generations ());
  print_string
    "pre-Ampere machines lack cp.async: shared-memory pipelining is refused\n\
     and only register-level software pipelining remains (paper Sec. V-A).\n"

(* --- CSV export of the main figures' data --- *)

let write_csv path header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "," row);
          output_char oc '\n')
        rows);
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows)

let opt_csv = function Some v -> Printf.sprintf "%.6f" v | None -> ""

let run_csv () =
  header "CSV export (results/)";
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let fig10_header, fig10_rows =
    Experiments.fig10_csv (Experiments.fig10 ~hw ?pool:(pool ()) ())
  in
  write_csv "results/fig10.csv" fig10_header fig10_rows;
  write_csv "results/table3.csv"
    [ "model"; "speedup_over_tvm"; "speedup_over_xla" ]
    (List.map
       (fun (r : E2e.report) ->
         [ r.E2e.model;
           Printf.sprintf "%.6f" r.E2e.speedup_over_tvm;
           Printf.sprintf "%.6f" r.E2e.speedup_over_xla ])
       (Experiments.table3 ~hw ()));
  write_csv "results/fig11.csv"
    [ "operator"; "alcop_over_library" ]
    (List.map
       (fun (r : Experiments.fig11_row) ->
         [ r.Experiments.op11; opt_csv r.Experiments.normalized_to_library ])
       (Experiments.fig11 ~hw ()));
  let fig12_header, fig12_rows =
    Experiments.fig12_csv (Experiments.fig12 ~hw ?pool:(pool ()) ())
  in
  write_csv "results/fig12.csv" fig12_header fig12_rows;
  let fig13_header, fig13_rows =
    Experiments.fig13_csv (Experiments.fig13 ~hw ?pool:(pool ()) ())
  in
  write_csv "results/fig13.csv" fig13_header fig13_rows

(* --- host-profile helpers (selfbench rows + the perf experiment) --- *)

module Hostprof = Alcop_obs.Hostprof

(* Aggregate the five wall buckets over the tracks that ran tasks: the
   worker domains, or the coordinator itself at j=1 (inline). *)
let host_fracs (p : Hostprof.profile) =
  let workers =
    match
      List.filter
        (fun w -> not (String.equal w.Hostprof.w_role "coordinator"))
        p.Hostprof.p_workers
    with
    | [] -> p.Hostprof.p_workers
    | ws -> ws
  in
  let sum sel = List.fold_left (fun a w -> a + sel w) 0 workers in
  let wall = float_of_int (max 1 (sum (fun w -> w.Hostprof.w_wall_ns))) in
  let f sel = float_of_int (sum sel) /. wall in
  ( f (fun w -> w.Hostprof.w_busy_ns),
    f (fun w -> w.Hostprof.w_queue_ns),
    f (fun w -> w.Hostprof.w_lock_ns),
    f (fun w -> w.Hostprof.w_gc_ns),
    f (fun w -> w.Hostprof.w_idle_ns) )

let host_lock_wait_ms (p : Hostprof.profile) =
  List.fold_left
    (fun a l -> a +. (float_of_int l.Hostprof.l_wait_ns /. 1e6))
    0.0 p.Hostprof.p_locks

(* The "host" sub-object attached to sweep rows in BENCH_gpusim.json.
   `compare` readers that only know id + ops_per_sec ignore it (schema
   alcop-selfbench-v1 is unchanged); host-aware compares print deltas. *)
let host_json (p : Hostprof.profile) =
  let busy, queue, lock, gc, idle = host_fracs p in
  let open Alcop_obs.Json in
  Obj
    ([ ("jobs", Int p.Hostprof.p_jobs);
       ("serial_fraction", Float (Hostprof.serial_fraction p));
       ("effective_parallelism", Float (Hostprof.effective_parallelism p));
       ("expected_speedup",
        Float (Hostprof.expected_speedup p ~jobs:(max 1 p.Hostprof.p_jobs)));
       ("busy_frac", Float busy); ("queue_frac", Float queue);
       ("lock_frac", Float lock); ("gc_frac", Float gc);
       ("idle_frac", Float idle);
       ("lock_wait_ms", Float (host_lock_wait_ms p)) ]
     @
     match p.Hostprof.p_locks with
     | [] -> []
     | top :: _ ->
       [ ("top_lock", Str top.Hostprof.l_name);
         ("top_lock_wait_ms",
          Float (float_of_int top.Hostprof.l_wait_ns /. 1e6)) ])

let print_host_summary (p : Hostprof.profile) =
  let busy, queue, lock, gc, idle = host_fracs p in
  Printf.printf
    "  host: busy %.0f%% idle %.0f%% lock %.0f%% queue %.0f%% gc %.0f%% | \
     serial %.1f%% | eff-par %.2f | lock-wait %.1f ms\n"
    (100.0 *. busy) (100.0 *. idle) (100.0 *. lock) (100.0 *. queue)
    (100.0 *. gc)
    (100.0 *. Hostprof.serial_fraction p)
    (Hostprof.effective_parallelism p)
    (host_lock_wait_ms p)

(* One exhaustive ALCOP sweep of MM_RN50_FC through a fresh pass-through
   session (the fig10-sweep workload), timed by wall clock; with
   [~profiled:true] the host profiler covers the whole run, pool spawn to
   join, and the telescoping contract is enforced. *)
let sweep_once ~profiled jobs =
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let session = Session.create ~hw ~cache:false () in
  let evaluate = Variants.evaluator ~hw ~session Variants.alcop spec in
  let space = Variants.space Variants.alcop spec in
  let run pool =
    ignore (Alcop_tune.Tuner.exhaustive ?pool ~space ~evaluate ())
  in
  if profiled then Hostprof.start ();
  let t0 = Unix.gettimeofday () in
  (if jobs <= 1 then run None
   else Alcop_par.Pool.with_pool ~jobs (fun p -> run (Some p)));
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  if not profiled then (ns, None)
  else begin
    let profile = Hostprof.stop () in
    (match Hostprof.check profile with
     | Ok () -> ()
     | Error msg ->
       Printf.eprintf "hostprof telescoping violation: %s\n" msg;
       exit 1);
    (ns, Some profile)
  end

(* --- Bechamel self-benchmarks of the compiler itself --- *)

(* Machine-readable perf trajectory, written at the repo root so CI and
   successive commits can diff it. Schema "alcop-selfbench-v1":
     { "schema": "alcop-selfbench-v1",
       "generated_by": <command>,
       "machine": <simulated hw name>,
       "unit": "ops_per_sec",
       "benchmarks": [ { "id": <bechamel test id>,
                         "ns_per_run": <float>,
                         "ops_per_sec": <float> }, ... ] }
   Benchmarks are sorted by id; ops_per_sec = 1e9 / ns_per_run. Sweep
   rows additionally carry a "host" sub-object (utilization fractions,
   serial fraction, lock-wait) — extra fields are ignored by readers
   that only know id + ops_per_sec, so the schema version stands. *)
let write_bench_json rows =
  let open Alcop_obs.Json in
  let doc =
    Obj
      [ ("schema", Str "alcop-selfbench-v1");
        ("generated_by", Str "dune exec bench/main.exe -- selfbench");
        ("machine", Str hw.Alcop_hw.Hw_config.name);
        ("unit", Str "ops_per_sec");
        ("benchmarks",
         List
           (List.map
              (fun (id, ns, extra) ->
                Obj
                  ([ ("id", Str id); ("ns_per_run", Float ns);
                     ("ops_per_sec",
                      Float (if ns > 0.0 then 1e9 /. ns else 0.0)) ]
                   @ extra))
              rows)) ]
  in
  let oc = open_out "BENCH_gpusim.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string doc);
      output_char oc '\n');
  Printf.printf "wrote BENCH_gpusim.json (%d benchmarks)\n%!" (List.length rows)

let run_selfbench () =
  header "Compiler throughput (Bechamel, monotonic clock)";
  let open Bechamel in
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let params =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages:3 ~reg_stages:2 ()
  in
  let sched =
    Alcop_sched.Schedule.default_gemm ~smem_stages:3 ~reg_stages:2 spec tiling
  in
  let lowered = Alcop_sched.Lower.run sched in
  let pass_result =
    match
      Alcop_pipeline.Pass.run ~hw ~hints:lowered.Alcop_sched.Lower.hints
        lowered.Alcop_sched.Lower.kernel
    with
    | Ok r -> r
    | Error _ -> failwith "selfbench: pass failed"
  in
  let groups = Alcop_pipeline.Pass.groups pass_result in
  let kernel = pass_result.Alcop_pipeline.Pass.kernel in
  (* Cold compiles go through a pass-through session; the -hit benchmark
     measures a fingerprint + cache lookup on a pre-warmed caching session,
     i.e. what a repeated schedule point costs a tuner or variant sweep. *)
  let cold = Session.create ~hw ~cache:false () in
  let warm = Session.create ~hw () in
  ignore (Session.compile warm params spec);
  let tests =
    Test.make_grouped ~name:"alcop"
      [ Test.make ~name:"lower" (Staged.stage (fun () ->
            ignore (Alcop_sched.Lower.run sched)));
        Test.make ~name:"pipeline-pass" (Staged.stage (fun () ->
            ignore
              (Alcop_pipeline.Pass.run ~hw
                 ~hints:lowered.Alcop_sched.Lower.hints
                 lowered.Alcop_sched.Lower.kernel)));
        Test.make ~name:"trace-extract" (Staged.stage (fun () ->
            ignore (Alcop_gpusim.Trace.extract ~groups kernel)));
        Test.make ~name:"compile+simulate" (Staged.stage (fun () ->
            ignore (Session.compile cold params spec)));
        Test.make ~name:"session-evaluate-hit" (Staged.stage (fun () ->
            ignore (Session.compile warm params spec)));
        Test.make ~name:"analytical-model" (Staged.stage (fun () ->
            ignore (Alcop_perfmodel.Model.predict hw spec params))) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  let sorted = List.sort compare !rows in
  List.iter
    (fun (name, est) ->
      Printf.printf "%-40s %14.1f ns/run (%.1f us)\n" name est (est /. 1000.0))
    sorted;
  (* Parallel-speedup record: the exhaustive ALCOP sweep of the same
     operator through a fresh pass-through session, timed by wall clock
     (the sweep runs for seconds and every -j does identical work by
     construction) under the host profiler, at j = 1 / 2 / max. Each row
     carries its utilization + lock-wait summary into BENCH_gpusim.json
     so `bench compare` trajectories show *why* a speedup moved. *)
  let jmax = max 1 (resolved_jobs ()) in
  let sweep_row label jobs =
    let ns, profile = sweep_once ~profiled:true jobs in
    Printf.printf "%-40s %14.1f ns/run (%.1f ms)\n" label ns (ns /. 1e6);
    let extra =
      match profile with
      | Some p ->
        print_host_summary p;
        [ ("host", host_json p) ]
      | None -> []
    in
    (label, ns, extra)
  in
  let row1 = sweep_row "alcop/fig10-sweep-j1" 1 in
  let row2 = sweep_row "alcop/fig10-sweep-j2" 2 in
  let rowj =
    if jmax = 1 then
      (let _, ns, extra = row1 in ("alcop/fig10-sweep-jmax", ns, extra))
    else if jmax = 2 then
      (let _, ns, extra = row2 in ("alcop/fig10-sweep-jmax", ns, extra))
    else sweep_row "alcop/fig10-sweep-jmax" jmax
  in
  let ns_of (_, ns, _) = ns in
  Printf.printf "parallel sweep speedup at -j %d: %.2fx\n" jmax
    (if ns_of rowj > 0.0 then ns_of row1 /. ns_of rowj else 1.0);
  write_bench_json
    (List.sort compare
       (row1 :: row2 :: rowj
        :: List.map (fun (id, ns) -> (id, ns, [])) sorted))

(* --- selfbench comparison (CI perf tripwire, warn-only) --- *)

(* Read an "alcop-selfbench-v1" file into (id, ops_per_sec, host sub-object
   when present — older baselines have none). *)
let read_bench_json path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let open Alcop_obs.Json in
  match of_string contents with
  | Ok (Obj fields) ->
    let benchmarks =
      match List.assoc_opt "benchmarks" fields with
      | Some (List bs) -> bs
      | _ -> []
    in
    List.filter_map
      (function
        | Obj b ->
          (match List.assoc_opt "id" b, List.assoc_opt "ops_per_sec" b with
           | Some (Str id), Some (Float ops) ->
             Some (id, ops, List.assoc_opt "host" b)
           | Some (Str id), Some (Int ops) ->
             Some (id, float_of_int ops, List.assoc_opt "host" b)
           | _ -> None)
        | _ -> None)
      benchmarks
  | Ok _ | Error _ ->
    Printf.eprintf "%s: not an alcop-selfbench-v1 file\n" path;
    exit 1

(* When both sides of a compare carry host sub-objects, show why the
   throughput moved, not just that it did. *)
let print_host_delta old_host new_host =
  match old_host, new_host with
  | Some oh, Some nh ->
    let f h name =
      match Option.bind (Alcop_obs.Json.member name h) Alcop_obs.Json.number with
      | Some v -> v
      | None -> 0.0
    in
    Printf.printf
      "  host: serial %.1f%% -> %.1f%% | eff-par %.2f -> %.2f | idle %.0f%% \
       -> %.0f%% | lock-wait %.1f -> %.1f ms\n"
      (100.0 *. f oh "serial_fraction")
      (100.0 *. f nh "serial_fraction")
      (f oh "effective_parallelism")
      (f nh "effective_parallelism")
      (100.0 *. f oh "idle_frac")
      (100.0 *. f nh "idle_frac")
      (f oh "lock_wait_ms") (f nh "lock_wait_ms")
  | _ -> ()

(* Regression check between two selfbench outputs. The default mode is
   warn-only — it never fails the build (simulated-hardware throughput on
   shared CI runners is too noisy to gate on) but prints a
   GitHub-annotation warning for every benchmark that lost more than
   [tolerance] of its ops/sec against the committed baseline. With
   [~strict:true] every such regression — and every disappeared benchmark
   — makes the process exit nonzero, for local gating and for the CI
   smoke that compares a file against itself (which must always pass). *)
let run_compare ?(strict = false) ?(tolerance = 0.20) old_path new_path =
  let old_rows = read_bench_json old_path in
  let new_rows = read_bench_json new_path in
  let failures = ref 0 in
  let complain fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.printf "::%s::%s\n" (if strict then "error" else "warning") msg)
      fmt
  in
  let old_assoc = List.map (fun (id, ops, host) -> (id, (ops, host))) old_rows in
  let new_ids = List.map (fun (id, _, _) -> id) new_rows in
  Printf.printf "%-40s %14s %14s %9s\n" "benchmark" "old ops/s" "new ops/s"
    "ratio";
  List.iter
    (fun (id, new_ops, new_host) ->
      match List.assoc_opt id old_assoc with
      | None -> Printf.printf "%-40s %14s %14.1f %9s\n" id "(new)" new_ops "-"
      | Some (old_ops, old_host) ->
        let ratio = if old_ops > 0.0 then new_ops /. old_ops else 1.0 in
        Printf.printf "%-40s %14.1f %14.1f %8.2fx\n" id old_ops new_ops ratio;
        print_host_delta old_host new_host;
        if ratio < 1.0 -. tolerance then
          complain
            "selfbench regression: %s at %.2fx of baseline (%.1f -> %.1f \
             ops/s, tolerance %.0f%%)"
            id ratio old_ops new_ops (100.0 *. tolerance))
    new_rows;
  List.iter
    (fun (id, _, _) ->
      if not (List.mem id new_ids) then
        complain "selfbench benchmark disappeared: %s" id)
    old_rows;
  if strict && !failures > 0 then begin
    Printf.printf "strict compare: %d failure%s\n" !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end

(* --- bench perf: host-runtime diagnosis of the fig10 sweep --- *)

(* Why is fig10-sweep-jmax not faster than fig10-sweep-j1 (ROADMAP open
   item 5)? Run the sweep unprofiled (overhead baseline), then profiled
   at j=1 and at j=max, print both Amdahl reports and the diagnosis. *)
let run_perf () =
  header "Host runtime profile of the fig10 sweep";
  let jmax = max 2 (resolved_jobs ()) in
  let ns_off, _ = sweep_once ~profiled:false 1 in
  let ns1, p1 = sweep_once ~profiled:true 1 in
  let nsj, pj = sweep_once ~profiled:true jmax in
  Printf.printf "sweep wall: %.1f ms unprofiled, %.1f ms profiled at -j 1 \
                 (overhead %+.1f%%), %.1f ms at -j %d\n\n"
    (ns_off /. 1e6) (ns1 /. 1e6)
    (if ns_off > 0.0 then 100.0 *. (ns1 -. ns_off) /. ns_off else 0.0)
    (nsj /. 1e6) jmax;
  (match p1 with
   | Some p ->
     Printf.printf "-- j=1 --\n%s\n" (Hostprof.report p)
   | None -> ());
  match pj with
  | None -> ()
  | Some p ->
    Printf.printf "-- j=%d --\n%s\n" jmax (Hostprof.report p);
    let achieved = if nsj > 0.0 then ns1 /. nsj else 1.0 in
    let expected = Hostprof.expected_speedup p ~jobs:jmax in
    Printf.printf
      "speedup at -j %d: achieved %.2fx, Amdahl-expected <= %.2fx (serial \
       %.1f%%)\n"
      jmax achieved expected
      (100.0 *. Hostprof.serial_fraction p);
    let busy, queue, lock, gc, idle = host_fracs p in
    ignore busy;
    let name, frac =
      List.fold_left
        (fun (bn, bf) (n, f) -> if f > bf then (n, f) else (bn, bf))
        ("idle", idle)
        [ ("lock-wait", lock); ("queue-wait", queue); ("gc", gc) ]
    in
    Printf.printf
      "dominant worker-side loss: %s (%.0f%% of worker wall)\n" name
      (100.0 *. frac)

(* --- HTML experiment report --- *)

let run_report () =
  header "HTML experiment report";
  Exp_report.write ~hw ?pool:(pool ()) "report.html";
  Printf.printf "wrote report.html\n%!"

let experiments =
  [ ("fig1b", run_fig1b); ("fig10", run_fig10); ("table3", run_table3);
    ("fig11", run_fig11); ("fig12", run_fig12); ("fig13", run_fig13);
    ("table1", run_table1); ("fig23", run_fig23); ("scaling", run_scaling);
    ("csv", run_csv); ("selfbench", run_selfbench); ("perf", run_perf);
    ("report", run_report) ]

(* compare OLD NEW [--strict] [--tolerance FRAC] *)
let parse_compare rest =
  let strict = ref false and tolerance = ref 0.20 and paths = ref [] in
  let rec go = function
    | [] -> ()
    | "--strict" :: rest -> strict := true; go rest
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t >= 0.0 -> tolerance := t
       | _ ->
         Printf.eprintf "compare: bad --tolerance %s\n" v;
         exit 2);
      go rest
    | p :: rest -> paths := p :: !paths; go rest
  in
  go rest;
  match List.rev !paths with
  | [ old_path; new_path ] ->
    run_compare ~strict:!strict ~tolerance:!tolerance old_path new_path
  | _ ->
    Printf.eprintf
      "usage: compare OLD.json NEW.json [--strict] [--tolerance FRAC]\n";
    exit 2

let () =
  (* Strip -j / --jobs N anywhere on the command line; the rest are
     experiment ids (or the compare subcommand) as before. *)
  let rec strip_jobs acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n >= 0 -> requested_jobs := n; strip_jobs acc rest
       | _ ->
         Printf.eprintf "bad -j/--jobs count %s\n" v;
         exit 2)
    | [ ("-j" | "--jobs") ] ->
      Printf.eprintf "-j/--jobs needs a count\n";
      exit 2
    | a :: rest -> strip_jobs (a :: acc) rest
  in
  let args = strip_jobs [] (List.tl (Array.to_list Sys.argv)) in
  let dispatch () =
    match args with
    | [ "list" ] -> List.iter (fun (n, _) -> print_endline n) experiments
    | "compare" :: rest -> parse_compare rest
    | [] | [ "all" ] ->
      Printf.printf "ALCOP reproduction - all experiments on %s\n"
        hw.Alcop_hw.Hw_config.name;
      List.iter
        (fun (name, f) ->
          if name <> "csv" && name <> "report" && name <> "perf" then f ())
        experiments
    | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> f ()
          | None ->
            Printf.eprintf "unknown experiment %s (try: list)\n" n;
            exit 1)
        names
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Alcop_par.Pool.shutdown !the_pool)
    dispatch
