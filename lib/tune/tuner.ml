(* Schedule tuning methods — paper Table II and Sec. V-E.

   - [Grid]: an evenly strided sweep of the space; no learning.
   - [Xgb]: TVM's default: a gradient-boosted-trees cost model fit to the
     measured trials, with simulated annealing proposing each batch.
   - [Analytical_only]: rank the whole space by the analytical model of
     Table I; measure in rank order.
   - [Analytical_xgb] (ALCOP): pre-train the boosted model on analytical
     predictions over the space, then run the Xgb workflow; new boosting
     rounds fit measured residuals on top of the analytical prior.

   [evaluate] is the "hardware measurement" — in this repository, the
   event-driven timing simulator. [None] means the schedule failed to
   compile or launch (e.g. out of shared memory). *)

type method_ =
  | Grid
  | Xgb
  | Analytical_only
  | Analytical_xgb

let method_to_string = function
  | Grid -> "grid-search"
  | Xgb -> "XGB"
  | Analytical_only -> "analytical-only"
  | Analytical_xgb -> "analytical+XGB"

type trial = {
  index : int;
  params : Alcop_perfmodel.Params.t;
  cost : float option;  (** measured cycles; None = failed to compile *)
}

type result = {
  trials : trial array;  (** in measurement order *)
  space_size : int;
}

(* Running minimum over a cost sequence: [out.(i)] is the best Some cost
   among positions 0..i. One O(n) pass replaces the O(n·k) rescans that
   budget-sweep consumers (fig12's top-k curves, fig13's per-budget
   search-efficiency curves) used to do with repeated [best_within]. *)
let prefix_best_costs (costs : float option array) =
  let n = Array.length costs in
  let out = Array.make n None in
  let best = ref None in
  for i = 0 to n - 1 do
    (match costs.(i) with
     | Some c ->
       (match !best with
        | Some b when b <= c -> ()
        | _ -> best := Some c)
     | None -> ());
    out.(i) <- !best
  done;
  out

let prefix_best (r : result) =
  prefix_best_costs (Array.map (fun t -> t.cost) r.trials)

let best_within (r : result) k =
  let best = ref None in
  let k = min k (Array.length r.trials) in
  for i = 0 to k - 1 do
    match r.trials.(i).cost with
    | Some c ->
      (match !best with
       | Some b when b <= c -> ()
       | _ -> best := Some c)
    | None -> ()
  done;
  !best

let best (r : result) = best_within r (Array.length r.trials)

(* Stall attribution of the trial just measured: the timing simulator
   publishes [timing.stall.<class>] gauges for the representative wave of
   the last launch it timed, so right after [evaluate] those gauges
   describe *this* trial. That holds on compile-cache hits too: the shared
   [Session] re-publishes the [timing.*] gauges captured at the entry's
   cold compile, so the gauges always belong to the point just evaluated. *)
let stall_prefix = "timing.stall."

let last_stall_breakdown () =
  let plen = String.length stall_prefix in
  let entries =
    List.map
      (fun (name, v) ->
        (String.sub name plen (String.length name - plen),
         Alcop_obs.Json.Float v))
      (Alcop_obs.Obs.gauges_with_prefix stall_prefix)
  in
  match entries with
  | [] -> Alcop_obs.Json.Null
  | entries -> Alcop_obs.Json.Obj entries

(* Per-trial telemetry: one point event per measured trial carrying the
   best-so-far cost, the stall breakdown of the losing (or winning)
   schedule, and whether the measurement came out of the compile cache —
   so search-efficiency curves (paper Fig. 13), *why* each rejected
   candidate lost, and how much the shared [Session] saved are all
   reconstructible from the event log alone. Trials are numbered in
   measurement order, starting at 1. *)
let trial_recorder () =
  let best = ref None in
  let ordinal = ref 0 in
  let served_hits () =
    (* In-memory hits plus persistent-store hits: both mean the trial was
       served without running the compiler. *)
    Alcop_obs.Obs.counter_value "session.cache.hit"
    + Alcop_obs.Obs.counter_value "session.store.hit"
  in
  let cache_hits = ref (served_hits ()) in
  fun (t : trial) ->
    if Alcop_obs.Obs.enabled () then begin
      incr ordinal;
      (match t.cost with
       | Some c ->
         (match !best with
          | Some b when b <= c -> ()
          | _ -> best := Some c)
       | None -> ());
      (* The session bumps [session.cache.hit] (or [session.store.hit])
         during [evaluate]; a delta since the previous trial means this
         measurement was served from a cache rather than compiled. *)
      let hits_now = served_hits () in
      let cached = hits_now > !cache_hits in
      cache_hits := hits_now;
      let open Alcop_obs in
      let opt_float = function Some f -> Json.Float f | None -> Json.Null in
      Obs.point "tuner.trial"
        [ ("trial", Json.Int !ordinal);
          ("index", Json.Int t.index);
          ("schedule", Json.Str (Alcop_perfmodel.Params.to_string t.params));
          ("cost_cycles", opt_float t.cost);
          ("best_so_far", opt_float !best);
          ("cached", Json.Bool cached);
          ("stall",
           if t.cost = None then Json.Null else last_stall_breakdown ()) ];
      Obs.count "tuner.trials";
      if t.cost = None then Obs.count "tuner.compile_failures";
      if cached then Obs.count "tuner.trials_cached"
    end

(* Target encoding for the learned model: higher is better, scale-free. *)
let failure_target = -40.0

let target_of_cost = function
  | Some c when c > 0.0 -> -.Float.log c
  | Some _ | None -> failure_target

(* Measure a batch of (already deduplicated) space indices, fanned across
   the pool when one is given. [Pool.map_array] delivers results in index
   order and replays each measurement's telemetry immediately before the
   [each] callback, so [record] fires against exactly the state —
   best-so-far, cache-hit counter, timing.stall gauges — that a
   sequential loop would have seen. Without a pool this is the plain
   sequential loop. *)
let eval_batch ?pool ~(space : Alcop_perfmodel.Params.t array) ~evaluate
    ~record indices =
  match indices with
  | [] -> []
  | _ ->
    let mk i cost = { index = i; params = space.(i); cost } in
    (match pool with
     | Some p ->
       let idx = Array.of_list indices in
       let acc = ref [] in
       let (_ : float option array) =
         Alcop_par.Pool.map_array p
           ~each:(fun j cost ->
             let t = mk idx.(j) cost in
             record t;
             acc := t :: !acc)
           (fun i -> evaluate space.(i))
           idx
       in
       List.rev !acc
     | None ->
       List.map
         (fun i ->
           let t = mk i (evaluate space.(i)) in
           record t;
           t)
         indices)

let exhaustive ?pool ~(space : Alcop_perfmodel.Params.t array) ~evaluate () =
  (* Trials that land on the same wave shape reuse simulated latencies —
     see [Timing.with_wave_reuse]; results are structurally verified, so
     the sweep is unchanged. *)
  Alcop_gpusim.Timing.with_wave_reuse @@ fun () ->
  let record = trial_recorder () in
  let trials =
    eval_batch ?pool ~space ~evaluate ~record
      (List.init (Array.length space) Fun.id)
  in
  { trials = Array.of_list trials; space_size = Array.length space }

let measure_order ?pool ~space ~evaluate order budget =
  let record = trial_recorder () in
  let seen = Hashtbl.create 64 in
  let picked = ref [] in
  let count = ref 0 in
  List.iter
    (fun i ->
      if !count < budget && not (Hashtbl.mem seen i) then begin
        Hashtbl.replace seen i ();
        incr count;
        picked := i :: !picked
      end)
    order;
  let trials =
    eval_batch ?pool ~space ~evaluate ~record (List.rev !picked)
  in
  { trials = Array.of_list trials; space_size = Array.length space }

let grid ~pool ~space ~evaluate ~budget =
  let n = Array.length space in
  let order =
    if budget >= n then List.init n Fun.id
    else List.init budget (fun i -> i * n / budget)
  in
  measure_order ?pool ~space ~evaluate order budget

let analytical_only ~pool ~hw ~spec ~space ~evaluate ~budget =
  let scored =
    Array.to_list
      (Array.mapi
         (fun i p ->
           (i, Alcop_perfmodel.Model.predict_cycles hw spec p))
         space)
  in
  let valid = List.filter_map (fun (i, c) -> Option.map (fun c -> (i, c)) c) scored in
  let order =
    List.map fst (List.sort (fun (_, a) (_, b) -> compare a b) valid)
  in
  measure_order ?pool ~space ~evaluate order budget

(* The shared Xgb workflow; [prior] carries the analytical pre-training. *)
let xgb_loop ~pool ~hw ~spec ~space ~evaluate ~budget ~seed ~prior =
  let rng = Random.State.make [| seed; 0xA1C0 |] in
  let idx = Space.index space in
  let feats =
    Array.map (fun p -> Alcop_perfmodel.Features.extract hw spec p) space
  in
  let measured : (int, float option) Hashtbl.t = Hashtbl.create 64 in
  let trials = ref [] in
  let record = trial_recorder () in
  (* Dedup the proposed batch (a prior-less first batch is random draws
     and can repeat; [measured] excludes earlier batches) preserving
     proposal order, then measure the whole batch across the pool. *)
  let measure_batch batch =
    let seen = Hashtbl.create 8 in
    let fresh =
      List.filter
        (fun i ->
          if Hashtbl.mem measured i || Hashtbl.mem seen i then false
          else begin
            Hashtbl.replace seen i ();
            true
          end)
        batch
    in
    List.iter
      (fun t ->
        Hashtbl.replace measured t.index t.cost;
        trials := t :: !trials)
      (eval_batch ?pool ~space ~evaluate ~record fresh)
  in
  let batch_size = max 1 (min 8 budget) in
  let model = ref prior in
  (* Exact top-n of the whole space under the current model (exploitation);
     annealing fills the rest of a batch (exploration). *)
  let top_by_model m ~exclude n =
    let scored = ref [] in
    Array.iteri
      (fun i _ -> if not (exclude i) then
          scored := (Gbt.predict m feats.(i), i) :: !scored)
      space;
    let sorted = List.sort (fun (a, _) (b, _) -> compare b a) !scored in
    List.filteri (fun j _ -> j < n) (List.map snd sorted)
  in
  let propose_batch m ~exclude n =
    let exploit = top_by_model m ~exclude (max 1 (n / 2)) in
    let exclude' i = exclude i || List.mem i exploit in
    let explore =
      Anneal.propose rng idx
        ~score:(fun i -> Gbt.predict m feats.(i))
        ~exclude:exclude' ~batch:(n - List.length exploit)
    in
    exploit @ explore
  in
  let first_batch =
    match prior with
    | Some m ->
      (* With a pre-trained prior the very first batch already follows the
         model instead of being random — the key advantage at tiny trial
         budgets (paper Fig. 13, budget 10). *)
      propose_batch m ~exclude:(fun _ -> false) batch_size
    | None ->
      List.init batch_size (fun _ -> Random.State.int rng (Array.length space))
  in
  measure_batch first_batch;
  let rec loop () =
    if List.length !trials < budget then begin
      (* Refit on all measured data, continuing from the prior if any. *)
      let data = Hashtbl.fold (fun i c acc -> (i, c) :: acc) measured [] in
      let xs = Array.of_list (List.map (fun (i, _) -> feats.(i)) data) in
      let ys = Array.of_list (List.map (fun (_, c) -> target_of_cost c) data) in
      let fitted =
        Gbt.fit
          ~config:{ Gbt.default_config with n_rounds = 24 }
          ?init:prior xs ys
      in
      model := Some fitted;
      let remaining = budget - List.length !trials in
      let batch =
        propose_batch fitted ~exclude:(Hashtbl.mem measured)
          (min batch_size remaining)
      in
      match batch with
      | [] -> ()  (* the whole space has been measured *)
      | _ ->
        measure_batch batch;
        loop ()
    end
  in
  loop ();
  ignore !model;
  { trials = Array.of_list (List.rev !trials); space_size = Array.length space }

(* Pre-training set: analytical predictions over (a sample of) the space. *)
let pretrain ~hw ~spec ~space ~seed =
  let rng = Random.State.make [| seed; 0xF17 |] in
  let n = Array.length space in
  let sample_size = min n 2048 in
  let indices =
    if sample_size = n then List.init n Fun.id
    else List.init sample_size (fun _ -> Random.State.int rng n)
  in
  let pairs =
    List.filter_map
      (fun i ->
        match Alcop_perfmodel.Model.predict_cycles hw spec space.(i) with
        | Some c ->
          Some (Alcop_perfmodel.Features.extract hw spec space.(i), -.Float.log c)
        | None -> None)
      indices
  in
  let xs = Array.of_list (List.map fst pairs) in
  let ys = Array.of_list (List.map snd pairs) in
  Gbt.fit
    ~config:
      { Gbt.default_config with n_rounds = 64;
        tree = { Tree.default_config with max_depth = 6 } }
    xs ys

let run ?pool ~hw ~spec ~(space : Alcop_perfmodel.Params.t array) ~evaluate
    ~budget ~seed method_ =
  Alcop_obs.Obs.with_span "tuner.run"
    ~fields:
      [ ("op", Alcop_obs.Json.Str spec.Alcop_sched.Op_spec.name);
        ("method", Alcop_obs.Json.Str (method_to_string method_));
        ("budget", Alcop_obs.Json.Int budget);
        ("seed", Alcop_obs.Json.Int seed);
        ("space_size", Alcop_obs.Json.Int (Array.length space)) ]
  @@ fun () ->
  Alcop_gpusim.Timing.with_wave_reuse @@ fun () ->
  if Array.length space = 0 then { trials = [||]; space_size = 0 }
  else
    match method_ with
    | Grid -> grid ~pool ~space ~evaluate ~budget
    | Analytical_only ->
      analytical_only ~pool ~hw ~spec ~space ~evaluate ~budget
    | Xgb -> xgb_loop ~pool ~hw ~spec ~space ~evaluate ~budget ~seed ~prior:None
    | Analytical_xgb ->
      let prior =
        Alcop_obs.Obs.with_span "tuner.pretrain" (fun () ->
            pretrain ~hw ~spec ~space ~seed)
      in
      xgb_loop ~pool ~hw ~spec ~space ~evaluate ~budget ~seed
        ~prior:(Some prior)
