(** Schedule tuning methods — paper Table II and Sec. V-E.

    [evaluate] plays the role of hardware measurement (here: the timing
    simulator); [None] marks schedules that fail to compile or launch. *)

type method_ =
  | Grid             (** evenly strided sweep, no learning *)
  | Xgb              (** TVM default: boosted trees + simulated annealing *)
  | Analytical_only  (** rank the space by the Table I model *)
  | Analytical_xgb   (** ALCOP: analytical pre-training + the Xgb workflow *)

val method_to_string : method_ -> string

type trial = {
  index : int;
  params : Alcop_perfmodel.Params.t;
  cost : float option;  (** measured cycles; [None] = failed to compile *)
}

type result = {
  trials : trial array;  (** in measurement order *)
  space_size : int;
}

val best_within : result -> int -> float option
(** Best measured cost among the first k trials. *)

val best : result -> float option

val prefix_best_costs : float option array -> float option array
(** Running minimum: element [i] is the best [Some] cost among positions
    [0..i] ([None] until the first success). One O(n) pass — use this
    instead of calling {!best_within} once per budget when sweeping
    budgets (fig12 / fig13). *)

val prefix_best : result -> float option array
(** {!prefix_best_costs} over the result's trial costs, so
    [(prefix_best r).(k - 1) = best_within r k] for [1 <= k <= n]. *)

val target_of_cost : float option -> float
(** Learning target: [-log cost], with a sentinel for failures. *)

val exhaustive :
  ?pool:Alcop_par.Pool.t ->
  space:Alcop_perfmodel.Params.t array ->
  evaluate:(Alcop_perfmodel.Params.t -> float option) ->
  unit ->
  result

val run :
  ?pool:Alcop_par.Pool.t ->
  hw:Alcop_hw.Hw_config.t ->
  spec:Alcop_sched.Op_spec.t ->
  space:Alcop_perfmodel.Params.t array ->
  evaluate:(Alcop_perfmodel.Params.t -> float option) ->
  budget:int ->
  seed:int ->
  method_ ->
  result
(** Deterministic for a given seed. Each space point is measured at most
    once; the run stops early if the space is exhausted.

    With [pool], each proposed batch of candidates is measured across the
    worker domains; the trial array, per-trial telemetry and tuning log
    are bit-identical to the sequential run — parallelism only changes
    wall-clock time (doc/parallelism.md spells out the contract). *)
