(* JSON tuning logs, in the spirit of AutoTVM's record files: one run
   object carrying the method, seed, space size and every trial with its
   schedule knobs and measured cost. Serialization goes through
   [Alcop_obs.Json], the same emitter the observability sinks use, so
   string escaping and float/null handling live in one place. *)

module Json = Alcop_obs.Json

let params_to_json (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  Json.Obj
    [ ("tb_m", Json.Int t.Alcop_sched.Tiling.tb_m);
      ("tb_n", Json.Int t.Alcop_sched.Tiling.tb_n);
      ("tb_k", Json.Int t.Alcop_sched.Tiling.tb_k);
      ("warp_m", Json.Int t.Alcop_sched.Tiling.warp_m);
      ("warp_n", Json.Int t.Alcop_sched.Tiling.warp_n);
      ("warp_k", Json.Int t.Alcop_sched.Tiling.warp_k);
      ("split_k", Json.Int t.Alcop_sched.Tiling.split_k);
      ("smem_stages", Json.Int p.Alcop_perfmodel.Params.smem_stages);
      ("reg_stages", Json.Int p.Alcop_perfmodel.Params.reg_stages);
      ("swizzle", Json.Bool p.Alcop_perfmodel.Params.swizzle);
      ("inner_fuse", Json.Bool p.Alcop_perfmodel.Params.inner_fuse) ]

let json_of_params p = Json.to_string (params_to_json p)

let opt_cost = function
  | Some c -> Json.Float c
  | None -> Json.Null

(* [features]: per-trial pipeline feature records from the observatory
   (Pipeview), keyed by trial index — cost-model features richer than the
   scalar latency, attached as a "pipeline_features" object. *)
let trial_to_json ?(features = []) (t : Tuner.trial) =
  let base =
    [ ("index", Json.Int t.Tuner.index);
      ("schedule", params_to_json t.Tuner.params);
      ("cost_cycles", opt_cost t.Tuner.cost) ]
  in
  let extra =
    match List.assoc_opt t.Tuner.index features with
    | Some feats when feats <> [] ->
      [ ("pipeline_features",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) feats)) ]
    | _ -> []
  in
  Json.Obj (base @ extra)

let run_to_json ?(features = []) ~spec_name ~method_ ~seed (r : Tuner.result) =
  Json.Obj
    [ ("operator", Json.Str spec_name);
      ("method", Json.Str (Tuner.method_to_string method_));
      ("seed", Json.Int seed);
      ("space_size", Json.Int r.Tuner.space_size);
      ("best_cycles", opt_cost (Tuner.best r));
      ("trials",
       Json.List
         (Array.to_list
            (Array.map (trial_to_json ~features) r.Tuner.trials))) ]

let to_json ?(features = []) ~spec_name ~method_ ~seed r =
  Json.to_string (run_to_json ~features ~spec_name ~method_ ~seed r)

let write_file ?(features = []) ~path ~spec_name ~method_ ~seed r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ~features ~spec_name ~method_ ~seed r);
      output_char oc '\n')

(* --- reading logs back ---

   The inverse direction, for replaying a tuning run offline (re-ranking
   trials, diffing two runs, feeding a report). File and JSON plumbing is
   shared with the observability side through [Trace_reader] rather than
   re-implemented here. *)

module Trace_reader = Alcop_obs.Trace_reader

type replayed_trial = {
  rt_index : int;
  rt_params : Alcop_perfmodel.Params.t;
  rt_cost : float option;
  rt_features : (string * float) list;
      (** pipeline feature record, [[]] when the log predates them *)
}

type replay = {
  r_operator : string;
  r_method : string;
  r_seed : int;
  r_space_size : int;
  r_best_cycles : float option;
  r_trials : replayed_trial list;
}

let params_of_json j =
  let int_field k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error ("schedule missing int field " ^ k)
  in
  let bool_field k =
    match Json.member k j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error ("schedule missing bool field " ^ k)
  in
  let ( let* ) = Result.bind in
  let* tb_m = int_field "tb_m" in
  let* tb_n = int_field "tb_n" in
  let* tb_k = int_field "tb_k" in
  let* warp_m = int_field "warp_m" in
  let* warp_n = int_field "warp_n" in
  let* warp_k = int_field "warp_k" in
  let* split_k = int_field "split_k" in
  let* smem_stages = int_field "smem_stages" in
  let* reg_stages = int_field "reg_stages" in
  let* swizzle = bool_field "swizzle" in
  let* inner_fuse = bool_field "inner_fuse" in
  match
    Alcop_perfmodel.Params.make ~swizzle ~inner_fuse
      ~tiling:
        (Alcop_sched.Tiling.make ~split_k ~tb_m ~tb_n ~tb_k ~warp_m ~warp_n
           ~warp_k ())
      ~smem_stages ~reg_stages ()
  with
  | p -> Ok p
  | exception Invalid_argument msg -> Error msg

let replay_of_json j =
  let ( let* ) = Result.bind in
  let str_field k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error ("tuning log missing field " ^ k)
  in
  let int_field k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error ("tuning log missing field " ^ k)
  in
  let* r_operator = str_field "operator" in
  let* r_method = str_field "method" in
  let* r_seed = int_field "seed" in
  let* r_space_size = int_field "space_size" in
  let r_best_cycles =
    Option.bind (Json.member "best_cycles" j) Json.number
  in
  let* trials =
    match Json.member "trials" j with
    | Some (Json.List ts) -> Ok ts
    | _ -> Error "tuning log missing field trials"
  in
  let* r_trials =
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        let* rt_index =
          match Json.member "index" t with
          | Some (Json.Int i) -> Ok i
          | _ -> Error "trial missing index"
        in
        let* rt_params =
          match Json.member "schedule" t with
          | Some s -> params_of_json s
          | None -> Error "trial missing schedule"
        in
        let rt_cost = Option.bind (Json.member "cost_cycles" t) Json.number in
        let rt_features =
          match Json.member "pipeline_features" t with
          | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.number v))
              kvs
          | _ -> []
        in
        Ok ({ rt_index; rt_params; rt_cost; rt_features } :: acc))
      (Ok []) trials
  in
  Ok
    { r_operator; r_method; r_seed; r_space_size; r_best_cycles;
      r_trials = List.rev r_trials }

let read_file path =
  Result.bind (Trace_reader.json_of_file path) replay_of_json
