(* JSON tuning logs, in the spirit of AutoTVM's record files: one run
   object carrying the method, seed, space size and every trial with its
   schedule knobs and measured cost. Serialization goes through
   [Alcop_obs.Json], the same emitter the observability sinks use, so
   string escaping and float/null handling live in one place. *)

module Json = Alcop_obs.Json

let params_to_json (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  Json.Obj
    [ ("tb_m", Json.Int t.Alcop_sched.Tiling.tb_m);
      ("tb_n", Json.Int t.Alcop_sched.Tiling.tb_n);
      ("tb_k", Json.Int t.Alcop_sched.Tiling.tb_k);
      ("warp_m", Json.Int t.Alcop_sched.Tiling.warp_m);
      ("warp_n", Json.Int t.Alcop_sched.Tiling.warp_n);
      ("warp_k", Json.Int t.Alcop_sched.Tiling.warp_k);
      ("split_k", Json.Int t.Alcop_sched.Tiling.split_k);
      ("smem_stages", Json.Int p.Alcop_perfmodel.Params.smem_stages);
      ("reg_stages", Json.Int p.Alcop_perfmodel.Params.reg_stages);
      ("swizzle", Json.Bool p.Alcop_perfmodel.Params.swizzle);
      ("inner_fuse", Json.Bool p.Alcop_perfmodel.Params.inner_fuse) ]

let json_of_params p = Json.to_string (params_to_json p)

let opt_cost = function
  | Some c -> Json.Float c
  | None -> Json.Null

let trial_to_json (t : Tuner.trial) =
  Json.Obj
    [ ("index", Json.Int t.Tuner.index);
      ("schedule", params_to_json t.Tuner.params);
      ("cost_cycles", opt_cost t.Tuner.cost) ]

let run_to_json ~spec_name ~method_ ~seed (r : Tuner.result) =
  Json.Obj
    [ ("operator", Json.Str spec_name);
      ("method", Json.Str (Tuner.method_to_string method_));
      ("seed", Json.Int seed);
      ("space_size", Json.Int r.Tuner.space_size);
      ("best_cycles", opt_cost (Tuner.best r));
      ("trials",
       Json.List (Array.to_list (Array.map trial_to_json r.Tuner.trials))) ]

let to_json ~spec_name ~method_ ~seed r =
  Json.to_string (run_to_json ~spec_name ~method_ ~seed r)

let write_file ~path ~spec_name ~method_ ~seed r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ~spec_name ~method_ ~seed r);
      output_char oc '\n')
