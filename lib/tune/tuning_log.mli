(** JSON tuning logs, in the spirit of AutoTVM's record files.
    Serialization shares [Alcop_obs.Json] with the observability sinks. *)

val params_to_json : Alcop_perfmodel.Params.t -> Alcop_obs.Json.t
(** The schedule knobs as a JSON object. *)

val json_of_params : Alcop_perfmodel.Params.t -> string

val run_to_json :
  ?features:(int * (string * float) list) list ->
  spec_name:string ->
  method_:Tuner.method_ ->
  seed:int ->
  Tuner.result ->
  Alcop_obs.Json.t

val to_json :
  ?features:(int * (string * float) list) list ->
  spec_name:string -> method_:Tuner.method_ -> seed:int -> Tuner.result -> string
(** One JSON object: operator, method, seed, space size, best cost, and
    every trial with its schedule knobs and measured cost (null = compile
    failure). [features] attaches a pipeline observatory feature record
    ({!Alcop_gpusim} pipeview) to trials by index, as a
    ["pipeline_features"] object of floats. *)

val write_file :
  ?features:(int * (string * float) list) list ->
  path:string ->
  spec_name:string ->
  method_:Tuner.method_ ->
  seed:int ->
  Tuner.result ->
  unit

(** {1 Reading logs back}

    The inverse direction, for replaying a tuning run offline. File and
    JSON plumbing is shared with the observability side through
    {!Alcop_obs.Trace_reader}. *)

type replayed_trial = {
  rt_index : int;
  rt_params : Alcop_perfmodel.Params.t;
  rt_cost : float option;  (** [None] = compile failure, as written *)
  rt_features : (string * float) list;
      (** pipeline feature record; [[]] when the log predates them *)
}

type replay = {
  r_operator : string;
  r_method : string;
  r_seed : int;
  r_space_size : int;
  r_best_cycles : float option;
  r_trials : replayed_trial list;  (** in measurement order *)
}

val params_of_json :
  Alcop_obs.Json.t -> (Alcop_perfmodel.Params.t, string) result
(** Inverse of {!params_to_json}. *)

val replay_of_json : Alcop_obs.Json.t -> (replay, string) result

val read_file : string -> (replay, string) result
(** Parse a file written by {!write_file}; round-trips exactly. *)
