(** JSON tuning logs, in the spirit of AutoTVM's record files.
    Serialization shares [Alcop_obs.Json] with the observability sinks. *)

val params_to_json : Alcop_perfmodel.Params.t -> Alcop_obs.Json.t
(** The schedule knobs as a JSON object. *)

val json_of_params : Alcop_perfmodel.Params.t -> string

val run_to_json :
  spec_name:string ->
  method_:Tuner.method_ ->
  seed:int ->
  Tuner.result ->
  Alcop_obs.Json.t

val to_json :
  spec_name:string -> method_:Tuner.method_ -> seed:int -> Tuner.result -> string
(** One JSON object: operator, method, seed, space size, best cost, and
    every trial with its schedule knobs and measured cost (null = compile
    failure). *)

val write_file :
  path:string ->
  spec_name:string ->
  method_:Tuner.method_ ->
  seed:int ->
  Tuner.result ->
  unit
