(** Model-accuracy residuals for the [--compare-model] dashboard: pure
    arithmetic over (predicted, actual) cycle pairs, plus the
    bound-agreement judgement between the analytical model's regime and
    the simulator's dominant stall class. No simulator dependency — the
    caller supplies both sides. *)

type t = {
  predicted : float;
  actual : float;
  signed_rel : float;  (** [(predicted - actual) / actual] *)
  abs_rel : float;
  log_ratio : float;  (** [log (predicted / actual)]; 0 = perfect *)
}

val make : predicted:float -> actual:float -> t
(** Relative fields are [nan] when a side is non-positive. *)

val mean_abs : t list -> float
(** Mean of [abs_rel] over the residuals with finite values; [nan] for an
    empty list. *)

val model_bound_name : memory_bound:bool -> string

val bound_agreement : memory_bound:bool -> sim_stall:string -> bool
(** Does the analytical model's regime ([memory_bound]) cover the
    simulator's dominant stall class ([sim_stall], a
    {!Alcop_gpusim.Timing.stall_class_name})? Memory regime covers
    [dram_bw]/[llc_bw]/[smem_port]/[sync_wait]; compute covers the rest. *)
