(* Model-accuracy residuals: pure arithmetic comparing a model's predicted
   cycles against the simulator's, plus the bound-agreement judgement the
   `--compare-model` dashboard prints. Lives in perfmodel (no simulator
   dependency): callers supply both numbers and the simulator's dominant
   stall-class name. *)

type t = {
  predicted : float;
  actual : float;
  signed_rel : float;  (** (predicted - actual) / actual *)
  abs_rel : float;
  log_ratio : float;  (** log(predicted / actual); 0 = perfect *)
}

let make ~predicted ~actual =
  let signed_rel =
    if actual > 0.0 then (predicted -. actual) /. actual else Float.nan
  in
  let log_ratio =
    if actual > 0.0 && predicted > 0.0 then Float.log (predicted /. actual)
    else Float.nan
  in
  { predicted; actual; signed_rel;
    abs_rel = Float.abs signed_rel; log_ratio }

let mean_abs residuals =
  match List.filter (fun r -> not (Float.is_nan r.abs_rel)) residuals with
  | [] -> Float.nan
  | rs ->
    List.fold_left (fun acc r -> acc +. r.abs_rel) 0.0 rs
    /. float_of_int (List.length rs)

(* The analytical model (Table I) decides between a memory-bound and a
   compute-bound regime; the simulator's stall attribution names the
   binding resource directly. They agree when the model's regime covers
   the simulator's dominant stall class. *)
let memory_stalls = [ "dram_bw"; "llc_bw"; "smem_port"; "sync_wait" ]

let model_bound_name ~memory_bound =
  if memory_bound then "memory" else "compute"

let bound_agreement ~memory_bound ~sim_stall =
  if memory_bound then List.mem sim_stall memory_stalls
  else not (List.mem sim_stall memory_stalls)
