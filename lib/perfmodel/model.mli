(** The pipeline-aware analytical performance model — paper Table I.

    All times in SM cycles. Shares the simulator's occupancy and locality
    calculations but is deliberately coarser than the event simulator; the
    difference is what the learned cost model captures (paper Sec. IV-C). *)

open Alcop_sched

type prediction = {
  cycles : float;
  t_threadblk : float;
  t_init : float;
  t_main_loop : float;
  t_epilogue : float;
  t_smem_load : float;
  t_smem_use : float;
  t_reg_load : float;
  t_compute : float;
  n_batches : int;
  tbs_per_sm : int;
  smem_bound : bool;  (** main loop limited by loading, not compute *)
}

type failure = Alcop_gpusim.Occupancy.failure

val pipeline_latency :
  t_load:float -> t_use:float -> n_loop:int -> n_pipe:int -> n_mplx:int ->
  float * bool
(** Table I's "Pipeline Latency Model" (Fig. 9): loop latency and whether
    loading is the bottleneck. *)

val pipeline_latency_bw :
  t_load_latency:float -> t_load_bw:float -> t_use:float -> n_loop:int ->
  n_pipe:int -> n_mplx:int -> float * bool
(** The same rule with the load split into a hideable latency part and a
    bandwidth-service part that floors the steady state: no stage count or
    multiplexing hides aggregate bandwidth demand. *)

val predict : Alcop_hw.Hw_config.t -> Op_spec.t -> Params.t -> (prediction, failure) result

val predict_cycles : Alcop_hw.Hw_config.t -> Op_spec.t -> Params.t -> float option
(** [None] when the schedule cannot launch. *)

val predicted_smem_slack : prediction -> smem_stages:int -> float
(** Table I's first-order prefetch-slack estimate for the shared-memory
    pipeline: [(stages - 1) * t_smem_use - t_smem_load]. Positive means
    the model expects async copies fully hidden; negative is the exposed
    latency it predicts per steady-state iteration. Compared against the
    simulator's measured slack by [alcop explain-pipeline]. *)
