(* The pipeline-aware analytical performance model — paper Table I.

   All times are in SM clock cycles. The structure mirrors the table:

     T_kernel     = T_threadblk * N_threadblk_batch
     T_threadblk  = T_init + T_main_loop + T_epilogue
     T_main_loop  = PipelineLatency(T_smem_load, T_smem_use,
                                    N_smem_loop, N_smem_stage, N_tb_per_SM)
     T_smem_use   = PipelineLatency(T_reg_load, T_compute,
                                    N_reg_loop, N_reg_stage, N_warp_per_tb)

   with the pipeline latency rule of Fig. 9:
     if T_load <= (N_pipe * N_mplx - 1) * T_use then T_use * N_loop
     else (T_load + T_use) * N_loop / N_pipe.

   The model shares the simulator's occupancy calculation (the "simulated
   GPU scheduling policy", Sec. IV-A) but is deliberately coarser than the
   event simulator everywhere else: a square-patch working-set estimate
   instead of exact residency analysis, no wave tail shape, no bank
   conflicts, no issue or launch overhead, no residual perturbation — those
   differences are what the learned cost model captures on top
   (Sec. IV-C). *)

open Alcop_sched

type prediction = {
  cycles : float;
  t_threadblk : float;
  t_init : float;
  t_main_loop : float;
  t_epilogue : float;
  t_smem_load : float;
  t_smem_use : float;
  t_reg_load : float;
  t_compute : float;
  n_batches : int;
  tbs_per_sm : int;
  smem_bound : bool;  (** main loop limited by loading, not compute *)
}

type failure = Alcop_gpusim.Occupancy.failure

(* Table I, "Pipeline Latency Model". *)
let pipeline_latency ~t_load ~t_use ~n_loop ~n_pipe ~n_mplx =
  let n_loop = float_of_int n_loop in
  let n_pipe = float_of_int (max 1 n_pipe) in
  let n_mplx = float_of_int (max 1 n_mplx) in
  if t_load <= ((n_pipe *. n_mplx) -. 1.0) *. t_use then
    (t_use *. n_loop, false)
  else (((t_load +. t_use) *. n_loop /. n_pipe), true)

(* Pipelining and multiplexing hide *latency*; the bandwidth-service share
   of each load occupies the memory system no matter how many stages or
   parallel workers exist, so it floors the steady-state loop latency. *)
let pipeline_latency_bw ~t_load_latency ~t_load_bw ~t_use ~n_loop ~n_pipe
    ~n_mplx =
  let t, load_bound =
    pipeline_latency ~t_load:(t_load_latency +. t_load_bw) ~t_use ~n_loop
      ~n_pipe ~n_mplx
  in
  let floor = t_load_bw *. float_of_int n_loop in
  if floor > t then (floor, true) else (t, load_bound)

let predict (hw : Alcop_hw.Hw_config.t) (spec : Op_spec.t) (p : Params.t) =
  let elem_bytes = Alcop_ir.Dtype.size_bytes spec.Op_spec.dtype in
  let tiling = p.Params.tiling in
  match
    Alcop_gpusim.Occupancy.compute hw
      ~smem_per_tb:(Params.smem_bytes_per_tb p elem_bytes)
      ~warps_per_tb:(Tiling.warps tiling)
      ~regs_per_thread:(Params.regs_per_thread p)
  with
  | Error f -> Error f
  | Ok occ ->
    let total_tbs = Tiling.threadblocks tiling spec in
    (* Resident threadblocks per SM: bounded by the occupancy *capacity*
       and by what the grid actually supplies - a 16-threadblock kernel on
       108 SMs multiplexes nothing regardless of how many threadblocks
       would fit (part of the "simulated GPU scheduling policy"). *)
    let tbs_per_sm =
      min occ.Alcop_gpusim.Occupancy.tbs_per_sm
        (max 1
           ((total_tbs + hw.Alcop_hw.Hw_config.num_sms - 1)
            / hw.Alcop_hw.Hw_config.num_sms))
    in
    let batch_slots = tbs_per_sm * hw.Alcop_hw.Hw_config.num_sms in
    let n_batches = (total_tbs + batch_slots - 1) / batch_slots in
    let tbs_per_batch = min total_tbs batch_slots in
    let warps = Tiling.warps tiling in
    (* Computation Latency Model: one register-loop (ki) iteration of all
       warps of one threadblock. *)
    let flops_one_reg_loop =
      2 * tiling.Tiling.tb_m * tiling.Tiling.tb_n * tiling.Tiling.warp_k
    in
    let util =
      Float.min 1.0 (float_of_int (warps * tbs_per_sm) /. 4.0)
    in
    let t_compute =
      float_of_int flops_one_reg_loop
      /. (float_of_int hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle *. util)
    in
    (* Memory Latency Model: T_smem_load = MAX(T_LLC, T_DRAM). *)
    let bytes_one_smem_loop =
      (tiling.Tiling.tb_m + tiling.Tiling.tb_n) * tiling.Tiling.tb_k * elem_bytes
    in
    let grid_z = spec.Op_spec.batch * tiling.Tiling.split_k in
    let grid_m = spec.Op_spec.m / tiling.Tiling.tb_m in
    let grid_n = spec.Op_spec.n / tiling.Tiling.tb_n in
    (* Working-set estimate of the threadblock batch (paper's
       Bytes_threadblk_batch_workset): the model assumes the batch covers a
       square patch of the tile grid, a deliberately coarser picture than
       the simulator's exact row-major residency — the analytical model
       cannot capture the memory system thoroughly (Sec. IV-C), and the
       difference is residual for the learned model. *)
    let miss_rate =
      let r = max 1 tbs_per_batch in
      let per_z = max 1 (grid_m * grid_n) in
      let distinct_z = min grid_z (((r + per_z) - 1) / per_z) in
      let r_in_z = min r per_z in
      let side = int_of_float (ceil (sqrt (float_of_int r_in_z))) in
      let distinct_i = min grid_m side in
      let distinct_j = min grid_n (((r_in_z + distinct_i) - 1) / distinct_i) in
      let unique =
        distinct_z
        * ((distinct_i * tiling.Tiling.tb_m) + (distinct_j * tiling.Tiling.tb_n))
        * tiling.Tiling.tb_k * elem_bytes
      in
      let total = bytes_one_smem_loop * r in
      if unique * 4 > hw.Alcop_hw.Hw_config.llc_bytes then 1.0
      else Float.min 1.0 (float_of_int unique /. float_of_int total)
    in
    let t_llc_bw =
      float_of_int (bytes_one_smem_loop * tbs_per_batch)
      /. hw.Alcop_hw.Hw_config.llc_bytes_per_cycle
    in
    let unique_bytes_one_loop =
      miss_rate *. float_of_int (bytes_one_smem_loop * tbs_per_batch)
    in
    let t_dram_bw =
      unique_bytes_one_loop /. hw.Alcop_hw.Hw_config.dram_bytes_per_cycle
    in
    let t_llc_load = hw.Alcop_hw.Hw_config.llc_latency +. t_llc_bw in
    let t_dram_load = hw.Alcop_hw.Hw_config.dram_latency +. t_dram_bw in
    let t_smem_load = Float.max t_llc_load t_dram_load in
    let t_smem_load_latency =
      Float.max hw.Alcop_hw.Hw_config.llc_latency
        (hw.Alcop_hw.Hw_config.dram_latency
         *. miss_rate)
    in
    let t_smem_load_bw = Float.max t_llc_bw t_dram_bw in
    (* Register-loop load: A and B fragments of all warps of the
       threadblock, served by the SM's shared-memory throughput (shared by
       the threadblocks resident on the SM). *)
    let bytes_one_reg_loop =
      (tiling.Tiling.tb_m + tiling.Tiling.tb_n) * tiling.Tiling.warp_k * elem_bytes
    in
    let t_reg_bw =
      float_of_int (bytes_one_reg_loop * tbs_per_sm)
      /. hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm
    in
    let t_reg_load = hw.Alcop_hw.Hw_config.smem_latency +. t_reg_bw in
    (* Inner pipeline: register loading vs tensor-core compute. *)
    let n_reg_loop = Tiling.ki_iters tiling in
    let t_smem_use, _ =
      pipeline_latency_bw ~t_load_latency:hw.Alcop_hw.Hw_config.smem_latency
        ~t_load_bw:t_reg_bw ~t_use:t_compute ~n_loop:n_reg_loop
        ~n_pipe:p.Params.reg_stages ~n_mplx:warps
    in
    (* The SM's tensor cores are shared by its resident threadblocks: the
       aggregate compute service floors the inner loop the same way
       bandwidth floors the loads. *)
    let t_compute_aggregate =
      float_of_int (flops_one_reg_loop * tbs_per_sm)
      /. float_of_int hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle
    in
    let t_smem_use =
      Float.max t_smem_use (float_of_int n_reg_loop *. t_compute_aggregate)
    in
    (* Outer pipeline: shared-memory loading vs the whole inner loop. *)
    let n_smem_loop = Tiling.k_iters tiling spec in
    let t_main_loop, smem_bound =
      pipeline_latency_bw ~t_load_latency:t_smem_load_latency
        ~t_load_bw:t_smem_load_bw ~t_use:t_smem_use ~n_loop:n_smem_loop
        ~n_pipe:p.Params.smem_stages ~n_mplx:tbs_per_sm
    in
    let t_init = t_smem_load +. t_reg_load in
    (* Epilogue Model (after DELTA): write the output tile back. *)
    let bytes_output_tile =
      tiling.Tiling.tb_m * tiling.Tiling.tb_n * elem_bytes
    in
    let t_epilogue =
      hw.Alcop_hw.Hw_config.dram_write_latency
      +. (float_of_int (bytes_output_tile * tbs_per_batch)
          /. hw.Alcop_hw.Hw_config.dram_bytes_per_cycle)
    in
    let t_threadblk = t_init +. t_main_loop +. t_epilogue in
    let cycles =
      (t_threadblk *. float_of_int n_batches)
      +. Reduce_cost.cycles hw spec ~split_k:tiling.Tiling.split_k
    in
    Ok
      { cycles; t_threadblk; t_init; t_main_loop; t_epilogue; t_smem_load;
        t_smem_use; t_reg_load; t_compute; n_batches; tbs_per_sm; smem_bound }

let predict_cycles hw spec p =
  match predict hw spec p with
  | Ok pr -> Some pr.cycles
  | Error _ -> None

(* First-order prefetch-slack prediction from Table I terms: a batch
   loaded at outer iteration [k] is consumed at [k + stages - 1], so the
   time budget the pipeline grants the copy is [(stages - 1) * t_smem_use]
   against a [t_smem_load] service-plus-latency cost. Positive = the
   model expects the copy hidden; negative = expected exposed latency per
   steady-state iteration. The observatory compares this against the
   simulator's measured per-wait slack (doc/pipeview.md). *)
let predicted_smem_slack pr ~smem_stages =
  (float_of_int (max 0 (smem_stages - 1)) *. pr.t_smem_use) -. pr.t_smem_load
