(* The complete pipelining pass: analysis followed by transformation.

   This is the compiler pass a user of the library calls; it corresponds to
   the "pipelining program transformation" box of the ALCOP architecture
   (paper Fig. 4). *)

open Alcop_ir

type result = {
  kernel : Kernel.t;
  analysis : Analysis.t;
}

let groups r = r.analysis.Analysis.groups

let run ~hw ~hints kernel =
  match Analysis.run ~hw ~hints kernel with
  | Ok analysis ->
    let kernel = Transform.run analysis kernel in
    Validate.check_exn kernel;
    Alcop_obs.Obs.count "pipeline.pass.ok";
    Alcop_obs.Obs.count ~n:(List.length analysis.Analysis.groups)
      "pipeline.groups";
    Ok { kernel; analysis }
  | Error rejection ->
    Alcop_obs.Obs.count "pipeline.pass.rejected";
    Alcop_obs.Obs.count
      (Printf.sprintf "pipeline.rejected.rule%d" rejection.Analysis.rule);
    Error rejection

let run_exn ~hw ~hints kernel =
  match run ~hw ~hints kernel with
  | Ok r -> r
  | Error rejection ->
    invalid_arg (Format.asprintf "%a" Analysis.pp_rejection rejection)
