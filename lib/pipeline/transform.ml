(* Transformation phase of the pipelining pass (paper Sec. III-B).

   For every pipeline group found by {!Analysis} the five steps are applied:

   1. buffer expansion      -- a stage dimension is prepended to the buffer;
   2. index shifting        -- the producing copy loads [stages-1]
                               iterations ahead;
   3. buffer rolling and out-of-bound wrapping -- stage indices are taken
      modulo the stage count and shifted source indices modulo the loop
      extent; in a fused multi-level pipeline the inner overflow carries
      into the outer pipeline's stage index (paper Fig. 7 line 26);
   4. prologue injection    -- the first [stages-1] chunks are loaded ahead
      of the loop; the prologue of a fused inner pipeline is hoisted in
      front of the outermost pipeline loop to build a holistic pipeline
      (paper Fig. 3d);
   5. synchronization injection -- scope-synchronized groups (shared
      memory) are guarded by producer_acquire / producer_commit around the
      loading block and consumer_wait / consumer_release around the using
      block; plain barriers of the unpipelined program are removed.

   The tree is processed top-down; when the traversal reaches the [For]
   node of a group's load-and-use loop, outer groups have already been
   rewritten, so the group's copies already carry the outer stage index. *)

open Alcop_ir

(* Pipeline loop variables are unique per kernel, so deriving the prologue
   variable from the loop variable keeps names deterministic. *)
let prologue_var_of base = base ^ "_pro"

(* A region read/written in statement [s] mentions one of [names]. Used to
   find the using block of a group (analysis step 4). *)
let stmt_reads_any names stmt =
  let reads = ref false in
  let check (r : Stmt.region) = if List.mem r.Stmt.buffer names then reads := true in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Copy { src; _ } -> check src
      | Stmt.Mma { a; b; _ } -> check a; check b
      | Stmt.Unop { src; _ } -> check src
      | Stmt.Accum { dst; src } -> check dst; check src
      | Stmt.Seq _ | Stmt.For _ | Stmt.Alloc _ | Stmt.If _ | Stmt.Fill _
      | Stmt.Sync _ -> ())
    stmt;
  !reads

let is_member_copy names = function
  | Stmt.Copy { dst; _ } -> List.mem dst.Stmt.buffer names
  | _ -> false

(* A statement belongs to the group's loading block if it contains one of
   the group's producing copies anywhere inside (e.g. nested under a
   partitioning loop). *)
let contains_member_copy names stmt =
  let found = ref false in
  Stmt.iter (fun s -> if is_member_copy names s then found := true) stmt;
  !found

let children_of = function
  | Stmt.Seq ss -> ss
  | s -> [ s ]

(* --- Index arithmetic of steps 2 and 3 --- *)

(* Rewrite the producing copy of a member of group [g].

   [shifted] is the unwrapped future iteration index (loop var + stages - 1
   in the steady state, or the prologue variable in the prologue).
   [outer] describes the producing group when this is an inner level:
   [`Fused (og, base)] rebuilds the outer stage index as
   [(base + shifted / extent) mod og.stages]; [`Kept] leaves the stage
   slice produced by the outer transformation untouched; [`None_] means the
   source is not a pipelined buffer. *)
let rewrite_producer_copy (g : Analysis.group) ~shifted ~dst_stage ~outer ~dst
    ~src =
  let n = g.Analysis.stages in
  let extent = Expr.const g.Analysis.loop_extent in
  let wrapped = Expr.modulo shifted extent in
  let shift_offset e = Expr.subst g.Analysis.loop_var wrapped e in
  let shift_slice (s : Stmt.slice) = { s with Stmt.offset = shift_offset s.Stmt.offset } in
  let src' =
    match outer with
    | `None_ | `Kept ->
      { src with Stmt.slices = List.map shift_slice src.Stmt.slices }
    | `Fused ((og : Analysis.group), base) ->
      (match src.Stmt.slices with
       | _stage_slice :: rest ->
         let carried =
           Expr.modulo
             (Expr.add base (Expr.div shifted extent))
             (Expr.const og.Analysis.stages)
         in
         { src with
           Stmt.slices = Stmt.point_slice carried :: List.map shift_slice rest }
       | [] -> src)
  in
  let dst' =
    { dst with
      Stmt.slices =
        Stmt.point_slice (Expr.modulo dst_stage (Expr.const n)) :: dst.Stmt.slices }
  in
  (dst', src')

(* Step 2+3 applied to the steady-state body of the pipeline loop: producing
   copies load [stages-1] iterations ahead; all other accesses to the
   group's buffers read stage [v mod stages]. *)
let rewrite_loop_body (analysis : Analysis.t) (g : Analysis.group) body =
  let names = Analysis.member_names g in
  let v = Expr.var g.Analysis.loop_var in
  let n = g.Analysis.stages in
  let shifted = Expr.add v (Expr.const (n - 1)) in
  (* Rolling stage indices. A fused inner pipeline runs holistically across
     outer iterations, so its ring position is the *global* fused iteration
     index u * extent + v — the local index alone is only correct when the
     stage count divides the loop extent (as in paper Fig. 7, where the
     u * extent term vanishes modulo the stage count). *)
  let ring_base =
    match
      Option.bind g.Analysis.outer (fun oid ->
          if g.Analysis.fused then Analysis.find_group analysis oid else None)
    with
    | Some og ->
      Expr.add
        (Expr.mul (Expr.var og.Analysis.loop_var)
           (Expr.const g.Analysis.loop_extent))
        v
    | None -> v
  in
  let ring_shifted = Expr.add ring_base (Expr.const (n - 1)) in
  let read_stage = Expr.modulo ring_base (Expr.const n) in
  let outer_mode src_buffer =
    match Analysis.group_of_buffer analysis src_buffer with
    | Some og when g.Analysis.fused && g.Analysis.outer = Some og.Analysis.id ->
      `Fused (og, Expr.var og.Analysis.loop_var)
    | Some _ -> `Kept
    | None -> `None_
  in
  let add_read_stage (r : Stmt.region) =
    if List.mem r.Stmt.buffer names then
      { r with Stmt.slices = Stmt.point_slice read_stage :: r.Stmt.slices }
    else r
  in
  (* Leaves untouched by the group rewrite come back physically unchanged,
     so [Stmt.map] (sharing-preserving) leaves their spines alone too. *)
  let rewrite stmt =
    match stmt with
    | Stmt.Copy ({ dst; src; _ } as c) when List.mem dst.Stmt.buffer names ->
      let dst', src' =
        rewrite_producer_copy g ~shifted ~dst_stage:ring_shifted
          ~outer:(outer_mode src.Stmt.buffer) ~dst ~src
      in
      Stmt.Copy { c with dst = dst'; src = src'; kind = Stmt.Async_copy }
    | Stmt.Copy c ->
      let src = add_read_stage c.src in
      if src == c.src then stmt else Stmt.Copy { c with src }
    | Stmt.Mma m ->
      let c = add_read_stage m.c in
      let a = add_read_stage m.a in
      let b = add_read_stage m.b in
      if c == m.c && a == m.a && b == m.b then stmt else Stmt.Mma { c; a; b }
    | Stmt.Unop u ->
      let src = add_read_stage u.src in
      if src == u.src then stmt else Stmt.Unop { u with src }
    | s -> s
  in
  Stmt.map rewrite body

(* Step 4: build the prologue of group [g] from the (pre-step-2/3) body of
   its pipeline loop. The skeleton keeps only the group's producing copies
   and the loop structure needed to reach them. [hoist] indicates a fused
   inner pipeline whose prologue runs once in front of the outermost loop,
   with the outer loop variable pinned to zero. *)
let build_prologue (analysis : Analysis.t) (g : Analysis.group) body =
  let names = Analysis.member_names g in
  let n = g.Analysis.stages in
  let pvar = prologue_var_of g.Analysis.loop_var in
  let shifted = Expr.var pvar in
  let fused_outer =
    match g.Analysis.outer with
    | Some oid when g.Analysis.fused -> Analysis.find_group analysis oid
    | _ -> None
  in
  let rec skeleton stmt =
    match stmt with
    | Stmt.Seq ss ->
      (match List.filter_map skeleton ss with
       | [] -> None
       | kept -> Some (Stmt.seq kept))
    | Stmt.For r ->
      Option.map (fun b -> Stmt.For { r with body = b }) (skeleton r.body)
    | Stmt.If r -> Option.map (fun b -> Stmt.If { r with then_ = b }) (skeleton r.then_)
    | Stmt.Alloc _ -> None
    | Stmt.Copy ({ dst; src; _ } as c) when List.mem dst.Stmt.buffer names ->
      let outer =
        match fused_outer with
        | Some og -> `Fused (og, Expr.zero)
        | None ->
          (match Analysis.group_of_buffer analysis src.Stmt.buffer with
           | Some _ -> `Kept
           | None -> `None_)
      in
      let dst', src' =
        rewrite_producer_copy g ~shifted ~dst_stage:shifted ~outer ~dst ~src
      in
      Some (Stmt.Copy { c with dst = dst'; src = src'; kind = Stmt.Async_copy })
    | Stmt.Copy _ | Stmt.Fill _ | Stmt.Mma _ | Stmt.Unop _ | Stmt.Accum _
    | Stmt.Sync _ -> None
  in
  let loads =
    match skeleton body with
    | Some s -> s
    | None -> Stmt.seq []
  in
  let loads =
    (* A hoisted prologue runs before the outer loop starts: pin the outer
       loop variable to its first iteration. *)
    match fused_outer with
    | Some og -> Stmt.subst_var og.Analysis.loop_var Expr.zero loads
    | None -> loads
  in
  let loads =
    if g.Analysis.synchronized then
      Stmt.seq
        [ Stmt.Sync (Stmt.Producer_acquire g.Analysis.id);
          loads;
          Stmt.Sync (Stmt.Producer_commit g.Analysis.id) ]
    else loads
  in
  Stmt.For { var = pvar; extent = Expr.const (n - 1); kind = Stmt.Sequential;
             body = loads }

(* Step 5 for a synchronized group: guard the loading block with producer
   primitives, place consumer_wait before the first user and
   consumer_release after the last, and drop the plain barriers of the
   unpipelined program. [boundary_wait] carries the inner-fusion variant:
   the wait condition moves into the fused inner loop and only the release
   stays at the end of the body (paper Fig. 7 lines 19-22 and 30). *)
let inject_sync (g : Analysis.group) ~fused_inner body =
  let names = Analysis.member_names g in
  let children = children_of body in
  let children =
    List.filter (fun s -> match s with Stmt.Sync Stmt.Barrier -> false | _ -> true)
      children
  in
  (* Wrap the contiguous run of children containing producing copies. *)
  let rec wrap_producers acc = function
    | [] -> List.rev acc
    | s :: rest when contains_member_copy names s ->
      let run, rest' =
        let rec take run = function
          | x :: r when contains_member_copy names x -> take (x :: run) r
          | r -> (List.rev run, r)
        in
        take [ s ] rest
      in
      List.rev_append acc
        ((Stmt.Sync (Stmt.Producer_acquire g.Analysis.id) :: run)
         @ [ Stmt.Sync (Stmt.Producer_commit g.Analysis.id) ]
         @ wrap_producers [] rest')
    | s :: rest -> wrap_producers (s :: acc) rest
  in
  let children = wrap_producers [] children in
  let children =
    if fused_inner then children
    else begin
      (* consumer_wait before the first child that reads the group. *)
      let rec add_wait = function
        | [] -> []
        | s :: rest when stmt_reads_any names s ->
          Stmt.Sync (Stmt.Consumer_wait g.Analysis.id) :: s :: rest
        | s :: rest -> s :: add_wait rest
      in
      add_wait children
    end
  in
  (* consumer_release after the last child that reads the group; with a
     fused inner pipeline the release closes the whole body. *)
  let children =
    if fused_inner then children @ [ Stmt.Sync (Stmt.Consumer_release g.Analysis.id) ]
    else begin
      let rec add_release = function
        | [] -> []
        | s :: rest ->
          if List.exists (stmt_reads_any names) rest then s :: add_release rest
          else if stmt_reads_any names s then
            s :: Stmt.Sync (Stmt.Consumer_release g.Analysis.id) :: rest
          else s :: add_release rest
      in
      add_release children
    end
  in
  Stmt.seq children

(* The boundary consumer_wait of a fused inner pipeline: executed inside the
   inner loop when the prefetch crosses into the next outer stage. *)
let boundary_wait (outer : Analysis.group) (inner : Analysis.group) =
  let boundary = inner.Analysis.loop_extent - (inner.Analysis.stages - 1) in
  Stmt.If
    { cond =
        { Stmt.lhs = Expr.var inner.Analysis.loop_var;
          cmp = Stmt.Eq;
          rhs = Expr.const boundary };
      then_ = Stmt.Sync (Stmt.Consumer_wait outer.Analysis.id) }

(* Step 1: prepend the stage dimension to every pipelined buffer. *)
let expand_allocs (analysis : Analysis.t) body =
  let rewrite stmt =
    match stmt with
    | Stmt.Alloc { buffer; body } ->
      (match Analysis.group_of_buffer analysis buffer.Buffer.name with
       | Some g ->
         Stmt.Alloc { buffer = Buffer.with_stage_dim g.Analysis.stages buffer; body }
       | None -> stmt)
    | s -> s
  in
  Stmt.map rewrite body

(* --- Top-down driver --- *)

let run (analysis : Analysis.t) (kernel : Kernel.t) =
  if analysis.Analysis.groups = [] then kernel
  else begin
    let group_for_loop var =
      List.find_opt
        (fun (g : Analysis.group) -> String.equal g.Analysis.loop_var var)
        analysis.Analysis.groups
    in
    let fused_inner_of (g : Analysis.group) =
      List.find_opt
        (fun (i : Analysis.group) ->
          i.Analysis.fused && i.Analysis.outer = Some g.Analysis.id)
        analysis.Analysis.groups
    in
    (* Returns the rewritten statement plus prologue statements that must be
       hoisted in front of the enclosing (outer) pipeline loop. *)
    let rec rewrite stmt : Stmt.t * Stmt.t list =
      match stmt with
      | Stmt.For r ->
        (match group_for_loop r.var with
         | None ->
           let body', hoisted = rewrite r.body in
           let stmt' =
             if body' == r.body then stmt else Stmt.For { r with body = body' }
           in
           (stmt', hoisted)
         | Some g ->
           let prologue = build_prologue analysis g r.body in
           let body = rewrite_loop_body analysis g r.body in
           (* Recurse for inner pipeline levels. *)
           let body, hoisted_inner = rewrite body in
           let fused_inner = fused_inner_of g in
           let body =
             if g.Analysis.synchronized then
               inject_sync g ~fused_inner:(fused_inner <> None) body
             else body
           in
           let body =
             match fused_inner with
             | None -> body
             | Some inner ->
               (* The boundary wait goes in front of the inner loop's other
                  statements, as a direct child of the inner loop body. *)
               let add_boundary = function
                 | Stmt.For fr when String.equal fr.var inner.Analysis.loop_var ->
                   Stmt.For
                     { fr with
                       body = Stmt.seq [ boundary_wait g inner; fr.body ] }
                 | s -> s
               in
               Stmt.map add_boundary body
           in
           let loop = Stmt.For { r with body } in
           if g.Analysis.fused && g.Analysis.outer <> None then
             (* Hoist this group's prologue (and anything hoisted through
                us) in front of the outer pipeline loop. The hoisted
                prologue reads the outer group's first stage, so a wait for
                it must run first when the outer group is synchronized. *)
             let wait_outer =
               match
                 Option.bind g.Analysis.outer (Analysis.find_group analysis)
               with
               | Some og when og.Analysis.synchronized ->
                 [ Stmt.Sync (Stmt.Consumer_wait og.Analysis.id) ]
               | Some _ | None -> []
             in
             (loop, hoisted_inner @ wait_outer @ [ prologue ])
           else
             (* This group's own prologue runs first (it issues the loads
                the hoisted inner prologue will wait on), then the material
                hoisted out of inner levels, then the steady-state loop. *)
             (Stmt.seq ((prologue :: hoisted_inner) @ [ loop ]), []))
      | Stmt.Seq ss ->
        let ss', hoisted =
          List.fold_left
            (fun (acc, hs) s ->
              let s', h = rewrite s in
              (s' :: acc, hs @ h))
            ([], []) ss
        in
        let ss' = List.rev ss' in
        let stmt' =
          if hoisted = [] && List.for_all2 (fun a b -> a == b) ss ss' then stmt
          else Stmt.seq ss'
        in
        (stmt', hoisted)
      | Stmt.Alloc r ->
        let body', hoisted = rewrite r.body in
        let stmt' =
          if body' == r.body then stmt else Stmt.Alloc { r with body = body' }
        in
        (stmt', hoisted)
      | Stmt.If r ->
        let then', hoisted = rewrite r.then_ in
        let stmt' =
          if then' == r.then_ then stmt else Stmt.If { r with then_ = then' }
        in
        (stmt', hoisted)
      | Stmt.Copy _ | Stmt.Fill _ | Stmt.Mma _ | Stmt.Unop _ | Stmt.Accum _
      | Stmt.Sync _ ->
        (stmt, [])
    in
    let body, hoisted = rewrite kernel.Kernel.body in
    assert (hoisted = []);
    let body = expand_allocs analysis body in
    Kernel.map_body (fun _ -> body) kernel
  end
