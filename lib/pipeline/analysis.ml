(* Analysis phase of the pipelining program transformation (paper
   Sec. III-A) plus re-verification of the legality rules of Sec. II-A.

   Given a kernel and the hints attached by the schedule transformation,
   this module:
   - locates the producing copy of each pipelined buffer (step 2),
   - determines the sequential load-and-use loop of each buffer (step 3),
   - groups buffers that share a pipeline loop into pipeline groups (the
     hardware has one scope-based barrier object per scope, paper rule 3),
   - derives the multi-level structure: which group feeds which (step 2's
     producer reconstruction), and whether inner-pipeline fusion applies.

   Steps 4 and 5 (load/use block boundaries and prologue positions) are
   structural and resolved during the transformation itself. *)

open Alcop_ir

type rejection = {
  buffer : string;
  rule : int;  (** which of the paper's three rules failed; 0 = structural *)
  reason : string;
}

exception Rejected of rejection

let reject buffer rule fmt =
  Format.kasprintf (fun reason -> raise (Rejected { buffer; rule; reason })) fmt

let pp_rejection fmt r =
  Format.fprintf fmt "cannot pipeline %s (rule %d): %s" r.buffer r.rule r.reason

(* One enclosing loop at a copy site, innermost first in a stack. *)
type frame = {
  var : string;
  extent : Expr.t;
  kind : Stmt.loop_kind;
}

type copy_site = {
  dst : Stmt.region;
  src : Stmt.region;
  fused : string option;
  stack : frame list;  (** enclosing loops, innermost first *)
}

type buffer_info = {
  buffer : Buffer.t;
  hint : Hints.hint;
  site : copy_site;
  loop_var : string;
  loop_extent : int;
  producer : string;
}

type group = {
  id : string;
  scope : Buffer.scope;
  loop_var : string;
  loop_extent : int;
  loop_depth : int;  (** number of loops enclosing the pipeline loop *)
  stages : int;
  members : buffer_info list;
  synchronized : bool;
  outer : string option;  (** id of the group producing this group's data *)
  fused : bool;  (** inner-pipeline fusion with [outer] (paper Fig. 3d) *)
}

type t = {
  groups : group list;  (** outermost first *)
}

let find_group t id = List.find_opt (fun g -> String.equal g.id id) t.groups

let group_of_buffer t name =
  List.find_opt
    (fun g ->
      List.exists (fun m -> String.equal m.buffer.Buffer.name name) g.members)
    t.groups

let member_names g = List.map (fun m -> m.buffer.Buffer.name) g.members

(* Bytes one pipeline stage of this group occupies: the sum of the
   pre-expansion member buffers. The transformation multiplies this by
   [stages] when it prepends the stage dimension, so this is the footprint
   the observatory compares occupancy high-water marks against. *)
let stage_footprint_bytes g =
  List.fold_left (fun acc m -> acc + Buffer.size_bytes m.buffer) 0 g.members

let is_pipelined t name = group_of_buffer t name <> None

(* Collect the producing copies of all hinted buffers, with their loop
   stacks. *)
let collect_sites (hints : Hints.t) body =
  let sites = Hashtbl.create 8 in
  let rec walk stack stmt =
    match stmt with
    | Stmt.Seq ss -> List.iter (walk stack) ss
    | Stmt.For { var; extent; kind; body } ->
      walk ({ var; extent; kind } :: stack) body
    | Stmt.Alloc { body; _ } -> walk stack body
    | Stmt.If { then_; _ } -> walk stack then_
    | Stmt.Copy { dst; src; fused; _ } ->
      if Hints.mem hints dst.Stmt.buffer then
        Hashtbl.add sites dst.Stmt.buffer { dst; src; fused; stack }
    | Stmt.Fill _ | Stmt.Mma _ | Stmt.Unop _ | Stmt.Accum _ | Stmt.Sync _ -> ()
  in
  walk [] body;
  sites

let region_mentions_var (r : Stmt.region) v =
  List.exists (fun (s : Stmt.slice) -> Expr.mentions v s.Stmt.offset) r.Stmt.slices

(* Step 3: the sequential load-and-use loop. Starting from the producing
   copy, walk the enclosing loops from inside to outside; skip loops whose
   variable indexes into the buffer (the buffer is partitioned, not reused,
   along them); the first non-indexing loop must be sequential (paper
   rule 2). *)
let find_pipeline_loop buffer (site : copy_site) =
  let rec search = function
    | [] ->
      reject buffer 2
        "no sequential load-and-use loop: the buffer is loaded outside of \
         any reusing loop"
    | f :: rest ->
      if region_mentions_var site.dst f.var then search rest
      else (
        match f.kind with
        | Stmt.Sequential -> f
        | Stmt.Parallel _ ->
          reject buffer 2
            "the load-and-use loop %s is parallel (bound to %s); pipelining \
             requires a sequential loop"
            f.var
            (match f.kind with
             | Stmt.Parallel b -> Stmt.binding_to_string b
             | _ -> assert false)
        | Stmt.Unrolled ->
          reject buffer 2 "the load-and-use loop %s is unrolled" f.var)
  in
  search site.stack

(* Rule 3 sub-check: within a synchronized group, the producing copies must
   sit at matching synchronization positions: the direct children of the
   pipeline loop's body that contain them must form one contiguous run, and
   none of those children may also read the group (a loading block must be
   separable from the using block so one acquire/commit pair can guard
   it). *)
let check_sync_positions kernel (g : group) =
  let names = member_names g in
  let contains_member_copy stmt =
    let found = ref false in
    Stmt.iter
      (fun s ->
        match s with
        | Stmt.Copy { dst; _ } when List.mem dst.Stmt.buffer names ->
          found := true
        | _ -> ())
      stmt;
    !found
  in
  let reads_member stmt =
    let found = ref false in
    let check (r : Stmt.region) =
      if List.mem r.Stmt.buffer names then found := true
    in
    Stmt.iter
      (fun s ->
        match s with
        | Stmt.Copy { src; _ } -> check src
        | Stmt.Mma { a; b; _ } -> check a; check b
        | Stmt.Unop { src; _ } -> check src
        | Stmt.Accum { dst; src } -> check dst; check src
        | Stmt.Seq _ | Stmt.For _ | Stmt.Alloc _ | Stmt.If _ | Stmt.Fill _
        | Stmt.Sync _ -> ())
      stmt;
    !found
  in
  let count_member_copies stmt =
    Stmt.count
      (function
        | Stmt.Copy { dst; _ } -> List.mem dst.Stmt.buffer names
        | _ -> false)
      stmt
  in
  let check_children children =
    let flags = List.map contains_member_copy children in
    let mixed =
      List.exists2
        (fun is_load child -> is_load && reads_member child)
        flags children
    in
    let rec span seen_run in_run = function
      | [] -> true
      | true :: rest ->
        if seen_run && not in_run then false else span true true rest
      | false :: rest -> span seen_run false rest
    in
    (* all member copies inside the contiguous run of loading children *)
    let n_here =
      List.fold_left2
        (fun acc is_load child ->
          if is_load then acc + count_member_copies child else acc)
        0 flags children
    in
    (not mixed) && n_here = List.length names && span false false flags
  in
  let found = ref false in
  let ok = ref true in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.For { var; body; _ } when String.equal var g.loop_var ->
        found := true;
        let children = match body with Stmt.Seq ss -> ss | s -> [ s ] in
        if not (check_children children) then ok := false
      | _ -> ())
    kernel.Kernel.body;
  if not !found then ok := false;
  if not !ok then
    reject
      (String.concat "+" names)
      3
      "buffers share the %s synchronization scope but their barriers would \
       sit at distinct positions in loop %s"
      (Buffer.scope_to_string g.scope)
      g.loop_var

(* Rule 1 (asynchronous production) plus its structural preconditions: the
   buffer is declared, produced by exactly one memory copy, that copy
   carries no fused element-wise op (Fig. 5 case 1 forces such copies to be
   synchronous), and the buffer's scope has an asynchronous copy path on
   this hardware. *)
let check_rule1 ~(hw : Alcop_hw.Hw_config.t) kernel
    (sites : (string, copy_site) Hashtbl.t) (h : Hints.hint) =
  let buffer =
    match Kernel.find_buffer kernel h.Hints.buffer with
    | Some b -> b
    | None -> reject h.Hints.buffer 0 "buffer is not declared"
  in
  if not (Alcop_hw.Hw_config.scope_is_async hw buffer.Buffer.scope) then
    reject h.Hints.buffer 1
      "scope %s has no asynchronous copy on %s"
      (Buffer.scope_to_string buffer.Buffer.scope)
      hw.Alcop_hw.Hw_config.name;
  let site =
    match Hashtbl.find_all sites h.Hints.buffer with
    | [ s ] -> s
    | [] ->
      reject h.Hints.buffer 1
        "buffer is not produced by a memory copy"
    | _ ->
      reject h.Hints.buffer 0
        "buffer has multiple producing copies"
  in
  (match site.fused with
   | Some op ->
     reject h.Hints.buffer 1
       "producing copy carries fused op %s and is therefore not an \
        asynchronous memory copy" op
   | None -> ());
  (buffer, site)

(* Rule 2: the sequential load-and-use loop, with a constant extent. *)
let check_rule2 (h : Hints.hint) site =
  let loop = find_pipeline_loop h.Hints.buffer site in
  let loop_extent =
    match Expr.eval_const loop.extent with
    | Some e when e >= 1 -> e
    | _ ->
      reject h.Hints.buffer 0
        "extent of pipeline loop %s is not a positive constant"
        loop.var
  in
  (loop, loop_extent)

let info_of_hint ~hw kernel sites (h : Hints.hint) =
  let buffer, site = check_rule1 ~hw kernel sites h in
  let loop, loop_extent = check_rule2 h site in
  { buffer; hint = h; site; loop_var = loop.var;
    loop_extent; producer = site.src.Stmt.buffer }

(* Rule 3 and the multi-level structure, over the per-buffer infos. *)
let group_infos ~(hw : Alcop_hw.Hw_config.t) (kernel : Kernel.t) infos =
  begin
    (* Group by (pipeline loop, scope). *)
    let keys =
      List.sort_uniq compare
        (List.map (fun (i : buffer_info) -> (i.loop_var, i.buffer.Buffer.scope)) infos)
    in
    let groups =
      List.map
        (fun (loop_var, scope) ->
          let members =
            List.filter
              (fun (i : buffer_info) ->
                String.equal i.loop_var loop_var
                && Buffer.scope_equal i.buffer.Buffer.scope scope)
              infos
          in
          let stages =
            match
              List.sort_uniq compare
                (List.map (fun m -> m.hint.Hints.stages) members)
            with
            | [ s ] -> s
            | _ ->
              reject
                (String.concat "+" (List.map (fun m -> m.buffer.Buffer.name) members))
                3 "buffers in one synchronization group request different \
                   stage counts"
          in
          let depth =
            match members with
            | m :: _ ->
              let rec depth_of = function
                | [] -> 0
                | f :: rest ->
                  if String.equal f.var loop_var then List.length rest
                  else depth_of rest
              in
              depth_of m.site.stack
            | [] -> 0
          in
          { id = Printf.sprintf "pipe.%s.%s" (Buffer.scope_to_string scope) loop_var;
            scope; loop_var; loop_extent = (List.hd members).loop_extent;
            loop_depth = depth; stages; members;
            synchronized = Alcop_hw.Hw_config.scope_needs_matching_sync hw scope;
            outer = None; fused = false })
        keys
    in
    (* Rule 3: a synchronized scope has a single barrier object, so all its
       pipelined buffers must form one group. *)
    List.iter
      (fun scope ->
        let of_scope =
          List.filter (fun g -> Buffer.scope_equal g.scope scope) groups
        in
        match of_scope with
        | [] | [ _ ] -> ()
        | _ :: _ :: _ ->
          reject
            (String.concat "+" (List.concat_map member_names of_scope))
            3
            "buffers in scope %s are pipelined on different loops (%s) but \
             the scope has a single barrier object"
            (Buffer.scope_to_string scope)
            (String.concat ", " (List.map (fun g -> g.loop_var) of_scope)))
      (List.filter
         (fun s -> Alcop_hw.Hw_config.scope_needs_matching_sync hw s)
         [ Buffer.Global; Buffer.Shared; Buffer.Register ]);
    (* Multi-level structure: a group is inner to another if its members'
       producers are the other group's buffers. *)
    let groups =
      List.map
        (fun g ->
          let producer_group =
            List.find_opt
              (fun og ->
                not (String.equal og.id g.id)
                && List.for_all
                     (fun m -> List.mem m.producer (member_names og))
                     g.members)
              groups
          in
          match producer_group with
          | None -> g
          | Some og ->
            (* The inner pipeline must be nested inside the outer pipeline
               loop for fusion to make sense. *)
            let nested =
              List.for_all
                (fun m ->
                  List.exists
                    (fun f -> String.equal f.var og.loop_var)
                    m.site.stack)
                g.members
            in
            if not nested then g
            else begin
              let want_fuse =
                List.for_all (fun m -> m.hint.Hints.inner_fuse) g.members
              in
              let can_fuse = g.stages - 1 <= g.loop_extent in
              if want_fuse && not can_fuse then
                reject g.id 0
                  "inner-pipeline fusion requires stages-1 <= extent of %s \
                   (%d-1 > %d)"
                  g.loop_var g.stages g.loop_extent;
              { g with outer = Some og.id; fused = want_fuse }
            end)
        groups
    in
    (* Outermost groups first: the transformation processes them in order. *)
    let groups =
      List.sort (fun a b -> compare a.loop_depth b.loop_depth) groups
    in
    List.iter (fun g -> if g.synchronized then check_sync_positions kernel g) groups;
    groups
  end

(* The analysis proper; legality violations surface as [Rejected] from the
   rule checks deep inside. [run] is the result-returning entry point the
   compiler consumes; [run_exn] keeps the exception-style interface as a
   thin wrapper for callers that treat a rejection as fatal. *)
let run_internal ~(hw : Alcop_hw.Hw_config.t) ~(hints : Hints.t)
    (kernel : Kernel.t) =
  if hints = [] then { groups = [] }
  else begin
    let sites = collect_sites hints kernel.Kernel.body in
    let infos = List.map (info_of_hint ~hw kernel sites) (List.rev hints) in
    { groups = group_infos ~hw kernel infos }
  end

let run ~hw ~hints kernel =
  match run_internal ~hw ~hints kernel with
  | analysis -> Ok analysis
  | exception Rejected r -> Error r

let run_exn ~hw ~hints kernel =
  match run ~hw ~hints kernel with
  | Ok analysis -> analysis
  | Error r -> raise (Rejected r)

(* --- Structured per-buffer legality verdicts --------------------------

   [run] stops at the first rejection, which is right for the compiler but
   useless for diagnosis: the user wants to know, for every hinted buffer,
   which of the paper's three rules passed or failed and why. [verdicts]
   re-runs the same checks rule by rule, never raising, and reports one
   verdict per buffer. Deterministic for a given kernel, so reports can be
   golden-tested. *)

type rule_check = {
  rule : int;  (** 1, 2 or 3 — the slot in the report *)
  passed : bool;
  detail : string;
}

type buffer_verdict = {
  verdict_buffer : string;
  verdict_scope : string;
  pipelined : bool;
  verdict_group : string option;
  checks : rule_check list;  (** rules 1, 2, 3 in order *)
}

let failed_check slot (r : rejection) =
  let detail =
    if r.rule = 0 then "structural: " ^ r.reason else r.reason
  in
  { rule = slot; passed = false; detail }

let skipped_check slot =
  { rule = slot; passed = false; detail = "not evaluated (earlier rule failed)" }

let verdicts ~(hw : Alcop_hw.Hw_config.t) ~(hints : Hints.t) (kernel : Kernel.t) =
  let sites = collect_sites hints kernel.Kernel.body in
  let per_hint =
    List.map
      (fun (h : Hints.hint) ->
        let r1 =
          match check_rule1 ~hw kernel sites h with
          | pair -> Ok pair
          | exception Rejected r -> Error r
        in
        let r2 =
          match r1 with
          | Ok (_, site) ->
            (match check_rule2 h site with
             | pair -> Ok pair
             | exception Rejected r -> Error r)
          | Error _ -> Error { buffer = h.Hints.buffer; rule = 2; reason = "" }
        in
        (h, r1, r2))
      (List.rev hints)
  in
  let infos =
    List.filter_map
      (fun ((h : Hints.hint), r1, r2) ->
        match r1, r2 with
        | Ok (buffer, site), Ok (loop, loop_extent) ->
          Some
            { buffer; hint = h; site; loop_var = loop.var; loop_extent;
              producer = site.src.Stmt.buffer }
        | _ -> None)
      per_hint
  in
  let grouping =
    match group_infos ~hw kernel infos with
    | groups -> Ok { groups }
    | exception Rejected r -> Error r
  in
  List.map
    (fun ((h : Hints.hint), r1, r2) ->
      let name = h.Hints.buffer in
      let scope =
        match Kernel.find_buffer kernel name with
        | Some b -> Buffer.scope_to_string b.Buffer.scope
        | None -> "undeclared"
      in
      let c1 =
        match r1 with
        | Ok _ ->
          { rule = 1; passed = true;
            detail =
              Printf.sprintf
                "produced by one asynchronous memory copy (scope %s on %s)"
                scope hw.Alcop_hw.Hw_config.name }
        | Error r -> failed_check 1 r
      in
      let c2 =
        match r1, r2 with
        | Error _, _ -> skipped_check 2
        | Ok _, Ok ((loop : frame), extent) ->
          { rule = 2; passed = true;
            detail =
              Printf.sprintf "sequential load-and-use loop %s (extent %d)"
                loop.var extent }
        | Ok _, Error r -> failed_check 2 r
      in
      let c3, group_id =
        if not (c1.passed && c2.passed) then (skipped_check 3, None)
        else
          match grouping with
          | Ok t ->
            (match group_of_buffer t name with
             | Some g ->
               ( { rule = 3; passed = true;
                   detail =
                     Printf.sprintf "group %s: %d stages on loop %s%s" g.id
                       g.stages g.loop_var
                       (if g.synchronized then ", synchronized" else "") },
                 Some g.id )
             | None ->
               (* unreachable: every info lands in a group *)
               (skipped_check 3, None))
          | Error r ->
            let culprits = String.split_on_char '+' r.buffer in
            if List.mem name culprits then (failed_check 3 r, None)
            else
              ( { rule = 3; passed = true;
                  detail =
                    "no barrier conflict attributed to this buffer (group \
                     analysis failed elsewhere)" },
                None )
      in
      { verdict_buffer = name; verdict_scope = scope;
        pipelined = c1.passed && c2.passed && c3.passed;
        verdict_group = group_id; checks = [ c1; c2; c3 ] })
    per_hint

let rule_title = function
  | 1 -> "asynchronous copy"
  | 2 -> "sequential load-and-use loop"
  | 3 -> "synchronization scope"
  | _ -> "structural"

let pp_buffer_verdict fmt (v : buffer_verdict) =
  Format.fprintf fmt "buffer %s (scope %s): %s@\n" v.verdict_buffer
    v.verdict_scope
    (match v.verdict_group with
     | Some g when v.pipelined -> Printf.sprintf "PIPELINED in %s" g
     | _ when v.pipelined -> "PIPELINED"
     | _ -> "NOT PIPELINED");
  List.iteri
    (fun i (c : rule_check) ->
      Format.fprintf fmt "  rule %d (%s): %s - %s" c.rule (rule_title c.rule)
        (if c.passed then "PASS" else "FAIL")
        c.detail;
      if i < 2 then Format.fprintf fmt "@\n")
    v.checks

let pp_verdicts fmt vs =
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt "@\n";
      Format.fprintf fmt "%a" pp_buffer_verdict v)
    vs
