(** Analysis phase of the pipelining program transformation (paper
    Sec. III-A) plus re-verification of the legality rules of Sec. II-A. *)

open Alcop_ir

type rejection = {
  buffer : string;
  rule : int;  (** which of the paper's three rules failed; 0 = structural *)
  reason : string;
}

exception Rejected of rejection

val pp_rejection : Format.formatter -> rejection -> unit

type frame = {
  var : string;
  extent : Expr.t;
  kind : Stmt.loop_kind;
}

type copy_site = {
  dst : Stmt.region;
  src : Stmt.region;
  fused : string option;
  stack : frame list;  (** enclosing loops, innermost first *)
}

type buffer_info = {
  buffer : Buffer.t;
  hint : Hints.hint;
  site : copy_site;
  loop_var : string;   (** the sequential load-and-use loop (step 3) *)
  loop_extent : int;
  producer : string;   (** source buffer of the producing copy (step 2) *)
}

type group = {
  id : string;
  scope : Buffer.scope;
  loop_var : string;
  loop_extent : int;
  loop_depth : int;
  stages : int;
  members : buffer_info list;
  synchronized : bool;
      (** scope-based barriers: guarded by the four-primitive protocol *)
  outer : string option;
      (** id of the group whose buffers produce this group's data *)
  fused : bool;  (** inner-pipeline fusion with [outer] (paper Fig. 3d) *)
}

type t = { groups : group list (** outermost first *) }

val find_group : t -> string -> group option
val group_of_buffer : t -> string -> group option
val member_names : group -> string list

(** Bytes one stage of the group's expanded buffers occupies (sum of the
    pre-expansion member buffer sizes); the footprint the pipeline
    observatory compares occupancy high-water marks against. *)
val stage_footprint_bytes : group -> int
val is_pipelined : t -> string -> bool

val run :
  hw:Alcop_hw.Hw_config.t -> hints:Hints.t -> Kernel.t ->
  (t, rejection) result
(** [Error] when a hinted buffer fails one of the paper's three legality
    rules or a structural precondition. Never raises {!Rejected}. *)

val run_exn : hw:Alcop_hw.Hw_config.t -> hints:Hints.t -> Kernel.t -> t
(** Thin wrapper over {!run}.
    @raise Rejected on the first legality violation. *)

(** {2 Structured per-buffer legality verdicts}

    [run] stops at the first rejection; [verdicts] evaluates every rule
    for every hinted buffer and never raises, for diagnosis ([alcop
    explain]) and structured error reporting. *)

type rule_check = {
  rule : int;  (** 1, 2 or 3 — the slot in the report *)
  passed : bool;
  detail : string;
      (** structural (rule-0) failures are folded into the slot where they
          were detected, prefixed with "structural:" *)
}

type buffer_verdict = {
  verdict_buffer : string;
  verdict_scope : string;
  pipelined : bool;  (** all three rules passed *)
  verdict_group : string option;  (** group id when pipelined *)
  checks : rule_check list;  (** rules 1, 2, 3 in order *)
}

val verdicts :
  hw:Alcop_hw.Hw_config.t -> hints:Hints.t -> Kernel.t -> buffer_verdict list
(** One verdict per hinted buffer, in hint order. Deterministic for a
    given kernel, so reports can be golden-tested. *)

val rule_title : int -> string

val pp_buffer_verdict : Format.formatter -> buffer_verdict -> unit
val pp_verdicts : Format.formatter -> buffer_verdict list -> unit
