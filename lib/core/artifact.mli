(** Serializable evaluation records: what the {!Store} persists per
    compile fingerprint.

    A record is deliberately *evaluation-grade*, not the full compiled
    artifact: the simulated latency, the complete {!Alcop_gpusim.Timing.kernel_timing}
    scalars (wave-busy breakdown included) and the [timing.*] gauges the
    cold compile published. That is everything {!Session.evaluate},
    {!Session.timing}, the tuners and [alcop time] consume; callers that
    need the lowered IR or the packed trace (IR dumps, chrome traces,
    profilers) recompile. Failed compiles persist too — failed points
    recur in sweeps just as often as good ones — as their error kind and
    message.

    Floats render through {!Alcop_obs.Json.float_repr}, so a value read
    back from disk is bit-identical to the one simulation produced, and a
    store-warm process reports byte-identical numbers to a cold one. *)

type record = {
  latency_cycles : float;
  timing : Alcop_gpusim.Timing.kernel_timing;
  gauges : (string * float) list;
      (** the [timing.*] gauges captured at the cold compile, re-published
          on every store hit exactly like in-memory session hits *)
}

type t =
  | Success of record
  | Failure of {
      kind : string;    (** {!Compiler.error_kind} *)
      message : string; (** {!Compiler.error_to_string} *)
    }

val to_string : t -> string
(** One-line JSON, versioned. *)

val of_string : string -> t option
(** [None] on any parse or schema mismatch — corrupt store entries must
    read as misses, never raise. *)
