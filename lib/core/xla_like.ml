(* XLA-like baseline compiler (paper Sec. V-B, Table III).

   XLA (TF 2.9) dispatches plain GEMMs and convolutions to the vendor
   libraries (cuBLAS / cuDNN) but emits its own code — fixed heuristic
   tiling templates, no schedule search, no multi-stage asynchronous
   pipelining on Ampere — for the contractions its fusion pipeline owns,
   notably the batched attention matmuls. We model both paths: library
   dispatch with a small integration overhead for MatMul/Conv2D, and an
   unpipelined heuristic schedule with a codegen inefficiency factor for
   batched matmuls. The performance gap to ALCOP therefore varies by shape
   exactly as library-vs-search and heuristic-vs-search would. *)

open Alcop_sched

let codegen_factor = 1.06
let dispatch_factor = 1.03

let largest_dividing candidates n =
  List.fold_left (fun acc c -> if n mod c = 0 && c > acc then c else acc) 0
    candidates

let heuristic_point (spec : Op_spec.t) =
  let tb_m = largest_dividing [ 16; 32; 64; 128 ] spec.Op_spec.m in
  let tb_n = largest_dividing [ 16; 32; 64; 128 ] spec.Op_spec.n in
  let tb_k = largest_dividing [ 16; 32 ] spec.Op_spec.k in
  if tb_m = 0 || tb_n = 0 || tb_k = 0 then None
  else begin
    let warp_of tb = if tb >= 64 then tb / 2 else tb in
    let warp_m = warp_of tb_m and warp_n = warp_of tb_n in
    let tiling =
      Tiling.make ~tb_m ~tb_n ~tb_k ~warp_m ~warp_n ~warp_k:tb_k ()
    in
    match Tiling.validate tiling spec with
    | Ok () ->
      Some (Alcop_perfmodel.Params.make ~tiling ~smem_stages:1 ~reg_stages:1 ())
    | Error _ -> None
  end

let own_codegen_latency ?(hw = Alcop_hw.Hw_config.default) (spec : Op_spec.t) =
  match heuristic_point spec with
  | None -> None
  | Some p ->
    (match Session.evaluate (Session.for_hw hw) p spec with
     | Some c -> Some (c *. codegen_factor)
     | None -> None)

(* XLA normalizes the layouts of batched-dot operands, materializing
   transposes of the inputs around the contraction: one streaming pass
   over the inputs through DRAM plus a kernel launch. *)
let layout_copy_cycles (hw : Alcop_hw.Hw_config.t) (spec : Op_spec.t) =
  let elem = Alcop_ir.Dtype.size_bytes spec.Op_spec.dtype in
  let input_bytes =
    spec.Op_spec.batch
    * ((spec.Op_spec.m * spec.Op_spec.k) + (spec.Op_spec.n * spec.Op_spec.k))
    * elem
  in
  Alcop_gpusim.Timing.launch_overhead_cycles
  +. (1.0 *. float_of_int input_bytes /. hw.Alcop_hw.Hw_config.dram_bytes_per_cycle)

let latency ?(hw = Alcop_hw.Hw_config.default) (spec : Op_spec.t) =
  match spec.Op_spec.kind with
  | Op_spec.Matmul | Op_spec.Conv2d _ ->
    (match Library_oracle.best_latency ~hw spec with
     | Some c -> Some (c *. dispatch_factor)
     | None -> own_codegen_latency ~hw spec)
  | Op_spec.Batched_matmul ->
    Option.map
      (fun c -> c +. layout_copy_cycles hw spec)
      (own_codegen_latency ~hw spec)
