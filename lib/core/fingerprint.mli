(** Content-addressed fingerprints of compilation inputs.

    A fingerprint is the MD5 digest of a canonical JSON rendering of
    everything that determines a compilation's result: the operator
    specification, the schedule point, the hardware configuration and the
    extra register pressure a compiler variant models. Two compile requests
    receive the same fingerprint exactly when the compiler would produce
    bit-identical output for both — which is what makes fingerprints safe
    as keys of the {!Session} artifact cache.

    Floats (hardware rates, latencies) are rendered with
    {!Alcop_obs.Json.float_repr}, the shortest round-tripping form, so
    equal doubles always canonicalize to equal text and the digest never
    depends on printf locale or precision accidents. *)

type t
(** An MD5 digest; total order and equality are structural. *)

val to_hex : t -> string
(** 32 lowercase hex characters. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {2 Canonical JSON forms}

    Exposed so tests can pin the canonicalization (in particular the float
    path) independently of the digest. *)

val json_of_hw : Alcop_hw.Hw_config.t -> Alcop_obs.Json.t
val json_of_spec : Alcop_sched.Op_spec.t -> Alcop_obs.Json.t
val json_of_params : Alcop_perfmodel.Params.t -> Alcop_obs.Json.t

val of_json : Alcop_obs.Json.t -> t
(** Digest of the canonical serialization of an arbitrary JSON document. *)

val schema_version : int
(** Version tag folded into {!compile_key}. Bumped whenever compiler
    semantics or artifact representation change (v2: packed-program
    traces), so cache entries can never replay across representations. *)

val compile_key :
  hw:Alcop_hw.Hw_config.t ->
  extra_regs_per_thread:int ->
  Alcop_perfmodel.Params.t ->
  Alcop_sched.Op_spec.t ->
  t
(** The cache key of one [Compiler.compile] invocation, under the current
    {!schema_version}. *)

val compile_key_v :
  version:int ->
  hw:Alcop_hw.Hw_config.t ->
  extra_regs_per_thread:int ->
  Alcop_perfmodel.Params.t ->
  Alcop_sched.Op_spec.t ->
  t
(** {!compile_key} under an explicit schema version — exists so the
    schema-bump test can prove old-version keys cannot alias current
    ones. *)

val compile_key_doc :
  version:int ->
  hw:Alcop_hw.Hw_config.t ->
  extra_regs_per_thread:int ->
  Alcop_perfmodel.Params.t ->
  Alcop_sched.Op_spec.t ->
  Alcop_obs.Json.t
(** The tree-built canonical document of one compile key. {!compile_key_v}
    emits the same bytes directly into a scratch buffer without building
    this tree; [Fingerprint.of_json (compile_key_doc ...)] must equal
    [compile_key_v ...] — a test enforces the equivalence. *)
