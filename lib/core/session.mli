(** The compilation session: a content-addressed artifact cache in front of
    {!Compiler.compile}.

    Every tuner, compiler variant and experiment evaluates schedule points
    through a session. The cache key is a {!Fingerprint} of (operator
    spec, schedule point, hardware config, extra register pressure), so a
    point compiled once is never compiled or re-simulated again — the
    paper's E2/E4/E5 experiments sweep five compiler variants over heavily
    overlapping schedule spaces, and search-based schedulers live or die by
    the cost of evaluating candidates. Both successful [compiled] artifacts
    and structured compile errors are memoized (failed points recur in
    sweeps just as often as good ones).

    The store is in-memory and capacity-bounded (FIFO eviction). Hit, miss
    and eviction totals are kept per session and also published as
    [session.cache.hit] / [session.cache.miss] / [session.cache.evict]
    counters through [Alcop_obs].

    On a cache hit the [timing.*] gauges captured at the entry's cold
    compile are re-published, so gauge readers (e.g. the tuner's per-trial
    stall breakdown) always see values consistent with the latest
    evaluation, cached or not.

    Domain-safe: a per-session mutex guards the table, stats and FIFO
    queue (compiles themselves run outside the lock), and the {!for_hw}
    registry has its own lock. Concurrent {!compile} calls on the same
    key are deduplicated — the first caller is the sole miss, the rest
    block until the entry lands and count as hits, matching the totals of
    the equivalent sequential call sequence (see doc/parallelism.md). *)

type t

type stats = {
  entries : int;     (** resident cache entries *)
  hits : int;
  misses : int;
  evictions : int;
}

val create :
  ?hw:Alcop_hw.Hw_config.t ->
  ?capacity:int ->
  ?cache:bool ->
  ?store:Store.t ->
  unit ->
  t
(** A fresh session. [capacity] bounds resident entries (default 8192);
    [cache:false] makes the session a transparent pass-through that
    neither stores nor counts (the CLI's [--no-cache]). [store] attaches
    a persistent on-disk tier — see {!attach_store}. *)

val attach_store : t -> Store.t option -> unit
(** Attach (or detach, with [None]) the persistent tier. With a store
    attached, every cold compile writes an evaluation record through
    ([session.store.write]), and {!timing}/{!evaluate} misses read the
    store before compiling: a hit ([session.store.hit]) serves the
    recorded latency, kernel timing and gauges without running the
    compiler at all — that is what makes warm compiles near-free across
    processes. {!compile} needs the full artifact, so it never reads the
    store (records cannot reconstruct the IR); it only writes through. *)

val store : t -> Store.t option

val for_hw : Alcop_hw.Hw_config.t -> t
(** The shared session for a hardware config, from a global registry keyed
    by the config's fingerprint: all variants, tuners and experiments
    targeting the same machine share one artifact store. Scaled or
    cross-generation machines (experiment E9) each get their own. *)

val default : unit -> t
(** [for_hw Alcop_hw.Hw_config.default]. *)

val hw : t -> Alcop_hw.Hw_config.t
val cache_enabled : t -> bool

val compile :
  t ->
  ?pool:Alcop_par.Pool.t ->
  ?extra_regs_per_thread:int ->
  Alcop_perfmodel.Params.t ->
  Alcop_sched.Op_spec.t ->
  (Compiler.compiled, Compiler.error) result
(** The memoized equivalent of {!Compiler.compile} on this session's
    hardware. Deterministic: a hit returns the artifact bit-identically as
    the cold compile produced it. [pool] enables the timing simulator's
    parallel-wave mode on cold compiles (see {!Alcop_gpusim.Timing.run});
    it never changes the artifact, only wall-clock time. *)

type timed = {
  latency_cycles : float;
  timing : Alcop_gpusim.Timing.kernel_timing;
}
(** The evaluation-grade view of a compile: everything [alcop time], the
    tuners and the experiment sweeps consume, and exactly what a store
    record can serve without recompiling. *)

val timing :
  t ->
  ?pool:Alcop_par.Pool.t ->
  ?extra_regs_per_thread:int ->
  Alcop_perfmodel.Params.t ->
  Alcop_sched.Op_spec.t ->
  (timed, string) result
(** Like {!compile} but returns only the timing view, which allows one
    extra serving tier: on an in-memory miss with a store attached, a
    persisted record from *any previous process* satisfies the call
    (bit-identically — floats round-trip exactly). [Error] carries the
    memoized compile error's rendering. *)

val evaluate :
  t ->
  ?pool:Alcop_par.Pool.t ->
  ?extra_regs_per_thread:int ->
  Alcop_perfmodel.Params.t ->
  Alcop_sched.Op_spec.t ->
  float option
(** [latency_cycles] of {!timing}; [None] = failed to compile or launch. *)

val evaluator :
  t ->
  ?extra_regs:(Alcop_perfmodel.Params.t -> int) ->
  Alcop_sched.Op_spec.t ->
  Alcop_perfmodel.Params.t ->
  float option
(** Measurement function for the tuners, closed over one operator. *)

val stats : t -> stats
(** [hits + misses] telescopes to the total number of (cache-enabled)
    {!compile}/{!evaluate} calls on this session. *)

val hit_rate : stats -> float
(** hits / (hits + misses); 0 when nothing was evaluated. *)

val clear : t -> unit
(** Drop all entries and zero the counters. *)

val publish_entries_gauge : t -> unit
(** Publish the resident entry count as the [session.cache.entries]
    gauge, read under the session mutex. Call it only from
    coordinator-side code (after any pool batch completed): the final
    count — [min (distinct inserts, capacity)] thanks to in-flight
    dedup — is deterministic there, whereas a mid-flight publication
    from inside a pool task would be interleaving-dependent and break
    the [-j N] byte-identity contract (which is why PR 5 dropped the
    per-insert gauge this replaces). Never exceeds the session
    capacity (hammer-tested). *)

val summary : t -> string
(** One line: entries, hits, misses, hit rate, evictions. Also calls
    {!publish_entries_gauge}. *)

val global_stats : unit -> stats
(** Aggregate over every registry session ({!for_hw}); sessions made with
    {!create} are not included. *)
