(** The self-contained HTML experiment report ([alcop report], [bench
    report]): the paper's headline figures (10, 12, 13), the compiler
    selfbench trajectory, and a stall-class diff explaining the pipelining
    speedup — one HTML file with inline SVG, no scripts, no external
    resources.

    Figure data is read from [results_dir]'s CSVs when `bench csv` has
    written them and recomputed through the same {!Experiments} CSV
    shapes otherwise; the selfbench section reads [bench_json] (and notes
    its absence rather than re-running bechamel). *)

val generate :
  ?hw:Alcop_hw.Hw_config.t -> ?pool:Alcop_par.Pool.t ->
  ?results_dir:string -> ?bench_json:string -> ?history_dir:string ->
  unit -> string
(** The full HTML document. Defaults: default hardware, ["results"],
    ["BENCH_gpusim.json"], [Alcop_obs.Benchdb.default_history_dir].
    [pool] parallelizes the recompute fallbacks (one worker task per
    suite operator). [history_dir] feeds the benchmark-history trend
    sections (selfbench medians over time with ±MAD noise bands and
    change-point markers, one section per machine stream). *)

val write :
  ?hw:Alcop_hw.Hw_config.t -> ?pool:Alcop_par.Pool.t ->
  ?results_dir:string -> ?bench_json:string -> ?history_dir:string ->
  string -> unit
(** [generate] to a file. *)
