(* The compilation session: a content-addressed artifact cache in front of
   [Compiler.compile]. See the interface for the contract. *)

open Alcop_sched
module Obs = Alcop_obs.Obs

type entry = {
  outcome : (Compiler.compiled, Compiler.error) result;
  gauges : (string * float) list;
      (* [timing.*] gauges captured right after the cold compile, re-published
         on every hit so gauge readers stay consistent with the latest
         evaluation *)
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

type t = {
  hw : Alcop_hw.Hw_config.t;
  capacity : int;
  cache : bool;
  table : (Fingerprint.t, entry) Hashtbl.t;
  order : Fingerprint.t Queue.t;  (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(hw = Alcop_hw.Hw_config.default) ?(capacity = 8192)
    ?(cache = true) () =
  if capacity < 1 then invalid_arg "Session.create: capacity must be >= 1";
  { hw; capacity; cache;
    table = Hashtbl.create (min capacity 1024);
    order = Queue.create ();
    hits = 0; misses = 0; evictions = 0 }

let hw t = t.hw
let cache_enabled t = t.cache

let stats t =
  { entries = Hashtbl.length t.table;
    hits = t.hits; misses = t.misses; evictions = t.evictions }

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let summary t =
  let s = stats t in
  Printf.sprintf
    "compile cache: %d entries, %d hits / %d misses (%.1f%% hit rate), %d \
     evicted"
    s.entries s.hits s.misses (100.0 *. hit_rate s) s.evictions

(* --- the global per-hardware registry --- *)

let registry : (Fingerprint.t, t) Hashtbl.t = Hashtbl.create 4

let for_hw hw =
  let key = Fingerprint.of_json (Fingerprint.json_of_hw hw) in
  match Hashtbl.find_opt registry key with
  | Some s -> s
  | None ->
    let s = create ~hw () in
    Hashtbl.add registry key s;
    s

let default () = for_hw Alcop_hw.Hw_config.default

let global_stats () =
  Hashtbl.fold
    (fun _ t acc ->
      let s = stats t in
      { entries = acc.entries + s.entries;
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions })
    registry
    { entries = 0; hits = 0; misses = 0; evictions = 0 }

(* --- the cache proper --- *)

let timing_prefix = "timing."

let timing_gauges () =
  List.filter
    (fun (name, _) ->
      String.length name >= String.length timing_prefix
      && String.sub name 0 (String.length timing_prefix) = timing_prefix)
    (Obs.gauges ())

let evict_to_capacity t =
  while Hashtbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
    let oldest = Queue.pop t.order in
    if Hashtbl.mem t.table oldest then begin
      Hashtbl.remove t.table oldest;
      t.evictions <- t.evictions + 1;
      Obs.count "session.cache.evict"
    end
  done

let compile t ?(extra_regs_per_thread = 0) (params : Alcop_perfmodel.Params.t)
    (spec : Op_spec.t) =
  if not t.cache then
    Compiler.compile ~hw:t.hw ~extra_regs_per_thread params spec
  else begin
    let key =
      Fingerprint.compile_key ~hw:t.hw ~extra_regs_per_thread params spec
    in
    match Hashtbl.find_opt t.table key with
    | Some e ->
      t.hits <- t.hits + 1;
      Obs.count "session.cache.hit";
      List.iter (fun (name, v) -> Obs.gauge name v) e.gauges;
      e.outcome
    | None ->
      t.misses <- t.misses + 1;
      Obs.count "session.cache.miss";
      let outcome =
        Compiler.compile ~hw:t.hw ~extra_regs_per_thread params spec
      in
      let gauges =
        match outcome with Ok _ -> timing_gauges () | Error _ -> []
      in
      evict_to_capacity t;
      Hashtbl.replace t.table key { outcome; gauges };
      Queue.push key t.order;
      Obs.gauge "session.cache.entries"
        (float_of_int (Hashtbl.length t.table));
      outcome
  end

let evaluate t ?extra_regs_per_thread params spec =
  match compile t ?extra_regs_per_thread params spec with
  | Ok c -> Some c.Compiler.latency_cycles
  | Error _ -> None

let evaluator t ?(extra_regs = fun _ -> 0) (spec : Op_spec.t) =
  fun (params : Alcop_perfmodel.Params.t) ->
    evaluate t ~extra_regs_per_thread:(extra_regs params) params spec
