(* The compilation session: a content-addressed artifact cache in front of
   [Compiler.compile]. See the interface for the contract.

   Domain-safety: one mutex per session guards the table, FIFO queue,
   stat counters and the in-flight set; the actual compile runs outside
   the lock. When two domains race on the same key, the first becomes the
   (sole) miss and the others block on [ready] until the entry lands,
   then count as hits — exactly the hit/miss totals a sequential run of
   the same call sequence would produce. *)

open Alcop_sched
module Obs = Alcop_obs.Obs
module Hostprof = Alcop_obs.Hostprof

(* Host-profiler lock probes: one per lock *class* (every session's mutex
   shares the "session.lock" probe). No-ops unless a profiling window is
   open; never touch the Obs capture/replay path. *)
let session_probe = Hostprof.make_lock "session.lock"
let registry_probe = Hostprof.make_lock "session.registry"
let ready_probe = Hostprof.make_lock "session.ready"

(* An entry is either the full in-memory artifact (produced by a cold
   compile in this process) or an evaluation record read through from the
   on-disk store — enough for [evaluate]/[timing] but not for callers
   that need the IR; [compile] treats a [Record] as a miss and upgrades
   it in place. *)
type payload =
  | Full of (Compiler.compiled, Compiler.error) result
  | Record of Artifact.t

type entry = {
  payload : payload;
  gauges : (string * float) list;
      (* [timing.*] gauges captured right after the cold compile, re-published
         on every hit so gauge readers stay consistent with the latest
         evaluation *)
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

type t = {
  hw : Alcop_hw.Hw_config.t;
  capacity : int;
  cache : bool;
  lock : Mutex.t;
  ready : Condition.t;  (* an in-flight compile completed (or failed) *)
  table : (Fingerprint.t, entry) Hashtbl.t;
  inflight : (Fingerprint.t, unit) Hashtbl.t;
  order : Fingerprint.t Queue.t;  (* insertion order, for FIFO eviction *)
  mutable store : Store.t option;  (* persistent tier, when attached *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(hw = Alcop_hw.Hw_config.default) ?(capacity = 8192)
    ?(cache = true) ?store () =
  if capacity < 1 then invalid_arg "Session.create: capacity must be >= 1";
  { hw; capacity; cache;
    lock = Mutex.create ();
    ready = Condition.create ();
    table = Hashtbl.create (min capacity 1024);
    inflight = Hashtbl.create 8;
    order = Queue.create ();
    store;
    hits = 0; misses = 0; evictions = 0 }

let hw t = t.hw
let cache_enabled t = t.cache
let attach_store t store = t.store <- store
let store t = t.store

let locked t f = Hostprof.locked session_probe t.lock f

let stats t =
  locked t (fun () ->
      { entries = Hashtbl.length t.table;
        hits = t.hits; misses = t.misses; evictions = t.evictions })

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

(* Restored from PR 5 as an explicitly-published gauge. Mid-flight entry
   counts are interleaving-dependent under a pool, so the gauge is only
   published from coordinator-side call sites (summary, bench, the perf
   CLI) where the value — min(distinct inserts, capacity), thanks to
   in-flight dedup — is deterministic and -j-independent. *)
let publish_entries_gauge t =
  let n = locked t (fun () -> Hashtbl.length t.table) in
  Obs.gauge "session.cache.entries" (float_of_int n)

let summary t =
  publish_entries_gauge t;
  let s = stats t in
  Printf.sprintf
    "compile cache: %d entries, %d hits / %d misses (%.1f%% hit rate), %d \
     evicted"
    s.entries s.hits s.misses (100.0 *. hit_rate s) s.evictions

(* --- the global per-hardware registry --- *)

let registry : (Fingerprint.t, t) Hashtbl.t = Hashtbl.create 4
let registry_lock = Mutex.create ()

let for_hw hw =
  let key = Fingerprint.of_json (Fingerprint.json_of_hw hw) in
  Hostprof.locked registry_probe registry_lock (fun () ->
      match Hashtbl.find_opt registry key with
      | Some s -> s
      | None ->
        let s = create ~hw () in
        Hashtbl.add registry key s;
        s)

let default () = for_hw Alcop_hw.Hw_config.default

let global_stats () =
  let sessions =
    Hostprof.locked registry_probe registry_lock (fun () ->
        Hashtbl.fold (fun _ t acc -> t :: acc) registry [])
  in
  List.fold_left
    (fun acc t ->
      let s = stats t in
      { entries = acc.entries + s.entries;
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions })
    { entries = 0; hits = 0; misses = 0; evictions = 0 }
    sessions

(* --- the cache proper --- *)

let timing_prefix = "timing."

let evict_to_capacity t =
  while Hashtbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
    let oldest = Queue.pop t.order in
    if Hashtbl.mem t.table oldest then begin
      Hashtbl.remove t.table oldest;
      t.evictions <- t.evictions + 1;
      Obs.count "session.cache.evict"
    end
  done

let compile_ns = "compile"

(* The in-flight-deduplicated miss protocol, shared by [compile] and
   [timing]. [want_full]: [compile] cannot be served by a disk record, so
   a [Record] entry counts as a miss for it (and is upgraded in place
   afterwards). Returns [`Hit entry] or [`Miss]; a [`Miss] caller holds
   the in-flight claim and MUST release it. *)
let acquire t key ~want_full =
  let rec go () =
    match Hashtbl.find_opt t.table key with
    | Some e when (not want_full) || (match e.payload with Full _ -> true | Record _ -> false) ->
      t.hits <- t.hits + 1;
      `Hit e
    | Some _ | None ->
      if Hashtbl.mem t.inflight key then begin
        (* another domain is compiling this key; [wait] releases the
           session mutex, so time it as its own probe *)
        Hostprof.blocking ready_probe (fun () ->
            Condition.wait t.ready t.lock);
        go ()
      end
      else begin
        Hashtbl.replace t.inflight key ();
        t.misses <- t.misses + 1;
        `Miss
      end
  in
  Hostprof.lock_acquire session_probe t.lock;
  let decision = go () in
  Mutex.unlock t.lock;
  decision

let release t key () =
  Hashtbl.remove t.inflight key;
  Condition.broadcast t.ready

(* Insert under the lock and release the in-flight claim. Pushing into
   the FIFO only on first insertion keeps a Record->Full upgrade from
   double-queueing its key. *)
let land_entry t key entry =
  locked t (fun () ->
      let known = Hashtbl.mem t.table key in
      if not known then evict_to_capacity t;
      Hashtbl.replace t.table key entry;
      if not known then Queue.push key t.order;
      release t key ())

let record_of_outcome outcome gauges =
  match outcome with
  | Ok c ->
    Artifact.Success
      { Artifact.latency_cycles = c.Compiler.latency_cycles;
        timing = c.Compiler.timing;
        gauges }
  | Error e ->
    Artifact.Failure
      { kind = Compiler.error_kind e; message = Compiler.error_to_string e }

(* Write-through: every cold compile leaves an evaluation record behind
   for future processes. Counted through [Obs] — safe for the -j
   byte-identity contract because it happens only on the deduplicated
   sole-miss path, exactly like [session.cache.miss]. *)
let store_write t key outcome gauges =
  match t.store with
  | None -> ()
  | Some st ->
    Store.write st ~ns:compile_ns (Fingerprint.to_hex key)
      (Artifact.to_string (record_of_outcome outcome gauges));
    Obs.count "session.store.write"

(* The cold path both [compile] and [timing] fall back to: run the real
   compiler, capture its gauges, land a [Full] entry, write through. *)
let compile_cold t ?pool ~extra_regs_per_thread ~key params spec =
  let outcome =
    try Compiler.compile ?pool ~hw:t.hw ~extra_regs_per_thread params spec
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      locked t (release t key);
      Printexc.raise_with_backtrace e bt
  in
  (* Capture-local read: under a pool this sees only the gauges this
     very compile published, never another domain's. *)
  let gauges =
    match outcome with
    | Ok _ -> Obs.gauges_with_prefix timing_prefix
    | Error _ -> []
  in
  store_write t key outcome gauges;
  land_entry t key { payload = Full outcome; gauges };
  (outcome, gauges)

let compile t ?pool ?(extra_regs_per_thread = 0)
    (params : Alcop_perfmodel.Params.t) (spec : Op_spec.t) =
  if not t.cache then
    Compiler.compile ?pool ~hw:t.hw ~extra_regs_per_thread params spec
  else begin
    let key =
      Fingerprint.compile_key ~hw:t.hw ~extra_regs_per_thread params spec
    in
    match acquire t key ~want_full:true with
    | `Hit { payload = Full outcome; gauges } ->
      Obs.count "session.cache.hit";
      List.iter (fun (name, v) -> Obs.gauge name v) gauges;
      outcome
    | `Hit { payload = Record _; _ } -> assert false  (* want_full *)
    | `Miss ->
      Obs.count "session.cache.miss";
      fst (compile_cold t ?pool ~extra_regs_per_thread ~key params spec)
  end

(* --- evaluation-grade lookups: may be served by the persistent store --- *)

type timed = {
  latency_cycles : float;
  timing : Alcop_gpusim.Timing.kernel_timing;
}

let timed_of_entry e =
  match e.payload with
  | Full (Ok c) ->
    Ok { latency_cycles = c.Compiler.latency_cycles; timing = c.Compiler.timing }
  | Full (Error err) -> Error (Compiler.error_to_string err)
  | Record (Artifact.Success r) ->
    Ok { latency_cycles = r.Artifact.latency_cycles; timing = r.Artifact.timing }
  | Record (Artifact.Failure { message; _ }) -> Error message

let timed_of_outcome = function
  | Ok c ->
    Ok { latency_cycles = c.Compiler.latency_cycles; timing = c.Compiler.timing }
  | Error err -> Error (Compiler.error_to_string err)

let timing t ?pool ?(extra_regs_per_thread = 0)
    (params : Alcop_perfmodel.Params.t) (spec : Op_spec.t) =
  if not t.cache then
    timed_of_outcome
      (Compiler.compile ?pool ~hw:t.hw ~extra_regs_per_thread params spec)
  else begin
    let key =
      Fingerprint.compile_key ~hw:t.hw ~extra_regs_per_thread params spec
    in
    match acquire t key ~want_full:false with
    | `Hit e ->
      Obs.count "session.cache.hit";
      List.iter (fun (name, v) -> Obs.gauge name v) e.gauges;
      timed_of_entry e
    | `Miss ->
      Obs.count "session.cache.miss";
      (* Read-through: a fresh process finds the record a previous one
         left behind and skips the compile entirely. Corrupt bytes are a
         miss (plus the store's corrupt counter), never an error. *)
      let from_disk =
        match t.store with
        | None -> None
        | Some st ->
          let hex = Fingerprint.to_hex key in
          (match Store.read st ~ns:compile_ns hex with
           | None ->
             Obs.count "session.store.miss";
             None
           | Some data ->
             (match Artifact.of_string data with
              | Some a ->
                Obs.count "session.store.hit";
                Some a
              | None ->
                Store.mark_corrupt st ~ns:compile_ns hex;
                Obs.count "session.store.miss";
                None))
      in
      (match from_disk with
       | Some a ->
         let gauges =
           match a with
           | Artifact.Success r -> r.Artifact.gauges
           | Artifact.Failure _ -> []
         in
         let e = { payload = Record a; gauges } in
         land_entry t key e;
         List.iter (fun (name, v) -> Obs.gauge name v) gauges;
         timed_of_entry e
       | None ->
         let outcome, _ =
           compile_cold t ?pool ~extra_regs_per_thread ~key params spec
         in
         timed_of_outcome outcome)
  end

let evaluate t ?pool ?extra_regs_per_thread params spec =
  match timing t ?pool ?extra_regs_per_thread params spec with
  | Ok r -> Some r.latency_cycles
  | Error _ -> None

let evaluator t ?(extra_regs = fun _ -> 0) (spec : Op_spec.t) =
  fun (params : Alcop_perfmodel.Params.t) ->
    evaluate t ~extra_regs_per_thread:(extra_regs params) params spec
