(** Experiment drivers: one function per table / figure of the paper's
    evaluation section, plus two extensions. Each returns structured data;
    the bench executable formats it. See DESIGN.md's experiment index and
    EXPERIMENTS.md for the paper-versus-measured record. *)

open Alcop_sched

val geomean : float list -> float

val best_latency :
  ?hw:Alcop_hw.Hw_config.t -> Variants.t -> Op_spec.t -> float option
(** Exhaustive-search best latency. Shared across experiments through the
    per-hardware {!Session} artifact cache: re-deriving a variant's best
    point costs one cache lookup per schedule point. *)

val tflops : ?hw:Alcop_hw.Hw_config.t -> Op_spec.t -> float -> float

(** {2 E1 — Fig. 1(b): the motivating example} *)

type fig1b_row = {
  tile : string;
  tb_count : int;
  tflops_tiling_only : float option;
  tflops_pipelined : float option;
}

val fig1b : ?hw:Alcop_hw.Hw_config.t -> unit -> fig1b_row list

(** {2 E2 — Fig. 10: single-operator speedups} *)

type fig10_row = {
  op : string;
  speedups : (string * float) list;  (** variant name -> speedup over TVM *)
}

type fig10_result = {
  rows : fig10_row list;
  geomeans : (string * float) list;
}

val fig10 :
  ?hw:Alcop_hw.Hw_config.t -> ?pool:Alcop_par.Pool.t ->
  ?suite:Op_spec.t list -> unit -> fig10_result
(** [pool] fans the suite across worker domains, one operator per task
    (bit-identical rows; see doc/parallelism.md). *)

(** {2 E3 — Table III: end-to-end models} *)

val table3 : ?hw:Alcop_hw.Hw_config.t -> unit -> E2e.report list

(** {2 E4 — Fig. 11: versus libraries} *)

type fig11_row = {
  op11 : string;
  normalized_to_library : float option;
      (** library latency / ALCOP latency; > 1 means ALCOP wins *)
}

val fig11 :
  ?hw:Alcop_hw.Hw_config.t -> ?suite:Op_spec.t list -> unit -> fig11_row list

(** {2 E5 — Fig. 12: best-in-top-k of the performance models} *)

type fig12_row = {
  op12 : string;
  ours_top : (int * float option) list;
  bottleneck_top : (int * float option) list;
}

val best_in_top_k :
  k:int -> ranked:float option list -> measured_best:float -> float option
(** [ranked] lists measured costs in model-predicted order; [None] when the
    whole top-k failed to compile (the paper's "compile fail" marker).
    One-off queries only — a sweep over many [k]s should take one
    {!Alcop_tune.Tuner.prefix_best_costs} pass instead, as {!fig12} does. *)

val fig12 :
  ?hw:Alcop_hw.Hw_config.t -> ?pool:Alcop_par.Pool.t ->
  ?suite:Op_spec.t list -> ?ks:int list -> unit ->
  fig12_row list

(** {2 E6 — Fig. 13: search efficiency} *)

type fig13_row = {
  op13 : string;
  per_method : (string * (int * float option) list) list;
}

val fig13 :
  ?hw:Alcop_hw.Hw_config.t -> ?pool:Alcop_par.Pool.t ->
  ?suite:Op_spec.t list -> ?budgets:int list ->
  ?seed:int -> unit -> fig13_row list

(** {2 E7 — Table I agreement} *)

type table1_row = {
  op1 : string;
  predicted_cycles : float;
  simulated_cycles : float;
  rel_error : float;
  smem_bound : bool;
}

val table1 :
  ?hw:Alcop_hw.Hw_config.t -> ?suite:Op_spec.t list -> unit -> table1_row list

(** {2 E8 — Figs. 2–3 quantified} *)

type fig23_row = {
  label : string;
  cycles : float option;
  speedup_over_unpipelined : float option;
}

val fig23 :
  ?hw:Alcop_hw.Hw_config.t -> ?spec:Op_spec.t -> unit -> fig23_row list

(** {2 E9 — extensions: hardware scaling and generations} *)

type scaling_row = {
  compute_scale : float;
  peak_tflops : float;
  mean_speedup : float;
}

val scaling :
  ?hw:Alcop_hw.Hw_config.t -> ?subset:Op_spec.t list -> ?scales:float list ->
  unit -> scaling_row list

type generation_row = {
  machine : string;
  gen_speedup : float;
}

val generations : ?subset:Op_spec.t list -> unit -> generation_row list

(** {2 CSV shapes}

    [(header, rows)] pairs shared by the bench CSV export and the HTML
    report's recompute fallback, so [results/*.csv] and a standalone
    report agree cell for cell. Optional cells (compile failures) render
    as empty strings. *)

val fig10_csv : fig10_result -> string list * string list list
val fig12_csv : fig12_row list -> string list * string list list
val fig13_csv : fig13_row list -> string list * string list list
