(** Persistent on-disk artifact store: warm compiles across processes.

    A store is a directory of small JSON entries, named by content
    fingerprint and grouped into namespaces ([compile/] for session
    evaluation records, [wave/] for simulator wave results). Entries are
    sharded by the first two hex characters of the key so no directory
    grows unboundedly, and written atomically (unique temp file in the
    store root, then [rename]), so concurrent processes hammering the same
    key never observe a torn entry — a reader sees either the old bytes,
    the new bytes, or nothing.

    Failure policy: the store is an accelerator, never a correctness
    dependency. An unreadable or corrupt entry is a miss (plus a skip
    counter); an unwritable directory disables the store with a one-line
    warning and every operation becomes a no-op. Nothing in here raises
    on I/O trouble.

    The default root honors [$ALCOP_STORE], then [$XDG_CACHE_HOME/alcop],
    then [~/.cache/alcop]. *)

type t

type stats = {
  hits : int;      (** entry present and read back *)
  misses : int;    (** entry absent *)
  writes : int;    (** entries written (tmp+rename completed) *)
  corrupt : int;   (** unreadable/unparseable entries skipped (and deleted) *)
  errors : int;    (** I/O errors on the write path *)
}

val default_root : unit -> string
(** [$ALCOP_STORE], else [$XDG_CACHE_HOME/alcop], else [$HOME/.cache/alcop],
    else a per-user directory under the system temp dir. *)

val create : ?root:string -> ?max_bytes:int -> unit -> t
(** Open (creating if needed) the store rooted at [root] (default
    {!default_root}). [max_bytes] (default 64 MiB) is the {!gc} target.
    If the root cannot be created or written, prints one warning line to
    stderr and returns a disabled store. *)

val enabled : t -> bool
val root : t -> string
val max_bytes : t -> int

val read : t -> ns:string -> string -> string option
(** The entry's bytes, or [None] when absent/unreadable. An entry that
    exists but cannot be read counts as corrupt and is deleted. *)

val write : t -> ns:string -> string -> string -> unit
(** Atomically (tmp + rename) persist an entry. Last writer wins; errors
    disable the store after one stderr warning. *)

val remove : t -> ns:string -> string -> unit
(** Delete one entry if present (used by benchmarks to re-cold a key). *)

val mark_corrupt : t -> ns:string -> string -> unit
(** Record that the caller failed to parse the entry's bytes, and delete
    the bad file so the next process pays the miss only once. *)

val entry_path : t -> ns:string -> string -> string
(** Where the entry lives (whether or not it exists) — for tests. *)

val stats : t -> stats

val usage : t -> int * int
(** [(entries, bytes)] currently on disk, by walking the store. *)

val gc : t -> ?max_bytes:int -> unit -> int
(** Evict least-recently-modified entries until total size fits under
    [max_bytes] (default: the store's configured cap). Returns the number
    of files removed. Safe to run concurrently with readers/writers:
    losing a race to a concurrent delete is not an error. *)

(** {2 Wave-result persistence}

    Glue that installs this store as the disk tier behind the simulator's
    in-memory wave-reuse cache ({!Alcop_gpusim.Timing.with_wave_reuse}).
    Wave entries are keyed by (program hash, residents, active SMs) like
    the in-memory cache; since a disk entry cannot be structurally
    verified against the live program, each record carries a digest of
    the full simulation config (including the hardware model) that must
    match on load — a mismatch is a miss, never a wrong result. *)

val install_wave_persist : t -> unit
(** Route wave-cache misses through this store (process-wide; replaces
    any previously installed store). *)

val uninstall_wave_persist : unit -> unit
