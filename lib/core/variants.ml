(* The compilers compared in the paper's evaluation (Sec. V-A):

   - TVM:             no pipelining (plain tiled tensor-core schedule);
   - TVM DB:          manually inserted double-buffering, without cp.async —
                      the prefetched tile occupies registers in flight;
   - ALCOP -ML -MS:   ALCOP restricted to two-stage, single-level pipelines;
   - ALCOP -ML:       ALCOP restricted to single-level (shared memory only);
   - ALCOP:           full multi-stage, multi-level pipelining.

   All variants search the same tiling space (the paper exhaustively
   searches the schedule space of each compiler and reports its best). *)

open Alcop_sched

type t = {
  name : string;
  restriction : Alcop_tune.Space.restriction;
  cp_async : bool;
}

let tvm =
  { name = "TVM"; restriction = Alcop_tune.Space.no_pipelining; cp_async = false }

let tvm_db =
  { name = "TVM DB";
    restriction = Alcop_tune.Space.no_multilevel_no_multistage;
    cp_async = false }

let alcop_no_ml_ms =
  { name = "ALCOP w/o ML&MS";
    restriction = Alcop_tune.Space.no_multilevel_no_multistage;
    cp_async = true }

let alcop_no_ml =
  { name = "ALCOP w/o ML";
    restriction = Alcop_tune.Space.no_multilevel;
    cp_async = true }

let alcop =
  { name = "ALCOP"; restriction = Alcop_tune.Space.full; cp_async = true }

let all = [ tvm; tvm_db; alcop_no_ml_ms; alcop_no_ml; alcop ]

(* Register cost of prefetching without cp.async: the tile of one pipeline
   stage in flight lives in registers between its global load and its
   shared-memory store. *)
let extra_regs (v : t) (spec : Op_spec.t) (p : Alcop_perfmodel.Params.t) =
  if v.cp_async || p.Alcop_perfmodel.Params.smem_stages < 2 then 0
  else begin
    let tiling = p.Alcop_perfmodel.Params.tiling in
    let elem_bytes = Alcop_ir.Dtype.size_bytes spec.Op_spec.dtype in
    let tile_bytes = Tiling.smem_tile_bytes tiling elem_bytes in
    let threads = Tiling.warps tiling * 32 in
    (tile_bytes / threads / 4) + 2
  end

let space (v : t) (spec : Op_spec.t) =
  Alcop_tune.Space.enumerate ~restriction:v.restriction spec

(* All variants evaluate through the shared per-hardware [Session]: their
   schedule spaces are nested subsets of each other (Space restrictions),
   so in a five-variant sweep most points after the first variant are cache
   hits. The extra-register term is part of the fingerprint, which keeps
   cp.async and register-prefetch compilations distinct. *)
let evaluator ?(hw = Alcop_hw.Hw_config.default) ?session (v : t)
    (spec : Op_spec.t) =
  let session =
    match session with Some s -> s | None -> Session.for_hw hw
  in
  Session.evaluator session ~extra_regs:(extra_regs v spec) spec

(* Best simulated latency of a compiler variant on one operator under
   exhaustive schedule search; [None] if nothing in the space launches.
   [pool] fans the exhaustive sweep across worker domains. *)
let best_latency ?(hw = Alcop_hw.Hw_config.default) ?pool (v : t)
    (spec : Op_spec.t) =
  let space = space v spec in
  let evaluate = evaluator ~hw v spec in
  let result = Alcop_tune.Tuner.exhaustive ?pool ~space ~evaluate () in
  Alcop_tune.Tuner.best result

(* Like [best_latency] but also returns the winning schedule point. *)
let best_point ?(hw = Alcop_hw.Hw_config.default) (v : t) (spec : Op_spec.t) =
  let space = space v spec in
  let evaluate = evaluator ~hw v spec in
  let result = Alcop_tune.Tuner.exhaustive ~space ~evaluate () in
  Array.fold_left
    (fun acc (t : Alcop_tune.Tuner.trial) ->
      match t.Alcop_tune.Tuner.cost, acc with
      | Some c, Some (_, best) when c >= best -> acc
      | Some c, _ -> Some (t.Alcop_tune.Tuner.params, c)
      | None, _ -> acc)
    None result.Alcop_tune.Tuner.trials
