(* End-to-end model evaluation (paper Sec. V-B, Table III).

   A model's inference latency is the sum of its tensor-contraction
   operator latencies under a given compiler, plus a fixed non-optimized
   remainder identical across compilers (softmax, normalization,
   activations, pooling — operators pipelining does not apply to). The
   remainder is sized from the model's [overhead_fraction] of the TVM
   baseline, matching profiler splits.

   All per-operator latencies route through the shared per-hardware
   [Session] (via [Variants.best_latency] and [Xla_like.latency]): models
   share operators (e.g. the BERT matmuls appear in several models), so
   after the first model most lookups are cache hits. *)

open Alcop_workloads

type report = {
  model : string;
  tvm_cycles : float;
  xla_cycles : float;
  alcop_cycles : float;
  speedup_over_tvm : float;
  speedup_over_xla : float;
}

let sum_ops ~per_op (m : Models.t) =
  List.fold_left
    (fun acc (spec, count) ->
      match per_op spec with
      | Some c -> acc +. (float_of_int count *. c)
      | None ->
        invalid_arg
          (Printf.sprintf "E2e: no compilable schedule for %s"
             spec.Alcop_sched.Op_spec.name))
    0.0 m.Models.ops

let evaluate ?(hw = Alcop_hw.Hw_config.default) (m : Models.t) =
  let tvm_gemm = sum_ops ~per_op:(Variants.best_latency ~hw Variants.tvm) m in
  let alcop_gemm =
    sum_ops ~per_op:(Variants.best_latency ~hw Variants.alcop) m
  in
  let xla_gemm = sum_ops ~per_op:(Xla_like.latency ~hw) m in
  (* overhead_fraction f of the TVM end-to-end latency is remainder:
     remainder = f / (1 - f) * tvm_gemm. *)
  let f = m.Models.overhead_fraction in
  let remainder = f /. (1.0 -. f) *. tvm_gemm in
  let tvm_cycles = tvm_gemm +. remainder in
  let xla_cycles = xla_gemm +. remainder in
  let alcop_cycles = alcop_gemm +. remainder in
  { model = m.Models.name; tvm_cycles; xla_cycles; alcop_cycles;
    speedup_over_tvm = tvm_cycles /. alcop_cycles;
    speedup_over_xla = xla_cycles /. alcop_cycles }
