(* Evaluation-record (de)serialization for the on-disk store. The JSON is
   versioned independently of the fingerprint schema: the fingerprint
   names *what* was compiled, [version] here names how the record is laid
   out on disk. Any mismatch or malformed field parses to [None]. *)

module Json = Alcop_obs.Json
module Timing = Alcop_gpusim.Timing

type record = {
  latency_cycles : float;
  timing : Timing.kernel_timing;
  gauges : (string * float) list;
}

type t =
  | Success of record
  | Failure of {
      kind : string;
      message : string;
    }

let version = 1

let json_of_wave (w : Timing.wave_result) =
  Json.Obj
    [ ("cycles", Json.Float w.Timing.cycles);
      ("compute_busy", Json.Float w.Timing.compute_busy);
      ("dram_busy", Json.Float w.Timing.dram_busy);
      ("llc_busy", Json.Float w.Timing.llc_busy);
      ("smem_busy", Json.Float w.Timing.smem_busy) ]

let json_of_timing (k : Timing.kernel_timing) =
  Json.Obj
    [ ("total_cycles", Json.Float k.Timing.total_cycles);
      ("microseconds", Json.Float k.Timing.microseconds);
      ("n_waves", Json.Int k.Timing.n_waves);
      ("tbs_per_sm", Json.Int k.Timing.tbs_per_sm);
      ("occupancy_limiter", Json.Str k.Timing.occupancy_limiter);
      ("wave_cycles", Json.Float k.Timing.wave_cycles);
      ("tail_cycles", Json.Float k.Timing.tail_cycles);
      ("miss_rate", Json.Float k.Timing.miss_rate);
      ("compute_utilization", Json.Float k.Timing.compute_utilization);
      ("wave_busy",
       match k.Timing.wave_busy with
       | None -> Json.Null
       | Some w -> json_of_wave w) ]

let to_string t =
  let doc =
    match t with
    | Success r ->
      Json.Obj
        [ ("v", Json.Int version);
          ("ok", Json.Bool true);
          ("latency_cycles", Json.Float r.latency_cycles);
          ("timing", json_of_timing r.timing);
          ("gauges",
           Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) r.gauges)) ]
    | Failure { kind; message } ->
      Json.Obj
        [ ("v", Json.Int version);
          ("ok", Json.Bool false);
          ("kind", Json.Str kind);
          ("message", Json.Str message) ]
  in
  Json.to_string doc

(* Decoding combinators over [option]: any absent or mistyped field
   collapses the whole parse to [None]. *)

let ( let* ) = Option.bind

let num name doc = Option.bind (Json.member name doc) Json.number

let int_field name doc =
  match Json.member name doc with Some (Json.Int i) -> Some i | _ -> None

let str_field name doc =
  match Json.member name doc with Some (Json.Str s) -> Some s | _ -> None

let wave_of_json doc =
  let* cycles = num "cycles" doc in
  let* compute_busy = num "compute_busy" doc in
  let* dram_busy = num "dram_busy" doc in
  let* llc_busy = num "llc_busy" doc in
  let* smem_busy = num "smem_busy" doc in
  Some { Timing.cycles; compute_busy; dram_busy; llc_busy; smem_busy }

let timing_of_json doc =
  let* total_cycles = num "total_cycles" doc in
  let* microseconds = num "microseconds" doc in
  let* n_waves = int_field "n_waves" doc in
  let* tbs_per_sm = int_field "tbs_per_sm" doc in
  let* occupancy_limiter = str_field "occupancy_limiter" doc in
  let* wave_cycles = num "wave_cycles" doc in
  let* tail_cycles = num "tail_cycles" doc in
  let* miss_rate = num "miss_rate" doc in
  let* compute_utilization = num "compute_utilization" doc in
  let* wave_busy =
    match Json.member "wave_busy" doc with
    | Some Json.Null -> Some None
    | Some (Json.Obj _ as w) ->
      (match wave_of_json w with Some w -> Some (Some w) | None -> None)
    | _ -> None
  in
  Some
    { Timing.total_cycles; microseconds; n_waves; tbs_per_sm;
      occupancy_limiter; wave_cycles; tail_cycles; miss_rate;
      compute_utilization; wave_busy }

let gauges_of_json doc =
  match Json.member "gauges" doc with
  | Some (Json.Obj fields) ->
    List.fold_left
      (fun acc (name, v) ->
        let* acc = acc in
        let* v = Json.number v in
        Some ((name, v) :: acc))
      (Some []) fields
    |> Option.map List.rev
  | _ -> None

let of_string data =
  match Json.of_string data with
  | Error _ -> None
  | Ok doc ->
    let* v = int_field "v" doc in
    if v <> version then None
    else begin
      match Json.member "ok" doc with
      | Some (Json.Bool true) ->
        let* latency_cycles = num "latency_cycles" doc in
        let* timing =
          Option.bind (Json.member "timing" doc) timing_of_json
        in
        let* gauges = gauges_of_json doc in
        Some (Success { latency_cycles; timing; gauges })
      | Some (Json.Bool false) ->
        let* kind = str_field "kind" doc in
        let* message = str_field "message" doc in
        Some (Failure { kind; message })
      | _ -> None
    end
