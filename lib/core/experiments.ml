(* Experiment drivers: one function per table / figure of the paper's
   evaluation section. Each returns structured data; the bench executable
   formats it. See DESIGN.md's experiment index and EXPERIMENTS.md for the
   paper-versus-measured record. *)

open Alcop_sched
open Alcop_workloads

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
         /. float_of_int (List.length xs))

(* Best-latency results are shared across experiments (fig10, fig11,
   table3 all need the same tuned points). The per-point artifacts are
   memoized in the shared [Session], so repeating a variant's exhaustive
   search costs a cache lookup per point instead of a compile+simulate —
   no second memoization layer needed here. *)
let best_latency ?(hw = Alcop_hw.Hw_config.default) (v : Variants.t) spec =
  Variants.best_latency ~hw v spec

(* Fan a per-operator experiment body across the pool, one task per suite
   entry. The inner work (variant sweeps, tuner runs) stays sequential —
   pools must not nest — and results come back in suite order, so the
   figure is identical to the sequential run. *)
let suite_map pool f suite =
  match pool with
  | Some p -> Alcop_par.Pool.map p f suite
  | None -> List.map f suite

let tflops ?(hw = Alcop_hw.Hw_config.default) spec cycles =
  float_of_int (Op_spec.flops spec)
  /. (cycles /. hw.Alcop_hw.Hw_config.clock_ghz)  (* cycles -> ns *)
  /. 1000.0

(* ------------------------------------------------------------------ *)
(* E1 — Fig. 1(b): the motivating example. 2048^3 MatMul across
   threadblock tiles, with and without pipelining. *)

type fig1b_row = {
  tile : string;
  tb_count : int;
  tflops_tiling_only : float option;
  tflops_pipelined : float option;
}

let fig1b ?(hw = Alcop_hw.Hw_config.default) () =
  let spec = Suites.motivating in
  let evaluate = Session.evaluator (Session.for_hw hw) spec in
  let tile_of tb_m tb_n tb_k =
    (* warp tiles capped at 64: a 64x128 warp accumulator alone exceeds the
       255-registers-per-thread budget. *)
    Tiling.make ~tb_m ~tb_n ~tb_k
      ~warp_m:(min 64 (max 16 (tb_m / 2)))
      ~warp_n:(min 64 (max 16 (tb_n / 2)))
      ~warp_k:16 ()
  in
  List.map
    (fun (tb_m, tb_n, tb_k) ->
      let tiling = tile_of tb_m tb_n tb_k in
      let run ~smem_stages ~reg_stages =
        match
          evaluate
            (Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ())
        with
        | Some c -> Some (tflops ~hw spec c)
        | None -> None
      in
      { tile = Printf.sprintf "%dx%dx%d" tb_m tb_n tb_k;
        tb_count = Tiling.threadblocks tiling spec;
        tflops_tiling_only = run ~smem_stages:1 ~reg_stages:1;
        tflops_pipelined = run ~smem_stages:3 ~reg_stages:2 })
    [ (32, 32, 32); (64, 64, 32); (64, 128, 32); (128, 128, 32);
      (128, 256, 32); (256, 128, 32); (256, 256, 32) ]

(* ------------------------------------------------------------------ *)
(* E2 — Fig. 10: single-operator performance of the five compilers,
   normalized to TVM, under exhaustive schedule search. *)

type fig10_row = {
  op : string;
  speedups : (string * float) list;  (** variant name -> speedup over TVM *)
}

type fig10_result = {
  rows : fig10_row list;
  geomeans : (string * float) list;
}

let fig10 ?(hw = Alcop_hw.Hw_config.default) ?pool ?(suite = Suites.fig10) () =
  let rows =
    suite_map pool
      (fun spec ->
        let tvm =
          match best_latency ~hw Variants.tvm spec with
          | Some c -> c
          | None -> invalid_arg ("no TVM schedule for " ^ spec.Op_spec.name)
        in
        let speedups =
          List.map
            (fun v ->
              match best_latency ~hw v spec with
              | Some c -> (v.Variants.name, tvm /. c)
              | None -> (v.Variants.name, nan))
            Variants.all
        in
        { op = spec.Op_spec.name; speedups })
      suite
  in
  let geomeans =
    List.map
      (fun v ->
        ( v.Variants.name,
          geomean
            (List.map (fun r -> List.assoc v.Variants.name r.speedups) rows) ))
      Variants.all
  in
  { rows; geomeans }

(* ------------------------------------------------------------------ *)
(* E3 — Table III: end-to-end model speedups. *)

let table3 ?(hw = Alcop_hw.Hw_config.default) () =
  List.map (E2e.evaluate ~hw) Models.all

(* ------------------------------------------------------------------ *)
(* E4 — Fig. 11: ALCOP versus library kernels. *)

type fig11_row = {
  op11 : string;
  normalized_to_library : float option;
      (** library latency / ALCOP latency; > 1 means ALCOP wins *)
}

let fig11 ?(hw = Alcop_hw.Hw_config.default) ?(suite = Suites.fig10) () =
  List.map
    (fun spec ->
      let alcop = best_latency ~hw Variants.alcop spec in
      let lib = Library_oracle.best_latency ~hw spec in
      { op11 = spec.Op_spec.name;
        normalized_to_library =
          (match alcop, lib with
           | Some a, Some l -> Some (l /. a)
           | _ -> None) })
    suite

(* ------------------------------------------------------------------ *)
(* E5 — Fig. 12: best-in-top-k accuracy of the analytical model versus
   the bottleneck-based baseline, normalized to exhaustive search. *)

type fig12_row = {
  op12 : string;
  ours_top : (int * float option) list;        (** k -> normalized best *)
  bottleneck_top : (int * float option) list;
}

(* [ranked] lists the *measured* cost of each schedule in model-predicted
   order; [None] entries are schedules that failed to compile. Returns the
   normalized best within the top k, or [None] when all k failed (the
   paper's "compile fail" marker). *)
let best_in_top_k ~k ~ranked ~measured_best =
  let top = List.filteri (fun i _ -> i < k) ranked in
  let best =
    List.fold_left
      (fun acc cost ->
        match cost, acc with
        | Some c, Some b when c >= b -> acc
        | Some c, _ -> Some c
        | None, _ -> acc)
      None top
  in
  Option.map (fun b -> measured_best /. b) best

let fig12 ?(hw = Alcop_hw.Hw_config.default) ?pool ?(suite = Suites.fig10)
    ?(ks = [ 10; 50 ]) () =
  suite_map pool
    (fun spec ->
      let space = Variants.space Variants.alcop spec in
      let evaluate = Variants.evaluator ~hw Variants.alcop spec in
      let measured = Array.map evaluate space in
      let measured_best =
        Array.fold_left
          (fun acc c ->
            match c, acc with
            | Some c, Some b when c >= b -> acc
            | Some c, _ -> Some c
            | None, _ -> acc)
          None measured
      in
      let measured_best = Option.get measured_best in
      let rank predict =
        let scored = ref [] in
        Array.iteri
          (fun i p ->
            match predict p with
            | Some pred -> scored := (pred, measured.(i)) :: !scored
            | None -> ())
          space;
        List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !scored)
      in
      let ranked_ours =
        rank (fun p -> Alcop_perfmodel.Model.predict_cycles hw spec p)
      in
      let ranked_bottleneck =
        rank (fun p -> Alcop_perfmodel.Bottleneck.predict_cycles hw spec p)
      in
      (* One prefix-minimum pass per ranking serves every k, instead of
         re-scanning the top k for each k ([best_in_top_k] is O(n·k)). *)
      let tops ranked =
        let pb = Alcop_tune.Tuner.prefix_best_costs (Array.of_list ranked) in
        let n = Array.length pb in
        List.map
          (fun k ->
            ( k,
              if n = 0 || k <= 0 then None
              else
                Option.map (fun b -> measured_best /. b) pb.(min k n - 1) ))
          ks
      in
      { op12 = spec.Op_spec.name;
        ours_top = tops ranked_ours;
        bottleneck_top = tops ranked_bottleneck })
    suite

(* ------------------------------------------------------------------ *)
(* E6 — Fig. 13: search efficiency of the four tuning methods. *)

type fig13_row = {
  op13 : string;
  per_method : (string * (int * float option) list) list;
      (** method -> budget -> best-in-budget normalized to exhaustive *)
}

let fig13 ?(hw = Alcop_hw.Hw_config.default) ?pool ?(suite = Suites.fig10)
    ?(budgets = [ 10; 50 ]) ?(seed = 2023) () =
  let max_budget = List.fold_left max 1 budgets in
  suite_map pool
    (fun spec ->
      let space = Variants.space Variants.alcop spec in
      let evaluate = Variants.evaluator ~hw Variants.alcop spec in
      let exhaustive = Alcop_tune.Tuner.exhaustive ~space ~evaluate () in
      let best = Option.get (Alcop_tune.Tuner.best exhaustive) in
      let per_method =
        List.map
          (fun m ->
            let result =
              Alcop_tune.Tuner.run ~hw ~spec ~space ~evaluate
                ~budget:max_budget ~seed m
            in
            (* One prefix-minimum pass serves every budget. *)
            let pb = Alcop_tune.Tuner.prefix_best result in
            let n = Array.length pb in
            ( Alcop_tune.Tuner.method_to_string m,
              List.map
                (fun b ->
                  ( b,
                    if n = 0 || b <= 0 then None
                    else Option.map (fun c -> best /. c) pb.(min b n - 1) ))
                budgets ))
          [ Alcop_tune.Tuner.Grid; Alcop_tune.Tuner.Xgb;
            Alcop_tune.Tuner.Analytical_only; Alcop_tune.Tuner.Analytical_xgb ]
      in
      { op13 = spec.Op_spec.name; per_method })
    suite

(* ------------------------------------------------------------------ *)
(* E7 — Table I in action: per-component analytical prediction next to the
   simulator's measurement for the tuned best schedule of each operator. *)

type table1_row = {
  op1 : string;
  predicted_cycles : float;
  simulated_cycles : float;
  rel_error : float;
  smem_bound : bool;
}

let table1 ?(hw = Alcop_hw.Hw_config.default) ?(suite = Suites.fig10) () =
  List.filter_map
    (fun spec ->
      match Variants.best_point ~hw Variants.alcop spec with
      | None -> None
      | Some (params, simulated) ->
        (match Alcop_perfmodel.Model.predict hw spec params with
         | Error _ -> None
         | Ok pred ->
           Some
             { op1 = spec.Op_spec.name;
               predicted_cycles = pred.Alcop_perfmodel.Model.cycles;
               simulated_cycles = simulated;
               rel_error =
                 Float.abs (pred.Alcop_perfmodel.Model.cycles -. simulated)
                 /. simulated;
               smem_bound = pred.Alcop_perfmodel.Model.smem_bound }))
    suite

(* ------------------------------------------------------------------ *)
(* E8 — Figs. 2 and 3 quantified: stage-count sweep and the multi-level /
   inner-fusion ablation on one operator at a fixed tiling. *)

type fig23_row = {
  label : string;
  cycles : float option;
  speedup_over_unpipelined : float option;
}

let fig23 ?(hw = Alcop_hw.Hw_config.default)
    ?(spec = Suites.mm_rn50_fc) () =
  let tiling =
    Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32 ~warp_k:16 ()
  in
  let evaluate = Session.evaluator (Session.for_hw hw) spec in
  let run label ?(inner_fuse = true) ?(swizzle = true) ~smem_stages
      ~reg_stages () =
    ( label,
      evaluate
        (Alcop_perfmodel.Params.make ~swizzle ~inner_fuse ~tiling ~smem_stages
           ~reg_stages ()) )
  in
  let configs =
    [ run "no pipelining (Fig 2a baseline)" ~smem_stages:1 ~reg_stages:1 ();
      run "2-stage smem (double buffering, Fig 2a)" ~smem_stages:2 ~reg_stages:1 ();
      run "3-stage smem (Fig 2b)" ~smem_stages:3 ~reg_stages:1 ();
      run "4-stage smem (Fig 2b)" ~smem_stages:4 ~reg_stages:1 ();
      run "single-level smem only (Fig 3b)" ~smem_stages:3 ~reg_stages:1 ();
      run "multi-level, no inner fusion (Fig 3c)" ~inner_fuse:false
        ~smem_stages:3 ~reg_stages:2 ();
      run "multi-level, inner fusion (Fig 3d)" ~smem_stages:3 ~reg_stages:2 ();
      run "full pipeline without smem swizzling" ~swizzle:false ~smem_stages:3
        ~reg_stages:2 () ]
  in
  let base = snd (List.hd configs) in
  List.map
    (fun (label, cycles) ->
      { label; cycles;
        speedup_over_unpipelined =
          (match base, cycles with
           | Some b, Some c -> Some (b /. c)
           | _ -> None) })
    configs

(* ------------------------------------------------------------------ *)
(* E9 (extension) — hardware scaling: how much pipelining matters as the
   compute-to-bandwidth ratio grows. The paper's introduction argues that
   "as the difficulty of capitalizing on the ever-growing parallelism in
   current and future GPUs increases, the study of pipelining becomes
   essential": we scale the simulated machine's tensor-core throughput at
   fixed memory bandwidth (the historical trend from V100 through H100)
   and report ALCOP's advantage over the unpipelined baseline. *)

type scaling_row = {
  compute_scale : float;
  peak_tflops : float;
  mean_speedup : float;  (** geomean ALCOP/TVM over the subset *)
}

let scaling ?(hw = Alcop_hw.Hw_config.default)
    ?(subset = [ Suites.mm_rn50_fc; Suites.mm_bert_fc2; Suites.conv_vgg_3x3 ])
    ?(scales = [ 0.5; 1.0; 2.0; 4.0 ]) () =
  List.map
    (fun scale ->
      let hw' =
        { hw with
          Alcop_hw.Hw_config.name =
            Printf.sprintf "%s-x%.1f" hw.Alcop_hw.Hw_config.name scale;
          tensor_core_flops_per_cycle =
            int_of_float
              (float_of_int hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle
               *. scale) }
      in
      let speedups =
        List.map
          (fun spec ->
            let tvm =
              Option.get (Variants.best_latency ~hw:hw' Variants.tvm spec)
            in
            let alcop =
              Option.get (Variants.best_latency ~hw:hw' Variants.alcop spec)
            in
            tvm /. alcop)
          subset
      in
      { compute_scale = scale;
        peak_tflops = Alcop_hw.Hw_config.peak_tensor_tflops hw';
        mean_speedup = geomean speedups })
    scales

(* Cross-generation comparison: the same compiler on a pre-Ampere machine.
   Without cp.async, rule 1 rejects shared-memory pipelining, ALCOP's space
   degrades to register-only software pipelining, and the advantage over
   the unpipelined baseline shrinks — why the paper evaluates on Ampere. *)

type generation_row = {
  machine : string;
  gen_speedup : float;  (** geomean ALCOP/TVM over the subset *)
}

let generations
    ?(subset = [ Suites.mm_rn50_fc; Suites.mm_bert_fc2; Suites.conv_vgg_3x3 ])
    () =
  List.map
    (fun hw ->
      let speedups =
        List.map
          (fun spec ->
            let tvm = Option.get (Variants.best_latency ~hw Variants.tvm spec) in
            let alcop =
              Option.get (Variants.best_latency ~hw Variants.alcop spec)
            in
            tvm /. alcop)
          subset
      in
      { machine = hw.Alcop_hw.Hw_config.name; gen_speedup = geomean speedups })
    [ Alcop_hw.Hw_config.volta_v100; Alcop_hw.Hw_config.ampere_a100 ]

(* ------------------------------------------------------------------ *)
(* CSV shapes of the headline figures: (header, rows) pairs shared by the
   bench CSV export and the HTML report's recompute fallback, so
   results/*.csv and a standalone report agree cell for cell. *)

let csv_opt = function Some v -> Printf.sprintf "%.6f" v | None -> ""

let fig10_csv (r : fig10_result) =
  ( "operator" :: List.map (fun v -> v.Variants.name) Variants.all,
    List.map
      (fun row ->
        row.op
        :: List.map (fun (_, s) -> Printf.sprintf "%.6f" s) row.speedups)
      r.rows )

let fig12_csv rows =
  ( [ "operator"; "ours_at_10"; "ours_at_50"; "bottleneck_at_10";
      "bottleneck_at_50" ],
    List.map
      (fun r ->
        let cell l k = csv_opt (Option.join (List.assoc_opt k l)) in
        [ r.op12; cell r.ours_top 10; cell r.ours_top 50;
          cell r.bottleneck_top 10; cell r.bottleneck_top 50 ])
      rows )

let fig13_csv rows =
  ( [ "operator"; "method"; "budget"; "best_in_budget" ],
    List.concat_map
      (fun r ->
        List.concat_map
          (fun (m, budgets) ->
            List.map
              (fun (b, v) -> [ r.op13; m; string_of_int b; csv_opt v ])
              budgets)
          r.per_method)
      rows )
