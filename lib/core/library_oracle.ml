(* Library-kernel stand-in (paper Sec. V-C, Fig. 11).

   cuBLAS/cuDNN ship a fixed family of hand-written kernel templates, each
   heavily hand-optimized; dispatch picks the best template for a shape.
   We model this as a fixed template set (CUTLASS-like tile/stage
   combinations) compiled through the same pipeline, with a hand-tuning
   efficiency factor on top — experts squeeze out instruction scheduling
   and swizzling headroom no compiler reaches. Shapes outside the template
   sweet spot (e.g. odd attention GEMMs) leave the library with few viable
   templates, which is when a searching compiler can win. *)

open Alcop_sched

let expert_factor = 0.90

(* (tb_m, tb_n, tb_k, warp_m, warp_n, warp_k, smem_stages, reg_stages) —
   roughly the CUTLASS kernel zoo: large square tiles for big GEMMs, skinny
   and small-tile kernels for attention and tail shapes. *)
let templates = [
  (256, 128, 32, 64, 64, 16, 3, 2);
  (128, 256, 32, 64, 64, 16, 3, 2);
  (128, 128, 32, 64, 64, 16, 3, 2);
  (128, 128, 64, 64, 64, 32, 3, 2);
  (128, 64, 32, 64, 32, 16, 4, 2);
  (128, 64, 64, 64, 32, 32, 3, 2);
  (64, 128, 32, 32, 64, 16, 4, 2);
  (64, 64, 64, 32, 32, 32, 4, 2);
  (64, 64, 32, 32, 32, 16, 4, 2);
  (64, 64, 32, 32, 32, 16, 2, 2);
  (64, 32, 32, 32, 16, 16, 4, 2);
  (32, 64, 64, 16, 32, 32, 4, 2);
  (32, 32, 64, 16, 16, 32, 4, 2);
  (16, 128, 64, 16, 64, 32, 3, 2);
  (16, 64, 64, 16, 32, 32, 3, 2);
  (16, 32, 64, 16, 16, 32, 4, 2);
]

let template_points (spec : Op_spec.t) =
  List.filter_map
    (fun (tb_m, tb_n, tb_k, warp_m, warp_n, warp_k, smem_stages, reg_stages) ->
      let tiling = Tiling.make ~tb_m ~tb_n ~tb_k ~warp_m ~warp_n ~warp_k () in
      match Tiling.validate tiling spec with
      | Ok () ->
        Some (Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ())
      | Error _ -> None)
    templates

(* Best library latency for an operator: best template, times the expert
   factor. [None] when no template fits the shape at all. *)
let best_latency ?(hw = Alcop_hw.Hw_config.default) (spec : Op_spec.t) =
  let evaluate = Session.evaluator (Session.for_hw hw) spec in
  let best =
    List.fold_left
      (fun acc p ->
        match evaluate p, acc with
        | Some c, Some b when c >= b -> acc
        | Some c, _ -> Some c
        | None, _ -> acc)
      None (template_points spec)
  in
  Option.map (fun c -> c *. expert_factor) best
