(* The pass manager: compile phases as first-class, instrumented passes.
   See the interface for the contract. *)

module Obs = Alcop_obs.Obs

type info = {
  name : string;
  title : string;
  produces_ir : bool;
}

let pipeline =
  [ { name = "schedule"; produces_ir = false;
      title = "construct the GEMM schedule (tiling, pipelining hints)" };
    { name = "lower"; produces_ir = true;
      title = "lower the schedule to the canonical tensor-core loop nest" };
    { name = "pipeline"; produces_ir = true;
      title = "multi-stage multi-level pipelining transformation" };
    { name = "trace"; produces_ir = false;
      title = "extract the representative threadblock event trace" };
    { name = "timing"; produces_ir = false;
      title = "event-driven timing simulation" } ]

let find name = List.find_opt (fun p -> String.equal p.name name) pipeline

let names = List.map (fun p -> p.name) pipeline

let ir_pass_names =
  List.filter_map (fun p -> if p.produces_ir then Some p.name else None)
    pipeline

(* --- IR dump hook --- *)

let dump_hook : (string * (string -> Alcop_ir.Kernel.t -> unit)) option ref =
  ref None

let set_dump ~after f =
  match find after with
  | Some { produces_ir = true; _ } ->
    dump_hook := Some (after, f);
    Ok ()
  | Some { produces_ir = false; _ } ->
    Error
      (Printf.sprintf "pass %s produces no IR to dump (IR passes: %s)" after
         (String.concat ", " ir_pass_names))
  | None ->
    Error
      (Printf.sprintf "unknown pass %s (passes: %s)" after
         (String.concat ", " names))

let clear_dump () = dump_hook := None

(* --- post-pass validation --- *)

let validate_flag = ref false
let set_validate_ir v = validate_flag := v
let validate_ir () = !validate_flag

(* --- running one pass --- *)

let check_ir name kernel =
  match Alcop_ir.Validate.check kernel with
  | Ok () -> ()
  | Error errors ->
    Obs.count ("pass." ^ name ^ ".validate_fail");
    raise (Alcop_ir.Validate.Invalid errors)

let run ~name ?ir_of f =
  (* Host-profile allocation sampling is independent of [Obs.enabled]:
     it writes per-domain shards, not the Obs tables, so turning it on
     never changes the telemetry stream (doc/hostprof.md). *)
  let f =
    if Alcop_obs.Hostprof.on () then
      fun () -> Alcop_obs.Hostprof.pass_sample name f
    else f
  in
  let result =
    if not (Obs.enabled ()) then f ()
    else
      Obs.with_span ("compile." ^ name) @@ fun () ->
      let t0 = Obs.now () in
      let r = f () in
      let ms = 1e3 *. (Obs.now () -. t0) in
      Obs.gauge ("pass." ^ name ^ ".ms") ms;
      (* the gauge keeps only the latest run; the histogram keeps the
         distribution across a session's many compiles *)
      Obs.observe ("pass." ^ name ^ ".ms") ms;
      Obs.count ("pass." ^ name ^ ".runs");
      r
  in
  (match ir_of with
   | None -> ()
   | Some extract ->
     (match extract result with
      | None -> ()
      | Some kernel ->
        if !validate_flag then check_ir name kernel;
        (match !dump_hook with
         | Some (after, dump) when String.equal after name -> dump name kernel
         | Some _ | None -> ())));
  result
