(** The compilers compared in the paper's evaluation (Sec. V-A): TVM,
    TVM with manual double-buffering, ALCOP without multi-level and/or
    multi-stage pipelining, and full ALCOP. All search the same tiling
    space; they differ in the pipeline depths available and in whether
    prefetching uses cp.async. *)

open Alcop_sched

type t = {
  name : string;
  restriction : Alcop_tune.Space.restriction;
  cp_async : bool;
}

val tvm : t
val tvm_db : t
val alcop_no_ml_ms : t
val alcop_no_ml : t
val alcop : t
val all : t list

val extra_regs : t -> Op_spec.t -> Alcop_perfmodel.Params.t -> int
(** Register cost of prefetching without cp.async: the in-flight tile lives
    in registers between global load and shared store. *)

val space : t -> Op_spec.t -> Alcop_perfmodel.Params.t array

val evaluator :
  ?hw:Alcop_hw.Hw_config.t -> ?session:Session.t -> t -> Op_spec.t ->
  Alcop_perfmodel.Params.t -> float option
(** Measurement function routed through the compile cache: the shared
    per-hardware session by default, or an explicit [session] (e.g. a
    pass-through one for [--no-cache]). *)

val best_latency :
  ?hw:Alcop_hw.Hw_config.t -> ?pool:Alcop_par.Pool.t -> t -> Op_spec.t ->
  float option
(** Best simulated latency under exhaustive schedule search (the paper's
    evaluation protocol); [None] if nothing in the space launches.
    [pool] fans the sweep across worker domains (bit-identical result). *)

val best_point :
  ?hw:Alcop_hw.Hw_config.t -> t -> Op_spec.t ->
  (Alcop_perfmodel.Params.t * float) option
