(* Content-addressed fingerprints of compilation inputs.

   The canonical form is a JSON document rendered by the in-repo emitter:
   object fields in a fixed order, floats in the shortest round-tripping
   representation (Json.float_repr), strings escaped one way. MD5 of that
   text is the fingerprint. Everything [Compiler.compile] reads must appear
   here — adding a schedule knob or a hardware parameter without extending
   the canonical form would silently alias distinct compilations.

   Two renderers produce that canonical text:
   - [json_of_hw] / [json_of_spec] / [json_of_params] build the Json tree;
     they are the specification, exposed so tests can pin the form;
   - [compile_key] emits the same bytes directly into a domain-local
     scratch buffer, skipping the tree. The session cache computes a key
     per compile, so the hot path should not allocate a throwaway document.
     A test digests both renderings and asserts they agree. *)

open Alcop_sched
module Json = Alcop_obs.Json

type t = Digest.t

let to_hex = Digest.to_hex
let equal = Digest.equal
let compare = Digest.compare

(* Floats go through the JSON tree, whose serializer uses the shortest
   round-trip form: equal doubles yield equal text, distinct doubles
   distinct text (float_repr falls back to "%.17g", which is exact). *)
let f x = Json.Float x
let i x = Json.Int x
let s x = Json.Str x
let b x = Json.Bool x
let opt_s = function Some x -> Json.Str x | None -> Json.Null

let json_of_hw (hw : Alcop_hw.Hw_config.t) =
  let scopes l =
    Json.List (List.map (fun sc -> s (Alcop_ir.Buffer.scope_to_string sc)) l)
  in
  Json.Obj
    [ ("name", s hw.Alcop_hw.Hw_config.name);
      ("num_sms", i hw.Alcop_hw.Hw_config.num_sms);
      ("clock_ghz", f hw.Alcop_hw.Hw_config.clock_ghz);
      ("tensor_core_flops_per_cycle",
       i hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle);
      ("cuda_core_flops_per_cycle",
       i hw.Alcop_hw.Hw_config.cuda_core_flops_per_cycle);
      ("smem_bytes_per_sm", i hw.Alcop_hw.Hw_config.smem_bytes_per_sm);
      ("smem_bytes_per_tb_max", i hw.Alcop_hw.Hw_config.smem_bytes_per_tb_max);
      ("registers_per_sm", i hw.Alcop_hw.Hw_config.registers_per_sm);
      ("registers_per_thread_max",
       i hw.Alcop_hw.Hw_config.registers_per_thread_max);
      ("max_threads_per_sm", i hw.Alcop_hw.Hw_config.max_threads_per_sm);
      ("max_tbs_per_sm", i hw.Alcop_hw.Hw_config.max_tbs_per_sm);
      ("threads_per_warp", i hw.Alcop_hw.Hw_config.threads_per_warp);
      ("llc_bytes", i hw.Alcop_hw.Hw_config.llc_bytes);
      ("dram_bytes_per_cycle", f hw.Alcop_hw.Hw_config.dram_bytes_per_cycle);
      ("llc_bytes_per_cycle", f hw.Alcop_hw.Hw_config.llc_bytes_per_cycle);
      ("smem_bytes_per_cycle_per_sm",
       f hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm);
      ("dram_latency", f hw.Alcop_hw.Hw_config.dram_latency);
      ("llc_latency", f hw.Alcop_hw.Hw_config.llc_latency);
      ("smem_latency", f hw.Alcop_hw.Hw_config.smem_latency);
      ("dram_write_latency", f hw.Alcop_hw.Hw_config.dram_write_latency);
      ("async_scopes", scopes hw.Alcop_hw.Hw_config.async_scopes);
      ("scope_synchronized", scopes hw.Alcop_hw.Hw_config.scope_synchronized) ]

let json_of_spec (spec : Op_spec.t) =
  let kind =
    match spec.Op_spec.kind with
    | Op_spec.Matmul -> s "matmul"
    | Op_spec.Batched_matmul -> s "batched_matmul"
    | Op_spec.Conv2d c ->
      Json.Obj
        [ ("conv2d",
           Json.List
             (List.map i
                [ c.Op_spec.cn; c.Op_spec.ci; c.Op_spec.ch; c.Op_spec.cw;
                  c.Op_spec.co; c.Op_spec.ckh; c.Op_spec.ckw;
                  c.Op_spec.stride; c.Op_spec.pad ])) ]
  in
  Json.Obj
    [ ("name", s spec.Op_spec.name);
      ("kind", kind);
      ("batch", i spec.Op_spec.batch);
      ("m", i spec.Op_spec.m);
      ("n", i spec.Op_spec.n);
      ("k", i spec.Op_spec.k);
      ("dtype", s (Alcop_ir.Dtype.to_string spec.Op_spec.dtype));
      ("a_op", opt_s spec.Op_spec.a_op);
      ("b_op", opt_s spec.Op_spec.b_op);
      ("epilogue", opt_s spec.Op_spec.epilogue) ]

let json_of_params (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  Json.Obj
    [ ("tiling",
       Json.List
         (List.map i
            [ t.Tiling.tb_m; t.Tiling.tb_n; t.Tiling.tb_k; t.Tiling.warp_m;
              t.Tiling.warp_n; t.Tiling.warp_k; t.Tiling.split_k ]));
      ("smem_stages", i p.Alcop_perfmodel.Params.smem_stages);
      ("reg_stages", i p.Alcop_perfmodel.Params.reg_stages);
      ("swizzle", b p.Alcop_perfmodel.Params.swizzle);
      ("inner_fuse", b p.Alcop_perfmodel.Params.inner_fuse) ]

let of_json doc = Digest.string (Json.to_string doc)

(* Bump whenever the compiler's semantics — or the *representation* of its
   artifacts — changes: v2 is the packed-program trace datapath, which must
   never be satisfied from entries recorded under the boxed-event one. *)
let schema_version = 2

(* --- direct emission of the canonical text ---

   Byte-for-byte the serialization [Json.to_string] would produce for the
   trees above. Strings here never contain characters the JSON emitter
   escapes, but [estr] applies the same escaping anyway so the equivalence
   is structural, not an accident of today's field contents. *)

let key_buf = Domain.DLS.new_key (fun () -> Buffer.create 1024)

let estr buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* ["name":] — first field of an object emits [{], later ones [,]. *)
let fld buf ~first name =
  Buffer.add_char buf (if first then '{' else ',');
  estr buf name;
  Buffer.add_char buf ':'

let eint buf ~first name v =
  fld buf ~first name;
  Buffer.add_string buf (string_of_int v)

let efloat buf ~first name v =
  fld buf ~first name;
  Buffer.add_string buf (Json.float_repr v)

let ename buf ~first name v =
  fld buf ~first name;
  estr buf v

let ebool buf ~first name v =
  fld buf ~first name;
  Buffer.add_string buf (if v then "true" else "false")

let eopt_s buf ~first name v =
  fld buf ~first name;
  match v with None -> Buffer.add_string buf "null" | Some x -> estr buf x

let eint_list buf l =
  Buffer.add_char buf '[';
  List.iteri
    (fun k v ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    l;
  Buffer.add_char buf ']'

let emit_hw buf (hw : Alcop_hw.Hw_config.t) =
  let scopes name ~first l =
    fld buf ~first name;
    Buffer.add_char buf '[';
    List.iteri
      (fun k sc ->
        if k > 0 then Buffer.add_char buf ',';
        estr buf (Alcop_ir.Buffer.scope_to_string sc))
      l;
    Buffer.add_char buf ']'
  in
  ename buf ~first:true "name" hw.Alcop_hw.Hw_config.name;
  eint buf ~first:false "num_sms" hw.Alcop_hw.Hw_config.num_sms;
  efloat buf ~first:false "clock_ghz" hw.Alcop_hw.Hw_config.clock_ghz;
  eint buf ~first:false "tensor_core_flops_per_cycle"
    hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle;
  eint buf ~first:false "cuda_core_flops_per_cycle"
    hw.Alcop_hw.Hw_config.cuda_core_flops_per_cycle;
  eint buf ~first:false "smem_bytes_per_sm"
    hw.Alcop_hw.Hw_config.smem_bytes_per_sm;
  eint buf ~first:false "smem_bytes_per_tb_max"
    hw.Alcop_hw.Hw_config.smem_bytes_per_tb_max;
  eint buf ~first:false "registers_per_sm"
    hw.Alcop_hw.Hw_config.registers_per_sm;
  eint buf ~first:false "registers_per_thread_max"
    hw.Alcop_hw.Hw_config.registers_per_thread_max;
  eint buf ~first:false "max_threads_per_sm"
    hw.Alcop_hw.Hw_config.max_threads_per_sm;
  eint buf ~first:false "max_tbs_per_sm" hw.Alcop_hw.Hw_config.max_tbs_per_sm;
  eint buf ~first:false "threads_per_warp"
    hw.Alcop_hw.Hw_config.threads_per_warp;
  eint buf ~first:false "llc_bytes" hw.Alcop_hw.Hw_config.llc_bytes;
  efloat buf ~first:false "dram_bytes_per_cycle"
    hw.Alcop_hw.Hw_config.dram_bytes_per_cycle;
  efloat buf ~first:false "llc_bytes_per_cycle"
    hw.Alcop_hw.Hw_config.llc_bytes_per_cycle;
  efloat buf ~first:false "smem_bytes_per_cycle_per_sm"
    hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm;
  efloat buf ~first:false "dram_latency" hw.Alcop_hw.Hw_config.dram_latency;
  efloat buf ~first:false "llc_latency" hw.Alcop_hw.Hw_config.llc_latency;
  efloat buf ~first:false "smem_latency" hw.Alcop_hw.Hw_config.smem_latency;
  efloat buf ~first:false "dram_write_latency"
    hw.Alcop_hw.Hw_config.dram_write_latency;
  scopes "async_scopes" ~first:false hw.Alcop_hw.Hw_config.async_scopes;
  scopes "scope_synchronized" ~first:false
    hw.Alcop_hw.Hw_config.scope_synchronized;
  Buffer.add_char buf '}'

let emit_spec buf (spec : Op_spec.t) =
  ename buf ~first:true "name" spec.Op_spec.name;
  fld buf ~first:false "kind";
  (match spec.Op_spec.kind with
   | Op_spec.Matmul -> estr buf "matmul"
   | Op_spec.Batched_matmul -> estr buf "batched_matmul"
   | Op_spec.Conv2d c ->
     fld buf ~first:true "conv2d";
     eint_list buf
       [ c.Op_spec.cn; c.Op_spec.ci; c.Op_spec.ch; c.Op_spec.cw; c.Op_spec.co;
         c.Op_spec.ckh; c.Op_spec.ckw; c.Op_spec.stride; c.Op_spec.pad ];
     Buffer.add_char buf '}');
  eint buf ~first:false "batch" spec.Op_spec.batch;
  eint buf ~first:false "m" spec.Op_spec.m;
  eint buf ~first:false "n" spec.Op_spec.n;
  eint buf ~first:false "k" spec.Op_spec.k;
  ename buf ~first:false "dtype" (Alcop_ir.Dtype.to_string spec.Op_spec.dtype);
  eopt_s buf ~first:false "a_op" spec.Op_spec.a_op;
  eopt_s buf ~first:false "b_op" spec.Op_spec.b_op;
  eopt_s buf ~first:false "epilogue" spec.Op_spec.epilogue;
  Buffer.add_char buf '}'

let emit_params buf (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  fld buf ~first:true "tiling";
  eint_list buf
    [ t.Tiling.tb_m; t.Tiling.tb_n; t.Tiling.tb_k; t.Tiling.warp_m;
      t.Tiling.warp_n; t.Tiling.warp_k; t.Tiling.split_k ];
  eint buf ~first:false "smem_stages" p.Alcop_perfmodel.Params.smem_stages;
  eint buf ~first:false "reg_stages" p.Alcop_perfmodel.Params.reg_stages;
  ebool buf ~first:false "swizzle" p.Alcop_perfmodel.Params.swizzle;
  ebool buf ~first:false "inner_fuse" p.Alcop_perfmodel.Params.inner_fuse;
  Buffer.add_char buf '}'

let compile_key_v ~version ~hw ~extra_regs_per_thread params spec =
  let buf = Domain.DLS.get key_buf in
  Buffer.clear buf;
  eint buf ~first:true "v" version;
  fld buf ~first:false "hw";
  emit_hw buf hw;
  fld buf ~first:false "spec";
  emit_spec buf spec;
  fld buf ~first:false "params";
  emit_params buf params;
  eint buf ~first:false "extra_regs_per_thread" extra_regs_per_thread;
  Buffer.add_char buf '}';
  Digest.string (Buffer.contents buf)

(* The tree-built document the direct emitter above must match, exposed so
   the equivalence test can digest both renderings. *)
let compile_key_doc ~version ~hw ~extra_regs_per_thread params spec =
  Json.Obj
    [ ("v", i version);
      ("hw", json_of_hw hw);
      ("spec", json_of_spec spec);
      ("params", json_of_params params);
      ("extra_regs_per_thread", i extra_regs_per_thread) ]

let compile_key ~hw ~extra_regs_per_thread params spec =
  compile_key_v ~version:schema_version ~hw ~extra_regs_per_thread params spec
