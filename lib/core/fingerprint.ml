(* Content-addressed fingerprints of compilation inputs.

   The canonical form is a JSON document rendered by the in-repo emitter:
   object fields in a fixed order, floats in the shortest round-tripping
   representation (Json.float_repr), strings escaped one way. MD5 of that
   text is the fingerprint. Everything [Compiler.compile] reads must appear
   here — adding a schedule knob or a hardware parameter without extending
   the canonical form would silently alias distinct compilations. *)

open Alcop_sched
module Json = Alcop_obs.Json

type t = Digest.t

let to_hex = Digest.to_hex
let equal = Digest.equal
let compare = Digest.compare

(* Floats go through the JSON tree, whose serializer uses the shortest
   round-trip form: equal doubles yield equal text, distinct doubles
   distinct text (float_repr falls back to "%.17g", which is exact). *)
let f x = Json.Float x
let i x = Json.Int x
let s x = Json.Str x
let b x = Json.Bool x
let opt_s = function Some x -> Json.Str x | None -> Json.Null

let json_of_hw (hw : Alcop_hw.Hw_config.t) =
  let scopes l =
    Json.List (List.map (fun sc -> s (Alcop_ir.Buffer.scope_to_string sc)) l)
  in
  Json.Obj
    [ ("name", s hw.Alcop_hw.Hw_config.name);
      ("num_sms", i hw.Alcop_hw.Hw_config.num_sms);
      ("clock_ghz", f hw.Alcop_hw.Hw_config.clock_ghz);
      ("tensor_core_flops_per_cycle",
       i hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle);
      ("cuda_core_flops_per_cycle",
       i hw.Alcop_hw.Hw_config.cuda_core_flops_per_cycle);
      ("smem_bytes_per_sm", i hw.Alcop_hw.Hw_config.smem_bytes_per_sm);
      ("smem_bytes_per_tb_max", i hw.Alcop_hw.Hw_config.smem_bytes_per_tb_max);
      ("registers_per_sm", i hw.Alcop_hw.Hw_config.registers_per_sm);
      ("registers_per_thread_max",
       i hw.Alcop_hw.Hw_config.registers_per_thread_max);
      ("max_threads_per_sm", i hw.Alcop_hw.Hw_config.max_threads_per_sm);
      ("max_tbs_per_sm", i hw.Alcop_hw.Hw_config.max_tbs_per_sm);
      ("threads_per_warp", i hw.Alcop_hw.Hw_config.threads_per_warp);
      ("llc_bytes", i hw.Alcop_hw.Hw_config.llc_bytes);
      ("dram_bytes_per_cycle", f hw.Alcop_hw.Hw_config.dram_bytes_per_cycle);
      ("llc_bytes_per_cycle", f hw.Alcop_hw.Hw_config.llc_bytes_per_cycle);
      ("smem_bytes_per_cycle_per_sm",
       f hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm);
      ("dram_latency", f hw.Alcop_hw.Hw_config.dram_latency);
      ("llc_latency", f hw.Alcop_hw.Hw_config.llc_latency);
      ("smem_latency", f hw.Alcop_hw.Hw_config.smem_latency);
      ("dram_write_latency", f hw.Alcop_hw.Hw_config.dram_write_latency);
      ("async_scopes", scopes hw.Alcop_hw.Hw_config.async_scopes);
      ("scope_synchronized", scopes hw.Alcop_hw.Hw_config.scope_synchronized) ]

let json_of_spec (spec : Op_spec.t) =
  let kind =
    match spec.Op_spec.kind with
    | Op_spec.Matmul -> s "matmul"
    | Op_spec.Batched_matmul -> s "batched_matmul"
    | Op_spec.Conv2d c ->
      Json.Obj
        [ ("conv2d",
           Json.List
             (List.map i
                [ c.Op_spec.cn; c.Op_spec.ci; c.Op_spec.ch; c.Op_spec.cw;
                  c.Op_spec.co; c.Op_spec.ckh; c.Op_spec.ckw;
                  c.Op_spec.stride; c.Op_spec.pad ])) ]
  in
  Json.Obj
    [ ("name", s spec.Op_spec.name);
      ("kind", kind);
      ("batch", i spec.Op_spec.batch);
      ("m", i spec.Op_spec.m);
      ("n", i spec.Op_spec.n);
      ("k", i spec.Op_spec.k);
      ("dtype", s (Alcop_ir.Dtype.to_string spec.Op_spec.dtype));
      ("a_op", opt_s spec.Op_spec.a_op);
      ("b_op", opt_s spec.Op_spec.b_op);
      ("epilogue", opt_s spec.Op_spec.epilogue) ]

let json_of_params (p : Alcop_perfmodel.Params.t) =
  let t = p.Alcop_perfmodel.Params.tiling in
  Json.Obj
    [ ("tiling",
       Json.List
         (List.map i
            [ t.Tiling.tb_m; t.Tiling.tb_n; t.Tiling.tb_k; t.Tiling.warp_m;
              t.Tiling.warp_n; t.Tiling.warp_k; t.Tiling.split_k ]));
      ("smem_stages", i p.Alcop_perfmodel.Params.smem_stages);
      ("reg_stages", i p.Alcop_perfmodel.Params.reg_stages);
      ("swizzle", b p.Alcop_perfmodel.Params.swizzle);
      ("inner_fuse", b p.Alcop_perfmodel.Params.inner_fuse) ]

let of_json doc = Digest.string (Json.to_string doc)

(* Bump whenever the compiler's semantics — or the *representation* of its
   artifacts — changes: v2 is the packed-program trace datapath, which must
   never be satisfied from entries recorded under the boxed-event one. *)
let schema_version = 2

let compile_key_v ~version ~hw ~extra_regs_per_thread params spec =
  of_json
    (Json.Obj
       [ ("v", i version);
         ("hw", json_of_hw hw);
         ("spec", json_of_spec spec);
         ("params", json_of_params params);
         ("extra_regs_per_thread", i extra_regs_per_thread) ])

let compile_key ~hw ~extra_regs_per_thread params spec =
  compile_key_v ~version:schema_version ~hw ~extra_regs_per_thread params spec
