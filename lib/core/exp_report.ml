(* The self-contained HTML experiment report: the paper's headline
   figures (fig 10/12/13), the compiler's own selfbench trajectory, and a
   stall-class diff between an unpipelined and a fully pipelined variant
   of the fig 2/3 example — one file, inline SVG, no scripts.

   Figure data comes from results/*.csv when `bench csv` has written
   them, and is recomputed through the same Experiments.*_csv shapes
   otherwise, so both paths agree cell for cell. The selfbench section
   reads BENCH_gpusim.json (skipped with a note when absent: recomputing
   it means re-running bechamel). *)

open Alcop_obs

let geomean = Experiments.geomean

(* --- results/*.csv, with recompute fallback --- *)

(* The figure CSVs are plain comma-joined cells (no quoting; see
   [fig10_csv] etc.), so a split on ',' is a faithful parse. *)
let parse_csv text =
  match
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (String.split_on_char ',')
  with
  | header :: rows -> Some (header, rows)
  | [] -> None

let csv_or_compute path compute =
  match Trace_reader.read_all path with
  | Ok text ->
    (match parse_csv text with Some v -> v | None -> compute ())
  | Error _ -> compute ()

let float_cell s = if s = "" then None else float_of_string_opt s

(* --- sections --- *)

let fig10_section ~results_dir ~hw ~pool () =
  let header, rows =
    csv_or_compute
      (Filename.concat results_dir "fig10.csv")
      (fun () -> Experiments.fig10_csv (Experiments.fig10 ~hw ?pool ()))
  in
  let variants = List.tl header in
  let categories = List.map List.hd rows in
  let cell row i = Option.value ~default:0.0 (float_cell (List.nth row i)) in
  let series =
    List.mapi
      (fun vi name -> (name, List.map (fun row -> cell row (vi + 1)) rows))
      variants
  in
  let geomeans =
    List.map (fun (name, vs) -> (name, geomean vs)) series
  in
  let table_rows =
    List.map (fun row -> List.hd row :: List.tl row) rows
    @ [ "geomean" :: List.map (fun (_, g) -> Printf.sprintf "%.3f" g) geomeans ]
  in
  Report.section ~title:"Fig. 10 — single-operator speedups over TVM"
    ~intro:
      "Best schedule per variant, exhaustive search; the dashed line is \
       parity with the TVM baseline. The rightmost variants add \
       multi-stage (MS) and multi-level (ML) pipelining."
    [ Report.grouped_bars ~refline:1.0 ~y_label:"speedup over TVM"
        ~categories ~series ();
      Report.table ~header ~rows:table_rows ]

let fig12_section ~results_dir ~hw ~pool () =
  let header, rows =
    csv_or_compute
      (Filename.concat results_dir "fig12.csv")
      (fun () -> Experiments.fig12_csv (Experiments.fig12 ~hw ?pool ()))
  in
  let categories = List.map List.hd rows in
  let series =
    List.mapi
      (fun ci name ->
        ( name,
          List.map
            (fun row ->
              Option.value ~default:0.0 (float_cell (List.nth row (ci + 1))))
            rows ))
      (List.tl header)
  in
  let table_rows =
    List.map
      (List.map (fun c -> if c = "" then "compile fail" else c))
      rows
  in
  Report.section
    ~title:"Fig. 12 — performance-model quality (best-in-top-k)"
    ~intro:
      "Fraction of the true best latency reached by taking the model's \
       top-k schedules; higher is better, 1.0 means the model's top-k \
       contains the optimum. \"ours\" is the analytical model, \
       \"bottleneck\" the simpler roofline ranking."
    [ Report.grouped_bars ~y_label:"best-in-top-k (fraction of optimum)"
        ~categories ~series ();
      Report.table ~header ~rows:table_rows ]

let fig13_section ~results_dir ~hw ~pool () =
  let header, rows =
    csv_or_compute
      (Filename.concat results_dir "fig13.csv")
      (fun () -> Experiments.fig13_csv (Experiments.fig13 ~hw ?pool ()))
  in
  (* rows: operator, method, budget, best_in_budget — aggregate to the
     geomean trajectory per method so one line summarizes the suite *)
  let methods =
    List.sort_uniq compare (List.map (fun r -> List.nth r 1) rows)
  in
  let budgets =
    List.sort_uniq compare
      (List.filter_map (fun r -> int_of_string_opt (List.nth r 2)) rows)
  in
  let series =
    List.map
      (fun m ->
        ( m,
          List.filter_map
            (fun b ->
              let vs =
                List.filter_map
                  (fun r ->
                    if List.nth r 1 = m && List.nth r 2 = string_of_int b
                    then float_cell (List.nth r 3)
                    else None)
                  rows
              in
              if vs = [] then None else Some (float_of_int b, geomean vs))
            budgets ))
      methods
  in
  Report.section ~title:"Fig. 13 — search efficiency"
    ~intro:
      "Geomean (across the operator suite) of the best latency found \
       within a trial budget, as a fraction of the exhaustive optimum; \
       higher is better. Model-guided search reaches the optimum with a \
       fraction of the trials random sampling needs."
    [ Report.line_chart ~y_label:"best-in-budget (fraction of optimum)"
        ~x_label:"trial budget" ~series ();
      Report.table ~header ~rows ]

let selfbench_section ~bench_json () =
  match Trace_reader.json_of_file bench_json with
  | Error _ ->
    Report.section ~title:"Compiler selfbench"
      ~intro:
        (bench_json
        ^ " not found — run `dune exec bench/main.exe -- selfbench` to \
           generate it.")
      []
  | Ok doc ->
    let benchmarks =
      match Json.member "benchmarks" doc with
      | Some (Json.List bs) -> bs
      | _ -> []
    in
    let rows =
      List.filter_map
        (fun b ->
          match (Json.member "id" b, Json.member "ops_per_sec" b) with
          | Some (Json.Str id), Some v ->
            Option.map (fun ops -> (id, ops)) (Json.number v)
          | _ -> None)
        benchmarks
    in
    let machine =
      match Json.member "machine" doc with
      | Some (Json.Str s) -> s
      | _ -> "?"
    in
    Report.section ~title:"Compiler selfbench (bechamel)"
      ~intro:
        (Printf.sprintf
           "Throughput of the compiler's own hot paths (simulated machine: \
            %s), from %s. Log scale: the entries span orders of magnitude."
           machine bench_json)
      [ Report.dot_plot_log ~x_label:"operations / second (log scale)" ~rows ();
        Report.table
          ~header:[ "benchmark"; "ops/sec" ]
          ~rows:
            (List.map
               (fun (id, ops) -> [ id; Printf.sprintf "%.3g" ops ])
               rows) ]

(* One trend section per machine stream of the benchmark history: the
   selfbench medians over time with their ±MAD noise bands and any
   change points the detector flags (doc/benchmarking.md). *)
let history_sections ~history_dir () =
  match Benchdb.machines ~dir:history_dir with
  | [] ->
    [ Report.section ~title:"Benchmark history"
        ~intro:
          (Printf.sprintf
             "No history recorded under %s yet — run `dune exec \
              bench/main.exe -- record` to start the stream."
             history_dir)
        [] ]
  | streams ->
    List.concat_map
      (fun (machine, path) ->
        match Benchdb.read_history path with
        | Error msg ->
          [ Report.section
              ~title:(Printf.sprintf "Benchmark history — %s" machine)
              ~intro:("unreadable stream: " ^ msg)
              [] ]
        | Ok (records, _skipped) ->
          Benchdb.trend_sections ~machine records (Benchdb.trends records))
      streams

(* Stall diff between the fig 2/3 example's unpipelined baseline and the
   full multi-level pipeline: the per-class cycle deltas partition the
   total cycle delta (each side's classes telescope to its critical
   threadblock's cycles), so the table *accounts for* the speedup. *)
let profile_stalls ~hw spec params =
  match Session.compile (Session.for_hw hw) params spec with
  | Error _ -> None
  | Ok c ->
    (match
       Alcop_gpusim.Profile.run ~op:spec.Alcop_sched.Op_spec.name
         ~groups:c.Compiler.groups c.Compiler.timing_request
     with
     | Error _ -> None
     | Ok p ->
       Some
         ( p.Alcop_gpusim.Profile.p_timing.Alcop_gpusim.Timing.total_cycles,
           Alcop_gpusim.Profile.stall_breakdown p ))

let stall_diff_section ~hw () =
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let params ~smem_stages ~reg_stages =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ()
  in
  match
    ( profile_stalls ~hw spec (params ~smem_stages:1 ~reg_stages:1),
      profile_stalls ~hw spec (params ~smem_stages:3 ~reg_stages:2) )
  with
  | None, _ | _, None ->
    Report.section ~title:"Why pipelining wins: stall-class diff"
      ~intro:"(profiling the example variants failed on this build)" []
  | Some (old_cycles, old_stalls), Some (new_cycles, new_stalls) ->
    let deltas = Analytics.diff_stalls ~old_stalls ~new_stalls in
    let to_, tn, td = Analytics.stall_total deltas in
    let header = [ "stall class"; "unpipelined"; "3x2 pipelined"; "delta" ] in
    let rows =
      List.map
        (fun d ->
          [ d.Analytics.st_class;
            Analytics.fmt_num d.Analytics.st_old;
            Analytics.fmt_num d.Analytics.st_new;
            Analytics.fmt_signed d.Analytics.st_delta ])
        deltas
      @ [ [ "total";
            Analytics.fmt_num to_;
            Analytics.fmt_num tn;
            Analytics.fmt_signed td ] ]
    in
    Report.section ~title:"Why pipelining wins: stall-class diff"
      ~intro:
        (Printf.sprintf
           "Critical-threadblock cycles by stall class on %s: unpipelined \
            (1 stage) versus multi-level pipelined (3 smem x 2 reg \
            stages). Kernel total %s -> %s cycles; the per-class deltas \
            below sum exactly to the critical block's cycle delta — the \
            diff accounts for the whole speedup."
           spec.Alcop_sched.Op_spec.name
           (Analytics.fmt_num old_cycles)
           (Analytics.fmt_num new_cycles))
      [ Report.diverging_bars ~pos_label:"more cycles (worse)"
          ~neg_label:"fewer cycles (better)"
          ~rows:(List.map (fun d -> (d.Analytics.st_class, d.Analytics.st_delta)) deltas)
          ();
        Report.table ~header ~rows ]

(* Pipeline observatory on the same fig 2/3 pair: stage-occupancy
   waterfall and prefetch-slack stats of the pipelined schedule, plus the
   five-term exact telescoping of the latency delta (doc/pipeview.md). *)
let pipeview_of ~hw spec params =
  match Session.compile (Session.for_hw hw) params spec with
  | Error _ -> None
  | Ok c ->
    (match
       Alcop_gpusim.Pipeview.run ~op:spec.Alcop_sched.Op_spec.name
         ~schedule:(Alcop_perfmodel.Params.to_string params)
         c.Compiler.timing_request
     with
     | Error _ -> None
     | Ok v -> Some v)

let pipeview_section ~hw () =
  let spec = Alcop_workloads.Suites.mm_rn50_fc in
  let tiling =
    Alcop_sched.Tiling.make ~tb_m:64 ~tb_n:64 ~tb_k:32 ~warp_m:32 ~warp_n:32
      ~warp_k:16 ()
  in
  let params ~smem_stages ~reg_stages =
    Alcop_perfmodel.Params.make ~tiling ~smem_stages ~reg_stages ()
  in
  match
    ( pipeview_of ~hw spec (params ~smem_stages:1 ~reg_stages:1),
      pipeview_of ~hw spec (params ~smem_stages:3 ~reg_stages:2) )
  with
  | None, _ | _, None ->
    Report.section ~title:"Pipeline observatory"
      ~intro:"(analyzing the example variants failed on this build)" []
  | Some base, Some piped ->
    let open Alcop_gpusim.Pipeview in
    let cmp = compare_views base piped in
    let delta_rows =
      List.map
        (fun t ->
          [ t.dt_name; string_of_int t.dt_a; string_of_int t.dt_b;
            Printf.sprintf "%+d" t.dt_delta ])
        cmp.cmp_terms
      @ [ [ "total"; string_of_int cmp.cmp_total_a;
            string_of_int cmp.cmp_total_b;
            Printf.sprintf "%+d" cmp.cmp_total_delta ] ]
    in
    let occupancy_rows =
      List.concat_map
        (fun g ->
          Array.to_list g.gv_slots
          |> List.map (fun slot ->
                 ( Printf.sprintf "%s stage %d" g.gv_id slot.oc_stage,
                   Array.to_list slot.oc_intervals )))
        piped.pv_groups
    in
    let group_rows =
      List.map
        (fun g ->
          [ g.gv_id; string_of_int g.gv_stages;
            (if g.gv_synchronized then "scope" else "soft");
            Printf.sprintf "%.1f" g.gv_mean_slack;
            Printf.sprintf "%.1f" g.gv_min_slack;
            Printf.sprintf "%.0f" g.gv_exposed_cycles;
            Printf.sprintf "%.2f" g.gv_duty ])
        piped.pv_groups
    in
    Report.section ~title:"Pipeline observatory"
      ~intro:
        (Printf.sprintf
           "Per-stage buffer occupancy and prefetch slack of the 3x2 \
            pipelined schedule on %s, and the 1x1 -> 3x2 latency delta \
            telescoped into five partition terms (integer cycles, exact; \
            doc/pipeview.md)."
           spec.Alcop_sched.Op_spec.name)
      [ Report.table ~header:[ "term"; "1x1"; "3x2"; "delta" ]
          ~rows:delta_rows;
        Report.interval_rows ~x_label:"cycles"
          ~total:piped.pv_wave_cycles ~rows:occupancy_rows ();
        Report.table
          ~header:[ "group"; "stages"; "protocol"; "mean slack"; "min slack";
                    "exposed cycles"; "duty" ]
          ~rows:group_rows ]

(* --- assembly --- *)

let generate ?(hw = Alcop_hw.Hw_config.default) ?pool
    ?(results_dir = "results") ?(bench_json = "BENCH_gpusim.json")
    ?(history_dir = Benchdb.default_history_dir) () =
  Report.page ~title:"ALCOP experiment report"
    ~subtitle:
      (Printf.sprintf
         "Automatic load-compute pipelining, reproduced in simulation \
          (machine: %s). Figures recomputed from %s/*.csv when present."
         hw.Alcop_hw.Hw_config.name results_dir)
    ([ fig10_section ~results_dir ~hw ~pool ();
       fig12_section ~results_dir ~hw ~pool ();
       fig13_section ~results_dir ~hw ~pool ();
       selfbench_section ~bench_json () ]
     @ history_sections ~history_dir ()
     @ [ stall_diff_section ~hw (); pipeview_section ~hw () ])

let write ?hw ?pool ?results_dir ?bench_json ?history_dir path =
  let html = generate ?hw ?pool ?results_dir ?bench_json ?history_dir () in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc html)
