(* The end-to-end ALCOP compilation pipeline (paper Fig. 4):

     schedule -> lowering -> pipelining pass -> trace -> timing simulation

   [compile] produces everything downstream consumers need: the pipelined
   kernel (for inspection and functional execution), the pipeline groups
   (for the interpreter's async semantics), the event trace, and the
   simulated kernel latency. A schedule whose resource demands exceed the
   hardware fails to compile — the tuner sees those as failed trials. *)

open Alcop_ir
open Alcop_sched

module Obs = Alcop_obs.Obs

type compiled = {
  schedule : Schedule.t;
  params : Alcop_perfmodel.Params.t;
  lowered : Lower.lowered;
  kernel : Kernel.t;  (** pipelined *)
  groups : Alcop_pipeline.Analysis.group list;
  program : Alcop_gpusim.Trace.program;  (** packed event trace *)
  timing_request : Alcop_gpusim.Timing.request;
      (** the exact launch the simulator timed — replayable by [Profile] *)
  timing : Alcop_gpusim.Timing.kernel_timing;
  latency_cycles : float;
      (** kernel plus materialization of non-inlined element-wise stages *)
}

(* Structured failure: each compile phase keeps its own error payload
   instead of collapsing into a string, so the observability layer and the
   CLI can report *what* failed — and a legality rejection carries the full
   per-buffer rule-by-rule verdict. *)
type error =
  | Schedule_error of Schedule.error
  | Lowering_failed of string
  | Legality_rejected of {
      rejection : Alcop_pipeline.Analysis.rejection;
      verdicts : Alcop_pipeline.Analysis.buffer_verdict list;
    }
  | Launch_failed of Alcop_gpusim.Occupancy.failure

let error_kind = function
  | Schedule_error _ -> "schedule"
  | Lowering_failed _ -> "lowering"
  | Legality_rejected _ -> "legality"
  | Launch_failed _ -> "launch"

let pp_error fmt = function
  | Schedule_error e -> Schedule.pp_error fmt e
  | Lowering_failed m -> Format.pp_print_string fmt m
  | Legality_rejected { rejection; _ } ->
    Alcop_pipeline.Analysis.pp_rejection fmt rejection
  | Launch_failed f ->
    Format.fprintf fmt "launch failure: %a" Alcop_gpusim.Occupancy.pp_failure f

let error_to_string e = Format.asprintf "%a" pp_error e

let latency_us hw c = Alcop_hw.Hw_config.cycles_to_us hw c.latency_cycles

(* Cost of materializing a non-inlined element-wise producer as its own
   kernel: one read and one write of the tensor over DRAM, plus a launch. *)
let materialize_cycles (hw : Alcop_hw.Hw_config.t) (lowered : Lower.lowered) =
  List.fold_left
    (fun acc (name, _src, _op) ->
      match Kernel.find_param lowered.Lower.kernel name with
      | Some b ->
        let bytes = 2 * Alcop_ir.Buffer.size_bytes b in
        acc
        +. Alcop_gpusim.Timing.launch_overhead_cycles
        +. (float_of_int bytes /. hw.Alcop_hw.Hw_config.dram_bytes_per_cycle)
      | None -> acc)
    0.0 lowered.Lower.materialize

(* [extra_regs_per_thread] models compilers that prefetch without cp.async
   (pre-Ampere double buffering): the in-flight tile occupies registers.

   Each phase is one named pass run through [Passman.run]: the pass manager
   owns the obs span, the per-pass wall-time gauge, optional post-pass IR
   validation and the --dump-ir-after hook, so this function reads as the
   plain pipeline of paper Fig. 4. *)
let compile ?(hw = Alcop_hw.Hw_config.default) ?pool
    ?(extra_regs_per_thread = 0) (params : Alcop_perfmodel.Params.t)
    (spec : Op_spec.t) =
  Obs.with_span "compile"
    ~fields:[ ("op", Alcop_obs.Json.Str spec.Op_spec.name) ]
  @@ fun () ->
  let fail err =
    Obs.count "compile.fail";
    Obs.count ("compile.fail." ^ error_kind err);
    Obs.point "compile.error"
      [ ("op", Alcop_obs.Json.Str spec.Op_spec.name);
        ("kind", Alcop_obs.Json.Str (error_kind err));
        ("message", Alcop_obs.Json.Str (error_to_string err)) ];
    Error err
  in
  let tiling = params.Alcop_perfmodel.Params.tiling in
  let smem_stages = params.Alcop_perfmodel.Params.smem_stages in
  let reg_stages = params.Alcop_perfmodel.Params.reg_stages in
  match
    Passman.run ~name:"schedule" (fun () ->
        Schedule.default_gemm ~smem_stages ~reg_stages
          ~inner_fuse:params.Alcop_perfmodel.Params.inner_fuse spec tiling)
  with
  | exception Schedule.Schedule_error e -> fail (Schedule_error e)
  | schedule ->
    let schedule =
      Schedule.set_swizzle schedule params.Alcop_perfmodel.Params.swizzle
    in
    (match
       Passman.run ~name:"lower"
         ~ir_of:(fun (l : Lower.lowered) -> Some l.Lower.kernel)
         (fun () -> Lower.run schedule)
     with
     | exception Lower.Lowering_error m -> fail (Lowering_failed m)
     | lowered ->
       (match
          Passman.run ~name:"pipeline"
            ~ir_of:(function
              | Ok (r : Alcop_pipeline.Pass.result) ->
                Some r.Alcop_pipeline.Pass.kernel
              | Error _ -> None)
            (fun () ->
              Alcop_pipeline.Pass.run ~hw ~hints:lowered.Lower.hints
                lowered.Lower.kernel)
        with
        | Error rejection ->
          (* The structured payload re-runs the rule checks buffer by
             buffer — error path only, so the hot path stays single-pass. *)
          let verdicts =
            Alcop_pipeline.Analysis.verdicts ~hw ~hints:lowered.Lower.hints
              lowered.Lower.kernel
          in
          fail (Legality_rejected { rejection; verdicts })
        | Ok result ->
          let kernel = result.Alcop_pipeline.Pass.kernel in
          let groups = Alcop_pipeline.Pass.groups result in
          let program =
            Passman.run ~name:"trace" (fun () ->
                Alcop_gpusim.Trace.extract_program ~groups kernel)
          in
          let elem_bytes = Dtype.size_bytes spec.Op_spec.dtype in
          let smem_per_tb =
            List.fold_left
              (fun acc (b : Buffer.t) ->
                if Buffer.scope_equal b.Buffer.scope Buffer.Shared then
                  acc + Buffer.size_bytes b
                else acc)
              0 (Stmt.allocs kernel.Kernel.body)
          in
          let request =
            { Alcop_gpusim.Timing.hw; program;
              total_tbs = Tiling.threadblocks tiling spec;
              warps_per_tb = Tiling.warps tiling;
              smem_per_tb;
              regs_per_thread =
                Alcop_perfmodel.Params.regs_per_thread params
                + extra_regs_per_thread;
              grid_m = spec.Op_spec.m / tiling.Tiling.tb_m;
              grid_n = spec.Op_spec.n / tiling.Tiling.tb_n;
              grid_z = spec.Op_spec.batch * tiling.Tiling.split_k;
              tb_m = tiling.Tiling.tb_m; tb_n = tiling.Tiling.tb_n;
              tb_k = tiling.Tiling.tb_k; elem_bytes;
              swizzle = params.Alcop_perfmodel.Params.swizzle;
              jitter_key = Alcop_perfmodel.Params.key spec.Op_spec.name params;
              barrier_groups =
                List.filter_map
                  (fun (g : Alcop_pipeline.Analysis.group) ->
                    if g.Alcop_pipeline.Analysis.synchronized then
                      Some g.Alcop_pipeline.Analysis.id
                    else None)
                  groups }
          in
          (match
             Passman.run ~name:"timing" (fun () ->
                 Alcop_gpusim.Timing.run ?pool request)
           with
           | Error f -> fail (Launch_failed f)
           | Ok timing ->
             let latency_cycles =
               timing.Alcop_gpusim.Timing.total_cycles
               +. materialize_cycles hw lowered
               +. Alcop_perfmodel.Reduce_cost.cycles hw spec
                    ~split_k:tiling.Tiling.split_k
             in
             Obs.count "compile.ok";
             Obs.add_field "latency_cycles" (Alcop_obs.Json.Float latency_cycles);
             Ok
               { schedule; params; lowered; kernel; groups; program;
                 timing_request = request; timing; latency_cycles })))

(* Functional verification: run the pipelined kernel in the strict
   interpreter on deterministic inputs and compare against the host
   reference. Intended for small shapes (tests, examples). *)
let verify ?(atol = 1e-6) (c : compiled) =
  let spec = c.schedule.Schedule.spec in
  let a, b = Alcop_gpusim.Reference.inputs_for spec in
  let expected = Alcop_gpusim.Reference.gemm spec ~a ~b in
  (* Materialize non-inlined element-wise producers. *)
  let tensor_of name =
    if String.equal name "A" then a
    else if String.equal name "B" then b
    else invalid_arg ("verify: unknown source tensor " ^ name)
  in
  let inputs =
    List.map
      (fun (bf : Buffer.t) ->
        let name = bf.Buffer.name in
        match
          List.find_opt
            (fun (n, _, _) -> String.equal n name)
            c.lowered.Lower.materialize
        with
        | Some (_, src, op) ->
          (name, Alcop_gpusim.Tensor.map (Alcop_gpusim.Elemwise_ops.find_exn op)
                   (tensor_of src))
        | None -> (name, tensor_of name))
      c.kernel.Kernel.inputs
  in
  let outputs = Alcop_gpusim.Interp.run ~groups:c.groups c.kernel ~inputs in
  (* Split-K: chain the partial outputs through the reduction kernel. *)
  let outputs =
    match c.lowered.Lower.reduce with
    | None -> outputs
    | Some reduce -> Alcop_gpusim.Interp.run reduce ~inputs:outputs
  in
  let actual =
    match outputs with
    | [ (_, t) ] -> t
    | _ -> invalid_arg "verify: expected exactly one kernel output"
  in
  let diff = Alcop_gpusim.Tensor.max_abs_diff actual expected in
  if diff <= atol then Ok diff else Error diff
