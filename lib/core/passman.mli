(** The pass manager: compile phases as first-class, instrumented passes.

    The paper's architecture (Fig. 4) is an explicit pipeline — schedule
    construction, lowering, the pipelining transformation, trace
    extraction, timing simulation. [Compiler.compile] runs each phase
    through {!run}, which gives every pass uniformly:

    - an [Alcop_obs] span named [compile.<pass>] (unchanged from the
      pre-passman span names, so existing traces and tools keep working);
    - a wall-time gauge [pass.<pass>.ms] and a counter [pass.<pass>.runs];
    - optional post-pass structural validation of the produced IR
      ({!Alcop_ir.Validate.check}), off by default on the hot path and
      switched on by the CLI;
    - a dump hook ([--dump-ir-after=PASS] in [alcop show]/[alcop explain])
      that receives the intermediate kernel right after the pass runs.

    The pass registry {!pipeline} is static: it describes the passes
    [Compiler.compile] executes, in order, so CLIs can validate pass names
    and print help without compiling anything. *)

type info = {
  name : string;       (** registry key, e.g. ["lower"] *)
  title : string;      (** one-line description for [--help] output *)
  produces_ir : bool;  (** whether the pass yields a kernel to dump/check *)
}

val pipeline : info list
(** The compile pipeline in execution order:
    [schedule; lower; pipeline; trace; timing]. *)

val find : string -> info option

val names : string list
(** Names of {!pipeline} in order. *)

val ir_pass_names : string list
(** Names of the IR-producing passes (valid [--dump-ir-after] targets). *)

(** {2 IR dump hook} *)

val set_dump :
  after:string -> (string -> Alcop_ir.Kernel.t -> unit) -> (unit, string) result
(** Install a hook called with [(pass_name, kernel)] right after the named
    pass produces a kernel. [Error] when the pass is unknown or produces no
    IR; the payload is a ready-to-print message listing valid names. Only
    one hook is active at a time. *)

val clear_dump : unit -> unit

(** {2 Post-pass validation} *)

val set_validate_ir : bool -> unit
(** When on, every IR-producing pass run through {!run} has its output
    structurally validated with {!Alcop_ir.Validate.check}; a failure
    raises {!Alcop_ir.Validate.Invalid} (a compiler bug, not a user
    error) after bumping [pass.<pass>.validate_fail]. Default: off — the
    pipelining pass already validates its own output, and tuning sweeps
    compile thousands of points. *)

val validate_ir : unit -> bool

(** {2 Running a pass} *)

val run :
  name:string ->
  ?ir_of:('a -> Alcop_ir.Kernel.t option) ->
  (unit -> 'a) ->
  'a
(** [run ~name ?ir_of f] executes [f] as the named pass: inside an obs span
    [compile.<name>], timing it into the [pass.<name>.ms] gauge, counting
    [pass.<name>.runs], then — when [ir_of] extracts a kernel from the
    result — validating (if enabled) and feeding the dump hook. Escaping
    exceptions still close the span. *)
