(** The end-to-end ALCOP compilation pipeline (paper Fig. 4):
    schedule -> lowering -> pipelining pass -> trace -> timing simulation. *)

open Alcop_ir
open Alcop_sched

type compiled = {
  schedule : Schedule.t;
  params : Alcop_perfmodel.Params.t;
  lowered : Lower.lowered;
  kernel : Kernel.t;  (** pipelined *)
  groups : Alcop_pipeline.Analysis.group list;
  program : Alcop_gpusim.Trace.program;
      (** packed event trace; [Alcop_gpusim.Trace.decode] for the boxed
          debug view *)
  timing_request : Alcop_gpusim.Timing.request;
      (** the exact launch the simulator timed — replayable by
          [Alcop_gpusim.Profile] *)
  timing : Alcop_gpusim.Timing.kernel_timing;
  latency_cycles : float;
      (** kernel + materialization of non-inlined element-wise stages +
          split-K reduction *)
}

val latency_us : Alcop_hw.Hw_config.t -> compiled -> float

(** Structured compile failure — one constructor per phase, so callers and
    the observability layer see *what* failed instead of a flat string. *)
type error =
  | Schedule_error of Schedule.error
  | Lowering_failed of string
  | Legality_rejected of {
      rejection : Alcop_pipeline.Analysis.rejection;
          (** the first rule violation, as raised by the pass *)
      verdicts : Alcop_pipeline.Analysis.buffer_verdict list;
          (** the full per-buffer rule-by-rule report *)
    }
  | Launch_failed of Alcop_gpusim.Occupancy.failure

val error_kind : error -> string
(** "schedule" | "lowering" | "legality" | "launch". *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val compile :
  ?hw:Alcop_hw.Hw_config.t ->
  ?pool:Alcop_par.Pool.t ->
  ?extra_regs_per_thread:int ->
  Alcop_perfmodel.Params.t ->
  Op_spec.t ->
  (compiled, error) result
(** Compile one operator under one schedule point, cold — no caching.
    [pool] enables {!Alcop_gpusim.Timing.run}'s parallel-wave mode; it
    never changes the artifact.
    Almost every caller wants {!Session.compile} instead, which memoizes
    the result under a content fingerprint of the inputs. [Error] covers
    schedule construction failures, lowering failures, pipelining-legality
    rejections and launch failures (resource exhaustion).
    [extra_regs_per_thread] models compilers that prefetch without
    cp.async. Each phase runs through {!Passman.run} as a named pass —
    [schedule] / [lower] / [pipeline] / [trace] / [timing] — inside an
    [Alcop_obs] span named [compile.<pass>], with a [pass.<pass>.ms]
    wall-time gauge, optional post-pass IR validation and the
    [--dump-ir-after] hook. *)

val verify : ?atol:float -> compiled -> (float, float) result
(** Execute the pipelined kernel (and the split-K reduction, if any) in the
    strict interpreter on deterministic inputs and compare against the host
    reference; the payload is the max absolute error either way. Intended
    for small shapes. *)
