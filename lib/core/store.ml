(* On-disk artifact store. See the interface for the contract.

   Layout:  <root>/<ns>/<first-2-hex>/<key>.json, with temp files for
   in-flight writes living at <root>/.tmp.<pid>.<seq> so the final
   [rename] is within one filesystem and therefore atomic. Everything
   here is best-effort: an I/O failure is a miss (reads) or disables the
   store after one warning line (writes); no exception escapes. *)

module Json = Alcop_obs.Json
module Timing = Alcop_gpusim.Timing

type stats = {
  hits : int;
  misses : int;
  writes : int;
  corrupt : int;
  errors : int;
}

(* Process-global: temp names embed (pid, seq) and must be unique even
   when several handles over the same root race within one process. *)
let tmp_seq = Atomic.make 0

type t = {
  root : string;
  cap : int;
  lock : Mutex.t;
  mutable enabled : bool;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable corrupt : int;
  mutable errors : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let nonempty = function
  | Some s when s <> "" -> Some s
  | _ -> None

let default_root () =
  match nonempty (Sys.getenv_opt "ALCOP_STORE") with
  | Some d -> d
  | None ->
    (match nonempty (Sys.getenv_opt "XDG_CACHE_HOME") with
     | Some c -> Filename.concat c "alcop"
     | None ->
       (match nonempty (Sys.getenv_opt "HOME") with
        | Some h ->
          Filename.concat (Filename.concat h ".cache") "alcop"
        | None ->
          Filename.concat (Filename.get_temp_dir_name ()) "alcop-store"))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()  (* lost a mkdir race *)
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"))

let disable t msg =
  locked t (fun () ->
      t.errors <- t.errors + 1;
      if t.enabled then begin
        t.enabled <- false;
        Printf.eprintf "alcop: artifact store disabled: %s\n%!" msg
      end)

let create ?root ?(max_bytes = 64 * 1024 * 1024) () =
  let root = match root with Some r -> r | None -> default_root () in
  let t =
    { root; cap = max_bytes;
      lock = Mutex.create ();
      enabled = true;
      hits = 0; misses = 0; writes = 0; corrupt = 0; errors = 0 }
  in
  (* Probe writability up front so an unusable store warns once at open
     rather than surprising the first write. *)
  (try
     mkdir_p root;
     let probe =
       Filename.concat root
         (Printf.sprintf ".probe.%d.%d" (Unix.getpid ())
            (Atomic.fetch_and_add tmp_seq 1))
     in
     Out_channel.with_open_bin probe (fun oc ->
         Out_channel.output_string oc "ok");
     Sys.remove probe
   with Sys_error msg -> disable t msg);
  t

let enabled t = t.enabled
let root t = t.root
let max_bytes t = t.cap

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; writes = t.writes;
        corrupt = t.corrupt; errors = t.errors })

let shard key = if String.length key >= 2 then String.sub key 0 2 else "xx"

let entry_path t ~ns key =
  Filename.concat
    (Filename.concat (Filename.concat t.root ns) (shard key))
    (key ^ ".json")

let delete_quietly path = try Sys.remove path with Sys_error _ -> ()

let mark_corrupt t ~ns key =
  (* The caller read the bytes (counted as a hit) then failed to parse
     them; reclassify that read as corrupt rather than served. *)
  locked t (fun () ->
      t.corrupt <- t.corrupt + 1;
      if t.hits > 0 then t.hits <- t.hits - 1);
  delete_quietly (entry_path t ~ns key)

let read t ~ns key =
  if not t.enabled then None
  else begin
    let path = entry_path t ~ns key in
    match In_channel.with_open_bin path In_channel.input_all with
    | data ->
      locked t (fun () -> t.hits <- t.hits + 1);
      Some data
    | exception Sys_error _ ->
      if Sys.file_exists path then begin
        (* present but unreadable — same treatment as unparseable *)
        locked t (fun () -> t.corrupt <- t.corrupt + 1);
        delete_quietly path
      end
      else locked t (fun () -> t.misses <- t.misses + 1);
      None
  end

let write t ~ns key data =
  if t.enabled then begin
    let path = entry_path t ~ns key in
    let tmp =
      Filename.concat t.root
        (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
           (Atomic.fetch_and_add tmp_seq 1))
    in
    try
      mkdir_p (Filename.dirname path);
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc data);
      Sys.rename tmp path;
      locked t (fun () -> t.writes <- t.writes + 1)
    with Sys_error msg ->
      delete_quietly tmp;
      disable t msg
  end

let remove t ~ns key =
  if t.enabled then delete_quietly (entry_path t ~ns key)

(* --- walking, usage accounting and eviction --- *)

let readdir_quietly dir =
  try Sys.readdir dir with Sys_error _ -> [||]

let is_dir_quietly p = try Sys.is_directory p with Sys_error _ -> false

(* Every entry file with (path, mtime, size); temp files and the probe
   live directly under the root and are never visited. *)
let walk t =
  let acc = ref [] in
  Array.iter
    (fun ns ->
      if ns <> "" && ns.[0] <> '.' then begin
        let ns_dir = Filename.concat t.root ns in
        if is_dir_quietly ns_dir then
          Array.iter
            (fun sh ->
              let sh_dir = Filename.concat ns_dir sh in
              if is_dir_quietly sh_dir then
                Array.iter
                  (fun f ->
                    let p = Filename.concat sh_dir f in
                    match Unix.stat p with
                    | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
                      acc := (p, st_mtime, st_size) :: !acc
                    | _ | (exception Unix.Unix_error _) -> ())
                  (readdir_quietly sh_dir))
            (readdir_quietly ns_dir)
      end)
    (readdir_quietly t.root);
  !acc

let usage t =
  List.fold_left
    (fun (n, bytes) (_, _, size) -> (n + 1, bytes + size))
    (0, 0) (walk t)

let gc t ?max_bytes () =
  let cap = match max_bytes with Some c -> c | None -> t.cap in
  let files = walk t in
  let total = List.fold_left (fun b (_, _, s) -> b + s) 0 files in
  if total <= cap then 0
  else begin
    (* oldest first; path is the tie-break so the order is total *)
    let by_age =
      List.sort
        (fun (p1, m1, _) (p2, m2, _) ->
          match compare (m1 : float) m2 with 0 -> compare p1 p2 | c -> c)
        files
    in
    let removed = ref 0 in
    let remaining = ref total in
    List.iter
      (fun (p, _, size) ->
        if !remaining > cap then begin
          delete_quietly p;
          remaining := !remaining - size;
          incr removed
        end)
      by_age;
    !removed
  end

(* --- wave-result persistence glue --- *)

(* A disk wave entry cannot be verified against the live [Trace.program]
   the way the in-memory cache verifies structurally, so each record
   carries a digest of the complete simulation config (hardware model
   included). The file key stays (program hash, residents, active SMs)
   like the in-memory key; the digest check turns any config drift into
   a miss rather than a wrong result. *)

let wave_key ~program_hash (cfg : Timing.config) =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%d|%d" program_hash cfg.Timing.residents
          cfg.Timing.active_sms))

let config_digest (cfg : Timing.config) =
  Fingerprint.to_hex
    (Fingerprint.of_json
       (Json.Obj
          [ ("hw", Fingerprint.json_of_hw cfg.Timing.hw);
            ("residents", Json.Int cfg.Timing.residents);
            ("active_sms", Json.Int cfg.Timing.active_sms);
            ("warps_per_tb", Json.Int cfg.Timing.warps_per_tb);
            ("miss_rate", Json.Float cfg.Timing.miss_rate);
            ("smem_penalty", Json.Float cfg.Timing.smem_penalty);
            ("issue_overhead", Json.Float cfg.Timing.issue_overhead);
            ("barrier_groups",
             Json.List
               (List.map (fun s -> Json.Str s) cfg.Timing.barrier_groups)) ]))

let wave_entry_version = 1

let render_wave ~digest (r : Timing.wave_result) =
  Json.to_string
    (Json.Obj
       [ ("v", Json.Int wave_entry_version);
         ("cfg", Json.Str digest);
         ("cycles", Json.Float r.Timing.cycles);
         ("compute_busy", Json.Float r.Timing.compute_busy);
         ("dram_busy", Json.Float r.Timing.dram_busy);
         ("llc_busy", Json.Float r.Timing.llc_busy);
         ("smem_busy", Json.Float r.Timing.smem_busy) ])

let parse_wave data =
  match Json.of_string data with
  | Error _ -> None
  | Ok doc ->
    let num name = Option.bind (Json.member name doc) Json.number in
    (match
       ( Json.member "v" doc, Json.member "cfg" doc,
         num "cycles", num "compute_busy", num "dram_busy",
         num "llc_busy", num "smem_busy" )
     with
     | ( Some (Json.Int v), Some (Json.Str digest),
         Some cycles, Some compute_busy, Some dram_busy,
         Some llc_busy, Some smem_busy )
       when v = wave_entry_version ->
       Some
         ( digest,
           { Timing.cycles; compute_busy; dram_busy; llc_busy; smem_busy } )
     | _ -> None)

let install_wave_persist t =
  Timing.set_wave_persist
    (Some
       { Timing.wp_load =
           (fun ~program_hash cfg ->
             let key = wave_key ~program_hash cfg in
             match read t ~ns:"wave" key with
             | None -> None
             | Some data ->
               (match parse_wave data with
                | Some (digest, r) when String.equal digest (config_digest cfg)
                  ->
                  Some r
                | Some _ -> None  (* config drift: a miss, entry intact *)
                | None ->
                  mark_corrupt t ~ns:"wave" key;
                  None));
         Timing.wp_save =
           (fun ~program_hash cfg r ->
             write t ~ns:"wave"
               (wave_key ~program_hash cfg)
               (render_wave ~digest:(config_digest cfg) r)) })

let uninstall_wave_persist () = Timing.set_wave_persist None
