(** The built-in sinks.

    Each sink has a writer-function constructor (for tests and in-memory
    use) and a file constructor that owns the channel and closes it from
    [sink.close] — so [Obs.reset] finalizes the file. *)

val jsonl : (string -> unit) -> Obs.sink
(** One JSON object per event, one event per line (the line includes the
    trailing newline). Every field of the event is preserved, so e.g. a
    tuner's best-so-far curve is reconstructible from the log alone. *)

val jsonl_file : string -> Obs.sink

val chrome_trace : (string -> unit) -> Obs.sink
(** Chrome [chrome://tracing] / Perfetto trace-event JSON: spans become
    complete ("X") events, gauges become counter ("C") events, points
    become instant ("i") events. Timestamps are microseconds relative to
    the first event and are written sorted, hence monotonic. The whole
    document is written on [close]. *)

val chrome_trace_file : string -> Obs.sink

val console_summary : (string -> unit) -> Obs.sink
(** Human-readable summary printed on [close]: the span tree with
    wall-clock durations in call order, then counters and gauges sorted by
    name. *)

val console_summary_stdout : unit -> Obs.sink
