(** The built-in sinks.

    Each sink has a writer-function constructor (for tests and in-memory
    use) and a file constructor that owns the channel and closes it from
    [sink.close] — so [Obs.reset] finalizes the file. *)

val jsonl : (string -> unit) -> Obs.sink
(** One JSON object per event, one event per line (the line includes the
    trailing newline). Every field of the event is preserved, so e.g. a
    tuner's best-so-far curve is reconstructible from the log alone.
    {!Trace_reader} parses this format back into events and traces. *)

val jsonl_file : string -> Obs.sink

val chrome_trace : ?ts_to_us:(float -> float) -> (string -> unit) -> Obs.sink
(** Chrome [chrome://tracing] / Perfetto trace-event JSON: spans become
    complete ("X") events, gauges and histogram observations become
    counter ("C") events, points become instant ("i") events. Timestamps are relative to the first
    event and are written sorted, hence monotonic. The whole document is
    written on [close].

    [ts_to_us] converts a clock delta to Chrome microseconds (default
    [( *. ) 1e6], i.e. the clock is wall-clock seconds); a simulated-time
    producer whose clock ticks in its own unit passes its own scale, e.g.
    [Fun.id] to display one simulated cycle per microsecond.

    Span and point fields named ["#pid"] / ["#tid"] (ints) route the event
    onto that process/thread track, and ["#process_name"] /
    ["#thread_name"] (strings) label the track through Chrome metadata
    events; reserved (["#"]-prefixed) fields are stripped from [args]. *)

val chrome_trace_file : ?ts_to_us:(float -> float) -> string -> Obs.sink

val console_summary : (string -> unit) -> Obs.sink
(** Human-readable summary printed on [close]: the span tree with
    wall-clock durations in call order, then counters, gauges and
    histogram quantiles sorted by name. *)

val console_summary_stdout : unit -> Obs.sink
