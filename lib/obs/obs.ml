(* Telemetry core: a process-global registry of sinks plus counter/gauge
   tables and the open-span stack. Global rather than threaded through
   every signature so instrumentation points stay one-liners and the
   disabled state costs a single flag read. *)

type field = string * Json.t

type event =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      ts : float;
      dur : float;
      depth : int;
      fields : field list;
    }
  | Counter of { name : string; incr : int; total : int; ts : float }
  | Gauge of { name : string; value : float; ts : float }
  | Point of { name : string; ts : float; fields : field list }
  | Hist of { name : string; value : float; ts : float }

(* --- histograms ---

   Log-spaced buckets shared by every histogram: [buckets_per_decade]
   buckets per decade over [hist_min_edge, 10^hist_decades * hist_min_edge),
   plus an underflow bucket 0 (everything below the first edge, including
   zero and negatives) and a final overflow bucket. One fixed scheme for
   all metrics keeps histograms mergeable across runs and reconstructible
   from an event log without carrying bucket layouts around. *)

let hist_buckets_per_decade = 8
let hist_decades = 18 (* 1e-9 .. 1e9 covers ns-scale spans and cycle counts *)
let hist_min_edge = 1e-9
let hist_n_buckets = (hist_buckets_per_decade * hist_decades) + 2

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : int array;
}

let hist_empty () =
  { h_count = 0; h_sum = 0.0; h_min = Float.infinity;
    h_max = Float.neg_infinity; h_buckets = Array.make hist_n_buckets 0 }

let hist_bucket_index v =
  if not (Float.is_finite v) || v < hist_min_edge then 0
  else
    let i =
      1
      + int_of_float
          (Float.floor
             (float_of_int hist_buckets_per_decade
              *. Float.log10 (v /. hist_min_edge)))
    in
    if i >= hist_n_buckets then hist_n_buckets - 1 else i

let hist_bucket_lo i =
  if i <= 0 then 0.0
  else
    hist_min_edge
    *. (10.0 ** (float_of_int (i - 1) /. float_of_int hist_buckets_per_decade))

let hist_bucket_hi i =
  if i >= hist_n_buckets - 1 then Float.infinity
  else
    hist_min_edge
    *. (10.0 ** (float_of_int i /. float_of_int hist_buckets_per_decade))

let hist_observe h v =
  let buckets = Array.copy h.h_buckets in
  let i = hist_bucket_index v in
  buckets.(i) <- buckets.(i) + 1;
  { h_count = h.h_count + 1; h_sum = h.h_sum +. v;
    h_min = Float.min h.h_min v; h_max = Float.max h.h_max v;
    h_buckets = buckets }

let hist_merge a b =
  { h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
    h_buckets = Array.init hist_n_buckets (fun i -> a.h_buckets.(i) + b.h_buckets.(i)) }

let hist_of_values vs = List.fold_left hist_observe (hist_empty ()) vs

(* Quantile from the buckets: find the bucket holding the q-th observation,
   interpolate geometrically inside it (the buckets are log-spaced), then
   clamp to the observed [min, max] so degenerate histograms (one value,
   one bucket) report the exact observation. *)
let hist_percentile h q =
  if h.h_count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = Float.max 1.0 (q *. float_of_int h.h_count) in
    let v = ref h.h_max in
    let cum = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           if c > 0 then begin
             if float_of_int (!cum + c) >= target then begin
               let inside = (target -. float_of_int !cum) /. float_of_int c in
               let lo = hist_bucket_lo i and hi = hist_bucket_hi i in
               v :=
                 (if lo <= 0.0 then hi
                  else if Float.is_finite hi then lo *. ((hi /. lo) ** inside)
                  else lo);
               raise Exit
             end;
             cum := !cum + c
           end)
         h.h_buckets
     with Exit -> ());
    Float.max h.h_min (Float.min h.h_max !v)
  end

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

type open_span = {
  span_name : string;
  start : float;
  mutable span_fields : field list;  (** reverse order *)
}

let sinks : sink list ref = ref []
let recording = ref false
let counter_table : (string, int) Hashtbl.t = Hashtbl.create 16
let gauge_table : (string, float) Hashtbl.t = Hashtbl.create 16
let hist_table : (string, histogram) Hashtbl.t = Hashtbl.create 16
let stack : open_span list ref = ref []
let clock = ref Unix.gettimeofday

let enabled () = !recording
let now () = !clock ()
let set_clock f = clock := f

let emit ev = List.iter (fun s -> s.emit ev) !sinks

let add_sink s =
  sinks := !sinks @ [ s ];
  recording := true

let record () = recording := true

let reset () =
  List.iter (fun s -> s.close ()) !sinks;
  sinks := [];
  recording := false;
  Hashtbl.reset counter_table;
  Hashtbl.reset gauge_table;
  Hashtbl.reset hist_table;
  stack := []

(* Flush file-backed sinks even when the process exits early on an error
   path (e.g. the CLI's [exit 1] after a compile failure): without this, a
   buffered JSONL line or an entire Chrome trace document (written only on
   close) would be lost. Registered at most once; a no-op when [reset] has
   already run. *)
let at_exit_registered = ref false

let reset_at_exit () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Stdlib.at_exit reset
  end

let with_span ?(fields = []) name f =
  if not !recording then f ()
  else begin
    let start = now () in
    let depth = List.length !stack in
    let span = { span_name = name; start; span_fields = List.rev fields } in
    stack := span :: !stack;
    emit (Span_begin { name; ts = start; depth });
    let finish extra =
      let stop = now () in
      stack := (match !stack with _ :: rest -> rest | [] -> []);
      emit
        (Span_end
           { name; ts = start; dur = stop -. start; depth;
             fields = List.rev_append span.span_fields extra })
    in
    match f () with
    | v -> finish []; v
    | exception e ->
      finish [ ("raised", Json.Str (Printexc.to_string e)) ];
      raise e
  end

let add_field k v =
  if !recording then
    match !stack with
    | span :: _ -> span.span_fields <- (k, v) :: span.span_fields
    | [] -> ()

let count ?(n = 1) name =
  if !recording then begin
    let total = n + Option.value ~default:0 (Hashtbl.find_opt counter_table name) in
    Hashtbl.replace counter_table name total;
    emit (Counter { name; incr = n; total; ts = now () })
  end

let counter_value name =
  Option.value ~default:0 (Hashtbl.find_opt counter_table name)

let counters () =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counter_table [])

let gauge name value =
  if !recording then begin
    Hashtbl.replace gauge_table name value;
    emit (Gauge { name; value; ts = now () })
  end

let gauge_value name = Hashtbl.find_opt gauge_table name

let gauges () =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauge_table [])

let observe name value =
  if !recording then begin
    let h =
      match Hashtbl.find_opt hist_table name with
      | Some h -> h
      | None -> hist_empty ()
    in
    Hashtbl.replace hist_table name (hist_observe h value);
    emit (Hist { name; value; ts = now () })
  end

let histogram_value name = Hashtbl.find_opt hist_table name

let histograms () =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist_table [])

let point name fields =
  if !recording then emit (Point { name; ts = now (); fields })

let memory_sink () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )
