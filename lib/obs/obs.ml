(* Telemetry core: a process-global registry of sinks plus counter/gauge
   tables and the open-span stack. Global rather than threaded through
   every signature so instrumentation points stay one-liners and the
   disabled state costs a single flag read.

   Domain-safety model (see doc/parallelism.md): the global tables, sink
   list and span stack belong to the coordinating domain. Worker domains
   never touch them — a worker runs inside [capturing], which installs a
   domain-local shard (op log + local counter/gauge/histogram tables).
   The coordinator later [replay]s each shard's op log, in deterministic
   task order, through the ordinary global path: counter totals are
   recomputed, histograms re-observe value by value, spans re-nest under
   whatever is open at replay time. The merge is exact — replaying a
   shard is indistinguishable from having run the task inline. *)

type field = string * Json.t

type event =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      ts : float;
      dur : float;
      depth : int;
      fields : field list;
    }
  | Counter of { name : string; incr : int; total : int; ts : float }
  | Gauge of { name : string; value : float; ts : float }
  | Point of { name : string; ts : float; fields : field list }
  | Hist of { name : string; value : float; ts : float }

(* --- histograms ---

   Log-spaced buckets shared by every histogram: [buckets_per_decade]
   buckets per decade over [hist_min_edge, 10^hist_decades * hist_min_edge),
   plus an underflow bucket 0 (everything below the first edge, including
   zero and negatives) and a final overflow bucket. One fixed scheme for
   all metrics keeps histograms mergeable across runs and reconstructible
   from an event log without carrying bucket layouts around. *)

let hist_buckets_per_decade = 8
let hist_decades = 18 (* 1e-9 .. 1e9 covers ns-scale spans and cycle counts *)
let hist_min_edge = 1e-9
let hist_n_buckets = (hist_buckets_per_decade * hist_decades) + 2

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : int array;
}

let hist_empty () =
  { h_count = 0; h_sum = 0.0; h_min = Float.infinity;
    h_max = Float.neg_infinity; h_buckets = Array.make hist_n_buckets 0 }

let hist_bucket_index v =
  if not (Float.is_finite v) || v < hist_min_edge then 0
  else
    let i =
      1
      + int_of_float
          (Float.floor
             (float_of_int hist_buckets_per_decade
              *. Float.log10 (v /. hist_min_edge)))
    in
    if i >= hist_n_buckets then hist_n_buckets - 1 else i

let hist_bucket_lo i =
  if i <= 0 then 0.0
  else
    hist_min_edge
    *. (10.0 ** (float_of_int (i - 1) /. float_of_int hist_buckets_per_decade))

let hist_bucket_hi i =
  if i >= hist_n_buckets - 1 then Float.infinity
  else
    hist_min_edge
    *. (10.0 ** (float_of_int i /. float_of_int hist_buckets_per_decade))

let hist_observe h v =
  let buckets = Array.copy h.h_buckets in
  let i = hist_bucket_index v in
  buckets.(i) <- buckets.(i) + 1;
  { h_count = h.h_count + 1; h_sum = h.h_sum +. v;
    h_min = Float.min h.h_min v; h_max = Float.max h.h_max v;
    h_buckets = buckets }

let hist_merge a b =
  { h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
    h_buckets = Array.init hist_n_buckets (fun i -> a.h_buckets.(i) + b.h_buckets.(i)) }

let hist_of_values vs = List.fold_left hist_observe (hist_empty ()) vs

(* Quantile from the buckets: find the bucket holding the q-th observation,
   interpolate geometrically inside it (the buckets are log-spaced), then
   clamp to the observed [min, max] so degenerate histograms (one value,
   one bucket) report the exact observation. *)
let hist_percentile h q =
  if h.h_count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = Float.max 1.0 (q *. float_of_int h.h_count) in
    let v = ref h.h_max in
    let cum = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           if c > 0 then begin
             if float_of_int (!cum + c) >= target then begin
               let inside = (target -. float_of_int !cum) /. float_of_int c in
               let lo = hist_bucket_lo i and hi = hist_bucket_hi i in
               v :=
                 (if lo <= 0.0 then hi
                  else if Float.is_finite hi then lo *. ((hi /. lo) ** inside)
                  else lo);
               raise Exit
             end;
             cum := !cum + c
           end)
         h.h_buckets
     with Exit -> ());
    Float.max h.h_min (Float.min h.h_max !v)
  end

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

type open_span = {
  span_name : string;
  start : float;
  mutable span_fields : field list;  (** reverse order *)
}

let sinks : sink list ref = ref []
let recording = ref false
let counter_table : (string, int) Hashtbl.t = Hashtbl.create 16
let gauge_table : (string, float) Hashtbl.t = Hashtbl.create 16
let hist_table : (string, histogram) Hashtbl.t = Hashtbl.create 16
let stack : open_span list ref = ref []
let clock = ref Unix.gettimeofday

let enabled () = !recording
let now () = !clock ()
let set_clock f = clock := f

let emit ev = List.iter (fun s -> s.emit ev) !sinks

let add_sink s =
  sinks := !sinks @ [ s ];
  recording := true

let record () = recording := true

let reset () =
  List.iter (fun s -> s.close ()) !sinks;
  sinks := [];
  recording := false;
  Hashtbl.reset counter_table;
  Hashtbl.reset gauge_table;
  Hashtbl.reset hist_table;
  stack := []

(* Flush file-backed sinks even when the process exits early on an error
   path (e.g. the CLI's [exit 1] after a compile failure): without this, a
   buffered JSONL line or an entire Chrome trace document (written only on
   close) would be lost. Registered at most once; a no-op when [reset] has
   already run. *)
let at_exit_registered = ref false

let reset_at_exit () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Stdlib.at_exit reset
  end

(* --- domain-local capture shards ---

   An op is one deferred telemetry action, without a timestamp: timestamps
   are assigned when the op is replayed on the coordinator, so a replayed
   stream is byte-identical to inline execution whenever the installed
   clock is stateless (wall clock, or a fixed clock for determinism
   diffs). The shard also maintains local counter/gauge/histogram tables
   so reads issued inside a captured task (e.g. [Session]'s timing-gauge
   snapshot after a compile) see exactly the values the task itself
   produced — never the racing global state of other domains. *)

type op =
  | O_span_begin of string * field list
  | O_span_end of field list
  | O_add_field of string * Json.t
  | O_count of string * int
  | O_gauge of string * float
  | O_observe of string * float
  | O_point of string * field list

type recorded = op list  (* execution order *)

type capture = {
  mutable ops : op list;  (* reverse execution order *)
  c_counters : (string, int) Hashtbl.t;
  c_gauges : (string, float) Hashtbl.t;
  c_hists : (string, histogram) Hashtbl.t;
}

let capture_cell : capture option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_capture () = !(Domain.DLS.get capture_cell)

let capturing f =
  let cell = Domain.DLS.get capture_cell in
  let prev = !cell in
  cell :=
    Some
      { ops = []; c_counters = Hashtbl.create 8; c_gauges = Hashtbl.create 8;
        c_hists = Hashtbl.create 8 };
  let outcome = try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ()) in
  let ops = match !cell with Some c -> List.rev c.ops | None -> [] in
  cell := prev;
  (outcome, ops)

(* --- global-path primitives (coordinator domain only) --- *)

let span_begin_global name fields =
  let start = now () in
  let depth = List.length !stack in
  stack := { span_name = name; start; span_fields = List.rev fields } :: !stack;
  emit (Span_begin { name; ts = start; depth })

let span_end_global extra =
  match !stack with
  | [] -> ()
  | span :: rest ->
    let stop = now () in
    stack := rest;
    emit
      (Span_end
         { name = span.span_name; ts = span.start; dur = stop -. span.start;
           depth = List.length rest;
           fields = List.rev_append span.span_fields extra })

let add_field_global k v =
  match !stack with
  | span :: _ -> span.span_fields <- (k, v) :: span.span_fields
  | [] -> ()

let count_global name n =
  let total = n + Option.value ~default:0 (Hashtbl.find_opt counter_table name) in
  Hashtbl.replace counter_table name total;
  emit (Counter { name; incr = n; total; ts = now () })

let gauge_global name value =
  Hashtbl.replace gauge_table name value;
  emit (Gauge { name; value; ts = now () })

let observe_global name value =
  let h =
    match Hashtbl.find_opt hist_table name with
    | Some h -> h
    | None -> hist_empty ()
  in
  Hashtbl.replace hist_table name (hist_observe h value);
  emit (Hist { name; value; ts = now () })

let point_global name fields = emit (Point { name; ts = now (); fields })

(* --- capture-path application --- *)

let local_count c name n =
  Hashtbl.replace c.c_counters name
    (n + Option.value ~default:0 (Hashtbl.find_opt c.c_counters name))

let local_observe c name v =
  let h =
    match Hashtbl.find_opt c.c_hists name with
    | Some h -> h
    | None -> hist_empty ()
  in
  Hashtbl.replace c.c_hists name (hist_observe h v)

let capture_apply c op =
  c.ops <- op :: c.ops;
  match op with
  | O_count (name, n) -> local_count c name n
  | O_gauge (name, v) -> Hashtbl.replace c.c_gauges name v
  | O_observe (name, v) -> local_observe c name v
  | O_span_begin _ | O_span_end _ | O_add_field _ | O_point _ -> ()

let apply op =
  match current_capture () with
  | Some c -> capture_apply c op
  | None -> (
    match op with
    | O_span_begin (name, fields) -> span_begin_global name fields
    | O_span_end extra -> span_end_global extra
    | O_add_field (k, v) -> add_field_global k v
    | O_count (name, n) -> count_global name n
    | O_gauge (name, v) -> gauge_global name v
    | O_observe (name, v) -> observe_global name v
    | O_point (name, fields) -> point_global name fields)

let replay ops = if !recording then List.iter apply ops

(* --- public instrumentation points --- *)

let with_span ?(fields = []) name f =
  if not !recording then f ()
  else begin
    apply (O_span_begin (name, fields));
    match f () with
    | v -> apply (O_span_end []); v
    | exception e ->
      apply (O_span_end [ ("raised", Json.Str (Printexc.to_string e)) ]);
      raise e
  end

let add_field k v = if !recording then apply (O_add_field (k, v))
let count ?(n = 1) name = if !recording then apply (O_count (name, n))
let gauge name value = if !recording then apply (O_gauge (name, value))
let observe name value = if !recording then apply (O_observe (name, value))
let point name fields = if !recording then apply (O_point (name, fields))

(* --- reads: capture-local inside a captured task, global otherwise --- *)

let counter_value name =
  let table =
    match current_capture () with Some c -> c.c_counters | None -> counter_table
  in
  Option.value ~default:0 (Hashtbl.find_opt table name)

let counters () =
  let table =
    match current_capture () with Some c -> c.c_counters | None -> counter_table
  in
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let gauge_table_now () =
  match current_capture () with Some c -> c.c_gauges | None -> gauge_table

let gauge_value name = Hashtbl.find_opt (gauge_table_now ()) name

let gauges () =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) (gauge_table_now ()) [])

let gauges_with_prefix prefix =
  let plen = String.length prefix in
  List.sort compare
    (Hashtbl.fold
       (fun k v acc ->
         if String.length k >= plen && String.sub k 0 plen = prefix then
           (k, v) :: acc
         else acc)
       (gauge_table_now ()) [])

let histogram_value name =
  let table =
    match current_capture () with Some c -> c.c_hists | None -> hist_table
  in
  Hashtbl.find_opt table name

let histograms () =
  let table =
    match current_capture () with Some c -> c.c_hists | None -> hist_table
  in
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let memory_sink () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )
