(* Telemetry core: a process-global registry of sinks plus counter/gauge
   tables and the open-span stack. Global rather than threaded through
   every signature so instrumentation points stay one-liners and the
   disabled state costs a single flag read. *)

type field = string * Json.t

type event =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      ts : float;
      dur : float;
      depth : int;
      fields : field list;
    }
  | Counter of { name : string; incr : int; total : int; ts : float }
  | Gauge of { name : string; value : float; ts : float }
  | Point of { name : string; ts : float; fields : field list }

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

type open_span = {
  span_name : string;
  start : float;
  mutable span_fields : field list;  (** reverse order *)
}

let sinks : sink list ref = ref []
let recording = ref false
let counter_table : (string, int) Hashtbl.t = Hashtbl.create 16
let gauge_table : (string, float) Hashtbl.t = Hashtbl.create 16
let stack : open_span list ref = ref []
let clock = ref Unix.gettimeofday

let enabled () = !recording
let now () = !clock ()
let set_clock f = clock := f

let emit ev = List.iter (fun s -> s.emit ev) !sinks

let add_sink s =
  sinks := !sinks @ [ s ];
  recording := true

let record () = recording := true

let reset () =
  List.iter (fun s -> s.close ()) !sinks;
  sinks := [];
  recording := false;
  Hashtbl.reset counter_table;
  Hashtbl.reset gauge_table;
  stack := []

let with_span ?(fields = []) name f =
  if not !recording then f ()
  else begin
    let start = now () in
    let depth = List.length !stack in
    let span = { span_name = name; start; span_fields = List.rev fields } in
    stack := span :: !stack;
    emit (Span_begin { name; ts = start; depth });
    let finish extra =
      let stop = now () in
      stack := (match !stack with _ :: rest -> rest | [] -> []);
      emit
        (Span_end
           { name; ts = start; dur = stop -. start; depth;
             fields = List.rev_append span.span_fields extra })
    in
    match f () with
    | v -> finish []; v
    | exception e ->
      finish [ ("raised", Json.Str (Printexc.to_string e)) ];
      raise e
  end

let add_field k v =
  if !recording then
    match !stack with
    | span :: _ -> span.span_fields <- (k, v) :: span.span_fields
    | [] -> ()

let count ?(n = 1) name =
  if !recording then begin
    let total = n + Option.value ~default:0 (Hashtbl.find_opt counter_table name) in
    Hashtbl.replace counter_table name total;
    emit (Counter { name; incr = n; total; ts = now () })
  end

let counter_value name =
  Option.value ~default:0 (Hashtbl.find_opt counter_table name)

let counters () =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counter_table [])

let gauge name value =
  if !recording then begin
    Hashtbl.replace gauge_table name value;
    emit (Gauge { name; value; ts = now () })
  end

let gauge_value name = Hashtbl.find_opt gauge_table name

let gauges () =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauge_table [])

let point name fields =
  if !recording then emit (Point { name; ts = now (); fields })

let memory_sink () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )
