(** Analyses over {!Trace_reader} traces: per-span-name duration
    statistics with histograms and percentiles, critical-path extraction,
    and diffs — span totals between two runs, and stall-class cycles
    between two profiler traces (the table that explains a speedup).

    Durations are in the producing clock's unit (seconds for compiler
    traces, simulated cycles for gpusim profiler traces); nothing here
    assumes a unit. *)

(** {1 Per-name span statistics} *)

type span_stats = {
  ss_name : string;
  ss_count : int;
  ss_total : float;  (** sum of durations over all instances *)
  ss_self : float;  (** total minus time spent in children *)
  ss_hist : Obs.histogram;  (** distribution of individual durations *)
}

val span_stats : Trace_reader.trace -> span_stats list
(** Aggregated by span name, sorted by total duration descending (ties by
    name). *)

(** {1 Critical path} *)

type critical_node = {
  cn_name : string;
  cn_dur : float;
  cn_self : float;  (** duration minus the chosen child's duration *)
  cn_depth : int;
}

val critical_path : Trace_reader.span -> critical_node list
(** Greedy longest-child descent from a root span: at each level the path
    follows the child with the largest duration; the remainder (siblings
    plus genuine self time) is reported as [cn_self]. *)

val critical_path_of_trace : Trace_reader.trace -> critical_node list
(** Critical path of the longest root span; [[]] on a spanless trace. *)

(** {1 Span diff} *)

type span_delta = {
  sd_name : string;
  sd_old_total : float option;  (** [None]: span only in the new run *)
  sd_new_total : float option;  (** [None]: span disappeared *)
  sd_delta : float;  (** new − old, a missing side counted as 0 *)
}

val diff_spans :
  old_trace:Trace_reader.trace -> new_trace:Trace_reader.trace ->
  span_delta list
(** Per-name total-duration deltas over the union of span names, sorted
    by delta magnitude descending. *)

(** {1 Stall diff} *)

type stall_delta = {
  st_class : string;
  st_old : float;
  st_new : float;
  st_delta : float;  (** new − old *)
}

val stall_breakdown_of_trace : Trace_reader.trace -> (string * float) list
(** Per-stall-class cycle totals from the trace's cumulative
    [stall.<class>] gauges (emitted by the gpusim profiler for the
    critical thread block of the representative wave). The classes
    partition that block's cycles exactly, so the breakdown sums to its
    total cycle count. *)

val diff_stalls :
  old_stalls:(string * float) list -> new_stalls:(string * float) list ->
  stall_delta list
(** Per-class deltas over the union of class names (sorted); a class
    missing on one side counts as 0 there. Because each side's classes
    partition its total exactly, the per-class deltas sum to the total
    cycle delta. *)

val stall_total : stall_delta list -> float * float * float
(** [(old_total, new_total, delta_total)] — the column sums. *)

(** {1 Text rendering}

    Shared by the [alcop trace] CLI verbs and the golden tests. *)

val fmt_num : float -> string
(** Compact numeric cell: integers without a fraction, otherwise 4
    significant digits; ["-"] for nan. *)

val fmt_signed : float -> string
(** Like {!fmt_num} with an explicit [+] on non-negative values. *)

val summary_lines : Trace_reader.trace -> string list
(** Event/span counts, per-name span table with p50/p90/p99, critical
    path, counters, gauges, histograms. *)

val diff_lines :
  old_trace:Trace_reader.trace -> new_trace:Trace_reader.trace ->
  string list
(** Span-delta table plus, when either trace carries [stall.<class>]
    gauges, the stall-class delta table with an exact total row. *)
