(** Streaming reader for the JSONL event logs written by {!Sinks.jsonl}:
    the inverse of the sink. Parses lines back into {!Obs.event}s and
    reconstructs the derived state — the span forest, final counter/gauge
    values and their time series, point events, and histograms aggregated
    from individual observations — so offline analyses (trace summaries,
    diffs, reports) work from logs alone.

    Malformed lines (torn writes, truncation, random corruption) are
    skipped and {e counted}, never raised mid-stream: a reader that dies
    on one bad byte of a 50k-line log helps nobody. The count travels
    with the result ([tr_skipped] and the [int] halves of the tuples
    below) so callers print one warning naming how much was lost rather
    than silently pretending the log was whole. Blank lines are ignored
    and not counted. [Error] is reserved for I/O failure. *)

(** {1 File / JSONL plumbing}

    Shared by other JSONL consumers (e.g. [Tune.Tuning_log] and
    {!Benchdb}'s history store). *)

val read_all : string -> (string, string) result
(** Whole file as a string; [Error msg] on I/O failure. *)

val json_of_file : string -> (Json.t, string) result
(** Parse a whole file as one JSON document. *)

val fold_jsonl_file :
  ?on_skip:(lineno:int -> msg:string -> unit) ->
  string -> init:'a -> f:('a -> Json.t -> 'a) -> ('a * int, string) result
(** Fold over a JSONL file one parsed line at a time (streaming — the
    file is never held in memory whole). Malformed lines are skipped and
    counted into the returned [int] ([on_skip], when given, observes each
    with its line number); [Error] only on I/O failure. *)

(** {1 Events} *)

val event_of_json : Json.t -> (Obs.event, string) result
(** Inverse of [Sinks.json_of_event]. *)

val events_of_jsonl : string -> Obs.event list * int
(** Parse an in-memory JSONL document (e.g. from a test sink). The [int]
    counts skipped lines: unparseable JSON or JSON that is not an event. *)

val events_of_file : string -> (Obs.event list * int, string) result

(** {1 Trace reconstruction} *)

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
  sp_fields : (string * Json.t) list;
  sp_children : span list;  (** in start order *)
}

type point = {
  pt_name : string;
  pt_ts : float;
  pt_fields : (string * Json.t) list;
}

type series = (float * float) list
(** [(ts, value)] samples in emission order. *)

type trace = {
  tr_events : int;  (** total events consumed *)
  tr_skipped : int;  (** malformed lines skipped while reading *)
  tr_spans : span list;  (** root spans in start order *)
  tr_counters : (string * int) list;  (** final totals, sorted by name *)
  tr_counter_series : (string * series) list;
  tr_gauges : (string * float) list;  (** last value, sorted by name *)
  tr_gauge_series : (string * series) list;
  tr_points : point list;  (** in emission order *)
  tr_hists : (string * Obs.histogram) list;
      (** aggregated from [Hist] observations, sorted by name *)
}

val trace_of_events : Obs.event list -> trace
(** Rebuild the span forest from [Span_end] events (which arrive in
    completion order carrying their nesting depth) and aggregate metrics.
    Spans left open in a truncated log are absent; their already-closed
    children surface as extra roots. [tr_skipped] is 0 here — only the
    file/JSONL entry points below can observe malformed lines. *)

val trace_of_jsonl : string -> (trace, string) result

val load : string -> (trace, string) result
(** [trace_of_events] over [events_of_file]. *)

(** {1 Conveniences} *)

val iter_spans : (span -> unit) -> span list -> unit
(** Pre-order traversal of a span forest. *)

val span_count : trace -> int

val gauge : trace -> string -> float option

val counter : trace -> string -> int
(** 0 when absent. *)
