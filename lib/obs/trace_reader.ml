(* Streaming JSONL reader: the inverse of [Sinks.jsonl]. Parses sink
   output back into [Obs.event]s and reconstructs the derived state —
   span trees, final counter/gauge values and their time series, point
   events, histograms — so analyses ("why is variant A faster", "did this
   change regress a pass") run on logs instead of on a live process.

   Parsing is line-by-line on [Json.of_string]; a malformed line (torn
   write, truncation, bit rot) is skipped and *counted*, never raised
   mid-stream — a reader that dies on line 48 of a 50k-line log helps
   nobody. The count travels with the result ([tr_skipped], the [int]
   halves of the tuples below) so callers surface one warning instead of
   silently pretending the log was whole. *)

(* --- shared JSONL / file plumbing (also used by Tune.Tuning_log) --- *)

let read_all path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let json_of_file path =
  match read_all path with
  | Error _ as e -> e
  | Ok contents ->
    (match Json.of_string (String.trim contents) with
     | Ok j -> Ok j
     | Error e -> Error (path ^ ": " ^ e))

let fold_jsonl_file ?on_skip path ~init ~f =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let skipped = ref 0 in
        let rec go acc lineno =
          match input_line ic with
          | exception End_of_file -> Ok (acc, !skipped)
          | line when String.trim line = "" -> go acc (lineno + 1)
          | line ->
            (match Json.of_string line with
             | Ok j -> go (f acc j) (lineno + 1)
             | Error e ->
               incr skipped;
               (match on_skip with
                | Some g -> g ~lineno ~msg:e
                | None -> ());
               go acc (lineno + 1))
        in
        go init 1)

(* --- events --- *)

let field_str key j =
  match Json.member key j with Some (Json.Str s) -> Some s | _ -> None

let field_num key j = Option.bind (Json.member key j) Json.number

let field_int key j =
  match Json.member key j with Some (Json.Int i) -> Some i | _ -> None

let field_obj key j =
  match Json.member key j with Some (Json.Obj fields) -> fields | _ -> []

let event_of_json j =
  let require what = function
    | Some v -> Ok v
    | None -> Error ("event missing " ^ what)
  in
  let ( let* ) = Result.bind in
  match field_str "type" j with
  | None -> Error "event without a \"type\" field"
  | Some "span_begin" ->
    let* name = require "name" (field_str "name" j) in
    let* ts = require "ts" (field_num "ts" j) in
    let* depth = require "depth" (field_int "depth" j) in
    Ok (Obs.Span_begin { name; ts; depth })
  | Some "span" ->
    let* name = require "name" (field_str "name" j) in
    let* ts = require "ts" (field_num "ts" j) in
    let* dur = require "dur" (field_num "dur" j) in
    let* depth = require "depth" (field_int "depth" j) in
    Ok (Obs.Span_end { name; ts; dur; depth; fields = field_obj "fields" j })
  | Some "counter" ->
    let* name = require "name" (field_str "name" j) in
    let* incr = require "incr" (field_int "incr" j) in
    let* total = require "total" (field_int "total" j) in
    let* ts = require "ts" (field_num "ts" j) in
    Ok (Obs.Counter { name; incr; total; ts })
  | Some "gauge" ->
    let* name = require "name" (field_str "name" j) in
    let* value = require "value" (field_num "value" j) in
    let* ts = require "ts" (field_num "ts" j) in
    Ok (Obs.Gauge { name; value; ts })
  | Some "point" ->
    let* name = require "name" (field_str "name" j) in
    let* ts = require "ts" (field_num "ts" j) in
    Ok (Obs.Point { name; ts; fields = field_obj "fields" j })
  | Some "hist" ->
    let* name = require "name" (field_str "name" j) in
    let* value = require "value" (field_num "value" j) in
    let* ts = require "ts" (field_num "ts" j) in
    Ok (Obs.Hist { name; value; ts })
  | Some other -> Error ("unknown event type " ^ other)

let events_of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let skipped = ref 0 in
  let rec go acc = function
    | [] -> (List.rev acc, !skipped)
    | line :: rest when String.trim line = "" -> go acc rest
    | line :: rest ->
      (match Result.bind (Json.of_string line) event_of_json with
       | Ok ev -> go (ev :: acc) rest
       | Error _ ->
         incr skipped;
         go acc rest)
  in
  go [] lines

let events_of_file path =
  match
    fold_jsonl_file path ~init:([], 0) ~f:(fun (evs, bad) j ->
        match event_of_json j with
        | Ok ev -> (ev :: evs, bad)
        | Error _ -> (evs, bad + 1))
  with
  | Error _ as e -> e
  | Ok ((evs, bad), skipped) -> Ok (List.rev evs, bad + skipped)

(* --- trace reconstruction --- *)

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
  sp_fields : (string * Json.t) list;
  sp_children : span list;
}

type point = {
  pt_name : string;
  pt_ts : float;
  pt_fields : (string * Json.t) list;
}

type series = (float * float) list

type trace = {
  tr_events : int;
  tr_skipped : int;
  tr_spans : span list;
  tr_counters : (string * int) list;
  tr_counter_series : (string * series) list;
  tr_gauges : (string * float) list;
  tr_gauge_series : (string * series) list;
  tr_points : point list;
  tr_hists : (string * Obs.histogram) list;
}

(* Span_end events arrive in completion (post) order carrying their
   nesting depth, so the forest rebuilds with one pending-children table:
   a span closing at depth d adopts everything pending at depth d+1.
   Spans that never closed (truncated log) are simply absent; orphans at
   depth > 0 whose parent never closed surface as extra roots. *)
let trace_of_events events =
  let pending : (int, span list) Hashtbl.t = Hashtbl.create 8 in
  let take depth =
    match Hashtbl.find_opt pending depth with
    | Some spans ->
      Hashtbl.remove pending depth;
      List.rev spans
    | None -> []
  in
  let push depth span =
    Hashtbl.replace pending depth
      (span :: Option.value ~default:[] (Hashtbl.find_opt pending depth))
  in
  let counters : (string, int * series) Hashtbl.t = Hashtbl.create 8 in
  let gauges : (string, float * series) Hashtbl.t = Hashtbl.create 8 in
  let hists : (string, Obs.histogram) Hashtbl.t = Hashtbl.create 8 in
  let points = ref [] in
  let n = ref 0 in
  List.iter
    (fun ev ->
      incr n;
      match (ev : Obs.event) with
      | Obs.Span_begin _ -> ()
      | Obs.Span_end { name; ts; dur; depth; fields } ->
        let children = take (depth + 1) in
        push depth
          { sp_name = name; sp_start = ts; sp_dur = dur; sp_depth = depth;
            sp_fields = fields; sp_children = children }
      | Obs.Counter { name; total; ts; _ } ->
        let series =
          match Hashtbl.find_opt counters name with
          | Some (_, s) -> s
          | None -> []
        in
        Hashtbl.replace counters name (total, (ts, float_of_int total) :: series)
      | Obs.Gauge { name; value; ts } ->
        let series =
          match Hashtbl.find_opt gauges name with
          | Some (_, s) -> s
          | None -> []
        in
        Hashtbl.replace gauges name (value, (ts, value) :: series)
      | Obs.Hist { name; value; _ } ->
        let h =
          Option.value ~default:(Obs.hist_empty ()) (Hashtbl.find_opt hists name)
        in
        Hashtbl.replace hists name (Obs.hist_observe h value)
      | Obs.Point { name; ts; fields } ->
        points := { pt_name = name; pt_ts = ts; pt_fields = fields } :: !points)
    events;
  let roots =
    Hashtbl.fold (fun _ spans acc -> List.rev_append spans acc) pending []
    |> List.sort (fun a b -> compare (a.sp_start, a.sp_depth) (b.sp_start, b.sp_depth))
  in
  let sorted_assoc fold_tbl project =
    List.sort compare (fold_tbl (fun k v acc -> (k, project v) :: acc) [])
  in
  { tr_events = !n;
    tr_skipped = 0;
    tr_spans = roots;
    tr_counters = sorted_assoc (fun f -> Hashtbl.fold f counters) fst;
    tr_counter_series =
      sorted_assoc (fun f -> Hashtbl.fold f counters) (fun (_, s) -> List.rev s);
    tr_gauges = sorted_assoc (fun f -> Hashtbl.fold f gauges) fst;
    tr_gauge_series =
      sorted_assoc (fun f -> Hashtbl.fold f gauges) (fun (_, s) -> List.rev s);
    tr_points = List.rev !points;
    tr_hists = sorted_assoc (fun f -> Hashtbl.fold f hists) Fun.id }

let trace_of_jsonl text =
  let evs, skipped = events_of_jsonl text in
  Ok { (trace_of_events evs) with tr_skipped = skipped }

let load path =
  Result.map
    (fun (evs, skipped) -> { (trace_of_events evs) with tr_skipped = skipped })
    (events_of_file path)

(* --- small conveniences over a trace --- *)

let rec iter_spans f spans =
  List.iter
    (fun s ->
      f s;
      iter_spans f s.sp_children)
    spans

let span_count trace =
  let n = ref 0 in
  iter_spans (fun _ -> incr n) trace.tr_spans;
  !n

let gauge trace name = List.assoc_opt name trace.tr_gauges

let counter trace name =
  Option.value ~default:0 (List.assoc_opt name trace.tr_counters)
