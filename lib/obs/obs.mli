(** Structured telemetry for the compile–simulate–tune pipeline:
    hierarchical wall-clock spans, named counters and gauges, and free-form
    point events, fanned out to pluggable sinks.

    The default state has no sink installed and every call is a no-op (one
    flag read), so instrumented hot paths — the evaluator, the timing
    simulator — cost nothing in benchmarks. Install a sink (see {!Sinks})
    or call {!record} to start recording.

    Not thread-safe: the compiler itself is single-threaded. *)

type field = string * Json.t

type event =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      ts : float;  (** start time, seconds *)
      dur : float;  (** seconds *)
      depth : int;
      fields : field list;
    }
  | Counter of { name : string; incr : int; total : int; ts : float }
  | Gauge of { name : string; value : float; ts : float }
  | Point of { name : string; ts : float; fields : field list }

type sink = {
  emit : event -> unit;
  close : unit -> unit;
      (** flush / finalize; called by {!reset} exactly once *)
}

val enabled : unit -> bool
(** True when at least one sink is installed or {!record} was called. *)

val add_sink : sink -> unit

val record : unit -> unit
(** Turn recording on without any sink — counters and gauges accumulate
    and can be read back with {!counter_value} / {!gauge_value}. *)

val reset : unit -> unit
(** Close every sink, drop all counters, gauges and open spans, and return
    to the zero-cost no-op state. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (default [Unix.gettimeofday]); tests install a
    deterministic counter. {!reset} keeps the installed clock. *)

val now : unit -> float

val with_span : ?fields:field list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. Emits [Span_begin]/[Span_end] with
    nesting depth; an escaping exception still ends the span (with a
    ["raised"] field) before re-raising. When disabled this is exactly
    [f ()]. *)

val add_field : string -> Json.t -> unit
(** Attach a field to the innermost open span (no-op when disabled or no
    span is open). *)

val count : ?n:int -> string -> unit
(** Increment a named counter by [n] (default 1). *)

val counter_value : string -> int
(** Current total of a counter; 0 if never incremented. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name — deterministic across runs for a
    deterministic workload. *)

val gauge : string -> float -> unit
(** Set a named gauge to its latest value. *)

val gauge_value : string -> float option

val gauges : unit -> (string * float) list
(** All gauges, sorted by name. *)

val point : string -> field list -> unit
(** Emit one free-form event (e.g. one tuner trial). *)

val memory_sink : unit -> sink * (unit -> event list)
(** A sink that records every event in order; the second component reads
    the events captured so far. *)
