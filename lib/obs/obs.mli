(** Structured telemetry for the compile–simulate–tune pipeline:
    hierarchical wall-clock spans, named counters and gauges, and free-form
    point events, fanned out to pluggable sinks.

    The default state has no sink installed and every call is a no-op (one
    flag read), so instrumented hot paths — the evaluator, the timing
    simulator — cost nothing in benchmarks. Install a sink (see {!Sinks})
    or call {!record} to start recording.

    Domain-safety: the global tables, sink list and span stack belong to
    one coordinating domain (install sinks, drain metrics and call
    {!reset} only there). Worker domains participate through
    {!capturing}, which redirects every instrumentation call on the
    current domain into a private shard (op log plus local
    counter/gauge/histogram tables); the coordinator merges shards
    exactly, in an order of its choosing, with {!replay}. {!Alcop_par}'s
    pool wraps every task this way — see doc/parallelism.md for the
    determinism contract. *)

type field = string * Json.t

type event =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      ts : float;  (** start time, seconds *)
      dur : float;  (** seconds *)
      depth : int;
      fields : field list;
    }
  | Counter of { name : string; incr : int; total : int; ts : float }
  | Gauge of { name : string; value : float; ts : float }
  | Point of { name : string; ts : float; fields : field list }
  | Hist of { name : string; value : float; ts : float }
      (** one histogram observation; the distribution is aggregated by the
          reader / the in-memory table, not carried in the event *)

(** {1 Histograms}

    A fixed log-spaced bucket scheme shared by every histogram metric:
    {!hist_buckets_per_decade} buckets per decade from 1e-9 up, plus an
    underflow bucket 0 (values below the first edge, including zero) and a
    final overflow bucket. One fixed scheme makes histograms mergeable
    across runs and exactly reconstructible from a JSONL event log. *)

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [+inf] while empty *)
  h_max : float;  (** [-inf] while empty *)
  h_buckets : int array;  (** length {!hist_n_buckets}; treat as read-only *)
}

val hist_buckets_per_decade : int
val hist_n_buckets : int

val hist_empty : unit -> histogram

val hist_bucket_index : float -> int

val hist_bucket_lo : int -> float
(** Lower edge of a bucket; [0.] for the underflow bucket. *)

val hist_bucket_hi : int -> float
(** Upper edge; [infinity] for the overflow bucket. *)

val hist_observe : histogram -> float -> histogram

val hist_merge : histogram -> histogram -> histogram

val hist_of_values : float list -> histogram

val hist_percentile : histogram -> float -> float
(** [hist_percentile h q] with [q] in [[0, 1]]: the q-quantile estimated
    from the buckets (geometric interpolation inside the winning bucket),
    clamped to the observed [[h_min, h_max]]. [nan] on an empty
    histogram. Bucket resolution bounds the relative error at
    [10^(1/hist_buckets_per_decade) - 1] (~33% with 8 buckets/decade). *)

type sink = {
  emit : event -> unit;
  close : unit -> unit;
      (** flush / finalize; called by {!reset} exactly once *)
}

val enabled : unit -> bool
(** True when at least one sink is installed or {!record} was called. *)

val add_sink : sink -> unit

val record : unit -> unit
(** Turn recording on without any sink — counters and gauges accumulate
    and can be read back with {!counter_value} / {!gauge_value}. *)

val reset : unit -> unit
(** Close every sink, drop all counters, gauges, histograms and open
    spans, and return to the zero-cost no-op state. *)

val reset_at_exit : unit -> unit
(** Register (at most once per process) an [at_exit] handler that runs
    {!reset} — so file-backed sinks are closed and flushed even when the
    process exits early on an error path. The CLI calls this whenever it
    installs a file sink; a normal-path {!reset} makes the handler a
    no-op. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (default [Unix.gettimeofday]); tests install a
    deterministic counter. {!reset} keeps the installed clock. *)

val now : unit -> float

val with_span : ?fields:field list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. Emits [Span_begin]/[Span_end] with
    nesting depth; an escaping exception still ends the span (with a
    ["raised"] field) before re-raising. When disabled this is exactly
    [f ()]. *)

val add_field : string -> Json.t -> unit
(** Attach a field to the innermost open span (no-op when disabled or no
    span is open). *)

val count : ?n:int -> string -> unit
(** Increment a named counter by [n] (default 1). *)

val counter_value : string -> int
(** Current total of a counter; 0 if never incremented. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name — deterministic across runs for a
    deterministic workload. *)

val gauge : string -> float -> unit
(** Set a named gauge to its latest value. *)

val gauge_value : string -> float option

val gauges : unit -> (string * float) list
(** All gauges, sorted by name. *)

val gauges_with_prefix : string -> (string * float) list
(** Gauges whose name starts with the given prefix, sorted by name.
    Equivalent to filtering {!gauges} but without materializing the full
    table — hot paths (the tuner's per-trial stall breakdown) call this
    once per trial. *)

val observe : string -> float -> unit
(** Record one observation into a named histogram (and emit a [Hist]
    event). Unlike a gauge, which keeps only the latest value, a histogram
    accumulates the whole distribution — e.g. per-pass wall time across a
    tuning sweep, or candidate latencies across a search. *)

val histogram_value : string -> histogram option

val histograms : unit -> (string * histogram) list
(** All histograms, sorted by name. *)

val point : string -> field list -> unit
(** Emit one free-form event (e.g. one tuner trial). *)

val memory_sink : unit -> sink * (unit -> event list)
(** A sink that records every event in order; the second component reads
    the events captured so far. *)

(** {1 Domain-local capture}

    The bridge that lets worker domains use the one-liner instrumentation
    API without touching the coordinator's global state. Inside
    {!capturing}, every [with_span]/[count]/[gauge]/[observe]/[point]/
    [add_field] call on the current domain is appended (without a
    timestamp) to a private op log and mirrored into shard-local
    counter/gauge/histogram tables; reads ([counter_value], [gauges],
    [gauges_with_prefix], …) see only the shard, i.e. exactly what the
    task itself produced. No sink is touched and no event is emitted
    until the coordinator calls {!replay}. *)

type recorded
(** An ordered op log captured on some domain, ready to be merged. *)

val capturing :
  (unit -> 'a) -> ('a, exn * Printexc.raw_backtrace) result * recorded
(** Run the thunk with capture active on the current domain and return
    its outcome together with the ops it recorded. An escaping exception
    is returned (with its backtrace) rather than raised, so the partial
    op log survives; nested [capturing] calls stack — the inner capture
    ends at its own boundary and the outer one resumes. *)

val replay : recorded -> unit
(** Re-execute a captured op log through the ordinary global path:
    counter totals are recomputed from the global table, histogram
    observations are re-applied one by one (an exact merge), spans
    re-nest under whatever span is open at replay time, and timestamps
    are taken from the installed clock at replay. Replaying shards in
    task order is indistinguishable from having run the tasks inline —
    byte-identical when the clock is stateless (wall clock or a fixed
    clock). Calling [replay] while a capture is active re-captures the
    ops into the active shard, which is what nested pools need. No-op
    when recording is off. *)
