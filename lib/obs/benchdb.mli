(** The continuous performance observatory: statistical summaries of
    repeated benchmark runs, the machine/environment fingerprint that
    makes numbers comparable, the append-only on-disk history store, and
    the change-point analyzer + trend charts that turn the history into a
    regression gate.

    Schema {b alcop-selfbench-v2}: one record per [bench … record] run —
    a fingerprint plus, per benchmark, robust statistics over [--runs N]
    repetitions (median / MAD / min / p90 and a relative noise estimate).
    Every v2 benchmark entry still carries [ns_per_run] (the median) and
    [ops_per_sec], so v1 readers — including older [bench compare] —
    keep working; {!record_of_json} reads both versions.

    The history is one JSONL file per machine fingerprint under
    {!default_history_dir}, append-only (single atomic write per record)
    and corruption-tolerant on read (bad lines are skipped and counted,
    mirroring {!Trace_reader}). See doc/benchmarking.md. *)

(** {1 Robust statistics} *)

type stats = {
  s_runs : int;  (** samples the summary is over *)
  s_median_ns : float;
  s_mad_ns : float;  (** median absolute deviation from the median *)
  s_min_ns : float;
  s_p90_ns : float;
  s_mean_ns : float;
}

val median : float list -> float
(** 0. on the empty list; the mean of the middle pair for even lengths. *)

val mad : ?center:float -> float list -> float
(** Median absolute deviation around [center] (default: the median). *)

val percentile : float -> float list -> float
(** Linear interpolation between order statistics; [percentile 0.9]. *)

val summarize : float list -> stats
(** Robust summary of raw per-run times in nanoseconds. *)

val noise : stats -> float
(** Relative noise estimate [mad/median] (0 when the median is 0 —
    a single run has no measurable noise). *)

val ops_per_sec : stats -> float
(** [1e9 / median_ns]; 0 when the median is 0. *)

(** {1 Machine fingerprint} *)

type fingerprint = {
  f_ocaml : string;  (** [Sys.ocaml_version] *)
  f_os : string;  (** [Sys.os_type] *)
  f_cores : int;  (** recommended domain count *)
  f_jobs : string;  (** [$ALCOP_JOBS], [""] when unset *)
  f_host_hash : string;  (** 8 hex chars of MD5(hostname) — no PII *)
  f_git_rev : string;  (** short HEAD rev, ["unknown"] outside a repo *)
}

val collect_fingerprint :
  ?hostname:string -> ?git_rev:string -> ?jobs:string -> ?cores:int ->
  unit -> fingerprint
(** Probe the running environment; the optional arguments override the
    probes (for tests and for callers that already know). *)

val fingerprint_id : fingerprint -> string
(** The history-stream key, e.g. ["unix-ocaml5.1.0-1c-jauto"]. Derived
    from OS, OCaml version, core count and [$ALCOP_JOBS] {e only}: the
    git rev changes every commit and CI hostnames change every run, so
    keying on either would shred the history into single-record files.
    Both stay recorded inside each record. *)

(** {1 Records (schema v2, reads v1)} *)

type bench = {
  b_id : string;
  b_stats : stats;
  b_host : Json.t option;
      (** the sweep rows' host-utilization sub-object (doc/hostprof.md) *)
}

type record = {
  r_schema : string;
  r_generated_by : string;
  r_machine : string;  (** simulated hardware name *)
  r_unit : string;
  r_ts : float option;  (** unix seconds; [None] in v1 files *)
  r_fingerprint : fingerprint option;  (** [None] in v1 files *)
  r_benches : bench list;
}

val schema_v1 : string
val schema_v2 : string

val make_record :
  ?ts:float -> ?generated_by:string -> machine:string ->
  fingerprint:fingerprint -> bench list -> record

val record_to_json : record -> Json.t

val record_of_json : Json.t -> (record, string) result
(** Reads both [alcop-selfbench-v2] and legacy [alcop-selfbench-v1]
    documents (v1 entries become single-run stats with zero MAD). *)

val read_file : string -> (record, string) result
(** One whole-file record (the BENCH_gpusim.json shape, either schema). *)

val write_file : string -> record -> unit

(** {1 History store} *)

val default_history_dir : string
(** ["results/bench_history"] *)

val history_file : dir:string -> string -> string
(** [history_file ~dir id] — the JSONL path for machine stream [id]. *)

val append : dir:string -> record -> (string, string) result
(** Append one record to its machine's stream (creating [dir] as
    needed) as a single [O_APPEND] write, so concurrent appenders cannot
    interleave partial lines. Returns the file path written. *)

val read_history : string -> (record list * int, string) result
(** All records of one stream file in append order, plus the count of
    skipped (corrupt or alien) lines. [Error] only on I/O failure. *)

val machines : dir:string -> (string * string) list
(** [(machine id, file path)] for every [*.jsonl] stream in [dir],
    sorted by id; [] when the directory does not exist. *)

(** {1 Trend analysis} *)

type series_point = {
  sp_record : int;  (** index of the record in its stream *)
  sp_ops : float;  (** ops/sec (median-based) *)
  sp_noise : float;  (** absolute noise in ops/sec (MAD-propagated) *)
}

val bench_ids : record list -> string list
(** Union of benchmark ids, in first-seen order. *)

val series : bench_id:string -> record list -> series_point list
(** The per-benchmark trend series across a stream. *)

type change_point = {
  cp_index : int;
      (** series position of the {e first record after} the shift *)
  cp_before : float;  (** left-window median, ops/sec *)
  cp_after : float;  (** right-window median, ops/sec *)
  cp_ratio : float;  (** [after / before]; < 1 is a regression *)
  cp_sigma : float;  (** the noise floor the shift was tested against *)
}

val change_points :
  ?window:int -> ?sensitivity:float -> ?min_rel:float ->
  (float * float) array -> change_point list
(** Sliding median-shift change-point detection over [(value, noise)]
    points. At each boundary the medians of up to [window] points on
    either side are compared against a noise floor
    [sigma = max(1.4826·MAD(residuals), median per-point noise,
    min_rel·|left median|)]; a boundary fires when
    [|shift| > sensitivity·sigma], and consecutive firing boundaries
    collapse to the one with the largest [|shift|/sigma] (ties broken
    toward the largest single-step jump, which pins the boundary to
    where the level actually moved). Defaults:
    [window = 5], [sensitivity = 4.0], [min_rel = 0.02] — the [min_rel]
    floor means shifts under [sensitivity·2%] can never fire, which is
    what keeps identical-distribution reruns at zero false positives
    (tested across 100 seeds). *)

type trend = {
  t_bench : string;
  t_points : series_point list;
  t_changes : change_point list;
}

val trends :
  ?window:int -> ?sensitivity:float -> ?min_rel:float ->
  record list -> trend list
(** One {!trend} per benchmark id of the stream. *)

val regressions : trend list -> (trend * change_point) list
(** The change points whose ratio is below 1 (throughput dropped). *)

val first_bad : record list -> change_point -> trend -> string
(** Human description of the first-bad record behind a change point:
    record number plus its git rev and timestamp when recorded. *)

val trend_lines :
  machine:string -> skipped:int -> record list -> trend list -> string list
(** Text report: per-benchmark summary, every change point with
    magnitude and first-bad record, and a closing regression count. *)

(** {1 Trend charts (inline SVG, light/dark)} *)

val trend_sections :
  ?max_charts:int -> machine:string -> record list -> trend list ->
  string list
(** Report sections for one machine stream: per-benchmark time series
    with a ±MAD noise band and change-point markers (benchmarks with
    change points chart first; a note names how many were not charted),
    plus the change-point table. Composes into {!Report.page}. *)

val trend_page : (string * record list * trend list) list -> string
(** A standalone HTML page ([bench trend --html]) over
    [(machine, records, trends)] streams. *)

(** {1 Selfbench comparison} *)

type compare_result = {
  cmp_lines : string list;  (** the rendered table + annotations *)
  cmp_failures : int;  (** regressions beyond tolerance + disappearances *)
  cmp_only_old : string list;  (** benchmark ids only the OLD side has *)
  cmp_only_new : string list;  (** benchmark ids only the NEW side has *)
}

val compare_records :
  ?strict:bool -> ?tolerance:float -> old_r:record -> new_r:record ->
  unit -> compare_result
(** Diff two selfbench records (either schema, host objects optional on
    either side). Benchmarks present on one side only are listed
    explicitly — "only in OLD" rows count as failures (a benchmark
    disappeared), "only in NEW" rows do not. [strict] only switches the
    GitHub annotation prefix on complaint lines from [::warning::] to
    [::error::]; exiting is the caller's decision. Default
    [tolerance = 0.20]. *)
