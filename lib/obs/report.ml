(* Self-contained HTML report primitives: page scaffold, tables, and
   inline-SVG charts (grouped bars, lines, log-axis dot plot, diverging
   bars). No scripts, no external resources — a single file that renders
   offline and in CI artifact viewers.

   Styling follows the chart conventions: a fixed categorical hue order
   (never cycled), one y-axis per chart, thin marks with a small gap,
   recessive gridlines, a legend whenever a chart has two or more series,
   and a data table accompanying every chart so nothing is color-alone.
   Light and dark palettes are separate steps of the same hues, switched
   with [prefers-color-scheme]; SVG marks reference the CSS custom
   properties so they follow the switch. *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_num = Analytics.fmt_num

(* Categorical slots in fixed order; charts index into this and never
   generate hues. More than [max_series] series is a design error here —
   callers fold the tail into "other" before charting. *)
let max_series = 5

let series_var i = Printf.sprintf "var(--c%d)" ((i mod max_series) + 1)

let style =
  {|:root {
  --surface: #fcfcfb; --ink: #383835; --muted: #898781; --grid: #e1e0d9;
  --c1: #2a78d6; --c2: #eb6834; --c3: #1baf7a; --c4: #eda100; --c5: #e87ba4;
  --worse: #c94f4f; --better: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #f0efec; --muted: #898781; --grid: #2c2c2a;
    --c1: #3987e5; --c2: #d95926; --c3: #199e70; --c4: #c98500; --c5: #d55181;
    --worse: #e06c6c; --better: #3987e5;
  }
}
body { background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
  padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.5rem; }
p.sub, p.intro { color: var(--muted); }
svg { display: block; margin: 1rem 0; }
svg text { font-family: inherit; font-size: 11px; fill: var(--muted); }
svg text.val { fill: var(--ink); }
table { border-collapse: collapse; margin: 1rem 0; font-variant-numeric: tabular-nums; }
th, td { padding: 0.25rem 0.75rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--muted); font-weight: 600; border-bottom: 1px solid var(--grid); }
tr + tr td { border-top: 1px solid var(--grid); }
.legend { display: flex; gap: 1.25rem; flex-wrap: wrap; margin: 0.5rem 0; }
.legend span { display: inline-flex; align-items: center; gap: 0.4rem; }
.legend i { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
|}

let legend series =
  if List.length series < 2 then ""
  else
    let items =
      List.mapi
        (fun i name ->
          Printf.sprintf "<span><i style=\"background:%s\"></i>%s</span>"
            (series_var i) (html_escape name))
        series
    in
    "<div class=\"legend\">" ^ String.concat "" items ^ "</div>"

let table ~header ~rows =
  let cells tag cs =
    String.concat ""
      (List.map (fun c -> Printf.sprintf "<%s>%s</%s>" tag (html_escape c) tag) cs)
  in
  let body =
    String.concat "\n"
      (List.map (fun r -> "<tr>" ^ cells "td" r ^ "</tr>") rows)
  in
  Printf.sprintf "<table><thead><tr>%s</tr></thead><tbody>\n%s\n</tbody></table>"
    (cells "th" header) body

(* --- shared chart geometry --- *)

let chart_w = 640.0
let chart_h = 260.0
let margin_l = 55.0
let margin_r = 12.0
let margin_t = 12.0
let margin_b = 34.0
let plot_w = chart_w -. margin_l -. margin_r
let plot_h = chart_h -. margin_t -. margin_b

(* Round a positive maximum up to 1/2/5 × 10^k so tick values are clean. *)
let nice_max v =
  if v <= 0.0 then 1.0
  else
    let mag = 10.0 ** Float.floor (Float.log10 v) in
    let n = v /. mag in
    mag *. (if n <= 1.0 then 1.0 else if n <= 2.0 then 2.0 else if n <= 5.0 then 5.0 else 10.0)

let svg_open ?(h = chart_h) () =
  Printf.sprintf
    "<svg viewBox=\"0 0 %g %g\" width=\"%g\" height=\"%g\" role=\"img\">"
    chart_w h chart_w h

(* Horizontal gridline + tick label at value [v] of a linear y scale. *)
let y_grid ~y_max v =
  let y = margin_t +. plot_h *. (1.0 -. (v /. y_max)) in
  Printf.sprintf
    "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"var(--grid)\"/>\n\
     <text x=\"%g\" y=\"%g\" text-anchor=\"end\">%s</text>"
    margin_l y (chart_w -. margin_r) y (margin_l -. 6.0) (y +. 4.0)
    (fmt_num v)

(* A vertical bar with only the top corners rounded, anchored flat on the
   baseline. *)
let bar ~x ~w ~y ~h ~fill =
  if h <= 0.0 then ""
  else
    let r = Float.min 3.0 (Float.min (w /. 2.0) h) in
    Printf.sprintf
      "<path d=\"M%g %g L%g %g Q%g %g %g %g L%g %g Q%g %g %g %g L%g %g Z\" \
       fill=\"%s\"/>"
      x (y +. h) x (y +. r) x y (x +. r) y
      (x +. w -. r) y (x +. w) y (x +. w) (y +. r)
      (x +. w) (y +. h) fill

(* --- grouped bar chart --- *)

let grouped_bars ?refline ?(y_label = "") ~categories ~series () =
  let n_cat = List.length categories in
  let n_ser = List.length series in
  if n_cat = 0 || n_ser = 0 then ""
  else begin
    let all = List.concat_map snd series in
    let y_max =
      nice_max
        (List.fold_left Float.max
           (Option.value ~default:0.0 refline)
           all)
    in
    let buf = Buffer.create 4096 in
    let out s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
    out (svg_open ());
    List.iter (fun k -> out (y_grid ~y_max (y_max *. float_of_int k /. 4.0)))
      [ 0; 1; 2; 3; 4 ];
    if y_label <> "" then
      out
        (Printf.sprintf
           "<text x=\"%g\" y=\"%g\" transform=\"rotate(-90 12 %g)\" \
            text-anchor=\"middle\">%s</text>"
           12.0 (margin_t +. (plot_h /. 2.0)) (margin_t +. (plot_h /. 2.0))
           (html_escape y_label));
    let group_w = plot_w /. float_of_int n_cat in
    let pad = Float.min 12.0 (group_w *. 0.15) in
    let bar_w = (group_w -. (2.0 *. pad)) /. float_of_int n_ser in
    List.iteri
      (fun ci cat ->
        let gx = margin_l +. (group_w *. float_of_int ci) in
        out
          (Printf.sprintf
             "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>"
             (gx +. (group_w /. 2.0)) (chart_h -. 10.0) (html_escape cat));
        List.iteri
          (fun si (_, values) ->
            match List.nth_opt values ci with
            | None -> ()
            | Some v ->
              let h = plot_h *. (Float.max 0.0 v /. y_max) in
              (* 2px gap between adjacent bars *)
              out
                (bar
                   ~x:(gx +. pad +. (bar_w *. float_of_int si) +. 1.0)
                   ~w:(Float.max 1.0 (bar_w -. 2.0))
                   ~y:(margin_t +. plot_h -. h) ~h ~fill:(series_var si)))
          series)
      categories;
    (match refline with
     | None -> ()
     | Some v ->
       let y = margin_t +. plot_h *. (1.0 -. (v /. y_max)) in
       out
         (Printf.sprintf
            "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" \
             stroke=\"var(--muted)\" stroke-dasharray=\"4 3\"/>"
            margin_l y (chart_w -. margin_r) y));
    out "</svg>";
    legend (List.map fst series) ^ Buffer.contents buf
  end

(* --- line chart (linear x and y) --- *)

let line_chart ?(y_label = "") ?(x_label = "") ~series () =
  let pts = List.concat_map snd series in
  if pts = [] then ""
  else begin
    let xs = List.map fst pts and ys = List.map snd pts in
    let x_min = List.fold_left Float.min infinity xs in
    let x_max = List.fold_left Float.max neg_infinity xs in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_max = nice_max (List.fold_left Float.max 0.0 ys) in
    let sx x = margin_l +. (plot_w *. ((x -. x_min) /. x_span)) in
    let sy y = margin_t +. (plot_h *. (1.0 -. (y /. y_max))) in
    let buf = Buffer.create 4096 in
    let out s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
    out (svg_open ());
    List.iter (fun k -> out (y_grid ~y_max (y_max *. float_of_int k /. 4.0)))
      [ 0; 1; 2; 3; 4 ];
    if y_label <> "" then
      out
        (Printf.sprintf
           "<text x=\"12\" y=\"%g\" transform=\"rotate(-90 12 %g)\" \
            text-anchor=\"middle\">%s</text>"
           (margin_t +. (plot_h /. 2.0)) (margin_t +. (plot_h /. 2.0))
           (html_escape y_label));
    if x_label <> "" then
      out
        (Printf.sprintf
           "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>"
           (margin_l +. (plot_w /. 2.0)) (chart_h -. 8.0) (html_escape x_label));
    (* x tick labels at each distinct x of the first series *)
    (match series with
     | (_, first) :: _ ->
       List.iter
         (fun (x, _) ->
           out
             (Printf.sprintf
                "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>"
                (sx x) (chart_h -. 20.0) (fmt_num x)))
         first
     | [] -> ());
    List.iteri
      (fun si (_, points) ->
        let points = List.sort (fun (a, _) (b, _) -> compare a b) points in
        let path =
          String.concat " "
            (List.mapi
               (fun i (x, y) ->
                 Printf.sprintf "%s%g %g" (if i = 0 then "M" else "L") (sx x)
                   (sy y))
               points)
        in
        out
          (Printf.sprintf
             "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\" \
              stroke-linejoin=\"round\"/>"
             path (series_var si));
        (* markers with a surface ring so crossings stay readable *)
        List.iter
          (fun (x, y) ->
            out
              (Printf.sprintf
                 "<circle cx=\"%g\" cy=\"%g\" r=\"4\" fill=\"%s\" \
                  stroke=\"var(--surface)\" stroke-width=\"2\"/>"
                 (sx x) (sy y) (series_var si)))
          points)
      series;
    out "</svg>";
    legend (List.map fst series) ^ Buffer.contents buf
  end

(* --- trend chart: one series with a noise band and change markers --- *)

let trend_chart ?(y_label = "") ?(x_label = "") ~points ~band ~marks () =
  if points = [] then ""
  else begin
    let xs = List.map fst points in
    let x_min = List.fold_left Float.min infinity xs in
    let x_max = List.fold_left Float.max neg_infinity xs in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_max =
      nice_max
        (List.fold_left Float.max
           (List.fold_left (fun m (_, _, hi) -> Float.max m hi) 0.0 band)
           (List.map snd points))
    in
    let sx x = margin_l +. (plot_w *. ((x -. x_min) /. x_span)) in
    let sy y = margin_t +. (plot_h *. (1.0 -. (Float.max 0.0 y /. y_max))) in
    let buf = Buffer.create 4096 in
    let out s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
    out (svg_open ());
    List.iter (fun k -> out (y_grid ~y_max (y_max *. float_of_int k /. 4.0)))
      [ 0; 1; 2; 3; 4 ];
    if y_label <> "" then
      out
        (Printf.sprintf
           "<text x=\"12\" y=\"%g\" transform=\"rotate(-90 12 %g)\" \
            text-anchor=\"middle\">%s</text>"
           (margin_t +. (plot_h /. 2.0)) (margin_t +. (plot_h /. 2.0))
           (html_escape y_label));
    if x_label <> "" then
      out
        (Printf.sprintf
           "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>"
           (margin_l +. (plot_w /. 2.0)) (chart_h -. 8.0) (html_escape x_label));
    (* sparse x ticks: at most ~8, so long histories stay legible *)
    let n = List.length points in
    let step = max 1 (n / 8) in
    List.iteri
      (fun i (x, _) ->
        if i mod step = 0 || i = n - 1 then
          out
            (Printf.sprintf
               "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>"
               (sx x) (chart_h -. 20.0) (fmt_num x)))
      points;
    (* the ±noise band, drawn first so the line sits on top of it *)
    (match band with
     | [] -> ()
     | _ ->
       let band = List.sort (fun (a, _, _) (b, _, _) -> compare a b) band in
       let upper =
         List.map (fun (x, _, hi) -> Printf.sprintf "%g,%g" (sx x) (sy hi)) band
       in
       let lower =
         List.rev_map
           (fun (x, lo, _) -> Printf.sprintf "%g,%g" (sx x) (sy lo))
           band
       in
       out
         (Printf.sprintf
            "<polygon class=\"noise-band\" points=\"%s\" fill=\"var(--c1)\" \
             opacity=\"0.18\"/>"
            (String.concat " " (upper @ lower))));
    (* change-point markers: dashed vertical rules at the first-bad x *)
    List.iter
      (fun x ->
        out
          (Printf.sprintf
             "<line class=\"change-point\" x1=\"%g\" y1=\"%g\" x2=\"%g\" \
              y2=\"%g\" stroke=\"var(--worse)\" stroke-width=\"1.5\" \
              stroke-dasharray=\"5 3\"/>"
             (sx x) margin_t (sx x) (margin_t +. plot_h)))
      marks;
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) points in
    let path =
      String.concat " "
        (List.mapi
           (fun i (x, y) ->
             Printf.sprintf "%s%g %g" (if i = 0 then "M" else "L") (sx x) (sy y))
           sorted)
    in
    out
      (Printf.sprintf
         "<path d=\"%s\" fill=\"none\" stroke=\"var(--c1)\" stroke-width=\"2\" \
          stroke-linejoin=\"round\"/>"
         path);
    List.iter
      (fun (x, y) ->
        out
          (Printf.sprintf
             "<circle cx=\"%g\" cy=\"%g\" r=\"3.5\" fill=\"var(--c1)\" \
              stroke=\"var(--surface)\" stroke-width=\"2\"/>"
             (sx x) (sy y)))
      sorted;
    out "</svg>";
    Buffer.contents buf
  end

(* --- horizontal dot plot on a log x axis --- *)

let dot_plot_log ?(x_label = "") ~rows () =
  let rows = List.filter (fun (_, v) -> v > 0.0) rows in
  if rows = [] then ""
  else begin
    let vs = List.map snd rows in
    let lo = Float.floor (Float.log10 (List.fold_left Float.min infinity vs)) in
    let hi = Float.ceil (Float.log10 (List.fold_left Float.max neg_infinity vs)) in
    let hi = if hi <= lo then lo +. 1.0 else hi in
    let row_h = 26.0 in
    let label_w = 170.0 in
    let h =
      margin_t +. (row_h *. float_of_int (List.length rows)) +. margin_b
    in
    let px = chart_w -. label_w -. margin_r in
    let sx v = label_w +. (px *. ((Float.log10 v -. lo) /. (hi -. lo))) in
    let buf = Buffer.create 4096 in
    let out s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
    out (svg_open ~h ());
    (* decade gridlines *)
    let d = ref lo in
    while !d <= hi do
      let x = sx (10.0 ** !d) in
      out
        (Printf.sprintf
           "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" \
            stroke=\"var(--grid)\"/>\n\
            <text x=\"%g\" y=\"%g\" text-anchor=\"middle\">1e%d</text>"
           x margin_t x (h -. margin_b) x (h -. margin_b +. 16.0)
           (int_of_float !d));
      d := !d +. 1.0
    done;
    if x_label <> "" then
      out
        (Printf.sprintf
           "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>"
           (label_w +. (px /. 2.0)) (h -. 6.0) (html_escape x_label));
    List.iteri
      (fun i (name, v) ->
        let y = margin_t +. (row_h *. (float_of_int i +. 0.5)) in
        out
          (Printf.sprintf
             "<text x=\"%g\" y=\"%g\" text-anchor=\"end\">%s</text>"
             (label_w -. 8.0) (y +. 4.0) (html_escape name));
        out
          (Printf.sprintf
             "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" \
              stroke=\"var(--grid)\"/>"
             label_w y (sx v) y);
        out
          (Printf.sprintf
             "<circle cx=\"%g\" cy=\"%g\" r=\"5\" fill=\"var(--c1)\" \
              stroke=\"var(--surface)\" stroke-width=\"2\"/>"
             (sx v) y))
      rows;
    out "</svg>";
    Buffer.contents buf
  end

(* --- diverging horizontal bars (deltas around zero) --- *)

let diverging_bars ?(pos_label = "more") ?(neg_label = "less") ~rows () =
  if rows = [] then ""
  else begin
    let span =
      nice_max
        (List.fold_left (fun m (_, v) -> Float.max m (Float.abs v)) 0.0 rows)
    in
    let row_h = 26.0 in
    let label_w = 150.0 in
    let h =
      margin_t +. (row_h *. float_of_int (List.length rows)) +. margin_b
    in
    let px = chart_w -. label_w -. margin_r in
    let x0 = label_w +. (px /. 2.0) in
    let sx v = x0 +. (px /. 2.0 *. (v /. span)) in
    let buf = Buffer.create 4096 in
    let out s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
    out (svg_open ~h ());
    out
      (Printf.sprintf
         "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" \
          stroke=\"var(--muted)\"/>"
         x0 margin_t x0 (h -. margin_b));
    out
      (Printf.sprintf
         "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">0</text>\n\
          <text x=\"%g\" y=\"%g\" text-anchor=\"start\">%s</text>\n\
          <text x=\"%g\" y=\"%g\" text-anchor=\"end\">%s</text>"
         x0 (h -. margin_b +. 16.0)
         (x0 +. 12.0) (h -. 6.0) (html_escape ("\xe2\x86\x92 " ^ pos_label))
         (x0 -. 12.0) (h -. 6.0) (html_escape (neg_label ^ " \xe2\x86\x90")));
    List.iteri
      (fun i (name, v) ->
        let y = margin_t +. (row_h *. float_of_int i) +. 5.0 in
        let bh = row_h -. 10.0 in
        out
          (Printf.sprintf
             "<text x=\"%g\" y=\"%g\" text-anchor=\"end\">%s</text>"
             (label_w -. 8.0) (y +. (bh /. 2.0) +. 4.0) (html_escape name));
        let x = Float.min x0 (sx v) and w = Float.abs (sx v -. x0) in
        if w > 0.0 then
          out
            (Printf.sprintf
               "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" rx=\"3\" \
                fill=\"%s\"/>"
               x y w bh
               (if v > 0.0 then "var(--worse)" else "var(--better)"));
        out
          (Printf.sprintf
             "<text class=\"val\" x=\"%g\" y=\"%g\" text-anchor=\"%s\">%s</text>"
             (if v >= 0.0 then sx v +. 6.0 else sx v -. 6.0)
             (y +. (bh /. 2.0) +. 4.0)
             (if v >= 0.0 then "start" else "end")
             (Analytics.fmt_signed v)))
      rows;
    out "</svg>";
    Buffer.contents buf
  end

(* --- interval waterfall (horizontal occupancy timelines) --- *)

let interval_rows ?(x_label = "") ~total ~rows () =
  if rows = [] || total <= 0.0 then ""
  else begin
    let row_h = 26.0 in
    let label_w = 170.0 in
    let h =
      margin_t +. (row_h *. float_of_int (List.length rows)) +. margin_b
    in
    let px = chart_w -. label_w -. margin_r in
    let sx v = label_w +. (px *. (Float.max 0.0 (Float.min total v) /. total)) in
    let buf = Buffer.create 4096 in
    let out s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
    out (svg_open ~h ());
    (* quarter gridlines with cycle labels *)
    for q = 0 to 4 do
      let v = total *. float_of_int q /. 4.0 in
      let x = sx v in
      out
        (Printf.sprintf
           "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" \
            stroke=\"var(--grid)\"/>\n\
            <text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>"
           x margin_t x (h -. margin_b) x (h -. margin_b +. 16.0)
           (Analytics.fmt_num v))
    done;
    if x_label <> "" then
      out
        (Printf.sprintf
           "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>"
           (label_w +. (px /. 2.0)) (h -. 6.0) (html_escape x_label));
    List.iteri
      (fun i (name, intervals) ->
        let y = margin_t +. (row_h *. float_of_int i) +. 5.0 in
        let bh = row_h -. 10.0 in
        out
          (Printf.sprintf
             "<text x=\"%g\" y=\"%g\" text-anchor=\"end\">%s</text>"
             (label_w -. 8.0) (y +. (bh /. 2.0) +. 4.0) (html_escape name));
        out
          (Printf.sprintf
             "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" \
              stroke=\"var(--grid)\"/>"
             label_w (y +. (bh /. 2.0)) (sx total) (y +. (bh /. 2.0)));
        List.iter
          (fun (s, e) ->
            let x = sx s and w = sx e -. sx s in
            if w > 0.0 then
              out
                (Printf.sprintf
                   "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" \
                    rx=\"2\" fill=\"%s\"/>"
                   x y w bh (series_var i)))
          intervals)
      rows;
    out "</svg>";
    Buffer.contents buf
  end

(* --- page assembly --- *)

let section ~title ?(intro = "") body_parts =
  Printf.sprintf "<h2>%s</h2>\n%s%s" (html_escape title)
    (if intro = "" then ""
     else Printf.sprintf "<p class=\"intro\">%s</p>\n" (html_escape intro))
    (String.concat "\n" body_parts)

let page ~title ~subtitle sections =
  Printf.sprintf
    {|<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>%s</title>
<style>
%s</style>
</head>
<body>
<h1>%s</h1>
<p class="sub">%s</p>
%s
</body>
</html>
|}
    (html_escape title) style (html_escape title) (html_escape subtitle)
    (String.concat "\n" sections)
