(* Host-side wall-clock profiler. See the interface for the two
   contracts (determinism: shards only, never the Obs tables; accounting:
   integer-ns buckets that telescope exactly to each worker's wall).

   Collection model: every domain owns one shard per profiling window
   (cached in Domain.DLS, registered once in a global list under a small
   mutex). Probes append interval records and bump per-lock / per-pass
   accumulators on the local shard only, so the hot path takes no shared
   lock and cannot perturb the capture/replay determinism machinery.
   [stop] runs after worker domains are joined (a happens-before edge),
   reads every shard, and sweeps each shard's chronological interval list
   once: gaps between intervals become queue (before a task, on a worker)
   or idle / serial-busy time, intervals land in their own bucket, and the
   trailing remainder closes the window — every nanosecond of [0, wall]
   is assigned to exactly one bucket, which is what makes the telescoping
   invariant exact rather than approximate. *)

(* GC bucket cost model: quick_stat gives words and collection counts,
   not time, so the gc bucket is *estimated* — allocation-rate pricing at
   a fixed cost per minor-heap word plus a surcharge per promoted word —
   and clamped into the enclosing task's run time so the telescoping
   identity stays exact. The word/collection counts themselves are exact
   measurements; see doc/hostprof.md before reading the gc column as
   ground truth. *)
let gc_ns_per_minor_word = 0.35
let gc_ns_per_promoted_word = 2.0

type record_ =
  | R_task of {
      label : string;
      enqueue_ns : int;
      start_ns : int;
      finish_ns : int;
      lock_ns : int;
      minor_words : float;
      promoted_words : float;
      minor_collections : int;
      major_collections : int;
    }
  | R_idle of int * int
  | R_wait of int * int  (* lock wait outside any task *)
  | R_batch of int * int  (* coordinator blocked on a batch *)

type lock_acc = {
  mutable la_count : int;
  mutable la_contended : int;
  mutable la_wait_ns : int;
  mutable la_hist : Obs.histogram;
}

type pass_acc = {
  mutable ps_runs : int;
  mutable ps_minor : float;
  mutable ps_promoted : float;
}

type shard = {
  sh_epoch : int;
  sh_role : string;
  mutable sh_records : record_ list;  (* reverse chronological *)
  sh_locks : (string, lock_acc) Hashtbl.t;
  sh_passes : (string, pass_acc) Hashtbl.t;
  mutable sh_in_task : bool;
  mutable sh_task_lock_ns : int;
}

let active = Atomic.make false
let epoch = Atomic.make 0
let origin = ref 0.0  (* published by the Atomic.set of [active] *)
let shards_m = Mutex.create ()
let shards : shard list ref = ref []

let role_cell : string ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref "coordinator")

let shard_cell : shard option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let on () = Atomic.get active
let set_role r = Domain.DLS.get role_cell := r

let tick () = int_of_float ((Unix.gettimeofday () -. !origin) *. 1e9)

let shard () =
  let cell = Domain.DLS.get shard_cell in
  let ep = Atomic.get epoch in
  match !cell with
  | Some s when s.sh_epoch = ep -> s
  | _ ->
    let s =
      { sh_epoch = ep; sh_role = !(Domain.DLS.get role_cell);
        sh_records = []; sh_locks = Hashtbl.create 8;
        sh_passes = Hashtbl.create 8; sh_in_task = false; sh_task_lock_ns = 0 }
    in
    cell := Some s;
    Mutex.lock shards_m;
    shards := s :: !shards;
    Mutex.unlock shards_m;
    s

(* --- probes --- *)

let task_enqueued () = if on () then tick () else min_int

(* [Gc.minor_words] reads the domain's allocation pointer, so it is exact
   even between minor collections; [quick_stat.minor_words] only advances
   at collection boundaries and would report 0 for small sections. *)
let task ?(enqueue = min_int) ~label f =
  if not (on ()) then f ()
  else begin
    let s = shard () in
    let prev_in = s.sh_in_task and prev_lock = s.sh_task_lock_ns in
    let mw0 = Gc.minor_words () in
    let g0 = Gc.quick_stat () in
    let t0 = tick () in
    s.sh_in_task <- true;
    s.sh_task_lock_ns <- 0;
    let finish () =
      let t1 = tick () in
      let g1 = Gc.quick_stat () in
      let lock_ns = s.sh_task_lock_ns in
      s.sh_in_task <- prev_in;
      s.sh_task_lock_ns <- prev_lock;
      s.sh_records <-
        R_task
          { label;
            enqueue_ns = (if enqueue = min_int then t0 else min enqueue t0);
            start_ns = t0; finish_ns = max t1 t0; lock_ns;
            minor_words = Gc.minor_words () -. mw0;
            promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
            minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
            major_collections = g1.Gc.major_collections - g0.Gc.major_collections }
        :: s.sh_records
    in
    match f () with
    | v -> finish (); v
    | exception e -> finish (); raise e
  end

let interval mk f =
  if not (on ()) then f ()
  else begin
    let t0 = tick () in
    let fin () =
      let s = shard () in
      s.sh_records <- mk t0 (max t0 (tick ())) :: s.sh_records
    in
    match f () with
    | v -> fin (); v
    | exception e -> fin (); raise e
  end

let idle f = interval (fun a b -> R_idle (a, b)) f
let batch_wait f = interval (fun a b -> R_batch (a, b)) f

type lock = { lk_name : string }

let make_lock lk_name = { lk_name }

let lock_acc_of s l =
  match Hashtbl.find_opt s.sh_locks l.lk_name with
  | Some acc -> acc
  | None ->
    let acc =
      { la_count = 0; la_contended = 0; la_wait_ns = 0;
        la_hist = Obs.hist_empty () }
    in
    Hashtbl.add s.sh_locks l.lk_name acc;
    acc

let charge_wait l ~t0 ~t1 =
  let s = shard () in
  let acc = lock_acc_of s l in
  let w = max 0 (t1 - t0) in
  acc.la_count <- acc.la_count + 1;
  acc.la_contended <- acc.la_contended + 1;
  acc.la_wait_ns <- acc.la_wait_ns + w;
  acc.la_hist <- Obs.hist_observe acc.la_hist (float_of_int w *. 1e-9);
  if s.sh_in_task then s.sh_task_lock_ns <- s.sh_task_lock_ns + w
  else if w > 0 then s.sh_records <- R_wait (t0, t1) :: s.sh_records

let lock_acquire l m =
  if not (on ()) then Mutex.lock m
  else if Mutex.try_lock m then begin
    (* uncontended fast path: count it, skip the clock reads *)
    let acc = lock_acc_of (shard ()) l in
    acc.la_count <- acc.la_count + 1
  end
  else begin
    let t0 = tick () in
    Mutex.lock m;
    charge_wait l ~t0 ~t1:(tick ())
  end

let locked l m f =
  lock_acquire l m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let blocking l f =
  if not (on ()) then f ()
  else begin
    let t0 = tick () in
    match f () with
    | v -> charge_wait l ~t0 ~t1:(tick ()); v
    | exception e -> charge_wait l ~t0 ~t1:(tick ()); raise e
  end

let pass_acc_of s name =
  match Hashtbl.find_opt s.sh_passes name with
  | Some acc -> acc
  | None ->
    let acc = { ps_runs = 0; ps_minor = 0.0; ps_promoted = 0.0 } in
    Hashtbl.add s.sh_passes name acc;
    acc

(* Per-pass sampling runs ~5x per compile on the tuning hot path, so it
   uses [Gc.counters] (~20ns, domain-local reads) rather than
   [Gc.quick_stat] (~1.2us: cross-domain stat aggregation) — that is the
   difference between <1% and ~6% overhead on the fig10 sweep. The
   trade: per-pass collection *counts* are not sampled (they live at
   task granularity, where the 2 quick_stat calls amortize over a whole
   compile). *)
let pass_sample name f =
  if not (on ()) then f ()
  else begin
    let s = shard () in
    let mw0, pw0, _ = Gc.counters () in
    let fin () =
      let mw1, pw1, _ = Gc.counters () in
      let acc = pass_acc_of s name in
      acc.ps_runs <- acc.ps_runs + 1;
      acc.ps_minor <- acc.ps_minor +. (mw1 -. mw0);
      acc.ps_promoted <- acc.ps_promoted +. (pw1 -. pw0)
    in
    match f () with
    | v -> fin (); v
    | exception e -> fin (); raise e
  end

(* --- profile data --- *)

type worker = {
  w_role : string;
  w_wall_ns : int;
  w_busy_ns : int;
  w_queue_ns : int;
  w_lock_ns : int;
  w_gc_ns : int;
  w_idle_ns : int;
  w_tasks : int;
  w_minor_words : float;
  w_promoted_words : float;
  w_minor_collections : int;
  w_major_collections : int;
}

type lock_stat = {
  l_name : string;
  l_acquisitions : int;
  l_contended : int;
  l_wait_ns : int;
  l_hist : Obs.histogram;
}

type pass_alloc = {
  p_pass : string;
  p_runs : int;
  pa_minor_words : float;
  pa_promoted_words : float;
}

type span = {
  sp_track : string;
  sp_label : string;
  sp_start_ns : int;
  sp_end_ns : int;
  sp_queue_ns : int;
  sp_lock_ns : int;
  sp_minor_words : float;
}

type profile = {
  p_wall_ns : int;
  p_jobs : int;
  p_workers : worker list;
  p_locks : lock_stat list;
  p_passes : pass_alloc list;
  p_queue_hist : Obs.histogram;
  p_spans : span list;
}

(* --- analysis --- *)

let coordinator_role = "coordinator"

(* "worker-10" must sort after "worker-2" *)
let role_key r =
  match String.rindex_opt r '-' with
  | Some i -> (
    match int_of_string_opt (String.sub r (i + 1) (String.length r - i - 1)) with
    | Some n -> (String.sub r 0 i, n, r)
    | None -> (r, -1, r))
  | None -> (r, -1, r)

let record_bounds = function
  | R_task t -> (t.start_ns, t.finish_ns)
  | R_idle (a, b) | R_wait (a, b) | R_batch (a, b) -> (a, b)

(* One pass over a shard's chronological records: assign every ns of
   [0, wall] to exactly one bucket. Gaps between recorded intervals are
   serial busy time on the coordinator; on a worker a gap that ends at a
   task start is queue/dispatch machinery (except the leading gap — the
   worker did not exist or was blocked from before the window opened) and
   any other gap is idle. *)
let buckets_of_shard ~wall ~coordinator records =
  let busy = ref 0 and queue = ref 0 and lck = ref 0 in
  let gc = ref 0 and idl = ref 0 in
  let tasks = ref 0 in
  let minor = ref 0.0 and promoted = ref 0.0 in
  let minorc = ref 0 and majorc = ref 0 in
  let cursor = ref 0 and first = ref true in
  List.iter
    (fun r ->
      let a0, b0 = record_bounds r in
      let a = min wall (max a0 !cursor) in
      let b = min wall (max b0 a) in
      let gap = a - !cursor in
      (if coordinator then busy := !busy + gap
       else
         match r with
         | R_task _ when not !first -> queue := !queue + gap
         | _ -> idl := !idl + gap);
      (match r with
       | R_task t ->
         incr tasks;
         minor := !minor +. t.minor_words;
         promoted := !promoted +. t.promoted_words;
         minorc := !minorc + t.minor_collections;
         majorc := !majorc + t.major_collections;
         let run = b - a in
         let lock_in = max 0 (min t.lock_ns run) in
         let gc_est =
           int_of_float
             ((t.minor_words *. gc_ns_per_minor_word)
              +. (t.promoted_words *. gc_ns_per_promoted_word))
         in
         let gc_in = max 0 (min gc_est (run - lock_in)) in
         busy := !busy + (run - lock_in - gc_in);
         lck := !lck + lock_in;
         gc := !gc + gc_in
       | R_idle _ -> idl := !idl + (b - a)
       | R_wait _ -> lck := !lck + (b - a)
       | R_batch _ -> idl := !idl + (b - a));
      cursor := b;
      first := false)
    records;
  let trailing = wall - !cursor in
  if coordinator then busy := !busy + trailing else idl := !idl + trailing;
  fun role ->
    { w_role = role; w_wall_ns = wall; w_busy_ns = !busy; w_queue_ns = !queue;
      w_lock_ns = !lck; w_gc_ns = !gc; w_idle_ns = !idl; w_tasks = !tasks;
      w_minor_words = !minor; w_promoted_words = !promoted;
      w_minor_collections = !minorc; w_major_collections = !majorc }

let spans_of_shard role records =
  List.filter_map
    (fun r ->
      let a, b = record_bounds r in
      let mk label queue_ns lock_ns minor =
        Some
          { sp_track = role; sp_label = label; sp_start_ns = a;
            sp_end_ns = max a b; sp_queue_ns = queue_ns; sp_lock_ns = lock_ns;
            sp_minor_words = minor }
      in
      match r with
      | R_task t ->
        mk t.label (max 0 (t.start_ns - t.enqueue_ns)) t.lock_ns t.minor_words
      | R_idle _ -> mk "(idle)" 0 0 0.0
      | R_wait _ -> mk "(lock-wait)" 0 (max 0 (b - a)) 0.0
      | R_batch _ -> mk "(batch-wait)" 0 0 0.0)
    records

let analyze ~wall shard_list =
  (* Deterministic order: coordinator shards first, then workers by
     numeric-aware role; duplicate roles (two pools in one window) get a
     #n suffix so every row stays visible. *)
  let sorted =
    List.stable_sort
      (fun a b ->
        match
          (String.equal a.sh_role coordinator_role,
           String.equal b.sh_role coordinator_role)
        with
        | true, false -> -1
        | false, true -> 1
        | _ -> compare (role_key a.sh_role) (role_key b.sh_role))
      shard_list
  in
  let seen = Hashtbl.create 8 in
  let named =
    List.map
      (fun sh ->
        let n =
          1 + Option.value ~default:0 (Hashtbl.find_opt seen sh.sh_role)
        in
        Hashtbl.replace seen sh.sh_role n;
        let role =
          if n = 1 then sh.sh_role else Printf.sprintf "%s#%d" sh.sh_role n
        in
        (role, sh))
      sorted
  in
  let workers =
    List.map
      (fun (role, sh) ->
        let coordinator = String.equal sh.sh_role coordinator_role in
        let records = List.rev sh.sh_records in
        buckets_of_shard ~wall ~coordinator records role)
      named
  in
  let locks = Hashtbl.create 8 in
  let passes = Hashtbl.create 8 in
  let queue_hist = ref (Obs.hist_empty ()) in
  List.iter
    (fun (_, sh) ->
      Hashtbl.iter
        (fun name (acc : lock_acc) ->
          let cur =
            match Hashtbl.find_opt locks name with
            | Some c -> c
            | None ->
              { l_name = name; l_acquisitions = 0; l_contended = 0;
                l_wait_ns = 0; l_hist = Obs.hist_empty () }
          in
          Hashtbl.replace locks name
            { cur with
              l_acquisitions = cur.l_acquisitions + acc.la_count;
              l_contended = cur.l_contended + acc.la_contended;
              l_wait_ns = cur.l_wait_ns + acc.la_wait_ns;
              l_hist = Obs.hist_merge cur.l_hist acc.la_hist })
        sh.sh_locks;
      Hashtbl.iter
        (fun name (acc : pass_acc) ->
          let cur =
            match Hashtbl.find_opt passes name with
            | Some c -> c
            | None ->
              { p_pass = name; p_runs = 0; pa_minor_words = 0.0;
                pa_promoted_words = 0.0 }
          in
          Hashtbl.replace passes name
            { cur with
              p_runs = cur.p_runs + acc.ps_runs;
              pa_minor_words = cur.pa_minor_words +. acc.ps_minor;
              pa_promoted_words = cur.pa_promoted_words +. acc.ps_promoted })
        sh.sh_passes;
      List.iter
        (fun r ->
          match r with
          | R_task t ->
            queue_hist :=
              Obs.hist_observe !queue_hist
                (float_of_int (max 0 (t.start_ns - t.enqueue_ns)) *. 1e-9)
          | _ -> ())
        sh.sh_records)
    named;
  let lock_list =
    List.sort
      (fun a b ->
        match compare b.l_wait_ns a.l_wait_ns with
        | 0 -> compare a.l_name b.l_name
        | c -> c)
      (Hashtbl.fold (fun _ v acc -> v :: acc) locks [])
  in
  let pass_list =
    List.sort
      (fun a b ->
        match compare b.pa_minor_words a.pa_minor_words with
        | 0 -> compare a.p_pass b.p_pass
        | c -> c)
      (Hashtbl.fold (fun _ v acc -> v :: acc) passes [])
  in
  let spans =
    List.sort
      (fun a b ->
        match compare a.sp_start_ns b.sp_start_ns with
        | 0 -> compare a.sp_track b.sp_track
        | c -> c)
      (List.concat_map
         (fun (role, sh) -> spans_of_shard role (List.rev sh.sh_records))
         named)
  in
  let jobs =
    List.length
      (List.filter
         (fun (_, sh) -> not (String.equal sh.sh_role coordinator_role))
         named)
  in
  { p_wall_ns = wall; p_jobs = jobs; p_workers = workers; p_locks = lock_list;
    p_passes = pass_list; p_queue_hist = !queue_hist; p_spans = spans }

(* --- lifecycle --- *)

let start () =
  Mutex.lock shards_m;
  shards := [];
  Mutex.unlock shards_m;
  Atomic.incr epoch;
  origin := Unix.gettimeofday ();
  Atomic.set active true;
  (* the starting domain is the coordinator; register its shard now so an
     all-inline window still has a row *)
  ignore (shard () : shard)

let stop () =
  if not (on ()) then invalid_arg "Hostprof.stop: no profiling window open";
  let wall = max 0 (tick ()) in
  Atomic.set active false;
  Mutex.lock shards_m;
  let ss = !shards in
  shards := [];
  Mutex.unlock shards_m;
  let ep = Atomic.get epoch in
  analyze ~wall (List.filter (fun s -> s.sh_epoch = ep) ss)

(* --- derived metrics --- *)

let check p =
  let rec go = function
    | [] -> Ok ()
    | w :: rest ->
      let sum =
        w.w_busy_ns + w.w_queue_ns + w.w_lock_ns + w.w_gc_ns + w.w_idle_ns
      in
      if sum <> w.w_wall_ns then
        Error
          (Printf.sprintf
             "%s: buckets sum to %d ns, wall is %d ns (busy=%d queue=%d \
              lock=%d gc=%d idle=%d)"
             w.w_role sum w.w_wall_ns w.w_busy_ns w.w_queue_ns w.w_lock_ns
             w.w_gc_ns w.w_idle_ns)
      else if
        w.w_busy_ns < 0 || w.w_queue_ns < 0 || w.w_lock_ns < 0
        || w.w_gc_ns < 0 || w.w_idle_ns < 0
      then Error (Printf.sprintf "%s: negative bucket" w.w_role)
      else go rest
  in
  go p.p_workers

let is_coordinator w =
  String.equal w.w_role coordinator_role
  || (String.length w.w_role > 11
      && String.equal (String.sub w.w_role 0 12) (coordinator_role ^ "#"))

let serial_fraction p =
  if p.p_wall_ns <= 0 then 0.0
  else
    let coord =
      List.fold_left
        (fun acc w -> if is_coordinator w then acc + w.w_busy_ns else acc)
        0 p.p_workers
    in
    float_of_int coord /. float_of_int p.p_wall_ns

let effective_parallelism p =
  if p.p_wall_ns <= 0 then 0.0
  else
    let busy =
      List.fold_left (fun acc w -> acc + w.w_busy_ns) 0 p.p_workers
    in
    float_of_int busy /. float_of_int p.p_wall_ns

let expected_speedup p ~jobs =
  let jobs = max 1 jobs in
  let s = Float.max 0.0 (Float.min 1.0 (serial_fraction p)) in
  1.0 /. (s +. ((1.0 -. s) /. float_of_int jobs))

(* --- text report --- *)

let ms ns = float_of_int ns /. 1e6

let pct ~wall ns =
  if wall <= 0 then 0.0 else 100.0 *. float_of_int ns /. float_of_int wall

let fmt_dur_s s =
  if Float.is_nan s then "-"
  else if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let report ?(top = 5) p =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "== host profile: wall %.1f ms, %d worker domain%s ==" (ms p.p_wall_ns)
    p.p_jobs
    (if p.p_jobs = 1 then "" else "s");
  line "%-16s %10s %7s %7s %7s %7s %7s %7s" "track" "wall(ms)" "busy"
    "queue" "lock" "gc" "idle" "tasks";
  List.iter
    (fun w ->
      let wall = w.w_wall_ns in
      line "%-16s %10.1f %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %7d"
        w.w_role (ms wall)
        (pct ~wall w.w_busy_ns) (pct ~wall w.w_queue_ns)
        (pct ~wall w.w_lock_ns) (pct ~wall w.w_gc_ns) (pct ~wall w.w_idle_ns)
        w.w_tasks)
    p.p_workers;
  let s = serial_fraction p in
  let eff = effective_parallelism p in
  let nominal = max 1 (if p.p_jobs = 0 then 1 else p.p_jobs) in
  line "serial (coordinator busy): %.1f%% of wall" (100.0 *. s);
  line "effective parallelism:     %.2f domains busy on average (nominal %d)"
    eff nominal;
  line "Amdahl: expected speedup <= %.2fx at j=%d (ideal %.1fx)"
    (expected_speedup p ~jobs:nominal)
    nominal (float_of_int nominal);
  (* speedup loss, in worker-equivalents: how many whole workers each
     non-busy bucket cost across the fleet *)
  let weq sel =
    if p.p_wall_ns <= 0 then 0.0
    else
      float_of_int
        (List.fold_left
           (fun acc w -> if is_coordinator w then acc else acc + sel w)
           0 p.p_workers)
      /. float_of_int p.p_wall_ns
  in
  if p.p_jobs > 0 then
    line
      "speedup loss (worker-equivalents): idle %.2f, lock %.2f, queue %.2f, \
       gc %.2f"
      (weq (fun w -> w.w_idle_ns))
      (weq (fun w -> w.w_lock_ns))
      (weq (fun w -> w.w_queue_ns))
      (weq (fun w -> w.w_gc_ns));
  (match p.p_locks with
   | [] -> ()
   | locks ->
     line "top contended locks (by total wait):";
     List.iteri
       (fun i l ->
         if i < top then
           line "  %-20s %7d acq, %5d contended, %9.3f ms waited (p50 %s p99 %s)"
             l.l_name l.l_acquisitions l.l_contended (ms l.l_wait_ns)
             (fmt_dur_s (Obs.hist_percentile l.l_hist 0.50))
             (fmt_dur_s (Obs.hist_percentile l.l_hist 0.99)))
       locks);
  (match p.p_passes with
   | [] -> ()
   | passes ->
     line "allocation-heaviest passes (minor words/run):";
     List.iteri
       (fun i pa ->
         if i < top then
           line "  %-20s %6d runs, %10.3g minor w/run, %10.3g promoted w/run"
             pa.p_pass pa.p_runs
             (if pa.p_runs = 0 then 0.0
              else pa.pa_minor_words /. float_of_int pa.p_runs)
             (if pa.p_runs = 0 then 0.0
              else pa.pa_promoted_words /. float_of_int pa.p_runs))
       passes);
  if p.p_queue_hist.Obs.h_count > 0 then
    line "task queue latency: %d tasks, p50 %s p90 %s p99 %s"
      p.p_queue_hist.Obs.h_count
      (fmt_dur_s (Obs.hist_percentile p.p_queue_hist 0.50))
      (fmt_dur_s (Obs.hist_percentile p.p_queue_hist 0.90))
      (fmt_dur_s (Obs.hist_percentile p.p_queue_hist 0.99));
  Buffer.contents b

(* --- export --- *)

let sec ns = float_of_int ns /. 1e9

(* tid per track: coordinator 0, then workers 1.. in p_workers order *)
let tid_table p =
  let t = Hashtbl.create 8 in
  List.iteri (fun i w -> Hashtbl.replace t w.w_role i) p.p_workers;
  fun role -> Option.value ~default:99 (Hashtbl.find_opt t role)

let span_events p =
  let tid_of = tid_table p in
  List.map
    (fun sp ->
      let fields =
        [ ("#pid", Json.Int 1); ("#tid", Json.Int (tid_of sp.sp_track));
          ("#process_name", Json.Str "alcop host");
          ("#thread_name", Json.Str sp.sp_track);
          ("queue_us", Json.Float (float_of_int sp.sp_queue_ns /. 1e3));
          ("lock_us", Json.Float (float_of_int sp.sp_lock_ns /. 1e3));
          ("minor_words", Json.Float sp.sp_minor_words) ]
      in
      Obs.Span_end
        { name = sp.sp_label; ts = sec sp.sp_start_ns;
          dur = sec (sp.sp_end_ns - sp.sp_start_ns); depth = 0; fields })
    p.p_spans

let emit_all sink events =
  List.iter sink.Obs.emit events;
  sink.Obs.close ()

let write_chrome_trace path p =
  (* an explicit time origin first, so the trace opens at the window
     start even when the first span starts later *)
  let origin_ev =
    Obs.Span_begin { name = "hostprof.window"; ts = 0.0; depth = 0 }
  in
  emit_all (Sinks.chrome_trace_file path) (origin_ev :: span_events p)

let write_jsonl path p =
  let worker_points =
    List.map
      (fun w ->
        Obs.Point
          { name = "hostprof.worker"; ts = 0.0;
            fields =
              [ ("role", Json.Str w.w_role); ("wall_ns", Json.Int w.w_wall_ns);
                ("busy_ns", Json.Int w.w_busy_ns);
                ("queue_ns", Json.Int w.w_queue_ns);
                ("lock_ns", Json.Int w.w_lock_ns);
                ("gc_ns", Json.Int w.w_gc_ns);
                ("idle_ns", Json.Int w.w_idle_ns);
                ("tasks", Json.Int w.w_tasks) ] })
      p.p_workers
  in
  let lock_points =
    List.map
      (fun l ->
        Obs.Point
          { name = "hostprof.lock"; ts = 0.0;
            fields =
              [ ("lock", Json.Str l.l_name);
                ("acquisitions", Json.Int l.l_acquisitions);
                ("contended", Json.Int l.l_contended);
                ("wait_ns", Json.Int l.l_wait_ns) ] })
      p.p_locks
  in
  let pass_points =
    List.map
      (fun pa ->
        Obs.Point
          { name = "hostprof.pass"; ts = 0.0;
            fields =
              [ ("pass", Json.Str pa.p_pass); ("runs", Json.Int pa.p_runs);
                ("minor_words", Json.Float pa.pa_minor_words);
                ("promoted_words", Json.Float pa.pa_promoted_words) ] })
      p.p_passes
  in
  emit_all (Sinks.jsonl_file path)
    (span_events p @ worker_points @ lock_points @ pass_points)

let json_of_hist h =
  Json.Obj
    [ ("count", Json.Int h.Obs.h_count); ("sum_s", Json.Float h.Obs.h_sum);
      ("p50_s", Json.Float (Obs.hist_percentile h 0.50));
      ("p90_s", Json.Float (Obs.hist_percentile h 0.90));
      ("p99_s", Json.Float (Obs.hist_percentile h 0.99)) ]

let json_of_profile p =
  let nominal = max 1 (if p.p_jobs = 0 then 1 else p.p_jobs) in
  Json.Obj
    [ ("schema", Json.Str "alcop-hostprof-v1");
      ("wall_ns", Json.Int p.p_wall_ns); ("jobs", Json.Int p.p_jobs);
      ("serial_fraction", Json.Float (serial_fraction p));
      ("effective_parallelism", Json.Float (effective_parallelism p));
      ("expected_speedup", Json.Float (expected_speedup p ~jobs:nominal));
      ("workers",
       Json.List
         (List.map
            (fun w ->
              Json.Obj
                [ ("role", Json.Str w.w_role);
                  ("wall_ns", Json.Int w.w_wall_ns);
                  ("busy_ns", Json.Int w.w_busy_ns);
                  ("queue_ns", Json.Int w.w_queue_ns);
                  ("lock_ns", Json.Int w.w_lock_ns);
                  ("gc_ns", Json.Int w.w_gc_ns);
                  ("idle_ns", Json.Int w.w_idle_ns);
                  ("tasks", Json.Int w.w_tasks);
                  ("minor_words", Json.Float w.w_minor_words);
                  ("promoted_words", Json.Float w.w_promoted_words);
                  ("minor_collections", Json.Int w.w_minor_collections);
                  ("major_collections", Json.Int w.w_major_collections) ])
            p.p_workers));
      ("locks",
       Json.List
         (List.map
            (fun l ->
              Json.Obj
                [ ("name", Json.Str l.l_name);
                  ("acquisitions", Json.Int l.l_acquisitions);
                  ("contended", Json.Int l.l_contended);
                  ("wait_ns", Json.Int l.l_wait_ns);
                  ("wait", json_of_hist l.l_hist) ])
            p.p_locks));
      ("passes",
       Json.List
         (List.map
            (fun pa ->
              Json.Obj
                [ ("pass", Json.Str pa.p_pass); ("runs", Json.Int pa.p_runs);
                  ("minor_words", Json.Float pa.pa_minor_words);
                  ("promoted_words", Json.Float pa.pa_promoted_words) ])
            p.p_passes));
      ("task_queue_latency", json_of_hist p.p_queue_hist) ]
