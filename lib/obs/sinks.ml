(* Built-in sinks: JSONL event log, Chrome trace-event export, pretty
   console summary. All serialization goes through [Json] so escaping and
   float formatting are uniform across sinks and tuning logs. *)

let file_writer path =
  let oc = open_out path in
  ((fun s -> output_string oc s), fun () -> close_out oc)

(* --- JSONL --- *)

let fields_obj fields = Json.Obj fields

let json_of_event (ev : Obs.event) =
  match ev with
  | Obs.Span_begin { name; ts; depth } ->
    Json.Obj
      [ ("type", Json.Str "span_begin"); ("name", Json.Str name);
        ("ts", Json.Float ts); ("depth", Json.Int depth) ]
  | Obs.Span_end { name; ts; dur; depth; fields } ->
    Json.Obj
      [ ("type", Json.Str "span"); ("name", Json.Str name);
        ("ts", Json.Float ts); ("dur", Json.Float dur);
        ("depth", Json.Int depth); ("fields", fields_obj fields) ]
  | Obs.Counter { name; incr; total; ts } ->
    Json.Obj
      [ ("type", Json.Str "counter"); ("name", Json.Str name);
        ("incr", Json.Int incr); ("total", Json.Int total);
        ("ts", Json.Float ts) ]
  | Obs.Gauge { name; value; ts } ->
    Json.Obj
      [ ("type", Json.Str "gauge"); ("name", Json.Str name);
        ("value", Json.Float value); ("ts", Json.Float ts) ]
  | Obs.Point { name; ts; fields } ->
    Json.Obj
      [ ("type", Json.Str "point"); ("name", Json.Str name);
        ("ts", Json.Float ts); ("fields", fields_obj fields) ]
  | Obs.Hist { name; value; ts } ->
    Json.Obj
      [ ("type", Json.Str "hist"); ("name", Json.Str name);
        ("value", Json.Float value); ("ts", Json.Float ts) ]

let jsonl write =
  { Obs.emit = (fun ev -> write (Json.to_string (json_of_event ev) ^ "\n"));
    close = (fun () -> ()) }

let jsonl_file path =
  let write, close = file_writer path in
  let s = jsonl write in
  { s with Obs.close = close }

(* --- Chrome trace events --- *)

(* Reserved routing fields: a producer may attach ["#pid"] / ["#tid"]
   (ints) to a span or point to place it on a specific track, and
   ["#process_name"] / ["#thread_name"] (strings) to label that track via
   Chrome "M" metadata events (emitted once per track). Reserved fields
   are stripped from the exported [args]. *)
let is_reserved (k, _) = String.length k > 0 && k.[0] = '#'

let reserved_int fields key ~default =
  match List.assoc_opt key fields with Some (Json.Int i) -> i | _ -> default

let reserved_str fields key =
  match List.assoc_opt key fields with Some (Json.Str s) -> Some s | _ -> None

(* Timestamps are relative to the first event seen, so the trace opens at
   t=0 regardless of the clock's epoch. [ts_to_us] converts a clock delta
   to Chrome microseconds: the default clock is wall-clock seconds, but a
   simulated-time producer (e.g. the gpusim profiler, whose clock is
   cycles) passes its own scale. *)
let chrome_trace ?(ts_to_us = fun d -> d *. 1e6) write =
  let recorded : (float * Json.t) list ref = ref [] in
  let origin = ref None in
  let meta_seen : (int * int * string, unit) Hashtbl.t = Hashtbl.create 8 in
  let us ts =
    let o = match !origin with Some o -> o | None -> origin := Some ts; ts in
    ts_to_us (ts -. o)
  in
  let push ts j = recorded := (ts, j) :: !recorded in
  let meta ~pid ~tid kind label =
    if not (Hashtbl.mem meta_seen (pid, tid, kind)) then begin
      Hashtbl.replace meta_seen (pid, tid, kind) ();
      (* metadata sorts before every timed event *)
      push neg_infinity
        (Json.Obj
           [ ("name", Json.Str kind); ("ph", Json.Str "M");
             ("pid", Json.Int pid); ("tid", Json.Int tid);
             ("args", Json.Obj [ ("name", Json.Str label) ]) ])
    end
  in
  (* Resolve routing for an event's fields: (pid, tid, cleaned args). *)
  let route fields =
    let pid = reserved_int fields "#pid" ~default:1 in
    let tid = reserved_int fields "#tid" ~default:1 in
    (match reserved_str fields "#process_name" with
     | Some label -> meta ~pid ~tid:0 "process_name" label
     | None -> ());
    (match reserved_str fields "#thread_name" with
     | Some label -> meta ~pid ~tid "thread_name" label
     | None -> ());
    (pid, tid, List.filter (fun f -> not (is_reserved f)) fields)
  in
  let common name ph ts ~pid ~tid =
    [ ("name", Json.Str name); ("ph", Json.Str ph); ("ts", Json.Float ts);
      ("pid", Json.Int pid); ("tid", Json.Int tid) ]
  in
  let emit (ev : Obs.event) =
    match ev with
    | Obs.Span_begin { ts; _ } ->
      (* spans are written as complete events at Span_end, whose ts is the
         span's *start* — anchor the origin here or events recorded inside
         the first span would push it later and make that ts negative *)
      ignore (us ts)
    | Obs.Span_end { name; ts; dur; fields; _ } ->
      let t = us ts in
      let pid, tid, args = route fields in
      push t
        (Json.Obj
           (common name "X" t ~pid ~tid
            @ [ ("dur", Json.Float (ts_to_us dur)); ("args", fields_obj args) ]))
    | Obs.Counter { name; total; ts; _ } ->
      let t = us ts in
      push t
        (Json.Obj
           (common name "C" t ~pid:1 ~tid:1
            @ [ ("args", Json.Obj [ ("value", Json.Int total) ]) ]))
    | Obs.Gauge { name; value; ts } ->
      let t = us ts in
      push t
        (Json.Obj
           (common name "C" t ~pid:1 ~tid:1
            @ [ ("args", Json.Obj [ ("value", Json.Float value) ]) ]))
    | Obs.Hist { name; value; ts } ->
      (* each observation renders as a counter sample, so the observed
         value's trajectory is visible as a track *)
      let t = us ts in
      push t
        (Json.Obj
           (common name "C" t ~pid:1 ~tid:1
            @ [ ("args", Json.Obj [ ("value", Json.Float value) ]) ]))
    | Obs.Point { name; ts; fields } ->
      let t = us ts in
      let pid, tid, args = route fields in
      push t
        (Json.Obj
           (common name "i" t ~pid ~tid
            @ [ ("s", Json.Str "t"); ("args", fields_obj args) ]))
  in
  let close () =
    let events =
      List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !recorded)
    in
    write
      (Json.to_string
         (Json.Obj
            [ ("traceEvents", Json.List (List.map snd events));
              ("displayTimeUnit", Json.Str "ms") ]));
    write "\n"
  in
  { Obs.emit; close }

let chrome_trace_file ?ts_to_us path =
  let write, close_file = file_writer path in
  let s = chrome_trace ?ts_to_us write in
  { s with Obs.close = (fun () -> s.Obs.close (); close_file ()) }

(* --- console summary --- *)

type span_row = {
  name : string;
  depth : int;
  mutable dur : float option;  (** None while still open *)
}

let console_summary write =
  let rows : span_row list ref = ref [] in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let gauges : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let hists : (string, Obs.histogram) Hashtbl.t = Hashtbl.create 8 in
  let emit (ev : Obs.event) =
    match ev with
    | Obs.Span_begin { name; depth; _ } ->
      rows := { name; depth; dur = None } :: !rows
    | Obs.Span_end { name; dur; depth; _ } ->
      (* innermost-first: fill the most recent open row of this span *)
      (match
         List.find_opt
           (fun r -> r.dur = None && r.depth = depth && String.equal r.name name)
           !rows
       with
       | Some r -> r.dur <- Some dur
       | None -> rows := { name; depth; dur = Some dur } :: !rows)
    | Obs.Counter { name; total; _ } -> Hashtbl.replace counters name total
    | Obs.Gauge { name; value; _ } -> Hashtbl.replace gauges name value
    | Obs.Hist { name; value; _ } ->
      let h =
        Option.value ~default:(Obs.hist_empty ()) (Hashtbl.find_opt hists name)
      in
      Hashtbl.replace hists name (Obs.hist_observe h value)
    | Obs.Point _ -> ()
  in
  let close () =
    let line fmt = Printf.ksprintf (fun s -> write (s ^ "\n")) fmt in
    (match List.rev !rows with
     | [] -> ()
     | rows ->
       line "-- spans (wall clock) --";
       List.iter
         (fun r ->
           let label = String.make (2 * r.depth) ' ' ^ r.name in
           match r.dur with
           | Some d -> line "%-44s %10.3f ms" label (1e3 *. d)
           | None -> line "%-44s %10s" label "(open)")
         rows);
    let dump title table fmt_v =
      let entries =
        List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) table [])
      in
      if entries <> [] then begin
        line "-- %s --" title;
        List.iter (fun (k, v) -> line "%-44s %10s" k (fmt_v v)) entries
      end
    in
    dump "counters" counters string_of_int;
    dump "gauges" gauges (Printf.sprintf "%.4g");
    dump "histograms (count/p50/p90/p99)" hists (fun h ->
        Printf.sprintf "%d/%.4g/%.4g/%.4g" h.Obs.h_count
          (Obs.hist_percentile h 0.50)
          (Obs.hist_percentile h 0.90)
          (Obs.hist_percentile h 0.99))
  in
  { Obs.emit; close }

let console_summary_stdout () = console_summary print_string
