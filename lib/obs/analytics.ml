(* Analyses over reconstructed traces: per-span-name duration statistics
   (with log-bucket histograms and percentiles), critical-path extraction
   through the span forest, and diffs — span-level between two runs of the
   same pipeline, and stall-class-level between two profiler traces, the
   table that explains *why* one variant is faster.

   All durations are in the producing clock's unit (wall-clock seconds for
   the compiler, simulated cycles for the gpusim profiler); nothing here
   assumes a unit, and renderers print bare numbers. *)

(* --- per-name span statistics --- *)

type span_stats = {
  ss_name : string;
  ss_count : int;
  ss_total : float;  (* sum of durations *)
  ss_self : float;  (* total minus time in children *)
  ss_hist : Obs.histogram;  (* of individual durations *)
}

let span_stats (trace : Trace_reader.trace) =
  let table : (string, span_stats) Hashtbl.t = Hashtbl.create 16 in
  Trace_reader.iter_spans
    (fun s ->
      let child_total =
        List.fold_left
          (fun acc (c : Trace_reader.span) -> acc +. c.sp_dur)
          0.0 s.sp_children
      in
      let self = Float.max 0.0 (s.sp_dur -. child_total) in
      let prev =
        match Hashtbl.find_opt table s.sp_name with
        | Some st -> st
        | None ->
          { ss_name = s.sp_name; ss_count = 0; ss_total = 0.0; ss_self = 0.0;
            ss_hist = Obs.hist_empty () }
      in
      Hashtbl.replace table s.sp_name
        { prev with
          ss_count = prev.ss_count + 1;
          ss_total = prev.ss_total +. s.sp_dur;
          ss_self = prev.ss_self +. self;
          ss_hist = Obs.hist_observe prev.ss_hist s.sp_dur })
    trace.tr_spans;
  Hashtbl.fold (fun _ st acc -> st :: acc) table []
  |> List.sort (fun a b ->
         match compare b.ss_total a.ss_total with
         | 0 -> compare a.ss_name b.ss_name
         | c -> c)

(* --- critical path --- *)

type critical_node = {
  cn_name : string;
  cn_dur : float;
  cn_self : float;  (* dur minus the chosen child's dur *)
  cn_depth : int;
}

(* Greedy longest-child descent: from a span, the critical path follows
   the child with the largest duration. Sequential children all lie on
   the wall-clock path, but the dominant child is the one worth showing
   (and recursing into); its siblings are folded into cn_self. *)
let critical_path (root : Trace_reader.span) =
  let rec go (s : Trace_reader.span) acc =
    let longest =
      List.fold_left
        (fun best (c : Trace_reader.span) ->
          match best with
          | Some (b : Trace_reader.span) when b.sp_dur >= c.sp_dur -> best
          | _ -> Some c)
        None s.sp_children
    in
    let chosen = match longest with Some c -> c.Trace_reader.sp_dur | None -> 0.0 in
    let node =
      { cn_name = s.sp_name; cn_dur = s.sp_dur;
        cn_self = Float.max 0.0 (s.sp_dur -. chosen); cn_depth = s.sp_depth }
    in
    match longest with None -> List.rev (node :: acc) | Some c -> go c (node :: acc)
  in
  go root []

let critical_path_of_trace (trace : Trace_reader.trace) =
  let longest_root =
    List.fold_left
      (fun best (s : Trace_reader.span) ->
        match best with
        | Some (b : Trace_reader.span) when b.sp_dur >= s.sp_dur -> best
        | _ -> Some s)
      None trace.tr_spans
  in
  match longest_root with None -> [] | Some r -> critical_path r

(* --- span diff between two runs --- *)

type span_delta = {
  sd_name : string;
  sd_old_total : float option;  (* None: span only in the new run *)
  sd_new_total : float option;  (* None: span disappeared *)
  sd_delta : float;  (* new - old, missing side counted as 0 *)
}

let diff_spans ~old_trace ~new_trace =
  let old_stats = span_stats old_trace and new_stats = span_stats new_trace in
  let names =
    List.sort_uniq compare
      (List.map (fun s -> s.ss_name) old_stats
      @ List.map (fun s -> s.ss_name) new_stats)
  in
  let find stats name =
    List.find_opt (fun s -> String.equal s.ss_name name) stats
  in
  List.map
    (fun name ->
      let o = Option.map (fun s -> s.ss_total) (find old_stats name) in
      let n = Option.map (fun s -> s.ss_total) (find new_stats name) in
      let v = Option.value ~default:0.0 in
      { sd_name = name; sd_old_total = o; sd_new_total = n;
        sd_delta = v n -. v o })
    names
  |> List.sort (fun a b ->
         match compare (Float.abs b.sd_delta) (Float.abs a.sd_delta) with
         | 0 -> compare a.sd_name b.sd_name
         | c -> c)

(* --- stall-class diff --- *)

type stall_delta = {
  st_class : string;
  st_old : float;
  st_new : float;
  st_delta : float;  (* new - old *)
}

let stall_prefix = "stall."

(* The profiler emits cumulative [stall.<class>] gauges for the critical
   thread block of the representative wave; the final gauge value is the
   per-class total, and the classes partition the block's cycles exactly
   (the telescoping invariant in [Profile]). In the source order of the
   trace's gauges (sorted by name) the table is deterministic. *)
let stall_breakdown_of_trace (trace : Trace_reader.trace) =
  List.filter_map
    (fun (name, value) ->
      if String.starts_with ~prefix:stall_prefix name then
        Some
          ( String.sub name (String.length stall_prefix)
              (String.length name - String.length stall_prefix),
            value )
      else None)
    trace.tr_gauges

let diff_stalls ~old_stalls ~new_stalls =
  let classes =
    List.sort_uniq compare (List.map fst old_stalls @ List.map fst new_stalls)
  in
  let get stalls cls = Option.value ~default:0.0 (List.assoc_opt cls stalls) in
  List.map
    (fun cls ->
      let o = get old_stalls cls and n = get new_stalls cls in
      { st_class = cls; st_old = o; st_new = n; st_delta = n -. o })
    classes

let stall_total deltas =
  List.fold_left
    (fun (o, n, d) s -> (o +. s.st_old, n +. s.st_new, d +. s.st_delta))
    (0.0, 0.0, 0.0) deltas

(* --- text rendering (shared by the CLI and golden tests) --- *)

let pct h q = Obs.hist_percentile h q

let fmt_num v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let fmt_signed v = if v >= 0.0 then "+" ^ fmt_num v else fmt_num v

let summary_lines (trace : Trace_reader.trace) =
  let buf = ref [] in
  let line fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
  line "trace: %d events, %d spans, %d roots" trace.tr_events
    (Trace_reader.span_count trace)
    (List.length trace.tr_spans);
  if trace.tr_skipped > 0 then
    line "warning: %d malformed line%s skipped while reading" trace.tr_skipped
      (if trace.tr_skipped = 1 then "" else "s");
  let stats = span_stats trace in
  if stats <> [] then begin
    line "-- spans by total time --";
    line "%-40s %6s %12s %12s %10s %10s %10s" "name" "count" "total" "self"
      "p50" "p90" "p99";
    List.iter
      (fun st ->
        line "%-40s %6d %12s %12s %10s %10s %10s" st.ss_name st.ss_count
          (fmt_num st.ss_total) (fmt_num st.ss_self)
          (fmt_num (pct st.ss_hist 0.50))
          (fmt_num (pct st.ss_hist 0.90))
          (fmt_num (pct st.ss_hist 0.99)))
      stats
  end;
  (match critical_path_of_trace trace with
   | [] -> ()
   | path ->
     line "-- critical path --";
     List.iter
       (fun n ->
         line "%s%-*s %12s (self %s)"
           (String.make (2 * n.cn_depth) ' ')
           (max 1 (40 - (2 * n.cn_depth)))
           n.cn_name (fmt_num n.cn_dur) (fmt_num n.cn_self))
       path);
  if trace.tr_counters <> [] then begin
    line "-- counters --";
    List.iter
      (fun (k, v) -> line "%-40s %12d" k v)
      trace.tr_counters
  end;
  if trace.tr_gauges <> [] then begin
    line "-- gauges --";
    List.iter
      (fun (k, v) -> line "%-40s %12s" k (fmt_num v))
      trace.tr_gauges
  end;
  if trace.tr_hists <> [] then begin
    line "-- histograms --";
    line "%-40s %6s %12s %10s %10s %10s" "name" "count" "sum" "p50" "p90" "p99";
    List.iter
      (fun (k, h) ->
        line "%-40s %6d %12s %10s %10s %10s" k h.Obs.h_count
          (fmt_num h.Obs.h_sum) (fmt_num (pct h 0.50)) (fmt_num (pct h 0.90))
          (fmt_num (pct h 0.99)))
      trace.tr_hists
  end;
  (* Per-kernel identity of profiled programs: the profiler's anchor point
     carries the packed program's content hash and group-table size, so a
     summary names exactly which program a trace replayed. *)
  let kernels =
    List.filter_map
      (fun (p : Trace_reader.point) ->
        if not (String.equal p.Trace_reader.pt_name "profile") then None
        else
          let str k =
            match List.assoc_opt k p.Trace_reader.pt_fields with
            | Some (Json.Str s) -> s
            | _ -> ""
          in
          let int k =
            match List.assoc_opt k p.Trace_reader.pt_fields with
            | Some (Json.Int i) -> i
            | Some (Json.Float f) -> int_of_float f
            | _ -> -1
          in
          let hash = str "program_hash" in
          if String.equal hash "" then None
          else Some (str "op", str "schedule", hash, int "n_groups",
                     int "n_events"))
      trace.tr_points
  in
  if kernels <> [] then begin
    line "-- kernels --";
    line "%-24s %-20s %-34s %7s %8s" "op" "schedule" "program hash" "groups"
      "events";
    List.iter
      (fun (op, sched, hash, ngroups, nevents) ->
        line "%-24s %-20s %-34s %7d %8d" op sched hash ngroups nevents)
      kernels
  end;
  List.rev !buf

let diff_lines ~old_trace ~new_trace =
  let buf = ref [] in
  let line fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
  let deltas = diff_spans ~old_trace ~new_trace in
  if deltas <> [] then begin
    line "-- span deltas (new - old, by magnitude) --";
    line "%-40s %12s %12s %12s" "name" "old" "new" "delta";
    (* simulator traces carry one span per copied buffer; keep the table
       readable by showing only the largest movers *)
    let max_rows = 40 in
    let n = List.length deltas in
    List.iteri
      (fun i d ->
        if i < max_rows then begin
          let cell = function Some v -> fmt_num v | None -> "-" in
          line "%-40s %12s %12s %12s" d.sd_name (cell d.sd_old_total)
            (cell d.sd_new_total) (fmt_signed d.sd_delta)
        end)
      deltas;
    if n > max_rows then line "... (%d more)" (n - max_rows)
  end;
  let old_stalls = stall_breakdown_of_trace old_trace in
  let new_stalls = stall_breakdown_of_trace new_trace in
  if old_stalls <> [] || new_stalls <> [] then begin
    let sd = diff_stalls ~old_stalls ~new_stalls in
    let to_, tn, td = stall_total sd in
    line "-- stall cycles (critical thread block, new - old) --";
    line "%-20s %12s %12s %12s" "class" "old" "new" "delta";
    List.iter
      (fun s ->
        line "%-20s %12s %12s %12s" s.st_class (fmt_num s.st_old)
          (fmt_num s.st_new) (fmt_signed s.st_delta))
      sd;
    line "%-20s %12s %12s %12s" "total" (fmt_num to_) (fmt_num tn)
      (fmt_signed td)
  end;
  List.rev !buf
