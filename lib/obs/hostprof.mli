(** Host-side wall-clock runtime profiler: where does the {e compiler's
    own} time go when it runs across worker domains?

    Everything else in [Alcop_obs] measures {e simulated} GPU time; this
    module measures the host process — per-domain busy/idle timelines,
    lock contention, GC pressure — so a missing [-j N] speedup can be
    attributed instead of guessed at (the same discipline ALCOP's Fig. 2/3
    stall analysis applies to the GPU pipeline, turned on the host
    pipeline: worker domains instead of warps, mutexes instead of
    barriers).

    {b Determinism contract.} Collection lives entirely {e outside} the
    deterministic {!Obs.capturing}/{!Obs.replay} path: probes write to
    per-domain shards (one [Domain.DLS] shard per domain, no shared
    mutable state on the hot path) and never emit an [Obs] event or touch
    an [Obs] table. Enabling host profiling therefore leaves every
    telemetry stream — tuning logs, JSONL events, counters, gauges —
    byte-identical to an unprofiled run (property-tested). Exports below
    construct their own private sinks from recorded data.

    {b Accounting contract.} Every worker's wall clock inside the
    profiled window telescopes {e exactly} (integer nanoseconds) into
    five buckets:

    - [busy]  — running task bodies (lock-wait and GC carved out);
    - [queue] — task-dispatch machinery: the gap between a worker
      becoming free and the next task's body starting (dequeue, wakeup
      latency). Per-task {e enqueue→start} latency is reported
      separately as a histogram — it overlaps other work and is a task
      property, not a worker wall bucket;
    - [lock]  — waiting on contended mutexes / in-flight-compile waits,
      per named probe;
    - [gc]    — allocation-pressure time, {e estimated} from
      [Gc.quick_stat] deltas (minor + promoted words times a fixed
      per-word cost, clamped into the task's run time). Collection and
      word counts are the measured ground truth; the time split is a
      model (see doc/hostprof.md);
    - [idle]  — blocked waiting for work, plus the unattributed residual.

    [busy + queue + lock + gc + idle = wall] holds exactly per worker,
    by construction, and is enforced by {!check} and by tests.

    Usage: {!start} on the coordinating domain, run the workload (create
    pools {e inside} the window so worker lifetimes are covered and
    joined before {!stop}), then {!stop} and render with {!report} /
    {!write_chrome_trace} / {!write_jsonl} / {!json_of_profile}.
    Probes cost one atomic load when profiling is off. *)

(** {1 Probes} (called by [Alcop_par.Pool], [Session], [Passman]) *)

val on : unit -> bool
(** Is a profiling window open? All probes are no-ops when [false]. *)

val set_role : string -> unit
(** Name the current domain's track (e.g. ["worker-3"]). Call once at
    domain start; domains that never call it are ["coordinator"]. Cheap
    and safe to call when profiling is off. *)

val task_enqueued : unit -> int
(** Timestamp (ns into the window) handed to {!task} as [~enqueue] so
    queue latency can be measured; [min_int] when profiling is off. *)

val task : ?enqueue:int -> label:string -> (unit -> 'a) -> 'a
(** Run a task body, recording start/finish timestamps and
    [Gc.quick_stat] deltas on the current domain's shard. Lock waits
    inside the body are attributed to this task. Exceptions are
    recorded, then re-raised. *)

val idle : (unit -> 'a) -> 'a
(** Record a blocked-waiting-for-work interval (a worker's
    [Condition.wait] on the task queue). *)

val batch_wait : (unit -> 'a) -> 'a
(** Record a coordinator blocked-on-a-batch interval — the parallel
    region, counted as the coordinator's [idle] (its [busy] residual is
    the serial time Amdahl's law cares about). *)

type lock
(** A named lock probe: static identity for a {e class} of locks (e.g.
    every session's per-session mutex shares one probe). *)

val make_lock : string -> lock

val lock_acquire : lock -> Mutex.t -> unit
(** [Mutex.lock] with the wait timed into the probe: a successful
    [try_lock] counts as an uncontended acquisition (no clock read);
    otherwise the blocked time is measured and charged to the current
    task (or recorded as a worker-wall lock interval outside tasks). *)

val locked : lock -> Mutex.t -> (unit -> 'a) -> 'a
(** [lock_acquire], run the thunk, unlock (also on exceptions). *)

val blocking : lock -> (unit -> 'a) -> 'a
(** Time an arbitrary blocking section (e.g. a [Condition.wait] for an
    in-flight compile) as a contended wait on the probe. *)

val pass_sample : string -> (unit -> 'a) -> 'a
(** Sample allocation counters ([Gc.counters]: minor + promoted words,
    ~20ns per read) around one compile-pass execution and aggregate the
    deltas under the pass name ("which pass allocates most");
    independent of the [Obs] pass spans. Collection {e counts} are
    sampled at task granularity only — [Gc.quick_stat] is ~1.2us per
    call and would dominate the sub-millisecond passes. *)

(** {1 Profile data} *)

type worker = {
  w_role : string;
  w_wall_ns : int;
  w_busy_ns : int;
  w_queue_ns : int;
  w_lock_ns : int;
  w_gc_ns : int;
  w_idle_ns : int;  (** invariant: the five buckets sum to [w_wall_ns] *)
  w_tasks : int;
  w_minor_words : float;
  w_promoted_words : float;
  w_minor_collections : int;
  w_major_collections : int;
}

type lock_stat = {
  l_name : string;
  l_acquisitions : int;
  l_contended : int;
  l_wait_ns : int;
  l_hist : Obs.histogram;  (** contended wait times, seconds *)
}

type pass_alloc = {
  p_pass : string;
  p_runs : int;
  pa_minor_words : float;
  pa_promoted_words : float;
}

type span = {
  sp_track : string;  (** role of the domain that ran it *)
  sp_label : string;
  sp_start_ns : int;
  sp_end_ns : int;
  sp_queue_ns : int;  (** enqueue→start latency of this task *)
  sp_lock_ns : int;
  sp_minor_words : float;
}

type profile = {
  p_wall_ns : int;
  p_jobs : int;  (** worker domains observed; 0 = everything ran inline *)
  p_workers : worker list;  (** coordinator first, then workers by role *)
  p_locks : lock_stat list;  (** sorted by total wait, descending *)
  p_passes : pass_alloc list;  (** sorted by minor words, descending *)
  p_queue_hist : Obs.histogram;  (** task enqueue→start latency, seconds *)
  p_spans : span list;  (** task/wait intervals, sorted by start *)
}

(** {1 Lifecycle} *)

val start : unit -> unit
(** Open a profiling window on the calling (coordinating) domain.
    Discards any shards from a previous window. *)

val stop : unit -> profile
(** Close the window and analyze all shards. Call only after worker
    domains are joined (e.g. after [Pool.with_pool] returns) so every
    shard is complete. Raises [Invalid_argument] if no window is open. *)

(** {1 Analysis} *)

val check : profile -> (unit, string) result
(** Verify the telescoping invariant: for every worker, the five buckets
    are non-negative and sum exactly to its wall. *)

val serial_fraction : profile -> float
(** Coordinator busy time / wall — the [s] of Amdahl's law. *)

val effective_parallelism : profile -> float
(** Total busy time across all domains / wall: how many domains were
    doing useful work on average (the achieved, not nominal, [-j]). *)

val expected_speedup : profile -> jobs:int -> float
(** Amdahl projection from the measured serial fraction:
    [1 / (s + (1 - s) / jobs)]. *)

val report : ?top:int -> profile -> string
(** The Amdahl / speedup-loss report: per-worker wall decomposition
    (telescoping shown as percentages), serial fraction and expected
    vs. achieved parallelism, top-[top] contended locks (default 5),
    allocation-heaviest passes, task queue-latency percentiles. Pure —
    deterministic for a given profile (golden-tested). *)

(** {1 Export} (private sinks; never touches the global [Obs] state) *)

val write_chrome_trace : string -> profile -> unit
(** Chrome trace with one [#tid] track per domain (coordinator = tid 0),
    through {!Sinks.chrome_trace_file}'s routing fields. *)

val write_jsonl : string -> profile -> unit
(** The same spans plus per-lock and per-pass points as a JSONL log,
    through {!Sinks.jsonl_file}. *)

val json_of_profile : profile -> Json.t
(** Machine-readable profile (schema ["alcop-hostprof-v1"]) for
    [alcop perf --json-out] and the selfbench host rows. *)
