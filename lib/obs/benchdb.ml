(* The continuous performance observatory. Three layers:

     1. robust statistics over repeated runs (median/MAD/min/p90 — means
        and standard deviations are hopeless on shared machines where the
        noise is one-sided: interruptions only ever make a run slower);
     2. schema alcop-selfbench-v2 records carrying a machine/environment
        fingerprint, appended one JSONL line at a time to a per-machine
        history stream (atomic single-write appends, corruption-tolerant
        counted-skip reads, mirroring Trace_reader);
     3. a sliding median-shift change-point detector over each
        benchmark's ops/sec series, tested against a MAD-derived noise
        floor, feeding `bench trend [--strict]` and the trend charts.

   Kept free of compiler dependencies on purpose: everything here works
   on any record stream, so tests drive it with synthetic histories. *)

(* --- robust statistics --- *)

type stats = {
  s_runs : int;
  s_median_ns : float;
  s_mad_ns : float;
  s_min_ns : float;
  s_p90_ns : float;
  s_mean_ns : float;
}

let percentile p vs =
  match List.sort compare vs with
  | [] -> 0.0
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let idx = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx) in
    let hi = min (n - 1) (lo + 1) in
    let frac = idx -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

let median vs = percentile 0.5 vs

let mad ?center vs =
  match vs with
  | [] -> 0.0
  | _ ->
    let c = match center with Some c -> c | None -> median vs in
    median (List.map (fun v -> Float.abs (v -. c)) vs)

let summarize vs =
  let n = List.length vs in
  if n = 0 then
    { s_runs = 0; s_median_ns = 0.0; s_mad_ns = 0.0; s_min_ns = 0.0;
      s_p90_ns = 0.0; s_mean_ns = 0.0 }
  else
    let m = median vs in
    { s_runs = n;
      s_median_ns = m;
      s_mad_ns = mad ~center:m vs;
      s_min_ns = List.fold_left Float.min infinity vs;
      s_p90_ns = percentile 0.9 vs;
      s_mean_ns = List.fold_left ( +. ) 0.0 vs /. float_of_int n }

let noise st = if st.s_median_ns > 0.0 then st.s_mad_ns /. st.s_median_ns else 0.0

let ops_per_sec st = if st.s_median_ns > 0.0 then 1e9 /. st.s_median_ns else 0.0

(* --- machine fingerprint --- *)

type fingerprint = {
  f_ocaml : string;
  f_os : string;
  f_cores : int;
  f_jobs : string;
  f_host_hash : string;
  f_git_rev : string;
}

let git_rev_of_cwd () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    (match Unix.close_process_in ic with
     | Unix.WEXITED 0 when line <> "" -> line
     | _ | (exception _) -> "unknown")

let collect_fingerprint ?hostname ?git_rev ?jobs ?cores () =
  let hostname =
    match hostname with
    | Some h -> h
    | None -> (try Unix.gethostname () with _ -> "unknown")
  in
  { f_ocaml = Sys.ocaml_version;
    f_os = String.lowercase_ascii Sys.os_type;
    f_cores =
      (match cores with
       | Some c -> c
       | None -> Domain.recommended_domain_count ());
    f_jobs =
      (match jobs with
       | Some j -> j
       | None -> Option.value ~default:"" (Sys.getenv_opt "ALCOP_JOBS"));
    f_host_hash = String.sub (Digest.to_hex (Digest.string hostname)) 0 8;
    f_git_rev = (match git_rev with Some r -> r | None -> git_rev_of_cwd ()) }

(* File-name-safe slug; anything exotic in a version string degrades to
   '_' rather than escaping into the path. *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c
      | _ -> '_')
    s

(* The stream key deliberately excludes f_git_rev (changes every commit)
   and f_host_hash (CI runner hostnames change every run): either would
   shred the history into single-record files and blind the detector. *)
let fingerprint_id fp =
  Printf.sprintf "%s-ocaml%s-%dc-j%s" (sanitize fp.f_os) (sanitize fp.f_ocaml)
    fp.f_cores
    (if fp.f_jobs = "" then "auto" else sanitize fp.f_jobs)

(* --- records --- *)

type bench = {
  b_id : string;
  b_stats : stats;
  b_host : Json.t option;
}

type record = {
  r_schema : string;
  r_generated_by : string;
  r_machine : string;
  r_unit : string;
  r_ts : float option;
  r_fingerprint : fingerprint option;
  r_benches : bench list;
}

let schema_v1 = "alcop-selfbench-v1"
let schema_v2 = "alcop-selfbench-v2"

let make_record ?ts ?(generated_by = "bench") ~machine ~fingerprint benches =
  { r_schema = schema_v2; r_generated_by = generated_by; r_machine = machine;
    r_unit = "ops_per_sec"; r_ts = ts; r_fingerprint = Some fingerprint;
    r_benches = benches }

let fingerprint_to_json fp =
  Json.Obj
    [ ("ocaml", Json.Str fp.f_ocaml); ("os", Json.Str fp.f_os);
      ("cores", Json.Int fp.f_cores); ("jobs", Json.Str fp.f_jobs);
      ("host_hash", Json.Str fp.f_host_hash);
      ("git_rev", Json.Str fp.f_git_rev) ]

let bench_to_json b =
  let st = b.b_stats in
  Json.Obj
    ([ ("id", Json.Str b.b_id);
       ("runs", Json.Int st.s_runs);
       (* ns_per_run + ops_per_sec keep v1 readers working on v2 files *)
       ("ns_per_run", Json.Float st.s_median_ns);
       ("ops_per_sec", Json.Float (ops_per_sec st));
       ("median_ns", Json.Float st.s_median_ns);
       ("mad_ns", Json.Float st.s_mad_ns);
       ("min_ns", Json.Float st.s_min_ns);
       ("p90_ns", Json.Float st.s_p90_ns);
       ("mean_ns", Json.Float st.s_mean_ns);
       ("noise", Json.Float (noise st)) ]
     @ match b.b_host with Some h -> [ ("host", h) ] | None -> [])

let record_to_json r =
  Json.Obj
    ([ ("schema", Json.Str r.r_schema);
       ("generated_by", Json.Str r.r_generated_by);
       ("machine", Json.Str r.r_machine);
       ("unit", Json.Str r.r_unit) ]
     @ (match r.r_ts with Some ts -> [ ("ts", Json.Float ts) ] | None -> [])
     @ (match r.r_fingerprint with
        | Some fp -> [ ("fingerprint", fingerprint_to_json fp) ]
        | None -> [])
     @ [ ("benchmarks", Json.List (List.map bench_to_json r.r_benches)) ])

let str_field key j =
  match Json.member key j with Some (Json.Str s) -> Some s | _ -> None

let num_field key j = Option.bind (Json.member key j) Json.number

let int_field key j =
  match Json.member key j with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let fingerprint_of_json j =
  match
    (str_field "ocaml" j, str_field "os" j, int_field "cores" j,
     str_field "jobs" j, str_field "host_hash" j, str_field "git_rev" j)
  with
  | Some ocaml, Some os, Some cores, Some jobs, Some hh, Some rev ->
    Some { f_ocaml = ocaml; f_os = os; f_cores = cores; f_jobs = jobs;
           f_host_hash = hh; f_git_rev = rev }
  | _ -> None

(* v2 entries have the full stats; v1 entries become single-run stats
   with zero MAD (one sample has no measurable spread). Entries missing
   both a usable time and a usable rate are dropped, not errors — one
   alien entry must not invalidate a whole record. *)
let bench_of_json j =
  match str_field "id" j with
  | None -> None
  | Some id ->
    let ns =
      match num_field "median_ns" j with
      | Some ns -> Some ns
      | None ->
        (match num_field "ns_per_run" j with
         | Some ns -> Some ns
         | None ->
           (match num_field "ops_per_sec" j with
            | Some ops when ops > 0.0 -> Some (1e9 /. ops)
            | _ -> None))
    in
    (match ns with
     | None -> None
     | Some ns ->
       let f key default = Option.value ~default (num_field key j) in
       Some
         { b_id = id;
           b_stats =
             { s_runs = Option.value ~default:1 (int_field "runs" j);
               s_median_ns = ns;
               s_mad_ns = f "mad_ns" 0.0;
               s_min_ns = f "min_ns" ns;
               s_p90_ns = f "p90_ns" ns;
               s_mean_ns = f "mean_ns" ns };
           b_host = Json.member "host" j })

let record_of_json j =
  match str_field "schema" j with
  | Some schema when schema = schema_v1 || schema = schema_v2 ->
    let benches =
      match Json.member "benchmarks" j with
      | Some (Json.List bs) -> List.filter_map bench_of_json bs
      | _ -> []
    in
    Ok
      { r_schema = schema;
        r_generated_by =
          Option.value ~default:"" (str_field "generated_by" j);
        r_machine = Option.value ~default:"?" (str_field "machine" j);
        r_unit = Option.value ~default:"ops_per_sec" (str_field "unit" j);
        r_ts = num_field "ts" j;
        r_fingerprint =
          Option.bind (Json.member "fingerprint" j) fingerprint_of_json;
        r_benches = benches }
  | Some other -> Error ("unknown selfbench schema " ^ other)
  | None -> Error "not a selfbench document (no \"schema\" field)"

let read_file path =
  Result.bind (Trace_reader.json_of_file path) record_of_json

let write_file path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (record_to_json r));
      output_char oc '\n')

(* --- history store --- *)

let default_history_dir = Filename.concat "results" "bench_history"

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let history_file ~dir id = Filename.concat dir (id ^ ".jsonl")

let append ~dir r =
  let id =
    match r.r_fingerprint with
    | Some fp -> fingerprint_id fp
    | None -> "unknown"
  in
  let path = history_file ~dir id in
  match mkdir_p dir with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" dir (Unix.error_message e))
  | () ->
    let line = Json.to_string (record_to_json r) ^ "\n" in
    (match Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 with
     | exception Unix.Unix_error (e, _, _) ->
       Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
     | fd ->
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           (* One write call: O_APPEND makes it atomic with respect to
              other appenders, so streams never interleave partial lines.
              A short write (full disk) is reported, and the reader will
              skip the torn line rather than dying on it. *)
           let n = Unix.write_substring fd line 0 (String.length line) in
           if n = String.length line then Ok path
           else Error (Printf.sprintf "%s: short write (%d/%d bytes)" path n
                         (String.length line))))

let read_history path =
  match
    Trace_reader.fold_jsonl_file path ~init:([], 0) ~f:(fun (rs, bad) j ->
        match record_of_json j with
        | Ok r -> (r :: rs, bad)
        | Error _ -> (rs, bad + 1))
  with
  | Error _ as e -> e
  | Ok ((rs, bad), skipped) -> Ok (List.rev rs, bad + skipped)

let machines ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun n ->
           if Filename.check_suffix n ".jsonl" then
             Some (Filename.chop_suffix n ".jsonl", Filename.concat dir n)
           else None)
    |> List.sort compare

(* --- trend analysis --- *)

type series_point = {
  sp_record : int;
  sp_ops : float;
  sp_noise : float;
}

let bench_ids records =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc b -> if List.mem b.b_id acc then acc else b.b_id :: acc)
        acc r.r_benches)
    [] records
  |> List.rev

let series ~bench_id records =
  List.concat
    (List.mapi
       (fun i r ->
         match List.find_opt (fun b -> b.b_id = bench_id) r.r_benches with
         | None -> []
         | Some b ->
           let ops = ops_per_sec b.b_stats in
           [ { sp_record = i; sp_ops = ops;
               sp_noise = ops *. noise b.b_stats } ])
       records)

type change_point = {
  cp_index : int;
  cp_before : float;
  cp_after : float;
  cp_ratio : float;
  cp_sigma : float;
}

(* Sliding median-shift test. At each boundary i (between points i-1 and
   i) the medians of up to [window] points on either side are compared;
   the shift must clear [sensitivity] times a noise floor that is the
   max of (a) 1.4826 x the MAD of the residuals of both windows around
   their own medians (the robust sigma estimate), (b) the median of the
   points' own per-record noise (what --runs N measured), and (c)
   [min_rel] of the left level (so a detector on near-noiseless data
   still never fires below sensitivity x min_rel relative shift).
   Consecutive firing boundaries describe the same step from different
   offsets; they collapse to the best-scoring one, whose index is the
   first record after the shift. *)
let change_points ?(window = 5) ?(sensitivity = 4.0) ?(min_rel = 0.02) pts =
  let n = Array.length pts in
  if n < 2 then []
  else begin
    let slice lo hi = List.init (hi - lo) (fun k -> fst pts.(lo + k)) in
    let noises lo hi = List.init (hi - lo) (fun k -> snd pts.(lo + k)) in
    let candidates =
      List.filter_map
        (fun i ->
          let l_lo = max 0 (i - window) and r_hi = min n (i + window) in
          let left = slice l_lo i and right = slice i r_hi in
          let lm = median left and rm = median right in
          let resid =
            List.map (fun v -> Float.abs (v -. lm)) left
            @ List.map (fun v -> Float.abs (v -. rm)) right
          in
          let spread = 1.4826 *. median resid in
          let pnoise = median (noises l_lo i @ noises i r_hi) in
          let sigma =
            Float.max spread
              (Float.max pnoise (Float.max (min_rel *. Float.abs lm) 1e-300))
          in
          let shift = rm -. lm in
          if Float.abs shift > sensitivity *. sigma then
            Some
              ( i,
                Float.abs shift /. sigma,
                (* the single-step jump at the boundary: the tie-breaker
                   that pins a run of equal-score boundaries to where the
                   level actually moved *)
                Float.abs (fst pts.(i) -. fst pts.(i - 1)),
                { cp_index = i; cp_before = lm; cp_after = rm;
                  cp_ratio = (if lm > 0.0 then rm /. lm else 1.0);
                  cp_sigma = sigma } )
          else None)
        (List.init (n - 1) (fun k -> k + 1))
    in
    (* Collapse runs of consecutive firing boundaries (one real step makes
       every boundary whose windows straddle it fire) down to the best
       boundary: the one with the largest |shift|/sigma, ties broken
       toward the largest single-step jump. The run tracks the last index
       seen (for adjacency) alongside the best candidate so far. *)
    let rec collapse acc current = function
      | [] ->
        List.rev
          (match current with Some (_, _, _, cp) -> cp :: acc | None -> acc)
      | (i, score, jump, cp) :: rest ->
        (match current with
         | Some (j, bs, bj, bcp) when i = j + 1 ->
           let keep =
             if score > bs || (score = bs && jump > bj) then (i, score, jump, cp)
             else (i, bs, bj, bcp)
           in
           collapse acc (Some keep) rest
         | Some (_, _, _, bcp) ->
           collapse (bcp :: acc) (Some (i, score, jump, cp)) rest
         | None -> collapse acc (Some (i, score, jump, cp)) rest)
    in
    collapse [] None candidates
  end

type trend = {
  t_bench : string;
  t_points : series_point list;
  t_changes : change_point list;
}

let trends ?window ?sensitivity ?min_rel records =
  List.map
    (fun id ->
      let points = series ~bench_id:id records in
      let arr =
        Array.of_list (List.map (fun p -> (p.sp_ops, p.sp_noise)) points)
      in
      { t_bench = id; t_points = points;
        t_changes = change_points ?window ?sensitivity ?min_rel arr })
    (bench_ids records)

let regressions trends =
  List.concat_map
    (fun t ->
      List.filter_map
        (fun cp -> if cp.cp_ratio < 1.0 then Some (t, cp) else None)
        t.t_changes)
    trends

let iso8601 ts =
  let tm = Unix.gmtime ts in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let first_bad records cp trend =
  match List.nth_opt trend.t_points cp.cp_index with
  | None -> Printf.sprintf "record #%d" cp.cp_index
  | Some p ->
    let extras =
      match List.nth_opt records p.sp_record with
      | None -> []
      | Some r ->
        (match r.r_fingerprint with
         | Some fp when fp.f_git_rev <> "unknown" -> [ "git " ^ fp.f_git_rev ]
         | _ -> [])
        @ (match r.r_ts with Some ts -> [ iso8601 ts ] | None -> [])
    in
    (match extras with
     | [] -> Printf.sprintf "record #%d" p.sp_record
     | es -> Printf.sprintf "record #%d (%s)" p.sp_record (String.concat ", " es))

let trend_lines ~machine ~skipped records trends =
  let buf = ref [] in
  let line fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
  line "machine %s: %d records%s" machine (List.length records)
    (if skipped > 0 then
       Printf.sprintf " (%d corrupt line%s skipped)" skipped
         (if skipped = 1 then "" else "s")
     else "");
  line "%-40s %8s %14s %8s  %s" "benchmark" "records" "last ops/s" "noise"
    "change-points";
  List.iter
    (fun t ->
      let last =
        match List.rev t.t_points with p :: _ -> p.sp_ops | [] -> 0.0
      in
      let last_noise =
        match List.rev t.t_points with
        | p :: _ when p.sp_ops > 0.0 -> p.sp_noise /. p.sp_ops
        | _ -> 0.0
      in
      line "%-40s %8d %14.1f %7.1f%%  %s" t.t_bench (List.length t.t_points)
        last (100.0 *. last_noise)
        (if t.t_changes = [] then "-"
         else String.concat "; "
             (List.map
                (fun cp ->
                  Printf.sprintf "%s at %s: %.1f -> %.1f ops/s (%.2fx)"
                    (if cp.cp_ratio < 1.0 then "REGRESSION" else "improvement")
                    (first_bad records cp t) cp.cp_before cp.cp_after
                    cp.cp_ratio)
                t.t_changes)))
    trends;
  let regs = regressions trends in
  (match regs with
   | [] -> line "no regressions detected"
   | _ ->
     List.iter
       (fun (t, cp) ->
         line
           "::error::bench trend regression: %s dropped to %.2fx (%.1f -> \
            %.1f ops/s, %.1f%% drop) at %s"
           t.t_bench cp.cp_ratio cp.cp_before cp.cp_after
           (100.0 *. (1.0 -. cp.cp_ratio))
           (first_bad records cp t))
       regs;
     line "%d regression%s detected" (List.length regs)
       (if List.length regs = 1 then "" else "s"));
  List.rev !buf

(* --- trend charts --- *)

let trend_chart_of t =
  let points =
    List.map (fun p -> (float_of_int p.sp_record, p.sp_ops)) t.t_points
  in
  let band =
    List.map
      (fun p ->
        ( float_of_int p.sp_record,
          Float.max 0.0 (p.sp_ops -. p.sp_noise),
          p.sp_ops +. p.sp_noise ))
      t.t_points
  in
  let marks =
    List.filter_map
      (fun cp ->
        Option.map
          (fun p -> float_of_int p.sp_record)
          (List.nth_opt t.t_points cp.cp_index))
      t.t_changes
  in
  Report.trend_chart ~y_label:"ops / second" ~x_label:"record #" ~points
    ~band ~marks ()

let change_table records trends =
  let rows =
    List.concat_map
      (fun t ->
        List.map
          (fun cp ->
            [ t.t_bench;
              first_bad records cp t;
              Printf.sprintf "%.1f" cp.cp_before;
              Printf.sprintf "%.1f" cp.cp_after;
              Printf.sprintf "%.2fx" cp.cp_ratio;
              (if cp.cp_ratio < 1.0 then "regression" else "improvement") ])
          t.t_changes)
      trends
  in
  if rows = [] then []
  else
    [ Report.table
        ~header:[ "benchmark"; "first bad"; "before"; "after"; "ratio"; "kind" ]
        ~rows ]

let trend_sections ?(max_charts = 6) ~machine records trends =
  let chartable = List.filter (fun t -> List.length t.t_points >= 2) trends in
  (* change-pointed benchmarks first, then stable ones in id order *)
  let flagged, stable = List.partition (fun t -> t.t_changes <> []) chartable in
  let ordered = flagged @ stable in
  let shown =
    List.filteri (fun i _ -> i < max_charts) ordered
  in
  let dropped = List.length ordered - List.length shown in
  let intro =
    Printf.sprintf
      "Per-benchmark ops/sec across the %d recorded runs of machine %s; \
       the shaded band is ±1 MAD of each record's repetitions, dashed \
       vertical rules mark detected change points.%s"
      (List.length records) machine
      (if dropped > 0 then
         Printf.sprintf " (%d stable benchmark%s not charted.)" dropped
           (if dropped = 1 then "" else "s")
       else "")
  in
  match shown with
  | [] ->
    [ Report.section
        ~title:(Printf.sprintf "Benchmark history — %s" machine)
        ~intro:
          "Fewer than two records in this stream: nothing to trend yet. \
           Run `dune exec bench/main.exe -- record` to grow it."
        [] ]
  | _ ->
    [ Report.section
        ~title:(Printf.sprintf "Benchmark history — %s" machine)
        ~intro
        (List.concat_map
           (fun t ->
             [ Printf.sprintf "<h3>%s</h3>" (Report.html_escape t.t_bench);
               trend_chart_of t ])
           shown
         @ change_table records trends) ]

let trend_page streams =
  Report.page ~title:"ALCOP benchmark trends"
    ~subtitle:
      "Selfbench history per machine fingerprint: medians with ±MAD noise \
       bands and change-point markers (doc/benchmarking.md)."
    (List.concat_map
       (fun (machine, records, trends) ->
         trend_sections ~machine records trends)
       streams)

(* --- selfbench comparison --- *)

type compare_result = {
  cmp_lines : string list;
  cmp_failures : int;
  cmp_only_old : string list;
  cmp_only_new : string list;
}

let host_num name h =
  match Option.bind (Json.member name h) Json.number with
  | Some v -> v
  | None -> 0.0

let host_delta_line old_host new_host =
  match (old_host, new_host) with
  | Some oh, Some nh ->
    Some
      (Printf.sprintf
         "  host: serial %.1f%% -> %.1f%% | eff-par %.2f -> %.2f | idle \
          %.0f%% -> %.0f%% | lock-wait %.1f -> %.1f ms"
         (100.0 *. host_num "serial_fraction" oh)
         (100.0 *. host_num "serial_fraction" nh)
         (host_num "effective_parallelism" oh)
         (host_num "effective_parallelism" nh)
         (100.0 *. host_num "idle_frac" oh)
         (100.0 *. host_num "idle_frac" nh)
         (host_num "lock_wait_ms" oh) (host_num "lock_wait_ms" nh))
  | Some _, None -> Some "  host: OLD carries host data, NEW does not"
  | None, Some _ -> Some "  host: NEW carries host data, OLD does not"
  | None, None -> None

let compare_records ?(strict = false) ?(tolerance = 0.20) ~old_r ~new_r () =
  let lines = ref [] in
  let out fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let failures = ref 0 in
  let complain fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        out "::%s::%s" (if strict then "error" else "warning") msg)
      fmt
  in
  let old_ids = List.map (fun b -> b.b_id) old_r.r_benches in
  let new_ids = List.map (fun b -> b.b_id) new_r.r_benches in
  let only_old = List.filter (fun id -> not (List.mem id new_ids)) old_ids in
  let only_new = List.filter (fun id -> not (List.mem id old_ids)) new_ids in
  out "%-40s %14s %14s %9s" "benchmark" "old ops/s" "new ops/s" "ratio";
  List.iter
    (fun nb ->
      let new_ops = ops_per_sec nb.b_stats in
      match List.find_opt (fun ob -> ob.b_id = nb.b_id) old_r.r_benches with
      | None ->
        out "%-40s %14s %14.1f %9s  (only in NEW)" nb.b_id "-" new_ops "-"
      | Some ob ->
        let old_ops = ops_per_sec ob.b_stats in
        let ratio = if old_ops > 0.0 then new_ops /. old_ops else 1.0 in
        out "%-40s %14.1f %14.1f %8.2fx" nb.b_id old_ops new_ops ratio;
        (match host_delta_line ob.b_host nb.b_host with
         | Some l -> out "%s" l
         | None -> ());
        if ratio < 1.0 -. tolerance then
          complain
            "selfbench regression: %s at %.2fx of baseline (%.1f -> %.1f \
             ops/s, tolerance %.0f%%)"
            nb.b_id ratio old_ops new_ops (100.0 *. tolerance))
    new_r.r_benches;
  List.iter
    (fun ob ->
      if List.mem ob.b_id only_old then begin
        out "%-40s %14.1f %14s %9s  (only in OLD)" ob.b_id
          (ops_per_sec ob.b_stats) "-" "-";
        complain "selfbench benchmark disappeared: %s (only in OLD)" ob.b_id
      end)
    old_r.r_benches;
  { cmp_lines = List.rev !lines; cmp_failures = !failures;
    cmp_only_old = only_old; cmp_only_new = only_new }
