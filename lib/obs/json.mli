(** Minimal JSON tree: the one emitter (escaping, float formatting, null)
    shared by the tuning logs and every observability sink, plus a small
    parser so tests can round-trip what the sinks write. The repository
    carries no external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escape the contents of a JSON string literal (no surrounding quotes). *)

val float_repr : float -> string
(** The exact float text {!to_string} emits: the shortest of ["%.12g"] /
    ["%.17g"] that re-parses to the identical double (["null"] for
    non-finite values). Equal doubles always produce equal strings, which
    is what makes it safe as a canonical form for content fingerprints. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) serialization. Non-finite floats serialize as
    [null] — JSON has no NaN/infinity. Finite floats use the shortest of
    ["%.12g"] / ["%.17g"] that re-parses to the identical double, so
    serialize-then-parse round-trips every finite [Float] exactly. *)

val of_string : string -> (t, string) result
(** Parse one JSON document. Numbers with a fraction or exponent parse as
    [Float], others as [Int]. The [Error] payload names the offset. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val number : t -> float option
(** [Int] or [Float] as a float. *)
