(** Building blocks for self-contained HTML reports: a page scaffold with
    embedded CSS (light/dark via [prefers-color-scheme]), data tables, and
    inline-SVG charts. No scripts and no external resources — the output
    is one file that renders offline.

    Chart conventions: a fixed categorical hue order (series beyond
    {!max_series} wrap — callers should fold long tails into "other"
    first), one y-axis per chart, a legend whenever a chart has two or
    more series, and a table next to every chart so no information is
    color-alone. *)

val html_escape : string -> string

val max_series : int
(** Number of categorical color slots. *)

val table : header:string list -> rows:string list list -> string

val legend : string list -> string
(** Color-swatch legend for the given series names, in slot order; empty
    for fewer than two series. *)

val grouped_bars :
  ?refline:float -> ?y_label:string -> categories:string list ->
  series:(string * float list) list -> unit -> string
(** Vertical grouped bars: one group per category, one bar per series
    (series values are indexed by category position). [refline] draws a
    dashed horizontal line (e.g. speedup = 1.0). Includes the legend. *)

val line_chart :
  ?y_label:string -> ?x_label:string ->
  series:(string * (float * float) list) list -> unit -> string
(** Lines with ringed markers over a linear x/y; x tick labels are taken
    from the first series' points. Includes the legend. *)

val trend_chart :
  ?y_label:string -> ?x_label:string -> points:(float * float) list ->
  band:(float * float * float) list -> marks:float list -> unit -> string
(** Single time series for benchmark histories: the [(x, lo, hi)] noise
    band renders as a translucent polygon (class ["noise-band"]) under
    the line, and each [marks] x gets a dashed vertical change-point rule
    (class ["change-point"]) in the "worse" color. X tick labels thin out
    to at most ~8 for long histories. *)

val dot_plot_log : ?x_label:string -> rows:(string * float) list -> unit -> string
(** Horizontal dot plot on a log x axis with decade gridlines — the right
    form for throughputs spanning orders of magnitude (log-scale bar
    lengths would be meaningless). Non-positive values are dropped. *)

val diverging_bars :
  ?pos_label:string -> ?neg_label:string -> rows:(string * float) list ->
  unit -> string
(** Horizontal bars around a zero axis: positive values (regressions)
    to the right in the "worse" color, negative to the left in the
    "better" color, each end-labeled with its signed value. *)

val interval_rows :
  ?x_label:string -> total:float -> rows:(string * (float * float) list) list ->
  unit -> string
(** Horizontal interval waterfall on a shared [0, total] axis — one row
    per label, one rounded bar per (start, stop) interval. Used for the
    pipeline observatory's stage-occupancy timelines. Empty string for no
    rows or a non-positive total. *)

val section : title:string -> ?intro:string -> string list -> string
(** A titled report section wrapping pre-rendered body parts. *)

val page : title:string -> subtitle:string -> string list -> string
(** The full HTML document. *)
