(* Minimal JSON tree shared by the tuning logs and the observability
   sinks. One emitter means string escaping and float formatting are fixed
   in one place; the parser exists so tests can round-trip sink output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest round-tripping float form that stays valid JSON: "%.12g" when
   it re-parses to the same double (drops trailing noise), else the
   always-exact "%.17g". Integral values keep a ".0" so they re-parse as
   floats. *)
let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | FP_zero | FP_normal | FP_subnormal ->
    let short = Printf.sprintf "%.12g" f in
    let s =
      if float_of_string short = f then short else Printf.sprintf "%.17g" f
    in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

(* --- parser: recursive descent, enough for sink output --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let fractional =
      String.contains text '.' || String.contains text 'e'
      || String.contains text 'E'
    in
    match (if fractional then None else int_of_string_opt text) with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields (kv :: acc)
          | Some '}' -> advance (); Obj (List.rev (kv :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a JSON value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
